#include "storage/bitset.h"

#include <bit>

#include "accel/backend.h"

// The word-streaming operations (set algebra, popcounts, index extraction)
// dispatch through the runtime-selected compute backend (accel/backend.h);
// the backends rely on this class keeping the padding bits of a trailing
// partial word zero (Resize/SetAll below enforce it). Short-circuiting
// predicates (Any/Intersects/IsSubsetOf) stay as plain loops: they exit on
// the first interesting word, which a streaming kernel cannot.

namespace graphtempo {

namespace {

constexpr std::size_t kWordBits = 64;

std::size_t WordsFor(std::size_t bits) { return (bits + kWordBits - 1) / kWordBits; }

}  // namespace

DynamicBitset::DynamicBitset(std::size_t size) : size_(size), words_(WordsFor(size), 0) {}

void DynamicBitset::Resize(std::size_t size) {
  words_.resize(WordsFor(size), 0);
  size_ = size;
  // Clear padding bits (relevant on shrink, harmless on growth).
  std::size_t used = size_ % kWordBits;
  if (used != 0) {
    words_.back() &= (std::uint64_t{1} << used) - 1;
  }
}

void DynamicBitset::Set(std::size_t index, bool value) {
  GT_CHECK_LT(index, size_) << "bit index out of range";
  std::uint64_t mask = std::uint64_t{1} << (index % kWordBits);
  if (value) {
    words_[index / kWordBits] |= mask;
  } else {
    words_[index / kWordBits] &= ~mask;
  }
}

void DynamicBitset::Clear() { std::fill(words_.begin(), words_.end(), 0); }

void DynamicBitset::SetAll() {
  if (size_ == 0) return;
  std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
  // Clear the padding bits in the last word so Count()/comparisons stay exact.
  std::size_t used = size_ % kWordBits;
  if (used != 0) {
    words_.back() &= (std::uint64_t{1} << used) - 1;
  }
}

void DynamicBitset::SetRange(std::size_t first, std::size_t last) {
  GT_CHECK_LE(first, last);
  GT_CHECK_LT(last, size_) << "range end out of bounds";
  for (std::size_t i = first; i <= last; ++i) Set(i);
}

bool DynamicBitset::Test(std::size_t index) const {
  GT_CHECK_LT(index, size_) << "bit index out of range";
  return (words_[index / kWordBits] >> (index % kWordBits)) & 1;
}

std::size_t DynamicBitset::Count() const {
  return accel::ActiveBackend().popcount(words_.data(), words_.size());
}

bool DynamicBitset::Any() const {
  for (std::uint64_t word : words_) {
    if (word != 0) return true;
  }
  return false;
}

std::size_t DynamicBitset::FirstSet() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * kWordBits + static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  GT_CHECK(false) << "FirstSet() on empty bitset";
  __builtin_unreachable();
}

std::size_t DynamicBitset::LastSet() const {
  for (std::size_t w = words_.size(); w-- > 0;) {
    if (words_[w] != 0) {
      return w * kWordBits + (kWordBits - 1 -
                              static_cast<std::size_t>(std::countl_zero(words_[w])));
    }
  }
  GT_CHECK(false) << "LastSet() on empty bitset";
  __builtin_unreachable();
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  CheckCompatible(other);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] & other.words_[w]) != 0) return true;
  }
  return false;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& other) const {
  CheckCompatible(other);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] & ~other.words_[w]) != 0) return false;
  }
  return true;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  CheckCompatible(other);
  accel::ActiveBackend().range_and(words_.data(), other.words_.data(), words_.size());
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  CheckCompatible(other);
  accel::ActiveBackend().range_or(words_.data(), other.words_.data(), words_.size());
  return *this;
}

DynamicBitset& DynamicBitset::operator-=(const DynamicBitset& other) {
  CheckCompatible(other);
  accel::ActiveBackend().range_andnot(words_.data(), other.words_.data(),
                                      words_.size());
  return *this;
}

std::vector<std::size_t> DynamicBitset::ToIndexVector() const {
  std::vector<std::size_t> indices;
  indices.reserve(Count());
  ForEachSetBit([&](std::size_t i) { indices.push_back(i); });
  return indices;
}

std::vector<std::uint32_t> DynamicBitset::ToIndices() const {
  GT_CHECK_LE(size_, std::size_t{0xFFFFFFFFu}) << "universe exceeds 32-bit indices";
  std::vector<std::uint32_t> indices;
  indices.reserve(Count());
  AppendWordRangeIndices(0, words_.size(), indices);
  return indices;
}

std::size_t DynamicBitset::CountWordRange(std::size_t word_begin,
                                          std::size_t word_end) const {
  GT_DCHECK(word_end <= words_.size());
  return accel::ActiveBackend().popcount(words_.data() + word_begin,
                                         word_end - word_begin);
}

std::size_t DynamicBitset::AppendWordRangeIndices(std::size_t word_begin,
                                                  std::size_t word_end,
                                                  std::vector<std::uint32_t>& out) const {
  GT_DCHECK(word_end <= words_.size());
  accel::ActiveBackend().extract_indices(words_.data(), word_begin, word_end, out);
  return word_end - word_begin;
}

}  // namespace graphtempo
