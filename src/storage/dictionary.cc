#include "storage/dictionary.h"

#include "util/check.h"

namespace graphtempo {

AttrValueId Dictionary::GetOrAdd(std::string_view value) {
  auto it = codes_.find(std::string(value));
  if (it != codes_.end()) return it->second;
  GT_CHECK_LT(values_.size(), kNoValue) << "dictionary full";
  AttrValueId code = static_cast<AttrValueId>(values_.size());
  values_.emplace_back(value);
  codes_.emplace(values_.back(), code);
  return code;
}

std::optional<AttrValueId> Dictionary::Find(std::string_view value) const {
  auto it = codes_.find(std::string(value));
  if (it == codes_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::ValueOf(AttrValueId code) const {
  GT_CHECK_LT(code, values_.size()) << "dictionary code out of range";
  return values_[code];
}

}  // namespace graphtempo
