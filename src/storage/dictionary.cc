#include "storage/dictionary.h"

#include "util/check.h"

namespace graphtempo {

AttrValueId Dictionary::GetOrAdd(std::string_view value) {
  auto it = codes_.find(std::string(value));
  if (it != codes_.end()) return it->second;
  GT_CHECK_LT(values_.size(), kNoValue) << "dictionary full";
  AttrValueId code = static_cast<AttrValueId>(values_.size());
  values_.emplace_back(value);
  codes_.emplace(values_.back(), code);
  return code;
}

std::optional<AttrValueId> Dictionary::Find(std::string_view value) const {
  auto it = codes_.find(std::string(value));
  if (it == codes_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::ValueOf(AttrValueId code) const {
  GT_CHECK_LT(code, values_.size()) << "dictionary code out of range";
  return values_[code];
}

bool Dictionary::Restore(std::vector<std::string> values) {
  if (values.size() >= kNoValue) return false;
  std::unordered_map<std::string, AttrValueId> codes;
  codes.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!codes.emplace(values[i], static_cast<AttrValueId>(i)).second) {
      return false;  // duplicate value — ambiguous codes
    }
  }
  values_ = std::move(values);
  codes_ = std::move(codes);
  return true;
}

}  // namespace graphtempo
