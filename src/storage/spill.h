#ifndef GRAPHTEMPO_STORAGE_SPILL_H_
#define GRAPHTEMPO_STORAGE_SPILL_H_

#include <optional>
#include <string>
#include <string_view>

/// \file
/// `SpillDirectory`: the cold tier behind the engine's LRU eviction seams
/// (docs/STORAGE.md §Spill tier). When a materialized roll-up layer or a
/// large cached result would be dropped, the engine serializes it here
/// instead; a later touch reloads the bytes (`storage/spill_in`) rather than
/// recomputing the value. One file per key; keys are chosen by callers and
/// must be filesystem-safe (the engine uses `layer_<mask>` and
/// `result_<fingerprint hex>`).

namespace graphtempo::storage {

class SpillDirectory {
 public:
  /// Binds (and creates if absent) the spill directory. `ok()` is false and
  /// `error()` is set when the directory cannot be created; all operations
  /// on a failed directory are no-ops that report misses.
  explicit SpillDirectory(std::string path);

  SpillDirectory(const SpillDirectory&) = delete;
  SpillDirectory& operator=(const SpillDirectory&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  const std::string& path() const { return path_; }

  /// Writes `bytes` under `key`, replacing any prior spill of that key.
  /// Counts `storage/spill_out` and `storage/spill_bytes`. Returns false
  /// (silently — spilling is best-effort) when the write fails.
  bool Put(std::string_view key, std::string_view bytes);

  /// Reads the bytes spilled under `key`; nullopt when absent or unreadable.
  /// Counts `storage/spill_in` on a hit.
  std::optional<std::string> Get(std::string_view key);

  /// Deletes `key`'s spill file if present (stale spills must not be
  /// reloaded after the in-memory value is invalidated).
  void Remove(std::string_view key);

 private:
  std::string FilePath(std::string_view key) const;

  std::string path_;
  bool ok_ = false;
  std::string error_;
};

}  // namespace graphtempo::storage

#endif  // GRAPHTEMPO_STORAGE_SPILL_H_
