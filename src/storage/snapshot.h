#ifndef GRAPHTEMPO_STORAGE_SNAPSHOT_H_
#define GRAPHTEMPO_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// The binary snapshot container (docs/STORAGE.md): a versioned, checksummed
/// file of tagged sections, plus the little-endian byte codec the sections
/// are written with.
///
/// Layout:
///
/// ```
/// offset 0   magic     "GTSNAP01" (8 bytes)
///        8   version   u32 (currently 1)  + u32 reserved (zero)
///        16  size      u64 payload byte count
///        24  checksum  u64 FNV-1a over the payload bytes
///        32  payload   sections back to back
/// ```
///
/// Each section is `u32 tag` (a FourCC), `u32 reserved`, `u64 length`,
/// `length` payload bytes, then zero padding to the next 8-byte boundary —
/// so every section body starts 8-byte aligned and fixed-width fields inside
/// it can be read in place from an mmap'ed file. Unknown tags are skippable
/// by construction (the length prefix). All integers are little-endian;
/// the writer refuses to run on a big-endian host rather than silently
/// producing a byte-swapped file.
///
/// What goes *into* the sections (dictionaries, presence columns, attribute
/// code arrays) is the domain of core/graph_snapshot.h; this header knows
/// only bytes.

namespace graphtempo::storage {

inline constexpr char kSnapshotMagic[8] = {'G', 'T', 'S', 'N', 'A', 'P', '0', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// FNV-1a 64-bit over `bytes` — the payload checksum. Not cryptographic;
/// catches truncation and bit rot, which is what a load must fail closed on.
std::uint64_t Fnv1a64(std::string_view bytes);

/// FourCC section tag, e.g. `SectionTag("TIME")`.
constexpr std::uint32_t SectionTag(const char (&name)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(name[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(name[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(name[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(name[3])) << 24);
}

/// Renders a tag back to its four characters (diagnostics).
std::string SectionTagName(std::uint32_t tag);

/// Append-only little-endian encoder for section payloads.
class ByteWriter {
 public:
  void U8(std::uint8_t value);
  void U32(std::uint32_t value);
  void U64(std::uint64_t value);
  /// u32 length prefix + raw bytes.
  void Str(std::string_view value);
  /// Raw 64-bit words, no length prefix (callers encode the count).
  void Words(std::span<const std::uint64_t> words);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian decoder. Every read reports success; a
/// failed read poisons the reader (`ok()` false) so callers can decode a
/// whole section and check once at the end — truncated or mangled input can
/// never read out of bounds or loop on garbage lengths.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U8(std::uint8_t* value);
  bool U32(std::uint32_t* value);
  bool U64(std::uint64_t* value);
  bool Str(std::string* value);
  bool WordsInto(std::size_t count, std::vector<std::uint64_t>* out);

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Take(std::size_t count, const char** out);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// One tagged section of a snapshot file.
struct SnapshotSection {
  std::uint32_t tag = 0;
  std::string payload;
};

/// Writes `sections` as one snapshot file (atomically: a temp file renamed
/// into place, so a crash mid-write never leaves a half snapshot behind).
/// False + one diagnostic in `*error` on failure.
bool WriteSnapshotFile(const std::string& path,
                       std::span<const SnapshotSection> sections,
                       std::string* error);

/// Reads and validates a snapshot file: magic, version, payload size,
/// checksum, section framing. Returns the sections in file order; nullopt +
/// one diagnostic on any validation failure (fail closed — a corrupt file
/// never yields partial sections).
std::optional<std::vector<SnapshotSection>> ReadSnapshotFile(
    const std::string& path, std::string* error);

}  // namespace graphtempo::storage

#endif  // GRAPHTEMPO_STORAGE_SNAPSHOT_H_
