#ifndef GRAPHTEMPO_STORAGE_BIT_MATRIX_H_
#define GRAPHTEMPO_STORAGE_BIT_MATRIX_H_

#include <cstdint>
#include <vector>

#include "storage/bitset.h"

/// \file
/// `BitMatrix`: a row-growable bit matrix with a fixed number of columns.
///
/// This is the C++ realization of the labeled presence arrays **V** and **E**
/// of the paper (Section 4, Table 2): one row per node/edge, one column per
/// time point, a 1 meaning the entity exists at that time. The temporal
/// operators only ever ask three questions about a row against a column mask
/// (the query interval):
///
///   * union       — is the entity present at *any* masked time?   (RowAnyMasked)
///   * intersection— at *all* masked times? / at ≥1 time of each side
///   * difference  — at *no* masked time?                          (RowNoneMasked)
///
/// Each predicate is a masked word scan, i.e. 64 time points per instruction.

namespace graphtempo {

class BitMatrix {
 public:
  /// Creates a matrix with `columns` columns and no rows. Columns are fixed
  /// for the lifetime of the matrix (the time domain is known up front);
  /// rows are appended as entities are added.
  explicit BitMatrix(std::size_t columns = 0);

  std::size_t rows() const { return rows_; }
  std::size_t columns() const { return columns_; }

  /// Appends `count` all-zero rows; returns the index of the first new row.
  std::size_t AddRows(std::size_t count = 1);

  /// Appends `count` all-zero columns (new time points). Re-lays out the
  /// matrix when the per-row word count grows; O(rows · words) in that case,
  /// O(1) otherwise.
  void AddColumns(std::size_t count = 1);

  /// Sets cell (row, column) to `value`.
  void Set(std::size_t row, std::size_t column, bool value = true);

  /// Returns cell (row, column).
  bool Test(std::size_t row, std::size_t column) const;

  /// Number of set bits in `row`.
  std::size_t RowCount(std::size_t row) const;

  /// Number of set bits of `row` within `mask`. `mask.size()` must equal
  /// `columns()`.
  std::size_t RowCountMasked(std::size_t row, const DynamicBitset& mask) const;

  /// True if `row` has a set bit at any position of `mask`.
  bool RowAnyMasked(std::size_t row, const DynamicBitset& mask) const;

  /// True if `row` has a set bit at *every* position of `mask` (mask ⊆ row).
  /// An empty mask vacuously returns true.
  bool RowAllMasked(std::size_t row, const DynamicBitset& mask) const;

  /// True if `row` has no set bit at any position of `mask`.
  bool RowNoneMasked(std::size_t row, const DynamicBitset& mask) const {
    return !RowAnyMasked(row, mask);
  }

  /// Copies `row` restricted to `mask` into a DynamicBitset of `columns()` bits.
  DynamicBitset RowMasked(std::size_t row, const DynamicBitset& mask) const;

  /// Calls `fn(column)` for each set bit of `row ∧ mask`, ascending.
  template <typename Fn>
  void ForEachSetBitMasked(std::size_t row, const DynamicBitset& mask, Fn&& fn) const {
    CheckRow(row);
    CheckMask(mask);
    const std::uint64_t* words = RowWords(row);
    const auto& mask_words = mask.words();
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t word = words[w] & mask_words[w];
      while (word != 0) {
        int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Reference baseline for the masked predicates: per-column loop without
  /// word parallelism. Used by the ablation micro-benchmark and by tests that
  /// pin the word-parallel predicates against it.
  bool RowAnyMaskedNaive(std::size_t row, const DynamicBitset& mask) const;
  bool RowAllMaskedNaive(std::size_t row, const DynamicBitset& mask) const;

  /// Raw word access to one row (words_per_row() words). Lets tight callers
  /// (the Algorithm-2 static aggregation path) hoist the backend dispatch
  /// out of their row loop instead of paying a RowCountMasked call per row.
  /// Padding bits beyond columns() are zero by construction.
  const std::uint64_t* row_words(std::size_t row) const {
    CheckRow(row);
    return RowWords(row);
  }
  std::size_t words_per_row() const { return words_per_row_; }

 private:
  void CheckRow(std::size_t row) const { GT_CHECK_LT(row, rows_) << "row out of range"; }
  void CheckColumn(std::size_t column) const {
    GT_CHECK_LT(column, columns_) << "column out of range";
  }
  void CheckMask(const DynamicBitset& mask) const {
    GT_CHECK_EQ(mask.size(), columns_) << "mask/column count mismatch";
  }
  const std::uint64_t* RowWords(std::size_t row) const {
    return data_.data() + row * words_per_row_;
  }
  std::uint64_t* RowWords(std::size_t row) { return data_.data() + row * words_per_row_; }

  std::size_t columns_ = 0;
  std::size_t words_per_row_ = 0;
  std::size_t rows_ = 0;
  std::vector<std::uint64_t> data_;
};

}  // namespace graphtempo

#endif  // GRAPHTEMPO_STORAGE_BIT_MATRIX_H_
