#include "storage/snapshot.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/check.h"

namespace graphtempo::storage {

namespace {

static_assert(std::endian::native == std::endian::little,
              "snapshot files are little-endian; add byte swapping before "
              "building on a big-endian host");

constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kSectionHeaderBytes = 16;

std::size_t PaddedTo8(std::size_t length) { return (length + 7) & ~std::size_t{7}; }

}  // namespace

std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string SectionTagName(std::uint32_t tag) {
  std::string name;
  for (int shift = 0; shift < 32; shift += 8) {
    char c = static_cast<char>((tag >> shift) & 0xFF);
    name += (c >= 32 && c < 127) ? c : '?';
  }
  return name;
}

void ByteWriter::U8(std::uint8_t value) {
  out_.push_back(static_cast<char>(value));
}

void ByteWriter::U32(std::uint32_t value) {
  char buf[4];
  std::memcpy(buf, &value, 4);
  out_.append(buf, 4);
}

void ByteWriter::U64(std::uint64_t value) {
  char buf[8];
  std::memcpy(buf, &value, 8);
  out_.append(buf, 8);
}

void ByteWriter::Str(std::string_view value) {
  GT_CHECK_LE(value.size(), 0xFFFFFFFFull) << "string too large for snapshot";
  U32(static_cast<std::uint32_t>(value.size()));
  out_.append(value.data(), value.size());
}

void ByteWriter::Words(std::span<const std::uint64_t> words) {
  const char* raw = reinterpret_cast<const char*>(words.data());
  out_.append(raw, words.size() * sizeof(std::uint64_t));
}

bool ByteReader::Take(std::size_t count, const char** out) {
  if (!ok_ || count > data_.size() - pos_) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += count;
  return true;
}

bool ByteReader::U8(std::uint8_t* value) {
  const char* raw;
  if (!Take(1, &raw)) return false;
  *value = static_cast<std::uint8_t>(*raw);
  return true;
}

bool ByteReader::U32(std::uint32_t* value) {
  const char* raw;
  if (!Take(4, &raw)) return false;
  std::memcpy(value, raw, 4);
  return true;
}

bool ByteReader::U64(std::uint64_t* value) {
  const char* raw;
  if (!Take(8, &raw)) return false;
  std::memcpy(value, raw, 8);
  return true;
}

bool ByteReader::Str(std::string* value) {
  std::uint32_t length = 0;
  if (!U32(&length)) return false;
  const char* raw;
  if (!Take(length, &raw)) return false;
  value->assign(raw, length);
  return true;
}

bool ByteReader::WordsInto(std::size_t count, std::vector<std::uint64_t>* out) {
  if (count > remaining() / sizeof(std::uint64_t)) {
    ok_ = false;
    return false;
  }
  const char* raw;
  if (!Take(count * sizeof(std::uint64_t), &raw)) return false;
  out->resize(count);
  std::memcpy(out->data(), raw, count * sizeof(std::uint64_t));
  return true;
}

bool WriteSnapshotFile(const std::string& path,
                       std::span<const SnapshotSection> sections,
                       std::string* error) {
  std::string payload;
  for (const SnapshotSection& section : sections) {
    ByteWriter header;
    header.U32(section.tag);
    header.U32(0);  // reserved
    header.U64(section.payload.size());
    payload += header.bytes();
    payload += section.payload;
    payload.append(PaddedTo8(section.payload.size()) - section.payload.size(), '\0');
  }

  ByteWriter head;
  for (char c : kSnapshotMagic) head.U8(static_cast<std::uint8_t>(c));
  head.U32(kSnapshotVersion);
  head.U32(0);  // reserved
  head.U64(payload.size());
  head.U64(Fnv1a64(payload));
  GT_CHECK_EQ(head.bytes().size(), kHeaderBytes);

  // Write-then-rename: a crash mid-write leaves the old snapshot (or
  // nothing) in place, never a torn file that a later boot would reject.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      *error = tmp + ": cannot open for writing";
      return false;
    }
    out.write(head.bytes().data(), static_cast<std::streamsize>(head.bytes().size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out.good()) {
      *error = tmp + ": write failed";
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = path + ": rename from temp file failed";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<std::vector<SnapshotSection>> ReadSnapshotFile(
    const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    *error = path + ": cannot open";
    return std::nullopt;
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    *error = path + ": read failed";
    return std::nullopt;
  }

  if (contents.size() < kHeaderBytes ||
      std::memcmp(contents.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    *error = path + ": not a GraphTempo snapshot (bad magic)";
    return std::nullopt;
  }
  ByteReader head(std::string_view(contents).substr(8, kHeaderBytes - 8));
  std::uint32_t version = 0, reserved = 0;
  std::uint64_t payload_size = 0, checksum = 0;
  head.U32(&version);
  head.U32(&reserved);
  head.U64(&payload_size);
  head.U64(&checksum);
  GT_CHECK(head.ok());
  if (version != kSnapshotVersion) {
    *error = path + ": snapshot version " + std::to_string(version) +
             " (this build reads version " + std::to_string(kSnapshotVersion) + ")";
    return std::nullopt;
  }
  const std::string_view payload =
      std::string_view(contents).substr(kHeaderBytes);
  if (payload.size() != payload_size) {
    *error = path + ": truncated snapshot (header promises " +
             std::to_string(payload_size) + " payload bytes, file has " +
             std::to_string(payload.size()) + ")";
    return std::nullopt;
  }
  if (Fnv1a64(payload) != checksum) {
    *error = path + ": checksum mismatch (corrupt snapshot)";
    return std::nullopt;
  }

  std::vector<SnapshotSection> sections;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    if (payload.size() - pos < kSectionHeaderBytes) {
      *error = path + ": corrupt section framing";
      return std::nullopt;
    }
    ByteReader header(payload.substr(pos, kSectionHeaderBytes));
    SnapshotSection section;
    std::uint32_t section_reserved = 0;
    std::uint64_t length = 0;
    header.U32(&section.tag);
    header.U32(&section_reserved);
    header.U64(&length);
    pos += kSectionHeaderBytes;
    if (length > payload.size() - pos) {
      *error = path + ": section " + SectionTagName(section.tag) +
               " overruns the payload";
      return std::nullopt;
    }
    section.payload.assign(payload.data() + pos, length);
    pos += PaddedTo8(length);
    if (pos > payload.size()) {
      // Padding of the final section may not overrun either.
      *error = path + ": section " + SectionTagName(section.tag) +
               " padding overruns the payload";
      return std::nullopt;
    }
    sections.push_back(std::move(section));
  }
  return sections;
}

}  // namespace graphtempo::storage
