#ifndef GRAPHTEMPO_STORAGE_ATTRIBUTE_TABLE_H_
#define GRAPHTEMPO_STORAGE_ATTRIBUTE_TABLE_H_

#include <string>
#include <string_view>
#include <vector>

#include "storage/dictionary.h"

/// \file
/// Columnar attribute storage: the labeled arrays **S** (static attributes)
/// and **A_i** (time-varying attributes) of the paper's Section 4.
///
/// Both columns are dictionary-encoded. A `StaticColumn` holds one code per
/// entity; a `TimeVaryingColumn` holds an entity × time matrix of codes with
/// `kNoValue` marking (entity, time) cells where the attribute is undefined
/// (normally: times at which the entity does not exist — the '-' cells of the
/// paper's Table 2).

namespace graphtempo {

/// A static (time-invariant) attribute column, e.g. "gender".
class StaticColumn {
 public:
  explicit StaticColumn(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Grows the column to `count` entities, filling new cells with kNoValue.
  void Resize(std::size_t count) { codes_.resize(count, kNoValue); }

  std::size_t size() const { return codes_.size(); }

  /// Assigns `value` (dictionary-encoded) to `entity`.
  void Set(std::size_t entity, std::string_view value);

  /// Dictionary code at `entity`; kNoValue if never assigned.
  AttrValueId CodeAt(std::size_t entity) const;

  /// String value at `entity`; GT_CHECKs the value was assigned.
  const std::string& ValueAt(std::size_t entity) const;

  const Dictionary& dictionary() const { return dict_; }
  Dictionary& dictionary() { return dict_; }

  /// Raw code array (snapshot save).
  const std::vector<AttrValueId>& codes() const { return codes_; }

  /// Rebuilds the column from serialized dictionary values + raw codes
  /// (snapshot load). Returns false — leaving the column unchanged — when
  /// the dictionary has duplicates or any code is out of range and not
  /// kNoValue.
  bool Restore(std::vector<std::string> dict_values, std::vector<AttrValueId> codes);

 private:
  std::string name_;
  Dictionary dict_;
  std::vector<AttrValueId> codes_;
};

/// A time-varying attribute column, e.g. "#publications per year".
class TimeVaryingColumn {
 public:
  /// `num_times` is fixed at construction (the time domain of the graph).
  TimeVaryingColumn(std::string name, std::size_t num_times)
      : name_(std::move(name)), num_times_(num_times) {}

  const std::string& name() const { return name_; }
  std::size_t num_times() const { return num_times_; }

  /// Grows to `count` entities, new cells kNoValue at all times.
  void Resize(std::size_t count) { codes_.resize(count * num_times_, kNoValue); }

  /// Appends `count` time points (new cells kNoValue for every entity).
  /// Re-lays out the row-major matrix: O(entities · times).
  void AppendTimes(std::size_t count = 1);

  std::size_t size() const { return num_times_ == 0 ? 0 : codes_.size() / num_times_; }

  /// Assigns `value` to `entity` at time `t`.
  void Set(std::size_t entity, std::size_t t, std::string_view value);

  /// Dictionary code at (entity, t); kNoValue if unassigned.
  AttrValueId CodeAt(std::size_t entity, std::size_t t) const;

  /// String value at (entity, t); GT_CHECKs the value was assigned.
  const std::string& ValueAt(std::size_t entity, std::size_t t) const;

  const Dictionary& dictionary() const { return dict_; }
  Dictionary& dictionary() { return dict_; }

  /// Raw row-major entity × time code matrix (snapshot save).
  const std::vector<AttrValueId>& codes() const { return codes_; }

  /// Rebuilds the column from serialized dictionary values + the raw code
  /// matrix (snapshot load). Returns false — leaving the column unchanged —
  /// when the dictionary has duplicates, `codes` is not a whole number of
  /// `num_times()` rows, or any code is out of range and not kNoValue.
  bool Restore(std::vector<std::string> dict_values, std::vector<AttrValueId> codes);

 private:
  std::size_t CellIndex(std::size_t entity, std::size_t t) const;

  std::string name_;
  std::size_t num_times_;
  Dictionary dict_;
  std::vector<AttrValueId> codes_;  // row-major entity × time
};

}  // namespace graphtempo

#endif  // GRAPHTEMPO_STORAGE_ATTRIBUTE_TABLE_H_
