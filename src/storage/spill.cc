#include "storage/spill.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>

#include "obs/metrics.h"

namespace graphtempo::storage {

namespace {

obs::Counter& SpillOutCounter() {
  static obs::Counter& counter = obs::Registry::Instance().GetCounter("storage/spill_out");
  return counter;
}

obs::Counter& SpillInCounter() {
  static obs::Counter& counter = obs::Registry::Instance().GetCounter("storage/spill_in");
  return counter;
}

obs::Counter& SpillBytesCounter() {
  static obs::Counter& counter = obs::Registry::Instance().GetCounter("storage/spill_bytes");
  return counter;
}

}  // namespace

SpillDirectory::SpillDirectory(std::string path) : path_(std::move(path)) {
  std::error_code ec;
  std::filesystem::create_directories(path_, ec);
  if (ec) {
    error_ = path_ + ": cannot create spill directory: " + ec.message();
    return;
  }
  ok_ = true;
}

std::string SpillDirectory::FilePath(std::string_view key) const {
  return path_ + "/" + std::string(key) + ".spill";
}

bool SpillDirectory::Put(std::string_view key, std::string_view bytes) {
  if (!ok_) return false;
  // Temp + rename so a concurrent Get never observes a half-written spill.
  const std::string target = FilePath(key);
  const std::string tmp = target + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), target.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  SpillOutCounter().Increment();
  SpillBytesCounter().Add(bytes.size());
  return true;
}

std::optional<std::string> SpillDirectory::Get(std::string_view key) {
  if (!ok_) return std::nullopt;
  std::ifstream in(FilePath(key), std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return std::nullopt;
  SpillInCounter().Increment();
  return bytes;
}

void SpillDirectory::Remove(std::string_view key) {
  if (!ok_) return;
  std::remove(FilePath(key).c_str());
}

}  // namespace graphtempo::storage
