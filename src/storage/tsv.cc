#include "storage/tsv.h"

#include <istream>
#include <ostream>

#include "util/check.h"
#include "util/string_util.h"

namespace graphtempo {

std::optional<std::vector<std::string>> TsvReader::ReadRow() {
  std::string line;
  while (std::getline(*input_, line)) {
    ++line_number_;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // tolerate CRLF
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    return Split(line, '\t');
  }
  return std::nullopt;
}

void TsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    // '\r' is rejected alongside the separators: a field ending in '\r' would
    // be written verbatim but lose the '\r' on read-back through ReadRow's
    // CRLF tolerance, silently corrupting the round trip.
    GT_CHECK(fields[i].find('\t') == std::string::npos &&
             fields[i].find('\n') == std::string::npos &&
             fields[i].find('\r') == std::string::npos)
        << "TSV field contains separator: " << fields[i];
    if (i != 0) *output_ << '\t';
    *output_ << fields[i];
  }
  *output_ << '\n';
}

void TsvWriter::WriteComment(const std::string& text) { *output_ << "# " << text << '\n'; }

}  // namespace graphtempo
