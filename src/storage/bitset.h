#ifndef GRAPHTEMPO_STORAGE_BITSET_H_
#define GRAPHTEMPO_STORAGE_BITSET_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

/// \file
/// `DynamicBitset`: a fixed-size, heap-allocated bitset with word-parallel set
/// algebra. It backs both the `IntervalSet` time dimension (a set of time
/// points) and entity sets inside the exploration engine, so the temporal
/// operators of the paper reduce to AND/OR/ANDNOT over machine words.

namespace graphtempo {

class DynamicBitset {
 public:
  /// Creates an empty (all-zero) bitset of `size` bits. `size` may be zero.
  explicit DynamicBitset(std::size_t size = 0);

  DynamicBitset(const DynamicBitset&) = default;
  DynamicBitset& operator=(const DynamicBitset&) = default;
  DynamicBitset(DynamicBitset&&) = default;
  DynamicBitset& operator=(DynamicBitset&&) = default;

  /// Number of bits the set can hold (not the number of set bits).
  std::size_t size() const { return size_; }

  /// Sets bit `index` to 1 (or to `value`).
  void Set(std::size_t index, bool value = true);

  /// Sets bit `index` to 0.
  void Reset(std::size_t index) { Set(index, false); }

  /// Sets every bit to 0.
  void Clear();

  /// Sets every bit to 1.
  void SetAll();

  /// Sets bits [first, last] (inclusive) to 1.
  void SetRange(std::size_t first, std::size_t last);

  /// Returns bit `index`.
  bool Test(std::size_t index) const;

  /// Number of set bits.
  std::size_t Count() const;

  /// True if at least one bit is set.
  bool Any() const;

  /// True if no bit is set.
  bool None() const { return !Any(); }

  /// Index of the lowest set bit; GT_CHECKs that the set is non-empty.
  std::size_t FirstSet() const;

  /// Index of the highest set bit; GT_CHECKs that the set is non-empty.
  std::size_t LastSet() const;

  /// True if `*this` and `other` share at least one set bit.
  bool Intersects(const DynamicBitset& other) const;

  /// True if every set bit of `*this` is also set in `other`.
  bool IsSubsetOf(const DynamicBitset& other) const;

  /// In-place intersection / union / difference. Sizes must match.
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator-=(const DynamicBitset& other);

  friend DynamicBitset operator&(DynamicBitset lhs, const DynamicBitset& rhs) {
    lhs &= rhs;
    return lhs;
  }
  friend DynamicBitset operator|(DynamicBitset lhs, const DynamicBitset& rhs) {
    lhs |= rhs;
    return lhs;
  }
  friend DynamicBitset operator-(DynamicBitset lhs, const DynamicBitset& rhs) {
    lhs -= rhs;
    return lhs;
  }

  bool operator==(const DynamicBitset& other) const = default;

  /// Calls `fn(index)` for every set bit in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Materializes the set bits as a sorted vector of indices.
  std::vector<std::size_t> ToIndexVector() const;

  /// Raw word access used by BitMatrix's masked row predicates.
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  void CheckCompatible(const DynamicBitset& other) const {
    GT_CHECK_EQ(size_, other.size_) << "bitset size mismatch";
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace graphtempo

#endif  // GRAPHTEMPO_STORAGE_BITSET_H_
