#ifndef GRAPHTEMPO_STORAGE_BITSET_H_
#define GRAPHTEMPO_STORAGE_BITSET_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "util/check.h"

/// \file
/// `DynamicBitset`: a fixed-size, heap-allocated bitset with word-parallel set
/// algebra. It backs both the `IntervalSet` time dimension (a set of time
/// points) and entity sets inside the exploration engine, so the temporal
/// operators of the paper reduce to AND/OR/ANDNOT over machine words.

namespace graphtempo {

class DynamicBitset {
 public:
  /// Creates an empty (all-zero) bitset of `size` bits. `size` may be zero.
  explicit DynamicBitset(std::size_t size = 0);

  DynamicBitset(const DynamicBitset&) = default;
  DynamicBitset& operator=(const DynamicBitset&) = default;
  DynamicBitset(DynamicBitset&&) = default;
  DynamicBitset& operator=(DynamicBitset&&) = default;

  /// Number of bits the set can hold (not the number of set bits).
  std::size_t size() const { return size_; }

  /// Grows or shrinks the set to `size` bits. Existing bits up to
  /// min(old, new) are preserved; new bits start at 0; padding bits of the
  /// last word are kept zero so Count()/comparisons stay exact. Amortized
  /// O(1) for single-bit growth (vector growth is geometric).
  void Resize(std::size_t size);

  /// Sets bit `index` to 1 (or to `value`).
  void Set(std::size_t index, bool value = true);

  /// Sets bit `index` to 0.
  void Reset(std::size_t index) { Set(index, false); }

  /// Sets every bit to 0.
  void Clear();

  /// Sets every bit to 1.
  void SetAll();

  /// Sets bits [first, last] (inclusive) to 1.
  void SetRange(std::size_t first, std::size_t last);

  /// Returns bit `index`.
  bool Test(std::size_t index) const;

  /// Number of set bits.
  std::size_t Count() const;

  /// True if at least one bit is set.
  bool Any() const;

  /// True if no bit is set.
  bool None() const { return !Any(); }

  /// Index of the lowest set bit; GT_CHECKs that the set is non-empty.
  std::size_t FirstSet() const;

  /// Index of the highest set bit; GT_CHECKs that the set is non-empty.
  std::size_t LastSet() const;

  /// True if `*this` and `other` share at least one set bit.
  bool Intersects(const DynamicBitset& other) const;

  /// True if every set bit of `*this` is also set in `other`.
  bool IsSubsetOf(const DynamicBitset& other) const;

  /// In-place intersection / union / difference. Sizes must match.
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator-=(const DynamicBitset& other);

  friend DynamicBitset operator&(DynamicBitset lhs, const DynamicBitset& rhs) {
    lhs &= rhs;
    return lhs;
  }
  friend DynamicBitset operator|(DynamicBitset lhs, const DynamicBitset& rhs) {
    lhs |= rhs;
    return lhs;
  }
  friend DynamicBitset operator-(DynamicBitset lhs, const DynamicBitset& rhs) {
    lhs -= rhs;
    return lhs;
  }

  bool operator==(const DynamicBitset& other) const = default;

  /// Calls `fn(index)` for every set bit in ascending order.
  /// `std::countr_zero` word iteration: each 64-bit word costs one
  /// count-trailing-zeros per *set* bit, never one probe per bit.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        int bit = std::countr_zero(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Materializes the set bits as a sorted vector of indices.
  std::vector<std::size_t> ToIndexVector() const;

  /// Set bits as ascending 32-bit indices (entity ids are 32-bit). GT_CHECKs
  /// that the universe fits 32 bits. Uses the word-range extraction below.
  std::vector<std::uint32_t> ToIndices() const;

  /// Appends the indices of the set bits inside words [word_begin, word_end)
  /// to `out`, ascending. The building block of the parallel operator
  /// kernels: disjoint word ranges extract into per-chunk vectors that are
  /// concatenated in chunk order, so parallel extraction is bit-identical to
  /// a serial scan. Dispatches through the active compute backend
  /// (accel/backend.h). Returns the number of words examined.
  std::size_t AppendWordRangeIndices(std::size_t word_begin, std::size_t word_end,
                                     std::vector<std::uint32_t>& out) const;

  /// Number of set bits inside words [word_begin, word_end).
  std::size_t CountWordRange(std::size_t word_begin, std::size_t word_end) const;

  /// Raw word access used by BitMatrix's masked row predicates.
  const std::vector<std::uint64_t>& words() const { return words_; }

  /// Mutable raw word access for the word-parallel kernels (fold loops write
  /// disjoint word ranges from different chunks). Callers must keep the
  /// padding bits of the last word zero.
  std::uint64_t* word_data() { return words_.data(); }
  const std::uint64_t* word_data() const { return words_.data(); }

  /// Number of 64-bit words backing the set.
  std::size_t num_words() const { return words_.size(); }

 private:
  void CheckCompatible(const DynamicBitset& other) const {
    GT_CHECK_EQ(size_, other.size_) << "bitset size mismatch";
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace graphtempo

#endif  // GRAPHTEMPO_STORAGE_BITSET_H_
