#include "storage/bit_matrix.h"

#include <bit>

#include "accel/backend.h"

namespace graphtempo {

namespace {
constexpr std::size_t kWordBits = 64;
}  // namespace

BitMatrix::BitMatrix(std::size_t columns)
    : columns_(columns), words_per_row_((columns + kWordBits - 1) / kWordBits) {}

std::size_t BitMatrix::AddRows(std::size_t count) {
  std::size_t first = rows_;
  rows_ += count;
  data_.resize(rows_ * words_per_row_, 0);
  return first;
}

void BitMatrix::AddColumns(std::size_t count) {
  std::size_t new_columns = columns_ + count;
  std::size_t new_words_per_row = (new_columns + kWordBits - 1) / kWordBits;
  if (new_words_per_row != words_per_row_) {
    std::vector<std::uint64_t> new_data(rows_ * new_words_per_row, 0);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t w = 0; w < words_per_row_; ++w) {
        new_data[r * new_words_per_row + w] = data_[r * words_per_row_ + w];
      }
    }
    data_ = std::move(new_data);
    words_per_row_ = new_words_per_row;
  }
  // Padding bits beyond the old column count are zero by construction, so the
  // new columns start absent without further work.
  columns_ = new_columns;
}

void BitMatrix::Set(std::size_t row, std::size_t column, bool value) {
  CheckRow(row);
  CheckColumn(column);
  std::uint64_t mask = std::uint64_t{1} << (column % kWordBits);
  std::uint64_t& word = RowWords(row)[column / kWordBits];
  if (value) {
    word |= mask;
  } else {
    word &= ~mask;
  }
}

bool BitMatrix::Test(std::size_t row, std::size_t column) const {
  CheckRow(row);
  CheckColumn(column);
  return (RowWords(row)[column / kWordBits] >> (column % kWordBits)) & 1;
}

std::size_t BitMatrix::RowCount(std::size_t row) const {
  CheckRow(row);
  return accel::ActiveBackend().popcount(RowWords(row), words_per_row_);
}

std::size_t BitMatrix::RowCountMasked(std::size_t row, const DynamicBitset& mask) const {
  CheckRow(row);
  CheckMask(mask);
  return accel::ActiveBackend().masked_popcount(RowWords(row), mask.words().data(),
                                                words_per_row_);
}

bool BitMatrix::RowAnyMasked(std::size_t row, const DynamicBitset& mask) const {
  CheckRow(row);
  CheckMask(mask);
  const std::uint64_t* words = RowWords(row);
  const auto& mask_words = mask.words();
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    if ((words[w] & mask_words[w]) != 0) return true;
  }
  return false;
}

bool BitMatrix::RowAllMasked(std::size_t row, const DynamicBitset& mask) const {
  CheckRow(row);
  CheckMask(mask);
  const std::uint64_t* words = RowWords(row);
  const auto& mask_words = mask.words();
  for (std::size_t w = 0; w < words_per_row_; ++w) {
    if ((mask_words[w] & ~words[w]) != 0) return false;
  }
  return true;
}

DynamicBitset BitMatrix::RowMasked(std::size_t row, const DynamicBitset& mask) const {
  DynamicBitset result(columns_);
  ForEachSetBitMasked(row, mask, [&](std::size_t column) { result.Set(column); });
  return result;
}

bool BitMatrix::RowAnyMaskedNaive(std::size_t row, const DynamicBitset& mask) const {
  CheckRow(row);
  CheckMask(mask);
  for (std::size_t c = 0; c < columns_; ++c) {
    if (mask.Test(c) && Test(row, c)) return true;
  }
  return false;
}

bool BitMatrix::RowAllMaskedNaive(std::size_t row, const DynamicBitset& mask) const {
  CheckRow(row);
  CheckMask(mask);
  for (std::size_t c = 0; c < columns_; ++c) {
    if (mask.Test(c) && !Test(row, c)) return false;
  }
  return true;
}

}  // namespace graphtempo
