#ifndef GRAPHTEMPO_STORAGE_COMPRESSED_BITSET_H_
#define GRAPHTEMPO_STORAGE_COMPRESSED_BITSET_H_

#include <cstdint>
#include <vector>

#include "storage/bitset.h"
#include "storage/snapshot.h"

/// \file
/// Word-level run-length compression for sparse presence bitsets.
///
/// A presence column for one time point is almost always sparse — most
/// entities are absent at most times — so its word array is long stretches
/// of zero words with islands of literals. The encoding exploits exactly
/// that: a stream of `u64` headers, each `zero_run_words << 32 |
/// literal_word_count`, followed by `literal_word_count` literal words,
/// repeated until every word of the original set is covered. Dense inputs
/// degrade gracefully to one header + all words (1.6% overhead at worst);
/// an all-zero column of a million entities collapses to 8 bytes.
///
/// `PresenceIndex` holds restored columns in this form and decodes each one
/// on first touch (presence_index.h), so the word-parallel kernels never see
/// compressed data — compression is purely a storage/restart concern.

namespace graphtempo::storage {

class CompressedBitset {
 public:
  CompressedBitset() = default;

  /// Encodes `bits` (any size, including zero).
  static CompressedBitset Compress(const DynamicBitset& bits);

  /// Reconstructs the original bitset. Exact inverse of Compress.
  DynamicBitset Decompress() const;

  /// Bit count of the original set.
  std::size_t size_bits() const { return size_bits_; }

  /// Encoded footprint in bytes (the stream, not the object).
  std::size_t encoded_bytes() const { return stream_.size() * sizeof(std::uint64_t); }

  /// Serializes as `u64 size_bits`, `u64 stream word count`, raw stream words.
  void EncodeTo(ByteWriter* out) const;

  /// Inverse of EncodeTo. Validates that the stream covers exactly the word
  /// count implied by `size_bits` and that padding bits past `size_bits` in
  /// the final literal word are zero, so corrupt snapshot bytes fail closed
  /// instead of producing a malformed bitset. False on any violation.
  static bool DecodeFrom(ByteReader* in, CompressedBitset* out);

 private:
  std::size_t size_bits_ = 0;
  std::vector<std::uint64_t> stream_;
};

}  // namespace graphtempo::storage

#endif  // GRAPHTEMPO_STORAGE_COMPRESSED_BITSET_H_
