#include "storage/compressed_bitset.h"

#include "util/check.h"

namespace graphtempo::storage {

namespace {

constexpr std::uint64_t kRunShift = 32;
constexpr std::uint64_t kCountMask = 0xFFFFFFFFull;

std::size_t WordsForBits(std::size_t bits) { return (bits + 63) / 64; }

}  // namespace

CompressedBitset CompressedBitset::Compress(const DynamicBitset& bits) {
  CompressedBitset result;
  result.size_bits_ = bits.size();
  const std::vector<std::uint64_t>& words = bits.words();
  std::size_t pos = 0;
  while (pos < words.size()) {
    std::size_t zeros = 0;
    while (pos + zeros < words.size() && words[pos + zeros] == 0) ++zeros;
    std::size_t literal_begin = pos + zeros;
    std::size_t literals = 0;
    // A literal run ends at the next *pair* of zero words: breaking a run for
    // a single interior zero would cost a fresh 8-byte header to save 8 bytes.
    while (literal_begin + literals < words.size()) {
      if (words[literal_begin + literals] == 0 &&
          (literal_begin + literals + 1 == words.size() ||
           words[literal_begin + literals + 1] == 0)) {
        break;
      }
      ++literals;
    }
    GT_CHECK_LE(zeros, kCountMask);
    GT_CHECK_LE(literals, kCountMask);
    result.stream_.push_back((static_cast<std::uint64_t>(zeros) << kRunShift) |
                             static_cast<std::uint64_t>(literals));
    for (std::size_t i = 0; i < literals; ++i) {
      result.stream_.push_back(words[literal_begin + i]);
    }
    pos = literal_begin + literals;
  }
  return result;
}

DynamicBitset CompressedBitset::Decompress() const {
  DynamicBitset bits(size_bits_);
  std::uint64_t* words = bits.word_data();
  std::size_t word_pos = 0;
  std::size_t stream_pos = 0;
  while (stream_pos < stream_.size()) {
    std::uint64_t header = stream_[stream_pos++];
    word_pos += header >> kRunShift;  // zero words are already zero
    std::size_t literals = header & kCountMask;
    for (std::size_t i = 0; i < literals; ++i) {
      words[word_pos++] = stream_[stream_pos++];
    }
  }
  GT_CHECK_EQ(word_pos, bits.num_words()) << "corrupt compressed bitset stream";
  return bits;
}

void CompressedBitset::EncodeTo(ByteWriter* out) const {
  out->U64(size_bits_);
  out->U64(stream_.size());
  out->Words(stream_);
}

bool CompressedBitset::DecodeFrom(ByteReader* in, CompressedBitset* out) {
  std::uint64_t size_bits = 0;
  std::uint64_t stream_words = 0;
  if (!in->U64(&size_bits) || !in->U64(&stream_words)) return false;
  CompressedBitset result;
  result.size_bits_ = static_cast<std::size_t>(size_bits);
  if (!in->WordsInto(static_cast<std::size_t>(stream_words), &result.stream_)) {
    return false;
  }

  // Walk the stream and prove it covers exactly the implied word count —
  // a mangled header must not be able to overrun a decode later.
  const std::size_t total_words = WordsForBits(result.size_bits_);
  std::size_t covered = 0;
  std::size_t pos = 0;
  std::uint64_t last_literal = 0;
  bool last_was_literal = false;
  while (pos < result.stream_.size()) {
    std::uint64_t header = result.stream_[pos++];
    std::size_t zeros = static_cast<std::size_t>(header >> kRunShift);
    std::size_t literals = static_cast<std::size_t>(header & kCountMask);
    if (literals > result.stream_.size() - pos) return false;
    if (zeros > total_words - covered || literals > total_words - covered - zeros) {
      return false;
    }
    covered += zeros + literals;
    if (literals > 0) {
      last_literal = result.stream_[pos + literals - 1];
      last_was_literal = true;
    } else if (zeros > 0) {
      last_was_literal = false;
    }
    pos += literals;
  }
  if (covered != total_words) return false;
  if (last_was_literal && result.size_bits_ % 64 != 0) {
    // Padding bits of the final word must be zero or Count()/== break.
    std::uint64_t pad_mask = ~0ull << (result.size_bits_ % 64);
    if ((last_literal & pad_mask) != 0) return false;
  }
  *out = std::move(result);
  return true;
}

}  // namespace graphtempo::storage
