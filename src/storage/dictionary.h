#ifndef GRAPHTEMPO_STORAGE_DICTIONARY_H_
#define GRAPHTEMPO_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

/// \file
/// `Dictionary`: bidirectional string ⇄ dense-code mapping.
///
/// All attribute values in GraphTempo — categorical ("f", "m"), bucketed
/// numerical ("3 publications", "rating 4.5") and node labels — are
/// dictionary-encoded so that aggregation operates on `std::uint32_t` codes
/// and tuple hashing never touches strings.

namespace graphtempo {

/// A dictionary code. Code values are dense, assigned in insertion order.
using AttrValueId = std::uint32_t;

/// Sentinel for "value absent" (e.g. a time-varying attribute at a time the
/// node does not exist). Never returned by `GetOrAdd`.
inline constexpr AttrValueId kNoValue = 0xFFFFFFFFu;

class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the code for `value`, inserting it if unseen.
  AttrValueId GetOrAdd(std::string_view value);

  /// Returns the code for `value` if present.
  std::optional<AttrValueId> Find(std::string_view value) const;

  /// Returns the string for `code`. GT_CHECKs the code is in range.
  const std::string& ValueOf(AttrValueId code) const;

  /// Number of distinct values.
  std::size_t size() const { return values_.size(); }

  bool empty() const { return values_.empty(); }

  /// All values in insertion order — iterating yields `ValueOf(0..size-1)`,
  /// so a dictionary serialized as this vector restores with identical codes.
  const std::vector<std::string>& values() const { return values_; }

  /// Rebuilds the dictionary from a serialized value vector (snapshot load).
  /// Replaces the current contents. Returns false — leaving the dictionary
  /// unchanged — when `values` contains duplicates (a corrupt snapshot must
  /// not produce ambiguous codes).
  bool Restore(std::vector<std::string> values);

 private:
  std::unordered_map<std::string, AttrValueId> codes_;
  std::vector<std::string> values_;
};

}  // namespace graphtempo

#endif  // GRAPHTEMPO_STORAGE_DICTIONARY_H_
