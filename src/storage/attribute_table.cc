#include "storage/attribute_table.h"

#include "util/check.h"

namespace graphtempo {

void StaticColumn::Set(std::size_t entity, std::string_view value) {
  GT_CHECK_LT(entity, codes_.size()) << "entity out of range for attribute " << name_;
  codes_[entity] = dict_.GetOrAdd(value);
}

AttrValueId StaticColumn::CodeAt(std::size_t entity) const {
  GT_CHECK_LT(entity, codes_.size()) << "entity out of range for attribute " << name_;
  return codes_[entity];
}

const std::string& StaticColumn::ValueAt(std::size_t entity) const {
  AttrValueId code = CodeAt(entity);
  GT_CHECK_NE(code, kNoValue) << "attribute " << name_ << " unset for entity " << entity;
  return dict_.ValueOf(code);
}

namespace {

bool CodesInRange(const std::vector<AttrValueId>& codes, std::size_t dict_size) {
  for (AttrValueId code : codes) {
    if (code != kNoValue && code >= dict_size) return false;
  }
  return true;
}

}  // namespace

bool StaticColumn::Restore(std::vector<std::string> dict_values,
                           std::vector<AttrValueId> codes) {
  if (!CodesInRange(codes, dict_values.size())) return false;
  Dictionary dict;
  if (!dict.Restore(std::move(dict_values))) return false;
  dict_ = std::move(dict);
  codes_ = std::move(codes);
  return true;
}

bool TimeVaryingColumn::Restore(std::vector<std::string> dict_values,
                                std::vector<AttrValueId> codes) {
  if (num_times_ == 0 ? !codes.empty() : codes.size() % num_times_ != 0) return false;
  if (!CodesInRange(codes, dict_values.size())) return false;
  Dictionary dict;
  if (!dict.Restore(std::move(dict_values))) return false;
  dict_ = std::move(dict);
  codes_ = std::move(codes);
  return true;
}

void TimeVaryingColumn::AppendTimes(std::size_t count) {
  std::size_t entities = size();
  std::size_t new_times = num_times_ + count;
  std::vector<AttrValueId> new_codes(entities * new_times, kNoValue);
  for (std::size_t entity = 0; entity < entities; ++entity) {
    for (std::size_t t = 0; t < num_times_; ++t) {
      new_codes[entity * new_times + t] = codes_[entity * num_times_ + t];
    }
  }
  codes_ = std::move(new_codes);
  num_times_ = new_times;
}

std::size_t TimeVaryingColumn::CellIndex(std::size_t entity, std::size_t t) const {
  GT_CHECK_LT(t, num_times_) << "time out of range for attribute " << name_;
  std::size_t index = entity * num_times_ + t;
  GT_CHECK_LT(index, codes_.size()) << "entity out of range for attribute " << name_;
  return index;
}

void TimeVaryingColumn::Set(std::size_t entity, std::size_t t, std::string_view value) {
  codes_[CellIndex(entity, t)] = dict_.GetOrAdd(value);
}

AttrValueId TimeVaryingColumn::CodeAt(std::size_t entity, std::size_t t) const {
  return codes_[CellIndex(entity, t)];
}

const std::string& TimeVaryingColumn::ValueAt(std::size_t entity, std::size_t t) const {
  AttrValueId code = CodeAt(entity, t);
  GT_CHECK_NE(code, kNoValue) << "attribute " << name_ << " unset for entity " << entity
                              << " at time " << t;
  return dict_.ValueOf(code);
}

}  // namespace graphtempo
