#ifndef GRAPHTEMPO_STORAGE_TSV_H_
#define GRAPHTEMPO_STORAGE_TSV_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

/// \file
/// Minimal TSV (tab-separated values) codec used by the on-disk graph format
/// and the benchmark CSV emitters. Lines starting with '#' and blank lines
/// are skipped on read; fields must not contain tabs, newlines, or carriage
/// returns (GT_CHECKed on write — a trailing '\r' would be eaten by the
/// reader's CRLF tolerance and break the round trip).

namespace graphtempo {

/// Streaming TSV reader. Does not own the stream.
class TsvReader {
 public:
  explicit TsvReader(std::istream* input) : input_(input) {}

  TsvReader(const TsvReader&) = delete;
  TsvReader& operator=(const TsvReader&) = delete;

  /// Reads the next non-comment, non-blank row. Returns std::nullopt at EOF.
  std::optional<std::vector<std::string>> ReadRow();

  /// 1-based line number of the row last returned (for error messages).
  std::size_t line_number() const { return line_number_; }

 private:
  std::istream* input_;
  std::size_t line_number_ = 0;
};

/// Streaming TSV writer. Does not own the stream.
class TsvWriter {
 public:
  explicit TsvWriter(std::ostream* output) : output_(output) {}

  TsvWriter(const TsvWriter&) = delete;
  TsvWriter& operator=(const TsvWriter&) = delete;

  /// Writes one row followed by '\n'.
  void WriteRow(const std::vector<std::string>& fields);

  /// Writes a comment line ("# <text>").
  void WriteComment(const std::string& text);

 private:
  std::ostream* output_;
};

}  // namespace graphtempo

#endif  // GRAPHTEMPO_STORAGE_TSV_H_
