#include "accel/kernels.h"

/// \file
/// AVX-512 backend: 512-bit loads/stores for the streaming ops, the native
/// `vpopcntq` (AVX-512-VPOPCNTDQ) for the popcounts, and `vpcompressd`
/// index decoding (plus 8-word `vptestmq` zero-block skipping) for
/// extraction. Requires avx512f + avx512vpopcntdq at runtime (backend.cc
/// guards dispatch). Tails are word-exact scalar — no masked over-reads,
/// same as the other backends.

#ifdef GT_ACCEL_HAVE_AVX512

#include <immintrin.h>

#include <bit>

namespace graphtempo::accel::internal {

namespace {

constexpr std::size_t kLaneWords = 8;  // 64-bit words per 512-bit vector

void RangeOr(std::uint64_t* dst, const std::uint64_t* src, std::size_t words) {
  std::size_t w = 0;
  for (; w + 2 * kLaneWords <= words; w += 2 * kLaneWords) {
    __m512i d0 = _mm512_loadu_si512(dst + w);
    __m512i d1 = _mm512_loadu_si512(dst + w + 8);
    __m512i s0 = _mm512_loadu_si512(src + w);
    __m512i s1 = _mm512_loadu_si512(src + w + 8);
    _mm512_storeu_si512(dst + w, _mm512_or_si512(d0, s0));
    _mm512_storeu_si512(dst + w + 8, _mm512_or_si512(d1, s1));
  }
  for (; w < words; ++w) dst[w] |= src[w];
}

void RangeAnd(std::uint64_t* dst, const std::uint64_t* src, std::size_t words) {
  std::size_t w = 0;
  for (; w + 2 * kLaneWords <= words; w += 2 * kLaneWords) {
    __m512i d0 = _mm512_loadu_si512(dst + w);
    __m512i d1 = _mm512_loadu_si512(dst + w + 8);
    __m512i s0 = _mm512_loadu_si512(src + w);
    __m512i s1 = _mm512_loadu_si512(src + w + 8);
    _mm512_storeu_si512(dst + w, _mm512_and_si512(d0, s0));
    _mm512_storeu_si512(dst + w + 8, _mm512_and_si512(d1, s1));
  }
  for (; w < words; ++w) dst[w] &= src[w];
}

void RangeAndNot(std::uint64_t* dst, const std::uint64_t* src, std::size_t words) {
  std::size_t w = 0;
  for (; w + 2 * kLaneWords <= words; w += 2 * kLaneWords) {
    __m512i d0 = _mm512_loadu_si512(dst + w);
    __m512i d1 = _mm512_loadu_si512(dst + w + 8);
    __m512i s0 = _mm512_loadu_si512(src + w);
    __m512i s1 = _mm512_loadu_si512(src + w + 8);
    // andnot computes ~first & second, so the source is the first operand.
    _mm512_storeu_si512(dst + w, _mm512_andnot_si512(s0, d0));
    _mm512_storeu_si512(dst + w + 8, _mm512_andnot_si512(s1, d1));
  }
  for (; w < words; ++w) dst[w] &= ~src[w];
}

void FoldOr(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
            std::size_t words) {
  std::size_t w = 0;
  for (; w + 2 * kLaneWords <= words; w += 2 * kLaneWords) {
    __m512i a0 = _mm512_loadu_si512(a + w);
    __m512i a1 = _mm512_loadu_si512(a + w + 8);
    __m512i b0 = _mm512_loadu_si512(b + w);
    __m512i b1 = _mm512_loadu_si512(b + w + 8);
    _mm512_storeu_si512(out + w, _mm512_or_si512(a0, b0));
    _mm512_storeu_si512(out + w + 8, _mm512_or_si512(a1, b1));
  }
  for (; w < words; ++w) out[w] = a[w] | b[w];
}

void FoldAnd(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
             std::size_t words) {
  std::size_t w = 0;
  for (; w + 2 * kLaneWords <= words; w += 2 * kLaneWords) {
    __m512i a0 = _mm512_loadu_si512(a + w);
    __m512i a1 = _mm512_loadu_si512(a + w + 8);
    __m512i b0 = _mm512_loadu_si512(b + w);
    __m512i b1 = _mm512_loadu_si512(b + w + 8);
    _mm512_storeu_si512(out + w, _mm512_and_si512(a0, b0));
    _mm512_storeu_si512(out + w + 8, _mm512_and_si512(a1, b1));
  }
  for (; w < words; ++w) out[w] = a[w] & b[w];
}

std::size_t Popcount(const std::uint64_t* words, std::size_t count) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + kLaneWords <= count; w += kLaneWords) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(words + w)));
  }
  std::size_t total = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; w < count; ++w) total += static_cast<std::size_t>(std::popcount(words[w]));
  return total;
}

std::size_t MaskedPopcount(const std::uint64_t* words, const std::uint64_t* mask,
                           std::size_t count) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + kLaneWords <= count; w += kLaneWords) {
    __m512i v = _mm512_and_si512(_mm512_loadu_si512(words + w),
                                 _mm512_loadu_si512(mask + w));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  std::size_t total = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
  for (; w < count; ++w) {
    total += static_cast<std::size_t>(std::popcount(words[w] & mask[w]));
  }
  return total;
}

/// Decodes one nonzero word into ascending bit indices at `dst` via
/// `vpcompressd`: each 16-bit chunk of the word becomes a write mask over an
/// iota vector, and the compress-store emits exactly popcount(chunk) lanes —
/// no overshoot, so no headroom bookkeeping is needed.
inline std::uint32_t* CompressWord(std::uint64_t word, std::uint32_t base,
                                   __m512i iota, std::uint32_t* dst) {
  for (int chunk = 0; chunk < 4; ++chunk) {
    const std::uint32_t bits =
        static_cast<std::uint32_t>(word >> (chunk * 16)) & 0xffffu;
    if (bits == 0) continue;
    __m512i indices = _mm512_add_epi32(
        iota, _mm512_set1_epi32(static_cast<int>(base + chunk * 16)));
    _mm512_mask_compressstoreu_epi32(dst, static_cast<__mmask16>(bits), indices);
    dst += std::popcount(bits);
  }
  return dst;
}

void ExtractIndices(const std::uint64_t* words, std::size_t word_begin,
                    std::size_t word_end, std::vector<std::uint32_t>& out) {
  // Popcount first (native vpopcntq), resize once, then compress-store
  // through raw pointers: no per-element push_back in the hot loop.
  const std::size_t total = Popcount(words + word_begin, word_end - word_begin);
  if (total == 0) return;
  const std::size_t old_size = out.size();
  out.resize(old_size + total);
  std::uint32_t* dst = out.data() + old_size;
  const __m512i iota =
      _mm512_set_epi32(15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
  std::size_t w = word_begin;
  // vptestmq yields a per-word nonzero mask for 8 words at once; only the
  // nonzero words take the compress decode, in ascending order so the output
  // matches scalar bit-for-bit.
  for (; w + kLaneWords <= word_end; w += kLaneWords) {
    __m512i v = _mm512_loadu_si512(words + w);
    unsigned nonzero = _mm512_test_epi64_mask(v, v);
    while (nonzero != 0) {
      unsigned lane = static_cast<unsigned>(std::countr_zero(nonzero));
      nonzero &= nonzero - 1;
      dst = CompressWord(words[w + lane], static_cast<std::uint32_t>((w + lane) * 64),
                         iota, dst);
    }
  }
  for (; w < word_end; ++w) {
    if (words[w] == 0) continue;
    dst = CompressWord(words[w], static_cast<std::uint32_t>(w * 64), iota, dst);
  }
}

}  // namespace

const KernelBackend& GetAvx512Backend() {
  static constexpr KernelBackend kBackend = {
      /*name=*/"avx512",
      /*range_or=*/RangeOr,
      /*range_and=*/RangeAnd,
      /*range_andnot=*/RangeAndNot,
      /*fold_or=*/FoldOr,
      /*fold_and=*/FoldAnd,
      /*popcount=*/Popcount,
      /*masked_popcount=*/MaskedPopcount,
      /*extract_indices=*/ExtractIndices,
  };
  return kBackend;
}

}  // namespace graphtempo::accel::internal

#endif  // GT_ACCEL_HAVE_AVX512
