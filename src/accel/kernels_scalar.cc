#include <bit>

#include "accel/kernels.h"

/// \file
/// Portable reference backend: straight word loops, no intrinsics. This is
/// the semantics oracle every vectorized backend is differential-tested
/// against, and the baseline the microbench gate measures speedups from.

namespace graphtempo::accel::internal {

namespace {

void RangeOr(std::uint64_t* dst, const std::uint64_t* src, std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) dst[w] |= src[w];
}

void RangeAnd(std::uint64_t* dst, const std::uint64_t* src, std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) dst[w] &= src[w];
}

void RangeAndNot(std::uint64_t* dst, const std::uint64_t* src, std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) dst[w] &= ~src[w];
}

void FoldOr(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
            std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) out[w] = a[w] | b[w];
}

void FoldAnd(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
             std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) out[w] = a[w] & b[w];
}

std::size_t Popcount(const std::uint64_t* words, std::size_t count) {
  std::size_t total = 0;
  for (std::size_t w = 0; w < count; ++w) {
    total += static_cast<std::size_t>(std::popcount(words[w]));
  }
  return total;
}

std::size_t MaskedPopcount(const std::uint64_t* words, const std::uint64_t* mask,
                           std::size_t count) {
  std::size_t total = 0;
  for (std::size_t w = 0; w < count; ++w) {
    total += static_cast<std::size_t>(std::popcount(words[w] & mask[w]));
  }
  return total;
}

void ExtractIndices(const std::uint64_t* words, std::size_t word_begin,
                    std::size_t word_end, std::vector<std::uint32_t>& out) {
  for (std::size_t w = word_begin; w < word_end; ++w) {
    std::uint64_t word = words[w];
    const std::uint32_t base = static_cast<std::uint32_t>(w * 64);
    while (word != 0) {
      out.push_back(base + static_cast<std::uint32_t>(std::countr_zero(word)));
      word &= word - 1;
    }
  }
}

}  // namespace

const KernelBackend& GetScalarBackend() {
  static constexpr KernelBackend kBackend = {
      /*name=*/"scalar",
      /*range_or=*/RangeOr,
      /*range_and=*/RangeAnd,
      /*range_andnot=*/RangeAndNot,
      /*fold_or=*/FoldOr,
      /*fold_and=*/FoldAnd,
      /*popcount=*/Popcount,
      /*masked_popcount=*/MaskedPopcount,
      /*extract_indices=*/ExtractIndices,
  };
  return kBackend;
}

}  // namespace graphtempo::accel::internal
