#ifndef GRAPHTEMPO_ACCEL_BACKEND_H_
#define GRAPHTEMPO_ACCEL_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// Pluggable compute backends for the word-parallel bitset kernels
/// (docs/KERNELS.md §8). Every hot primitive the temporal operators and the
/// Algorithm-2 dense aggregation path bottom out in — range OR/AND/ANDNOT,
/// the fused two-source interval fold, (masked) popcount, and set-bit index
/// extraction — is a function pointer in a `KernelBackend` table. The
/// process selects one table at startup via CPUID (overridable with
/// `--backend` / `GT_BACKEND`) and every caller dispatches through
/// `ActiveBackend()`, so adding an ISA (or later a TBB/GPU offload) never
/// touches the call sites.
///
/// Contract shared by all implementations (what makes backends
/// interchangeable bit-for-bit):
///
///  * Kernels operate on `std::uint64_t` word arrays. They never read or
///    write past `words` elements — tails are handled with word-exact scalar
///    loops, never masked over-reads, so the kernels are ASan-clean on
///    heap-exact buffers.
///  * Callers guarantee the *padding bits* of a trailing partial word are
///    zero (the `DynamicBitset` invariant, enforced by Resize/SetAll). The
///    kernels therefore never re-mask the final word; popcount and
///    extraction are exact because bit `size..64·words` is already 0. The
///    tail-word regression tests (tests/backend_test.cc) pin this for bitset
///    lengths ±1 around word boundaries on every backend.
///  * Bitwise ops are per-word pure functions, so every backend returns
///    bit-identical results at any thread count; parallel callers split the
///    word range into disjoint chunks and invoke the kernel per chunk.
///  * `dst`/`out` may alias `a` (in-place fold); `a` and `b` never partially
///    overlap.

namespace graphtempo::accel {

/// Function-pointer kernel table. One immutable instance per backend;
/// `name` is a static string ("scalar", "avx2", "avx512").
struct KernelBackend {
  const char* name;

  /// dst[w] |= src[w] / &= / &= ~  for w in [0, words).
  void (*range_or)(std::uint64_t* dst, const std::uint64_t* src, std::size_t words);
  void (*range_and)(std::uint64_t* dst, const std::uint64_t* src, std::size_t words);
  void (*range_andnot)(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t words);

  /// Fused interval fold: out[w] = a[w] | b[w] (resp. &). One streaming pass
  /// instead of copy-then-combine; `out` may alias `a`.
  void (*fold_or)(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
                  std::size_t words);
  void (*fold_and)(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
                   std::size_t words);

  /// Sum of popcount(words[w]).
  std::size_t (*popcount)(const std::uint64_t* words, std::size_t count);

  /// Masked popcount-aggregate: sum of popcount(words[w] & mask[w]). The
  /// ALL-semantics weight accumulation of the dense aggregation path.
  std::size_t (*masked_popcount)(const std::uint64_t* words, const std::uint64_t* mask,
                                 std::size_t count);

  /// Appends the absolute bit indices (w·64 + bit) of the set bits in words
  /// [word_begin, word_end) to `out`, ascending. 32-bit because entity ids
  /// are 32-bit.
  void (*extract_indices)(const std::uint64_t* words, std::size_t word_begin,
                          std::size_t word_end, std::vector<std::uint32_t>& out);
};

/// The table every kernel call site dispatches through. First use resolves
/// the `GT_BACKEND` environment override (hard error on an unknown,
/// uncompiled, or CPU-unsupported name) and otherwise auto-picks the best
/// compiled backend this CPU supports (avx512 > avx2 > scalar). Lock-free
/// after initialization.
const KernelBackend& ActiveBackend();

/// Name of the active backend ("scalar" | "avx2" | "avx512").
const char* ActiveBackendName();

/// Forces the active backend. `name` is one of scalar|avx2|avx512|auto.
/// Returns false and fills `*error` (if non-null) when the backend is
/// unknown, not compiled into this binary, or unsupported by this CPU;
/// the active backend is unchanged on failure.
bool SetActiveBackend(std::string_view name, std::string* error = nullptr);

/// The portable reference implementation; always compiled, always supported.
const KernelBackend& ScalarBackend();

/// Looks up a backend by name. Returns nullptr unless the backend is both
/// compiled in and supported by this CPU (the differential tests and the
/// microbench gate iterate compiled+supported backends this way).
const KernelBackend* FindBackend(std::string_view name);

/// One row per known backend, in dispatch-preference order (scalar last).
struct BackendInfo {
  const char* name;
  bool compiled;   ///< implementation built into this binary
  bool supported;  ///< CPU advertises the required ISA
};
std::vector<BackendInfo> ListBackends();

/// Names of the CPU SIMD features relevant to the kernels that this machine
/// advertises (subset of: popcnt, avx, avx2, bmi2, avx512f, avx512bw,
/// avx512vl, avx512vpopcntdq). Empty on non-x86.
std::vector<std::string> DetectedCpuFeatures();

}  // namespace graphtempo::accel

#endif  // GRAPHTEMPO_ACCEL_BACKEND_H_
