#include "accel/kernels.h"

/// \file
/// AVX2 backend: 256-bit loads/stores for the streaming range/fold ops, a
/// `vpshufb` nibble-LUT popcount (Mula's method) reduced through
/// `vpsadbw`, and a byte→indices LUT decode (with 4-word `vptest`
/// zero-block skipping) for index extraction. Tails are
/// word-exact scalar — the kernels never read past `words` elements, so
/// they are safe on heap-exact buffers under ASan.
///
/// This TU is the only one compiled with `-mavx2`; it must be entered only
/// after `__builtin_cpu_supports("avx2")` (backend.cc guards dispatch).

#ifdef GT_ACCEL_HAVE_AVX2

#include <immintrin.h>

#include <bit>

namespace graphtempo::accel::internal {

namespace {

constexpr std::size_t kLaneWords = 4;  // 64-bit words per 256-bit vector

void RangeOr(std::uint64_t* dst, const std::uint64_t* src, std::size_t words) {
  std::size_t w = 0;
  for (; w + 2 * kLaneWords <= words; w += 2 * kLaneWords) {
    __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    __m256i d1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w + 4));
    __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), _mm256_or_si256(d0, s0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w + 4),
                        _mm256_or_si256(d1, s1));
  }
  for (; w < words; ++w) dst[w] |= src[w];
}

void RangeAnd(std::uint64_t* dst, const std::uint64_t* src, std::size_t words) {
  std::size_t w = 0;
  for (; w + 2 * kLaneWords <= words; w += 2 * kLaneWords) {
    __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    __m256i d1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w + 4));
    __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), _mm256_and_si256(d0, s0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w + 4),
                        _mm256_and_si256(d1, s1));
  }
  for (; w < words; ++w) dst[w] &= src[w];
}

void RangeAndNot(std::uint64_t* dst, const std::uint64_t* src, std::size_t words) {
  std::size_t w = 0;
  for (; w + 2 * kLaneWords <= words; w += 2 * kLaneWords) {
    __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    __m256i d1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w + 4));
    __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w + 4));
    // andnot computes ~first & second, so the source is the first operand.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_andnot_si256(s0, d0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w + 4),
                        _mm256_andnot_si256(s1, d1));
  }
  for (; w < words; ++w) dst[w] &= ~src[w];
}

void FoldOr(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
            std::size_t words) {
  std::size_t w = 0;
  for (; w + 2 * kLaneWords <= words; w += 2 * kLaneWords) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w + 4));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), _mm256_or_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w + 4),
                        _mm256_or_si256(a1, b1));
  }
  for (; w < words; ++w) out[w] = a[w] | b[w];
}

void FoldAnd(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
             std::size_t words) {
  std::size_t w = 0;
  for (; w + 2 * kLaneWords <= words; w += 2 * kLaneWords) {
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w + 4));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    __m256i b1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), _mm256_and_si256(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w + 4),
                        _mm256_and_si256(a1, b1));
  }
  for (; w < words; ++w) out[w] = a[w] & b[w];
}

/// Per-byte popcount of a 256-bit vector via two 16-entry nibble LUTs.
inline __m256i PopcountBytes(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i lo = _mm256_and_si256(v, low_mask);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
}

std::size_t Popcount(const std::uint64_t* words, std::size_t count) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  std::size_t w = 0;
  // Four vectors per iteration: byte counters reach at most 4·8 = 32, well
  // under the 255 overflow bound, so one vpsadbw per 16 words suffices.
  for (; w + 4 * kLaneWords <= count; w += 4 * kLaneWords) {
    __m256i bytes = PopcountBytes(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w)));
    bytes = _mm256_add_epi8(bytes, PopcountBytes(_mm256_loadu_si256(
                                       reinterpret_cast<const __m256i*>(words + w + 4))));
    bytes = _mm256_add_epi8(bytes, PopcountBytes(_mm256_loadu_si256(
                                       reinterpret_cast<const __m256i*>(words + w + 8))));
    bytes =
        _mm256_add_epi8(bytes, PopcountBytes(_mm256_loadu_si256(
                                   reinterpret_cast<const __m256i*>(words + w + 12))));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, zero));
  }
  std::size_t total = static_cast<std::size_t>(_mm256_extract_epi64(acc, 0)) +
                      static_cast<std::size_t>(_mm256_extract_epi64(acc, 1)) +
                      static_cast<std::size_t>(_mm256_extract_epi64(acc, 2)) +
                      static_cast<std::size_t>(_mm256_extract_epi64(acc, 3));
  for (; w < count; ++w) total += static_cast<std::size_t>(std::popcount(words[w]));
  return total;
}

std::size_t MaskedPopcount(const std::uint64_t* words, const std::uint64_t* mask,
                           std::size_t count) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  std::size_t w = 0;
  for (; w + 4 * kLaneWords <= count; w += 4 * kLaneWords) {
    __m256i bytes = PopcountBytes(_mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + w))));
    bytes = _mm256_add_epi8(
        bytes, PopcountBytes(_mm256_and_si256(
                   _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w + 4)),
                   _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + w + 4)))));
    bytes = _mm256_add_epi8(
        bytes, PopcountBytes(_mm256_and_si256(
                   _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w + 8)),
                   _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + w + 8)))));
    bytes = _mm256_add_epi8(
        bytes,
        PopcountBytes(_mm256_and_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w + 12)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + w + 12)))));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(bytes, zero));
  }
  std::size_t total = static_cast<std::size_t>(_mm256_extract_epi64(acc, 0)) +
                      static_cast<std::size_t>(_mm256_extract_epi64(acc, 1)) +
                      static_cast<std::size_t>(_mm256_extract_epi64(acc, 2)) +
                      static_cast<std::size_t>(_mm256_extract_epi64(acc, 3));
  for (; w < count; ++w) {
    total += static_cast<std::size_t>(std::popcount(words[w] & mask[w]));
  }
  return total;
}

/// kDecode.entry[b] holds the bit positions of b's set bits, low to high
/// (unused slots zero). One 8-byte row decodes a whole byte of the bitset.
struct DecodeTable {
  std::uint8_t entry[256][8];
};

constexpr DecodeTable BuildDecodeTable() {
  DecodeTable table{};
  for (int byte = 0; byte < 256; ++byte) {
    int n = 0;
    for (int bit = 0; bit < 8; ++bit) {
      if (byte & (1 << bit)) table.entry[byte][n++] = static_cast<std::uint8_t>(bit);
    }
  }
  return table;
}

alignas(64) constexpr DecodeTable kDecode = BuildDecodeTable();

/// Decodes one nonzero word into ascending bit indices at `dst`. Each nonzero
/// byte becomes one LUT row load + widen + add + 8-lane store, of which only
/// popcount(byte) lanes are valid — the next byte's store overwrites the
/// rest, so the 8-lane store needs `fit_end` headroom; the last few entries
/// of the output fall back to the scalar walk instead of overrunning.
inline std::uint32_t* DecodeWord(std::uint64_t word, std::uint32_t base,
                                 std::uint32_t* dst, std::uint32_t* fit_end) {
  for (int byte = 0; byte < 8; ++byte) {
    const std::uint32_t bits = static_cast<std::uint32_t>(word >> (byte * 8)) & 0xffu;
    if (bits == 0) continue;
    const std::uint32_t bit_base = base + static_cast<std::uint32_t>(byte * 8);
    if (dst + 8 <= fit_end) {
      __m128i row = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(kDecode.entry[bits]));
      __m256i indices = _mm256_add_epi32(_mm256_cvtepu8_epi32(row),
                                         _mm256_set1_epi32(static_cast<int>(bit_base)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), indices);
    } else {
      std::uint32_t rest = bits;
      std::uint32_t* p = dst;
      while (rest != 0) {
        *p++ = bit_base + static_cast<std::uint32_t>(std::countr_zero(rest));
        rest &= rest - 1;
      }
    }
    dst += std::popcount(bits);
  }
  return dst;
}

void ExtractIndices(const std::uint64_t* words, std::size_t word_begin,
                    std::size_t word_end, std::vector<std::uint32_t>& out) {
  // Popcount first, resize once, then decode through raw pointers: no
  // per-element push_back capacity checks in the hot loop.
  const std::size_t total = Popcount(words + word_begin, word_end - word_begin);
  if (total == 0) return;
  const std::size_t old_size = out.size();
  out.resize(old_size + total);
  std::uint32_t* dst = out.data() + old_size;
  std::uint32_t* fit_end = out.data() + out.size();
  std::size_t w = word_begin;
  // vptest skips all-zero 4-word blocks in one micro-op — the common case on
  // the sparse entity universes the operators extract from. Nonzero words go
  // through the byte-LUT decode (ascending order, identical to scalar).
  for (; w + kLaneWords <= word_end; w += kLaneWords) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w));
    if (_mm256_testz_si256(v, v)) continue;
    for (std::size_t i = w; i < w + kLaneWords; ++i) {
      if (words[i] == 0) continue;
      dst = DecodeWord(words[i], static_cast<std::uint32_t>(i * 64), dst, fit_end);
    }
  }
  for (; w < word_end; ++w) {
    if (words[w] == 0) continue;
    dst = DecodeWord(words[w], static_cast<std::uint32_t>(w * 64), dst, fit_end);
  }
}

}  // namespace

const KernelBackend& GetAvx2Backend() {
  static constexpr KernelBackend kBackend = {
      /*name=*/"avx2",
      /*range_or=*/RangeOr,
      /*range_and=*/RangeAnd,
      /*range_andnot=*/RangeAndNot,
      /*fold_or=*/FoldOr,
      /*fold_and=*/FoldAnd,
      /*popcount=*/Popcount,
      /*masked_popcount=*/MaskedPopcount,
      /*extract_indices=*/ExtractIndices,
  };
  return kBackend;
}

}  // namespace graphtempo::accel::internal

#endif  // GT_ACCEL_HAVE_AVX2
