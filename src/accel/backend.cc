#include "accel/backend.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "accel/kernels.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace graphtempo::accel {

namespace {

// __builtin_cpu_supports requires a string literal, hence one probe per
// feature instead of a parameterized helper.
#if defined(__x86_64__) || defined(__i386__)
#define GT_ACCEL_CPU_PROBE(fn, feature) \
  bool fn() { return __builtin_cpu_supports(feature) != 0; }
#else
#define GT_ACCEL_CPU_PROBE(fn, feature) \
  bool fn() { return false; }
#endif

GT_ACCEL_CPU_PROBE(CpuHasPopcnt, "popcnt")
GT_ACCEL_CPU_PROBE(CpuHasAvx, "avx")
GT_ACCEL_CPU_PROBE(CpuHasAvx2, "avx2")
GT_ACCEL_CPU_PROBE(CpuHasBmi2, "bmi2")
GT_ACCEL_CPU_PROBE(CpuHasAvx512f, "avx512f")
GT_ACCEL_CPU_PROBE(CpuHasAvx512bw, "avx512bw")
GT_ACCEL_CPU_PROBE(CpuHasAvx512vl, "avx512vl")
GT_ACCEL_CPU_PROBE(CpuHasAvx512vpopcntdq, "avx512vpopcntdq")
#undef GT_ACCEL_CPU_PROBE

bool CpuSupportsAvx2() { return CpuHasAvx2(); }

/// The avx512 backend needs foundation loads/stores plus the native 64-bit
/// popcount; everything else it uses is AVX-512F.
bool CpuSupportsAvx512() { return CpuHasAvx512f() && CpuHasAvx512vpopcntdq(); }

/// The backend named `name` if its implementation is compiled into this
/// binary, else nullptr. Does not check CPU support.
const KernelBackend* CompiledBackend(std::string_view name) {
  if (name == "scalar") return &internal::GetScalarBackend();
#ifdef GT_ACCEL_HAVE_AVX2
  if (name == "avx2") return &internal::GetAvx2Backend();
#endif
#ifdef GT_ACCEL_HAVE_AVX512
  if (name == "avx512") return &internal::GetAvx512Backend();
#endif
  return nullptr;
}

bool KnownBackendName(std::string_view name) {
  return name == "scalar" || name == "avx2" || name == "avx512";
}

bool CpuSupportsBackend(std::string_view name) {
  if (name == "scalar") return true;
  if (name == "avx2") return CpuSupportsAvx2();
  if (name == "avx512") return CpuSupportsAvx512();
  return false;
}

/// Best compiled backend this CPU supports: avx512 > avx2 > scalar.
const KernelBackend& ResolveAuto() {
#ifdef GT_ACCEL_HAVE_AVX512
  if (CpuSupportsAvx512()) return internal::GetAvx512Backend();
#endif
#ifdef GT_ACCEL_HAVE_AVX2
  if (CpuSupportsAvx2()) return internal::GetAvx2Backend();
#endif
  return internal::GetScalarBackend();
}

/// Resolves `name` (scalar|avx2|avx512|auto) to a usable backend or reports
/// why it cannot be used.
const KernelBackend* ResolveName(std::string_view name, std::string* error) {
  if (name == "auto") return &ResolveAuto();
  if (!KnownBackendName(name)) {
    if (error) {
      *error = "unknown backend '" + std::string(name) +
               "' (expected scalar|avx2|avx512|auto)";
    }
    return nullptr;
  }
  const KernelBackend* backend = CompiledBackend(name);
  if (backend == nullptr) {
    if (error) {
      *error = "backend '" + std::string(name) + "' is not compiled into this binary";
    }
    return nullptr;
  }
  if (!CpuSupportsBackend(name)) {
    if (error) {
      *error = "backend '" + std::string(name) + "' is not supported by this CPU";
    }
    return nullptr;
  }
  return backend;
}

void RecordSelection(const char* name) {
  obs::Registry::Instance()
      .GetCounter(std::string("backend/selected_") + name)
      .Increment();
}

std::atomic<const KernelBackend*> g_active{nullptr};
std::mutex g_init_mutex;

/// First-use initialization: honor GT_BACKEND (hard error on a bad value —
/// a silent fallback would invalidate every benchmark run with it set),
/// otherwise CPUID auto-dispatch.
const KernelBackend& InitActiveBackend() {
  std::lock_guard<std::mutex> lock(g_init_mutex);
  if (const KernelBackend* backend = g_active.load(std::memory_order_relaxed)) {
    return *backend;
  }
  const KernelBackend* chosen;
  const char* env = std::getenv("GT_BACKEND");
  if (env != nullptr && *env != '\0') {
    std::string error;
    chosen = ResolveName(env, &error);
    GT_CHECK(chosen != nullptr) << "GT_BACKEND: " << error;
  } else {
    chosen = &ResolveAuto();
  }
  g_active.store(chosen, std::memory_order_release);
  RecordSelection(chosen->name);
  return *chosen;
}

}  // namespace

const KernelBackend& ActiveBackend() {
  const KernelBackend* backend = g_active.load(std::memory_order_acquire);
  if (backend != nullptr) return *backend;
  return InitActiveBackend();
}

const char* ActiveBackendName() { return ActiveBackend().name; }

bool SetActiveBackend(std::string_view name, std::string* error) {
  const KernelBackend* backend = ResolveName(name, error);
  if (backend == nullptr) return false;
  std::lock_guard<std::mutex> lock(g_init_mutex);
  const KernelBackend* previous = g_active.load(std::memory_order_relaxed);
  g_active.store(backend, std::memory_order_release);
  if (previous != backend) {
    RecordSelection(backend->name);
    if (previous != nullptr) {
      obs::Registry::Instance().GetCounter("backend/switches").Increment();
    }
  }
  return true;
}

const KernelBackend& ScalarBackend() { return internal::GetScalarBackend(); }

const KernelBackend* FindBackend(std::string_view name) {
  return ResolveName(name, nullptr);
}

std::vector<BackendInfo> ListBackends() {
  std::vector<BackendInfo> backends;
  backends.push_back({"avx512", CompiledBackend("avx512") != nullptr,
                      CpuSupportsAvx512()});
  backends.push_back({"avx2", CompiledBackend("avx2") != nullptr, CpuSupportsAvx2()});
  backends.push_back({"scalar", true, true});
  return backends;
}

std::vector<std::string> DetectedCpuFeatures() {
  struct Probe {
    const char* name;
    bool (*check)();
  };
  static constexpr Probe kProbes[] = {
      {"popcnt", CpuHasPopcnt},        {"avx", CpuHasAvx},
      {"avx2", CpuHasAvx2},            {"bmi2", CpuHasBmi2},
      {"avx512f", CpuHasAvx512f},      {"avx512bw", CpuHasAvx512bw},
      {"avx512vl", CpuHasAvx512vl},    {"avx512vpopcntdq", CpuHasAvx512vpopcntdq},
  };
  std::vector<std::string> features;
  for (const Probe& probe : kProbes) {
    if (probe.check()) features.emplace_back(probe.name);
  }
  return features;
}

}  // namespace graphtempo::accel
