#ifndef GRAPHTEMPO_ACCEL_KERNELS_H_
#define GRAPHTEMPO_ACCEL_KERNELS_H_

#include "accel/backend.h"

/// \file
/// Internal seam between the dispatcher (backend.cc) and the per-ISA kernel
/// translation units. Each ISA file is compiled with its own `-m` flags
/// (src/accel/CMakeLists.txt) and exists only when the compiler supports
/// them; the matching GT_ACCEL_HAVE_* definition is set target-wide so the
/// dispatcher and the TU agree on what is compiled in.

namespace graphtempo::accel::internal {

const KernelBackend& GetScalarBackend();

#ifdef GT_ACCEL_HAVE_AVX2
const KernelBackend& GetAvx2Backend();
#endif

#ifdef GT_ACCEL_HAVE_AVX512
const KernelBackend& GetAvx512Backend();
#endif

}  // namespace graphtempo::accel::internal

#endif  // GRAPHTEMPO_ACCEL_KERNELS_H_
