#ifndef GRAPHTEMPO_UTIL_CHECK_H_
#define GRAPHTEMPO_UTIL_CHECK_H_

#include <sstream>
#include <string>

/// \file
/// Runtime assertion macros.
///
/// Library code does not throw exceptions (Google style); programmer errors —
/// out-of-range ids, mismatched time domains, broken invariants — terminate
/// the process with a diagnostic instead of propagating as undefined behavior.
///
/// `GT_CHECK` is always on. `GT_DCHECK` compiles to nothing in NDEBUG builds
/// and is used on hot paths where the check cost would be measurable.

namespace graphtempo::internal {

/// Prints `file:line: message` to stderr and aborts. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const std::string& message);

/// Stream-style message collector used by the CHECK macros so call sites can
/// write `GT_CHECK(ok) << "id " << id << " out of range"`.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition);

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  /// Fires the failure. Placing the abort in the destructor lets the
  /// streaming expression complete first.
  [[noreturn]] ~CheckMessageBuilder();

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace graphtempo::internal

#define GT_CHECK(condition)                                                     \
  if (condition) {                                                              \
  } else /* NOLINT */                                                           \
    ::graphtempo::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define GT_CHECK_EQ(a, b) GT_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define GT_CHECK_NE(a, b) GT_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define GT_CHECK_LT(a, b) GT_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define GT_CHECK_LE(a, b) GT_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define GT_CHECK_GT(a, b) GT_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define GT_CHECK_GE(a, b) GT_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define GT_DCHECK(condition) \
  if (true) {                \
  } else                     \
    GT_CHECK(condition)
#else
#define GT_DCHECK(condition) GT_CHECK(condition)
#endif

#endif  // GRAPHTEMPO_UTIL_CHECK_H_
