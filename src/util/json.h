#ifndef GRAPHTEMPO_UTIL_JSON_H_
#define GRAPHTEMPO_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// A minimal JSON value: parse, inspect, serialize. Powers the query server's
/// wire format (docs/SERVER.md) — request bodies in, results and metrics out —
/// and the load generator's metrics scraping. Deliberately small:
///
///   * numbers are held as `double` plus the original text (so 64-bit counter
///     values survive a parse→serialize round trip unchanged);
///   * object member order is preserved (serialization is deterministic);
///   * no comments, no trailing commas, UTF-8 passed through verbatim except
///     for the escapes JSON requires.
///
/// Like the rest of util/, this depends on nothing but the standard library.

namespace graphtempo::json {

class Value;

/// Object members as an order-preserving vector of (key, value).
using Member = std::pair<std::string, Value>;

/// One JSON value of any type. Copyable; cheap to move.
class Value {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  static Value Null() { return Value(); }
  static Value Bool(bool value);
  static Value Number(double value);
  static Value Number(std::uint64_t value);
  static Value Number(std::int64_t value);
  static Value String(std::string value);
  static Value Array(std::vector<Value> items = {});
  static Value Object(std::vector<Member> members = {});

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; GT_CHECK on type mismatch.
  bool AsBool() const;
  double AsDouble() const;
  /// Integer value when the number is integral and fits; nullopt otherwise.
  std::optional<std::uint64_t> AsUint64() const;
  const std::string& AsString() const;
  const std::vector<Value>& AsArray() const;
  const std::vector<Member>& AsObject() const;

  /// Object member lookup (first match); nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;

  /// Appends to an array / object under construction; GT_CHECKs the type.
  void Append(Value item);
  void Set(std::string key, Value value);

  /// Compact serialization (no whitespace). Numbers parsed from text
  /// round-trip verbatim; programmatic doubles print shortest-exact.
  std::string Serialize() const;
  void SerializeTo(std::string* out) const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string text_;  // string payload, or the number's original spelling
  std::vector<Value> items_;
  std::vector<Member> members_;
};

/// Parses `text` as one JSON document (surrounding whitespace allowed).
/// Returns nullopt and sets `*error` (with a byte offset) on malformed input.
std::optional<Value> Parse(std::string_view text, std::string* error);

/// Escapes `text` as the *contents* of a JSON string (no surrounding quotes).
void EscapeString(std::string_view text, std::string* out);

}  // namespace graphtempo::json

#endif  // GRAPHTEMPO_UTIL_JSON_H_
