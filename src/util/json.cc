#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace graphtempo::json {

Value Value::Bool(bool value) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

Value Value::Number(double value) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

Value Value::Number(std::uint64_t value) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = static_cast<double>(value);
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%llu", static_cast<unsigned long long>(value));
  v.text_ = buffer;
  return v;
}

Value Value::Number(std::int64_t value) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = static_cast<double>(value);
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
  v.text_ = buffer;
  return v;
}

Value Value::String(std::string value) {
  Value v;
  v.type_ = Type::kString;
  v.text_ = std::move(value);
  return v;
}

Value Value::Array(std::vector<Value> items) {
  Value v;
  v.type_ = Type::kArray;
  v.items_ = std::move(items);
  return v;
}

Value Value::Object(std::vector<Member> members) {
  Value v;
  v.type_ = Type::kObject;
  v.members_ = std::move(members);
  return v;
}

bool Value::AsBool() const {
  GT_CHECK(is_bool()) << "JSON value is not a bool";
  return bool_;
}

double Value::AsDouble() const {
  GT_CHECK(is_number()) << "JSON value is not a number";
  return number_;
}

std::optional<std::uint64_t> Value::AsUint64() const {
  if (!is_number()) return std::nullopt;
  // Prefer the original spelling: doubles lose precision beyond 2^53.
  if (!text_.empty() && text_.find_first_of(".eE-") == std::string::npos) {
    std::uint64_t value = 0;
    auto [ptr, ec] = std::from_chars(text_.data(), text_.data() + text_.size(), value);
    if (ec == std::errc() && ptr == text_.data() + text_.size()) return value;
    return std::nullopt;
  }
  if (number_ < 0 || std::floor(number_) != number_ || number_ > 1.8e19) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(number_);
}

const std::string& Value::AsString() const {
  GT_CHECK(is_string()) << "JSON value is not a string";
  return text_;
}

const std::vector<Value>& Value::AsArray() const {
  GT_CHECK(is_array()) << "JSON value is not an array";
  return items_;
}

const std::vector<Member>& Value::AsObject() const {
  GT_CHECK(is_object()) << "JSON value is not an object";
  return members_;
}

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const Member& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

void Value::Append(Value item) {
  GT_CHECK(is_array()) << "Append on a non-array JSON value";
  items_.push_back(std::move(item));
}

void Value::Set(std::string key, Value value) {
  GT_CHECK(is_object()) << "Set on a non-object JSON value";
  members_.emplace_back(std::move(key), std::move(value));
}

void EscapeString(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
}

void Value::SerializeTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      return;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Type::kNumber:
      if (!text_.empty()) {
        out->append(text_);
      } else if (std::floor(number_) == number_ && std::abs(number_) < 1e15) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(number_));
        out->append(buffer);
      } else {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.17g", number_);
        out->append(buffer);
      }
      return;
    case Type::kString:
      out->push_back('"');
      EscapeString(text_, out);
      out->push_back('"');
      return;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Value& item : items_) {
        if (!first) out->push_back(',');
        first = false;
        item.SerializeTo(out);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const Member& member : members_) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        EscapeString(member.first, out);
        out->append("\":");
        member.second.SerializeTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Value::Serialize() const {
  std::string out;
  SerializeTo(&out);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  std::optional<Value> ParseDocument() {
    SkipWhitespace();
    std::optional<Value> value = ParseValue(/*depth=*/0);
    if (!value.has_value()) return std::nullopt;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Fail("trailing characters after JSON document");
      return std::nullopt;
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message + " at byte " + std::to_string(pos_);
    }
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  std::optional<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      Fail("nesting too deep");
      return std::nullopt;
    }
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case 'n':
        if (ConsumeLiteral("null")) return Value::Null();
        break;
      case 't':
        if (ConsumeLiteral("true")) return Value::Bool(true);
        break;
      case 'f':
        if (ConsumeLiteral("false")) return Value::Bool(false);
        break;
      case '"':
        return ParseString();
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        if (text_[pos_] == '-' || (text_[pos_] >= '0' && text_[pos_] <= '9')) {
          return ParseNumber();
        }
        break;
    }
    Fail(std::string("unexpected character '") + text_[pos_] + "'");
    return std::nullopt;
  }

  std::optional<Value> ParseNumber() {
    std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string spelling(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double parsed = std::strtod(spelling.c_str(), &end);
    if (spelling.empty() || end != spelling.c_str() + spelling.size()) {
      pos_ = start;
      Fail("malformed number");
      return std::nullopt;
    }
    return NumberWithSpelling(parsed, std::move(spelling));
  }

  static Value NumberWithSpelling(double parsed, std::string spelling) {
    // Route through the uint64/int64 constructors when the spelling is a
    // plain integer so AsUint64 stays exact; otherwise keep the double.
    if (spelling.find_first_of(".eE") == std::string::npos) {
      if (!spelling.empty() && spelling[0] == '-') {
        long long signed_value = 0;
        auto [ptr, ec] = std::from_chars(spelling.data(),
                                         spelling.data() + spelling.size(), signed_value);
        if (ec == std::errc() && ptr == spelling.data() + spelling.size()) {
          return Value::Number(static_cast<std::int64_t>(signed_value));
        }
      } else {
        std::uint64_t unsigned_value = 0;
        auto [ptr, ec] = std::from_chars(
            spelling.data(), spelling.data() + spelling.size(), unsigned_value);
        if (ec == std::errc() && ptr == spelling.data() + spelling.size()) {
          return Value::Number(unsigned_value);
        }
      }
    }
    return Value::Number(parsed);
  }

  std::optional<Value> ParseString() {
    if (!Consume('"')) {
      Fail("expected '\"'");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Value::String(std::move(out));
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned int>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned int>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned int>(h - 'A' + 10);
            } else {
              Fail("malformed \\u escape");
              return std::nullopt;
            }
          }
          // Encode the code point as UTF-8 (surrogate pairs not recombined —
          // the wire format never emits them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          Fail(std::string("unknown escape '\\") + escape + "'");
          return std::nullopt;
      }
    }
    Fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> ParseArray(int depth) {
    Consume('[');
    Value array = Value::Array();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      SkipWhitespace();
      std::optional<Value> item = ParseValue(depth + 1);
      if (!item.has_value()) return std::nullopt;
      array.Append(std::move(*item));
      SkipWhitespace();
      if (Consume(']')) return array;
      if (!Consume(',')) {
        Fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<Value> ParseObject(int depth) {
    Consume('{');
    Value object = Value::Object();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      std::optional<Value> key = ParseString();
      if (!key.has_value()) return std::nullopt;
      SkipWhitespace();
      if (!Consume(':')) {
        Fail("expected ':' after object key");
        return std::nullopt;
      }
      SkipWhitespace();
      std::optional<Value> value = ParseValue(depth + 1);
      if (!value.has_value()) return std::nullopt;
      object.Set(key->AsString(), std::move(*value));
      SkipWhitespace();
      if (Consume('}')) return object;
      if (!Consume(',')) {
        Fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> Parse(std::string_view text, std::string* error) {
  std::string local_error;
  Parser parser(text, error != nullptr ? error : &local_error);
  if (error != nullptr) error->clear();
  return parser.ParseDocument();
}

}  // namespace graphtempo::json
