#ifndef GRAPHTEMPO_UTIL_STRING_UTIL_H_
#define GRAPHTEMPO_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

/// \file
/// Small string helpers shared by the TSV codec, the dataset generators and
/// the benchmark printers. Deliberately minimal: no locale handling, ASCII
/// only, which is all the on-disk format needs.

namespace graphtempo {

/// Splits `text` on `delimiter`, keeping empty fields. "a||b" -> {"a","","b"}.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Joins `parts` with `delimiter` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Parses a non-negative decimal integer. Returns false on any non-digit
/// character, empty input, or overflow of `std::uint64_t`.
bool ParseUint64(std::string_view text, std::uint64_t* value);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace graphtempo

#endif  // GRAPHTEMPO_UTIL_STRING_UTIL_H_
