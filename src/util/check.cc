#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace graphtempo::internal {

void CheckFailed(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "%s:%d: GT_CHECK failed: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

CheckMessageBuilder::CheckMessageBuilder(const char* file, int line, const char* condition)
    : file_(file), line_(line) {
  stream_ << condition << " ";
}

CheckMessageBuilder::~CheckMessageBuilder() { CheckFailed(file_, line_, stream_.str()); }

}  // namespace graphtempo::internal
