#include "util/string_util.h"

#include <cctype>
#include <cstdint>

namespace graphtempo {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, char delimiter) {
  std::string result;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) result.push_back(delimiter);
    result += parts[i];
  }
  return result;
}

std::string_view StripWhitespace(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool ParseUint64(std::string_view text, std::uint64_t* value) {
  if (text.empty()) return false;
  std::uint64_t result = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (result > (UINT64_MAX - digit) / 10) return false;  // overflow
    result = result * 10 + digit;
  }
  *value = result;
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

}  // namespace graphtempo
