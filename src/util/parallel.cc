#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "util/check.h"

namespace graphtempo {

namespace {

std::atomic<std::size_t> g_parallelism{1};

/// A lazily-started, process-lifetime worker pool. Spawning std::threads per
/// operator call costs more than a typical presence scan (≈1 ms on the DBLP
/// graph); persistent workers make small-grained parallelism worthwhile.
///
/// Jobs are heap-allocated and handed to workers as shared_ptrs, so a worker
/// that wakes late simply finds the old job exhausted (next ≥ total) and goes
/// back to sleep — no way to misattribute chunks across jobs. The pool object
/// is intentionally leaked: workers may still be blocked on the condition
/// variable at process exit, and the synchronization primitives must outlive
/// them.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool& pool = *new ThreadPool();
    return pool;
  }

  /// Grows the worker set to `workers` (never shrinks; idle workers are cheap).
  void EnsureWorkers(std::size_t workers) {
    std::unique_lock<std::mutex> lock(mutex_);
    while (workers_.size() < workers) {
      workers_.emplace_back([this] { WorkerLoop(); });
      workers_.back().detach();
    }
  }

  /// Runs `fn(chunk)` for every chunk in [0, chunks); blocks until all chunks
  /// completed. The calling thread participates.
  void RunChunks(std::size_t chunks, const std::function<void(std::size_t)>& fn) {
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->total = chunks;
    job->remaining.store(chunks, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      current_job_ = job;
      generation_.fetch_add(1, std::memory_order_release);
    }
    work_available_.notify_all();

    Work(*job);

    std::unique_lock<std::mutex> lock(mutex_);
    job_done_.wait(lock, [&] { return job->remaining.load(std::memory_order_acquire) == 0; });
    if (current_job_ == job) current_job_.reset();
  }

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t total = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
  };

  ThreadPool() = default;

  void Work(Job& job) {
    while (true) {
      std::size_t chunk = job.next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= job.total) return;
      (*job.fn)(chunk);
      if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last chunk: wake the job owner. Locking the mutex (empty critical
        // section) pairs with the owner's wait and prevents a lost wakeup.
        { std::unique_lock<std::mutex> lock(mutex_); }
        job_done_.notify_all();
      }
    }
  }

  void WorkerLoop() {
    std::uint64_t seen_generation = 0;
    while (true) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_available_.wait(lock, [&] {
          return generation_.load(std::memory_order_relaxed) != seen_generation;
        });
        seen_generation = generation_.load(std::memory_order_relaxed);
        job = current_job_;
      }
      if (job != nullptr) Work(*job);
    }
  }

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable job_done_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> current_job_;
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace

void SetParallelism(std::size_t threads) {
  GT_CHECK_GE(threads, 1u) << "parallelism must be at least 1";
  g_parallelism.store(threads, std::memory_order_relaxed);
  if (threads > 1) ThreadPool::Instance().EnsureWorkers(threads - 1);
}

std::size_t GetParallelism() { return g_parallelism.load(std::memory_order_relaxed); }

ParallelPartition::ParallelPartition(std::size_t count, std::size_t min_per_chunk,
                                     std::size_t alignment) {
  GT_CHECK_GE(alignment, 1u);
  std::size_t chunks = std::min(GetParallelism(),
                                min_per_chunk == 0 ? count : count / min_per_chunk);
  chunks = std::max<std::size_t>(chunks, 1);

  bounds_.reserve(chunks + 1);
  bounds_.push_back(0);
  std::size_t per_chunk = (count + chunks - 1) / chunks;
  // Round the chunk size up to the alignment so only the last chunk ends
  // off-boundary (at `count` itself).
  per_chunk = ((per_chunk + alignment - 1) / alignment) * alignment;
  for (std::size_t c = 1; c < chunks; ++c) {
    std::size_t bound = std::min(count, c * per_chunk);
    if (bound <= bounds_.back()) break;  // fewer effective chunks than planned
    bounds_.push_back(bound);
  }
  bounds_.push_back(count);
  // Guard against a duplicate final bound when the loop already reached count.
  if (bounds_.size() >= 2 && bounds_[bounds_.size() - 2] == count) {
    bounds_.pop_back();
  }
  if (bounds_.size() == 1) bounds_.push_back(count);
}

void internal_RunOnPool(std::size_t chunks, const std::function<void(std::size_t)>& fn) {
  ThreadPool::Instance().RunChunks(chunks, fn);
}

}  // namespace graphtempo
