#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"
#include "util/check.h"

namespace graphtempo {

namespace {

std::atomic<std::size_t> g_parallelism{1};

/// Pool activity counters live in the unified obs registry so a single
/// `Registry::Snapshot()` (see GetExecCounters) observes them together with
/// the core counters — one generation, no torn `--perf` lines.
obs::Counter& PoolJobsCounter() {
  static obs::Counter& counter =
      obs::Registry::Instance().GetCounter("pool/jobs");
  return counter;
}

obs::Counter& PoolChunksCounter() {
  static obs::Counter& counter =
      obs::Registry::Instance().GetCounter("pool/chunks");
  return counter;
}

/// A lazily-started, process-lifetime worker pool. Spawning std::threads per
/// operator call costs more than a typical presence scan (≈1 ms on the DBLP
/// graph); persistent workers make small-grained parallelism worthwhile.
///
/// ## Job hand-off
///
/// Earlier revisions handed work to the workers through a single
/// `current_job_` slot. That scheme has two hazards this design removes:
///
///   1. *Nested issue*: a chunk body that itself called `RunChunks` swapped
///      the slot mid-flight, so workers woken for the outer job could be
///      retargeted at the inner one and the outer owner was left draining its
///      job alone (and, with unlucky interleavings of the generation counter,
///      risked waiting on a job no worker would ever revisit).
///   2. *Concurrent owners*: a second application thread issuing a scan
///      overwrote the first thread's job, silently serializing it.
///
/// Work is now handed over through a FIFO *queue of jobs*. Every `RunChunks`
/// call enqueues its own job; workers scan the queue for any job with
/// unclaimed chunks. Chunk claiming stays lock-free (`next` fetch_add), so
/// the mutex only guards queue membership and the condition variables.
///
/// Progress argument (no deadlock, any nesting depth, any number of owners):
/// an owner claims chunks of its *own* job until `next ≥ total` before it
/// blocks, so every chunk of every job is claimed by some thread that then
/// runs it to completion. A blocked owner therefore only ever waits on
/// chunks that are actively executing on other threads; because a thread
/// can only wait for a job it issued *below* the chunk it is executing, the
/// waits-for graph follows the (finite, acyclic) call-nesting order.
///
/// Jobs are heap-allocated shared_ptrs, so a worker that wakes late simply
/// finds the job exhausted and rescans — no way to misattribute chunks
/// across jobs. The pool object is intentionally leaked: workers may still
/// be blocked on the condition variable at process exit, and the
/// synchronization primitives must outlive them.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool& pool = *new ThreadPool();
    return pool;
  }

  /// Grows the worker set to `workers` (never shrinks; idle workers are cheap).
  void EnsureWorkers(std::size_t workers) {
    std::unique_lock<std::mutex> lock(mutex_);
    while (workers_.size() < workers) {
      workers_.emplace_back([this] { WorkerLoop(); });
      workers_.back().detach();
    }
  }

  /// Runs `fn(chunk)` for every chunk in [0, chunks); blocks until all chunks
  /// completed. The calling thread participates, claiming every chunk no
  /// worker has picked up yet. Safe to call from any thread, including from
  /// inside a chunk body running on this very pool.
  void RunChunks(std::size_t chunks, const std::function<void(std::size_t)>& fn) {
    if (chunks == 0) return;
    GT_SPAN("pool/job", {{"chunks", chunks}});
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->total = chunks;
    // Chunks executed on worker lanes inherit the issuing thread's request
    // context, so per-request attribution (kernel words, phase timings)
    // follows the query across threads. The owner blocks until every chunk
    // finishes, so the pointer outlives all uses.
    job->context = obs::CurrentRequestContext();
    job->remaining.store(chunks, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_.push_back(job);
    }
    work_available_.notify_all();
    PoolJobsCounter().Add(1);

    // Drain our own job first: after this returns, every chunk is claimed
    // (next ≥ total), so the wait below only covers chunks already running
    // on other threads.
    Work(*job);

    std::unique_lock<std::mutex> lock(mutex_);
    job->done.wait(lock, [&] {
      return job->remaining.load(std::memory_order_acquire) == 0;
    });
    // Retire the exhausted job. Only the owner erases, exactly once.
    auto it = std::find(queue_.begin(), queue_.end(), job);
    if (it != queue_.end()) queue_.erase(it);
  }

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    obs::RequestContext* context = nullptr;  ///< issuer's request context
    std::size_t total = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
    /// Signaled (under the pool mutex) when `remaining` hits zero. Per-job,
    /// so owners of distinct jobs never wake each other spuriously.
    std::condition_variable done;
  };

  ThreadPool() = default;

  /// Claims and runs chunks of `job` until none are left unclaimed.
  void Work(Job& job) {
    // Adopt the issuer's request context for the duration (a re-bind of the
    // same pointer when the owner drains its own job; the real hand-off for
    // pool workers).
    obs::ScopedRequestContext adopt(job.context);
    while (true) {
      std::size_t chunk = job.next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= job.total) return;
      {
        // Span destructs (and its event is published to this thread's trace
        // buffer) *before* the release `remaining.fetch_sub` below, so the
        // owner's collection happens-after every chunk record.
        GT_SPAN("pool/chunk", {{"chunk", chunk}});
        (*job.fn)(chunk);
      }
      PoolChunksCounter().Add(1);
      if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last chunk: wake the job owner. Locking the mutex (empty critical
        // section) pairs with the owner's wait and prevents a lost wakeup.
        { std::unique_lock<std::mutex> lock(mutex_); }
        job.done.notify_all();
      }
    }
  }

  /// A job with unclaimed chunks, oldest first; nullptr when none.
  /// Caller must hold `mutex_`. Exhausted jobs stay queued until their owner
  /// retires them, but claiming is gated on `next < total` so they are
  /// skipped here.
  std::shared_ptr<Job> FindRunnableLocked() {
    for (const std::shared_ptr<Job>& job : queue_) {
      if (job->next.load(std::memory_order_relaxed) < job->total) return job;
    }
    return nullptr;
  }

  void WorkerLoop() {
    obs::SetCurrentThreadLaneName("worker");
    while (true) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_available_.wait(lock, [&] { return FindRunnableLocked() != nullptr; });
        job = FindRunnableLocked();
      }
      Work(*job);
    }
  }

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::vector<std::thread> workers_;
  std::deque<std::shared_ptr<Job>> queue_;  // live jobs, FIFO
};

}  // namespace

void SetParallelism(std::size_t threads) {
  GT_CHECK_GE(threads, 1u) << "parallelism must be at least 1";
  g_parallelism.store(threads, std::memory_order_relaxed);
  if (threads > 1) ThreadPool::Instance().EnsureWorkers(threads - 1);
}

std::size_t GetParallelism() { return g_parallelism.load(std::memory_order_relaxed); }

bool ParseThreadCount(std::string_view text, std::size_t* threads, std::string* error) {
  std::uint64_t parsed = 0;
  if (!ParseUint64(text, &parsed) || parsed == 0) {
    if (error != nullptr) {
      *error = "must be a positive integer, got '" + std::string(text) + "'";
    }
    return false;
  }
  if (parsed > kMaxConfiguredThreads) {
    if (error != nullptr) {
      *error = "must be between 1 and " + std::to_string(kMaxConfiguredThreads) +
               ", got '" + std::string(text) + "'";
    }
    return false;
  }
  *threads = static_cast<std::size_t>(parsed);
  return true;
}

PoolStats GetPoolStats() {
  PoolStats stats;
  stats.jobs = PoolJobsCounter().Value();
  stats.chunks = PoolChunksCounter().Value();
  return stats;
}

void ResetPoolStats() {
  // Resets only the pool's two registry counters; the core exec counters are
  // untouched (ResetExecCounters zeroes the whole registry in one generation).
  PoolJobsCounter().Reset();
  PoolChunksCounter().Reset();
}

ParallelPartition::ParallelPartition(std::size_t count, std::size_t min_per_chunk,
                                     std::size_t alignment) {
  GT_CHECK_GE(alignment, 1u);
  std::size_t chunks = std::min(GetParallelism(),
                                min_per_chunk == 0 ? count : count / min_per_chunk);
  chunks = std::max<std::size_t>(chunks, 1);

  bounds_.reserve(chunks + 1);
  bounds_.push_back(0);
  std::size_t per_chunk = (count + chunks - 1) / chunks;
  // Round the chunk size up to the alignment so only the last chunk ends
  // off-boundary (at `count` itself).
  per_chunk = ((per_chunk + alignment - 1) / alignment) * alignment;
  for (std::size_t c = 1; c < chunks; ++c) {
    std::size_t bound = std::min(count, c * per_chunk);
    if (bound <= bounds_.back()) break;  // fewer effective chunks than planned
    bounds_.push_back(bound);
  }
  bounds_.push_back(count);
  // Guard against a duplicate final bound when the loop already reached count.
  if (bounds_.size() >= 2 && bounds_[bounds_.size() - 2] == count) {
    bounds_.pop_back();
  }
  if (bounds_.size() == 1) bounds_.push_back(count);
}

void internal_RunOnPool(std::size_t chunks, const std::function<void(std::size_t)>& fn) {
  ThreadPool::Instance().RunChunks(chunks, fn);
}

}  // namespace graphtempo
