#ifndef GRAPHTEMPO_UTIL_PARALLEL_H_
#define GRAPHTEMPO_UTIL_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file
/// Static-partition data parallelism for entity scans.
///
/// The hot loops of the temporal operators are embarrassingly parallel: one
/// independent presence-predicate evaluation per node/edge row. (The paper's
/// reference implementation leaned on Modin for the same reason.)
/// `ParallelPartition` splits an index range into per-thread chunks —
/// boundaries aligned so concurrent writers never share a bitset word — and
/// runs a callback per chunk. Chunk outputs indexed by chunk id keep results
/// deterministic regardless of thread scheduling.
///
/// Execution model (see docs/PARALLELISM.md for the full contract):
///
///   * The shared worker pool is a *multi-job* engine: every `Run` enqueues
///     its own job, so any number of application threads may issue parallel
///     scans concurrently — they share the workers instead of serializing or
///     trampling each other's hand-off slot.
///   * `Run`/`ParallelFor` are **reentrant**: a chunk body may itself invoke
///     `ParallelFor` (e.g. an aggregation running inside a parallel
///     exploration sweep). The issuing thread always drains its own job's
///     unclaimed chunks before blocking, so nesting can never deadlock —
///     in the worst case the nested scan simply runs inline.
///   * Parallelism is off by default (1 thread); opt in per process via
///     `SetParallelism` on multi-core machines. Every algorithm produces
///     bit-identical results at any thread count — asserted by the test
///     suite — so correctness never depends on the setting.

namespace graphtempo {

/// Sets the process-wide worker-thread count (≥ 1) and pre-starts the shared
/// worker pool. Not synchronized with running scans; call it during setup.
void SetParallelism(std::size_t threads);

/// Current process-wide worker-thread count.
std::size_t GetParallelism();

/// Largest thread count any user-facing knob accepts. Far above any sane
/// configuration — the cap exists so a typo ("--threads 1e9" pasted as
/// "--threads 19") cannot ask the OS for an absurd number of threads.
inline constexpr std::size_t kMaxConfiguredThreads = 512;

/// The one validator behind every user-facing thread/worker-count knob (CLI
/// `--threads`, `serve --workers`, `loadgen --clients`): accepts a decimal
/// integer in [1, kMaxConfiguredThreads]. On failure returns false and sets
/// `*error` to a human-readable reason (without the flag name, which the
/// caller prepends).
bool ParseThreadCount(std::string_view text, std::size_t* threads, std::string* error);

/// Cumulative counters of shared-pool activity (process-wide, all threads).
/// `jobs` counts multi-chunk dispatches; `chunks` counts chunk executions.
/// Single-chunk partitions run inline and are not pool activity.
struct PoolStats {
  std::uint64_t jobs = 0;
  std::uint64_t chunks = 0;
};

/// Snapshot of the pool counters since process start or the last reset.
PoolStats GetPoolStats();

/// Zeroes the pool counters (e.g. before one measured CLI command or bench).
void ResetPoolStats();

/// Internal: dispatches `chunks` invocations of `fn` onto the shared pool,
/// blocking until all complete. Use ParallelPartition::Run instead.
void internal_RunOnPool(std::size_t chunks, const std::function<void(std::size_t)>& fn);

class ParallelPartition {
 public:
  /// Plans chunks for `count` items. Uses min(GetParallelism(),
  /// count / min_per_chunk) chunks (at least one); chunk boundaries are
  /// multiples of `alignment`, so writers of packed bit arrays (64 items per
  /// word) never contend on a word.
  explicit ParallelPartition(std::size_t count, std::size_t min_per_chunk = 2048,
                             std::size_t alignment = 64);

  std::size_t num_chunks() const { return bounds_.size() - 1; }

  /// Half-open item range of chunk `i`.
  std::pair<std::size_t, std::size_t> chunk(std::size_t i) const {
    return {bounds_[i], bounds_[i + 1]};
  }

  /// Runs `fn(chunk_index, begin, end)` for every chunk — inline when there
  /// is one chunk, on the shared persistent worker pool otherwise (the
  /// calling thread participates). Reentrant: `fn` may itself run nested
  /// parallel scans. `fn` must not throw.
  template <typename Fn>
  void Run(Fn&& fn) const {
    if (num_chunks() == 1) {
      fn(std::size_t{0}, bounds_[0], bounds_[1]);
      return;
    }
    std::function<void(std::size_t)> chunk_fn = [&fn, this](std::size_t c) {
      fn(c, bounds_[c], bounds_[c + 1]);
    };
    internal_RunOnPool(num_chunks(), chunk_fn);
  }

 private:
  std::vector<std::size_t> bounds_;  // num_chunks + 1 ascending offsets
};

/// Convenience: runs `fn(chunk, begin, end)` over `count` items with the
/// default partition parameters.
template <typename Fn>
void ParallelFor(std::size_t count, Fn&& fn) {
  ParallelPartition(count).Run(std::forward<Fn>(fn));
}

}  // namespace graphtempo

#endif  // GRAPHTEMPO_UTIL_PARALLEL_H_
