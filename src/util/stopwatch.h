#ifndef GRAPHTEMPO_UTIL_STOPWATCH_H_
#define GRAPHTEMPO_UTIL_STOPWATCH_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

/// \file
/// Wall-clock timing helpers used by the benchmark harnesses.

namespace graphtempo {

/// A monotonic wall-clock stopwatch with millisecond/microsecond readouts.
class Stopwatch {
 public:
  /// Starts (or restarts) the stopwatch.
  void Start() { start_ = Clock::now(); }

  /// Elapsed time since `Start()` in microseconds.
  std::int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time since `Start()` in milliseconds, with sub-ms resolution.
  double ElapsedMillis() const { return static_cast<double>(ElapsedMicros()) / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_ = Clock::now();
};

/// Runs `fn` `repetitions` times and returns the median wall-clock time in
/// milliseconds. Medians resist one-off scheduling noise better than means,
/// which matters for the short per-time-point measurements of Figure 5.
template <typename Fn>
double MedianMillis(int repetitions, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(repetitions);
  for (int i = 0; i < repetitions; ++i) {
    Stopwatch watch;
    watch.Start();
    fn();
    samples.push_back(watch.ElapsedMillis());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace graphtempo

#endif  // GRAPHTEMPO_UTIL_STOPWATCH_H_
