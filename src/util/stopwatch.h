#ifndef GRAPHTEMPO_UTIL_STOPWATCH_H_
#define GRAPHTEMPO_UTIL_STOPWATCH_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>

/// \file
/// Wall-clock timing helpers used by the benchmark harnesses.

namespace graphtempo {

/// A monotonic wall-clock stopwatch with millisecond/microsecond readouts.
class Stopwatch {
 public:
  /// Starts (or restarts) the stopwatch.
  void Start() { start_ = Clock::now(); }

  /// Elapsed time since `Start()` in microseconds.
  std::int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time since `Start()` in milliseconds, with sub-ms resolution.
  double ElapsedMillis() const { return static_cast<double>(ElapsedMicros()) / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_ = Clock::now();
};

/// Nearest-rank `q`-quantile (q in [0, 1]) of `samples` in milliseconds.
/// Does not assume `samples` is sorted; returns 0 for an empty vector.
/// Nearest-rank (rank = ceil(q * n), 1-based) matches the histogram
/// percentiles of obs::HistogramSnapshot, so bench fields computed from raw
/// samples and from `span/<name>` histograms agree up to bucket rounding.
inline double PercentileMillis(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (q <= 0.0) return samples.front();
  if (q >= 1.0) return samples.back();
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  return samples[std::max<std::size_t>(rank, 1) - 1];
}

/// Runs `fn` `repetitions` times and returns the median wall-clock time in
/// milliseconds. Medians resist one-off scheduling noise better than means,
/// which matters for the short per-time-point measurements of Figure 5.
/// A median over fewer than 3 repetitions is mostly noise; the first time a
/// caller asks for one, a warning is printed to stderr (once per process).
template <typename Fn>
double MedianMillis(int repetitions, Fn&& fn) {
  if (repetitions < 3) {
    static bool warned = [] {
      std::fprintf(stderr,
                   "graphtempo: warning: MedianMillis with fewer than 3 "
                   "repetitions is dominated by noise; consider >= 3\n");
      return true;
    }();
    (void)warned;
  }
  std::vector<double> samples;
  samples.reserve(repetitions);
  for (int i = 0; i < repetitions; ++i) {
    Stopwatch watch;
    watch.Start();
    fn();
    samples.push_back(watch.ElapsedMillis());
  }
  return PercentileMillis(std::move(samples), 0.5);
}

}  // namespace graphtempo

#endif  // GRAPHTEMPO_UTIL_STOPWATCH_H_
