#include "util/stopwatch.h"

// Header-only for now; this translation unit anchors the library target and
// keeps a place for future non-inline timing utilities.
