#ifndef GRAPHTEMPO_SERVER_INGEST_H_
#define GRAPHTEMPO_SERVER_INGEST_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/temporal_graph.h"

/// \file
/// The append-only ingestion log of the query server (docs/SERVER.md §4): a
/// line-oriented changefeed of graph mutations. Clients POST batches of
/// records; a single writer thread applies them in order under the engine's
/// writer lock. Records are plain text, one per line, whitespace-separated:
///
/// ```
/// t  <label>                      append a new time point
/// n  <node> <time>                mark node present at time
/// e  <src> <dst> <time>           mark edge (and endpoints) present at time
/// sa <attr> <node> <value>        set a static node-attribute value
/// va <attr> <node> <time> <value> set a time-varying node-attribute value
/// ```
///
/// Times are labels or indices (wire::ParseTimePoint). Nodes are labels,
/// created on first reference; attributes must already exist. Blank lines and
/// `#` comments are skipped. The same format serves as the on-disk log
/// (`serve --ingest-log`): the server replays it on startup and appends every
/// accepted record, so a restarted server resumes from the same state.
///
/// Append-only discipline: `t` grows the domain, and data records may only
/// target existing time points — in the intended streaming use, the *latest*
/// one. Writing only to the newest point is what keeps every cached
/// old-interval answer valid (per-entry invalidation, docs/ENGINE.md §3).

namespace graphtempo::server {

/// One parsed changefeed record.
struct IngestRecord {
  enum class Kind : std::uint8_t {
    kAppendTime,        ///< t <label>
    kNodePresent,       ///< n <node> <time>
    kEdgePresent,       ///< e <src> <dst> <time>
    kStaticValue,       ///< sa <attr> <node> <value>
    kTimeVaryingValue,  ///< va <attr> <node> <time> <value>
  };

  Kind kind = Kind::kAppendTime;
  std::string time;   ///< time label/index (or the new label for kAppendTime)
  std::string node;   ///< node label (src for kEdgePresent)
  std::string node2;  ///< dst for kEdgePresent
  std::string attr;   ///< attribute name
  std::string value;  ///< attribute value

  /// Renders the record back to its log-line form.
  std::string ToLine() const;
};

/// Parses one changefeed line. Returns nullopt for blank/comment lines with
/// `*error` left empty, and nullopt with a diagnostic in `*error` for
/// malformed records.
std::optional<IngestRecord> ParseIngestLine(const std::string& line, std::string* error);

/// Parses a whole batch (newline-separated). Stops at the first malformed
/// line, reporting it as `line <n>: <reason>`.
std::optional<std::vector<IngestRecord>> ParseIngestBatch(const std::string& body,
                                                          std::string* error);

/// Applies one record to `graph`. Label-resolving and validating; returns
/// false with a diagnostic when the record references an unknown time,
/// attribute, or value slot. Caller must hold the writer side of whatever
/// lock brokers graph access (single-writer contract).
bool ApplyIngestRecord(TemporalGraph* graph, const IngestRecord& record,
                       std::string* error);

/// The bounded MPSC queue between HTTP ingest handlers and the writer
/// thread. Producers block never (Push fails when full); the single consumer
/// blocks in PopBatch until records arrive or the queue is closed.
class IngestQueue {
 public:
  explicit IngestQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueues a batch. False (rejecting the whole batch) when fewer than
  /// `records.size()` slots remain — backpressure surfaces as HTTP 503.
  bool Push(std::vector<IngestRecord> records);

  /// Blocks until records are available, then drains everything queued (the
  /// writer applies whole batches per lock acquisition). Empty result means
  /// the queue was closed and fully drained — the writer thread exits.
  std::vector<IngestRecord> PopBatch();

  /// Wakes the consumer and makes every later Push fail.
  void Close();

  std::size_t size() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::deque<IngestRecord> queue_;
  bool closed_ = false;
};

}  // namespace graphtempo::server

#endif  // GRAPHTEMPO_SERVER_INGEST_H_
