#ifndef GRAPHTEMPO_SERVER_RATE_LIMITER_H_
#define GRAPHTEMPO_SERVER_RATE_LIMITER_H_

#include <chrono>
#include <mutex>

/// \file
/// A token-bucket rate limiter for the query read path (docs/SERVER.md §5).
/// Tokens accrue continuously at `per_second` up to `burst`; each admitted
/// request spends one. Zero `per_second` disables limiting entirely (the
/// default — admission control still bounds concurrency).

namespace graphtempo::server {

class RateLimiter {
 public:
  /// `per_second` ≤ 0 builds an unlimited limiter. `burst` ≤ 0 defaults to
  /// max(per_second, 1) — one second of headroom.
  RateLimiter(double per_second, double burst);

  /// True when a token was available (and spent). Never blocks.
  bool TryAcquire();

  bool unlimited() const { return per_second_ <= 0; }

 private:
  using Clock = std::chrono::steady_clock;

  const double per_second_;
  const double burst_;

  std::mutex mutex_;
  double tokens_;
  Clock::time_point last_refill_;
};

}  // namespace graphtempo::server

#endif  // GRAPHTEMPO_SERVER_RATE_LIMITER_H_
