#include "server/ingest.h"

#include "engine/wire.h"
#include "util/string_util.h"

namespace graphtempo::server {

namespace {

/// Splits on runs of spaces/tabs, dropping empty fields (log lines are
/// whitespace-separated; labels and values therefore cannot contain spaces,
/// which WriteGraphToFile's TSV dialect already enforces for labels).
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) fields.push_back(line.substr(start, i - start));
  }
  return fields;
}

bool WrongArity(const std::vector<std::string>& fields, std::size_t expected,
                std::string* error) {
  if (fields.size() == expected) return false;
  *error = "record '" + fields[0] + "' takes " + std::to_string(expected - 1) +
           " field(s), got " + std::to_string(fields.size() - 1);
  return true;
}

}  // namespace

std::string IngestRecord::ToLine() const {
  switch (kind) {
    case Kind::kAppendTime:
      return "t " + time;
    case Kind::kNodePresent:
      return "n " + node + " " + time;
    case Kind::kEdgePresent:
      return "e " + node + " " + node2 + " " + time;
    case Kind::kStaticValue:
      return "sa " + attr + " " + node + " " + value;
    case Kind::kTimeVaryingValue:
      return "va " + attr + " " + node + " " + time + " " + value;
  }
  return "";
}

std::optional<IngestRecord> ParseIngestLine(const std::string& line, std::string* error) {
  error->clear();
  // CRLF-terminated bodies (curl --data-binary from Windows, HTTP clients
  // that join lines with \r\n) would otherwise leave the '\r' glued to the
  // last field — "t 5\r\n" must mean time point "5", not "5\r".
  std::string trimmed = line;
  while (!trimmed.empty() && (trimmed.back() == '\r' || trimmed.back() == '\n')) {
    trimmed.pop_back();
  }
  std::string_view stripped = StripWhitespace(trimmed);
  if (stripped.empty() || stripped[0] == '#') return std::nullopt;

  std::vector<std::string> fields = SplitFields(trimmed);
  IngestRecord record;
  const std::string& kind = fields[0];
  if (kind == "t") {
    if (WrongArity(fields, 2, error)) return std::nullopt;
    record.kind = IngestRecord::Kind::kAppendTime;
    record.time = fields[1];
  } else if (kind == "n") {
    if (WrongArity(fields, 3, error)) return std::nullopt;
    record.kind = IngestRecord::Kind::kNodePresent;
    record.node = fields[1];
    record.time = fields[2];
  } else if (kind == "e") {
    if (WrongArity(fields, 4, error)) return std::nullopt;
    record.kind = IngestRecord::Kind::kEdgePresent;
    record.node = fields[1];
    record.node2 = fields[2];
    record.time = fields[3];
  } else if (kind == "sa") {
    if (WrongArity(fields, 4, error)) return std::nullopt;
    record.kind = IngestRecord::Kind::kStaticValue;
    record.attr = fields[1];
    record.node = fields[2];
    record.value = fields[3];
  } else if (kind == "va") {
    if (WrongArity(fields, 5, error)) return std::nullopt;
    record.kind = IngestRecord::Kind::kTimeVaryingValue;
    record.attr = fields[1];
    record.node = fields[2];
    record.time = fields[3];
    record.value = fields[4];
  } else {
    *error = "unknown record kind '" + kind + "' (t|n|e|sa|va)";
    return std::nullopt;
  }
  return record;
}

std::optional<std::vector<IngestRecord>> ParseIngestBatch(const std::string& body,
                                                          std::string* error) {
  std::vector<IngestRecord> records;
  std::size_t line_number = 0;
  for (const std::string& line : Split(body, '\n')) {
    ++line_number;
    std::string line_error;
    std::optional<IngestRecord> record = ParseIngestLine(line, &line_error);
    if (record.has_value()) {
      records.push_back(std::move(*record));
    } else if (!line_error.empty()) {
      *error = "line " + std::to_string(line_number) + ": " + line_error;
      return std::nullopt;
    }
  }
  return records;
}

bool ApplyIngestRecord(TemporalGraph* graph, const IngestRecord& record,
                       std::string* error) {
  auto resolve_time = [&](const std::string& text) -> std::optional<TimeId> {
    return engine::wire::ParseTimePoint(*graph, text, error);
  };

  switch (record.kind) {
    case IngestRecord::Kind::kAppendTime: {
      if (graph->FindTime(record.time).has_value()) {
        *error = "time point '" + record.time + "' already exists";
        return false;
      }
      graph->AppendTimePoint(record.time);
      return true;
    }
    case IngestRecord::Kind::kNodePresent: {
      std::optional<TimeId> t = resolve_time(record.time);
      if (!t.has_value()) return false;
      graph->SetNodePresent(graph->GetOrAddNode(record.node), *t);
      return true;
    }
    case IngestRecord::Kind::kEdgePresent: {
      std::optional<TimeId> t = resolve_time(record.time);
      if (!t.has_value()) return false;
      NodeId src = graph->GetOrAddNode(record.node);
      NodeId dst = graph->GetOrAddNode(record.node2);
      graph->SetEdgePresent(graph->GetOrAddEdge(src, dst), *t);
      return true;
    }
    case IngestRecord::Kind::kStaticValue: {
      std::optional<AttrRef> attr = graph->FindAttribute(record.attr);
      if (!attr.has_value() || attr->kind != AttrRef::Kind::kStatic) {
        *error = "unknown static attribute '" + record.attr + "'";
        return false;
      }
      graph->SetStaticValue(attr->index, graph->GetOrAddNode(record.node), record.value);
      return true;
    }
    case IngestRecord::Kind::kTimeVaryingValue: {
      std::optional<AttrRef> attr = graph->FindAttribute(record.attr);
      if (!attr.has_value() || attr->kind != AttrRef::Kind::kTimeVarying) {
        *error = "unknown time-varying attribute '" + record.attr + "'";
        return false;
      }
      std::optional<TimeId> t = resolve_time(record.time);
      if (!t.has_value()) return false;
      graph->SetTimeVaryingValue(attr->index, graph->GetOrAddNode(record.node), *t,
                                 record.value);
      return true;
    }
  }
  *error = "corrupt record";
  return false;
}

bool IngestQueue::Push(std::vector<IngestRecord> records) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_ || queue_.size() + records.size() > capacity_) return false;
  for (IngestRecord& record : records) queue_.push_back(std::move(record));
  available_.notify_one();
  return true;
}

std::vector<IngestRecord> IngestQueue::PopBatch() {
  std::unique_lock<std::mutex> lock(mutex_);
  available_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  std::vector<IngestRecord> batch(std::make_move_iterator(queue_.begin()),
                                  std::make_move_iterator(queue_.end()));
  queue_.clear();
  return batch;
}

void IngestQueue::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  available_.notify_all();
}

std::size_t IngestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace graphtempo::server
