#include "server/batcher.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace graphtempo::server {

namespace {

obs::Counter& BatchWindowsCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("server/batch_windows");
  return c;
}
obs::Counter& BatchGatheredCounter() {
  static obs::Counter& c =
      obs::Registry::Instance().GetCounter("server/batch_gathered");
  return c;
}
obs::Counter& BatchRidersCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("server/batch_riders");
  return c;
}

}  // namespace

engine::QueryResult QueryBatcher::Execute(const engine::QuerySpec& spec,
                                          obs::RequestContext* ctx) {
  if (window_us_ <= 0) {
    // Gathering disabled: the historical one-query-one-execution path. The
    // caller's thread-bound request context attributes as before.
    return engine_->ExecuteResult(spec);
  }

  Pending item;
  item.spec = &spec;
  item.ctx = ctx;

  std::unique_lock<std::mutex> lock(mutex_);
  queue_.push_back(&item);
  if (leader_active_) {
    // A leader is gathering; it will execute this item and fill the slot.
    done_.wait(lock, [&] { return item.done; });
    return std::move(item.result);
  }

  // Become the leader: hold the window open so concurrent arrivals join,
  // then take whatever gathered and run it as one engine batch. The wait
  // releases `mutex_`, which is exactly what lets followers enqueue.
  leader_active_ = true;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(window_us_);
  // No predicate: nothing ends the window early — arrivals are the point.
  // Spurious wakeups just re-check the clock.
  while (done_.wait_until(lock, deadline) != std::cv_status::timeout) {
  }

  std::vector<Pending*> batch;
  batch.swap(queue_);
  leader_active_ = false;  // the next arrival leads the next window
  lock.unlock();

  BatchWindowsCounter().Increment();
  BatchGatheredCounter().Add(batch.size());
  std::vector<engine::QueryEngine::BatchItem> items;
  items.reserve(batch.size());
  for (Pending* pending : batch) {
    items.push_back({pending->spec, pending->ctx});
  }
  std::vector<engine::QueryResult> results = engine_->ExecuteBatch(items);

  lock.lock();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i]->result = std::move(results[i]);
    batch[i]->done = true;
  }
  lock.unlock();
  done_.notify_all();
  return std::move(item.result);
}

std::optional<engine::QueryResult> QueryBatcher::TryJoinActiveWindow(
    const engine::QuerySpec& spec, obs::RequestContext* ctx) {
  if (window_us_ <= 0) return std::nullopt;
  Pending item;
  item.spec = &spec;
  item.ctx = ctx;

  std::unique_lock<std::mutex> lock(mutex_);
  // `leader_active_` flips false under `mutex_` at the same instant the
  // leader swaps the queue out, so observing it true here guarantees this
  // item lands in the batch the leader is about to execute.
  if (!leader_active_) return std::nullopt;
  queue_.push_back(&item);
  BatchRidersCounter().Increment();
  done_.wait(lock, [&] { return item.done; });
  return std::move(item.result);
}

}  // namespace graphtempo::server
