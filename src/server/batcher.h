#ifndef GRAPHTEMPO_SERVER_BATCHER_H_
#define GRAPHTEMPO_SERVER_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "engine/engine.h"
#include "obs/context.h"

/// \file
/// `QueryBatcher`: the server's bounded gather window in front of
/// `QueryEngine::ExecuteBatch` (docs/ENGINE.md §Batch execution).
///
/// With a window of 0 (the default) every query executes alone — exactly the
/// historical path. With `--batch-window-us N`, the first query to arrive
/// while no batch is forming becomes the *leader*: it waits up to N
/// microseconds for concurrent queries to pile on, then executes the whole
/// group as one engine batch — equivalent specs are answered once and fanned
/// out, and distinct specs share one presence-fold cache. Followers block on
/// their slot until the leader publishes their result.
///
/// The window trades a bounded latency floor (≤ N µs added to the leader's
/// query) for shared work under concurrency; results are byte-identical to
/// serial execution, pinned by the batch differential suite.
///
/// Callers hold the server's shared `graph_mutex_` for the duration of
/// `Execute`, so every batch participant sees the same frozen graph and the
/// ingestion writer cannot slip between gather and execution.

namespace graphtempo::server {

class QueryBatcher {
 public:
  /// Does not take ownership; `engine` must outlive the batcher.
  /// `window_us` ≤ 0 disables gathering (every call executes directly).
  QueryBatcher(engine::QueryEngine* engine, std::int64_t window_us)
      : engine_(engine), window_us_(window_us) {}

  QueryBatcher(const QueryBatcher&) = delete;
  QueryBatcher& operator=(const QueryBatcher&) = delete;

  /// Executes `spec`, possibly as part of a gathered batch. `ctx` (may be
  /// null) receives the engine's per-request attribution regardless of which
  /// thread actually ran the spec.
  engine::QueryResult Execute(const engine::QuerySpec& spec,
                              obs::RequestContext* ctx);

  /// Joins a gather window that is *already open* without becoming a leader:
  /// returns the batch-computed result when a leader is currently gathering,
  /// `nullopt` when no window is open (or gathering is disabled). The
  /// server's admission control uses this to let an over-capacity query ride
  /// an in-flight batch — the gathered group is one in-flight unit, so
  /// piling onto it adds no engine concurrency.
  std::optional<engine::QueryResult> TryJoinActiveWindow(
      const engine::QuerySpec& spec, obs::RequestContext* ctx);

 private:
  /// One waiting query: its inputs, and the slot the leader fills.
  struct Pending {
    const engine::QuerySpec* spec = nullptr;
    obs::RequestContext* ctx = nullptr;
    engine::QueryResult result;
    bool done = false;
  };

  engine::QueryEngine* engine_;
  std::int64_t window_us_;

  std::mutex mutex_;
  std::condition_variable done_;       ///< leader → followers: results ready
  std::vector<Pending*> queue_;        ///< queries gathered for the next batch
  bool leader_active_ = false;         ///< a leader is currently gathering
};

}  // namespace graphtempo::server

#endif  // GRAPHTEMPO_SERVER_BATCHER_H_
