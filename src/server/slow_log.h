#ifndef GRAPHTEMPO_SERVER_SLOW_LOG_H_
#define GRAPHTEMPO_SERVER_SLOW_LOG_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

/// \file
/// Structured line logging for the serving path (docs/OBSERVABILITY.md
/// §Serving-path observability): the slow-query log and the access log are
/// both `LogWriter`s — a background thread appends JSON lines to a rotating
/// file while a bounded in-memory ring keeps the most recent records for
/// `GET /debug/slow`, so an operator can inspect recent slow queries without
/// shell access to the log file.

namespace graphtempo::server {

/// Asynchronous line writer. `Append` never blocks on disk: lines are queued
/// under a mutex and drained by one background thread, which rotates the file
/// (rename to `<path>.1`, reopen) when it would exceed `max_bytes`. The last
/// `ring_capacity` lines are always retained in memory — also when `path` is
/// empty (ring-only mode, used when no on-disk log was configured).
class LogWriter {
 public:
  /// `path` may be "" for ring-only operation. The writer thread starts
  /// immediately.
  explicit LogWriter(std::string path, std::size_t max_bytes = 16u << 20,
                     std::size_t ring_capacity = 128);
  ~LogWriter();

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Enqueues one line (no trailing newline). Lines appended after Shutdown
  /// began are dropped.
  void Append(std::string line);

  /// The most recent lines, oldest first. Includes lines still queued for
  /// disk — the ring is updated at Append time, not at write time.
  std::vector<std::string> Recent() const;

  /// Total lines accepted (for tests and /stats).
  std::uint64_t lines_appended() const;

  /// Flushes the queue to disk and joins the writer thread. Idempotent.
  void Shutdown();

 private:
  void WriterLoop();

  const std::string path_;
  const std::size_t max_bytes_;
  const std::size_t ring_capacity_;

  mutable std::mutex mutex_;
  std::condition_variable work_;
  std::deque<std::string> queue_;   ///< lines awaiting disk
  std::deque<std::string> ring_;    ///< last `ring_capacity_` lines
  std::uint64_t appended_ = 0;
  bool stopping_ = false;
  std::thread writer_;
};

}  // namespace graphtempo::server

#endif  // GRAPHTEMPO_SERVER_SLOW_LOG_H_
