#ifndef GRAPHTEMPO_SERVER_HTTP_H_
#define GRAPHTEMPO_SERVER_HTTP_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file
/// Minimal HTTP/1.1 plumbing over blocking POSIX sockets — just enough for
/// the query service's wire protocol (docs/SERVER.md): request parsing with a
/// size cap and deadline, response writing, connection persistence when the
/// client asks for `Connection: keep-alive` (`Connection: close` otherwise;
/// SSE streams are their own thing), a one-shot blocking fetch, and a
/// persistent `HttpClient` the load generator uses to measure the wire tax
/// of reconnecting per request. No TLS, no chunked transfer — a reverse
/// proxy fronts a real deployment.

namespace graphtempo::server {

struct HttpRequest {
  std::string method;  ///< "GET" / "POST"
  std::string path;    ///< path without the query string
  std::string query;   ///< raw query string ("" when absent)
  std::map<std::string, std::string> headers;  ///< keys lowercased
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra response headers (name, value) emitted verbatim by
  /// WriteHttpResponse; on the client side, HttpFetch parses every response
  /// header here with lowercased names (Content-Type also mirrored above).
  /// Last so the common `{status, type, body}` aggregate init keeps working.
  std::vector<std::pair<std::string, std::string>> headers = {};

  /// First value of `name` (lowercase) among the parsed headers, or "".
  std::string Header(std::string_view name) const;
};

/// Canonical reason phrase for the status codes the server emits.
const char* StatusReason(int status);

/// Reads one request from `fd`. Enforces `max_bytes` over header + body and
/// an overall `timeout_ms` deadline. On failure returns nullopt with a
/// diagnostic (caller answers 400 or drops the connection) — except a clean
/// EOF before any bytes arrived, which returns nullopt with `*error` cleared
/// to "": that is a keep-alive client hanging up between requests, not an
/// error.
std::optional<HttpRequest> ReadHttpRequest(int fd, std::size_t max_bytes,
                                           int timeout_ms, std::string* error);

/// Writes a complete response with Content-Length. `keep_alive` picks the
/// Connection header: `keep-alive` keeps the socket open for the next
/// request, `close` (the default, and the historical behaviour) ends it.
bool WriteHttpResponse(int fd, const HttpResponse& response,
                       bool keep_alive = false);

/// Writes raw bytes (SSE frames); EPIPE-safe (returns false, no signal).
bool WriteRaw(int fd, std::string_view data);

/// Binds and listens on 127.0.0.1:`port` (0 = ephemeral). Returns the fd, or
/// -1 with a diagnostic.
int CreateListenSocket(int port, std::string* error);

/// The locally-bound port of a listening socket (resolves ephemeral binds).
int ListenSocketPort(int fd);

/// Blocking TCP connect to host:port. Returns the fd, or -1 with diagnostic.
int ConnectTcp(const std::string& host, int port, std::string* error);

/// One blocking request/response round trip (the load generator's client).
/// `request_headers` are sent verbatim after the Host line (e.g.
/// `{"X-GT-Request-Id", "cli-7"}` or an Accept override).
std::optional<HttpResponse> HttpFetch(
    const std::string& host, int port, const std::string& method,
    const std::string& path, const std::string& body, std::string* error,
    int timeout_ms = 10000,
    const std::vector<std::pair<std::string, std::string>>& request_headers = {});

/// A blocking client holding one persistent keep-alive connection. Fetch
/// sends `Connection: keep-alive` and frames responses by Content-Length
/// (never read-to-EOF), so the socket survives across round trips;
/// reconnects transparently when the server closed it (counted in
/// `connects()` — the load generator's `--keep-alive` mode reports the
/// reconnect tax as connects/requests). Not thread-safe: one client per
/// load-generator worker.
class HttpClient {
 public:
  HttpClient(std::string host, int port) : host_(std::move(host)), port_(port) {}
  ~HttpClient() { Close(); }

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// One round trip over the persistent connection. On a send failure over a
  /// *reused* socket (server idle-closed it) reconnects once and retries; any
  /// other failure returns nullopt with a diagnostic and drops the socket so
  /// the next call starts clean.
  std::optional<HttpResponse> Fetch(
      const std::string& method, const std::string& path, const std::string& body,
      std::string* error, int timeout_ms = 10000,
      const std::vector<std::pair<std::string, std::string>>& request_headers = {});

  /// Drops the connection (next Fetch reconnects).
  void Close();

  /// TCP connects performed so far (1 = every request shared one socket).
  std::uint64_t connects() const { return connects_; }

 private:
  std::string host_;
  int port_;
  int fd_ = -1;
  std::uint64_t connects_ = 0;
};

}  // namespace graphtempo::server

#endif  // GRAPHTEMPO_SERVER_HTTP_H_
