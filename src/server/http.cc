#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace graphtempo::server {

namespace {

using Clock = std::chrono::steady_clock;

int RemainingMillis(Clock::time_point deadline) {
  auto remaining =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
  return remaining.count() <= 0 ? 0 : static_cast<int>(remaining.count());
}

/// Waits until `fd` is readable or the deadline passes.
bool WaitReadable(int fd, Clock::time_point deadline) {
  while (true) {
    int timeout = RemainingMillis(deadline);
    if (timeout == 0) return false;
    struct pollfd entry = {fd, POLLIN, 0};
    int ready = ::poll(&entry, 1, timeout);
    if (ready > 0) return true;
    if (ready == 0) return false;
    if (errno != EINTR) return false;
  }
}

std::string Lowercase(std::string text) {
  for (char& c : text) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return text;
}

}  // namespace

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Response";
  }
}

std::optional<HttpRequest> ReadHttpRequest(int fd, std::size_t max_bytes,
                                           int timeout_ms, std::string* error) {
  Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::string buffer;
  std::size_t header_end = std::string::npos;

  // Accumulate until the blank line ending the header block.
  while (header_end == std::string::npos) {
    if (buffer.size() >= max_bytes) {
      *error = "request headers exceed " + std::to_string(max_bytes) + " bytes";
      return std::nullopt;
    }
    if (!WaitReadable(fd, deadline)) {
      *error = "timed out reading request";
      return std::nullopt;
    }
    char chunk[4096];
    ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got == 0) {
      if (buffer.empty()) {
        // Clean EOF before any bytes: a keep-alive client hung up between
        // requests. Signalled by an *empty* error string.
        error->clear();
      } else {
        *error = "connection closed mid-request";
      }
      return std::nullopt;
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      *error = std::string("recv: ") + std::strerror(errno);
      return std::nullopt;
    }
    buffer.append(chunk, static_cast<std::size_t>(got));
    header_end = buffer.find("\r\n\r\n");
  }

  HttpRequest request;
  std::size_t line_start = 0;
  std::size_t line_end = buffer.find("\r\n");
  {
    std::string request_line = buffer.substr(0, line_end);
    std::size_t first_space = request_line.find(' ');
    std::size_t second_space =
        first_space == std::string::npos ? std::string::npos
                                         : request_line.find(' ', first_space + 1);
    if (second_space == std::string::npos) {
      *error = "malformed request line";
      return std::nullopt;
    }
    request.method = request_line.substr(0, first_space);
    std::string target =
        request_line.substr(first_space + 1, second_space - first_space - 1);
    std::size_t question = target.find('?');
    if (question == std::string::npos) {
      request.path = target;
    } else {
      request.path = target.substr(0, question);
      request.query = target.substr(question + 1);
    }
  }

  line_start = line_end + 2;
  while (line_start < header_end) {
    line_end = buffer.find("\r\n", line_start);
    std::string line = buffer.substr(line_start, line_end - line_start);
    line_start = line_end + 2;
    std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string key = Lowercase(line.substr(0, colon));
    std::size_t value_start = colon + 1;
    while (value_start < line.size() && line[value_start] == ' ') ++value_start;
    request.headers[key] = line.substr(value_start);
  }

  std::size_t content_length = 0;
  if (auto it = request.headers.find("content-length"); it != request.headers.end()) {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      *error = "malformed Content-Length";
      return std::nullopt;
    }
    content_length = static_cast<std::size_t>(parsed);
  }
  if (header_end + 4 + content_length > max_bytes) {
    *error = "request body exceeds " + std::to_string(max_bytes) + " bytes";
    return std::nullopt;
  }

  request.body = buffer.substr(header_end + 4);
  while (request.body.size() < content_length) {
    if (!WaitReadable(fd, deadline)) {
      *error = "timed out reading request body";
      return std::nullopt;
    }
    char chunk[4096];
    ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got == 0) {
      *error = "connection closed mid-body";
      return std::nullopt;
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      *error = std::string("recv: ") + std::strerror(errno);
      return std::nullopt;
    }
    request.body.append(chunk, static_cast<std::size_t>(got));
  }
  request.body.resize(content_length);
  return request;
}

bool WriteRaw(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t wrote = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

bool WriteHttpResponse(int fd, const HttpResponse& response, bool keep_alive) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusReason(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    head += name + ": " + value + "\r\n";
  }
  head += keep_alive ? "Connection: keep-alive\r\n\r\n" : "Connection: close\r\n\r\n";
  // One send: splitting head/body into two writes triggers Nagle + delayed-ACK
  // stalls (~40ms) on keep-alive sockets where no close() flushes the tail.
  head += response.body;
  return WriteRaw(fd, head);
}

std::string HttpResponse::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return "";
}

int CreateListenSocket(int port, std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  struct sockaddr_in address;
  std::memset(&address, 0, sizeof(address));
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&address), sizeof(address)) < 0) {
    *error = "bind to port " + std::to_string(port) + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 128) < 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int ListenSocketPort(int fd) {
  struct sockaddr_in address;
  socklen_t length = sizeof(address);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&address), &length) < 0) {
    return -1;
  }
  return static_cast<int>(ntohs(address.sin_port));
}

int ConnectTcp(const std::string& host, int port, std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  struct sockaddr_in address;
  std::memset(&address, 0, sizeof(address));
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    *error = "unsupported host '" + host + "' (use a dotted IPv4 address)";
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&address), sizeof(address)) < 0) {
    *error = "connect to " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return -1;
  }
  int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return fd;
}

std::optional<HttpResponse> HttpFetch(
    const std::string& host, int port, const std::string& method,
    const std::string& path, const std::string& body, std::string* error,
    int timeout_ms,
    const std::vector<std::pair<std::string, std::string>>& request_headers) {
  int fd = ConnectTcp(host, port, error);
  if (fd < 0) return std::nullopt;

  std::string request = method + " " + path + " HTTP/1.1\r\n";
  request += "Host: " + host + "\r\n";
  for (const auto& [name, value] : request_headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: close\r\n\r\n";
  request += body;
  if (!WriteRaw(fd, request)) {
    *error = "failed to send request";
    ::close(fd);
    return std::nullopt;
  }

  Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::string buffer;
  while (true) {
    if (!WaitReadable(fd, deadline)) {
      *error = "timed out waiting for response";
      ::close(fd);
      return std::nullopt;
    }
    char chunk[8192];
    ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      *error = std::string("recv: ") + std::strerror(errno);
      ::close(fd);
      return std::nullopt;
    }
    if (got == 0) break;  // Connection: close — EOF ends the response
    buffer.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);

  std::size_t header_end = buffer.find("\r\n\r\n");
  std::size_t status_end = buffer.find("\r\n");
  if (header_end == std::string::npos || buffer.size() < 12) {
    *error = "malformed response";
    return std::nullopt;
  }
  HttpResponse response;
  response.status = std::atoi(buffer.substr(9, status_end - 9).c_str());
  // Parse every response header (names lowercased); Content-Type is also
  // mirrored into the dedicated field.
  std::size_t line_start = status_end + 2;
  while (line_start < header_end) {
    std::size_t line_end = buffer.find("\r\n", line_start);
    std::string line = buffer.substr(line_start, line_end - line_start);
    line_start = line_end + 2;
    std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string key = Lowercase(line.substr(0, colon));
    std::size_t value_start = colon + 1;
    while (value_start < line.size() && line[value_start] == ' ') ++value_start;
    std::string value = line.substr(value_start);
    if (key == "content-type") response.content_type = value;
    response.headers.emplace_back(std::move(key), std::move(value));
  }
  response.body = buffer.substr(header_end + 4);
  return response;
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<HttpResponse> HttpClient::Fetch(
    const std::string& method, const std::string& path, const std::string& body,
    std::string* error, int timeout_ms,
    const std::vector<std::pair<std::string, std::string>>& request_headers) {
  const bool reused = fd_ >= 0;
  if (!reused) {
    fd_ = ConnectTcp(host_, port_, error);
    if (fd_ < 0) return std::nullopt;
    ++connects_;
  }

  std::string request = method + " " + path + " HTTP/1.1\r\n";
  request += "Host: " + host_ + "\r\n";
  for (const auto& [name, value] : request_headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: keep-alive\r\n\r\n";
  request += body;
  if (!WriteRaw(fd_, request)) {
    Close();
    if (reused) {
      // The server idle-closed the persistent socket between requests;
      // reconnect once and retry (the retried request was never received).
      return Fetch(method, path, body, error, timeout_ms, request_headers);
    }
    *error = "failed to send request";
    return std::nullopt;
  }

  // Keep-alive responses are framed by Content-Length, never by EOF.
  Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::string buffer;
  std::size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    if (!WaitReadable(fd_, deadline)) {
      *error = "timed out waiting for response";
      Close();
      return std::nullopt;
    }
    char chunk[8192];
    ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      *error = std::string("recv: ") + std::strerror(errno);
      Close();
      return std::nullopt;
    }
    if (got == 0) {
      Close();
      if (reused && buffer.empty()) {
        // Raced the server's idle close: the connection died before any
        // response byte, so the request was dropped unprocessed. Retry on a
        // fresh socket.
        return Fetch(method, path, body, error, timeout_ms, request_headers);
      }
      *error = "connection closed mid-response";
      return std::nullopt;
    }
    buffer.append(chunk, static_cast<std::size_t>(got));
    header_end = buffer.find("\r\n\r\n");
  }

  std::size_t status_end = buffer.find("\r\n");
  if (buffer.size() < 12) {
    *error = "malformed response";
    Close();
    return std::nullopt;
  }
  HttpResponse response;
  response.status = std::atoi(buffer.substr(9, status_end - 9).c_str());
  std::size_t content_length = 0;
  bool server_close = false;
  std::size_t line_start = status_end + 2;
  while (line_start < header_end) {
    std::size_t line_end = buffer.find("\r\n", line_start);
    std::string line = buffer.substr(line_start, line_end - line_start);
    line_start = line_end + 2;
    std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string key = Lowercase(line.substr(0, colon));
    std::size_t value_start = colon + 1;
    while (value_start < line.size() && line[value_start] == ' ') ++value_start;
    std::string value = line.substr(value_start);
    if (key == "content-type") response.content_type = value;
    if (key == "content-length") {
      content_length = static_cast<std::size_t>(std::strtoull(value.c_str(), nullptr, 10));
    }
    if (key == "connection" && Lowercase(value) == "close") server_close = true;
    response.headers.emplace_back(std::move(key), std::move(value));
  }

  std::string body_bytes = buffer.substr(header_end + 4);
  while (body_bytes.size() < content_length) {
    if (!WaitReadable(fd_, deadline)) {
      *error = "timed out reading response body";
      Close();
      return std::nullopt;
    }
    char chunk[8192];
    ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got == 0) {
      *error = "connection closed mid-response";
      Close();
      return std::nullopt;
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      *error = std::string("recv: ") + std::strerror(errno);
      Close();
      return std::nullopt;
    }
    body_bytes.append(chunk, static_cast<std::size_t>(got));
  }
  body_bytes.resize(content_length);
  response.body = std::move(body_bytes);
  if (server_close) Close();
  return response;
}

}  // namespace graphtempo::server
