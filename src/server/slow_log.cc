#include "server/slow_log.h"

#include <cstdio>
#include <fstream>
#include <utility>

namespace graphtempo::server {

LogWriter::LogWriter(std::string path, std::size_t max_bytes,
                     std::size_t ring_capacity)
    : path_(std::move(path)),
      max_bytes_(max_bytes),
      ring_capacity_(ring_capacity) {
  writer_ = std::thread([this] { WriterLoop(); });
}

LogWriter::~LogWriter() { Shutdown(); }

void LogWriter::Append(std::string line) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    ring_.push_back(line);
    while (ring_.size() > ring_capacity_) ring_.pop_front();
    queue_.push_back(std::move(line));
    ++appended_;
  }
  work_.notify_one();
}

std::vector<std::string> LogWriter::Recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<std::string>(ring_.begin(), ring_.end());
}

std::uint64_t LogWriter::lines_appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

void LogWriter::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Another (or an earlier) Shutdown already signalled; fall through to
      // the join below, which is a no-op on a joined thread handle.
    }
    stopping_ = true;
  }
  work_.notify_all();
  if (writer_.joinable()) writer_.join();
}

void LogWriter::WriterLoop() {
  // Opened lazily on the first line, so a ring-only writer touches no file.
  std::ofstream out;
  std::size_t written = 0;
  auto open_for_append = [&] {
    out.open(path_, std::ios::app);
    written = out.is_open() ? static_cast<std::size_t>(out.tellp()) : 0;
  };

  while (true) {
    std::deque<std::string> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      batch.swap(queue_);
      if (batch.empty() && stopping_) return;  // drained, done
    }
    if (path_.empty()) continue;  // ring-only
    if (!out.is_open()) open_for_append();
    for (const std::string& line : batch) {
      const std::size_t bytes = line.size() + 1;
      if (out.is_open() && written + bytes > max_bytes_ && written > 0) {
        // Rotate: keep exactly one previous generation.
        out.close();
        std::rename(path_.c_str(), (path_ + ".1").c_str());
        open_for_append();
      }
      if (!out.is_open()) break;  // unwritable path; keep draining the queue
      out << line << "\n";
      written += bytes;
    }
    if (out.is_open()) out.flush();
  }
}

}  // namespace graphtempo::server
