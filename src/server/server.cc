#include "server/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <utility>

#include "accel/backend.h"
#include "engine/wire.h"
#include "obs/metrics.h"
#include "util/json.h"

namespace graphtempo::server {

namespace {

obs::Counter& RequestsCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("server/requests");
  return c;
}
obs::Counter& BadRequestCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("server/bad_request");
  return c;
}
obs::Counter& RejectedRateCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("server/rejected_rate");
  return c;
}
obs::Counter& RejectedAdmissionCounter() {
  static obs::Counter& c =
      obs::Registry::Instance().GetCounter("server/rejected_admission");
  return c;
}
obs::Counter& IngestRecordsCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("server/ingest_records");
  return c;
}
obs::Counter& IngestBatchesCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("server/ingest_batches");
  return c;
}
obs::Counter& EventsPushedCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("server/events_pushed");
  return c;
}
obs::Histogram& QueryLatencyHistogram() {
  static obs::Histogram& h =
      obs::Registry::Instance().GetHistogram("server/query_latency_us");
  return h;
}

HttpResponse JsonError(int status, const std::string& message) {
  json::Value body = json::Value::Object();
  body.Set("error", json::Value::String(message));
  return HttpResponse{status, "application/json", body.Serialize()};
}

/// One SSE frame: `event: <name>` + one `data:` line per payload line.
std::string SseFrame(const std::string& event, const std::string& data) {
  std::string frame = "event: " + event + "\n";
  std::size_t start = 0;
  while (start <= data.size()) {
    std::size_t newline = data.find('\n', start);
    if (newline == std::string::npos) {
      frame += "data: " + data.substr(start) + "\n";
      break;
    }
    frame += "data: " + data.substr(start, newline - start) + "\n";
    start = newline + 1;
  }
  frame += "\n";
  return frame;
}

}  // namespace

Server::Server(TemporalGraph* graph, engine::QueryEngine* engine, ServerConfig config)
    : graph_(graph),
      engine_(engine),
      config_(std::move(config)),
      ingest_queue_(config_.ingest_queue_capacity),
      rate_limiter_(config_.rate_limit_qps, config_.rate_limit_burst) {
  if (config_.worker_threads == 0) config_.worker_threads = 1;
}

Server::~Server() { Shutdown(); }

bool Server::Start(std::string* error) {
  State expected = State::kIdle;
  if (!state_.compare_exchange_strong(expected, State::kRunning)) {
    *error = "server already started";
    return false;
  }

  if (!config_.ingest_log_path.empty()) {
    std::ifstream log(config_.ingest_log_path);
    if (log.is_open()) {
      // Replay under the same locks live ingestion takes, so Start may be
      // called on an engine that is already serving.
      std::unique_lock<std::shared_mutex> server_writer(graph_mutex_);
      auto engine_writer = engine_->AcquireWriterLock();
      std::string line;
      std::size_t line_number = 0;
      while (std::getline(log, line)) {
        ++line_number;
        std::string parse_error;
        std::optional<IngestRecord> record = ParseIngestLine(line, &parse_error);
        if (!record.has_value()) {
          if (parse_error.empty()) continue;  // blank / comment
          *error = config_.ingest_log_path + ":" + std::to_string(line_number) + ": " +
                   parse_error;
          state_.store(State::kIdle);
          return false;
        }
        std::string apply_error;
        if (!ApplyIngestRecord(graph_, *record, &apply_error)) {
          *error = config_.ingest_log_path + ":" + std::to_string(line_number) + ": " +
                   apply_error;
          state_.store(State::kIdle);
          return false;
        }
      }
      engine_writer.unlock();
      server_writer.unlock();
      engine_->Refresh();
    }
  }

  const int listen_fd = CreateListenSocket(config_.port, error);
  if (listen_fd < 0) {
    state_.store(State::kIdle);
    return false;
  }
  listen_fd_.store(listen_fd);
  port_ = ListenSocketPort(listen_fd);

  listener_ = std::thread([this] { ListenerLoop(); });
  workers_.reserve(config_.worker_threads);
  for (std::size_t i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  writer_ = std::thread([this] { WriterLoop(); });
  return true;
}

void Server::ListenerLoop() {
  while (state_.load() == State::kRunning) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) break;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed by Shutdown (or fatal error)
    }
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      conn_queue_.push_back(fd);
    }
    conn_available_.notify_one();
  }
}

void Server::WorkerLoop() {
  while (true) {
    int fd;
    {
      std::unique_lock<std::mutex> lock(conn_mutex_);
      conn_available_.wait(lock, [&] { return !conn_queue_.empty(); });
      fd = conn_queue_.front();
      conn_queue_.pop_front();
    }
    if (fd < 0) return;  // shutdown sentinel
    HandleConnection(fd);
  }
}

void Server::HandleConnection(int fd) {
  std::string error;
  std::optional<HttpRequest> request = ReadHttpRequest(
      fd, config_.max_request_bytes, config_.request_timeout_ms, &error);
  if (!request.has_value()) {
    WriteHttpResponse(fd, JsonError(400, error));
    ::close(fd);
    return;
  }
  std::optional<HttpResponse> response = Dispatch(*request, fd);
  requests_served_.fetch_add(1);
  RequestsCounter().Increment();
  if (!response.has_value()) return;  // fd adopted by the SSE subscriber set
  WriteHttpResponse(fd, *response);
  ::close(fd);
}

std::optional<HttpResponse> Server::Dispatch(const HttpRequest& request, int fd) {
  const std::string& path = request.path;
  if (path == "/healthz") {
    if (request.method != "GET") return JsonError(405, "GET only");
    return HttpResponse{200, "text/plain", "ok\n"};
  }
  if (path == "/metrics") {
    if (request.method != "GET") return JsonError(405, "GET only");
    return HttpResponse{200, "application/json",
                        obs::Registry::Instance().Snapshot().ToJson()};
  }
  if (path == "/stats") {
    if (request.method != "GET") return JsonError(405, "GET only");
    return HandleStats();
  }
  if (path == "/query") {
    if (request.method != "POST") return JsonError(405, "POST only");
    return HandleQuery(request);
  }
  if (path == "/ingest") {
    if (request.method != "POST") return JsonError(405, "POST only");
    return HandleIngest(request);
  }
  if (path == "/events") {
    if (request.method != "GET") return JsonError(405, "GET only");
    if (HandleSubscribe(fd)) return std::nullopt;
    return JsonError(503, "subscriber limit reached");
  }
  if (path == "/shutdown") {
    if (request.method != "POST") return JsonError(405, "POST only");
    shutdown_requested_.store(true);
    json::Value body = json::Value::Object();
    body.Set("shutting_down", json::Value::Bool(true));
    return HttpResponse{200, "application/json", body.Serialize()};
  }
  return JsonError(404, "no such endpoint: " + path);
}

HttpResponse Server::HandleQuery(const HttpRequest& request) {
  if (!rate_limiter_.TryAcquire()) {
    RejectedRateCounter().Increment();
    return JsonError(429, "rate limit exceeded");
  }

  // Admission control: bound concurrently-executing queries so a burst
  // degrades to fast 503s instead of a convoy on the engine.
  std::int64_t inflight = inflight_.fetch_add(1) + 1;
  if (inflight > static_cast<std::int64_t>(config_.max_inflight)) {
    inflight_.fetch_sub(1);
    RejectedAdmissionCounter().Increment();
    return JsonError(503, "server at capacity (" +
                              std::to_string(config_.max_inflight) +
                              " queries in flight)");
  }
  auto admission_release = [this] { inflight_.fetch_sub(1); };

  auto started = std::chrono::steady_clock::now();
  HttpResponse response;
  {
    std::string parse_error;
    std::optional<json::Value> body = json::Parse(request.body, &parse_error);
    if (!body.has_value()) {
      admission_release();
      BadRequestCounter().Increment();
      return JsonError(400, "invalid JSON: " + parse_error);
    }

    // Shared lock spans binding + execution: binding reads the graph's time
    // and attribute tables, which the ingestion writer mutates exclusively.
    std::shared_lock<std::shared_mutex> reader(graph_mutex_);
    engine::wire::RequestOptions options;
    options.top = config_.default_top;
    std::string bind_error;
    std::optional<engine::QuerySpec> spec =
        engine::wire::BindQuerySpec(*graph_, *body, &options, &bind_error);
    if (!spec.has_value()) {
      admission_release();
      BadRequestCounter().Increment();
      return JsonError(400, bind_error);
    }

    if (options.explain) {
      engine::QueryPlan plan = engine_->Plan(*spec);
      response = HttpResponse{200, "application/json", engine::wire::PlanToJson(plan)};
    } else {
      engine::QueryPlan plan = engine_->Plan(*spec);
      AggregateGraph result = engine_->Execute(*spec);
      response = HttpResponse{
          200, "application/json",
          engine::wire::ResultToJson(*graph_, *spec, plan, result, options.top)};
    }
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - started);
  QueryLatencyHistogram().Record(static_cast<std::uint64_t>(elapsed.count()));
  admission_release();
  return response;
}

HttpResponse Server::HandleIngest(const HttpRequest& request) {
  std::string error;
  std::optional<std::vector<IngestRecord>> records =
      ParseIngestBatch(request.body, &error);
  if (!records.has_value()) {
    BadRequestCounter().Increment();
    return JsonError(400, error);
  }
  std::size_t count = records->size();
  if (count > 0 && !ingest_queue_.Push(std::move(*records))) {
    return JsonError(503, "ingestion queue full");
  }
  json::Value body = json::Value::Object();
  body.Set("accepted", json::Value::Number(static_cast<std::uint64_t>(count)));
  return HttpResponse{202, "application/json", body.Serialize()};
}

HttpResponse Server::HandleStats() {
  json::Value body = json::Value::Object();
  // Which compute backend the kernels run on (accel/backend.h) — lets a
  // client correlate server-side latency with the SIMD tier that produced it.
  body.Set("backend", json::Value::String(accel::ActiveBackendName()));
  {
    // Graph shape, so clients (the load generator) can build valid specs.
    std::shared_lock<std::shared_mutex> reader(graph_mutex_);
    body.Set("num_times", json::Value::Number(
                              static_cast<std::uint64_t>(graph_->num_times())));
    body.Set("nodes",
             json::Value::Number(static_cast<std::uint64_t>(graph_->num_nodes())));
    body.Set("edges",
             json::Value::Number(static_cast<std::uint64_t>(graph_->num_edges())));
  }
  body.Set("requests", json::Value::Number(requests_served_.load()));
  body.Set("inflight", json::Value::Number(
                           static_cast<std::uint64_t>(std::max<std::int64_t>(
                               0, inflight_.load()))));
  body.Set("ingest_queue_depth",
           json::Value::Number(static_cast<std::uint64_t>(ingest_queue_.size())));
  {
    std::lock_guard<std::mutex> lock(subscriber_mutex_);
    body.Set("subscribers",
             json::Value::Number(static_cast<std::uint64_t>(subscribers_.size())));
  }
  engine::QueryEngine::CacheStats cache = engine_->cache_stats();
  json::Value cache_json = json::Value::Object();
  cache_json.Set("hits", json::Value::Number(cache.hits));
  cache_json.Set("misses", json::Value::Number(cache.misses));
  cache_json.Set("bypasses", json::Value::Number(cache.bypasses));
  cache_json.Set("evictions", json::Value::Number(cache.evictions));
  cache_json.Set("invalidations", json::Value::Number(cache.invalidations));
  body.Set("cache", std::move(cache_json));
  return HttpResponse{200, "application/json", body.Serialize()};
}

bool Server::HandleSubscribe(int fd) {
  std::lock_guard<std::mutex> lock(subscriber_mutex_);
  if (subscribers_.size() >= config_.max_subscribers) return false;
  std::string head =
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: text/event-stream\r\n"
      "Cache-Control: no-cache\r\n"
      "Connection: close\r\n\r\n";
  if (!WriteRaw(fd, head) || !WriteRaw(fd, SseFrame("hello", "{}"))) {
    ::close(fd);
    return true;  // handled (client vanished); do not answer 503
  }
  subscribers_.push_back(Subscriber{fd});
  return true;
}

void Server::Broadcast(const std::string& event, const std::string& data) {
  std::string frame = SseFrame(event, data);
  std::lock_guard<std::mutex> lock(subscriber_mutex_);
  std::size_t kept = 0;
  for (Subscriber& subscriber : subscribers_) {
    if (WriteRaw(subscriber.fd, frame)) {
      subscribers_[kept++] = subscriber;
      EventsPushedCounter().Increment();
    } else {
      ::close(subscriber.fd);  // client hung up; drop the stream
    }
  }
  subscribers_.resize(kept);
}

std::string Server::EvolutionEventJson() const {
  json::Value body = json::Value::Object();
  std::size_t num_times = graph_->num_times();
  body.Set("num_times", json::Value::Number(static_cast<std::uint64_t>(num_times)));
  if (num_times > 0) {
    body.Set("latest", json::Value::String(
                           graph_->time_label(static_cast<TimeId>(num_times - 1))));
  }
  if (num_times >= 2) {
    // Evolution events of §3 between the two newest points, straight off the
    // presence-index columns: stability = old ∩ new, growth = new − old,
    // shrinkage = old − new.
    std::size_t t_old = num_times - 2;
    std::size_t t_new = num_times - 1;
    auto fill = [&](const PresenceIndex& index, const char* key) {
      const DynamicBitset& old_col = index.Column(t_old);
      const DynamicBitset& new_col = index.Column(t_new);
      json::Value section = json::Value::Object();
      section.Set("stability", json::Value::Number(static_cast<std::uint64_t>(
                                   (old_col & new_col).Count())));
      section.Set("growth", json::Value::Number(static_cast<std::uint64_t>(
                                (new_col - old_col).Count())));
      section.Set("shrinkage", json::Value::Number(static_cast<std::uint64_t>(
                                   (old_col - new_col).Count())));
      body.Set(key, std::move(section));
    };
    fill(graph_->node_presence_index(), "nodes");
    fill(graph_->edge_presence_index(), "edges");
  }
  return body.Serialize();
}

void Server::AppendToIngestLog(const std::vector<IngestRecord>& records) {
  if (config_.ingest_log_path.empty()) return;
  std::lock_guard<std::mutex> lock(log_mutex_);
  std::ofstream log(config_.ingest_log_path, std::ios::app);
  if (!log.is_open()) return;
  for (const IngestRecord& record : records) log << record.ToLine() << "\n";
}

void Server::WriterLoop() {
  while (true) {
    std::vector<IngestRecord> batch = ingest_queue_.PopBatch();
    if (batch.empty()) return;  // queue closed and drained

    std::vector<IngestRecord> applied;
    applied.reserve(batch.size());
    bool appended_time = false;
    {
      // Lock order matches HandleQuery's reader: server mutex, then engine.
      std::unique_lock<std::shared_mutex> server_writer(graph_mutex_);
      auto engine_writer = engine_->AcquireWriterLock();
      for (IngestRecord& record : batch) {
        std::string error;
        if (ApplyIngestRecord(graph_, record, &error)) {
          appended_time |= record.kind == IngestRecord::Kind::kAppendTime;
          applied.push_back(std::move(record));
        }
        // Invalid records were admitted syntactically but fail semantically
        // (e.g. unknown attribute); they are dropped — the changefeed is
        // at-least-once per *valid* record, and /stats exposes the delta
        // between accepted and applied via server/ingest_records.
      }
    }  // release both locks before Refresh (engine contract, engine.h)
    engine_->Refresh();

    if (!applied.empty()) {
      IngestRecordsCounter().Add(applied.size());
      IngestBatchesCounter().Increment();
      AppendToIngestLog(applied);
      std::string event_json;
      {
        std::shared_lock<std::shared_mutex> reader(graph_mutex_);
        event_json = EvolutionEventJson();
      }
      Broadcast(appended_time ? "evolution" : "update", event_json);
    }
  }
}

void Server::Shutdown() {
  State expected = State::kRunning;
  if (!state_.compare_exchange_strong(expected, State::kStopping)) {
    if (expected == State::kStopped || expected == State::kIdle) return;
    // Another thread is mid-shutdown; wait for it.
    std::unique_lock<std::mutex> lock(stopped_mutex_);
    stopped_.wait(lock, [&] { return state_.load() == State::kStopped; });
    return;
  }

  // 1. Stop accepting: closing the listen socket unblocks accept().
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (listener_.joinable()) listener_.join();

  // 2. Drain in-flight connections: workers exit on their sentinel, which
  //    sits *behind* every already-accepted connection in the queue.
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (std::size_t i = 0; i < workers_.size(); ++i) conn_queue_.push_back(-1);
  }
  conn_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  // 3. Drain queued ingestion, then stop the writer.
  ingest_queue_.Close();
  if (writer_.joinable()) writer_.join();

  // 4. Tell subscribers goodbye and close their streams.
  {
    std::lock_guard<std::mutex> lock(subscriber_mutex_);
    for (Subscriber& subscriber : subscribers_) {
      WriteRaw(subscriber.fd, SseFrame("shutdown", "{}"));
      ::close(subscriber.fd);
    }
    subscribers_.clear();
  }

  state_.store(State::kStopped);
  {
    std::lock_guard<std::mutex> lock(stopped_mutex_);
    stopped_.notify_all();
  }
}

void Server::Wait() {
  std::unique_lock<std::mutex> lock(stopped_mutex_);
  stopped_.wait(lock, [&] {
    State s = state_.load();
    return s == State::kStopped || s == State::kIdle;
  });
}

}  // namespace graphtempo::server
