#include "server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <utility>

#include "accel/backend.h"
#include "engine/wire.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/string_util.h"

namespace graphtempo::server {

namespace {

obs::Counter& RequestsCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("server/requests");
  return c;
}
obs::Counter& BadRequestCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("server/bad_request");
  return c;
}
obs::Counter& RejectedRateCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("server/rejected_rate");
  return c;
}
obs::Counter& RejectedAdmissionCounter() {
  static obs::Counter& c =
      obs::Registry::Instance().GetCounter("server/rejected_admission");
  return c;
}
obs::Counter& IngestRecordsCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("server/ingest_records");
  return c;
}
obs::Counter& IngestBatchesCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("server/ingest_batches");
  return c;
}
obs::Counter& EventsPushedCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("server/events_pushed");
  return c;
}
obs::Histogram& QueryLatencyHistogram() {
  static obs::Histogram& h =
      obs::Registry::Instance().GetHistogram("server/query_latency_us");
  return h;
}
obs::Counter& SlowQueriesCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("server/slow_queries");
  return c;
}

/// X-GT-Request-Id values are echoed into response headers and log lines;
/// keep them short and printable so they cannot corrupt either.
std::string SanitizeClientRequestId(const HttpRequest& request) {
  auto it = request.headers.find("x-gt-request-id");
  if (it == request.headers.end()) return "";
  std::string id;
  for (char c : it->second) {
    if (id.size() >= 64) break;
    const bool printable = c > 0x20 && c < 0x7f && c != '"' && c != '\\';
    id.push_back(printable ? c : '_');
  }
  return id;
}

/// The canonical ID for a request: the client's correlation ID when supplied,
/// the server-assigned monotonic query ID otherwise.
std::string DisplayRequestId(const obs::RequestContext& context) {
  return context.client_request_id.empty() ? std::to_string(context.query_id)
                                           : context.client_request_id;
}

HttpResponse JsonError(int status, const std::string& message) {
  json::Value body = json::Value::Object();
  body.Set("error", json::Value::String(message));
  return HttpResponse{status, "application/json", body.Serialize()};
}

/// One SSE frame: `event: <name>` + one `data:` line per payload line.
std::string SseFrame(const std::string& event, const std::string& data) {
  std::string frame = "event: " + event + "\n";
  std::size_t start = 0;
  while (start <= data.size()) {
    std::size_t newline = data.find('\n', start);
    if (newline == std::string::npos) {
      frame += "data: " + data.substr(start) + "\n";
      break;
    }
    frame += "data: " + data.substr(start, newline - start) + "\n";
    start = newline + 1;
  }
  frame += "\n";
  return frame;
}

}  // namespace

Server::Server(TemporalGraph* graph, engine::QueryEngine* engine, ServerConfig config)
    : graph_(graph),
      engine_(engine),
      config_(std::move(config)),
      batcher_(engine, config_.batch_window_us),
      ingest_queue_(config_.ingest_queue_capacity),
      rate_limiter_(config_.rate_limit_qps, config_.rate_limit_burst) {
  if (config_.worker_threads == 0) config_.worker_threads = 1;
}

Server::~Server() { Shutdown(); }

bool Server::Start(std::string* error) {
  State expected = State::kIdle;
  if (!state_.compare_exchange_strong(expected, State::kRunning)) {
    *error = "server already started";
    return false;
  }

  if (!config_.ingest_log_path.empty()) {
    std::ifstream log(config_.ingest_log_path);
    if (log.is_open()) {
      // Replay under the same locks live ingestion takes, so Start may be
      // called on an engine that is already serving.
      std::unique_lock<std::shared_mutex> server_writer(graph_mutex_);
      auto engine_writer = engine_->AcquireWriterLock();
      std::string line;
      std::size_t line_number = 0;
      while (std::getline(log, line)) {
        ++line_number;
        std::string parse_error;
        std::optional<IngestRecord> record = ParseIngestLine(line, &parse_error);
        if (!record.has_value()) {
          if (parse_error.empty()) continue;  // blank / comment
          *error = config_.ingest_log_path + ":" + std::to_string(line_number) + ": " +
                   parse_error;
          state_.store(State::kIdle);
          return false;
        }
        std::string apply_error;
        if (!ApplyIngestRecord(graph_, *record, &apply_error)) {
          *error = config_.ingest_log_path + ":" + std::to_string(line_number) + ": " +
                   apply_error;
          state_.store(State::kIdle);
          return false;
        }
      }
      engine_writer.unlock();
      server_writer.unlock();
      engine_->Refresh();
    }
  }

  const int listen_fd = CreateListenSocket(config_.port, error);
  if (listen_fd < 0) {
    state_.store(State::kIdle);
    return false;
  }
  listen_fd_.store(listen_fd);
  port_ = ListenSocketPort(listen_fd);

  // The slow-query writer always exists (ring-only when no path configured)
  // so GET /debug/slow works out of the box; the access log is opt-in.
  slow_log_ = std::make_unique<LogWriter>(config_.slow_log_path);
  if (!config_.access_log_path.empty()) {
    access_log_ = std::make_unique<LogWriter>(config_.access_log_path);
  }

  listener_ = std::thread([this] { ListenerLoop(); });
  workers_.reserve(config_.worker_threads);
  for (std::size_t i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  writer_ = std::thread([this] { WriterLoop(); });
  return true;
}

void Server::ListenerLoop() {
  while (state_.load() == State::kRunning) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) break;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed by Shutdown (or fatal error)
    }
    // Keep-alive connections serve many request/response turns on one
    // socket; without TCP_NODELAY the second turn eats a Nagle stall.
    int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      conn_queue_.push_back(fd);
    }
    conn_available_.notify_one();
  }
}

void Server::WorkerLoop() {
  obs::SetCurrentThreadLaneName("server-worker");
  while (true) {
    int fd;
    {
      std::unique_lock<std::mutex> lock(conn_mutex_);
      conn_available_.wait(lock, [&] { return !conn_queue_.empty(); });
      fd = conn_queue_.front();
      conn_queue_.pop_front();
    }
    if (fd < 0) return;  // shutdown sentinel
    HandleConnection(fd);
  }
}

void Server::HandleConnection(int fd) {
  // Serve requests back-to-back while the client asks for keep-alive; the
  // historical behaviour (close after one response) remains the default.
  while (true) {
    std::string error;
    std::optional<HttpRequest> request = ReadHttpRequest(
        fd, config_.max_request_bytes, config_.request_timeout_ms, &error);
    if (!request.has_value()) {
      // An empty diagnostic is the clean-EOF sentinel: a keep-alive client
      // hung up between requests — not an error, nothing to answer.
      if (!error.empty()) WriteHttpResponse(fd, JsonError(400, error));
      break;
    }

    // Keep the connection only when the client asked for it *and* the server
    // is not draining — a worker must not sit in a read loop past Shutdown.
    bool keep_alive = false;
    if (auto it = request->headers.find("connection"); it != request->headers.end()) {
      std::string value = it->second;
      for (char& c : value) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      keep_alive = value == "keep-alive";
    }
    if (state_.load() != State::kRunning) keep_alive = false;

    // Bind a request context for the whole dispatch: spans recorded on this
    // thread (and on pool lanes working for it) attribute to this query ID,
    // and the engine fills in route/cache/planner for the slow-query record.
    obs::RequestContext context(SanitizeClientRequestId(*request));
    obs::ScopedRequestContext bind(&context);

    const auto started = std::chrono::steady_clock::now();
    std::optional<HttpResponse> response;
    {
      // Scoped so the span (carrying the numeric request ID) lands in the
      // flight recorder before the response reaches the client.
      GT_SPAN("server/request", {{"request", context.query_id}});
      response = Dispatch(*request, fd);
    }
    requests_served_.fetch_add(1);
    RequestsCounter().Increment();

    if (access_log_ != nullptr) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started);
      json::Value line = json::Value::Object();
      line.Set("request_id", json::Value::Number(context.query_id));
      if (!context.client_request_id.empty()) {
        line.Set("client_request_id", json::Value::String(context.client_request_id));
      }
      line.Set("method", json::Value::String(request->method));
      line.Set("path", json::Value::String(request->path));
      line.Set("status", json::Value::Number(static_cast<std::uint64_t>(
                             response.has_value() ? response->status : 200)));
      line.Set("total_us",
               json::Value::Number(static_cast<std::uint64_t>(elapsed.count())));
      access_log_->Append(line.Serialize());
    }

    if (!response.has_value()) return;  // fd adopted by the SSE subscriber set
    response->headers.emplace_back("X-GT-Request-Id", DisplayRequestId(context));
    if (!WriteHttpResponse(fd, *response, keep_alive)) break;
    if (!keep_alive) break;
  }
  ::close(fd);
}

std::optional<HttpResponse> Server::Dispatch(const HttpRequest& request, int fd) {
  const std::string& path = request.path;
  if (path == "/healthz") {
    if (request.method != "GET") return JsonError(405, "GET only");
    return HttpResponse{200, "text/plain", "ok\n"};
  }
  if (path == "/metrics") {
    if (request.method != "GET") return JsonError(405, "GET only");
    return HandleMetrics(request);
  }
  if (path == "/debug/trace") {
    if (request.method != "GET") return JsonError(405, "GET only");
    return HandleDebugTrace(request);
  }
  if (path == "/debug/slow") {
    if (request.method != "GET") return JsonError(405, "GET only");
    return HandleDebugSlow();
  }
  if (path == "/stats") {
    if (request.method != "GET") return JsonError(405, "GET only");
    return HandleStats();
  }
  if (path == "/query") {
    if (request.method != "POST") return JsonError(405, "POST only");
    return HandleQuery(request);
  }
  if (path == "/ingest") {
    if (request.method != "POST") return JsonError(405, "POST only");
    return HandleIngest(request);
  }
  if (path == "/events") {
    if (request.method != "GET") return JsonError(405, "GET only");
    if (HandleSubscribe(fd)) return std::nullopt;
    return JsonError(503, "subscriber limit reached");
  }
  if (path == "/shutdown") {
    if (request.method != "POST") return JsonError(405, "POST only");
    shutdown_requested_.store(true);
    json::Value body = json::Value::Object();
    body.Set("shutting_down", json::Value::Bool(true));
    return HttpResponse{200, "application/json", body.Serialize()};
  }
  return JsonError(404, "no such endpoint: " + path);
}

HttpResponse Server::HandleQuery(const HttpRequest& request) {
  if (!rate_limiter_.TryAcquire()) {
    RejectedRateCounter().Increment();
    return JsonError(429, "rate limit exceeded");
  }

  // Admission control: bound concurrently-executing queries so a burst
  // degrades to fast 503s instead of a convoy on the engine. A gathered
  // batch is ONE in-flight unit of engine work, so an over-capacity query is
  // not rejected outright: if a batch leader is currently holding a gather
  // window open, the query rides that window (adding no engine concurrency)
  // and only 503s when no window is open to join.
  bool admitted = true;
  std::int64_t inflight = inflight_.fetch_add(1) + 1;
  if (inflight > static_cast<std::int64_t>(config_.max_inflight)) {
    inflight_.fetch_sub(1);
    admitted = false;
  }
  auto admission_release = [this, admitted] {
    if (admitted) inflight_.fetch_sub(1);
  };
  auto reject_admission = [this] {
    RejectedAdmissionCounter().Increment();
    return JsonError(503, "server at capacity (" +
                              std::to_string(config_.max_inflight) +
                              " queries in flight)");
  };

  auto started = std::chrono::steady_clock::now();
  HttpResponse response;
  std::string spec_text;  // rendered under the shared lock, for the slow log
  bool executed = false;
  {
    std::string parse_error;
    std::optional<json::Value> body;
    {
      GT_SPAN("server/parse");
      body = json::Parse(request.body, &parse_error);
    }
    if (!body.has_value()) {
      admission_release();
      BadRequestCounter().Increment();
      return JsonError(400, "invalid JSON: " + parse_error);
    }

    // Shared lock spans binding + execution: binding reads the graph's time
    // and attribute tables, which the ingestion writer mutates exclusively.
    std::shared_lock<std::shared_mutex> reader(graph_mutex_);
    engine::wire::RequestOptions options;
    options.top = config_.default_top;
    std::string bind_error;
    std::optional<engine::QuerySpec> spec;
    {
      GT_SPAN("server/bind");
      spec = engine::wire::BindQuerySpec(*graph_, *body, &options, &bind_error);
    }
    if (!spec.has_value()) {
      admission_release();
      BadRequestCounter().Increment();
      return JsonError(400, bind_error);
    }

    if (options.explain) {
      if (!admitted) return reject_admission();
      engine::QueryPlan plan = engine_->Plan(*spec);
      response = HttpResponse{200, "application/json", engine::wire::PlanToJson(plan)};
    } else {
      engine::QueryPlan plan = engine_->Plan(*spec);
      std::optional<engine::QueryResult> result;
      {
        GT_SPAN("server/execute");
        // The batcher gathers concurrent queries into one engine batch when
        // configured; a pass-through to ExecuteResult otherwise. Either way
        // the bound request context receives the engine's attribution. An
        // un-admitted query may still ride an open gather window — the batch
        // executes as one unit regardless of how many queries piled on.
        if (admitted) {
          result = batcher_.Execute(*spec, obs::CurrentRequestContext());
        } else {
          result = batcher_.TryJoinActiveWindow(*spec, obs::CurrentRequestContext());
        }
      }
      if (!result.has_value()) return reject_admission();
      {
        GT_SPAN("server/serialize");
        response = HttpResponse{
            200, "application/json",
            engine::wire::QueryResultToJson(*graph_, *spec, plan, *result,
                                            options.top)};
      }
      executed = true;
      if (config_.slow_query_ms >= 0) spec_text = spec->ToString(*graph_);
    }
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - started);
  const std::uint64_t total_us = static_cast<std::uint64_t>(elapsed.count());
  QueryLatencyHistogram().Record(total_us);

  if (obs::RequestContext* context = obs::CurrentRequestContext()) {
    // A p99-class latency becomes the exemplar for the Prometheus exposition:
    // the tail bucket of gt_server_query_latency_us points at this request.
    obs::HistogramSnapshot latency = QueryLatencyHistogram().Snapshot();
    if (total_us >= latency.Percentile(0.99)) {
      obs::ExemplarStore::Instance().Offer("server/query_latency_us", total_us,
                                           DisplayRequestId(*context));
    }
    if (executed && config_.slow_query_ms >= 0 &&
        total_us >= static_cast<std::uint64_t>(config_.slow_query_ms) * 1000) {
      SlowQueriesCounter().Increment();
      RecordSlowQuery(*context, spec_text, total_us);
    }
  }
  admission_release();
  return response;
}

HttpResponse Server::HandleIngest(const HttpRequest& request) {
  std::string error;
  std::optional<std::vector<IngestRecord>> records =
      ParseIngestBatch(request.body, &error);
  if (!records.has_value()) {
    BadRequestCounter().Increment();
    return JsonError(400, error);
  }
  std::size_t count = records->size();
  if (count > 0 && !ingest_queue_.Push(std::move(*records))) {
    return JsonError(503, "ingestion queue full");
  }
  json::Value body = json::Value::Object();
  body.Set("accepted", json::Value::Number(static_cast<std::uint64_t>(count)));
  return HttpResponse{202, "application/json", body.Serialize()};
}

HttpResponse Server::HandleStats() {
  json::Value body = json::Value::Object();
  // Which compute backend the kernels run on (accel/backend.h) — lets a
  // client correlate server-side latency with the SIMD tier that produced it.
  body.Set("backend", json::Value::String(accel::ActiveBackendName()));
  {
    // Graph shape, so clients (the load generator) can build valid specs.
    std::shared_lock<std::shared_mutex> reader(graph_mutex_);
    body.Set("num_times", json::Value::Number(
                              static_cast<std::uint64_t>(graph_->num_times())));
    body.Set("nodes",
             json::Value::Number(static_cast<std::uint64_t>(graph_->num_nodes())));
    body.Set("edges",
             json::Value::Number(static_cast<std::uint64_t>(graph_->num_edges())));
  }
  body.Set("requests", json::Value::Number(requests_served_.load()));
  body.Set("inflight", json::Value::Number(
                           static_cast<std::uint64_t>(std::max<std::int64_t>(
                               0, inflight_.load()))));
  body.Set("ingest_queue_depth",
           json::Value::Number(static_cast<std::uint64_t>(ingest_queue_.size())));
  {
    std::lock_guard<std::mutex> lock(subscriber_mutex_);
    body.Set("subscribers",
             json::Value::Number(static_cast<std::uint64_t>(subscribers_.size())));
  }
  engine::QueryEngine::CacheStats cache = engine_->cache_stats();
  json::Value cache_json = json::Value::Object();
  cache_json.Set("hits", json::Value::Number(cache.hits));
  cache_json.Set("misses", json::Value::Number(cache.misses));
  cache_json.Set("bypasses", json::Value::Number(cache.bypasses));
  cache_json.Set("evictions", json::Value::Number(cache.evictions));
  cache_json.Set("invalidations", json::Value::Number(cache.invalidations));
  body.Set("cache", std::move(cache_json));
  // Route-selection policy and the batch gather window, so a client can tell
  // which planner produced the routes it observes and whether batching is on.
  body.Set("planner",
           json::Value::String(engine::PlannerModeName(engine_->planner_mode())));
  body.Set("batch_window_us", json::Value::Number(
                                  static_cast<std::int64_t>(config_.batch_window_us)));
  auto counter = [](const char* name) {
    return json::Value::Number(obs::Registry::Instance().GetCounter(name).Value());
  };
  json::Value batch_json = json::Value::Object();
  batch_json.Set("windows", counter("server/batch_windows"));
  batch_json.Set("gathered", counter("server/batch_gathered"));
  batch_json.Set("executions", counter("engine/batch_exec"));
  batch_json.Set("queries", counter("engine/batch_queries"));
  batch_json.Set("merged", counter("engine/batch_merged"));
  batch_json.Set("fold_hits", counter("engine/batch_fold_hits"));
  batch_json.Set("fold_misses", counter("engine/batch_fold_misses"));
  body.Set("batch", std::move(batch_json));
  return HttpResponse{200, "application/json", body.Serialize()};
}

HttpResponse Server::HandleMetrics(const HttpRequest& request) {
  // Content negotiation: the Prometheus exposition on explicit
  // `?format=prometheus`, or when the client's Accept prefers text — the JSON
  // snapshot (the original wire format) otherwise, so existing clients (the
  // load generator, `graphtempo metrics`) keep working unchanged.
  bool prometheus = request.query.find("format=prometheus") != std::string::npos;
  if (!prometheus) {
    auto accept = request.headers.find("accept");
    prometheus = accept != request.headers.end() &&
                 (accept->second.find("text/plain") != std::string::npos ||
                  accept->second.find("openmetrics") != std::string::npos);
  }
  if (prometheus) {
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        obs::ToPrometheusText(obs::Registry::Instance().Snapshot(),
                                              &obs::ExemplarStore::Instance())};
  }
  return HttpResponse{200, "application/json",
                      obs::Registry::Instance().Snapshot().ToJson()};
}

HttpResponse Server::HandleDebugTrace(const HttpRequest& request) {
  // `?ms=N` keeps only spans that ended within the last N milliseconds;
  // absent (or 0) drains everything still in the rings.
  std::uint64_t window_ns = 0;
  const std::string& query = request.query;
  std::size_t at = query.find("ms=");
  while (at != std::string::npos && at != 0 && query[at - 1] != '&') {
    at = query.find("ms=", at + 3);  // skip e.g. "params=", match a real ms=
  }
  if (at != std::string::npos) {
    std::size_t end = query.find('&', at);
    std::string_view value(query.data() + at + 3,
                           (end == std::string::npos ? query.size() : end) - at - 3);
    std::uint64_t ms = 0;
    if (!ParseUint64(value, &ms)) {
      return JsonError(400, "invalid ms parameter: '" + std::string(value) + "'");
    }
    window_ns = ms * 1000000ull;
  }
  return HttpResponse{200, "application/json", obs::FlightJson(window_ns)};
}

HttpResponse Server::HandleDebugSlow() {
  std::string body = "[";
  if (slow_log_ != nullptr) {
    bool first = true;
    for (const std::string& line : slow_log_->Recent()) {
      if (!first) body += ",";
      first = false;
      body += line;  // records are stored as serialized JSON objects
    }
  }
  body += "]";
  return HttpResponse{200, "application/json", std::move(body)};
}

void Server::RecordSlowQuery(const obs::RequestContext& context,
                             const std::string& spec_text,
                             std::uint64_t total_us) {
  if (slow_log_ == nullptr) return;
  json::Value record = json::Value::Object();
  record.Set("request_id", json::Value::Number(context.query_id));
  record.Set("client_request_id", json::Value::String(context.client_request_id));
  char fingerprint[24];
  std::snprintf(fingerprint, sizeof(fingerprint), "0x%016" PRIx64,
                context.fingerprint.load(std::memory_order_relaxed));
  record.Set("fingerprint", json::Value::String(fingerprint));
  record.Set("spec", json::Value::String(spec_text));
  record.Set("route",
             json::Value::String(context.route.load(std::memory_order_relaxed)));
  record.Set("planner",
             json::Value::String(context.planner.load(std::memory_order_relaxed)));
  record.Set("stale_fallback", json::Value::Bool(context.stale_fallback.load(
                                   std::memory_order_relaxed)));
  record.Set("batched",
             json::Value::Bool(context.batched.load(std::memory_order_relaxed)));
  record.Set("shared_fold_hits", json::Value::Number(context.shared_fold_hits.load(
                                     std::memory_order_relaxed)));
  record.Set("shared_fold_misses",
             json::Value::Number(
                 context.shared_fold_misses.load(std::memory_order_relaxed)));
  record.Set("grouping", json::Value::String(
                             context.grouping.load(std::memory_order_relaxed)));
  record.Set("backend", json::Value::String(accel::ActiveBackendName()));
  record.Set("cache",
             json::Value::String(context.cache.load(std::memory_order_relaxed)));
  record.Set("kernel_words", json::Value::Number(context.kernel_words.load(
                                 std::memory_order_relaxed)));
  record.Set("total_us", json::Value::Number(total_us));

  // Phase table → {"name": {"total_us": …, "count": …}}. Merged by string
  // name: the table is keyed by literal address, and the same span name can
  // appear under two addresses when recorded from different TUs.
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> merged;
  for (const obs::PhaseTiming& phase : context.Phases()) {
    auto& entry = merged[phase.name];
    entry.first += phase.total_ns;
    entry.second += phase.count;
  }
  json::Value phases = json::Value::Object();
  for (const auto& [name, totals] : merged) {
    json::Value phase = json::Value::Object();
    phase.Set("total_us", json::Value::Number(totals.first / 1000));
    phase.Set("count", json::Value::Number(totals.second));
    phases.Set(name, std::move(phase));
  }
  record.Set("phases", std::move(phases));
  const std::uint64_t dropped =
      context.phases_dropped.load(std::memory_order_relaxed);
  if (dropped != 0) {
    record.Set("phases_dropped", json::Value::Number(dropped));
  }
  slow_log_->Append(record.Serialize());
}

bool Server::HandleSubscribe(int fd) {
  std::lock_guard<std::mutex> lock(subscriber_mutex_);
  if (subscribers_.size() >= config_.max_subscribers) return false;
  std::string head =
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: text/event-stream\r\n"
      "Cache-Control: no-cache\r\n"
      "Connection: close\r\n\r\n";
  if (!WriteRaw(fd, head) || !WriteRaw(fd, SseFrame("hello", "{}"))) {
    ::close(fd);
    return true;  // handled (client vanished); do not answer 503
  }
  subscribers_.push_back(Subscriber{fd});
  return true;
}

void Server::Broadcast(const std::string& event, const std::string& data) {
  std::string frame = SseFrame(event, data);
  std::lock_guard<std::mutex> lock(subscriber_mutex_);
  std::size_t kept = 0;
  for (Subscriber& subscriber : subscribers_) {
    if (WriteRaw(subscriber.fd, frame)) {
      subscribers_[kept++] = subscriber;
      EventsPushedCounter().Increment();
    } else {
      ::close(subscriber.fd);  // client hung up; drop the stream
    }
  }
  subscribers_.resize(kept);
}

std::string Server::EvolutionEventJson() const {
  json::Value body = json::Value::Object();
  std::size_t num_times = graph_->num_times();
  body.Set("num_times", json::Value::Number(static_cast<std::uint64_t>(num_times)));
  if (num_times > 0) {
    body.Set("latest", json::Value::String(
                           graph_->time_label(static_cast<TimeId>(num_times - 1))));
  }
  if (num_times >= 2) {
    // Evolution events of §3 between the two newest points, straight off the
    // presence-index columns: stability = old ∩ new, growth = new − old,
    // shrinkage = old − new.
    std::size_t t_old = num_times - 2;
    std::size_t t_new = num_times - 1;
    auto fill = [&](const PresenceIndex& index, const char* key) {
      const DynamicBitset& old_col = index.Column(t_old);
      const DynamicBitset& new_col = index.Column(t_new);
      json::Value section = json::Value::Object();
      section.Set("stability", json::Value::Number(static_cast<std::uint64_t>(
                                   (old_col & new_col).Count())));
      section.Set("growth", json::Value::Number(static_cast<std::uint64_t>(
                                (new_col - old_col).Count())));
      section.Set("shrinkage", json::Value::Number(static_cast<std::uint64_t>(
                                   (old_col - new_col).Count())));
      body.Set(key, std::move(section));
    };
    fill(graph_->node_presence_index(), "nodes");
    fill(graph_->edge_presence_index(), "edges");
  }
  return body.Serialize();
}

void Server::AppendToIngestLog(const std::vector<IngestRecord>& records) {
  if (config_.ingest_log_path.empty()) return;
  std::lock_guard<std::mutex> lock(log_mutex_);
  std::ofstream log(config_.ingest_log_path, std::ios::app);
  if (!log.is_open()) return;
  for (const IngestRecord& record : records) log << record.ToLine() << "\n";
}

void Server::WriterLoop() {
  obs::SetCurrentThreadLaneName("ingest-writer");
  while (true) {
    std::vector<IngestRecord> batch = ingest_queue_.PopBatch();
    if (batch.empty()) return;  // queue closed and drained

    std::vector<IngestRecord> applied;
    applied.reserve(batch.size());
    bool appended_time = false;
    {
      GT_SPAN("server/ingest_apply", {{"records", batch.size()}});
      // Lock order matches HandleQuery's reader: server mutex, then engine.
      std::unique_lock<std::shared_mutex> server_writer(graph_mutex_);
      auto engine_writer = engine_->AcquireWriterLock();
      for (IngestRecord& record : batch) {
        std::string error;
        if (ApplyIngestRecord(graph_, record, &error)) {
          appended_time |= record.kind == IngestRecord::Kind::kAppendTime;
          applied.push_back(std::move(record));
        }
        // Invalid records were admitted syntactically but fail semantically
        // (e.g. unknown attribute); they are dropped — the changefeed is
        // at-least-once per *valid* record, and /stats exposes the delta
        // between accepted and applied via server/ingest_records.
      }
    }  // release both locks before Refresh (engine contract, engine.h)
    engine_->Refresh();

    if (!applied.empty()) {
      IngestRecordsCounter().Add(applied.size());
      IngestBatchesCounter().Increment();
      AppendToIngestLog(applied);
      std::string event_json;
      {
        std::shared_lock<std::shared_mutex> reader(graph_mutex_);
        event_json = EvolutionEventJson();
      }
      Broadcast(appended_time ? "evolution" : "update", event_json);
    }
  }
}

void Server::Shutdown() {
  State expected = State::kRunning;
  if (!state_.compare_exchange_strong(expected, State::kStopping)) {
    if (expected == State::kStopped || expected == State::kIdle) return;
    // Another thread is mid-shutdown; wait for it.
    std::unique_lock<std::mutex> lock(stopped_mutex_);
    stopped_.wait(lock, [&] { return state_.load() == State::kStopped; });
    return;
  }

  // 1. Stop accepting: closing the listen socket unblocks accept().
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  if (listener_.joinable()) listener_.join();

  // 2. Drain in-flight connections: workers exit on their sentinel, which
  //    sits *behind* every already-accepted connection in the queue.
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (std::size_t i = 0; i < workers_.size(); ++i) conn_queue_.push_back(-1);
  }
  conn_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  // 3. Drain queued ingestion, then stop the writer.
  ingest_queue_.Close();
  if (writer_.joinable()) writer_.join();

  // 3b. Flush the structured logs. Workers are joined, so no append races
  //     the drain; the objects stay alive for post-shutdown inspection.
  if (slow_log_ != nullptr) slow_log_->Shutdown();
  if (access_log_ != nullptr) access_log_->Shutdown();

  // 4. Tell subscribers goodbye and close their streams.
  {
    std::lock_guard<std::mutex> lock(subscriber_mutex_);
    for (Subscriber& subscriber : subscribers_) {
      WriteRaw(subscriber.fd, SseFrame("shutdown", "{}"));
      ::close(subscriber.fd);
    }
    subscribers_.clear();
  }

  state_.store(State::kStopped);
  {
    std::lock_guard<std::mutex> lock(stopped_mutex_);
    stopped_.notify_all();
  }
}

void Server::Wait() {
  std::unique_lock<std::mutex> lock(stopped_mutex_);
  stopped_.wait(lock, [&] {
    State s = state_.load();
    return s == State::kStopped || s == State::kIdle;
  });
}

}  // namespace graphtempo::server
