#ifndef GRAPHTEMPO_SERVER_SERVER_H_
#define GRAPHTEMPO_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "obs/context.h"
#include "server/batcher.h"
#include "server/http.h"
#include "server/ingest.h"
#include "server/rate_limiter.h"
#include "server/slow_log.h"

/// \file
/// The GraphTempo query service (docs/SERVER.md): a long-lived HTTP server
/// wrapping one `TemporalGraph` + `QueryEngine`, exposing `QuerySpec` as a
/// wire format and consuming an append-only ingestion changefeed.
///
/// Endpoints:
///
///   * `POST /query`    — JSON request → executed result (or plan, with
///                        `"explain": true`); see engine/wire.h.
///   * `GET  /metrics`  — the obs registry snapshot as JSON, or Prometheus
///                        text exposition with `?format=prometheus` (also
///                        negotiated via `Accept: text/plain`).
///   * `GET  /healthz`  — liveness ("ok").
///   * `GET  /stats`    — server counters: requests, admissions, inflight,
///                        ingest queue depth, subscriber count.
///   * `POST /ingest`   — a changefeed batch (server/ingest.h format); 202
///                        on acceptance. Records apply asynchronously, in
///                        order, on the single writer thread.
///   * `GET  /events`   — Server-Sent Events: one `evolution` event per
///                        applied ingestion batch, carrying node/edge
///                        stability/growth/shrinkage between the two newest
///                        time points.
///   * `POST /shutdown` — graceful remote shutdown (for CI and operators).
///   * `GET  /debug/trace?ms=N` — the always-on flight recorder's last N
///                        milliseconds of span events as Chrome-trace JSON
///                        (everything retained when `ms` is absent); works
///                        without `--trace`, after the fact.
///   * `GET  /debug/slow` — the most recent slow-query records as a JSON
///                        array (in-memory ring; survives log rotation).
///
/// Every request is answered with an `X-GT-Request-Id` header: the
/// client-supplied value when the request carried that header, otherwise the
/// server-assigned monotonic query ID. The same ID attributes the request's
/// span events in `/debug/trace` and its slow-query record.
///
/// ## Threading model
///
/// One listener accepts connections into a bounded queue; `worker_threads`
/// workers each own one connection at a time, serving requests back-to-back
/// while the client asks for `Connection: keep-alive` (closing otherwise —
/// the historical one-request-per-connection behaviour). Queries bind and
/// execute under the shared side of `graph_mutex_`; with a nonzero
/// `batch_window_us`, concurrent queries gather into one engine batch
/// (server/batcher.h) before executing. The single writer thread drains
/// the ingestion queue and applies whole batches under the exclusive side
/// (plus the engine's own `AcquireWriterLock`), then calls
/// `engine->Refresh()` — so append-only ingestion invalidates no
/// disjoint-interval cached answer (docs/ENGINE.md §3). The read path is
/// guarded twice: a token-bucket rate limiter (`rate_limit_qps`) and an
/// admission cap on concurrently-executing queries (`max_inflight`,
/// exceeded → 503).
///
/// `Shutdown()` drains: stop accepting, finish queued connections, apply
/// queued ingestion, close subscriber streams with a `shutdown` event, join
/// every thread. Idempotent; `Wait()` blocks until a shutdown completes.

namespace graphtempo::server {

struct ServerConfig {
  int port = 0;                      ///< 0 = ephemeral (read back via port())
  std::size_t worker_threads = 4;    ///< request handler pool
  std::size_t max_inflight = 64;     ///< concurrent /query admissions
  double rate_limit_qps = 0;         ///< /query token refill rate; 0 = off
  double rate_limit_burst = 0;       ///< bucket depth; 0 = max(qps, 1)
  std::size_t max_request_bytes = 1 << 20;
  std::size_t max_subscribers = 64;  ///< concurrent SSE streams
  std::size_t ingest_queue_capacity = 65536;  ///< records, not batches
  std::size_t default_top = 0;       ///< result row cap when absent; 0 = all
  int request_timeout_ms = 10000;
  std::string ingest_log_path;       ///< "" = no on-disk log

  /// Slow-query threshold in milliseconds: any /query execution taking at
  /// least this long emits one structured JSON record (docs/OBSERVABILITY.md
  /// §Slow-query log). 0 logs every query; -1 (default) disables logging.
  /// Records always land in the in-memory ring served by `GET /debug/slow`;
  /// `slow_log_path` additionally appends them to a rotating file.
  std::int64_t slow_query_ms = -1;

  /// Batch gather window in microseconds (server/batcher.h): concurrent
  /// /query executions arriving within the window run as one engine batch —
  /// duplicates answered once, presence folds shared. 0 (default) disables
  /// gathering; every query executes alone, exactly the historical path.
  std::int64_t batch_window_us = 0;
  std::string slow_log_path;         ///< "" = ring only
  std::string access_log_path;       ///< "" = no access log
};

class Server {
 public:
  /// Does not take ownership; `graph` and `engine` must outlive the server,
  /// and `engine` must wrap `graph`.
  Server(TemporalGraph* graph, engine::QueryEngine* engine, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Replays the on-disk ingestion log (if configured), binds, and spawns
  /// the listener, worker and writer threads. False + diagnostic on failure.
  bool Start(std::string* error);

  /// The bound port (resolves an ephemeral bind). Valid after Start.
  int port() const { return port_; }

  /// Graceful shutdown; safe from any thread, idempotent, returns when done.
  void Shutdown();

  /// Blocks until someone completes a shutdown (remote /shutdown included).
  void Wait();

  /// True once Start succeeded and Shutdown has not begun.
  bool running() const { return state_.load() == State::kRunning; }

  /// True once a client asked for /shutdown (the serve command polls this).
  bool shutdown_requested() const { return shutdown_requested_.load(); }

  /// Total requests answered (any endpoint, any status).
  std::uint64_t requests_served() const { return requests_served_.load(); }

 private:
  enum class State : int { kIdle, kRunning, kStopping, kStopped };

  struct Subscriber {
    int fd = -1;
  };

  void ListenerLoop();
  void WorkerLoop();
  void WriterLoop();

  void HandleConnection(int fd);

  /// Routes one parsed request. Returns nullopt when the connection was
  /// upgraded to an SSE stream (ownership of `fd` moved to subscribers_).
  std::optional<HttpResponse> Dispatch(const HttpRequest& request, int fd);

  HttpResponse HandleQuery(const HttpRequest& request);
  HttpResponse HandleIngest(const HttpRequest& request);
  HttpResponse HandleStats();
  HttpResponse HandleMetrics(const HttpRequest& request);
  HttpResponse HandleDebugTrace(const HttpRequest& request);
  HttpResponse HandleDebugSlow();

  /// Emits the structured slow-query record for the bound request context
  /// (called by HandleQuery when the threshold fired).
  void RecordSlowQuery(const obs::RequestContext& context,
                       const std::string& spec_text, std::uint64_t total_us);
  bool HandleSubscribe(int fd);

  /// Publishes one SSE frame to every subscriber, dropping dead streams.
  void Broadcast(const std::string& event, const std::string& data);

  /// Builds the evolution-event payload comparing the two newest time points
  /// (caller holds at least the shared side of graph_mutex_).
  std::string EvolutionEventJson() const;

  void AppendToIngestLog(const std::vector<IngestRecord>& records);

  TemporalGraph* graph_;
  engine::QueryEngine* engine_;
  ServerConfig config_;

  /// Gathers concurrent queries into engine batches when
  /// `config_.batch_window_us` > 0; a transparent pass-through otherwise.
  QueryBatcher batcher_;

  /// Atomic: Shutdown() swaps it to -1 while ListenerLoop reads it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;

  std::atomic<State> state_{State::kIdle};
  std::atomic<bool> shutdown_requested_{false};

  /// Brokered access to graph + engine: queries bind/execute under shared,
  /// the ingestion writer mutates under exclusive.
  std::shared_mutex graph_mutex_;

  /// Accepted connections awaiting a worker; -1 entries are the shutdown
  /// sentinels (one per worker).
  std::mutex conn_mutex_;
  std::condition_variable conn_available_;
  std::deque<int> conn_queue_;

  IngestQueue ingest_queue_;
  RateLimiter rate_limiter_;
  std::atomic<std::int64_t> inflight_{0};
  std::atomic<std::uint64_t> requests_served_{0};

  std::mutex subscriber_mutex_;
  std::vector<Subscriber> subscribers_;

  std::mutex log_mutex_;  ///< serializes ingest-log file appends

  /// Created in Start, drained in Shutdown after the workers joined (no
  /// appends can race the drain). slow_log_ always exists (ring-only when no
  /// path was configured) so /debug/slow works out of the box; access_log_
  /// only when a path was configured.
  std::unique_ptr<LogWriter> slow_log_;
  std::unique_ptr<LogWriter> access_log_;

  std::thread listener_;
  std::vector<std::thread> workers_;
  std::thread writer_;

  std::mutex stopped_mutex_;
  std::condition_variable stopped_;
};

}  // namespace graphtempo::server

#endif  // GRAPHTEMPO_SERVER_SERVER_H_
