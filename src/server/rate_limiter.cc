#include "server/rate_limiter.h"

#include <algorithm>

namespace graphtempo::server {

RateLimiter::RateLimiter(double per_second, double burst)
    : per_second_(per_second),
      burst_(burst > 0 ? burst : std::max(per_second, 1.0)),
      tokens_(burst_),
      last_refill_(Clock::now()) {}

bool RateLimiter::TryAcquire() {
  if (unlimited()) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  Clock::time_point now = Clock::now();
  double elapsed = std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed * per_second_);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

}  // namespace graphtempo::server
