#include "engine/wire.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/string_util.h"

namespace graphtempo::engine::wire {

namespace {

/// Weight descending, then tuple codes ascending — a total order over
/// aggregate rows, so serialization is deterministic across runs and hosts.
int CompareTuples(const AttrTuple& a, const AttrTuple& b) {
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

json::Value TupleToJson(const TemporalGraph& graph, std::span<const AttrRef> attrs,
                        const AttrTuple& tuple) {
  json::Value array = json::Value::Array();
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i] == kNoValue) {
      array.Append(json::Value::Null());
    } else {
      array.Append(json::Value::String(graph.ValueName(attrs[i], tuple[i])));
    }
  }
  return array;
}

std::string FingerprintHex(std::uint64_t fingerprint) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%016" PRIx64, fingerprint);
  return buffer;
}

std::string IntervalLabel(const TemporalGraph& graph, const IntervalSet& interval) {
  if (interval.Empty()) return "{}";
  TimeId first = interval.First();
  TimeId last = interval.Last();
  if (first == last) return graph.time_label(first);
  return graph.time_label(first) + ".." + graph.time_label(last);
}

}  // namespace

namespace {

/// Shared `"attrs"` parsing: an array of known attribute names, at most
/// kMaxAttrs. `required` distinguishes aggregate/evolution (≥1 name) from
/// explore (raw-entity counting when omitted).
bool ParseAttrsField(const TemporalGraph& graph, const json::Value& request,
                     bool required, std::vector<AttrRef>* attrs, std::string* error) {
  const json::Value* field = request.Find("attrs");
  if (field == nullptr || !field->is_array() || field->AsArray().empty()) {
    if (!required && (field == nullptr ||
                      (field->is_array() && field->AsArray().empty()))) {
      return true;
    }
    *error = "'attrs' is required (a non-empty array of attribute names)";
    return false;
  }
  for (const json::Value& name : field->AsArray()) {
    if (!name.is_string()) {
      *error = "'attrs' entries must be strings";
      return false;
    }
    std::optional<AttrRef> ref = graph.FindAttribute(name.AsString());
    if (!ref.has_value()) {
      *error = "unknown attribute '" + name.AsString() + "'";
      return false;
    }
    if (attrs->size() >= AttrTuple::kMaxAttrs) {
      *error = "too many attributes (max " + std::to_string(AttrTuple::kMaxAttrs) + ")";
      return false;
    }
    attrs->push_back(*ref);
  }
  return true;
}

/// Shared `"explain"` / `"top"` parsing.
bool ParseRequestOptions(const json::Value& request, RequestOptions* options,
                         std::string* error) {
  if (options == nullptr) return true;
  *options = RequestOptions{};
  if (const json::Value* value = request.Find("explain")) {
    if (!value->is_bool()) {
      *error = "'explain' must be a bool";
      return false;
    }
    options->explain = value->AsBool();
  }
  if (const json::Value* value = request.Find("top")) {
    std::optional<std::uint64_t> top = value->AsUint64();
    if (!top.has_value()) {
      *error = "'top' must be a non-negative integer";
      return false;
    }
    options->top = static_cast<std::size_t>(*top);
  }
  return true;
}

/// Required-interval field helper: missing/ill-typed fields are hard errors.
std::optional<IntervalSet> ParseIntervalField(const TemporalGraph& graph,
                                              const json::Value& request,
                                              const char* name, std::string* error) {
  const json::Value* field = request.Find(name);
  if (field == nullptr || !field->is_string()) {
    *error = std::string("'") + name +
             "' is required (a time point or \"a..b\" range string)";
    return std::nullopt;
  }
  return ParseInterval(graph, field->AsString(), error);
}

std::optional<QuerySpec> BindEvolutionSpec(const TemporalGraph& graph,
                                           const json::Value& request,
                                           RequestOptions* options,
                                           std::string* error) {
  QuerySpec spec;
  spec.kind = QueryKind::kEvolution;
  std::optional<IntervalSet> t1 = ParseIntervalField(graph, request, "t1", error);
  if (!t1.has_value()) return std::nullopt;
  spec.t1 = *t1;
  std::optional<IntervalSet> t2 = ParseIntervalField(graph, request, "t2", error);
  if (!t2.has_value()) return std::nullopt;
  spec.t2 = *t2;
  if (!ParseAttrsField(graph, request, /*required=*/true, &spec.attrs, error)) {
    return std::nullopt;
  }
  if (!ParseRequestOptions(request, options, error)) return std::nullopt;
  return spec;
}

std::optional<QuerySpec> BindExploreSpec(const TemporalGraph& graph,
                                         const json::Value& request,
                                         RequestOptions* options, std::string* error) {
  QuerySpec spec;
  spec.kind = QueryKind::kExplore;
  // The exploration sweep reads every time point; bind t1 to the full domain
  // so DependencyInterval covers exactly what the answer depends on.
  spec.t1 = IntervalSet::All(graph.num_times());

  const json::Value* event = request.Find("event");
  if (event == nullptr || !event->is_string()) {
    *error = "'event' is required (stability|growth|shrinkage)";
    return std::nullopt;
  }
  const std::string event_name = event->AsString();
  if (event_name == "stability") {
    spec.explore.event = EventType::kStability;
  } else if (event_name == "growth") {
    spec.explore.event = EventType::kGrowth;
  } else if (event_name == "shrinkage") {
    spec.explore.event = EventType::kShrinkage;
  } else {
    *error = "unknown event '" + event_name + "' (stability|growth|shrinkage)";
    return std::nullopt;
  }

  std::string extension = "union";
  if (const json::Value* value = request.Find("extension")) {
    if (!value->is_string()) {
      *error = "'extension' must be a string";
      return std::nullopt;
    }
    extension = value->AsString();
  }
  if (extension == "union") {
    spec.explore.semantics = ExtensionSemantics::kUnion;
  } else if (extension == "intersection") {
    spec.explore.semantics = ExtensionSemantics::kIntersection;
  } else {
    *error = "'extension' must be union or intersection, got '" + extension + "'";
    return std::nullopt;
  }

  std::string reference = "new";
  if (const json::Value* value = request.Find("reference")) {
    if (!value->is_string()) {
      *error = "'reference' must be a string";
      return std::nullopt;
    }
    reference = value->AsString();
  }
  if (reference == "old") {
    spec.explore.reference = ReferenceEnd::kOld;
  } else if (reference == "new") {
    spec.explore.reference = ReferenceEnd::kNew;
  } else {
    *error = "'reference' must be old or new, got '" + reference + "'";
    return std::nullopt;
  }

  std::string select = "edges";
  if (const json::Value* value = request.Find("select")) {
    if (!value->is_string()) {
      *error = "'select' must be a string";
      return std::nullopt;
    }
    select = value->AsString();
  }
  if (select == "nodes") {
    spec.explore.selector.kind = EntitySelector::Kind::kNodes;
  } else if (select == "edges") {
    spec.explore.selector.kind = EntitySelector::Kind::kEdges;
  } else {
    *error = "'select' must be nodes or edges, got '" + select + "'";
    return std::nullopt;
  }

  if (const json::Value* value = request.Find("k")) {
    std::optional<std::uint64_t> k = value->AsUint64();
    if (!k.has_value()) {
      *error = "'k' must be a non-negative integer";
      return std::nullopt;
    }
    spec.explore.k = static_cast<Weight>(*k);
  }

  if (!ParseAttrsField(graph, request, /*required=*/false,
                       &spec.explore.selector.attrs, error)) {
    return std::nullopt;
  }
  spec.attrs = spec.explore.selector.attrs;  // mirrored for uniform rendering
  if (!ParseRequestOptions(request, options, error)) return std::nullopt;
  return spec;
}

}  // namespace

std::optional<TimeId> ParseTimePoint(const TemporalGraph& graph, const std::string& text,
                                     std::string* error) {
  if (std::optional<TimeId> t = graph.FindTime(text)) return t;
  std::uint64_t index = 0;
  if (ParseUint64(text, &index) && index < graph.num_times()) {
    return static_cast<TimeId>(index);
  }
  if (error != nullptr) *error = "unknown time point '" + text + "'";
  return std::nullopt;
}

std::optional<IntervalSet> ParseInterval(const TemporalGraph& graph,
                                         const std::string& text, std::string* error) {
  std::size_t dots = text.find("..");
  if (dots == std::string::npos) {
    std::optional<TimeId> t = ParseTimePoint(graph, text, error);
    if (!t.has_value()) return std::nullopt;
    return IntervalSet::Point(graph.num_times(), *t);
  }
  // Short-circuit on the first bad endpoint: one malformed range must produce
  // exactly one diagnostic, not one per endpoint.
  std::optional<TimeId> first = ParseTimePoint(graph, text.substr(0, dots), error);
  if (!first.has_value()) return std::nullopt;
  std::optional<TimeId> last = ParseTimePoint(graph, text.substr(dots + 2), error);
  if (!last.has_value()) return std::nullopt;
  if (*first > *last) {
    if (error != nullptr) *error = "inverted range '" + text + "'";
    return std::nullopt;
  }
  return IntervalSet::Range(graph.num_times(), *first, *last);
}

std::optional<QuerySpec> BindQuerySpec(const TemporalGraph& graph,
                                       const json::Value& request,
                                       RequestOptions* options, std::string* error) {
  if (!request.is_object()) {
    *error = "request must be a JSON object";
    return std::nullopt;
  }

  QuerySpec spec;

  std::string kind = "aggregate";
  if (const json::Value* value = request.Find("kind")) {
    if (!value->is_string()) {
      *error = "'kind' must be a string";
      return std::nullopt;
    }
    kind = value->AsString();
  }
  if (kind == "evolution") {
    return BindEvolutionSpec(graph, request, options, error);
  }
  if (kind == "explore") {
    return BindExploreSpec(graph, request, options, error);
  }
  if (kind != "aggregate") {
    *error = "unknown kind '" + kind + "' (aggregate|evolution|explore)";
    return std::nullopt;
  }

  std::string op = "union";
  if (const json::Value* value = request.Find("op")) {
    if (!value->is_string()) {
      *error = "'op' must be a string";
      return std::nullopt;
    }
    op = value->AsString();
  }
  if (op == "project") {
    spec.op = TemporalOperatorKind::kProject;
  } else if (op == "union") {
    spec.op = TemporalOperatorKind::kUnion;
  } else if (op == "intersection") {
    spec.op = TemporalOperatorKind::kIntersection;
  } else if (op == "difference") {
    spec.op = TemporalOperatorKind::kDifference;
  } else {
    *error = "unknown op '" + op + "' (union|intersection|difference|project)";
    return std::nullopt;
  }

  const json::Value* t1 = request.Find("t1");
  if (t1 == nullptr || !t1->is_string()) {
    *error = "'t1' is required (a time point or \"a..b\" range string)";
    return std::nullopt;
  }
  std::optional<IntervalSet> t1_parsed = ParseInterval(graph, t1->AsString(), error);
  if (!t1_parsed.has_value()) return std::nullopt;
  spec.t1 = *t1_parsed;

  if (spec.op != TemporalOperatorKind::kProject) {
    if (const json::Value* t2 = request.Find("t2")) {
      if (!t2->is_string()) {
        *error = "'t2' must be a string";
        return std::nullopt;
      }
      std::optional<IntervalSet> t2_parsed = ParseInterval(graph, t2->AsString(), error);
      if (!t2_parsed.has_value()) return std::nullopt;
      spec.t2 = *t2_parsed;
    } else {
      spec.t2 = *t1_parsed;  // like the CLI: --t2 falls back to --t1
    }
  }

  const json::Value* attrs = request.Find("attrs");
  if (attrs == nullptr || !attrs->is_array() || attrs->AsArray().empty()) {
    *error = "'attrs' is required (a non-empty array of attribute names)";
    return std::nullopt;
  }
  for (const json::Value& name : attrs->AsArray()) {
    if (!name.is_string()) {
      *error = "'attrs' entries must be strings";
      return std::nullopt;
    }
    std::optional<AttrRef> ref = graph.FindAttribute(name.AsString());
    if (!ref.has_value()) {
      *error = "unknown attribute '" + name.AsString() + "'";
      return std::nullopt;
    }
    if (spec.attrs.size() >= AttrTuple::kMaxAttrs) {
      *error = "too many attributes (max " + std::to_string(AttrTuple::kMaxAttrs) + ")";
      return std::nullopt;
    }
    spec.attrs.push_back(*ref);
  }

  std::string semantics = "dist";
  if (const json::Value* value = request.Find("semantics")) {
    if (!value->is_string()) {
      *error = "'semantics' must be a string";
      return std::nullopt;
    }
    semantics = value->AsString();
  }
  if (semantics == "dist") {
    spec.semantics = AggregationSemantics::kDistinct;
  } else if (semantics == "all") {
    spec.semantics = AggregationSemantics::kAll;
  } else {
    *error = "'semantics' must be dist or all, got '" + semantics + "'";
    return std::nullopt;
  }

  std::string grouping = "auto";
  if (const json::Value* value = request.Find("grouping")) {
    if (!value->is_string()) {
      *error = "'grouping' must be a string";
      return std::nullopt;
    }
    grouping = value->AsString();
  }
  if (grouping == "auto") {
    spec.grouping = GroupingStrategy::kAuto;
  } else if (grouping == "dense") {
    spec.grouping = GroupingStrategy::kDense;
  } else if (grouping == "hash") {
    spec.grouping = GroupingStrategy::kHash;
  } else {
    *error = "'grouping' must be auto, dense or hash, got '" + grouping + "'";
    return std::nullopt;
  }

  if (const json::Value* value = request.Find("symmetrize")) {
    if (!value->is_bool()) {
      *error = "'symmetrize' must be a bool";
      return std::nullopt;
    }
    spec.symmetrize = value->AsBool();
  }

  if (options != nullptr) {
    *options = RequestOptions{};
    if (const json::Value* value = request.Find("explain")) {
      if (!value->is_bool()) {
        *error = "'explain' must be a bool";
        return std::nullopt;
      }
      options->explain = value->AsBool();
    }
    if (const json::Value* value = request.Find("top")) {
      std::optional<std::uint64_t> top = value->AsUint64();
      if (!top.has_value()) {
        *error = "'top' must be a non-negative integer";
        return std::nullopt;
      }
      options->top = static_cast<std::size_t>(*top);
    }
  }
  return spec;
}

std::string ResultToJson(const TemporalGraph& graph, const QuerySpec& spec,
                         const QueryPlan& plan, const AggregateGraph& result,
                         std::size_t top) {
  std::vector<std::pair<AttrTuple, Weight>> nodes(result.nodes().begin(),
                                                  result.nodes().end());
  std::sort(nodes.begin(), nodes.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return CompareTuples(a.first, b.first) < 0;
  });
  std::vector<std::pair<AttrTuplePair, Weight>> edges(result.edges().begin(),
                                                      result.edges().end());
  std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    int src = CompareTuples(a.first.src, b.first.src);
    if (src != 0) return src < 0;
    return CompareTuples(a.first.dst, b.first.dst) < 0;
  });

  json::Value response = json::Value::Object();
  response.Set("fingerprint", json::Value::String(FingerprintHex(plan.fingerprint)));
  response.Set("route", json::Value::String(PlanRouteName(plan.route)));
  response.Set("interval",
               json::Value::String(IntervalLabel(graph, spec.EvaluationInterval())));
  response.Set("semantics",
               json::Value::String(
                   spec.semantics == AggregationSemantics::kDistinct ? "DIST" : "ALL"));
  response.Set("node_count", json::Value::Number(static_cast<std::uint64_t>(nodes.size())));
  response.Set("edge_count", json::Value::Number(static_cast<std::uint64_t>(edges.size())));

  json::Value node_rows = json::Value::Array();
  std::size_t node_limit = top == 0 ? nodes.size() : std::min(top, nodes.size());
  for (std::size_t i = 0; i < node_limit; ++i) {
    json::Value row = json::Value::Object();
    row.Set("tuple", TupleToJson(graph, spec.attrs, nodes[i].first));
    row.Set("weight", json::Value::Number(static_cast<std::int64_t>(nodes[i].second)));
    node_rows.Append(std::move(row));
  }
  response.Set("nodes", std::move(node_rows));

  json::Value edge_rows = json::Value::Array();
  std::size_t edge_limit = top == 0 ? edges.size() : std::min(top, edges.size());
  for (std::size_t i = 0; i < edge_limit; ++i) {
    json::Value row = json::Value::Object();
    row.Set("src", TupleToJson(graph, spec.attrs, edges[i].first.src));
    row.Set("dst", TupleToJson(graph, spec.attrs, edges[i].first.dst));
    row.Set("weight", json::Value::Number(static_cast<std::int64_t>(edges[i].second)));
    edge_rows.Append(std::move(row));
  }
  response.Set("edges", std::move(edge_rows));
  return response.Serialize();
}

std::string EvolutionToJson(const TemporalGraph& graph, const QuerySpec& spec,
                            const QueryPlan& plan, const EvolutionAggregate& result,
                            std::size_t top) {
  // Total weight descending, then tuple codes ascending — the same total
  // order discipline as aggregate rows, so responses are byte-deterministic.
  auto total = [](const EvolutionWeights& w) {
    return w.stability + w.growth + w.shrinkage;
  };
  std::vector<std::pair<AttrTuple, EvolutionWeights>> nodes(result.nodes().begin(),
                                                            result.nodes().end());
  std::sort(nodes.begin(), nodes.end(), [&](const auto& a, const auto& b) {
    if (total(a.second) != total(b.second)) return total(a.second) > total(b.second);
    return CompareTuples(a.first, b.first) < 0;
  });
  std::vector<std::pair<AttrTuplePair, EvolutionWeights>> edges(result.edges().begin(),
                                                                result.edges().end());
  std::sort(edges.begin(), edges.end(), [&](const auto& a, const auto& b) {
    if (total(a.second) != total(b.second)) return total(a.second) > total(b.second);
    int src = CompareTuples(a.first.src, b.first.src);
    if (src != 0) return src < 0;
    return CompareTuples(a.first.dst, b.first.dst) < 0;
  });

  json::Value response = json::Value::Object();
  response.Set("kind", json::Value::String("evolution"));
  response.Set("fingerprint", json::Value::String(FingerprintHex(plan.fingerprint)));
  response.Set("route", json::Value::String(PlanRouteName(plan.route)));
  response.Set("old", json::Value::String(IntervalLabel(graph, spec.t1)));
  response.Set("new", json::Value::String(IntervalLabel(graph, spec.t2)));
  response.Set("node_count", json::Value::Number(static_cast<std::uint64_t>(nodes.size())));
  response.Set("edge_count", json::Value::Number(static_cast<std::uint64_t>(edges.size())));

  auto weights_fields = [](json::Value* row, const EvolutionWeights& w) {
    row->Set("stability", json::Value::Number(static_cast<std::int64_t>(w.stability)));
    row->Set("growth", json::Value::Number(static_cast<std::int64_t>(w.growth)));
    row->Set("shrinkage", json::Value::Number(static_cast<std::int64_t>(w.shrinkage)));
  };

  json::Value node_rows = json::Value::Array();
  std::size_t node_limit = top == 0 ? nodes.size() : std::min(top, nodes.size());
  for (std::size_t i = 0; i < node_limit; ++i) {
    json::Value row = json::Value::Object();
    row.Set("tuple", TupleToJson(graph, spec.attrs, nodes[i].first));
    weights_fields(&row, nodes[i].second);
    node_rows.Append(std::move(row));
  }
  response.Set("nodes", std::move(node_rows));

  json::Value edge_rows = json::Value::Array();
  std::size_t edge_limit = top == 0 ? edges.size() : std::min(top, edges.size());
  for (std::size_t i = 0; i < edge_limit; ++i) {
    json::Value row = json::Value::Object();
    row.Set("src", TupleToJson(graph, spec.attrs, edges[i].first.src));
    row.Set("dst", TupleToJson(graph, spec.attrs, edges[i].first.dst));
    weights_fields(&row, edges[i].second);
    edge_rows.Append(std::move(row));
  }
  response.Set("edges", std::move(edge_rows));
  return response.Serialize();
}

std::string ExplorationToJson(const TemporalGraph& graph, const QuerySpec& spec,
                              const QueryPlan& plan, const ExplorationResult& result,
                              std::size_t top) {
  json::Value response = json::Value::Object();
  response.Set("kind", json::Value::String("explore"));
  response.Set("fingerprint", json::Value::String(FingerprintHex(plan.fingerprint)));
  response.Set("route", json::Value::String(PlanRouteName(plan.route)));
  response.Set("event", json::Value::String(EventTypeName(spec.explore.event)));
  response.Set("extension",
               json::Value::String(spec.explore.semantics == ExtensionSemantics::kUnion
                                       ? "union"
                                       : "intersection"));
  response.Set("reference",
               json::Value::String(spec.explore.reference == ReferenceEnd::kOld
                                       ? "old"
                                       : "new"));
  response.Set("k", json::Value::Number(static_cast<std::uint64_t>(spec.explore.k)));
  response.Set("pair_count",
               json::Value::Number(static_cast<std::uint64_t>(result.pairs.size())));
  response.Set("evaluations",
               json::Value::Number(static_cast<std::uint64_t>(result.evaluations)));

  auto range_label = [&](TimeRange range) {
    if (range.first == range.last) return graph.time_label(range.first);
    return graph.time_label(range.first) + ".." + graph.time_label(range.last);
  };
  json::Value pair_rows = json::Value::Array();
  std::size_t limit = top == 0 ? result.pairs.size() : std::min(top, result.pairs.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const IntervalPair& pair = result.pairs[i];
    json::Value row = json::Value::Object();
    row.Set("old", json::Value::String(range_label(pair.old_range)));
    row.Set("new", json::Value::String(range_label(pair.new_range)));
    row.Set("count", json::Value::Number(static_cast<std::int64_t>(pair.count)));
    pair_rows.Append(std::move(row));
  }
  response.Set("pairs", std::move(pair_rows));
  return response.Serialize();
}

std::string QueryResultToJson(const TemporalGraph& graph, const QuerySpec& spec,
                              const QueryPlan& plan, const QueryResult& result,
                              std::size_t top) {
  switch (result.kind) {
    case QueryKind::kAggregate:
      return ResultToJson(graph, spec, plan, result.aggregate, top);
    case QueryKind::kEvolution:
      return EvolutionToJson(graph, spec, plan, result.evolution, top);
    case QueryKind::kExplore:
      return ExplorationToJson(graph, spec, plan, result.exploration, top);
  }
  return "{}";
}

std::string PlanToJson(const QueryPlan& plan) {
  json::Value response = json::Value::Object();
  response.Set("fingerprint", json::Value::String(FingerprintHex(plan.fingerprint)));
  response.Set("route", json::Value::String(PlanRouteName(plan.route)));
  response.Set("cacheable", json::Value::Bool(plan.cacheable));
  response.Set("stale_fallback", json::Value::Bool(plan.stale_fallback));
  response.Set("planner", json::Value::String(PlannerModeName(plan.planner)));
  response.Set("cost_direct_us", json::Value::Number(plan.cost.direct_us));
  if (plan.cost.materialized_us >= 0.0) {
    response.Set("cost_materialized_us", json::Value::Number(plan.cost.materialized_us));
  } else {
    response.Set("cost_materialized_us", json::Value::Null());
  }
  json::Value steps = json::Value::Array();
  for (const PlanStep& step : plan.steps) {
    json::Value row = json::Value::Object();
    row.Set("kind", json::Value::String(step.kind));
    row.Set("detail", json::Value::String(step.detail));
    steps.Append(std::move(row));
  }
  response.Set("steps", std::move(steps));
  response.Set("explain", json::Value::String(plan.Explain()));
  return response.Serialize();
}

}  // namespace graphtempo::engine::wire
