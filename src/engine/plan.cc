#include "engine/plan.h"

#include <cinttypes>
#include <cstdio>

namespace graphtempo::engine {

const char* PlanRouteName(PlanRoute route) {
  switch (route) {
    case PlanRoute::kDirectKernel: return "direct";
    case PlanRoute::kMaterializedDerivation: return "materialized";
  }
  return "?";
}

std::string QueryPlan::Explain() const {
  char header[96];
  std::snprintf(header, sizeof(header), "plan fingerprint=0x%016" PRIx64, fingerprint);
  std::string out = header;
  out += "  route=";
  out += PlanRouteName(route);
  if (stale_fallback) out += "(stale-store-fallback)";
  out += "  cache=";
  out += cacheable ? "eligible" : "bypass(filter)";
  out += "  planner=";
  out += PlannerModeName(planner);
  out += "\n";
  {
    // Both route estimates, so the decision is inspectable under either
    // planner mode ("what would the cost model have done?").
    char line[96];
    if (cost.materialized_us >= 0.0) {
      std::snprintf(line, sizeof(line), "estimate direct=%.1fus materialized=%.1fus\n",
                    cost.direct_us, cost.materialized_us);
    } else {
      std::snprintf(line, sizeof(line), "estimate direct=%.1fus materialized=n/a\n",
                    cost.direct_us);
    }
    out += line;
  }
  // Align detail columns on the longest step kind.
  std::size_t kind_width = 0;
  for (const PlanStep& step : steps) {
    if (step.kind.size() > kind_width) kind_width = step.kind.size();
  }
  for (std::size_t i = 0; i < steps.size(); ++i) {
    char num[32];
    std::snprintf(num, sizeof(num), "  %zu. ", i + 1);
    out += num;
    out += steps[i].kind;
    if (!steps[i].detail.empty()) {
      for (std::size_t pad = steps[i].kind.size(); pad < kind_width + 1; ++pad) {
        out += ' ';
      }
      out += steps[i].detail;
    }
    out += "\n";
  }
  return out;
}

}  // namespace graphtempo::engine
