#include "engine/query_spec.h"

#include "util/check.h"

namespace graphtempo::engine {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void HashByte(std::uint64_t* h, std::uint8_t byte) {
  *h ^= byte;
  *h *= kFnvPrime;
}

void HashU64(std::uint64_t* h, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    HashByte(h, static_cast<std::uint8_t>(value >> shift));
  }
}

/// Hashes membership only, never the domain size: appending a time point
/// grows the domain of every interval parsed afterwards, and a spec naming
/// the same set of time points must keep the same fingerprint so cached
/// answers for old intervals stay reachable (append-only ingestion).
void HashInterval(std::uint64_t* h, const IntervalSet& interval) {
  HashU64(h, interval.Count());
  interval.ForEach([&](TimeId t) { HashU64(h, t); });
}

/// t2 does not participate in a projection's result; normalize it away so
/// syntactically different but semantically identical specs share a cache
/// entry.
bool UsesT2(TemporalOperatorKind op) { return op != TemporalOperatorKind::kProject; }

}  // namespace

const char* TemporalOperatorName(TemporalOperatorKind op) {
  switch (op) {
    case TemporalOperatorKind::kProject: return "project";
    case TemporalOperatorKind::kUnion: return "union";
    case TemporalOperatorKind::kIntersection: return "intersection";
    case TemporalOperatorKind::kDifference: return "difference";
  }
  return "?";
}

IntervalSet QuerySpec::EvaluationInterval() const {
  switch (op) {
    case TemporalOperatorKind::kProject:
    case TemporalOperatorKind::kDifference:
      return t1;
    case TemporalOperatorKind::kUnion:
    case TemporalOperatorKind::kIntersection:
      return t1 | t2;
  }
  return t1;
}

IntervalSet QuerySpec::DependencyInterval() const {
  if (!UsesT2(op)) return t1;
  return t1 | t2;
}

std::uint64_t QuerySpec::Fingerprint() const {
  std::uint64_t h = kFnvOffset;
  HashByte(&h, static_cast<std::uint8_t>(op));
  HashByte(&h, static_cast<std::uint8_t>(semantics));
  // `grouping` is intentionally not hashed: dense vs hash is an execution
  // hint with bit-identical results, so both spellings share a cache slot.
  HashByte(&h, symmetrize ? 1 : 0);
  HashU64(&h, attrs.size());
  for (const AttrRef& ref : attrs) {
    HashByte(&h, static_cast<std::uint8_t>(ref.kind));
    HashU64(&h, ref.index);
  }
  HashInterval(&h, t1);
  if (UsesT2(op)) {
    HashInterval(&h, t2);
  } else {
    HashByte(&h, 0xffu);  // domain separator: "no t2"
  }
  return h;
}

bool QuerySpec::EquivalentTo(const QuerySpec& other) const {
  // `grouping` is a hint, not part of the query's identity (see Fingerprint).
  // Intervals compare by membership, not domain size, so a spec bound before
  // a time point was appended still matches its re-bound twin afterwards.
  return op == other.op && semantics == other.semantics &&
         symmetrize == other.symmetrize && filter == other.filter &&
         attrs == other.attrs && t1.SameMembers(other.t1) &&
         (!UsesT2(op) || t2.SameMembers(other.t2));
}

std::string QuerySpec::ToString(const TemporalGraph& graph) const {
  std::string out = TemporalOperatorName(op);
  out += " t1=";
  out += t1.ToString();
  if (UsesT2(op)) {
    out += " t2=";
    out += t2.ToString();
  }
  out += " attrs=[";
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i != 0) out += ",";
    out += graph.attribute_name(attrs[i]);
  }
  out += "] semantics=";
  out += semantics == AggregationSemantics::kDistinct ? "DIST" : "ALL";
  if (filter != nullptr) out += " filter=yes";
  if (symmetrize) out += " symmetrize=yes";
  return out;
}

GraphView BuildOperatorView(const TemporalGraph& graph, const QuerySpec& spec) {
  switch (spec.op) {
    case TemporalOperatorKind::kProject:
      return Project(graph, spec.t1);
    case TemporalOperatorKind::kUnion:
      return UnionOp(graph, spec.t1, spec.t2);
    case TemporalOperatorKind::kIntersection:
      return IntersectionOp(graph, spec.t1, spec.t2);
    case TemporalOperatorKind::kDifference:
      return DifferenceOp(graph, spec.t1, spec.t2);
  }
  GT_CHECK(false) << "unreachable operator kind";
  GraphView unreachable;
  return unreachable;
}

}  // namespace graphtempo::engine
