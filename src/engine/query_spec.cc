#include "engine/query_spec.h"

#include "util/check.h"

namespace graphtempo::engine {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void HashByte(std::uint64_t* h, std::uint8_t byte) {
  *h ^= byte;
  *h *= kFnvPrime;
}

void HashU64(std::uint64_t* h, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    HashByte(h, static_cast<std::uint8_t>(value >> shift));
  }
}

/// Hashes membership only, never the domain size: appending a time point
/// grows the domain of every interval parsed afterwards, and a spec naming
/// the same set of time points must keep the same fingerprint so cached
/// answers for old intervals stay reachable (append-only ingestion).
void HashInterval(std::uint64_t* h, const IntervalSet& interval) {
  HashU64(h, interval.Count());
  interval.ForEach([&](TimeId t) { HashU64(h, t); });
}

/// t2 does not participate in a projection's result; normalize it away so
/// syntactically different but semantically identical specs share a cache
/// entry.
bool UsesT2(TemporalOperatorKind op) { return op != TemporalOperatorKind::kProject; }

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kAggregate: return "aggregate";
    case QueryKind::kEvolution: return "evolution";
    case QueryKind::kExplore: return "explore";
  }
  return "?";
}

const char* TemporalOperatorName(TemporalOperatorKind op) {
  switch (op) {
    case TemporalOperatorKind::kProject: return "project";
    case TemporalOperatorKind::kUnion: return "union";
    case TemporalOperatorKind::kIntersection: return "intersection";
    case TemporalOperatorKind::kDifference: return "difference";
  }
  return "?";
}

IntervalSet QuerySpec::EvaluationInterval() const {
  if (kind == QueryKind::kEvolution) return t1 | t2;
  if (kind == QueryKind::kExplore) return t1;
  switch (op) {
    case TemporalOperatorKind::kProject:
    case TemporalOperatorKind::kDifference:
      return t1;
    case TemporalOperatorKind::kUnion:
    case TemporalOperatorKind::kIntersection:
      return t1 | t2;
  }
  return t1;
}

IntervalSet QuerySpec::DependencyInterval() const {
  if (kind == QueryKind::kEvolution) return t1 | t2;
  if (kind == QueryKind::kExplore) return t1;  // bound to the full domain
  if (!UsesT2(op)) return t1;
  return t1 | t2;
}

namespace {

void HashAttrs(std::uint64_t* h, const std::vector<AttrRef>& attrs) {
  HashU64(h, attrs.size());
  for (const AttrRef& ref : attrs) {
    HashByte(h, static_cast<std::uint8_t>(ref.kind));
    HashU64(h, ref.index);
  }
}

void HashOptionalTuple(std::uint64_t* h, const std::optional<AttrTuple>& tuple) {
  if (!tuple.has_value()) {
    HashByte(h, 0);
    return;
  }
  HashByte(h, 1);
  HashU64(h, tuple->size());
  for (std::size_t i = 0; i < tuple->size(); ++i) HashU64(h, (*tuple)[i]);
}

}  // namespace

std::uint64_t QuerySpec::Fingerprint() const {
  if (kind == QueryKind::kEvolution) {
    std::uint64_t h = kFnvOffset;
    HashByte(&h, 0xe1u);  // kind tag: evolution (cannot collide with kAggregate,
                          // whose first hashed byte is a TemporalOperatorKind < 4)
    HashAttrs(&h, attrs);
    HashInterval(&h, t1);
    HashInterval(&h, t2);
    return h;
  }
  if (kind == QueryKind::kExplore) {
    std::uint64_t h = kFnvOffset;
    HashByte(&h, 0xe2u);  // kind tag: explore
    HashByte(&h, static_cast<std::uint8_t>(explore.event));
    HashByte(&h, static_cast<std::uint8_t>(explore.semantics));
    HashByte(&h, static_cast<std::uint8_t>(explore.reference));
    HashU64(&h, static_cast<std::uint64_t>(explore.k));
    HashByte(&h, static_cast<std::uint8_t>(explore.selector.kind));
    HashByte(&h, static_cast<std::uint8_t>(explore.selector.semantics));
    HashAttrs(&h, explore.selector.attrs);
    HashOptionalTuple(&h, explore.selector.node_tuple);
    HashOptionalTuple(&h, explore.selector.src_tuple);
    HashOptionalTuple(&h, explore.selector.dst_tuple);
    HashInterval(&h, t1);
    return h;
  }
  std::uint64_t h = kFnvOffset;
  HashByte(&h, static_cast<std::uint8_t>(op));
  HashByte(&h, static_cast<std::uint8_t>(semantics));
  // `grouping` is intentionally not hashed: dense vs hash is an execution
  // hint with bit-identical results, so both spellings share a cache slot.
  HashByte(&h, symmetrize ? 1 : 0);
  HashAttrs(&h, attrs);  // same byte sequence as the historical inline loop
  HashInterval(&h, t1);
  if (UsesT2(op)) {
    HashInterval(&h, t2);
  } else {
    HashByte(&h, 0xffu);  // domain separator: "no t2"
  }
  return h;
}

namespace {

bool SameSelector(const EntitySelector& a, const EntitySelector& b) {
  return a.kind == b.kind && a.semantics == b.semantics && a.attrs == b.attrs &&
         a.node_tuple == b.node_tuple && a.src_tuple == b.src_tuple &&
         a.dst_tuple == b.dst_tuple;
}

}  // namespace

bool QuerySpec::EquivalentTo(const QuerySpec& other) const {
  if (kind != other.kind) return false;
  if (kind == QueryKind::kEvolution) {
    return attrs == other.attrs && filter == other.filter &&
           t1.SameMembers(other.t1) && t2.SameMembers(other.t2);
  }
  if (kind == QueryKind::kExplore) {
    return explore.event == other.explore.event &&
           explore.semantics == other.explore.semantics &&
           explore.reference == other.explore.reference &&
           explore.k == other.explore.k &&
           SameSelector(explore.selector, other.explore.selector) &&
           t1.SameMembers(other.t1);
  }
  // `grouping` is a hint, not part of the query's identity (see Fingerprint).
  // Intervals compare by membership, not domain size, so a spec bound before
  // a time point was appended still matches its re-bound twin afterwards.
  return op == other.op && semantics == other.semantics &&
         symmetrize == other.symmetrize && filter == other.filter &&
         attrs == other.attrs && t1.SameMembers(other.t1) &&
         (!UsesT2(op) || t2.SameMembers(other.t2));
}

namespace {

void AppendAttrs(std::string* out, const TemporalGraph& graph,
                 const std::vector<AttrRef>& attrs) {
  *out += "[";
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i != 0) *out += ",";
    *out += graph.attribute_name(attrs[i]);
  }
  *out += "]";
}

}  // namespace

std::string QuerySpec::ToString(const TemporalGraph& graph) const {
  if (kind == QueryKind::kEvolution) {
    std::string out = "evolution old=";
    out += t1.ToString();
    out += " new=";
    out += t2.ToString();
    out += " attrs=";
    AppendAttrs(&out, graph, attrs);
    if (filter != nullptr) out += " filter=yes";
    return out;
  }
  if (kind == QueryKind::kExplore) {
    std::string out = "explore event=";
    out += EventTypeName(explore.event);
    out += explore.semantics == ExtensionSemantics::kUnion ? " semantics=union"
                                                           : " semantics=intersection";
    out += explore.reference == ReferenceEnd::kOld ? " reference=old" : " reference=new";
    out += " k=";
    out += std::to_string(explore.k);
    out += explore.selector.kind == EntitySelector::Kind::kNodes ? " select=nodes"
                                                                 : " select=edges";
    out += " attrs=";
    AppendAttrs(&out, graph, explore.selector.attrs);
    return out;
  }
  std::string out = TemporalOperatorName(op);
  out += " t1=";
  out += t1.ToString();
  if (UsesT2(op)) {
    out += " t2=";
    out += t2.ToString();
  }
  out += " attrs=";
  AppendAttrs(&out, graph, attrs);
  out += " semantics=";
  out += semantics == AggregationSemantics::kDistinct ? "DIST" : "ALL";
  if (filter != nullptr) out += " filter=yes";
  if (symmetrize) out += " symmetrize=yes";
  return out;
}

GraphView BuildOperatorView(const TemporalGraph& graph, const QuerySpec& spec) {
  GT_CHECK(spec.kind == QueryKind::kAggregate)
      << "operator views exist only for aggregate specs";
  switch (spec.op) {
    case TemporalOperatorKind::kProject:
      return Project(graph, spec.t1);
    case TemporalOperatorKind::kUnion:
      return UnionOp(graph, spec.t1, spec.t2);
    case TemporalOperatorKind::kIntersection:
      return IntersectionOp(graph, spec.t1, spec.t2);
    case TemporalOperatorKind::kDifference:
      return DifferenceOp(graph, spec.t1, spec.t2);
  }
  GT_CHECK(false) << "unreachable operator kind";
  GraphView unreachable;
  return unreachable;
}

GraphView BuildOperatorView(const TemporalGraph& graph, const QuerySpec& spec,
                            PresenceFoldProvider& folds) {
  GT_CHECK(spec.kind == QueryKind::kAggregate)
      << "operator views exist only for aggregate specs";
  switch (spec.op) {
    case TemporalOperatorKind::kProject:
      return Project(graph, spec.t1, folds);
    case TemporalOperatorKind::kUnion:
      return UnionOp(graph, spec.t1, spec.t2, folds);
    case TemporalOperatorKind::kIntersection:
      return IntersectionOp(graph, spec.t1, spec.t2, folds);
    case TemporalOperatorKind::kDifference:
      return DifferenceOp(graph, spec.t1, spec.t2, folds);
  }
  GT_CHECK(false) << "unreachable operator kind";
  GraphView unreachable;
  return unreachable;
}

}  // namespace graphtempo::engine
