#ifndef GRAPHTEMPO_ENGINE_CUBE_H_
#define GRAPHTEMPO_ENGINE_CUBE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "engine/engine.h"

/// \file
/// `AggregateCube`: the OLAP-style materialization manager sketched in
/// Section 4.3, now a thin client of the query engine (docs/ENGINE.md).
/// Materializing *every* (attribute subset × interval) aggregate is
/// unrealistic; the cube instead stores only per-time-point aggregates of
/// the full attribute set and derives everything else:
///
///   * an attribute subset comes from the full set by **roll-up**
///     (D-distributive) — memoized per subset, per time point;
///   * a union interval comes from per-time-point aggregates by **weight
///     summation** (T-distributive, ALL semantics).
///
/// A query therefore never touches the original graph once the base layer is
/// built. Since PR 4 both memoizations live inside `engine::QueryEngine` —
/// the cube forces the materialized plan route and keeps the historical
/// OLAP-facing API (positional subsets, derivation counters). The embedded
/// engine runs with result caching *disabled* so the derivation counters
/// reflect every query, which is what the ablation benchmark measures.

namespace graphtempo {

class AggregateCube {
 public:
  /// Cube over `base_attrs` (at most AttrTuple::kMaxAttrs). `graph` must
  /// outlive the cube.
  AggregateCube(const TemporalGraph* graph, std::vector<AttrRef> base_attrs);

  /// Builds the base layer: per-time-point ALL aggregates of the full
  /// attribute set. Idempotent.
  void Materialize();

  /// Incremental maintenance after `TemporalGraph::AppendTimePoint`: extends
  /// the base layer and every memoized subset layer with the new time
  /// points' aggregates. No-op when up to date.
  void Refresh();

  bool materialized() const { return engine_.materialization_enabled(); }

  /// ALL-semantics aggregate of the union graph over `interval`, on the
  /// attribute subset selected by `keep_positions` (indices into
  /// `base_attrs()`, output order preserved). Requires Materialize().
  AggregateGraph Query(const IntervalSet& interval,
                       std::span<const std::size_t> keep_positions);

  /// Convenience overload: the full attribute set.
  AggregateGraph Query(const IntervalSet& interval);

  const std::vector<AttrRef>& base_attrs() const { return base_attrs_; }

  /// Observability: how queries were answered. Derivation counters are the
  /// embedded engine's (`QueryEngine::DerivationStats`).
  struct Stats {
    std::size_t queries = 0;      ///< Query() calls
    std::size_t rollups = 0;      ///< per-time-point roll-ups performed
    std::size_t rollup_hits = 0;  ///< per-time-point roll-ups served from cache
    std::size_t combines = 0;     ///< per-time-point aggregates summed
  };

  Stats stats() const;

  /// The embedded engine, e.g. for planning/Explain against the cube's store.
  engine::QueryEngine& query_engine() { return engine_; }

 private:
  std::vector<AttrRef> base_attrs_;
  engine::QueryEngine engine_;
  std::size_t queries_ = 0;
};

}  // namespace graphtempo

#endif  // GRAPHTEMPO_ENGINE_CUBE_H_
