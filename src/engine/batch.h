#ifndef GRAPHTEMPO_ENGINE_BATCH_H_
#define GRAPHTEMPO_ENGINE_BATCH_H_

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "core/operators.h"

/// \file
/// Shared batch execution (docs/ENGINE.md §Batch execution).
///
/// Concurrent queries over an evolving graph overlap heavily: loadgen-style
/// workloads hit the same hot intervals, and even distinct specs over one
/// interval fold the same presence columns. `QueryEngine::ExecuteBatch`
/// exploits both:
///
///   * **merge** — specs within the batch that are pairwise `EquivalentTo`
///     are computed once and fanned out (`engine/batch_merged`);
///   * **fold sharing** — the remaining executions route their direct-route
///     operator folds through one `FoldCache`, so a union/intersection fold
///     over (presence index, time mask) is computed at most once per batch
///     (`engine/batch_fold_hits` / `engine/batch_fold_misses`).
///
/// Both transformations are result-invariant: merging only copies results
/// between equivalent cacheable specs, and the fold cache memoizes a pure
/// function of frozen inputs (the whole batch runs under one reader lock, so
/// the graph cannot mutate mid-batch). The batch differential suite pins
/// byte-identity against serial execution.

namespace graphtempo::engine {

/// A memoizing `PresenceFoldProvider`: the first request for a given
/// (presence index, fold kind, time mask) computes the fold, later requests
/// return the stored bitset. Storage is a `std::map`, so handed-out
/// references stay valid for the cache's lifetime (node-based, never
/// rehashes). Single-threaded by design — the batch leader owns it.
class FoldCache : public PresenceFoldProvider {
 public:
  const DynamicBitset& UnionFold(const PresenceIndex& index,
                                 const DynamicBitset& times) override;
  const DynamicBitset& IntersectionFold(const PresenceIndex& index,
                                        const DynamicBitset& times) override;

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  /// (index identity, fold kind, mask words) — mask words are compared by
  /// value so two IntervalSets naming the same members share an entry.
  using Key = std::tuple<const PresenceIndex*, bool, std::vector<std::uint64_t>>;

  const DynamicBitset& Lookup(const PresenceIndex& index, const DynamicBitset& times,
                              bool union_fold);

  std::map<Key, DynamicBitset> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace graphtempo::engine

#endif  // GRAPHTEMPO_ENGINE_BATCH_H_
