#include "engine/engine.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace graphtempo::engine {

namespace {

/// Registry counters mirrored from CacheStats / routing decisions. Cached in
/// statics: metric creation locks, updates are lock-free.
obs::Counter& QueriesCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/queries");
  return c;
}
obs::Counter& RouteDirectCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/route_direct");
  return c;
}
obs::Counter& RouteMaterializedCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/route_materialized");
  return c;
}
obs::Counter& CacheHitCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/cache_hit");
  return c;
}
obs::Counter& CacheMissCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/cache_miss");
  return c;
}
obs::Counter& CacheBypassCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/cache_bypass");
  return c;
}
obs::Counter& CacheEvictCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/cache_evict");
  return c;
}
obs::Counter& CacheInvalidateCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/cache_invalidate");
  return c;
}

bool UsesT2(TemporalOperatorKind op) { return op != TemporalOperatorKind::kProject; }

std::string JoinAttrNames(const TemporalGraph& graph, std::span<const AttrRef> attrs) {
  std::string out;
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i != 0) out += ",";
    out += graph.attribute_name(attrs[i]);
  }
  return out;
}

std::string JoinPositions(std::span<const std::size_t> positions) {
  std::string out = "[";
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(positions[i]);
  }
  out += "]";
  return out;
}

/// The step-kind → span-name map. GT_SPAN names must be string literals, so
/// the dynamic PlanStep::kind is mirrored by a fixed table here; Explain and
/// trace output stay one-to-one.
const char* OperatorSpanName(TemporalOperatorKind op) {
  switch (op) {
    case TemporalOperatorKind::kProject: return "engine/operator/project";
    case TemporalOperatorKind::kUnion: return "engine/operator/union";
    case TemporalOperatorKind::kIntersection: return "engine/operator/intersection";
    case TemporalOperatorKind::kDifference: return "engine/operator/difference";
  }
  return "engine/operator";
}

}  // namespace

QueryEngine::QueryEngine(const TemporalGraph* graph, Config config)
    : graph_(graph), config_(config) {
  GT_CHECK(graph_ != nullptr);
  cache_generation_ = graph_->mutation_generation();
}

void QueryEngine::EnableMaterialization(std::vector<AttrRef> attrs) {
  if (store_.has_value()) {
    GT_CHECK(store_->attrs() == attrs)
        << "materialization already enabled over a different attribute list";
    store_->MaterializeAllTimePoints();
    return;
  }
  GT_CHECK(!attrs.empty()) << "materialization needs at least one attribute";
  GT_CHECK_LE(attrs.size(), AttrTuple::kMaxAttrs) << "too many base attributes";
  store_.emplace(graph_, std::move(attrs));
  store_->MaterializeAllTimePoints();
}

const std::vector<AttrRef>& QueryEngine::materialized_attrs() const {
  GT_CHECK(store_.has_value()) << "materialization is not enabled";
  return store_->attrs();
}

void QueryEngine::Refresh() {
  if (!store_.has_value()) return;
  store_->Refresh();
  const std::size_t num_times = graph_->num_times();
  for (auto& [mask, layer] : subset_layers_) {
    // Recover the canonical subset positions from the mask.
    std::vector<std::size_t> keep;
    for (std::size_t position = 0; position < store_->attrs().size(); ++position) {
      if ((mask >> position) & 1u) keep.push_back(position);
    }
    for (TimeId t = static_cast<TimeId>(layer.size()); t < num_times; ++t) {
      layer.push_back(RollUp(store_->AtTimePoint(t), keep));
      ++derivation_stats_.rollups;
    }
  }
}

bool QueryEngine::MapToBasePositions(const QuerySpec& spec,
                                     std::vector<std::size_t>* keep) const {
  if (!store_.has_value()) return false;
  const std::vector<AttrRef>& base = store_->attrs();
  std::vector<std::size_t> positions;
  positions.reserve(spec.attrs.size());
  for (const AttrRef& ref : spec.attrs) {
    auto it = std::find(base.begin(), base.end(), ref);
    if (it == base.end()) return false;  // attribute not materialized
    const std::size_t position = static_cast<std::size_t>(it - base.begin());
    if (std::find(positions.begin(), positions.end(), position) != positions.end()) {
      return false;  // duplicated attribute: mapping must stay injective
    }
    positions.push_back(position);
  }
  *keep = std::move(positions);
  return true;
}

bool QueryEngine::Derivable(const QuerySpec& spec) const {
  // An opaque filter makes the answer depend on data outside the store.
  if (spec.filter != nullptr || !store_.has_value()) return false;
  // T-distributivity covers union under ALL on any interval (Section 4.3);
  // on a single evaluation point DIST coincides with ALL (Fig 3), which also
  // admits project (a single-point projection *is* the snapshot). Multi-point
  // project/intersection/difference are not distributive over time points.
  const bool union_all = spec.op == TemporalOperatorKind::kUnion &&
                         spec.semantics == AggregationSemantics::kAll;
  const bool single_point = (spec.op == TemporalOperatorKind::kProject ||
                             spec.op == TemporalOperatorKind::kUnion) &&
                            spec.EvaluationInterval().Count() == 1;
  if (!union_all && !single_point) return false;
  std::vector<std::size_t> keep;
  return MapToBasePositions(spec, &keep);
}

QueryPlan QueryEngine::Plan(const QuerySpec& spec, const PlanOptions& options) const {
  GT_SPAN("engine/plan");
  GT_CHECK(!spec.attrs.empty()) << "spec needs at least one aggregation attribute";
  GT_CHECK_LE(spec.attrs.size(), AttrTuple::kMaxAttrs) << "too many aggregation attributes";

  QueryPlan plan;
  plan.fingerprint = spec.Fingerprint();
  plan.cacheable = spec.Cacheable();

  const bool derivable = Derivable(spec);
  if (options.force_route.has_value()) {
    GT_CHECK(*options.force_route != PlanRoute::kMaterializedDerivation || derivable)
        << "cannot force the materialized route: spec is not derivable";
    plan.route = *options.force_route;
  } else {
    plan.route = derivable ? PlanRoute::kMaterializedDerivation : PlanRoute::kDirectKernel;
  }

  if (plan.route == PlanRoute::kMaterializedDerivation) {
    GT_CHECK(MapToBasePositions(spec, &plan.keep_positions));
    const std::vector<AttrRef>& base = store_->attrs();
    bool identity = plan.keep_positions.size() == base.size();
    for (std::size_t i = 0; identity && i < plan.keep_positions.size(); ++i) {
      identity = plan.keep_positions[i] == i;
    }
    plan.needs_rollup = !identity;
    plan.steps.push_back(
        {"combine", "store=(" + JoinAttrNames(*graph_, base) +
                        ") points=" + std::to_string(spec.EvaluationInterval().Count())});
    if (plan.needs_rollup) {
      plan.steps.push_back({"roll-up", "keep=" + JoinPositions(plan.keep_positions)});
    }
  } else {
    const GroupingResolution resolution =
        ResolveGrouping(*graph_, spec.attrs, spec.grouping);
    plan.dense_nodes = resolution.dense_nodes;
    plan.dense_edges = resolution.dense_edges;
    std::string operand = "t1=" + spec.t1.ToString();
    if (UsesT2(spec.op)) operand += " t2=" + spec.t2.ToString();
    plan.steps.push_back(
        {std::string("operator/") + TemporalOperatorName(spec.op), std::move(operand)});
    std::string detail = "attrs=[" + JoinAttrNames(*graph_, spec.attrs) + "] semantics=";
    detail += spec.semantics == AggregationSemantics::kDistinct ? "DIST" : "ALL";
    detail += " nodes=";
    detail += plan.dense_nodes ? "dense" : "hash";
    detail += " edges=";
    detail += plan.dense_edges ? "dense" : "hash";
    if (spec.filter != nullptr) detail += " filter=yes";
    plan.steps.push_back({"aggregate", std::move(detail)});
  }
  if (spec.symmetrize) plan.steps.push_back({"symmetrize", "mirror-edge merge"});
  return plan;
}

void QueryEngine::InvalidateIfStale() {
  const std::uint64_t generation = graph_->mutation_generation();
  if (generation == cache_generation_) return;
  if (!cache_.empty()) {
    ++cache_stats_.invalidations;
    CacheInvalidateCounter().Increment();
    cache_.clear();
    lru_.clear();
  }
  cache_generation_ = generation;
}

void QueryEngine::ClearCache() {
  cache_.clear();
  lru_.clear();
}

AggregateGraph QueryEngine::Execute(const QuerySpec& spec, const PlanOptions& options) {
  const QueryPlan plan = Plan(spec, options);
  GT_SPAN("engine/execute", {{"route", static_cast<std::uint64_t>(plan.route)},
                             {"steps", plan.steps.size()}});
  QueriesCounter().Increment();

  if (!plan.cacheable || config_.cache_capacity == 0) {
    ++cache_stats_.bypasses;
    CacheBypassCounter().Increment();
    return Run(spec, plan);
  }

  InvalidateIfStale();
  auto it = cache_.find(plan.fingerprint);
  if (it != cache_.end() && it->second.spec.EquivalentTo(spec)) {
    ++cache_stats_.hits;
    CacheHitCounter().Increment();
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.result;
  }
  ++cache_stats_.misses;
  CacheMissCounter().Increment();

  AggregateGraph result = Run(spec, plan);
  if (it != cache_.end()) {
    // Fingerprint collision with a non-equivalent spec: the newer query wins
    // the slot (EquivalentTo above guarantees we never *served* the impostor).
    it->second.spec = spec;
    it->second.result = result;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return result;
  }
  lru_.push_front(plan.fingerprint);
  cache_.emplace(plan.fingerprint, CachedResult{spec, result, lru_.begin()});
  if (cache_.size() > config_.cache_capacity) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    ++cache_stats_.evictions;
    CacheEvictCounter().Increment();
  }
  return result;
}

AggregateGraph QueryEngine::Run(const QuerySpec& spec, const QueryPlan& plan) {
  switch (plan.route) {
    case PlanRoute::kDirectKernel:
      RouteDirectCounter().Increment();
      return RunDirect(spec, plan);
    case PlanRoute::kMaterializedDerivation:
      RouteMaterializedCounter().Increment();
      return RunMaterialized(spec, plan);
  }
  GT_CHECK(false) << "unreachable plan route";
  return AggregateGraph{};
}

AggregateGraph QueryEngine::RunDirect(const QuerySpec& spec, const QueryPlan& /*plan*/) {
  GraphView view;
  {
    obs::Span span(OperatorSpanName(spec.op));
    view = BuildOperatorView(*graph_, spec);
  }
  AggregationOptions options;
  options.semantics = spec.semantics;
  options.filter = spec.filter;
  options.grouping = spec.grouping;
  AggregateGraph result;
  {
    GT_SPAN("engine/aggregate", {{"nodes", view.NodeCount()}, {"edges", view.EdgeCount()}});
    result = Aggregate(*graph_, view, spec.attrs, options);
  }
  if (spec.symmetrize) {
    GT_SPAN("engine/symmetrize");
    result = SymmetrizeAggregate(result);
  }
  return result;
}

const std::vector<AggregateGraph>& QueryEngine::SubsetLayer(
    std::span<const std::size_t> canonical) {
  SubsetMask mask = 0;
  for (std::size_t position : canonical) {
    GT_CHECK_LT(position, store_->attrs().size()) << "subset position out of range";
    mask |= SubsetMask{1} << position;
  }
  auto it = subset_layers_.find(mask);
  if (it != subset_layers_.end()) {
    derivation_stats_.rollup_hits += graph_->num_times();
    return it->second;
  }
  std::vector<AggregateGraph> layer;
  layer.reserve(graph_->num_times());
  for (TimeId t = 0; t < graph_->num_times(); ++t) {
    layer.push_back(RollUp(store_->AtTimePoint(t), canonical));
    ++derivation_stats_.rollups;
  }
  return subset_layers_.emplace(mask, std::move(layer)).first->second;
}

AggregateGraph QueryEngine::RunMaterialized(const QuerySpec& spec, const QueryPlan& plan) {
  GT_CHECK(store_.has_value() && store_->materialized())
      << "materialized route without a materialized store";
  GT_CHECK_EQ(store_->num_cached_points(), graph_->num_times())
      << "materialization is stale — call Refresh() after AppendTimePoint()";
  const IntervalSet interval = spec.EvaluationInterval();
  GT_CHECK(!interval.Empty()) << "evaluation interval must be non-empty";

  // Canonicalize the kept positions: the subset-layer cache is keyed by the
  // attribute *set*; a caller-ordered subset is served from the canonical
  // layer and reordered at the end (D-distributivity again).
  std::vector<std::size_t> canonical(plan.keep_positions);
  std::sort(canonical.begin(), canonical.end());
  const bool full_set = canonical.size() == store_->attrs().size();
  const std::vector<AggregateGraph>* layer = full_set ? nullptr : &SubsetLayer(canonical);

  AggregateGraph combined;
  {
    GT_SPAN("engine/combine", {{"points", interval.Count()}});
    interval.ForEach([&](TimeId t) {
      const AggregateGraph& point = full_set ? store_->AtTimePoint(t) : (*layer)[t];
      for (const auto& [tuple, weight] : point.nodes()) {
        combined.AddNodeWeight(tuple, weight);
      }
      for (const auto& [pair, weight] : point.edges()) {
        combined.AddEdgeWeight(pair.src, pair.dst, weight);
      }
      ++derivation_stats_.combines;
    });
  }

  const bool reordered =
      !std::equal(canonical.begin(), canonical.end(), plan.keep_positions.begin(),
                  plan.keep_positions.end());
  if (reordered) {
    GT_SPAN("engine/roll-up");
    std::vector<std::size_t> order(plan.keep_positions.size());
    for (std::size_t i = 0; i < plan.keep_positions.size(); ++i) {
      auto it = std::find(canonical.begin(), canonical.end(), plan.keep_positions[i]);
      order[i] = static_cast<std::size_t>(it - canonical.begin());
    }
    combined = RollUp(combined, order);
  }
  if (spec.symmetrize) {
    GT_SPAN("engine/symmetrize");
    combined = SymmetrizeAggregate(combined);
  }
  return combined;
}

}  // namespace graphtempo::engine
