#include "engine/engine.h"

#include <algorithm>
#include <iterator>
#include <string>
#include <utility>

#include "core/graph_snapshot.h"
#include "engine/batch.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace graphtempo::engine {

namespace {

/// Registry counters mirrored from CacheStats / routing decisions. Cached in
/// statics: metric creation locks, updates are lock-free.
obs::Counter& QueriesCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/queries");
  return c;
}
obs::Counter& RouteDirectCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/route_direct");
  return c;
}
obs::Counter& RouteMaterializedCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/route_materialized");
  return c;
}
obs::Counter& CacheHitCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/cache_hit");
  return c;
}
obs::Counter& CacheMissCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/cache_miss");
  return c;
}
obs::Counter& CacheBypassCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/cache_bypass");
  return c;
}
obs::Counter& CacheEvictCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/cache_evict");
  return c;
}
obs::Counter& CacheInvalidateCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/cache_invalidate");
  return c;
}
obs::Counter& StaleFallbackCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/stale_fallback");
  return c;
}
obs::Counter& CostPlanCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/cost_plan");
  return c;
}
obs::Counter& CostRouteFlipCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/cost_route_flip");
  return c;
}
obs::Counter& LayerSpillCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/layer_spill");
  return c;
}
obs::Counter& LayerReloadCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/layer_reload");
  return c;
}
obs::Counter& ResultSpillCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/result_spill");
  return c;
}
obs::Counter& ResultReloadCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/result_reload");
  return c;
}

std::string HexFingerprint(std::uint64_t fingerprint) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[fingerprint & 0xF];
    fingerprint >>= 4;
  }
  return out;
}

bool UsesT2(TemporalOperatorKind op) { return op != TemporalOperatorKind::kProject; }

std::string JoinAttrNames(const TemporalGraph& graph, std::span<const AttrRef> attrs) {
  std::string out;
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i != 0) out += ",";
    out += graph.attribute_name(attrs[i]);
  }
  return out;
}

std::string JoinPositions(std::span<const std::size_t> positions) {
  std::string out = "[";
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(positions[i]);
  }
  out += "]";
  return out;
}

/// The step-kind → span-name map. GT_SPAN names must be string literals, so
/// the dynamic PlanStep::kind is mirrored by a fixed table here; Explain and
/// trace output stay one-to-one.
const char* OperatorSpanName(TemporalOperatorKind op) {
  switch (op) {
    case TemporalOperatorKind::kProject: return "engine/operator/project";
    case TemporalOperatorKind::kUnion: return "engine/operator/union";
    case TemporalOperatorKind::kIntersection: return "engine/operator/intersection";
    case TemporalOperatorKind::kDifference: return "engine/operator/difference";
  }
  return "engine/operator";
}

}  // namespace

QueryEngine::QueryEngine(const TemporalGraph* graph, Config config)
    : graph_(graph), config_(std::move(config)) {
  GT_CHECK(graph_ != nullptr);
  if (!config_.spill_dir.empty()) {
    spill_ = std::make_unique<storage::SpillDirectory>(config_.spill_dir);
    GT_CHECK(spill_->ok()) << spill_->error();
  }
}

std::unique_lock<std::shared_mutex> QueryEngine::AcquireWriterLock() const {
  return std::unique_lock<std::shared_mutex>(state_mutex_);
}

void QueryEngine::EnableMaterialization(std::vector<AttrRef> attrs) {
  std::unique_lock<std::shared_mutex> writer(state_mutex_);
  if (store_.has_value()) {
    GT_CHECK(store_->attrs() == attrs)
        << "materialization already enabled over a different attribute list";
    store_->MaterializeAllTimePoints();
    return;
  }
  GT_CHECK(!attrs.empty()) << "materialization needs at least one attribute";
  GT_CHECK_LE(attrs.size(), AttrTuple::kMaxAttrs) << "too many base attributes";
  store_.emplace(graph_, std::move(attrs));
  store_->MaterializeAllTimePoints();
}

bool QueryEngine::materialization_enabled() const {
  std::shared_lock<std::shared_mutex> reader(state_mutex_);
  return store_.has_value();
}

const std::vector<AttrRef>& QueryEngine::materialized_attrs() const {
  std::shared_lock<std::shared_mutex> reader(state_mutex_);
  GT_CHECK(store_.has_value()) << "materialization is not enabled";
  return store_->attrs();
}

void QueryEngine::Refresh() {
  std::unique_lock<std::shared_mutex> writer(state_mutex_);
  if (!store_.has_value()) return;
  store_->Refresh();
  const std::size_t num_times = graph_->num_times();
  for (auto it = subset_layers_.begin(); it != subset_layers_.end();) {
    auto& [mask, entry] = *it;
    // Recover the canonical subset positions from the mask.
    std::vector<std::size_t> keep;
    for (std::size_t position = 0; position < store_->attrs().size(); ++position) {
      if ((mask >> position) & 1u) keep.push_back(position);
    }
    // The exclusive writer lock guarantees no reader holds a pin, so spilled
    // entries can be rewritten in place: reload, extend, spill back. A layer
    // whose spill file went bad is dropped (it will be rebuilt on demand).
    std::vector<AggregateGraph>* layer = entry->data.get();
    std::vector<AggregateGraph> reloaded;
    if (layer == nullptr) {
      bool ok = false;
      if (spill_ != nullptr) {
        if (std::optional<std::string> bytes = spill_->Get(LayerSpillKey(mask))) {
          std::string decode_error;
          ok = DecodeAggregateGraphs(*bytes, &reloaded, &decode_error);
        }
      }
      if (!ok) {
        if (spill_ != nullptr) spill_->Remove(LayerSpillKey(mask));
        it = subset_layers_.erase(it);
        continue;
      }
      layer = &reloaded;
    }
    for (TimeId t = static_cast<TimeId>(layer->size()); t < num_times; ++t) {
      layer->push_back(RollUp(store_->AtTimePoint(t), keep));
      derivation_stats_.rollups.fetch_add(1, std::memory_order_relaxed);
    }
    if (layer == &reloaded) {
      spill_->Put(LayerSpillKey(mask), EncodeAggregateGraphs(reloaded));
    }
    ++it;
  }
  // Per-entry sweep: only results whose dependency time points were actually
  // touched are stale; append-only growth leaves old intervals' answers
  // valid, so they stay resident and keep hitting.
  for (CacheShard& shard : cache_shards_) {
    std::unique_lock<std::shared_mutex> cache_writer(shard.mutex);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (!EntryValid(*it->second)) {
        it = shard.entries.erase(it);
        cache_size_.fetch_sub(1, std::memory_order_relaxed);
        cache_stats_.invalidations.fetch_add(1, std::memory_order_relaxed);
        CacheInvalidateCounter().Increment();
      } else {
        ++it;
      }
    }
  }
}

bool QueryEngine::MapToBasePositions(const QuerySpec& spec,
                                     std::vector<std::size_t>* keep) const {
  if (!store_.has_value()) return false;
  const std::vector<AttrRef>& base = store_->attrs();
  std::vector<std::size_t> positions;
  positions.reserve(spec.attrs.size());
  for (const AttrRef& ref : spec.attrs) {
    auto it = std::find(base.begin(), base.end(), ref);
    if (it == base.end()) return false;  // attribute not materialized
    const std::size_t position = static_cast<std::size_t>(it - base.begin());
    if (std::find(positions.begin(), positions.end(), position) != positions.end()) {
      return false;  // duplicated attribute: mapping must stay injective
    }
    positions.push_back(position);
  }
  *keep = std::move(positions);
  return true;
}

bool QueryEngine::DerivableLocked(const QuerySpec& spec) const {
  // Only the aggregate family has a materialized derivation; evolution and
  // exploration sweeps always run against the graph.
  if (spec.kind != QueryKind::kAggregate) return false;
  // An opaque filter makes the answer depend on data outside the store.
  if (spec.filter != nullptr || !store_.has_value()) return false;
  // T-distributivity covers union under ALL on any interval (Section 4.3);
  // on a single evaluation point DIST coincides with ALL (Fig 3), which also
  // admits project (a single-point projection *is* the snapshot). Multi-point
  // project/intersection/difference are not distributive over time points.
  const bool union_all = spec.op == TemporalOperatorKind::kUnion &&
                         spec.semantics == AggregationSemantics::kAll;
  const bool single_point = (spec.op == TemporalOperatorKind::kProject ||
                             spec.op == TemporalOperatorKind::kUnion) &&
                            spec.EvaluationInterval().Count() == 1;
  if (!union_all && !single_point) return false;
  std::vector<std::size_t> keep;
  return MapToBasePositions(spec, &keep);
}

bool QueryEngine::Derivable(const QuerySpec& spec) const {
  std::shared_lock<std::shared_mutex> reader(state_mutex_);
  return DerivableLocked(spec);
}

bool QueryEngine::StoreStale() const {
  return store_.has_value() && store_->num_cached_points() != graph_->num_times();
}

bool QueryEngine::SubsetLayerMemoized(SubsetMask mask) const {
  std::lock_guard<std::mutex> lock(subset_mutex_);
  return subset_layers_.find(mask) != subset_layers_.end();
}

CostInputs QueryEngine::CostInputsLocked(const QuerySpec& spec, bool derivable,
                                         std::span<const std::size_t> keep) const {
  CostInputs inputs;
  const IntervalSet eval = spec.EvaluationInterval();
  inputs.eval_points = eval.Count();
  // Per-point popcounts, cached inside PresenceIndex — the estimate costs a
  // handful of table reads, never a scan. A spec bound before an append may
  // carry a smaller time domain than the graph; estimating zero appearances
  // there is fine (execution GT_CHECKs the domain anyway).
  if (eval.bits().size() == graph_->num_times()) {
    inputs.node_appearances = graph_->node_presence_index().AppearancesOver(eval.bits());
    inputs.edge_appearances = graph_->edge_presence_index().AppearancesOver(eval.bits());
  }
  if (!derivable) return inputs;
  inputs.materialized_available = true;
  inputs.total_points = graph_->num_times();
  if (store_->num_cached_points() > 0) {
    // First store point as the per-point group-count proxy: exact enough for
    // an ordering decision, free to read.
    const AggregateGraph& first = store_->AtTimePoint(0);
    inputs.store_groups = first.nodes().size() + first.edges().size();
  }
  // A strict attribute subset answers through a per-time-point roll-up
  // layer; if that layer is cold, the derivation pays for building it over
  // *every* store point — the fixed rule's losing case.
  inputs.needs_rollup = keep.size() < store_->attrs().size();
  if (inputs.needs_rollup) {
    std::vector<std::size_t> canonical(keep.begin(), keep.end());
    std::sort(canonical.begin(), canonical.end());
    SubsetMask mask = 0;
    for (std::size_t position : canonical) mask |= SubsetMask{1} << position;
    inputs.layer_memoized = SubsetLayerMemoized(mask);
  }
  return inputs;
}

QueryPlan QueryEngine::Plan(const QuerySpec& spec, const PlanOptions& options) const {
  std::shared_lock<std::shared_mutex> reader(state_mutex_);
  return PlanLocked(spec, options);
}

QueryPlan QueryEngine::PlanLocked(const QuerySpec& spec,
                                  const PlanOptions& options) const {
  GT_SPAN("engine/plan");

  QueryPlan plan;
  plan.fingerprint = spec.Fingerprint();
  plan.cacheable = spec.Cacheable();
  plan.planner = config_.planner;

  if (spec.kind == QueryKind::kEvolution) {
    GT_CHECK(!spec.attrs.empty()) << "spec needs at least one aggregation attribute";
    GT_CHECK_LE(spec.attrs.size(), AttrTuple::kMaxAttrs)
        << "too many aggregation attributes";
    GT_CHECK(!options.force_route.has_value() ||
             *options.force_route == PlanRoute::kDirectKernel)
        << "evolution specs have no materialized route";
    plan.route = PlanRoute::kDirectKernel;
    plan.cost = EstimateCost(CostInputsLocked(spec, /*derivable=*/false, {}));
    std::string detail = "old=" + spec.t1.ToString() + " new=" + spec.t2.ToString() +
                         " attrs=[" + JoinAttrNames(*graph_, spec.attrs) + "]";
    if (spec.filter != nullptr) detail += " filter=yes";
    plan.steps.push_back({"evolution", std::move(detail)});
    return plan;
  }
  if (spec.kind == QueryKind::kExplore) {
    GT_CHECK(!options.force_route.has_value() ||
             *options.force_route == PlanRoute::kDirectKernel)
        << "explore specs have no materialized route";
    plan.route = PlanRoute::kDirectKernel;
    plan.cost = EstimateCost(CostInputsLocked(spec, /*derivable=*/false, {}));
    std::string detail = std::string("event=") + EventTypeName(spec.explore.event);
    detail += spec.explore.semantics == ExtensionSemantics::kUnion
                  ? " semantics=union"
                  : " semantics=intersection";
    detail += spec.explore.reference == ReferenceEnd::kOld ? " reference=old"
                                                           : " reference=new";
    detail += " k=" + std::to_string(spec.explore.k);
    plan.steps.push_back({"explore", std::move(detail)});
    return plan;
  }

  GT_CHECK(!spec.attrs.empty()) << "spec needs at least one aggregation attribute";
  GT_CHECK_LE(spec.attrs.size(), AttrTuple::kMaxAttrs) << "too many aggregation attributes";

  const bool derivable = DerivableLocked(spec);
  std::vector<std::size_t> keep;
  if (derivable) {
    GT_CHECK(MapToBasePositions(spec, &keep));
  }
  plan.cost = EstimateCost(CostInputsLocked(spec, derivable, keep));

  if (options.force_route.has_value()) {
    GT_CHECK(*options.force_route != PlanRoute::kMaterializedDerivation || derivable)
        << "cannot force the materialized route: spec is not derivable";
    plan.route = *options.force_route;
  } else if (config_.planner == PlannerMode::kCost) {
    CostPlanCounter().Increment();
    const bool derive = derivable && plan.cost.MaterializedWins();
    // A "flip" is a decision the fixed rule would have made differently —
    // the rule derives whenever it can.
    if (derivable && !derive) CostRouteFlipCounter().Increment();
    plan.route = derive ? PlanRoute::kMaterializedDerivation : PlanRoute::kDirectKernel;
  } else {
    plan.route = derivable ? PlanRoute::kMaterializedDerivation : PlanRoute::kDirectKernel;
  }

  // Graceful degradation: a derivable spec cannot be served from a store that
  // AppendTimePoint outran — answer through the kernels instead of crashing
  // (or worse, summing aggregates that miss the new points).
  if (plan.route == PlanRoute::kMaterializedDerivation && StoreStale()) {
    plan.route = PlanRoute::kDirectKernel;
    plan.stale_fallback = true;
    StaleFallbackCounter().Increment();
    if (obs::RequestContext* ctx = obs::CurrentRequestContext()) {
      ctx->stale_fallback.store(true, std::memory_order_relaxed);
    }
  }

  if (plan.route == PlanRoute::kMaterializedDerivation) {
    plan.keep_positions = std::move(keep);
    const std::vector<AttrRef>& base = store_->attrs();
    bool identity = plan.keep_positions.size() == base.size();
    for (std::size_t i = 0; identity && i < plan.keep_positions.size(); ++i) {
      identity = plan.keep_positions[i] == i;
    }
    plan.needs_rollup = !identity;
    plan.steps.push_back(
        {"combine", "store=(" + JoinAttrNames(*graph_, base) +
                        ") points=" + std::to_string(spec.EvaluationInterval().Count())});
    if (plan.needs_rollup) {
      plan.steps.push_back({"roll-up", "keep=" + JoinPositions(plan.keep_positions)});
    }
  } else {
    const GroupingResolution resolution =
        ResolveGrouping(*graph_, spec.attrs, spec.grouping);
    plan.dense_nodes = resolution.dense_nodes;
    plan.dense_edges = resolution.dense_edges;
    if (obs::RequestContext* ctx = obs::CurrentRequestContext()) {
      ctx->grouping.store(plan.dense_nodes ? "dense" : "hash",
                          std::memory_order_relaxed);
    }
    std::string operand = "t1=" + spec.t1.ToString();
    if (UsesT2(spec.op)) operand += " t2=" + spec.t2.ToString();
    plan.steps.push_back(
        {std::string("operator/") + TemporalOperatorName(spec.op), std::move(operand)});
    std::string detail = "attrs=[" + JoinAttrNames(*graph_, spec.attrs) + "] semantics=";
    detail += spec.semantics == AggregationSemantics::kDistinct ? "DIST" : "ALL";
    detail += " nodes=";
    detail += plan.dense_nodes ? "dense" : "hash";
    detail += " edges=";
    detail += plan.dense_edges ? "dense" : "hash";
    if (spec.filter != nullptr) detail += " filter=yes";
    plan.steps.push_back({"aggregate", std::move(detail)});
  }
  if (spec.symmetrize) plan.steps.push_back({"symmetrize", "mirror-edge merge"});
  return plan;
}

bool QueryEngine::EntryValid(const CachedResult& entry) const {
  return graph_->IntervalUnchangedSince(entry.dependencies, entry.generation);
}

void QueryEngine::ClearCache() {
  for (CacheShard& shard : cache_shards_) {
    std::unique_lock<std::shared_mutex> cache_writer(shard.mutex);
    cache_size_.fetch_sub(shard.entries.size(), std::memory_order_relaxed);
    shard.entries.clear();
  }
  std::lock_guard<std::mutex> spill_lock(spill_mutex_);
  if (spill_ != nullptr) {
    for (const auto& [fingerprint, entry] : spilled_results_) {
      spill_->Remove("result_" + HexFingerprint(fingerprint));
    }
  }
  spilled_results_.clear();
}

QueryEngine::CacheStats QueryEngine::cache_stats() const {
  CacheStats stats;
  stats.hits = cache_stats_.hits.load(std::memory_order_relaxed);
  stats.misses = cache_stats_.misses.load(std::memory_order_relaxed);
  stats.bypasses = cache_stats_.bypasses.load(std::memory_order_relaxed);
  stats.evictions = cache_stats_.evictions.load(std::memory_order_relaxed);
  stats.invalidations = cache_stats_.invalidations.load(std::memory_order_relaxed);
  return stats;
}

QueryEngine::DerivationStats QueryEngine::derivation_stats() const {
  DerivationStats stats;
  stats.rollups = static_cast<std::size_t>(
      derivation_stats_.rollups.load(std::memory_order_relaxed));
  stats.rollup_hits = static_cast<std::size_t>(
      derivation_stats_.rollup_hits.load(std::memory_order_relaxed));
  stats.combines = static_cast<std::size_t>(
      derivation_stats_.combines.load(std::memory_order_relaxed));
  return stats;
}

AggregateGraph QueryEngine::Execute(const QuerySpec& spec, const PlanOptions& options) {
  GT_CHECK(spec.kind == QueryKind::kAggregate)
      << "Execute() answers aggregate specs; use ExecuteResult for "
      << QueryKindName(spec.kind) << " specs";
  std::shared_lock<std::shared_mutex> reader(state_mutex_);
  QueryResult result = ExecuteLocked(spec, options, nullptr);
  return std::move(result.aggregate);
}

QueryResult QueryEngine::ExecuteResult(const QuerySpec& spec, const PlanOptions& options) {
  std::shared_lock<std::shared_mutex> reader(state_mutex_);
  return ExecuteLocked(spec, options, nullptr);
}

QueryResult QueryEngine::ExecuteLocked(const QuerySpec& spec, const PlanOptions& options,
                                       FoldCache* folds) {
  // Caller holds `state_mutex_` shared for the whole query: plan, lookup,
  // run. Writers — Refresh, EnableMaterialization, graph mutations under
  // AcquireWriterLock — are excluded until it returns, so the graph and store
  // are frozen from this thread's point of view.
  const QueryPlan plan = PlanLocked(spec, options);
  GT_SPAN("engine/execute", {{"route", static_cast<std::uint64_t>(plan.route)},
                             {"steps", plan.steps.size()}});
  QueriesCounter().Increment();
  // Attribute the planning outcome to the bound request context (if any) so
  // the server's slow-query record reflects exactly what this execution did.
  obs::RequestContext* ctx = obs::CurrentRequestContext();
  if (ctx != nullptr) {
    ctx->fingerprint.store(plan.fingerprint, std::memory_order_relaxed);
    ctx->route.store(PlanRouteName(plan.route), std::memory_order_relaxed);
    ctx->planner.store(PlannerModeName(plan.planner), std::memory_order_relaxed);
  }

  if (!plan.cacheable || config_.cache_capacity == 0) {
    cache_stats_.bypasses.fetch_add(1, std::memory_order_relaxed);
    CacheBypassCounter().Increment();
    if (ctx != nullptr) ctx->cache.store("bypass", std::memory_order_relaxed);
    return Run(spec, plan, folds);
  }

  const std::uint64_t generation = graph_->mutation_generation();
  CacheShard& home = cache_shards_[ShardIndex(plan.fingerprint)];
  {
    // Hit path: the home shard's shared lock only, plus a relaxed sloppy-LRU
    // touch — concurrent hits on other shards never contend here.
    std::shared_lock<std::shared_mutex> cache_reader(home.mutex);
    auto it = home.entries.find(plan.fingerprint);
    if (it != home.entries.end()) {
      CachedResult& entry = *it->second;
      if (EntryValid(entry) && entry.spec.EquivalentTo(spec)) {
        cache_stats_.hits.fetch_add(1, std::memory_order_relaxed);
        CacheHitCounter().Increment();
        if (ctx != nullptr) ctx->cache.store("hit", std::memory_order_relaxed);
        entry.last_used.store(
            lru_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
        return entry.result;  // copy while the shared lock pins the entry
      }
    }
  }
  if (spill_ != nullptr) {
    // Cold tier: an aggregate answer evicted earlier may still be on disk and
    // still valid. A reload counts as a hit (nothing is recomputed) and the
    // result is promoted back into the resident cache.
    if (std::optional<QueryResult> reloaded =
            TryLoadSpilledResult(plan.fingerprint, spec)) {
      cache_stats_.hits.fetch_add(1, std::memory_order_relaxed);
      CacheHitCounter().Increment();
      if (ctx != nullptr) ctx->cache.store("hit", std::memory_order_relaxed);
      InsertResult(spec, plan, *reloaded, generation);
      return *std::move(reloaded);
    }
  }
  cache_stats_.misses.fetch_add(1, std::memory_order_relaxed);
  CacheMissCounter().Increment();
  if (ctx != nullptr) ctx->cache.store("miss", std::memory_order_relaxed);

  QueryResult result = Run(spec, plan, folds);
  InsertResult(spec, plan, result, generation);
  return result;
}

void QueryEngine::InsertResult(const QuerySpec& spec, const QueryPlan& plan,
                               const QueryResult& result, std::uint64_t generation) {
  // Per-entry invalidation sweep: evict exactly the entries whose dependency
  // time points mutated past their stamp. Append-only growth touches only
  // appended points, so disjoint old-interval entries survive here. Shard by
  // shard — never more than one shard lock held, no ordering concern.
  for (CacheShard& shard : cache_shards_) {
    std::unique_lock<std::shared_mutex> cache_writer(shard.mutex);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (!EntryValid(*it->second)) {
        it = shard.entries.erase(it);
        cache_size_.fetch_sub(1, std::memory_order_relaxed);
        cache_stats_.invalidations.fetch_add(1, std::memory_order_relaxed);
        CacheInvalidateCounter().Increment();
      } else {
        ++it;
      }
    }
  }

  const std::uint64_t stamp = lru_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  CacheShard& home = cache_shards_[ShardIndex(plan.fingerprint)];
  {
    std::unique_lock<std::shared_mutex> cache_writer(home.mutex);
    auto it = home.entries.find(plan.fingerprint);
    if (it != home.entries.end()) {
      // Either a concurrent reader filled the slot while we computed, or a
      // fingerprint collision with a non-equivalent spec: the newer query wins
      // (EquivalentTo on the hit path guarantees an impostor is never served).
      CachedResult& entry = *it->second;
      entry.spec = spec;
      entry.result = result;
      entry.dependencies = spec.DependencyInterval();
      entry.generation = generation;
      entry.last_used.store(stamp, std::memory_order_relaxed);
      return;
    }
    home.entries.emplace(
        plan.fingerprint,
        std::make_unique<CachedResult>(spec, result, spec.DependencyInterval(),
                                       generation, stamp));
    cache_size_.fetch_add(1, std::memory_order_relaxed);
  }
  if (cache_size_.load(std::memory_order_relaxed) > config_.cache_capacity) {
    // Sloppy LRU: evict the globally smallest last-used stamp. The only
    // multi-shard lock site — locks are taken in ascending index order (the
    // home-shard lock above is already released). O(capacity) scan, but only
    // on an insert that overflows — the hit path never pays it.
    std::array<std::unique_lock<std::shared_mutex>, kCacheShards> locks;
    for (std::size_t i = 0; i < kCacheShards; ++i) {
      locks[i] = std::unique_lock<std::shared_mutex>(cache_shards_[i].mutex);
    }
    std::size_t total = 0;
    for (const CacheShard& shard : cache_shards_) total += shard.entries.size();
    if (total > config_.cache_capacity) {
      CacheShard* victim_shard = nullptr;
      std::unordered_map<std::uint64_t, std::unique_ptr<CachedResult>>::iterator victim;
      std::uint64_t oldest = 0;
      for (CacheShard& shard : cache_shards_) {
        for (auto candidate = shard.entries.begin(); candidate != shard.entries.end();
             ++candidate) {
          const std::uint64_t used =
              candidate->second->last_used.load(std::memory_order_relaxed);
          if (victim_shard == nullptr || used < oldest) {
            oldest = used;
            victim_shard = &shard;
            victim = candidate;
          }
        }
      }
      if (victim_shard != nullptr) {
        SpillEvictedResult(victim->first, *victim->second);
        victim_shard->entries.erase(victim);
        cache_size_.fetch_sub(1, std::memory_order_relaxed);
        cache_stats_.evictions.fetch_add(1, std::memory_order_relaxed);
        CacheEvictCounter().Increment();
      }
    }
  }
}

QueryResult QueryEngine::Run(const QuerySpec& spec, const QueryPlan& plan,
                             FoldCache* folds) {
  QueryResult out;
  out.kind = spec.kind;
  if (spec.kind == QueryKind::kEvolution) {
    RouteDirectCounter().Increment();
    GT_SPAN("engine/evolution");
    out.evolution =
        AggregateEvolution(*graph_, spec.t1, spec.t2, spec.attrs, spec.filter);
    return out;
  }
  if (spec.kind == QueryKind::kExplore) {
    RouteDirectCounter().Increment();
    GT_SPAN("engine/explore");
    out.exploration = Explore(*graph_, spec.explore);
    return out;
  }
  switch (plan.route) {
    case PlanRoute::kDirectKernel:
      RouteDirectCounter().Increment();
      out.aggregate = RunDirect(spec, plan, folds);
      return out;
    case PlanRoute::kMaterializedDerivation:
      RouteMaterializedCounter().Increment();
      out.aggregate = RunMaterialized(spec, plan);
      return out;
  }
  GT_CHECK(false) << "unreachable plan route";
  return out;
}

AggregateGraph QueryEngine::RunDirect(const QuerySpec& spec, const QueryPlan& /*plan*/,
                                      FoldCache* folds) {
  GraphView view;
  {
    obs::Span span(OperatorSpanName(spec.op));
    view = folds != nullptr ? BuildOperatorView(*graph_, spec, *folds)
                            : BuildOperatorView(*graph_, spec);
  }
  AggregationOptions options;
  options.semantics = spec.semantics;
  options.filter = spec.filter;
  options.grouping = spec.grouping;
  AggregateGraph result;
  {
    GT_SPAN("engine/aggregate", {{"nodes", view.NodeCount()}, {"edges", view.EdgeCount()}});
    result = Aggregate(*graph_, view, spec.attrs, options);
  }
  if (spec.symmetrize) {
    GT_SPAN("engine/symmetrize");
    result = SymmetrizeAggregate(result);
  }
  return result;
}

std::string QueryEngine::LayerSpillKey(SubsetMask mask) {
  return "layer_" + std::to_string(mask);
}

void QueryEngine::EvictLayersLocked() {
  if (config_.max_resident_layers == 0) return;
  for (;;) {
    std::size_t resident = 0;
    LayerEntry* coldest = nullptr;
    SubsetMask coldest_mask = 0;
    std::uint64_t coldest_used = 0;
    auto coldest_it = subset_layers_.end();
    for (auto it = subset_layers_.begin(); it != subset_layers_.end(); ++it) {
      LayerEntry* entry = it->second.get();
      if (entry->data == nullptr) continue;  // already spilled
      ++resident;
      if (entry->pins.load(std::memory_order_acquire) != 0) continue;  // in use
      const std::uint64_t used = entry->last_used.load(std::memory_order_relaxed);
      if (coldest == nullptr || used < coldest_used) {
        coldest = entry;
        coldest_mask = it->first;
        coldest_used = used;
        coldest_it = it;
      }
    }
    if (resident <= config_.max_resident_layers || coldest == nullptr) return;
    // Pins are only acquired under `subset_mutex_` (held here), so observing
    // pins == 0 above means no reader holds or can take a reference.
    if (spill_ != nullptr &&
        spill_->Put(LayerSpillKey(coldest_mask), EncodeAggregateGraphs(*coldest->data))) {
      coldest->data.reset();
      coldest->spilled = true;
      LayerSpillCounter().Increment();
    } else {
      // No spill tier (or the write failed): drop the layer outright; a later
      // query rebuilds it from the store.
      subset_layers_.erase(coldest_it);
    }
  }
}

QueryEngine::LayerRef QueryEngine::SubsetLayer(std::span<const std::size_t> canonical,
                                               bool* served_from_memo) {
  SubsetMask mask = 0;
  for (std::size_t position : canonical) {
    GT_CHECK_LT(position, store_->attrs().size()) << "subset position out of range";
    mask |= SubsetMask{1} << position;
  }
  {
    std::lock_guard<std::mutex> lock(subset_mutex_);
    auto it = subset_layers_.find(mask);
    if (it != subset_layers_.end()) {
      LayerEntry* entry = it->second.get();
      if (entry->data == nullptr) {
        // Spilled: reload under the mutex (reloads are rare and must not race
        // with eviction of the freshly restored vector). Decode failure drops
        // the entry and falls through to a rebuild.
        std::vector<AggregateGraph> restored;
        bool ok = false;
        if (std::optional<std::string> bytes = spill_->Get(LayerSpillKey(mask))) {
          std::string decode_error;
          ok = DecodeAggregateGraphs(*bytes, &restored, &decode_error) &&
               restored.size() == graph_->num_times();
        }
        if (ok) {
          entry->data =
              std::make_unique<std::vector<AggregateGraph>>(std::move(restored));
          entry->spilled = false;
          LayerReloadCounter().Increment();
        } else {
          spill_->Remove(LayerSpillKey(mask));
          subset_layers_.erase(it);
          it = subset_layers_.end();
        }
      }
      if (it != subset_layers_.end()) {
        LayerEntry* pinned = it->second.get();
        pinned->pins.fetch_add(1, std::memory_order_acq_rel);
        pinned->last_used.store(lru_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                                std::memory_order_relaxed);
        *served_from_memo = true;
        EvictLayersLocked();
        return LayerRef(pinned);
      }
    }
  }
  // Build outside the lock so first queries for *different* subsets roll up
  // in parallel; a lost race for the same subset discards the duplicate.
  auto layer = std::make_unique<std::vector<AggregateGraph>>();
  layer->reserve(graph_->num_times());
  for (TimeId t = 0; t < graph_->num_times(); ++t) {
    layer->push_back(RollUp(store_->AtTimePoint(t), canonical));
    derivation_stats_.rollups.fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(subset_mutex_);
  auto [it, inserted] = subset_layers_.try_emplace(mask);
  if (inserted) it->second = std::make_unique<LayerEntry>();
  LayerEntry* entry = it->second.get();
  if (inserted) {
    entry->data = std::move(layer);
  } else if (entry->data == nullptr) {
    // Lost the race against an evictor that spilled the winner's copy before
    // we re-locked; our freshly built vector is identical — adopt it.
    entry->data = std::move(layer);
    entry->spilled = false;
  }
  // Insert-once: if another reader won the race, serve its layer (identical
  // contents — the store is frozen under the shared state lock).
  *served_from_memo = !inserted;
  entry->pins.fetch_add(1, std::memory_order_acq_rel);
  entry->last_used.store(lru_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  EvictLayersLocked();
  return LayerRef(entry);
}

std::optional<QueryResult> QueryEngine::TryLoadSpilledResult(std::uint64_t fingerprint,
                                                             const QuerySpec& spec) {
  const std::string key = "result_" + HexFingerprint(fingerprint);
  std::lock_guard<std::mutex> lock(spill_mutex_);
  auto it = spilled_results_.find(fingerprint);
  if (it == spilled_results_.end()) return std::nullopt;
  // Drop the index entry either way: a valid answer gets promoted back into
  // the resident cache by the caller, a stale one must not be probed again.
  SpilledResult entry = std::move(it->second);
  spilled_results_.erase(it);
  if (!graph_->IntervalUnchangedSince(entry.dependencies, entry.generation) ||
      !entry.spec.EquivalentTo(spec)) {
    spill_->Remove(key);
    return std::nullopt;
  }
  std::optional<std::string> bytes = spill_->Get(key);
  spill_->Remove(key);
  if (!bytes.has_value()) return std::nullopt;
  std::vector<AggregateGraph> layers;
  std::string decode_error;
  if (!DecodeAggregateGraphs(*bytes, &layers, &decode_error) || layers.size() != 1) {
    return std::nullopt;
  }
  QueryResult result;
  result.kind = QueryKind::kAggregate;
  result.aggregate = std::move(layers[0]);
  ResultReloadCounter().Increment();
  return result;
}

void QueryEngine::SpillEvictedResult(std::uint64_t fingerprint,
                                     const CachedResult& victim) {
  // Only aggregate answers have a byte encoding; evolution/exploration
  // results (and everything when spilling is off) are dropped as before.
  if (spill_ == nullptr || victim.result.kind != QueryKind::kAggregate) return;
  const std::string key = "result_" + HexFingerprint(fingerprint);
  std::vector<AggregateGraph> one;
  one.push_back(victim.result.aggregate);
  if (!spill_->Put(key, EncodeAggregateGraphs(one))) return;
  std::lock_guard<std::mutex> lock(spill_mutex_);
  spilled_results_[fingerprint] =
      SpilledResult{victim.spec, victim.dependencies, victim.generation};
  ResultSpillCounter().Increment();
}

AggregateGraph QueryEngine::RunMaterialized(const QuerySpec& spec, const QueryPlan& plan) {
  GT_CHECK(store_.has_value() && store_->materialized())
      << "materialized route without a materialized store";
  // The planner degrades stale stores to the direct route, and the shared
  // state lock keeps the store current between planning and here — this is
  // an internal invariant, not a user-reachable crash.
  GT_CHECK_EQ(store_->num_cached_points(), graph_->num_times())
      << "materialized route reached a stale store";
  const IntervalSet interval = spec.EvaluationInterval();
  GT_CHECK(!interval.Empty()) << "evaluation interval must be non-empty";

  // Canonicalize the kept positions: the subset-layer cache is keyed by the
  // attribute *set*; a caller-ordered subset is served from the canonical
  // layer and reordered at the end (D-distributivity again).
  std::vector<std::size_t> canonical(plan.keep_positions);
  std::sort(canonical.begin(), canonical.end());
  const bool full_set = canonical.size() == store_->attrs().size();
  bool layer_memoized = false;
  LayerRef layer_ref;  // keeps the layer pinned across the combine loop
  const std::vector<AggregateGraph>* layer = nullptr;
  if (!full_set) {
    layer_ref = SubsetLayer(canonical, &layer_memoized);
    layer = &*layer_ref;
  }
  if (layer_memoized) {
    // Count only the evaluation points this query actually consumes from the
    // layer — fig11's derivation savings stay exact for partial intervals.
    derivation_stats_.rollup_hits.fetch_add(interval.Count(),
                                            std::memory_order_relaxed);
  }

  AggregateGraph combined;
  {
    GT_SPAN("engine/combine", {{"points", interval.Count()}});
    interval.ForEach([&](TimeId t) {
      const AggregateGraph& point = full_set ? store_->AtTimePoint(t) : (*layer)[t];
      for (const auto& [tuple, weight] : point.nodes()) {
        combined.AddNodeWeight(tuple, weight);
      }
      for (const auto& [pair, weight] : point.edges()) {
        combined.AddEdgeWeight(pair.src, pair.dst, weight);
      }
      derivation_stats_.combines.fetch_add(1, std::memory_order_relaxed);
    });
  }

  const bool reordered =
      !std::equal(canonical.begin(), canonical.end(), plan.keep_positions.begin(),
                  plan.keep_positions.end());
  if (reordered) {
    GT_SPAN("engine/roll-up");
    std::vector<std::size_t> order(plan.keep_positions.size());
    for (std::size_t i = 0; i < plan.keep_positions.size(); ++i) {
      auto it = std::find(canonical.begin(), canonical.end(), plan.keep_positions[i]);
      order[i] = static_cast<std::size_t>(it - canonical.begin());
    }
    combined = RollUp(combined, order);
  }
  if (spec.symmetrize) {
    GT_SPAN("engine/symmetrize");
    combined = SymmetrizeAggregate(combined);
  }
  return combined;
}

}  // namespace graphtempo::engine
