#include "engine/cube.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace graphtempo {

AggregateCube::AggregateCube(const TemporalGraph* graph, std::vector<AttrRef> base_attrs)
    : base_attrs_(std::move(base_attrs)),
      engine_(graph, engine::QueryEngine::Config{/*cache_capacity=*/0}) {
  GT_CHECK_LE(base_attrs_.size(), AttrTuple::kMaxAttrs) << "too many base attributes";
  GT_CHECK(!base_attrs_.empty()) << "materialization needs at least one attribute";
}

void AggregateCube::Materialize() { engine_.EnableMaterialization(base_attrs_); }

void AggregateCube::Refresh() { engine_.Refresh(); }

AggregateGraph AggregateCube::Query(const IntervalSet& interval,
                                    std::span<const std::size_t> keep_positions) {
  GT_CHECK(materialized()) << "call Materialize() first";
  GT_CHECK(!interval.Empty()) << "interval must be non-empty";
  GT_CHECK(!keep_positions.empty()) << "query needs at least one attribute";
  // Validate the subset here (rather than letting plan feasibility fail
  // inside the engine) to keep the cube's historical error messages.
  std::vector<std::size_t> sorted(keep_positions.begin(), keep_positions.end());
  std::sort(sorted.begin(), sorted.end());
  GT_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end())
      << "duplicate subset position";
  GT_CHECK_LT(sorted.back(), base_attrs_.size()) << "subset position out of range";
  ++queries_;

  engine::QuerySpec spec;
  spec.op = engine::TemporalOperatorKind::kUnion;
  spec.t1 = interval;
  spec.t2 = IntervalSet(interval.domain_size());  // single-interval union
  spec.semantics = AggregationSemantics::kAll;
  spec.attrs.reserve(keep_positions.size());
  for (std::size_t position : keep_positions) {
    spec.attrs.push_back(base_attrs_[position]);
  }
  engine::QueryEngine::PlanOptions options;
  options.force_route = engine::PlanRoute::kMaterializedDerivation;
  return engine_.Execute(spec, options);
}

AggregateGraph AggregateCube::Query(const IntervalSet& interval) {
  std::vector<std::size_t> all(base_attrs_.size());
  std::iota(all.begin(), all.end(), 0);
  return Query(interval, all);
}

AggregateCube::Stats AggregateCube::stats() const {
  const engine::QueryEngine::DerivationStats derivation = engine_.derivation_stats();
  Stats stats;
  stats.queries = queries_;
  stats.rollups = derivation.rollups;
  stats.rollup_hits = derivation.rollup_hits;
  stats.combines = derivation.combines;
  return stats;
}

}  // namespace graphtempo
