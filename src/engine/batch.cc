#include "engine/batch.h"

#include <shared_mutex>
#include <utility>

#include "engine/engine.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace graphtempo::engine {

namespace {

obs::Counter& BatchExecCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/batch_exec");
  return c;
}
obs::Counter& BatchQueriesCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/batch_queries");
  return c;
}
obs::Counter& BatchMergedCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/batch_merged");
  return c;
}
obs::Counter& BatchFoldHitCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/batch_fold_hits");
  return c;
}
obs::Counter& BatchFoldMissCounter() {
  static obs::Counter& c = obs::Registry::Instance().GetCounter("engine/batch_fold_misses");
  return c;
}

}  // namespace

const DynamicBitset& FoldCache::Lookup(const PresenceIndex& index,
                                       const DynamicBitset& times, bool union_fold) {
  // Normalize the mask to its trimmed word vector: two bitsets naming the
  // same time points can differ in trailing zero words (e.g. one sized to
  // the fold's interval, one to the whole time domain), and comparing the
  // raw vectors would spuriously miss on the second request.
  std::vector<std::uint64_t> words = times.words();
  while (!words.empty() && words.back() == 0) words.pop_back();
  Key key{&index, union_fold, std::move(words)};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  DynamicBitset fold =
      union_fold ? index.UnionOver(times) : index.IntersectionOver(times);
  auto [inserted, ok] = entries_.emplace(std::move(key), std::move(fold));
  GT_CHECK(ok);
  return inserted->second;
}

const DynamicBitset& FoldCache::UnionFold(const PresenceIndex& index,
                                          const DynamicBitset& times) {
  return Lookup(index, times, /*union_fold=*/true);
}

const DynamicBitset& FoldCache::IntersectionFold(const PresenceIndex& index,
                                                 const DynamicBitset& times) {
  return Lookup(index, times, /*union_fold=*/false);
}

std::vector<QueryResult> QueryEngine::ExecuteBatch(std::span<const BatchItem> items) {
  std::vector<QueryResult> results(items.size());
  if (items.empty()) return results;
  BatchExecCounter().Increment();
  GT_SPAN("engine/batch", {{"items", items.size()}});

  // One reader lock for the whole batch: every item sees the same frozen
  // graph/store, which is what makes merging and fold sharing sound.
  std::shared_lock<std::shared_mutex> reader(state_mutex_);
  FoldCache folds;

  std::vector<std::uint64_t> fingerprints(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    GT_CHECK(items[i].spec != nullptr) << "batch item without a spec";
    fingerprints[i] = items[i].spec->Fingerprint();
  }

  std::vector<bool> done(items.size(), false);
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (done[i]) continue;
    BatchQueriesCounter().Increment();
    const std::uint64_t hits_before = folds.hits();
    const std::uint64_t misses_before = folds.misses();
    {
      // Bind this item's request context so the engine's attribution (route,
      // cache outcome, fingerprint) lands on the right request.
      obs::ScopedRequestContext bind(items[i].ctx);
      if (items[i].ctx != nullptr) {
        items[i].ctx->batched.store(true, std::memory_order_relaxed);
      }
      results[i] = ExecuteLocked(*items[i].spec, PlanOptions{}, &folds);
    }
    if (items[i].ctx != nullptr) {
      items[i].ctx->shared_fold_hits.fetch_add(folds.hits() - hits_before,
                                               std::memory_order_relaxed);
      items[i].ctx->shared_fold_misses.fetch_add(folds.misses() - misses_before,
                                                 std::memory_order_relaxed);
    }
    done[i] = true;

    // Fan the answer out to every equivalent later item. Only cacheable
    // specs merge: an opaque filter makes two syntactically equal specs
    // incomparable (pointer-identity equality notwithstanding, merging
    // filtered specs would skip their bypass accounting).
    if (!items[i].spec->Cacheable()) continue;
    for (std::size_t j = i + 1; j < items.size(); ++j) {
      if (done[j] || fingerprints[j] != fingerprints[i]) continue;
      if (!items[j].spec->Cacheable() ||
          !items[j].spec->EquivalentTo(*items[i].spec)) {
        continue;
      }
      results[j] = results[i];
      done[j] = true;
      BatchQueriesCounter().Increment();
      BatchMergedCounter().Increment();
      if (items[j].ctx != nullptr) {
        items[j].ctx->batched.store(true, std::memory_order_relaxed);
        items[j].ctx->fingerprint.store(fingerprints[j], std::memory_order_relaxed);
        items[j].ctx->cache.store("hit", std::memory_order_relaxed);
        if (items[i].ctx != nullptr) {
          // The merged answer came from item i's execution: its route and
          // planner attribution are this item's too (the slow-query record
          // requires both to be non-empty).
          items[j].ctx->route.store(
              items[i].ctx->route.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
          items[j].ctx->planner.store(
              items[i].ctx->planner.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
        }
      }
    }
  }

  // Registry totals once per batch (cheaper than per-fold increments and the
  // numbers the CI gate asserts on).
  BatchFoldHitCounter().Add(folds.hits());
  BatchFoldMissCounter().Add(folds.misses());
  return results;
}

}  // namespace graphtempo::engine
