#include "engine/cost.h"

namespace graphtempo::engine {

const char* PlannerModeName(PlannerMode mode) {
  switch (mode) {
    case PlannerMode::kRule: return "rule";
    case PlannerMode::kCost: return "cost";
  }
  return "?";
}

bool ParsePlannerMode(const std::string& text, PlannerMode* mode, std::string* error) {
  if (text == "rule") {
    *mode = PlannerMode::kRule;
    return true;
  }
  if (text == "cost") {
    *mode = PlannerMode::kCost;
    return true;
  }
  if (error != nullptr) {
    *error = "unknown planner '" + text + "' (expected rule or cost)";
  }
  return false;
}

const CostModel& CostModel::Default() {
  static const CostModel model;
  return model;
}

CostEstimate EstimateCost(const CostInputs& inputs, const CostModel& model) {
  CostEstimate estimate;
  const double appearances =
      static_cast<double>(inputs.node_appearances + inputs.edge_appearances);
  estimate.direct_us = model.direct_setup_us + appearances * model.direct_per_appearance_us;

  if (!inputs.materialized_available) return estimate;

  const double points = static_cast<double>(inputs.eval_points);
  const double groups = static_cast<double>(inputs.store_groups);
  double materialized = model.materialized_setup_us +
                        points * (model.combine_per_point_us +
                                  groups * model.combine_per_group_us);
  if (inputs.needs_rollup && !inputs.layer_memoized) {
    // The losing case of the fixed rule: a cold subset layer is built over
    // *every* store point before the first point can be combined.
    materialized += static_cast<double>(inputs.total_points) *
                    (model.rollup_per_point_us + groups * model.rollup_per_group_us);
  }
  estimate.materialized_us = materialized;
  return estimate;
}

}  // namespace graphtempo::engine
