#ifndef GRAPHTEMPO_ENGINE_QUERY_SPEC_H_
#define GRAPHTEMPO_ENGINE_QUERY_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/aggregation.h"
#include "core/exploration.h"
#include "core/interval.h"
#include "core/operators.h"
#include "core/temporal_graph.h"

/// \file
/// `QuerySpec`: the declarative intermediate representation of one GraphTempo
/// aggregation query (docs/ENGINE.md).
///
/// Every entry point — CLI commands, the figure benches, the OLAP cube —
/// ultimately asks the same question: "apply a temporal operator to (T₁, T₂),
/// aggregate the resulting view over some attributes under DIST or ALL, maybe
/// filter / symmetrize". `QuerySpec` captures exactly that tuple, so one
/// planner can decide *how* to answer it (direct kernels vs Section 4.3
/// derivations) and one executor can cache the answers.
///
/// The spec carries a canonical 64-bit fingerprint — a stable FNV-1a hash over
/// its dictionary-encoded fields — used as the executor's result-cache key.
/// Two specs that fingerprint equally describe the same query on the same
/// time domain (modulo the ignored-`t2`-for-project normalization below);
/// collisions are guarded by a full equality check on the cached spec.

namespace graphtempo::engine {

/// Which of the Section 2.1 temporal operators produces the aggregated view.
enum class TemporalOperatorKind : std::uint8_t {
  kProject,        ///< Def 2.2 — entities existing throughout T₁ (t2 ignored)
  kUnion,          ///< Def 2.3 — entities existing in T₁ or T₂
  kIntersection,   ///< Def 2.4 — entities existing in T₁ and T₂
  kDifference,     ///< Def 2.5 — edges in T₁ at no time of T₂ (t1 − t2)
};

/// "project" / "union" / "intersection" / "difference".
const char* TemporalOperatorName(TemporalOperatorKind op);

/// Which operator *family* the spec describes. Historically only the four
/// Section 2.1 aggregation operators went through the engine; evolution
/// (Def 2.7 / Fig 4b) and exploration (Section 3) called core directly and
/// so bypassed planning, caching and batching. They are now spec kinds:
/// one planner routes them, one executor caches them.
enum class QueryKind : std::uint8_t {
  kAggregate,  ///< op × (t1, t2) × attrs × semantics — the original family
  kEvolution,  ///< AggregateEvolution(t1=old, t2=new, attrs)
  kExplore,    ///< Explore(explore) — t1 must be the full time domain
};

/// "aggregate" / "evolution" / "explore".
const char* QueryKindName(QueryKind kind);

/// The IR of one aggregation query. Plain data; copyable; graph-independent
/// except that `t1`/`t2` must match the target graph's time-domain size and
/// `attrs` must reference its attribute tables.
struct QuerySpec {
  QueryKind kind = QueryKind::kAggregate;

  TemporalOperatorKind op = TemporalOperatorKind::kProject;
  IntervalSet t1;
  /// Ignored for kProject. Must share the graph's time domain otherwise; may
  /// be empty for kUnion, which degenerates to the single-interval union over
  /// `t1` (the shape `AggregateCube::Query` issues).
  IntervalSet t2;

  std::vector<AttrRef> attrs;
  AggregationSemantics semantics = AggregationSemantics::kDistinct;
  GroupingStrategy grouping = GroupingStrategy::kAuto;

  /// Optional appearance filter. A non-null filter is an opaque function: the
  /// planner refuses derivation routes and the executor bypasses the result
  /// cache for such specs.
  const NodeTimeFilter* filter = nullptr;

  /// Post-aggregation mirror-edge merge (SymmetrizeAggregate).
  bool symmetrize = false;

  /// kExplore only: the full exploration request (event, extension
  /// semantics, reference end, entity selector, threshold k). For explore
  /// specs `t1` must be the graph's full time domain (the sweep reads every
  /// point) and `op`/`semantics`/`grouping`/`symmetrize` are ignored;
  /// `attrs` mirrors `explore.selector.attrs` for uniform rendering.
  ExplorationSpec explore;

  /// A spec is cacheable iff its result is a pure function of the fields the
  /// fingerprint covers — i.e. iff it carries no opaque filter.
  bool Cacheable() const { return filter == nullptr; }

  /// The time points the operator result is defined on (Defs 2.2–2.5):
  /// T₁ ∪ T₂ for union/intersection, T₁ for project and difference. For
  /// evolution both intervals participate; for explore it is `t1` (bound to
  /// the full domain).
  IntervalSet EvaluationInterval() const;

  /// The time points the *result data* depends on: T₁ ∪ T₂ for every
  /// operator consuming T₂ (a difference's answer changes when T₂'s data
  /// does, even though it is evaluated on T₁), T₁ alone for project. This is
  /// the validity interval of a cached result — if no dependency point was
  /// mutated since the result was computed, it is still exact. Evolution
  /// depends on both intervals; explore on the full domain (= `t1`).
  IntervalSet DependencyInterval() const;

  /// Stable 64-bit FNV-1a over (op, semantics, symmetrize, attrs, t1, t2)
  /// with t2 normalized to empty for kProject. Independent of process,
  /// pointer values and map iteration order. `grouping` is deliberately
  /// excluded: it is an execution hint — dense and hash grouping are
  /// bit-identical (pinned by the determinism suite) — so specs differing
  /// only in the hint share one cache entry. kAggregate specs hash exactly
  /// the historical byte sequence (cached fingerprints survive this
  /// refactor); evolution and explore specs prepend a kind tag so the
  /// families can never collide with aggregates by construction.
  std::uint64_t Fingerprint() const;

  /// Structural equality under the same normalization as `Fingerprint` (the
  /// executor's collision guard). Filters compare by pointer identity.
  bool EquivalentTo(const QuerySpec& other) const;

  /// One-line rendering, e.g.
  /// "union t1={0..3} t2={4} attrs=[gender,publications] semantics=ALL".
  std::string ToString(const TemporalGraph& graph) const;
};

/// Runs the spec's temporal operator on `graph` — the shared "build the view"
/// step of every plan route (and of callers, like `measure`, that aggregate
/// something other than COUNT over the same views). GT_CHECKs interval
/// domains like the underlying operators do.
GraphView BuildOperatorView(const TemporalGraph& graph, const QuerySpec& spec);

/// Same, but routes the presence folds through `folds` — the seam the batch
/// executor uses to share common interval folds across a batch of specs
/// (engine/batch.h). Bit-identical to the plain overload by construction:
/// the classic operators delegate to the provider-taking ones.
GraphView BuildOperatorView(const TemporalGraph& graph, const QuerySpec& spec,
                            PresenceFoldProvider& folds);

}  // namespace graphtempo::engine

#endif  // GRAPHTEMPO_ENGINE_QUERY_SPEC_H_
