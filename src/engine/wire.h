#ifndef GRAPHTEMPO_ENGINE_WIRE_H_
#define GRAPHTEMPO_ENGINE_WIRE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/aggregation.h"
#include "core/temporal_graph.h"
#include "engine/engine.h"
#include "engine/plan.h"
#include "engine/query_spec.h"
#include "util/json.h"

/// \file
/// The wire format of the query service (docs/SERVER.md): JSON in →
/// `QuerySpec` out, and `AggregateGraph` / `QueryPlan` / engine counters back
/// to JSON. The CLI shares the time-point / interval parsing below, so
/// `--t1 2004..2007` on the command line and `"t1": "2004..2007"` on the wire
/// bind identically — the server differential suite pins wire-served answers
/// bit-identical to direct engine calls.
///
/// A query request is one JSON object:
///
/// ```json
/// {
///   "op": "union",                  // union|intersection|difference|project
///   "t1": "2004..2007",             // label/index, or "a..b" range (required)
///   "t2": "2008",                   // optional; defaults like the CLI's --t2
///   "attrs": ["gender"],            // required, 1..kMaxAttrs names
///   "semantics": "dist",            // dist|all            (default dist)
///   "grouping": "auto",             // auto|dense|hash     (default auto)
///   "symmetrize": false,            // default false
///   "explain": false,               // plan only, no execution
///   "top": 32                       // cap result rows     (default: all)
/// }
/// ```
///
/// A result is `{"fingerprint","route","interval","semantics","node_count",
/// "edge_count","nodes":[{"tuple":[...],"weight":n}...],"edges":[...]}` with
/// rows sorted by weight descending, then tuple codes ascending — fully
/// deterministic, so two servers answering the same spec emit identical
/// bytes.
///
/// Beyond the aggregate family, a request may carry `"kind"`:
///
/// ```json
/// {"kind": "evolution", "t1": "2004..2007", "t2": "2008",
///  "attrs": ["gender"]}
/// {"kind": "explore", "event": "growth",        // stability|growth|shrinkage
///  "extension": "union",                        // union|intersection
///  "reference": "new",                          // old|new
///  "select": "edges",                           // nodes|edges
///  "attrs": ["gender"], "k": 100}
/// ```
///
/// Evolution responses carry `"kind":"evolution"` and per-row
/// stability/growth/shrinkage weights; explore responses carry
/// `"kind":"explore"` and the qualifying interval pairs. Aggregate responses
/// keep their historical shape unchanged.

namespace graphtempo::engine::wire {

/// "2005" / "5" → TimeId; label lookup first, index fallback. On failure sets
/// `*error` ("unknown time point '…'") and returns nullopt.
std::optional<TimeId> ParseTimePoint(const TemporalGraph& graph, const std::string& text,
                                     std::string* error);

/// "a..b" or single point → IntervalSet. Stops at the *first* bad endpoint:
/// one malformed range yields exactly one diagnostic in `*error`, never two.
std::optional<IntervalSet> ParseInterval(const TemporalGraph& graph,
                                         const std::string& text, std::string* error);

/// Options the request carries beyond the spec itself.
struct RequestOptions {
  bool explain = false;     ///< plan only; the response carries no rows
  std::size_t top = 0;      ///< result row cap per section; 0 = unlimited
};

/// Binds one parsed request object to a `QuerySpec` against `graph`'s time
/// domain and attribute tables. On failure sets `*error` and returns nullopt.
/// The binding matches the CLI flag-for-field: omitted `t2` falls back to
/// `t1` for binary operators, `semantics`/`grouping`/`symmetrize` default
/// like their flags.
std::optional<QuerySpec> BindQuerySpec(const TemporalGraph& graph,
                                       const json::Value& request,
                                       RequestOptions* options, std::string* error);

/// Serializes an executed aggregate, deterministically ordered. `top` caps
/// the node and edge row lists (0 = all); the `*_count` fields always report
/// the full sizes.
std::string ResultToJson(const TemporalGraph& graph, const QuerySpec& spec,
                         const QueryPlan& plan, const AggregateGraph& result,
                         std::size_t top);

/// Serializes an executed evolution aggregate: per-tuple (nodes) and
/// per-tuple-pair (edges) stability/growth/shrinkage weights, ordered by
/// total weight descending then tuple codes ascending.
std::string EvolutionToJson(const TemporalGraph& graph, const QuerySpec& spec,
                            const QueryPlan& plan, const EvolutionAggregate& result,
                            std::size_t top);

/// Serializes an exploration result: qualifying interval pairs (already
/// ordered by reference time point) plus the evaluation count.
std::string ExplorationToJson(const TemporalGraph& graph, const QuerySpec& spec,
                              const QueryPlan& plan, const ExplorationResult& result,
                              std::size_t top);

/// Kind-dispatching serialization of a `QueryResult` — what the server's
/// query handler emits. Aggregate results keep the historical byte format.
std::string QueryResultToJson(const TemporalGraph& graph, const QuerySpec& spec,
                              const QueryPlan& plan, const QueryResult& result,
                              std::size_t top);

/// Serializes a plan (the `--explain` answer): fingerprint, route, planner,
/// both cost estimates, and the step list as rendered text lines. Round-trips
/// every field `QueryPlan::Explain` renders, cost-routed plans included.
std::string PlanToJson(const QueryPlan& plan);

}  // namespace graphtempo::engine::wire

#endif  // GRAPHTEMPO_ENGINE_WIRE_H_
