#ifndef GRAPHTEMPO_ENGINE_ENGINE_H_
#define GRAPHTEMPO_ENGINE_ENGINE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/materialization.h"
#include "engine/plan.h"
#include "engine/query_spec.h"
#include "storage/spill.h"

/// \file
/// `QueryEngine`: the unified planner + executor every entry point funnels
/// through (docs/ENGINE.md).
///
/// One engine wraps one `TemporalGraph` and answers `QuerySpec`s — aggregate
/// specs, evolution specs and exploration specs alike. For each spec the
/// *planner* picks a route:
///
///   * **direct** — run the temporal-operator bitset kernels and Algorithm 2
///     (or, for evolution/explore specs, the corresponding core sweep); the
///     plan records the dense-vs-hash grouping resolution (`ResolveGrouping`)
///     so `--explain` shows which kernel path fires;
///   * **materialized** — when `EnableMaterialization` built per-time-point
///     ALL aggregates and the spec is Section 4.3-derivable (T-distributive
///     union under ALL, or a single-point project/union where DIST ≡ ALL, on
///     an attribute subset of the base list), answer by weight summation over
///     the store plus a D-distributive `RollUp` — never touching the graph.
///     A store left stale by `AppendTimePoint` without `Refresh()` degrades
///     gracefully: the planner falls back to the direct route and bumps
///     `engine/stale_fallback`.
///
/// *Which* route wins for a derivable spec is decided by the configured
/// planner mode (engine/cost.h): `kRule` always derives (the historical
/// fixed rule), `kCost` prices both routes from interval length × live-entity
/// counts and picks the cheaper — the plan carries both estimates either way,
/// so `Explain()` always shows the counterfactual.
///
/// The *executor* runs the plan under GT_SPAN instrumentation (one span per
/// plan step, mirroring `QueryPlan::Explain`) and memoizes:
///
///   * per-(attribute-subset, time-point) roll-up layers, exactly the
///     Section 4.3 cube lattice (`DerivationStats` counts the savings);
///   * whole results in a bounded sloppy-LRU cache keyed by
///     `QuerySpec::Fingerprint` with a full `EquivalentTo` collision guard.
///     The cache is sharded by fingerprint so concurrent hits on different
///     shards never contend on one map mutex. Each entry is stamped with the
///     graph's `mutation_generation()` and the spec's `DependencyInterval()`;
///     an entry is served only while none of its dependency time points
///     mutated after the stamp (`TemporalGraph::IntervalUnchangedSince`).
///     Because `AppendTimePoint` stamps only the *new* point, append-only
///     ingestion leaves every old-interval answer valid — entries are evicted
///     per-entry, never wholesale. Specs carrying an opaque filter bypass the
///     cache entirely.
///
/// Batches of concurrent specs can be answered together via `ExecuteBatch`
/// (engine/batch.h): equivalent specs within the batch are merged, and the
/// remaining specs share one presence-fold cache so common interval folds are
/// computed once (docs/ENGINE.md §Batch execution).
///
/// ## Thread safety: any number of readers, one writer
///
/// `Execute`, `ExecuteResult`, `ExecuteBatch`, `Plan` and `Derivable` are
/// safe to call concurrently from any number of threads. Readers hold a
/// shared (reader) lock for the duration of a query; a cache hit takes only
/// that shared lock plus one shard's shared lock and a relaxed-atomic
/// "sloppy LRU" touch — no exclusive lock ever sits on the hit path. Stats
/// are atomics; subset-layer memoization is insert-once under its own mutex
/// and hands out stable storage.
///
/// Writers — `EnableMaterialization`, `Refresh`, `ClearCache` — take the
/// exclusive side of the same lock and therefore drain in-flight readers
/// first. Mutating the *wrapped graph* while readers may be executing must
/// happen under `AcquireWriterLock()`:
///
/// ```cpp
/// {
///   auto writer = engine.AcquireWriterLock();
///   graph.AppendTimePoint("2021");
///   graph.SetEdgePresent(e, t);
/// }                  // readers resume; a stale store falls back gracefully
/// engine.Refresh();  // takes the writer lock itself — do not hold it here
/// ```
///
/// Engine methods must not be called while holding the writer lock (the lock
/// is not reentrant). Single-threaded callers may keep mutating the graph
/// directly, as every test and CLI invocation does.

namespace graphtempo::obs {
class RequestContext;  // obs/context.h
}  // namespace graphtempo::obs

namespace graphtempo::engine {

class FoldCache;  // engine/batch.h — shared presence-fold memo for batches

/// The result of one executed spec: exactly one member is populated,
/// selected by `kind` (which mirrors the spec's kind).
struct QueryResult {
  QueryKind kind = QueryKind::kAggregate;
  AggregateGraph aggregate;        ///< kind == kAggregate
  EvolutionAggregate evolution;    ///< kind == kEvolution
  ExplorationResult exploration;   ///< kind == kExplore
};

class QueryEngine {
 public:
  struct Config {
    /// Result-cache entries kept (sloppy LRU). 0 disables result caching —
    /// the derivation layers still memoize.
    std::size_t cache_capacity = 64;

    /// Route-selection policy for derivable specs (engine/cost.h). The
    /// library default stays `kRule` — the historical always-derive rule —
    /// so embedding code sees zero behaviour change; the CLI and server
    /// default to `kCost` and expose `--planner rule` as the escape hatch.
    PlannerMode planner = PlannerMode::kRule;

    /// Spill directory for the cold tier (docs/STORAGE.md §Spill tier).
    /// Empty disables spilling: evicted roll-up layers and result-cache
    /// entries are simply dropped, as before.
    std::string spill_dir;

    /// Maximum memoized roll-up layers kept *resident*; beyond it the coldest
    /// unpinned layer is serialized to the spill directory (or dropped when
    /// spilling is disabled). 0 = unlimited (the historical behaviour).
    std::size_t max_resident_layers = 0;
  };

  /// Does not take ownership of `graph`; `graph` must outlive the engine.
  explicit QueryEngine(const TemporalGraph* graph) : QueryEngine(graph, Config{}) {}
  QueryEngine(const TemporalGraph* graph, Config config);

  const TemporalGraph& graph() const { return *graph_; }
  PlannerMode planner_mode() const { return config_.planner; }

  // --- Materialization (Section 4.3 base layer) ---

  /// Builds the per-time-point ALL-aggregate store over `attrs` (at most
  /// AttrTuple::kMaxAttrs), unlocking the materialized route for derivable
  /// specs. Idempotent for the same attribute list; GT_CHECKs against
  /// re-enabling with a different one. Exclusive writer: drains readers.
  void EnableMaterialization(std::vector<AttrRef> attrs);

  bool materialization_enabled() const;

  /// Base attribute list of the store; GT_CHECKs materialization_enabled().
  const std::vector<AttrRef>& materialized_attrs() const;

  /// Incremental maintenance after `TemporalGraph::AppendTimePoint`: extends
  /// the base store and every memoized subset layer to the new time points,
  /// and sweeps result-cache entries whose dependency intervals were touched
  /// (untouched entries survive — append-only means old snapshots are
  /// immutable). No-op when up to date or when materialization is disabled.
  /// Exclusive writer: drains readers.
  void Refresh();

  /// Exclusive access for mutating the wrapped graph while concurrent
  /// readers may be executing: blocks until in-flight `Execute`/`Plan` calls
  /// drain and holds off new ones until released. Do not call engine methods
  /// while holding it (the lock is not reentrant) — in particular, release
  /// it *before* `Refresh()`; the planner's stale-store fallback keeps the
  /// window between the two safe.
  [[nodiscard]] std::unique_lock<std::shared_mutex> AcquireWriterLock() const;

  // --- Planning ---

  struct PlanOptions {
    /// Force the route instead of letting the planner choose — the
    /// differential suite uses this to pin route equivalence. Forcing
    /// kMaterializedDerivation GT_CHECKs that the spec is derivable (a
    /// *stale* store still degrades to the direct route, see
    /// QueryPlan::stale_fallback).
    std::optional<PlanRoute> force_route;
  };

  /// Plans without executing — what the CLI's `--explain` prints.
  QueryPlan Plan(const QuerySpec& spec) const { return Plan(spec, PlanOptions{}); }
  QueryPlan Plan(const QuerySpec& spec, const PlanOptions& options) const;

  /// True when the planner may answer `spec` from the materialization store.
  bool Derivable(const QuerySpec& spec) const;

  // --- Execution ---

  /// Aggregate-spec convenience: GT_CHECKs `spec.kind == kAggregate`.
  AggregateGraph Execute(const QuerySpec& spec) { return Execute(spec, PlanOptions{}); }
  AggregateGraph Execute(const QuerySpec& spec, const PlanOptions& options);

  /// Kind-generic execution (evolution and exploration specs included).
  QueryResult ExecuteResult(const QuerySpec& spec) {
    return ExecuteResult(spec, PlanOptions{});
  }
  QueryResult ExecuteResult(const QuerySpec& spec, const PlanOptions& options);

  /// One query of a batch: the spec plus the request context to attribute
  /// into while it runs (nullptr for none). See engine/batch.h.
  struct BatchItem {
    const QuerySpec* spec = nullptr;
    obs::RequestContext* ctx = nullptr;
  };

  /// Executes `items` as one batch under a single reader lock: specs that
  /// are pairwise-equivalent are computed once and fanned out
  /// (`engine/batch_merged`), and the remaining executions share one
  /// presence-fold cache (`engine/batch_fold_hits`/`_misses`). Results are
  /// byte-identical to executing each item alone — pinned by the batch
  /// differential suite. Defined in engine/batch.cc.
  std::vector<QueryResult> ExecuteBatch(std::span<const BatchItem> items);

  /// Drops every cached result (stats keep counting). Forced-route
  /// experiments call this between runs so each route really executes.
  /// Exclusive writer: drains readers.
  void ClearCache();

  // --- Observability ---

  /// Result-cache behaviour, read as one relaxed snapshot of the atomic
  /// counters. Mirrored into the obs registry as `engine/cache_hit` etc. so
  /// `--perf` and the benches see them.
  struct CacheStats {
    std::uint64_t hits = 0;           ///< served from cache
    std::uint64_t misses = 0;         ///< computed (cacheable specs only)
    std::uint64_t bypasses = 0;       ///< uncacheable (filtered) executions
    std::uint64_t evictions = 0;      ///< capacity (sloppy-LRU) evictions
    std::uint64_t invalidations = 0;  ///< per-entry stale evictions on mutation
  };

  /// Section 4.3 derivation work, cube-compatible semantics: `rollups` /
  /// `rollup_hits` count per-time-point subset roll-ups computed / served
  /// from a memoized layer (hits count only the evaluation points the query
  /// actually consumed); `combines` counts per-time-point aggregates
  /// weight-summed into union results.
  struct DerivationStats {
    std::size_t rollups = 0;
    std::size_t rollup_hits = 0;
    std::size_t combines = 0;
  };

  CacheStats cache_stats() const;
  DerivationStats derivation_stats() const;

 private:
  /// Bitmask over base attribute positions; position i → bit i.
  using SubsetMask = std::uint32_t;

  /// One memoized roll-up layer plus the bookkeeping the spill tier needs.
  /// `data` is null while the layer lives in the spill directory; `pins`
  /// counts readers currently consuming the vector (pinned layers are never
  /// evicted). Pins are acquired under `subset_mutex_` and released with a
  /// plain atomic decrement, so an evictor that observes pins == 0 under the
  /// mutex knows no reader holds or can acquire the layer.
  struct LayerEntry {
    std::unique_ptr<std::vector<AggregateGraph>> data;
    std::atomic<std::uint64_t> last_used{0};
    std::atomic<std::uint32_t> pins{0};
    bool spilled = false;  ///< a spill file exists for this layer
  };

  /// RAII pin on a resident layer: keeps the vector alive (un-evictable)
  /// while a query iterates it.
  class LayerRef {
   public:
    LayerRef() = default;
    explicit LayerRef(LayerEntry* entry) : entry_(entry) {}
    LayerRef(LayerRef&& other) noexcept : entry_(std::exchange(other.entry_, nullptr)) {}
    LayerRef& operator=(LayerRef&& other) noexcept {
      if (this != &other) {
        Release();
        entry_ = std::exchange(other.entry_, nullptr);
      }
      return *this;
    }
    LayerRef(const LayerRef&) = delete;
    LayerRef& operator=(const LayerRef&) = delete;
    ~LayerRef() { Release(); }

    const std::vector<AggregateGraph>& operator*() const { return *entry_->data; }

   private:
    void Release() {
      if (entry_ != nullptr) entry_->pins.fetch_sub(1, std::memory_order_acq_rel);
    }
    LayerEntry* entry_ = nullptr;
  };

  /// One cached result plus everything needed to decide, per entry, whether
  /// it is still valid and when it was last useful. Heap-allocated so the
  /// address is stable regardless of map rehashing; `last_used` is atomic so
  /// the hit path can touch it under a shared lock.
  struct CachedResult {
    CachedResult(QuerySpec spec_in, QueryResult result_in,
                 IntervalSet dependencies_in, std::uint64_t generation_in,
                 std::uint64_t last_used_in)
        : spec(std::move(spec_in)),
          result(std::move(result_in)),
          dependencies(std::move(dependencies_in)),
          generation(generation_in),
          last_used(last_used_in) {}

    QuerySpec spec;                ///< collision guard (EquivalentTo)
    QueryResult result;
    IntervalSet dependencies;      ///< spec.DependencyInterval() at fill time
    std::uint64_t generation = 0;  ///< graph generation the result reflects
    std::atomic<std::uint64_t> last_used{0};  ///< sloppy-LRU clock stamp
  };

  /// The result cache is split into shards keyed by fingerprint so the hit
  /// path of concurrent readers locks only its own shard. Sloppy-LRU
  /// semantics are global: capacity counts entries across all shards and the
  /// eviction victim is the globally smallest stamp (all shard locks taken
  /// in index order — the only multi-shard lock site).
  static constexpr std::size_t kCacheShards = 8;
  struct CacheShard {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::uint64_t, std::unique_ptr<CachedResult>> entries;
  };
  static std::size_t ShardIndex(std::uint64_t fingerprint) {
    return (fingerprint ^ (fingerprint >> 32)) % kCacheShards;
  }

  /// Maps `spec.attrs` into positions of the base attribute list (caller
  /// order). Returns false — leaving `keep` untouched — when any attribute is
  /// not in the base list or appears twice.
  bool MapToBasePositions(const QuerySpec& spec, std::vector<std::size_t>* keep) const;

  /// `Plan`/`Derivable` bodies; callers hold `state_mutex_` (shared or
  /// exclusive).
  QueryPlan PlanLocked(const QuerySpec& spec, const PlanOptions& options) const;
  bool DerivableLocked(const QuerySpec& spec) const;

  /// Cost-model inputs for an aggregate spec (cheap: popcount sums over the
  /// evaluation interval via PresenceIndex). `derivable` and `keep` are the
  /// planner's derivability verdict + base positions.
  CostInputs CostInputsLocked(const QuerySpec& spec, bool derivable,
                              std::span<const std::size_t> keep) const;

  /// True when the store exists but `AppendTimePoint` outran `Refresh()`.
  bool StoreStale() const;

  /// The memoized per-time-point roll-up layer for an ascending,
  /// duplicate-free strict subset of base positions, pinned for the caller's
  /// lifetime. Insert-once under `subset_mutex_`; a spilled layer is
  /// reloaded from the spill directory instead of recomputed.
  /// `*served_from_memo` reports whether the layer already existed (resident
  /// or spilled).
  LayerRef SubsetLayer(std::span<const std::size_t> canonical, bool* served_from_memo);

  /// Spill-file key for a subset layer.
  static std::string LayerSpillKey(SubsetMask mask);

  /// While over `max_resident_layers`, serializes the coldest unpinned
  /// resident layer out to the spill tier (or drops it when spilling is
  /// disabled). Caller holds `subset_mutex_`.
  void EvictLayersLocked();

  /// Whether the layer for `mask` is already memoized (cost-model probe;
  /// const: takes `subset_mutex_` only for the map lookup).
  bool SubsetLayerMemoized(SubsetMask mask) const;

  /// True while no dependency time point of `entry` mutated past its stamp.
  bool EntryValid(const CachedResult& entry) const;

  /// Inserts (or overwrites) the result computed for `spec` at graph
  /// `generation`, sweeping genuinely stale entries and evicting the least
  /// recently used beyond capacity. Takes shard locks exclusively.
  void InsertResult(const QuerySpec& spec, const QueryPlan& plan,
                    const QueryResult& result, std::uint64_t generation);

  /// The whole execute pipeline minus the reader lock: plan, cache probe,
  /// run, fill. Callers hold `state_mutex_` shared. `folds` (optional)
  /// routes direct-route operator folds through a batch-shared cache.
  QueryResult ExecuteLocked(const QuerySpec& spec, const PlanOptions& options,
                            FoldCache* folds);

  QueryResult Run(const QuerySpec& spec, const QueryPlan& plan, FoldCache* folds);
  AggregateGraph RunDirect(const QuerySpec& spec, const QueryPlan& plan,
                           FoldCache* folds);
  AggregateGraph RunMaterialized(const QuerySpec& spec, const QueryPlan& plan);

  const TemporalGraph* graph_;
  Config config_;

  /// Readers/writer brokerage for everything reachable from a query: the
  /// wrapped graph, `store_` and the subset-layer *contents*. Readers
  /// (Execute/Plan/Derivable) take it shared; EnableMaterialization, Refresh
  /// and AcquireWriterLock take it exclusive.
  mutable std::shared_mutex state_mutex_;

  /// Guards subset-layer insertion (insert-once; lookups also lock — the map
  /// itself is small and the critical section is a hash probe). Mutable so
  /// the const planner can probe memoization for the cost model.
  mutable std::mutex subset_mutex_;

  std::optional<MaterializationStore> store_;
  std::unordered_map<SubsetMask, std::unique_ptr<LayerEntry>> subset_layers_;

  /// The cold tier (null when `Config::spill_dir` is empty).
  std::unique_ptr<storage::SpillDirectory> spill_;

  /// Index of result-cache entries that were evicted to the spill directory:
  /// everything needed to validate a spilled answer without reading its
  /// bytes. Guarded by `spill_mutex_` (ordered after the shard locks; never
  /// held while taking any other engine lock).
  struct SpilledResult {
    QuerySpec spec;            ///< collision guard, as in CachedResult
    IntervalSet dependencies;  ///< validity interval at spill time
    std::uint64_t generation = 0;
  };
  mutable std::mutex spill_mutex_;
  std::unordered_map<std::uint64_t, SpilledResult> spilled_results_;

  /// Probes the spilled-result index for `fingerprint` and, when the entry
  /// is still valid for `spec`, reloads + decodes it (dropping the spill
  /// entry either way: valid entries get promoted back into the resident
  /// cache by the caller, stale ones must not be probed again).
  std::optional<QueryResult> TryLoadSpilledResult(std::uint64_t fingerprint,
                                                  const QuerySpec& spec);

  /// Moves an evicted aggregate result into the spill tier (no-op for other
  /// result kinds or when spilling is disabled).
  void SpillEvictedResult(std::uint64_t fingerprint, const CachedResult& victim);

  /// Fingerprint → cached result, sharded by `ShardIndex`. unique_ptr keeps
  /// entry addresses stable across rehash so the hit path can read an entry
  /// while other readers probe the same shard. Shard locks are ordered after
  /// `state_mutex_` (never acquire `state_mutex_` while holding one) and by
  /// ascending shard index among themselves.
  std::array<CacheShard, kCacheShards> cache_shards_;

  /// Entries across all shards (capacity accounting without a global lock).
  std::atomic<std::size_t> cache_size_{0};

  /// Logical clock behind the sloppy LRU: hits stamp their entry with the
  /// next tick (relaxed); eviction scans for the smallest stamp. Exactness
  /// under concurrent hits is deliberately not guaranteed — only that
  /// recently-served entries outrank idle ones.
  std::atomic<std::uint64_t> lru_clock_{0};

  struct AtomicCacheStats {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> bypasses{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> invalidations{0};
  };
  struct AtomicDerivationStats {
    std::atomic<std::uint64_t> rollups{0};
    std::atomic<std::uint64_t> rollup_hits{0};
    std::atomic<std::uint64_t> combines{0};
  };

  AtomicCacheStats cache_stats_;
  AtomicDerivationStats derivation_stats_;
};

}  // namespace graphtempo::engine

#endif  // GRAPHTEMPO_ENGINE_ENGINE_H_
