#ifndef GRAPHTEMPO_ENGINE_ENGINE_H_
#define GRAPHTEMPO_ENGINE_ENGINE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/materialization.h"
#include "engine/plan.h"
#include "engine/query_spec.h"

/// \file
/// `QueryEngine`: the unified planner + executor every entry point funnels
/// through (docs/ENGINE.md).
///
/// One engine wraps one `TemporalGraph` and answers `QuerySpec`s. For each
/// spec the *planner* picks a route:
///
///   * **direct** — run the temporal-operator bitset kernels and Algorithm 2;
///     the plan records the dense-vs-hash grouping resolution
///     (`ResolveGrouping`) so `--explain` shows which kernel path fires;
///   * **materialized** — when `EnableMaterialization` built per-time-point
///     ALL aggregates and the spec is Section 4.3-derivable (T-distributive
///     union under ALL, or a single-point project/union where DIST ≡ ALL, on
///     an attribute subset of the base list), answer by weight summation over
///     the store plus a D-distributive `RollUp` — never touching the graph.
///
/// The *executor* runs the plan under GT_SPAN instrumentation (one span per
/// plan step, mirroring `QueryPlan::Explain`) and memoizes:
///
///   * per-(attribute-subset, time-point) roll-up layers, exactly the
///     Section 4.3 cube lattice (`DerivationStats` counts the savings);
///   * whole results in a bounded LRU cache keyed by `QuerySpec::Fingerprint`
///     with a full `EquivalentTo` collision guard. The cache is invalidated
///     wholesale whenever the graph's `mutation_generation()` moves, so
///     `AppendTimePoint` + `Refresh` can never serve a stale answer. Specs
///     carrying an opaque filter bypass the cache entirely.
///
/// Thread-safety: an engine is a single-writer object like the graph it
/// wraps. The *internals* of one query fan out on the shared pool; concurrent
/// `Execute` calls from different threads are not supported.

namespace graphtempo::engine {

class QueryEngine {
 public:
  struct Config {
    /// Result-cache entries kept (LRU). 0 disables result caching — the
    /// derivation layers still memoize.
    std::size_t cache_capacity = 64;
  };

  /// Does not take ownership of `graph`; `graph` must outlive the engine.
  explicit QueryEngine(const TemporalGraph* graph) : QueryEngine(graph, Config{}) {}
  QueryEngine(const TemporalGraph* graph, Config config);

  const TemporalGraph& graph() const { return *graph_; }

  // --- Materialization (Section 4.3 base layer) ---

  /// Builds the per-time-point ALL-aggregate store over `attrs` (at most
  /// AttrTuple::kMaxAttrs), unlocking the materialized route for derivable
  /// specs. Idempotent for the same attribute list; GT_CHECKs against
  /// re-enabling with a different one.
  void EnableMaterialization(std::vector<AttrRef> attrs);

  bool materialization_enabled() const { return store_.has_value(); }

  /// Base attribute list of the store; GT_CHECKs materialization_enabled().
  const std::vector<AttrRef>& materialized_attrs() const;

  /// Incremental maintenance after `TemporalGraph::AppendTimePoint`: extends
  /// the base store and every memoized subset layer to the new time points.
  /// No-op when up to date or when materialization is disabled. (The result
  /// cache needs no call here — it invalidates itself on the next Execute via
  /// the graph's mutation generation.)
  void Refresh();

  // --- Planning ---

  struct PlanOptions {
    /// Force the route instead of letting the planner choose — the
    /// differential suite uses this to pin route equivalence. Forcing
    /// kMaterializedDerivation GT_CHECKs that the spec is derivable.
    std::optional<PlanRoute> force_route;
  };

  /// Plans without executing — what the CLI's `--explain` prints.
  QueryPlan Plan(const QuerySpec& spec) const { return Plan(spec, PlanOptions{}); }
  QueryPlan Plan(const QuerySpec& spec, const PlanOptions& options) const;

  /// True when the planner may answer `spec` from the materialization store.
  bool Derivable(const QuerySpec& spec) const;

  // --- Execution ---

  AggregateGraph Execute(const QuerySpec& spec) { return Execute(spec, PlanOptions{}); }
  AggregateGraph Execute(const QuerySpec& spec, const PlanOptions& options);

  /// Drops every cached result (stats keep counting). Forced-route
  /// experiments call this between runs so each route really executes.
  void ClearCache();

  // --- Observability ---

  /// Result-cache behaviour. Mirrored into the obs registry as
  /// `engine/cache_hit` etc. so `--perf` and the benches see them.
  struct CacheStats {
    std::uint64_t hits = 0;           ///< served from cache
    std::uint64_t misses = 0;         ///< computed (cacheable specs only)
    std::uint64_t bypasses = 0;       ///< uncacheable (filtered) executions
    std::uint64_t evictions = 0;      ///< LRU evictions
    std::uint64_t invalidations = 0;  ///< whole-cache drops on graph mutation
  };

  /// Section 4.3 derivation work, cube-compatible semantics: `rollups` /
  /// `rollup_hits` count per-time-point subset roll-ups computed / served
  /// from a memoized layer; `combines` counts per-time-point aggregates
  /// weight-summed into union results.
  struct DerivationStats {
    std::size_t rollups = 0;
    std::size_t rollup_hits = 0;
    std::size_t combines = 0;
  };

  const CacheStats& cache_stats() const { return cache_stats_; }
  const DerivationStats& derivation_stats() const { return derivation_stats_; }

 private:
  /// Bitmask over base attribute positions; position i → bit i.
  using SubsetMask = std::uint32_t;

  /// Maps `spec.attrs` into positions of the base attribute list (caller
  /// order). Returns false — leaving `keep` untouched — when any attribute is
  /// not in the base list or appears twice.
  bool MapToBasePositions(const QuerySpec& spec, std::vector<std::size_t>* keep) const;

  /// The memoized per-time-point roll-up layer for an ascending,
  /// duplicate-free strict subset of base positions.
  const std::vector<AggregateGraph>& SubsetLayer(std::span<const std::size_t> canonical);

  AggregateGraph Run(const QuerySpec& spec, const QueryPlan& plan);
  AggregateGraph RunDirect(const QuerySpec& spec, const QueryPlan& plan);
  AggregateGraph RunMaterialized(const QuerySpec& spec, const QueryPlan& plan);

  /// Clears the cache if the graph mutated since it was filled.
  void InvalidateIfStale();

  const TemporalGraph* graph_;
  Config config_;

  std::optional<MaterializationStore> store_;
  std::unordered_map<SubsetMask, std::vector<AggregateGraph>> subset_layers_;

  /// LRU result cache: `lru_` holds fingerprints, most recent first;
  /// `cache_` maps fingerprint → (guard spec, result, lru position).
  struct CachedResult {
    QuerySpec spec;
    AggregateGraph result;
    std::list<std::uint64_t>::iterator lru_pos;
  };
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, CachedResult> cache_;
  std::uint64_t cache_generation_ = 0;  ///< graph generation the cache matches

  CacheStats cache_stats_;
  DerivationStats derivation_stats_;
};

}  // namespace graphtempo::engine

#endif  // GRAPHTEMPO_ENGINE_ENGINE_H_
