#ifndef GRAPHTEMPO_ENGINE_COST_H_
#define GRAPHTEMPO_ENGINE_COST_H_

#include <cstddef>
#include <cstdint>
#include <string>

/// \file
/// The planner's cost model (docs/ENGINE.md §Cost model).
///
/// The fixed planning rule — "derivable ⇒ materialized" — encodes the §4.3
/// average: weight summation over per-time-point aggregates usually beats
/// re-running the kernels. But the paper's own materialization study shows
/// the margin depends on interval length × live-entity counts, and the rule
/// has a genuine losing case: a *short* interval over an attribute subset
/// whose roll-up layer is not memoized yet pays `num_times` roll-ups to
/// answer a one-point question. The cost model prices both routes from cheap
/// `PresenceIndex` cardinality accessors (AppearancesOver / MaxCountOver —
/// O(points) array reads) and the store's group counts, so the planner can
/// route each query instead of every query.
///
/// Estimates are *microseconds*, but only their ordering matters. The
/// constants were calibrated against the repo's own bench JSON on the
/// generated DBLP/MovieLens datasets (fig5_engine direct_ms vs
/// materialized_ms, fig10_engine engine_cold_ms across interval lengths,
/// fig11_engine rollups): one appearance scanned by Algorithm 2 costs a few
/// nanoseconds, one store point combined costs roughly a microsecond plus a
/// hash merge per group, and building one roll-up layer point costs about as
/// much as combining it. They are deliberately coarse — the model only has
/// to rank two routes whose true costs differ by integer factors at the
/// decision boundary the benches probe.

namespace graphtempo::engine {

/// How the planner picks between the direct and materialized routes.
enum class PlannerMode : std::uint8_t {
  /// The historical fixed rule: derivable ⇒ materialized. The escape hatch
  /// (`--planner rule`) and the default for embedded engines, so existing
  /// counter-exact callers (the OLAP cube, the differential suites) keep
  /// byte-identical behavior.
  kRule,
  /// Price both routes with `EstimateCost` and take the cheaper one. The
  /// default for the CLI and the server.
  kCost,
};

/// "rule" / "cost".
const char* PlannerModeName(PlannerMode mode);

/// Parses "rule" / "cost"; anything else fails with a diagnostic naming the
/// accepted spellings (the CLI and server surface it verbatim).
bool ParsePlannerMode(const std::string& text, PlannerMode* mode, std::string* error);

/// Calibrated per-unit costs (microseconds). See the file comment for where
/// the numbers come from; `Default()` returns the calibrated singleton.
struct CostModel {
  /// Direct route: kernel dispatch, interval folds, index extraction and
  /// aggregation setup — paid once regardless of data size.
  double direct_setup_us = 20.0;
  /// Direct route: scanning one (entity, time) appearance in Algorithm 2.
  double direct_per_appearance_us = 0.004;
  /// Materialized route: fixed combine setup.
  double materialized_setup_us = 1.0;
  /// Materialized route: per store point visited by the combine loop.
  double combine_per_point_us = 0.5;
  /// Materialized route: per aggregate group merged per visited point.
  double combine_per_group_us = 0.06;
  /// Roll-up layer build: per time point of the store (only when the subset
  /// layer is not memoized yet — the first subset query pays for them all).
  double rollup_per_point_us = 1.0;
  /// Roll-up layer build: per store group re-grouped per time point.
  double rollup_per_group_us = 0.05;

  static const CostModel& Default();
};

/// Everything the estimator needs, gathered by the planner under its shared
/// state lock. All counts are cheap: presence-index popcount sums and store
/// map sizes.
struct CostInputs {
  /// Whether the materialized route is on the table at all (spec derivable,
  /// store present and fresh). When false only the direct route is priced.
  bool materialized_available = false;

  /// Time points in the spec's evaluation interval.
  std::size_t eval_points = 0;
  /// Σ live nodes / edges per evaluation point (PresenceIndex::AppearancesOver).
  std::size_t node_appearances = 0;
  std::size_t edge_appearances = 0;
  /// Aggregate groups per store point (node + edge map sizes at one point).
  std::size_t store_groups = 0;
  /// Whether the materialized answer needs a subset roll-up, and whether the
  /// memoized layer for that subset already exists.
  bool needs_rollup = false;
  bool layer_memoized = false;
  /// Total store points — the span a cold roll-up layer build covers.
  std::size_t total_points = 0;
};

/// Priced routes. `materialized_us < 0` means the route is unavailable
/// (spec not derivable / no store) and only `direct_us` is meaningful.
struct CostEstimate {
  double direct_us = 0.0;
  double materialized_us = -1.0;

  bool MaterializedWins() const {
    return materialized_us >= 0.0 && materialized_us <= direct_us;
  }
};

/// Prices the direct route always and the materialized route when
/// `inputs.materialized_available`. Monotonic in interval length: more
/// evaluation points (and therefore more appearances) never lower either
/// estimate — pinned by tests/cost_test.cc.
CostEstimate EstimateCost(const CostInputs& inputs,
                          const CostModel& model = CostModel::Default());

}  // namespace graphtempo::engine

#endif  // GRAPHTEMPO_ENGINE_COST_H_
