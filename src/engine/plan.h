#ifndef GRAPHTEMPO_ENGINE_PLAN_H_
#define GRAPHTEMPO_ENGINE_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/cost.h"

/// \file
/// `QueryPlan`: the inspectable output of `QueryEngine::Plan` (docs/ENGINE.md).
///
/// A plan names the chosen *route* — direct kernels vs Section 4.3
/// materialized derivation — plus an ordered list of steps the executor will
/// run, each with a human-readable detail string. `Explain()` renders the
/// whole plan, which is what the CLI's `--explain` flag prints and what the
/// engine differential suite uses to assert routing decisions.

namespace graphtempo::engine {

/// How the executor will answer the query.
enum class PlanRoute : std::uint8_t {
  /// Run the temporal-operator bitset kernels and Algorithm 2 directly.
  kDirectKernel,
  /// Derive the answer from materialized per-time-point aggregates:
  /// T-distributive weight summation (UnionAllAggregate) plus, for attribute
  /// subsets, D-distributive RollUp — never touching the original graph.
  kMaterializedDerivation,
};

/// "direct" / "materialized".
const char* PlanRouteName(PlanRoute route);

/// One executor step. `kind` doubles as the GT_SPAN name suffix the executor
/// uses when running the step, so a trace of an engine query mirrors its
/// Explain output one-to-one.
struct PlanStep {
  std::string kind;    ///< e.g. "operator/union", "aggregate", "combine", "roll-up"
  std::string detail;  ///< human-readable parameters of the step
};

/// The executable plan for one QuerySpec.
struct QueryPlan {
  std::uint64_t fingerprint = 0;  ///< cache key of the underlying spec
  PlanRoute route = PlanRoute::kDirectKernel;
  bool cacheable = true;  ///< false when the spec carries an opaque filter

  /// True when the spec was derivable but the materialization store had not
  /// been `Refresh()`ed after an `AppendTimePoint` — the planner degrades to
  /// the direct route instead of serving (or crashing on) stale aggregates,
  /// and bumps the `engine/stale_fallback` counter.
  bool stale_fallback = false;

  /// Which planner produced the route decision (engine/cost.h).
  PlannerMode planner = PlannerMode::kRule;

  /// Priced routes (microseconds; ordering is what matters). The estimates
  /// are computed under both planner modes so `Explain()` always shows what
  /// the cost model *would* choose; `cost.materialized_us < 0` means the
  /// materialized route was unavailable for this spec.
  CostEstimate cost;

  /// Direct route: the grouping paths Algorithm 2 will take (dense vs hash,
  /// resolved from the requested GroupingStrategy and the dictionary
  /// domains). Meaningless for the materialized route.
  bool dense_nodes = false;
  bool dense_edges = false;

  /// Materialized route: positions into the engine's base attribute list, in
  /// the caller's attribute order. Identity over the full base list means
  /// "no roll-up needed".
  std::vector<std::size_t> keep_positions;
  bool needs_rollup = false;

  std::vector<PlanStep> steps;

  /// Multi-line rendering:
  ///
  ///   plan fingerprint=0x9c0ffee…  route=materialized  cache=eligible  planner=cost
  ///   estimate direct=41.2us materialized=5.3us
  ///     1. combine    store=(gender,publications) points=5
  ///     2. roll-up    keep=[0]
  ///     3. symmetrize mirror-edge merge
  std::string Explain() const;
};

}  // namespace graphtempo::engine

#endif  // GRAPHTEMPO_ENGINE_PLAN_H_
