#ifndef GRAPHTEMPO_CORE_CUBE_H_
#define GRAPHTEMPO_CORE_CUBE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/materialization.h"

/// \file
/// `AggregateCube`: the OLAP-style materialization manager sketched in
/// Section 4.3. Materializing *every* (attribute subset × interval) aggregate
/// is unrealistic; the cube instead stores only per-time-point aggregates of
/// the full attribute set and derives everything else:
///
///   * an attribute subset comes from the full set by **roll-up**
///     (D-distributive) — memoized per subset, per time point;
///   * a union interval comes from per-time-point aggregates by **weight
///     summation** (T-distributive, ALL semantics).
///
/// A query therefore never touches the original graph once the base layer is
/// built. Derivation counters expose how much work the distributivity saves;
/// the ablation benchmark prints them against from-scratch aggregation.

namespace graphtempo {

class AggregateCube {
 public:
  /// Cube over `base_attrs` (at most AttrTuple::kMaxAttrs). `graph` must
  /// outlive the cube.
  AggregateCube(const TemporalGraph* graph, std::vector<AttrRef> base_attrs);

  /// Builds the base layer: per-time-point ALL aggregates of the full
  /// attribute set. Idempotent.
  void Materialize();

  /// Incremental maintenance after `TemporalGraph::AppendTimePoint`: extends
  /// the base layer and every memoized subset layer with the new time
  /// points' aggregates. No-op when up to date.
  void Refresh();

  bool materialized() const { return base_.materialized(); }

  /// ALL-semantics aggregate of the union graph over `interval`, on the
  /// attribute subset selected by `keep_positions` (indices into
  /// `base_attrs()`, output order preserved). Requires Materialize().
  AggregateGraph Query(const IntervalSet& interval,
                       std::span<const std::size_t> keep_positions);

  /// Convenience overload: the full attribute set.
  AggregateGraph Query(const IntervalSet& interval);

  const std::vector<AttrRef>& base_attrs() const { return base_.attrs(); }

  /// Observability: how queries were answered.
  struct Stats {
    std::size_t queries = 0;        ///< Query() calls
    std::size_t rollups = 0;        ///< per-time-point roll-ups performed
    std::size_t rollup_hits = 0;    ///< per-time-point roll-ups served from cache
    std::size_t combines = 0;       ///< per-time-point aggregates summed
  };

  const Stats& stats() const { return stats_; }

 private:
  /// Bitmask over base attribute positions; position i → bit i.
  using SubsetMask = std::uint32_t;

  static SubsetMask MaskOf(std::span<const std::size_t> keep_positions,
                           std::size_t arity);

  /// The per-time-point aggregates for one subset, built lazily by roll-up.
  const std::vector<AggregateGraph>& SubsetLayer(
      std::span<const std::size_t> keep_positions);

  const TemporalGraph* graph_;
  MaterializationStore base_;
  std::unordered_map<SubsetMask, std::vector<AggregateGraph>> subset_layers_;
  Stats stats_;
};

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_CUBE_H_
