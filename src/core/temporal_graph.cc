#include "core/temporal_graph.h"

#include "util/check.h"

namespace graphtempo {

TemporalGraph::TemporalGraph(std::vector<std::string> time_labels)
    : time_labels_(std::move(time_labels)),
      node_presence_(time_labels_.size()),
      node_index_cols_(time_labels_.size()),
      edge_presence_(time_labels_.size()),
      edge_index_cols_(time_labels_.size()) {
  GT_CHECK(!time_labels_.empty()) << "time domain must be non-empty";
  time_mutation_generations_.assign(time_labels_.size(), 0);
  for (std::size_t t = 0; t < time_labels_.size(); ++t) {
    bool inserted =
        time_index_.emplace(time_labels_[t], static_cast<TimeId>(t)).second;
    GT_CHECK(inserted) << "duplicate time label: " << time_labels_[t];
  }
}

const std::string& TemporalGraph::time_label(TimeId t) const {
  GT_CHECK_LT(t, time_labels_.size()) << "time out of range";
  return time_labels_[t];
}

std::optional<TimeId> TemporalGraph::FindTime(std::string_view label) const {
  auto it = time_index_.find(std::string(label));
  if (it == time_index_.end()) return std::nullopt;
  return it->second;
}

TimeId TemporalGraph::AppendTimePoint(std::string_view label) {
  ++mutation_generation_;
  TimeId id = static_cast<TimeId>(time_labels_.size());
  time_labels_.emplace_back(label);
  // Only the new point is stamped: append-only growth leaves every existing
  // time point's data — and therefore every answer over it — untouched.
  time_mutation_generations_.push_back(mutation_generation_);
  bool inserted = time_index_.emplace(time_labels_.back(), id).second;
  GT_CHECK(inserted) << "duplicate time label: " << label;
  node_presence_.AddColumns(1);
  edge_presence_.AddColumns(1);
  node_index_cols_.AddTimePoints(1);
  edge_index_cols_.AddTimePoints(1);
  for (auto& column : varying_attrs_) column.AppendTimes(1);
  for (auto& column : varying_edge_attrs_) column.AppendTimes(1);
  return id;
}

void TemporalGraph::MarkTimeMutated(TimeId t) {
  GT_CHECK_LT(t, time_mutation_generations_.size()) << "time out of range";
  time_mutation_generations_[t] = mutation_generation_;
}

void TemporalGraph::MarkAllTimesMutated() {
  for (std::uint64_t& generation : time_mutation_generations_) {
    generation = mutation_generation_;
  }
}

std::uint64_t TemporalGraph::time_mutation_generation(TimeId t) const {
  GT_CHECK_LT(t, time_mutation_generations_.size()) << "time out of range";
  return time_mutation_generations_[t];
}

bool TemporalGraph::IntervalUnchangedSince(const IntervalSet& interval,
                                           std::uint64_t generation) const {
  GT_CHECK_LE(interval.domain_size(), num_times())
      << "interval domain exceeds the graph's time domain";
  bool unchanged = true;
  interval.ForEach([&](TimeId t) {
    if (time_mutation_generations_[t] > generation) unchanged = false;
  });
  return unchanged;
}

NodeId TemporalGraph::AddNode(std::string_view label) {
  ++mutation_generation_;
  GT_CHECK(node_index_.find(std::string(label)) == node_index_.end())
      << "duplicate node label: " << label;
  NodeId id = static_cast<NodeId>(node_labels_.size());
  node_labels_.emplace_back(label);
  node_index_.emplace(node_labels_.back(), id);
  node_presence_.AddRows(1);
  node_index_cols_.AddEntities(1);
  for (auto& column : static_attrs_) column.Resize(node_labels_.size());
  for (auto& column : varying_attrs_) column.Resize(node_labels_.size());
  return id;
}

NodeId TemporalGraph::GetOrAddNode(std::string_view label) {
  auto it = node_index_.find(std::string(label));
  if (it != node_index_.end()) return it->second;
  return AddNode(label);
}

EdgeId TemporalGraph::GetOrAddEdge(NodeId src, NodeId dst) {
  GT_CHECK_LT(src, num_nodes()) << "edge source out of range";
  GT_CHECK_LT(dst, num_nodes()) << "edge target out of range";
  std::uint64_t key = EdgeKey(src, dst);
  auto it = edge_index_.find(key);
  if (it != edge_index_.end()) return it->second;
  ++mutation_generation_;
  EdgeId id = static_cast<EdgeId>(edge_endpoints_.size());
  edge_endpoints_.emplace_back(src, dst);
  edge_index_.emplace(key, id);
  edge_presence_.AddRows(1);
  edge_index_cols_.AddEntities(1);
  for (auto& column : static_edge_attrs_) column.Resize(edge_endpoints_.size());
  for (auto& column : varying_edge_attrs_) column.Resize(edge_endpoints_.size());
  return id;
}

void TemporalGraph::SetNodePresent(NodeId n, TimeId t) {
  ++mutation_generation_;
  MarkTimeMutated(t);
  node_presence_.Set(n, t);
  node_index_cols_.Set(n, t);
}

void TemporalGraph::SetEdgePresent(EdgeId e, TimeId t) {
  ++mutation_generation_;
  MarkTimeMutated(t);
  edge_presence_.Set(e, t);
  edge_index_cols_.Set(e, t);
  auto [src, dst] = edge(e);
  node_presence_.Set(src, t);
  node_presence_.Set(dst, t);
  node_index_cols_.Set(src, t);
  node_index_cols_.Set(dst, t);
}

std::uint32_t TemporalGraph::AddStaticAttribute(std::string name) {
  ++mutation_generation_;
  GT_CHECK(!FindAttribute(name).has_value()) << "duplicate attribute: " << name;
  static_attrs_.emplace_back(std::move(name));
  static_attrs_.back().Resize(num_nodes());
  return static_cast<std::uint32_t>(static_attrs_.size() - 1);
}

std::uint32_t TemporalGraph::AddTimeVaryingAttribute(std::string name) {
  ++mutation_generation_;
  GT_CHECK(!FindAttribute(name).has_value()) << "duplicate attribute: " << name;
  varying_attrs_.emplace_back(std::move(name), num_times());
  varying_attrs_.back().Resize(num_nodes());
  return static_cast<std::uint32_t>(varying_attrs_.size() - 1);
}

void TemporalGraph::SetStaticValue(std::uint32_t attr, NodeId n, std::string_view value) {
  ++mutation_generation_;
  MarkAllTimesMutated();  // the value is visible at every time the node exists
  GT_CHECK_LT(attr, static_attrs_.size()) << "static attribute index out of range";
  static_attrs_[attr].Set(n, value);
}

void TemporalGraph::SetTimeVaryingValue(std::uint32_t attr, NodeId n, TimeId t,
                                        std::string_view value) {
  ++mutation_generation_;
  MarkTimeMutated(t);
  GT_CHECK_LT(attr, varying_attrs_.size()) << "time-varying attribute index out of range";
  varying_attrs_[attr].Set(n, t, value);
}

std::uint32_t TemporalGraph::AddStaticEdgeAttribute(std::string name) {
  ++mutation_generation_;
  GT_CHECK(!FindEdgeAttribute(name).has_value()) << "duplicate edge attribute: " << name;
  static_edge_attrs_.emplace_back(std::move(name));
  static_edge_attrs_.back().Resize(num_edges());
  return static_cast<std::uint32_t>(static_edge_attrs_.size() - 1);
}

std::uint32_t TemporalGraph::AddTimeVaryingEdgeAttribute(std::string name) {
  ++mutation_generation_;
  GT_CHECK(!FindEdgeAttribute(name).has_value()) << "duplicate edge attribute: " << name;
  varying_edge_attrs_.emplace_back(std::move(name), num_times());
  varying_edge_attrs_.back().Resize(num_edges());
  return static_cast<std::uint32_t>(varying_edge_attrs_.size() - 1);
}

void TemporalGraph::SetStaticEdgeValue(std::uint32_t attr, EdgeId e,
                                       std::string_view value) {
  ++mutation_generation_;
  MarkAllTimesMutated();  // the value is visible at every time the edge exists
  GT_CHECK_LT(attr, static_edge_attrs_.size())
      << "static edge attribute index out of range";
  static_edge_attrs_[attr].Set(e, value);
}

void TemporalGraph::SetTimeVaryingEdgeValue(std::uint32_t attr, EdgeId e, TimeId t,
                                            std::string_view value) {
  ++mutation_generation_;
  MarkTimeMutated(t);
  GT_CHECK_LT(attr, varying_edge_attrs_.size())
      << "time-varying edge attribute index out of range";
  varying_edge_attrs_[attr].Set(e, t, value);
}

std::optional<NodeId> TemporalGraph::FindNode(std::string_view label) const {
  auto it = node_index_.find(std::string(label));
  if (it == node_index_.end()) return std::nullopt;
  return it->second;
}

const std::string& TemporalGraph::node_label(NodeId n) const {
  GT_CHECK_LT(n, node_labels_.size()) << "node out of range";
  return node_labels_[n];
}

std::optional<EdgeId> TemporalGraph::FindEdge(NodeId src, NodeId dst) const {
  auto it = edge_index_.find(EdgeKey(src, dst));
  if (it == edge_index_.end()) return std::nullopt;
  return it->second;
}

std::pair<NodeId, NodeId> TemporalGraph::edge(EdgeId e) const {
  GT_CHECK_LT(e, edge_endpoints_.size()) << "edge out of range";
  return edge_endpoints_[e];
}

IntervalSet TemporalGraph::NodeTimes(NodeId n) const {
  IntervalSet all = IntervalSet::All(num_times());
  IntervalSet result(num_times());
  node_presence_.ForEachSetBitMasked(n, all.bits(),
                                     [&](std::size_t t) { result.Add(static_cast<TimeId>(t)); });
  return result;
}

IntervalSet TemporalGraph::EdgeTimes(EdgeId e) const {
  IntervalSet all = IntervalSet::All(num_times());
  IntervalSet result(num_times());
  edge_presence_.ForEachSetBitMasked(e, all.bits(),
                                     [&](std::size_t t) { result.Add(static_cast<TimeId>(t)); });
  return result;
}

std::optional<AttrRef> TemporalGraph::FindAttribute(std::string_view name) const {
  for (std::size_t i = 0; i < static_attrs_.size(); ++i) {
    if (static_attrs_[i].name() == name) {
      return AttrRef{AttrRef::Kind::kStatic, static_cast<std::uint32_t>(i)};
    }
  }
  for (std::size_t i = 0; i < varying_attrs_.size(); ++i) {
    if (varying_attrs_[i].name() == name) {
      return AttrRef{AttrRef::Kind::kTimeVarying, static_cast<std::uint32_t>(i)};
    }
  }
  return std::nullopt;
}

const StaticColumn& TemporalGraph::static_attribute(std::uint32_t index) const {
  GT_CHECK_LT(index, static_attrs_.size()) << "static attribute index out of range";
  return static_attrs_[index];
}

const TimeVaryingColumn& TemporalGraph::time_varying_attribute(std::uint32_t index) const {
  GT_CHECK_LT(index, varying_attrs_.size())
      << "time-varying attribute index out of range";
  return varying_attrs_[index];
}

const std::string& TemporalGraph::attribute_name(AttrRef ref) const {
  if (ref.kind == AttrRef::Kind::kStatic) return static_attribute(ref.index).name();
  return time_varying_attribute(ref.index).name();
}

AttrValueId TemporalGraph::ValueCodeAt(AttrRef ref, NodeId n, TimeId t) const {
  if (ref.kind == AttrRef::Kind::kStatic) return static_attribute(ref.index).CodeAt(n);
  return time_varying_attribute(ref.index).CodeAt(n, t);
}

const std::string& TemporalGraph::ValueName(AttrRef ref, AttrValueId code) const {
  if (ref.kind == AttrRef::Kind::kStatic) {
    return static_attribute(ref.index).dictionary().ValueOf(code);
  }
  return time_varying_attribute(ref.index).dictionary().ValueOf(code);
}

std::optional<AttrValueId> TemporalGraph::FindValueCode(AttrRef ref,
                                                        std::string_view value) const {
  if (ref.kind == AttrRef::Kind::kStatic) {
    return static_attribute(ref.index).dictionary().Find(value);
  }
  return time_varying_attribute(ref.index).dictionary().Find(value);
}

std::optional<EdgeAttrRef> TemporalGraph::FindEdgeAttribute(std::string_view name) const {
  for (std::size_t i = 0; i < static_edge_attrs_.size(); ++i) {
    if (static_edge_attrs_[i].name() == name) {
      return EdgeAttrRef{EdgeAttrRef::Kind::kStatic, static_cast<std::uint32_t>(i)};
    }
  }
  for (std::size_t i = 0; i < varying_edge_attrs_.size(); ++i) {
    if (varying_edge_attrs_[i].name() == name) {
      return EdgeAttrRef{EdgeAttrRef::Kind::kTimeVarying, static_cast<std::uint32_t>(i)};
    }
  }
  return std::nullopt;
}

const StaticColumn& TemporalGraph::static_edge_attribute(std::uint32_t index) const {
  GT_CHECK_LT(index, static_edge_attrs_.size())
      << "static edge attribute index out of range";
  return static_edge_attrs_[index];
}

const TimeVaryingColumn& TemporalGraph::time_varying_edge_attribute(
    std::uint32_t index) const {
  GT_CHECK_LT(index, varying_edge_attrs_.size())
      << "time-varying edge attribute index out of range";
  return varying_edge_attrs_[index];
}

const std::string& TemporalGraph::edge_attribute_name(EdgeAttrRef ref) const {
  if (ref.kind == EdgeAttrRef::Kind::kStatic) {
    return static_edge_attribute(ref.index).name();
  }
  return time_varying_edge_attribute(ref.index).name();
}

AttrValueId TemporalGraph::EdgeValueCodeAt(EdgeAttrRef ref, EdgeId e, TimeId t) const {
  if (ref.kind == EdgeAttrRef::Kind::kStatic) {
    return static_edge_attribute(ref.index).CodeAt(e);
  }
  return time_varying_edge_attribute(ref.index).CodeAt(e, t);
}

const std::string& TemporalGraph::EdgeValueName(EdgeAttrRef ref, AttrValueId code) const {
  if (ref.kind == EdgeAttrRef::Kind::kStatic) {
    return static_edge_attribute(ref.index).dictionary().ValueOf(code);
  }
  return time_varying_edge_attribute(ref.index).dictionary().ValueOf(code);
}

std::size_t TemporalGraph::NodesAt(TimeId t) const {
  GT_CHECK_LT(t, num_times()) << "time out of range";
  return node_index_cols_.CountAt(t);  // column popcount, not a row scan
}

std::size_t TemporalGraph::EdgesAt(TimeId t) const {
  GT_CHECK_LT(t, num_times()) << "time out of range";
  return edge_index_cols_.CountAt(t);
}

}  // namespace graphtempo
