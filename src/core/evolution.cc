#include "core/evolution.h"

#include <algorithm>
#include <optional>
#include <vector>

namespace graphtempo {

const char* EventTypeName(EventType event) {
  switch (event) {
    case EventType::kStability:
      return "stability";
    case EventType::kGrowth:
      return "growth";
    case EventType::kShrinkage:
      return "shrinkage";
  }
  GT_CHECK(false) << "invalid event type";
  __builtin_unreachable();
}

const GraphView& EvolutionGraph::ForEvent(EventType event) const {
  switch (event) {
    case EventType::kStability:
      return stability;
    case EventType::kGrowth:
      return growth;
    case EventType::kShrinkage:
      return shrinkage;
  }
  GT_CHECK(false) << "invalid event type";
  __builtin_unreachable();
}

EvolutionGraph MakeEvolutionGraph(const TemporalGraph& graph, const IntervalSet& t_old,
                                  const IntervalSet& t_new) {
  EvolutionGraph evolution;
  evolution.stability = IntersectionOp(graph, t_old, t_new);
  evolution.shrinkage = DifferenceOp(graph, t_old, t_new);
  evolution.growth = DifferenceOp(graph, t_new, t_old);
  return evolution;
}

Weight EvolutionWeights::ForEvent(EventType event) const {
  switch (event) {
    case EventType::kStability:
      return stability;
    case EventType::kGrowth:
      return growth;
    case EventType::kShrinkage:
      return shrinkage;
  }
  GT_CHECK(false) << "invalid event type";
  __builtin_unreachable();
}

EvolutionWeights EvolutionAggregate::NodeWeights(const AttrTuple& tuple) const {
  auto it = nodes_.find(tuple);
  return it == nodes_.end() ? EvolutionWeights{} : it->second;
}

EvolutionWeights EvolutionAggregate::EdgeWeights(const AttrTuple& src,
                                                 const AttrTuple& dst) const {
  auto it = edges_.find(AttrTuplePair{src, dst});
  return it == edges_.end() ? EvolutionWeights{} : it->second;
}

void EvolutionAggregate::Overlay(const AggregateGraph& component, EventType event) {
  auto bump = [event](EvolutionWeights& weights, Weight value) {
    switch (event) {
      case EventType::kStability:
        weights.stability += value;
        break;
      case EventType::kGrowth:
        weights.growth += value;
        break;
      case EventType::kShrinkage:
        weights.shrinkage += value;
        break;
    }
  };
  for (const auto& [tuple, weight] : component.nodes()) bump(nodes_[tuple], weight);
  for (const auto& [pair, weight] : component.edges()) bump(edges_[pair], weight);
}

namespace {

/// Distinct tuples an entity carries within `interval`. For a node, the tuple
/// at each (present, unfiltered) time; for an edge, the endpoint tuple pair.
template <typename TupleType, typename TupleAtFn>
std::vector<TupleType> DistinctTuplesIn(const BitMatrix& presence, std::size_t row,
                                        const IntervalSet& interval,
                                        const TupleAtFn& tuple_at) {
  std::vector<TupleType> tuples;
  presence.ForEachSetBitMasked(row, interval.bits(), [&](std::size_t t_raw) {
    TimeId t = static_cast<TimeId>(t_raw);
    std::optional<TupleType> tuple = tuple_at(t);
    if (!tuple.has_value()) return;
    if (std::find(tuples.begin(), tuples.end(), *tuple) == tuples.end()) {
      tuples.push_back(*tuple);
    }
  });
  return tuples;
}

/// Classifies old-vs-new tuple sets into stability / growth / shrinkage and
/// adds 1 to the matching weight of each affected aggregate entity.
template <typename TupleType, typename BumpFn>
void ClassifyTransitions(const std::vector<TupleType>& old_tuples,
                         const std::vector<TupleType>& new_tuples, const BumpFn& bump) {
  for (const TupleType& tuple : old_tuples) {
    bool survived =
        std::find(new_tuples.begin(), new_tuples.end(), tuple) != new_tuples.end();
    bump(tuple, survived ? EventType::kStability : EventType::kShrinkage);
  }
  for (const TupleType& tuple : new_tuples) {
    bool existed =
        std::find(old_tuples.begin(), old_tuples.end(), tuple) != old_tuples.end();
    if (!existed) bump(tuple, EventType::kGrowth);
  }
}

}  // namespace

EvolutionAggregate AggregateEvolution(const TemporalGraph& graph, const IntervalSet& t_old,
                                      const IntervalSet& t_new,
                                      std::span<const AttrRef> attrs,
                                      const NodeTimeFilter* filter) {
  GT_CHECK(!attrs.empty()) << "evolution aggregation needs at least one attribute";
  EvolutionAggregate result;

  auto bump_weights = [](EvolutionWeights& weights, EventType event) {
    switch (event) {
      case EventType::kStability:
        ++weights.stability;
        break;
      case EventType::kGrowth:
        ++weights.growth;
        break;
      case EventType::kShrinkage:
        ++weights.shrinkage;
        break;
    }
  };

  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    auto tuple_at = [&](TimeId t) -> std::optional<AttrTuple> {
      if (filter != nullptr && !(*filter)(n, t)) return std::nullopt;
      return TupleAt(graph, attrs, n, t);
    };
    std::vector<AttrTuple> old_tuples =
        DistinctTuplesIn<AttrTuple>(graph.node_presence(), n, t_old, tuple_at);
    std::vector<AttrTuple> new_tuples =
        DistinctTuplesIn<AttrTuple>(graph.node_presence(), n, t_new, tuple_at);
    ClassifyTransitions<AttrTuple>(
        old_tuples, new_tuples, [&](const AttrTuple& tuple, EventType event) {
          bump_weights(result.MutableNodeWeights(tuple), event);
        });
  }

  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    auto [src, dst] = graph.edge(e);
    auto pair_at = [&](TimeId t) -> std::optional<AttrTuplePair> {
      if (filter != nullptr && (!(*filter)(src, t) || !(*filter)(dst, t))) {
        return std::nullopt;
      }
      return AttrTuplePair{TupleAt(graph, attrs, src, t), TupleAt(graph, attrs, dst, t)};
    };
    std::vector<AttrTuplePair> old_pairs =
        DistinctTuplesIn<AttrTuplePair>(graph.edge_presence(), e, t_old, pair_at);
    std::vector<AttrTuplePair> new_pairs =
        DistinctTuplesIn<AttrTuplePair>(graph.edge_presence(), e, t_new, pair_at);
    ClassifyTransitions<AttrTuplePair>(
        old_pairs, new_pairs, [&](const AttrTuplePair& pair, EventType event) {
          bump_weights(result.MutableEdgeWeights(pair), event);
        });
  }

  return result;
}

namespace {

/// Deterministic tuple ordering for tie-breaks.
bool TupleLess(const AttrTuple& a, const AttrTuple& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

bool PairLess(const AttrTuplePair& a, const AttrTuplePair& b) {
  if (!(a.src == b.src)) return TupleLess(a.src, b.src);
  return TupleLess(a.dst, b.dst);
}

}  // namespace

TopEventGroups RankEventGroups(const TemporalGraph& graph, const IntervalSet& t_old,
                               const IntervalSet& t_new, std::span<const AttrRef> attrs,
                               EventType event, std::size_t top_k,
                               const NodeTimeFilter* filter) {
  EvolutionAggregate evolution = AggregateEvolution(graph, t_old, t_new, attrs, filter);
  TopEventGroups top;
  for (const auto& [tuple, weights] : evolution.nodes()) {
    Weight weight = weights.ForEvent(event);
    if (weight > 0) top.nodes.push_back(RankedNodeGroup{tuple, weight});
  }
  for (const auto& [pair, weights] : evolution.edges()) {
    Weight weight = weights.ForEvent(event);
    if (weight > 0) top.edges.push_back(RankedEdgeGroup{pair, weight});
  }
  std::sort(top.nodes.begin(), top.nodes.end(),
            [](const RankedNodeGroup& a, const RankedNodeGroup& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return TupleLess(a.tuple, b.tuple);
            });
  std::sort(top.edges.begin(), top.edges.end(),
            [](const RankedEdgeGroup& a, const RankedEdgeGroup& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return PairLess(a.pair, b.pair);
            });
  if (top.nodes.size() > top_k) top.nodes.resize(top_k);
  if (top.edges.size() > top_k) top.edges.resize(top_k);
  return top;
}

EvolutionAggregate AggregateEvolutionComponents(const TemporalGraph& graph,
                                                const IntervalSet& t_old,
                                                const IntervalSet& t_new,
                                                std::span<const AttrRef> attrs,
                                                const AggregationOptions& options) {
  EvolutionGraph evolution = MakeEvolutionGraph(graph, t_old, t_new);
  EvolutionAggregate result;
  result.Overlay(Aggregate(graph, evolution.stability, attrs, options),
                 EventType::kStability);
  result.Overlay(Aggregate(graph, evolution.growth, attrs, options), EventType::kGrowth);
  result.Overlay(Aggregate(graph, evolution.shrinkage, attrs, options),
                 EventType::kShrinkage);
  return result;
}

}  // namespace graphtempo
