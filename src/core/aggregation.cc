#include "core/aggregation.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "accel/backend.h"
#include "core/stats.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace graphtempo {

namespace {

/// Entities per chunk for the parallel Algorithm 2 paths. Each entity costs
/// an attribute lookup (or several) plus hash-map updates, so chunks earn
/// their dispatch overhead much earlier than the raw presence scans of the
/// operators (whose default is 2048).
constexpr std::size_t kAggMinPerChunk = 512;

/// Adds every node/edge weight of `src` into `dst`.
void MergeInto(AggregateGraph* dst, const AggregateGraph& src) {
  for (const auto& [tuple, weight] : src.nodes()) dst->AddNodeWeight(tuple, weight);
  for (const auto& [pair, weight] : src.edges()) {
    dst->AddEdgeWeight(pair.src, pair.dst, weight);
  }
}

bool AllStatic(std::span<const AttrRef> attrs) {
  return std::all_of(attrs.begin(), attrs.end(), [](const AttrRef& ref) {
    return ref.kind == AttrRef::Kind::kStatic;
  });
}

/// Static attributes do not depend on time; evaluate once per node.
AttrTuple StaticTuple(const TemporalGraph& graph, std::span<const AttrRef> attrs,
                      NodeId n) {
  AttrTuple tuple;
  for (const AttrRef& ref : attrs) {
    tuple.Append(graph.static_attribute(ref.index).CodeAt(n));
  }
  return tuple;
}

/// Small per-entity "seen tuples" set. Entities carry very few distinct
/// tuples across an interval (bounded by interval length), so linear probing
/// over a stack vector beats a hash set.
class SeenTuples {
 public:
  void Clear() { tuples_.clear(); }

  /// Returns true if `tuple` was not seen before (and records it).
  bool Insert(const AttrTuple& tuple) {
    if (std::find(tuples_.begin(), tuples_.end(), tuple) != tuples_.end()) return false;
    tuples_.push_back(tuple);
    return true;
  }

 private:
  std::vector<AttrTuple> tuples_;
};

class SeenTuplePairs {
 public:
  void Clear() { pairs_.clear(); }

  bool Insert(const AttrTuplePair& pair) {
    if (std::find(pairs_.begin(), pairs_.end(), pair) != pairs_.end()) return false;
    pairs_.push_back(pair);
    return true;
  }

 private:
  std::vector<AttrTuplePair> pairs_;
};

// --- chunk bodies (sink-templated) ---------------------------------------------
//
// The per-entity logic of Algorithm 2, written once and instantiated against
// two sinks: the hash-map sink (AggregateGraph partials) and the dense flat
// array sink below. `add_node(tuple, w)` / `add_edge(src, dst, w)` are the
// only output operations, so both grouping strategies share the exact same
// appearance walk and therefore count the exact same things.

/// General path of Algorithm 2 over a node chunk: unpivot each node over its
/// appearance times, deduplicate per entity for DIST. Entities are
/// independent — SeenTuples never crosses entity boundaries — so chunking
/// over the node range is safe.
template <typename AddNode>
void GeneralNodeChunk(const TemporalGraph& graph, const GraphView& view,
                      std::span<const AttrRef> attrs, const AggregationOptions& options,
                      std::size_t begin, std::size_t end, const AddNode& add_node) {
  const bool distinct = options.semantics == AggregationSemantics::kDistinct;
  const NodeTimeFilter* filter = options.filter;
  SeenTuples seen;  // chunk-local scratch, reused across the entity range
  for (std::size_t i = begin; i < end; ++i) {
    NodeId n = view.nodes[i];
    seen.Clear();
    graph.node_presence().ForEachSetBitMasked(
        n, view.times.bits(), [&](std::size_t t_raw) {
          TimeId t = static_cast<TimeId>(t_raw);
          if (filter != nullptr && !(*filter)(n, t)) return;
          AttrTuple tuple = TupleAt(graph, attrs, n, t);
          if (distinct) {
            if (seen.Insert(tuple)) add_node(tuple, Weight{1});
          } else {
            add_node(tuple, Weight{1});
          }
        });
  }
}

template <typename AddEdge>
void GeneralEdgeChunk(const TemporalGraph& graph, const GraphView& view,
                      std::span<const AttrRef> attrs, const AggregationOptions& options,
                      std::size_t begin, std::size_t end, const AddEdge& add_edge) {
  const bool distinct = options.semantics == AggregationSemantics::kDistinct;
  const NodeTimeFilter* filter = options.filter;
  SeenTuplePairs seen_pairs;
  for (std::size_t i = begin; i < end; ++i) {
    EdgeId e = view.edges[i];
    seen_pairs.Clear();
    auto [src, dst] = graph.edge(e);
    graph.edge_presence().ForEachSetBitMasked(
        e, view.times.bits(), [&](std::size_t t_raw) {
          TimeId t = static_cast<TimeId>(t_raw);
          if (filter != nullptr && (!(*filter)(src, t) || !(*filter)(dst, t))) return;
          AttrTuplePair pair{TupleAt(graph, attrs, src, t),
                             TupleAt(graph, attrs, dst, t)};
          if (distinct) {
            if (seen_pairs.Insert(pair)) add_edge(pair.src, pair.dst, Weight{1});
          } else {
            add_edge(pair.src, pair.dst, Weight{1});
          }
        });
  }
}

/// Section 4.2 fast path over a node chunk: all aggregation attributes static
/// and no filter. DIST never looks at time at all; ALL weights each entity by
/// the popcount of its presence row under the view interval.
template <typename AddNode>
void StaticNodeChunk(const TemporalGraph& graph, const GraphView& view,
                     std::span<const AttrRef> attrs, AggregationSemantics semantics,
                     std::size_t begin, std::size_t end, const AddNode& add_node) {
  const bool distinct = semantics == AggregationSemantics::kDistinct;
  // The interval mask is chunk-invariant: hoist the backend dispatch and the
  // mask words out of the row loop and call the masked popcount-aggregate
  // kernel directly per row.
  const accel::KernelBackend& backend = accel::ActiveBackend();
  const BitMatrix& presence = graph.node_presence();
  const std::uint64_t* mask = view.times.bits().words().data();
  const std::size_t mask_words = presence.words_per_row();
  for (std::size_t i = begin; i < end; ++i) {
    NodeId n = view.nodes[i];
    AttrTuple tuple = StaticTuple(graph, attrs, n);
    Weight weight = distinct ? 1
                             : static_cast<Weight>(backend.masked_popcount(
                                   presence.row_words(n), mask, mask_words));
    if (weight > 0) add_node(tuple, weight);
  }
}

template <typename AddEdge>
void StaticEdgeChunk(const TemporalGraph& graph, const GraphView& view,
                     std::span<const AttrRef> attrs, AggregationSemantics semantics,
                     std::size_t begin, std::size_t end, const AddEdge& add_edge) {
  const bool distinct = semantics == AggregationSemantics::kDistinct;
  const accel::KernelBackend& backend = accel::ActiveBackend();
  const BitMatrix& presence = graph.edge_presence();
  const std::uint64_t* mask = view.times.bits().words().data();
  const std::size_t mask_words = presence.words_per_row();
  for (std::size_t i = begin; i < end; ++i) {
    EdgeId e = view.edges[i];
    auto [src, dst] = graph.edge(e);
    AttrTuple src_tuple = StaticTuple(graph, attrs, src);
    AttrTuple dst_tuple = StaticTuple(graph, attrs, dst);
    Weight weight = distinct ? 1
                             : static_cast<Weight>(backend.masked_popcount(
                                   presence.row_words(e), mask, mask_words));
    if (weight > 0) add_edge(src_tuple, dst_tuple, weight);
  }
}

// --- dense grouping -------------------------------------------------------------

/// Mixed-radix packer over the dictionary domains of the aggregation
/// attributes: digit i is `code + 1` (0 reserved for kNoValue), radix i is
/// `dictionary size + 1`. Packing is a bijection between attribute tuples and
/// [0, cells()), so a flat Weight array replaces the hash map whenever
/// cells() is small — one multiply-add per attribute instead of an FNV hash
/// plus probe chain per appearance.
class DensePacker {
 public:
  /// Returns nullopt when the cell-space product exceeds `max_cells` (the
  /// dense table would be too large to be worth it).
  static std::optional<DensePacker> Create(const TemporalGraph& graph,
                                           std::span<const AttrRef> attrs,
                                           std::size_t max_cells) {
    DensePacker packer;
    packer.radices_.reserve(attrs.size());
    for (const AttrRef& ref : attrs) {
      const Dictionary& dict = ref.kind == AttrRef::Kind::kStatic
                                   ? graph.static_attribute(ref.index).dictionary()
                                   : graph.time_varying_attribute(ref.index).dictionary();
      const std::size_t radix = dict.size() + 1;  // +1: the kNoValue digit
      if (packer.cells_ > max_cells / radix) return std::nullopt;
      packer.cells_ *= radix;
      packer.radices_.push_back(radix);
    }
    return packer;
  }

  std::size_t cells() const { return cells_; }

  std::size_t Pack(const AttrTuple& tuple) const {
    GT_DCHECK(tuple.size() == radices_.size());
    std::size_t packed = 0;
    for (std::size_t i = 0; i < radices_.size(); ++i) {
      const AttrValueId code = tuple[i];
      const std::size_t digit =
          code == kNoValue ? 0 : static_cast<std::size_t>(code) + 1;
      GT_DCHECK(digit < radices_[i]);
      packed = packed * radices_[i] + digit;
    }
    return packed;
  }

  AttrTuple Unpack(std::size_t packed) const {
    std::array<std::size_t, AttrTuple::kMaxAttrs> digits = {};
    for (std::size_t i = radices_.size(); i-- > 0;) {
      digits[i] = packed % radices_[i];
      packed /= radices_[i];
    }
    AttrTuple tuple;
    for (std::size_t i = 0; i < radices_.size(); ++i) {
      tuple.Append(digits[i] == 0 ? kNoValue
                                  : static_cast<AttrValueId>(digits[i] - 1));
    }
    return tuple;
  }

 private:
  std::vector<std::size_t> radices_;
  std::size_t cells_ = 1;
};

// --- driver ---------------------------------------------------------------------

/// Runs Algorithm 2 with independently chosen node/edge grouping strategies.
///
/// Both strategies chunk the entity ranges onto the shared pool with private
/// per-chunk accumulators and merge in ascending chunk order:
///
///   * hash  — per-chunk AggregateGraph partials, chunk-ordered MergeInto
///     (fixes the map insertion order, so bit-identical at any thread count);
///   * dense — per-chunk flat Weight arrays indexed by packed tuple,
///     elementwise sum, then emission in ascending packed order (a canonical
///     order independent of both thread count and chunking).
///
/// Per-stage counters (rows scanned, chunks, merge time, dense/hash group
/// sizes) feed `GetExecCounters`.
AggregateGraph AggregateImpl(const TemporalGraph& graph, const GraphView& view,
                             std::span<const AttrRef> attrs,
                             const AggregationOptions& options,
                             bool allow_static_path) {
  GT_SPAN("agg/aggregate", {{"nodes", view.nodes.size()},
                            {"edges", view.edges.size()}});
  const bool static_path =
      allow_static_path && options.filter == nullptr && AllStatic(attrs);

  std::optional<DensePacker> packer;
  if (options.grouping != GroupingStrategy::kHash) {
    packer = DensePacker::Create(graph, attrs, kDenseNodeCellsMax);
  }
  const bool dense_nodes = packer.has_value();
  const bool dense_edges =
      dense_nodes && packer->cells() * packer->cells() <= kDenseEdgePairsMax;
  if (options.grouping == GroupingStrategy::kDense) {
    GT_CHECK(dense_nodes && dense_edges)
        << "attribute domain too large for forced dense grouping";
  }

  auto node_chunk = [&](std::size_t begin, std::size_t end, const auto& add_node) {
    if (static_path) {
      StaticNodeChunk(graph, view, attrs, options.semantics, begin, end, add_node);
    } else {
      GeneralNodeChunk(graph, view, attrs, options, begin, end, add_node);
    }
  };
  auto edge_chunk = [&](std::size_t begin, std::size_t end, const auto& add_edge) {
    if (static_path) {
      StaticEdgeChunk(graph, view, attrs, options.semantics, begin, end, add_edge);
    } else {
      GeneralEdgeChunk(graph, view, attrs, options, begin, end, add_edge);
    }
  };

  ParallelPartition node_partition(view.nodes.size(), kAggMinPerChunk,
                                   /*alignment=*/1);
  ParallelPartition edge_partition(view.edges.size(), kAggMinPerChunk,
                                   /*alignment=*/1);

  AggregateGraph result;
  std::uint64_t merge_nanos = 0;

  if (dense_nodes) {
    const std::size_t cells = packer->cells();
    std::vector<std::vector<Weight>> parts(node_partition.num_chunks());
    {
      GT_SPAN("agg/nodes_scan", {{"rows", view.nodes.size()}, {"dense", 1}});
      node_partition.Run([&](std::size_t chunk, std::size_t begin, std::size_t end) {
        std::vector<Weight>& table = parts[chunk];
        table.assign(cells, 0);
        node_chunk(begin, end, [&](const AttrTuple& tuple, Weight w) {
          table[packer->Pack(tuple)] += w;
        });
      });
    }
    GT_SPAN("agg/nodes_merge", {{"chunks", parts.size()}, {"dense", 1}});
    Stopwatch merge_watch;
    merge_watch.Start();
    std::vector<Weight>& total = parts.front();
    for (std::size_t c = 1; c < parts.size(); ++c) {
      for (std::size_t i = 0; i < cells; ++i) total[i] += parts[c][i];
    }
    for (std::size_t i = 0; i < cells; ++i) {
      if (total[i] != 0) result.AddNodeWeight(packer->Unpack(i), total[i]);
    }
    merge_nanos += static_cast<std::uint64_t>(merge_watch.ElapsedMicros()) * 1000u;
    internal_counters::AddGroupingPath(/*dense=*/1, /*hash=*/0);
  } else {
    std::vector<AggregateGraph> parts(node_partition.num_chunks());
    {
      GT_SPAN("agg/nodes_scan", {{"rows", view.nodes.size()}, {"dense", 0}});
      node_partition.Run([&](std::size_t chunk, std::size_t begin, std::size_t end) {
        AggregateGraph& out = parts[chunk];
        node_chunk(begin, end, [&](const AttrTuple& tuple, Weight w) {
          out.AddNodeWeight(tuple, w);
        });
      });
    }
    GT_SPAN("agg/nodes_merge", {{"chunks", parts.size()}, {"dense", 0}});
    Stopwatch merge_watch;
    merge_watch.Start();
    result = std::move(parts.front());
    for (std::size_t c = 1; c < parts.size(); ++c) MergeInto(&result, parts[c]);
    merge_nanos += static_cast<std::uint64_t>(merge_watch.ElapsedMicros()) * 1000u;
    internal_counters::AddGroupingPath(/*dense=*/0, /*hash=*/1);
  }

  if (dense_edges) {
    const std::size_t cells = packer->cells();
    const std::size_t pairs = cells * cells;
    std::vector<std::vector<Weight>> parts(edge_partition.num_chunks());
    {
      GT_SPAN("agg/edges_scan", {{"rows", view.edges.size()}, {"dense", 1}});
      edge_partition.Run([&](std::size_t chunk, std::size_t begin, std::size_t end) {
        std::vector<Weight>& table = parts[chunk];
        table.assign(pairs, 0);
        edge_chunk(begin, end,
                   [&](const AttrTuple& src, const AttrTuple& dst, Weight w) {
                     table[packer->Pack(src) * cells + packer->Pack(dst)] += w;
                   });
      });
    }
    GT_SPAN("agg/edges_merge", {{"chunks", parts.size()}, {"dense", 1}});
    Stopwatch merge_watch;
    merge_watch.Start();
    std::vector<Weight>& total = parts.front();
    for (std::size_t c = 1; c < parts.size(); ++c) {
      for (std::size_t i = 0; i < pairs; ++i) total[i] += parts[c][i];
    }
    for (std::size_t i = 0; i < pairs; ++i) {
      if (total[i] != 0) {
        result.AddEdgeWeight(packer->Unpack(i / cells), packer->Unpack(i % cells),
                             total[i]);
      }
    }
    merge_nanos += static_cast<std::uint64_t>(merge_watch.ElapsedMicros()) * 1000u;
    internal_counters::AddGroupingPath(/*dense=*/1, /*hash=*/0);
  } else {
    std::vector<AggregateGraph> parts(edge_partition.num_chunks());
    {
      GT_SPAN("agg/edges_scan", {{"rows", view.edges.size()}, {"dense", 0}});
      edge_partition.Run([&](std::size_t chunk, std::size_t begin, std::size_t end) {
        AggregateGraph& out = parts[chunk];
        edge_chunk(begin, end,
                   [&](const AttrTuple& src, const AttrTuple& dst, Weight w) {
                     out.AddEdgeWeight(src, dst, w);
                   });
      });
    }
    GT_SPAN("agg/edges_merge", {{"chunks", parts.size()}, {"dense", 0}});
    Stopwatch merge_watch;
    merge_watch.Start();
    for (const AggregateGraph& part : parts) MergeInto(&result, part);
    merge_nanos += static_cast<std::uint64_t>(merge_watch.ElapsedMicros()) * 1000u;
    internal_counters::AddGroupingPath(/*dense=*/0, /*hash=*/1);
  }

  internal_counters::AddAggregation(
      view.nodes.size() + view.edges.size(),
      node_partition.num_chunks() + edge_partition.num_chunks(), merge_nanos);
  return result;
}

}  // namespace

void AggregateGraph::AddNodeWeight(const AttrTuple& tuple, Weight weight) {
  nodes_[tuple] += weight;
}

void AggregateGraph::AddEdgeWeight(const AttrTuple& src, const AttrTuple& dst,
                                   Weight weight) {
  edges_[AttrTuplePair{src, dst}] += weight;
}

Weight AggregateGraph::NodeWeight(const AttrTuple& tuple) const {
  auto it = nodes_.find(tuple);
  return it == nodes_.end() ? 0 : it->second;
}

Weight AggregateGraph::EdgeWeight(const AttrTuple& src, const AttrTuple& dst) const {
  auto it = edges_.find(AttrTuplePair{src, dst});
  return it == edges_.end() ? 0 : it->second;
}

Weight AggregateGraph::TotalNodeWeight() const {
  Weight total = 0;
  for (const auto& [tuple, weight] : nodes_) total += weight;
  return total;
}

Weight AggregateGraph::TotalEdgeWeight() const {
  Weight total = 0;
  for (const auto& [pair, weight] : edges_) total += weight;
  return total;
}

AttrTuple TupleAt(const TemporalGraph& graph, std::span<const AttrRef> attrs, NodeId n,
                  TimeId t) {
  AttrTuple tuple;
  for (const AttrRef& ref : attrs) tuple.Append(graph.ValueCodeAt(ref, n, t));
  return tuple;
}

AggregateGraph Aggregate(const TemporalGraph& graph, const GraphView& view,
                         std::span<const AttrRef> attrs,
                         const AggregationOptions& options) {
  GT_CHECK(!attrs.empty()) << "aggregation needs at least one attribute";
  return AggregateImpl(graph, view, attrs, options, /*allow_static_path=*/true);
}

AggregateGraph Aggregate(const TemporalGraph& graph, const GraphView& view,
                         std::span<const AttrRef> attrs, AggregationSemantics semantics) {
  AggregationOptions options;
  options.semantics = semantics;
  return Aggregate(graph, view, attrs, options);
}

GroupingResolution ResolveGrouping(const TemporalGraph& graph,
                                   std::span<const AttrRef> attrs,
                                   GroupingStrategy requested) {
  GroupingResolution resolution;
  if (requested == GroupingStrategy::kHash) return resolution;
  std::optional<DensePacker> packer =
      DensePacker::Create(graph, attrs, kDenseNodeCellsMax);
  resolution.dense_nodes = packer.has_value();
  resolution.dense_edges = resolution.dense_nodes &&
                           packer->cells() * packer->cells() <= kDenseEdgePairsMax;
  return resolution;
}

AggregateGraph AggregateGeneralPath(const TemporalGraph& graph, const GraphView& view,
                                    std::span<const AttrRef> attrs,
                                    const AggregationOptions& options) {
  GT_CHECK(!attrs.empty()) << "aggregation needs at least one attribute";
  AggregationOptions reference = options;
  reference.grouping = GroupingStrategy::kHash;  // the reference never hashes densely
  return AggregateImpl(graph, view, attrs, reference, /*allow_static_path=*/false);
}

namespace {

/// Canonical ordering of tuples by code sequence (size first).
bool TupleLessThan(const AttrTuple& a, const AttrTuple& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

}  // namespace

AggregateGraph SymmetrizeAggregate(const AggregateGraph& aggregate) {
  AggregateGraph result;
  for (const auto& [tuple, weight] : aggregate.nodes()) {
    result.AddNodeWeight(tuple, weight);
  }
  for (const auto& [pair, weight] : aggregate.edges()) {
    if (TupleLessThan(pair.dst, pair.src)) {
      result.AddEdgeWeight(pair.dst, pair.src, weight);
    } else {
      result.AddEdgeWeight(pair.src, pair.dst, weight);
    }
  }
  return result;
}

std::string FormatTuple(const TemporalGraph& graph, std::span<const AttrRef> attrs,
                        const AttrTuple& tuple) {
  GT_CHECK_EQ(attrs.size(), tuple.size()) << "tuple arity mismatch";
  std::string out;
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i != 0) out += ",";
    if (tuple[i] == kNoValue) {
      out += "∅";
    } else {
      out += graph.ValueName(attrs[i], tuple[i]);
    }
  }
  return out;
}

std::vector<AttrRef> ResolveAttributes(const TemporalGraph& graph,
                                       std::initializer_list<std::string_view> names) {
  std::vector<AttrRef> refs;
  refs.reserve(names.size());
  for (std::string_view name : names) {
    std::optional<AttrRef> ref = graph.FindAttribute(name);
    GT_CHECK(ref.has_value()) << "unknown attribute: " << name;
    refs.push_back(*ref);
  }
  return refs;
}

std::vector<AttrRef> ResolveAttributes(const TemporalGraph& graph,
                                       const std::vector<std::string>& names) {
  std::vector<AttrRef> refs;
  refs.reserve(names.size());
  for (const std::string& name : names) {
    std::optional<AttrRef> ref = graph.FindAttribute(name);
    GT_CHECK(ref.has_value()) << "unknown attribute: " << name;
    refs.push_back(*ref);
  }
  return refs;
}

}  // namespace graphtempo
