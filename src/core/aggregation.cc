#include "core/aggregation.h"

#include <algorithm>

namespace graphtempo {

namespace {

bool AllStatic(std::span<const AttrRef> attrs) {
  return std::all_of(attrs.begin(), attrs.end(), [](const AttrRef& ref) {
    return ref.kind == AttrRef::Kind::kStatic;
  });
}

/// Static attributes do not depend on time; evaluate once per node.
AttrTuple StaticTuple(const TemporalGraph& graph, std::span<const AttrRef> attrs,
                      NodeId n) {
  AttrTuple tuple;
  for (const AttrRef& ref : attrs) {
    tuple.Append(graph.static_attribute(ref.index).CodeAt(n));
  }
  return tuple;
}

/// Small per-entity "seen tuples" set. Entities carry very few distinct
/// tuples across an interval (bounded by interval length), so linear probing
/// over a stack vector beats a hash set.
class SeenTuples {
 public:
  void Clear() { tuples_.clear(); }

  /// Returns true if `tuple` was not seen before (and records it).
  bool Insert(const AttrTuple& tuple) {
    if (std::find(tuples_.begin(), tuples_.end(), tuple) != tuples_.end()) return false;
    tuples_.push_back(tuple);
    return true;
  }

 private:
  std::vector<AttrTuple> tuples_;
};

class SeenTuplePairs {
 public:
  void Clear() { pairs_.clear(); }

  bool Insert(const AttrTuplePair& pair) {
    if (std::find(pairs_.begin(), pairs_.end(), pair) != pairs_.end()) return false;
    pairs_.push_back(pair);
    return true;
  }

 private:
  std::vector<AttrTuplePair> pairs_;
};

/// General path of Algorithm 2: unpivot each node/edge over its appearance
/// times, deduplicate per entity for DIST, group-count into the result.
AggregateGraph AggregateGeneral(const TemporalGraph& graph, const GraphView& view,
                                std::span<const AttrRef> attrs,
                                const AggregationOptions& options) {
  AggregateGraph result;
  const bool distinct = options.semantics == AggregationSemantics::kDistinct;
  const NodeTimeFilter* filter = options.filter;

  SeenTuples seen;
  for (NodeId n : view.nodes) {
    seen.Clear();
    graph.node_presence().ForEachSetBitMasked(n, view.times.bits(), [&](std::size_t t_raw) {
      TimeId t = static_cast<TimeId>(t_raw);
      if (filter != nullptr && !(*filter)(n, t)) return;
      AttrTuple tuple = TupleAt(graph, attrs, n, t);
      if (distinct) {
        if (seen.Insert(tuple)) result.AddNodeWeight(tuple, 1);
      } else {
        result.AddNodeWeight(tuple, 1);
      }
    });
  }

  SeenTuplePairs seen_pairs;
  for (EdgeId e : view.edges) {
    seen_pairs.Clear();
    auto [src, dst] = graph.edge(e);
    graph.edge_presence().ForEachSetBitMasked(e, view.times.bits(), [&](std::size_t t_raw) {
      TimeId t = static_cast<TimeId>(t_raw);
      if (filter != nullptr && (!(*filter)(src, t) || !(*filter)(dst, t))) return;
      AttrTuplePair pair{TupleAt(graph, attrs, src, t), TupleAt(graph, attrs, dst, t)};
      if (distinct) {
        if (seen_pairs.Insert(pair)) result.AddEdgeWeight(pair.src, pair.dst, 1);
      } else {
        result.AddEdgeWeight(pair.src, pair.dst, 1);
      }
    });
  }
  return result;
}

/// Section 4.2 fast path: all aggregation attributes static and no filter.
/// DIST never looks at time at all; ALL weights each entity by the popcount
/// of its presence row under the view interval.
AggregateGraph AggregateAllStatic(const TemporalGraph& graph, const GraphView& view,
                                  std::span<const AttrRef> attrs,
                                  AggregationSemantics semantics) {
  AggregateGraph result;
  const bool distinct = semantics == AggregationSemantics::kDistinct;

  for (NodeId n : view.nodes) {
    AttrTuple tuple = StaticTuple(graph, attrs, n);
    Weight weight =
        distinct ? 1
                 : static_cast<Weight>(
                       graph.node_presence().RowCountMasked(n, view.times.bits()));
    if (weight > 0) result.AddNodeWeight(tuple, weight);
  }
  for (EdgeId e : view.edges) {
    auto [src, dst] = graph.edge(e);
    AttrTuple src_tuple = StaticTuple(graph, attrs, src);
    AttrTuple dst_tuple = StaticTuple(graph, attrs, dst);
    Weight weight =
        distinct ? 1
                 : static_cast<Weight>(
                       graph.edge_presence().RowCountMasked(e, view.times.bits()));
    if (weight > 0) result.AddEdgeWeight(src_tuple, dst_tuple, weight);
  }
  return result;
}

}  // namespace

void AggregateGraph::AddNodeWeight(const AttrTuple& tuple, Weight weight) {
  nodes_[tuple] += weight;
}

void AggregateGraph::AddEdgeWeight(const AttrTuple& src, const AttrTuple& dst,
                                   Weight weight) {
  edges_[AttrTuplePair{src, dst}] += weight;
}

Weight AggregateGraph::NodeWeight(const AttrTuple& tuple) const {
  auto it = nodes_.find(tuple);
  return it == nodes_.end() ? 0 : it->second;
}

Weight AggregateGraph::EdgeWeight(const AttrTuple& src, const AttrTuple& dst) const {
  auto it = edges_.find(AttrTuplePair{src, dst});
  return it == edges_.end() ? 0 : it->second;
}

Weight AggregateGraph::TotalNodeWeight() const {
  Weight total = 0;
  for (const auto& [tuple, weight] : nodes_) total += weight;
  return total;
}

Weight AggregateGraph::TotalEdgeWeight() const {
  Weight total = 0;
  for (const auto& [pair, weight] : edges_) total += weight;
  return total;
}

AttrTuple TupleAt(const TemporalGraph& graph, std::span<const AttrRef> attrs, NodeId n,
                  TimeId t) {
  AttrTuple tuple;
  for (const AttrRef& ref : attrs) tuple.Append(graph.ValueCodeAt(ref, n, t));
  return tuple;
}

AggregateGraph Aggregate(const TemporalGraph& graph, const GraphView& view,
                         std::span<const AttrRef> attrs,
                         const AggregationOptions& options) {
  GT_CHECK(!attrs.empty()) << "aggregation needs at least one attribute";
  if (options.filter == nullptr && AllStatic(attrs)) {
    return AggregateAllStatic(graph, view, attrs, options.semantics);
  }
  return AggregateGeneral(graph, view, attrs, options);
}

AggregateGraph Aggregate(const TemporalGraph& graph, const GraphView& view,
                         std::span<const AttrRef> attrs, AggregationSemantics semantics) {
  AggregationOptions options;
  options.semantics = semantics;
  return Aggregate(graph, view, attrs, options);
}

AggregateGraph AggregateGeneralPath(const TemporalGraph& graph, const GraphView& view,
                                    std::span<const AttrRef> attrs,
                                    const AggregationOptions& options) {
  GT_CHECK(!attrs.empty()) << "aggregation needs at least one attribute";
  return AggregateGeneral(graph, view, attrs, options);
}

namespace {

/// Canonical ordering of tuples by code sequence (size first).
bool TupleLessThan(const AttrTuple& a, const AttrTuple& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

}  // namespace

AggregateGraph SymmetrizeAggregate(const AggregateGraph& aggregate) {
  AggregateGraph result;
  for (const auto& [tuple, weight] : aggregate.nodes()) {
    result.AddNodeWeight(tuple, weight);
  }
  for (const auto& [pair, weight] : aggregate.edges()) {
    if (TupleLessThan(pair.dst, pair.src)) {
      result.AddEdgeWeight(pair.dst, pair.src, weight);
    } else {
      result.AddEdgeWeight(pair.src, pair.dst, weight);
    }
  }
  return result;
}

std::string FormatTuple(const TemporalGraph& graph, std::span<const AttrRef> attrs,
                        const AttrTuple& tuple) {
  GT_CHECK_EQ(attrs.size(), tuple.size()) << "tuple arity mismatch";
  std::string out;
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i != 0) out += ",";
    if (tuple[i] == kNoValue) {
      out += "∅";
    } else {
      out += graph.ValueName(attrs[i], tuple[i]);
    }
  }
  return out;
}

std::vector<AttrRef> ResolveAttributes(const TemporalGraph& graph,
                                       std::initializer_list<std::string_view> names) {
  std::vector<AttrRef> refs;
  refs.reserve(names.size());
  for (std::string_view name : names) {
    std::optional<AttrRef> ref = graph.FindAttribute(name);
    GT_CHECK(ref.has_value()) << "unknown attribute: " << name;
    refs.push_back(*ref);
  }
  return refs;
}

std::vector<AttrRef> ResolveAttributes(const TemporalGraph& graph,
                                       const std::vector<std::string>& names) {
  std::vector<AttrRef> refs;
  refs.reserve(names.size());
  for (const std::string& name : names) {
    std::optional<AttrRef> ref = graph.FindAttribute(name);
    GT_CHECK(ref.has_value()) << "unknown attribute: " << name;
    refs.push_back(*ref);
  }
  return refs;
}

}  // namespace graphtempo
