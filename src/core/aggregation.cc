#include "core/aggregation.h"

#include <algorithm>
#include <chrono>

#include "core/stats.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace graphtempo {

namespace {

/// Entities per chunk for the parallel Algorithm 2 paths. Each entity costs
/// an attribute lookup (or several) plus hash-map updates, so chunks earn
/// their dispatch overhead much earlier than the raw presence scans of the
/// operators (whose default is 2048).
constexpr std::size_t kAggMinPerChunk = 512;

/// Adds every node/edge weight of `src` into `dst`.
void MergeInto(AggregateGraph* dst, const AggregateGraph& src) {
  for (const auto& [tuple, weight] : src.nodes()) dst->AddNodeWeight(tuple, weight);
  for (const auto& [pair, weight] : src.edges()) {
    dst->AddEdgeWeight(pair.src, pair.dst, weight);
  }
}

/// Parallel skeleton shared by both Algorithm 2 paths: runs
/// `node_fn(out, begin, end)` over chunks of `view.nodes` (indices into the
/// view's node list) and `edge_fn(out, begin, end)` over chunks of
/// `view.edges`, each on the shared pool with one private `AggregateGraph`
/// per chunk, then merges the partials in ascending chunk order. Integer
/// COUNT weights make the sum order immaterial, and the chunk-ordered merge
/// additionally fixes the hash-map insertion order — so the result is
/// bit-identical at any thread count. Per-stage counters (rows scanned,
/// chunks run, merge time) feed `GetExecCounters`.
template <typename NodeFn, typename EdgeFn>
AggregateGraph AggregateChunked(const GraphView& view, const NodeFn& node_fn,
                                const EdgeFn& edge_fn) {
  ParallelPartition node_partition(view.nodes.size(), kAggMinPerChunk,
                                   /*alignment=*/1);
  ParallelPartition edge_partition(view.edges.size(), kAggMinPerChunk,
                                   /*alignment=*/1);

  std::vector<AggregateGraph> node_parts(node_partition.num_chunks());
  node_partition.Run([&](std::size_t chunk, std::size_t begin, std::size_t end) {
    node_fn(node_parts[chunk], begin, end);
  });
  std::vector<AggregateGraph> edge_parts(edge_partition.num_chunks());
  edge_partition.Run([&](std::size_t chunk, std::size_t begin, std::size_t end) {
    edge_fn(edge_parts[chunk], begin, end);
  });

  Stopwatch merge_watch;
  merge_watch.Start();
  AggregateGraph result = std::move(node_parts.front());
  for (std::size_t c = 1; c < node_parts.size(); ++c) MergeInto(&result, node_parts[c]);
  for (const AggregateGraph& part : edge_parts) MergeInto(&result, part);
  std::uint64_t merge_nanos =
      static_cast<std::uint64_t>(merge_watch.ElapsedMicros()) * 1000u;

  internal_counters::AddAggregation(
      view.nodes.size() + view.edges.size(),
      node_partition.num_chunks() + edge_partition.num_chunks(), merge_nanos);
  return result;
}

bool AllStatic(std::span<const AttrRef> attrs) {
  return std::all_of(attrs.begin(), attrs.end(), [](const AttrRef& ref) {
    return ref.kind == AttrRef::Kind::kStatic;
  });
}

/// Static attributes do not depend on time; evaluate once per node.
AttrTuple StaticTuple(const TemporalGraph& graph, std::span<const AttrRef> attrs,
                      NodeId n) {
  AttrTuple tuple;
  for (const AttrRef& ref : attrs) {
    tuple.Append(graph.static_attribute(ref.index).CodeAt(n));
  }
  return tuple;
}

/// Small per-entity "seen tuples" set. Entities carry very few distinct
/// tuples across an interval (bounded by interval length), so linear probing
/// over a stack vector beats a hash set.
class SeenTuples {
 public:
  void Clear() { tuples_.clear(); }

  /// Returns true if `tuple` was not seen before (and records it).
  bool Insert(const AttrTuple& tuple) {
    if (std::find(tuples_.begin(), tuples_.end(), tuple) != tuples_.end()) return false;
    tuples_.push_back(tuple);
    return true;
  }

 private:
  std::vector<AttrTuple> tuples_;
};

class SeenTuplePairs {
 public:
  void Clear() { pairs_.clear(); }

  bool Insert(const AttrTuplePair& pair) {
    if (std::find(pairs_.begin(), pairs_.end(), pair) != pairs_.end()) return false;
    pairs_.push_back(pair);
    return true;
  }

 private:
  std::vector<AttrTuplePair> pairs_;
};

/// General path of Algorithm 2: unpivot each node/edge over its appearance
/// times, deduplicate per entity for DIST, group-count into the result.
/// Entities are independent — the per-entity unpivot over time points and
/// the SeenTuples deduplication never cross entity boundaries — so the scan
/// chunks over the node/edge ranges with per-chunk partial maps (see
/// AggregateChunked for the determinism argument).
AggregateGraph AggregateGeneral(const TemporalGraph& graph, const GraphView& view,
                                std::span<const AttrRef> attrs,
                                const AggregationOptions& options) {
  const bool distinct = options.semantics == AggregationSemantics::kDistinct;
  const NodeTimeFilter* filter = options.filter;

  auto node_fn = [&](AggregateGraph& out, std::size_t begin, std::size_t end) {
    SeenTuples seen;  // chunk-local scratch, reused across the entity range
    for (std::size_t i = begin; i < end; ++i) {
      NodeId n = view.nodes[i];
      seen.Clear();
      graph.node_presence().ForEachSetBitMasked(
          n, view.times.bits(), [&](std::size_t t_raw) {
            TimeId t = static_cast<TimeId>(t_raw);
            if (filter != nullptr && !(*filter)(n, t)) return;
            AttrTuple tuple = TupleAt(graph, attrs, n, t);
            if (distinct) {
              if (seen.Insert(tuple)) out.AddNodeWeight(tuple, 1);
            } else {
              out.AddNodeWeight(tuple, 1);
            }
          });
    }
  };
  auto edge_fn = [&](AggregateGraph& out, std::size_t begin, std::size_t end) {
    SeenTuplePairs seen_pairs;
    for (std::size_t i = begin; i < end; ++i) {
      EdgeId e = view.edges[i];
      seen_pairs.Clear();
      auto [src, dst] = graph.edge(e);
      graph.edge_presence().ForEachSetBitMasked(
          e, view.times.bits(), [&](std::size_t t_raw) {
            TimeId t = static_cast<TimeId>(t_raw);
            if (filter != nullptr && (!(*filter)(src, t) || !(*filter)(dst, t))) return;
            AttrTuplePair pair{TupleAt(graph, attrs, src, t),
                               TupleAt(graph, attrs, dst, t)};
            if (distinct) {
              if (seen_pairs.Insert(pair)) out.AddEdgeWeight(pair.src, pair.dst, 1);
            } else {
              out.AddEdgeWeight(pair.src, pair.dst, 1);
            }
          });
    }
  };
  return AggregateChunked(view, node_fn, edge_fn);
}

/// Section 4.2 fast path: all aggregation attributes static and no filter.
/// DIST never looks at time at all; ALL weights each entity by the popcount
/// of its presence row under the view interval. Chunked like the general
/// path.
AggregateGraph AggregateAllStatic(const TemporalGraph& graph, const GraphView& view,
                                  std::span<const AttrRef> attrs,
                                  AggregationSemantics semantics) {
  const bool distinct = semantics == AggregationSemantics::kDistinct;

  auto node_fn = [&](AggregateGraph& out, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      NodeId n = view.nodes[i];
      AttrTuple tuple = StaticTuple(graph, attrs, n);
      Weight weight =
          distinct ? 1
                   : static_cast<Weight>(
                         graph.node_presence().RowCountMasked(n, view.times.bits()));
      if (weight > 0) out.AddNodeWeight(tuple, weight);
    }
  };
  auto edge_fn = [&](AggregateGraph& out, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      EdgeId e = view.edges[i];
      auto [src, dst] = graph.edge(e);
      AttrTuple src_tuple = StaticTuple(graph, attrs, src);
      AttrTuple dst_tuple = StaticTuple(graph, attrs, dst);
      Weight weight =
          distinct ? 1
                   : static_cast<Weight>(
                         graph.edge_presence().RowCountMasked(e, view.times.bits()));
      if (weight > 0) out.AddEdgeWeight(src_tuple, dst_tuple, weight);
    }
  };
  return AggregateChunked(view, node_fn, edge_fn);
}

}  // namespace

void AggregateGraph::AddNodeWeight(const AttrTuple& tuple, Weight weight) {
  nodes_[tuple] += weight;
}

void AggregateGraph::AddEdgeWeight(const AttrTuple& src, const AttrTuple& dst,
                                   Weight weight) {
  edges_[AttrTuplePair{src, dst}] += weight;
}

Weight AggregateGraph::NodeWeight(const AttrTuple& tuple) const {
  auto it = nodes_.find(tuple);
  return it == nodes_.end() ? 0 : it->second;
}

Weight AggregateGraph::EdgeWeight(const AttrTuple& src, const AttrTuple& dst) const {
  auto it = edges_.find(AttrTuplePair{src, dst});
  return it == edges_.end() ? 0 : it->second;
}

Weight AggregateGraph::TotalNodeWeight() const {
  Weight total = 0;
  for (const auto& [tuple, weight] : nodes_) total += weight;
  return total;
}

Weight AggregateGraph::TotalEdgeWeight() const {
  Weight total = 0;
  for (const auto& [pair, weight] : edges_) total += weight;
  return total;
}

AttrTuple TupleAt(const TemporalGraph& graph, std::span<const AttrRef> attrs, NodeId n,
                  TimeId t) {
  AttrTuple tuple;
  for (const AttrRef& ref : attrs) tuple.Append(graph.ValueCodeAt(ref, n, t));
  return tuple;
}

AggregateGraph Aggregate(const TemporalGraph& graph, const GraphView& view,
                         std::span<const AttrRef> attrs,
                         const AggregationOptions& options) {
  GT_CHECK(!attrs.empty()) << "aggregation needs at least one attribute";
  if (options.filter == nullptr && AllStatic(attrs)) {
    return AggregateAllStatic(graph, view, attrs, options.semantics);
  }
  return AggregateGeneral(graph, view, attrs, options);
}

AggregateGraph Aggregate(const TemporalGraph& graph, const GraphView& view,
                         std::span<const AttrRef> attrs, AggregationSemantics semantics) {
  AggregationOptions options;
  options.semantics = semantics;
  return Aggregate(graph, view, attrs, options);
}

AggregateGraph AggregateGeneralPath(const TemporalGraph& graph, const GraphView& view,
                                    std::span<const AttrRef> attrs,
                                    const AggregationOptions& options) {
  GT_CHECK(!attrs.empty()) << "aggregation needs at least one attribute";
  return AggregateGeneral(graph, view, attrs, options);
}

namespace {

/// Canonical ordering of tuples by code sequence (size first).
bool TupleLessThan(const AttrTuple& a, const AttrTuple& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

}  // namespace

AggregateGraph SymmetrizeAggregate(const AggregateGraph& aggregate) {
  AggregateGraph result;
  for (const auto& [tuple, weight] : aggregate.nodes()) {
    result.AddNodeWeight(tuple, weight);
  }
  for (const auto& [pair, weight] : aggregate.edges()) {
    if (TupleLessThan(pair.dst, pair.src)) {
      result.AddEdgeWeight(pair.dst, pair.src, weight);
    } else {
      result.AddEdgeWeight(pair.src, pair.dst, weight);
    }
  }
  return result;
}

std::string FormatTuple(const TemporalGraph& graph, std::span<const AttrRef> attrs,
                        const AttrTuple& tuple) {
  GT_CHECK_EQ(attrs.size(), tuple.size()) << "tuple arity mismatch";
  std::string out;
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i != 0) out += ",";
    if (tuple[i] == kNoValue) {
      out += "∅";
    } else {
      out += graph.ValueName(attrs[i], tuple[i]);
    }
  }
  return out;
}

std::vector<AttrRef> ResolveAttributes(const TemporalGraph& graph,
                                       std::initializer_list<std::string_view> names) {
  std::vector<AttrRef> refs;
  refs.reserve(names.size());
  for (std::string_view name : names) {
    std::optional<AttrRef> ref = graph.FindAttribute(name);
    GT_CHECK(ref.has_value()) << "unknown attribute: " << name;
    refs.push_back(*ref);
  }
  return refs;
}

std::vector<AttrRef> ResolveAttributes(const TemporalGraph& graph,
                                       const std::vector<std::string>& names) {
  std::vector<AttrRef> refs;
  refs.reserve(names.size());
  for (const std::string& name : names) {
    std::optional<AttrRef> ref = graph.FindAttribute(name);
    GT_CHECK(ref.has_value()) << "unknown attribute: " << name;
    refs.push_back(*ref);
  }
  return refs;
}

}  // namespace graphtempo
