#include "core/measures.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace graphtempo {

namespace {

double ParseNumeric(const std::string& text) {
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  GT_CHECK(end != text.c_str() && *end == '\0')
      << "measure attribute value is not numeric: '" << text << "'";
  return value;
}

/// Streaming accumulator for one group.
struct Accumulator {
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::int64_t samples = 0;

  void Add(double value) {
    if (samples == 0) {
      min = max = value;
    } else {
      min = std::min(min, value);
      max = std::max(max, value);
    }
    sum += value;
    ++samples;
  }

  MeasureValue Finish(MeasureFunction function) const {
    MeasureValue result;
    result.samples = samples;
    switch (function) {
      case MeasureFunction::kSum:
        result.value = sum;
        break;
      case MeasureFunction::kMin:
        result.value = min;
        break;
      case MeasureFunction::kMax:
        result.value = max;
        break;
      case MeasureFunction::kAvg:
        result.value = samples == 0 ? 0.0 : sum / static_cast<double>(samples);
        break;
      case MeasureFunction::kCount:
        result.value = static_cast<double>(samples);
        break;
    }
    return result;
  }
};

}  // namespace

const char* MeasureFunctionName(MeasureFunction function) {
  switch (function) {
    case MeasureFunction::kSum:
      return "sum";
    case MeasureFunction::kMin:
      return "min";
    case MeasureFunction::kMax:
      return "max";
    case MeasureFunction::kAvg:
      return "avg";
    case MeasureFunction::kCount:
      return "count";
  }
  GT_CHECK(false) << "invalid measure function";
  __builtin_unreachable();
}

NodeMeasureMap AggregateNodeMeasure(const TemporalGraph& graph, const GraphView& view,
                                    std::span<const AttrRef> group_attrs,
                                    AttrRef measure_attr, MeasureFunction function) {
  GT_CHECK(!group_attrs.empty()) << "measure aggregation needs grouping attributes";
  std::unordered_map<AttrTuple, Accumulator, AttrTupleHash> groups;
  for (NodeId n : view.nodes) {
    graph.node_presence().ForEachSetBitMasked(n, view.times.bits(), [&](std::size_t t_raw) {
      TimeId t = static_cast<TimeId>(t_raw);
      AttrValueId code = graph.ValueCodeAt(measure_attr, n, t);
      if (code == kNoValue) return;  // no observation at this appearance
      groups[TupleAt(graph, group_attrs, n, t)].Add(
          ParseNumeric(graph.ValueName(measure_attr, code)));
    });
  }
  NodeMeasureMap result;
  result.reserve(groups.size());
  for (const auto& [tuple, accumulator] : groups) {
    result.emplace(tuple, accumulator.Finish(function));
  }
  return result;
}

EdgeMeasureMap AggregateEdgeMeasure(const TemporalGraph& graph, const GraphView& view,
                                    std::span<const AttrRef> group_attrs,
                                    EdgeAttrRef measure_attr, MeasureFunction function) {
  GT_CHECK(!group_attrs.empty()) << "measure aggregation needs grouping attributes";
  std::unordered_map<AttrTuplePair, Accumulator, AttrTuplePairHash> groups;
  for (EdgeId e : view.edges) {
    auto [src, dst] = graph.edge(e);
    graph.edge_presence().ForEachSetBitMasked(e, view.times.bits(), [&](std::size_t t_raw) {
      TimeId t = static_cast<TimeId>(t_raw);
      AttrValueId code = graph.EdgeValueCodeAt(measure_attr, e, t);
      if (code == kNoValue) return;
      AttrTuplePair pair{TupleAt(graph, group_attrs, src, t),
                         TupleAt(graph, group_attrs, dst, t)};
      groups[pair].Add(ParseNumeric(graph.EdgeValueName(measure_attr, code)));
    });
  }
  EdgeMeasureMap result;
  result.reserve(groups.size());
  for (const auto& [pair, accumulator] : groups) {
    result.emplace(pair, accumulator.Finish(function));
  }
  return result;
}

}  // namespace graphtempo
