#include "core/stats.h"

#include <algorithm>

#include "accel/backend.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/parallel.h"

namespace graphtempo {

SnapshotStats ComputeSnapshotStats(const TemporalGraph& graph, TimeId t) {
  GT_CHECK_LT(t, graph.num_times()) << "time out of range";
  SnapshotStats stats;
  stats.nodes = graph.NodesAt(t);
  stats.edges = graph.EdgesAt(t);
  if (stats.nodes > 0) {
    stats.avg_out_degree =
        static_cast<double>(stats.edges) / static_cast<double>(stats.nodes);
  }
  if (stats.nodes > 1) {
    stats.density = static_cast<double>(stats.edges) /
                    (static_cast<double>(stats.nodes) *
                     static_cast<double>(stats.nodes - 1));
  }
  std::vector<std::size_t> out_degree(graph.num_nodes(), 0);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (!graph.EdgePresentAt(e, t)) continue;
    ++out_degree[graph.edge(e).first];
  }
  for (std::size_t degree : out_degree) {
    stats.max_out_degree = std::max(stats.max_out_degree, degree);
  }
  return stats;
}

double SnapshotJaccard(const TemporalGraph& graph, TimeId t1, TimeId t2,
                       EntityKind kind) {
  GT_CHECK_LT(t1, graph.num_times()) << "time out of range";
  GT_CHECK_LT(t2, graph.num_times()) << "time out of range";
  const BitMatrix& presence =
      kind == EntityKind::kNodes ? graph.node_presence() : graph.edge_presence();
  std::size_t both = 0;
  std::size_t either = 0;
  for (std::size_t row = 0; row < presence.rows(); ++row) {
    bool a = presence.Test(row, t1);
    bool b = presence.Test(row, t2);
    both += a && b;
    either += a || b;
  }
  return either == 0 ? 0.0 : static_cast<double>(both) / static_cast<double>(either);
}

std::map<std::size_t, std::size_t> OutDegreeHistogram(const TemporalGraph& graph,
                                                      TimeId t) {
  GT_CHECK_LT(t, graph.num_times()) << "time out of range";
  std::vector<std::size_t> out_degree(graph.num_nodes(), 0);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (!graph.EdgePresentAt(e, t)) continue;
    ++out_degree[graph.edge(e).first];
  }
  std::map<std::size_t, std::size_t> histogram;
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    if (!graph.NodePresentAt(n, t)) continue;
    ++histogram[out_degree[n]];
  }
  return histogram;
}

std::map<std::size_t, std::size_t> LifespanHistogram(const TemporalGraph& graph,
                                                     EntityKind kind) {
  const BitMatrix& presence =
      kind == EntityKind::kNodes ? graph.node_presence() : graph.edge_presence();
  std::map<std::size_t, std::size_t> histogram;
  for (std::size_t row = 0; row < presence.rows(); ++row) {
    std::size_t lifespan = presence.RowCount(row);
    if (lifespan > 0) ++histogram[lifespan];
  }
  return histogram;
}

std::map<std::string, std::size_t> AttributeDistribution(const TemporalGraph& graph,
                                                         AttrRef attr, TimeId t) {
  GT_CHECK_LT(t, graph.num_times()) << "time out of range";
  std::map<std::string, std::size_t> distribution;
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    if (!graph.NodePresentAt(n, t)) continue;
    AttrValueId code = graph.ValueCodeAt(attr, n, t);
    if (code == kNoValue) continue;
    ++distribution[graph.ValueName(attr, code)];
  }
  return distribution;
}

// --- execution counters -------------------------------------------------------
//
// Since the observability layer landed, the exec counters are a *view* over
// the unified obs::Registry (docs/OBSERVABILITY.md). The accumulation hooks
// update registry counters through cached references (lock-free), and
// GetExecCounters samples every field — including the pool's, which used to
// live in a second source inside util/parallel — from ONE registry snapshot,
// so a concurrent ResetExecCounters can never tear a `--perf` line in half.

namespace {

obs::Counter& CounterRef(const char* name) {
  return obs::Registry::Instance().GetCounter(name);
}

}  // namespace

ExecCounters GetExecCounters() {
  // One locked snapshot: either entirely pre-reset or entirely post-reset.
  obs::MetricsSnapshot snapshot = obs::Registry::Instance().Snapshot();
  ExecCounters counters;
  counters.backend = accel::ActiveBackendName();
  counters.agg_rows_scanned = snapshot.CounterValue("agg/rows_scanned");
  counters.agg_chunks = snapshot.CounterValue("agg/chunks");
  counters.agg_merge_nanos = snapshot.CounterValue("agg/merge_nanos");
  counters.explore_evaluations = snapshot.CounterValue("explore/evaluations");
  counters.kernel_words = snapshot.CounterValue("kernel/words");
  counters.interval_index_hits = snapshot.CounterValue("interval_index/hits");
  counters.interval_index_misses = snapshot.CounterValue("interval_index/misses");
  counters.agg_dense_groups = snapshot.CounterValue("agg/dense_groups");
  counters.agg_hash_groups = snapshot.CounterValue("agg/hash_groups");
  counters.pool_jobs = snapshot.CounterValue("pool/jobs");
  counters.pool_chunks = snapshot.CounterValue("pool/chunks");
  return counters;
}

void ResetExecCounters() {
  // Zeroes every registry metric (counters and histograms) in one locked
  // generation — the pool's included, since util/parallel records into the
  // same registry.
  obs::Registry::Instance().ResetAll();
}

namespace internal_counters {

void AddAggregation(std::uint64_t rows, std::uint64_t chunks,
                    std::uint64_t merge_nanos) {
  static obs::Counter& agg_rows = CounterRef("agg/rows_scanned");
  static obs::Counter& agg_chunks = CounterRef("agg/chunks");
  static obs::Counter& agg_merge = CounterRef("agg/merge_nanos");
  agg_rows.Add(rows);
  agg_chunks.Add(chunks);
  agg_merge.Add(merge_nanos);
}

void AddExploreEvaluations(std::uint64_t evaluations) {
  static obs::Counter& counter = CounterRef("explore/evaluations");
  counter.Add(evaluations);
}

void AddKernelWords(std::uint64_t words) {
  static obs::Counter& counter = CounterRef("kernel/words");
  counter.Add(words);
  // Mirror into the request context (if one is bound) so a slow-query record
  // can attribute kernel work to the specific query, pool workers included.
  if (obs::RequestContext* context = obs::CurrentRequestContext()) {
    context->kernel_words.fetch_add(words, std::memory_order_relaxed);
  }
}

void AddIntervalIndex(std::uint64_t hits, std::uint64_t misses) {
  static obs::Counter& hit_counter = CounterRef("interval_index/hits");
  static obs::Counter& miss_counter = CounterRef("interval_index/misses");
  if (hits != 0) hit_counter.Add(hits);
  if (misses != 0) miss_counter.Add(misses);
}

void AddGroupingPath(std::uint64_t dense, std::uint64_t hash) {
  static obs::Counter& dense_counter = CounterRef("agg/dense_groups");
  static obs::Counter& hash_counter = CounterRef("agg/hash_groups");
  if (dense != 0) dense_counter.Add(dense);
  if (hash != 0) hash_counter.Add(hash);
}

}  // namespace internal_counters

}  // namespace graphtempo
