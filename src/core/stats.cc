#include "core/stats.h"

#include <algorithm>
#include <atomic>

#include "util/check.h"
#include "util/parallel.h"

namespace graphtempo {

SnapshotStats ComputeSnapshotStats(const TemporalGraph& graph, TimeId t) {
  GT_CHECK_LT(t, graph.num_times()) << "time out of range";
  SnapshotStats stats;
  stats.nodes = graph.NodesAt(t);
  stats.edges = graph.EdgesAt(t);
  if (stats.nodes > 0) {
    stats.avg_out_degree =
        static_cast<double>(stats.edges) / static_cast<double>(stats.nodes);
  }
  if (stats.nodes > 1) {
    stats.density = static_cast<double>(stats.edges) /
                    (static_cast<double>(stats.nodes) *
                     static_cast<double>(stats.nodes - 1));
  }
  std::vector<std::size_t> out_degree(graph.num_nodes(), 0);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (!graph.EdgePresentAt(e, t)) continue;
    ++out_degree[graph.edge(e).first];
  }
  for (std::size_t degree : out_degree) {
    stats.max_out_degree = std::max(stats.max_out_degree, degree);
  }
  return stats;
}

double SnapshotJaccard(const TemporalGraph& graph, TimeId t1, TimeId t2,
                       EntityKind kind) {
  GT_CHECK_LT(t1, graph.num_times()) << "time out of range";
  GT_CHECK_LT(t2, graph.num_times()) << "time out of range";
  const BitMatrix& presence =
      kind == EntityKind::kNodes ? graph.node_presence() : graph.edge_presence();
  std::size_t both = 0;
  std::size_t either = 0;
  for (std::size_t row = 0; row < presence.rows(); ++row) {
    bool a = presence.Test(row, t1);
    bool b = presence.Test(row, t2);
    both += a && b;
    either += a || b;
  }
  return either == 0 ? 0.0 : static_cast<double>(both) / static_cast<double>(either);
}

std::map<std::size_t, std::size_t> OutDegreeHistogram(const TemporalGraph& graph,
                                                      TimeId t) {
  GT_CHECK_LT(t, graph.num_times()) << "time out of range";
  std::vector<std::size_t> out_degree(graph.num_nodes(), 0);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (!graph.EdgePresentAt(e, t)) continue;
    ++out_degree[graph.edge(e).first];
  }
  std::map<std::size_t, std::size_t> histogram;
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    if (!graph.NodePresentAt(n, t)) continue;
    ++histogram[out_degree[n]];
  }
  return histogram;
}

std::map<std::size_t, std::size_t> LifespanHistogram(const TemporalGraph& graph,
                                                     EntityKind kind) {
  const BitMatrix& presence =
      kind == EntityKind::kNodes ? graph.node_presence() : graph.edge_presence();
  std::map<std::size_t, std::size_t> histogram;
  for (std::size_t row = 0; row < presence.rows(); ++row) {
    std::size_t lifespan = presence.RowCount(row);
    if (lifespan > 0) ++histogram[lifespan];
  }
  return histogram;
}

std::map<std::string, std::size_t> AttributeDistribution(const TemporalGraph& graph,
                                                         AttrRef attr, TimeId t) {
  GT_CHECK_LT(t, graph.num_times()) << "time out of range";
  std::map<std::string, std::size_t> distribution;
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    if (!graph.NodePresentAt(n, t)) continue;
    AttrValueId code = graph.ValueCodeAt(attr, n, t);
    if (code == kNoValue) continue;
    ++distribution[graph.ValueName(attr, code)];
  }
  return distribution;
}

// --- execution counters -------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_agg_rows{0};
std::atomic<std::uint64_t> g_agg_chunks{0};
std::atomic<std::uint64_t> g_agg_merge_nanos{0};
std::atomic<std::uint64_t> g_explore_evaluations{0};
std::atomic<std::uint64_t> g_kernel_words{0};
std::atomic<std::uint64_t> g_interval_hits{0};
std::atomic<std::uint64_t> g_interval_misses{0};
std::atomic<std::uint64_t> g_agg_dense_groups{0};
std::atomic<std::uint64_t> g_agg_hash_groups{0};

}  // namespace

ExecCounters GetExecCounters() {
  ExecCounters counters;
  counters.agg_rows_scanned = g_agg_rows.load(std::memory_order_relaxed);
  counters.agg_chunks = g_agg_chunks.load(std::memory_order_relaxed);
  counters.agg_merge_nanos = g_agg_merge_nanos.load(std::memory_order_relaxed);
  counters.explore_evaluations = g_explore_evaluations.load(std::memory_order_relaxed);
  counters.kernel_words = g_kernel_words.load(std::memory_order_relaxed);
  counters.interval_index_hits = g_interval_hits.load(std::memory_order_relaxed);
  counters.interval_index_misses = g_interval_misses.load(std::memory_order_relaxed);
  counters.agg_dense_groups = g_agg_dense_groups.load(std::memory_order_relaxed);
  counters.agg_hash_groups = g_agg_hash_groups.load(std::memory_order_relaxed);
  PoolStats pool = GetPoolStats();
  counters.pool_jobs = pool.jobs;
  counters.pool_chunks = pool.chunks;
  return counters;
}

void ResetExecCounters() {
  g_agg_rows.store(0, std::memory_order_relaxed);
  g_agg_chunks.store(0, std::memory_order_relaxed);
  g_agg_merge_nanos.store(0, std::memory_order_relaxed);
  g_explore_evaluations.store(0, std::memory_order_relaxed);
  g_kernel_words.store(0, std::memory_order_relaxed);
  g_interval_hits.store(0, std::memory_order_relaxed);
  g_interval_misses.store(0, std::memory_order_relaxed);
  g_agg_dense_groups.store(0, std::memory_order_relaxed);
  g_agg_hash_groups.store(0, std::memory_order_relaxed);
  ResetPoolStats();
}

namespace internal_counters {

void AddAggregation(std::uint64_t rows, std::uint64_t chunks,
                    std::uint64_t merge_nanos) {
  g_agg_rows.fetch_add(rows, std::memory_order_relaxed);
  g_agg_chunks.fetch_add(chunks, std::memory_order_relaxed);
  g_agg_merge_nanos.fetch_add(merge_nanos, std::memory_order_relaxed);
}

void AddExploreEvaluations(std::uint64_t evaluations) {
  g_explore_evaluations.fetch_add(evaluations, std::memory_order_relaxed);
}

void AddKernelWords(std::uint64_t words) {
  g_kernel_words.fetch_add(words, std::memory_order_relaxed);
}

void AddIntervalIndex(std::uint64_t hits, std::uint64_t misses) {
  if (hits != 0) g_interval_hits.fetch_add(hits, std::memory_order_relaxed);
  if (misses != 0) g_interval_misses.fetch_add(misses, std::memory_order_relaxed);
}

void AddGroupingPath(std::uint64_t dense, std::uint64_t hash) {
  if (dense != 0) g_agg_dense_groups.fetch_add(dense, std::memory_order_relaxed);
  if (hash != 0) g_agg_hash_groups.fetch_add(hash, std::memory_order_relaxed);
}

}  // namespace internal_counters

}  // namespace graphtempo
