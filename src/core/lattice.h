#ifndef GRAPHTEMPO_CORE_LATTICE_H_
#define GRAPHTEMPO_CORE_LATTICE_H_

#include <optional>
#include <vector>

#include "core/exploration.h"
#include "core/interval.h"

/// \file
/// The interval semi-lattice of Section 3.1, made explicit.
///
/// The elementary intervals T₁ … Tₙ generate a powerset lattice; combining
/// only *successive* intervals restricts it to the sub-lattice of contiguous
/// ranges, which is what both exploration strategies walk. `IntervalLattice`
/// exposes that structure — levels, children (the one-step extensions used by
/// U-Explore/I-Explore) and parents — and enumerates the adjacent interval
/// *pairs* that form the exploration candidate space.
///
/// On top of it, `ExploreBothEnds` implements the search the paper points at
/// but leaves open ("when we extend both T_new and T_old, difference is
/// non-monotonous irrespective of the semantics"): an exhaustive sweep over
/// every adjacent pair of contiguous ranges, returning the pairs that are
/// minimal (union semantics) or maximal (intersection semantics) under
/// component-wise interval containment. No pruning is possible here — which
/// is exactly why the paper's single-reference-point strategies matter — but
/// the exhaustive result is valuable as ground truth and for offline use.

namespace graphtempo {

class IntervalLattice {
 public:
  /// Lattice over `domain_size` elementary time points; GT_CHECKs ≥ 1.
  explicit IntervalLattice(std::size_t domain_size);

  std::size_t domain_size() const { return domain_size_; }

  /// Number of levels; level ℓ holds the ranges of length ℓ+1.
  std::size_t num_levels() const { return domain_size_; }

  /// All contiguous ranges of length `level + 1`, ascending by start.
  std::vector<TimeRange> RangesAtLevel(std::size_t level) const;

  /// Every contiguous range, by level then start: n(n+1)/2 ranges.
  std::vector<TimeRange> AllRanges() const;

  /// One-step extensions (the children in the semi-lattice): extend the
  /// range by one elementary interval to the left / right, if it fits.
  std::optional<TimeRange> ExtendLeft(TimeRange range) const;
  std::optional<TimeRange> ExtendRight(TimeRange range) const;

  /// One-step restrictions (the parents): drop the leftmost / rightmost
  /// elementary interval, if the range is longer than one point.
  std::optional<TimeRange> ShrinkLeft(TimeRange range) const;
  std::optional<TimeRange> ShrinkRight(TimeRange range) const;

  /// Every adjacent pair (old, new) of contiguous ranges with
  /// old.last + 1 == new.first — the full exploration candidate space.
  /// Θ(n³) pairs.
  std::vector<std::pair<TimeRange, TimeRange>> AdjacentPairs() const;

 private:
  void CheckRange(TimeRange range) const;

  std::size_t domain_size_;
};

/// Component-wise containment of interval pairs: old ⊆ old' and new ⊆ new'.
bool PairContainedIn(const std::pair<TimeRange, TimeRange>& inner,
                     const std::pair<TimeRange, TimeRange>& outer);

/// Exhaustive both-ends exploration (see the file comment). With
/// `spec.semantics == kUnion` returns the qualifying pairs that have no
/// qualifying proper sub-pair (minimal); with `kIntersection` those with no
/// qualifying proper super-pair (maximal). `spec.reference` is ignored —
/// both ends vary. The `evaluations` field counts every candidate, making
/// the cost of forgoing monotonicity visible.
ExplorationResult ExploreBothEnds(const TemporalGraph& graph,
                                  const ExplorationSpec& spec);

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_LATTICE_H_
