#ifndef GRAPHTEMPO_CORE_OPERATORS_H_
#define GRAPHTEMPO_CORE_OPERATORS_H_

#include <vector>

#include "core/interval.h"
#include "core/temporal_graph.h"

/// \file
/// The temporal operators of Section 2.1: project (Def 2.2), union (Def 2.3,
/// Algorithm 1), intersection (Def 2.4) and difference (Def 2.5).
///
/// Each operator returns a `GraphView`: the ids of the selected nodes and
/// edges plus the interval over which the result graph is defined. A view is
/// a restriction of the parent graph's labeled arrays, not a copy — exactly
/// the "restrict the input tables to the columns of T₁ ∪ T₂" step of
/// Algorithm 1 — and is the input that attribute aggregation consumes.

namespace graphtempo {

/// The result of a temporal operator: a subgraph of a `TemporalGraph`
/// restricted to an evaluation interval.
struct GraphView {
  /// Node ids in ascending order.
  std::vector<NodeId> nodes;

  /// Edge ids in ascending order.
  std::vector<EdgeId> edges;

  /// The time points over which the result is defined. Attribute instances of
  /// a node u are collected over τu(u) ∩ times (Definitions 2.3–2.5: T₁ ∪ T₂
  /// for union/intersection, T₁ for the difference T₁ − T₂).
  IntervalSet times;

  std::size_t NodeCount() const { return nodes.size(); }
  std::size_t EdgeCount() const { return edges.size(); }
};

/// Supplies presence-index interval folds to the operators. Every operator
/// bottoms out in "OR/AND the columns selected by this time mask" — routing
/// those folds through a provider lets a batch executor memoize folds shared
/// by concurrent queries (engine/batch.h) while single queries pay nothing:
/// the provider-less overloads below use a transient provider that simply
/// forwards to the index. Returned references stay valid until the provider
/// is destroyed.
class PresenceFoldProvider {
 public:
  virtual ~PresenceFoldProvider() = default;

  /// `index.UnionOver(times)`, possibly memoized.
  virtual const DynamicBitset& UnionFold(const PresenceIndex& index,
                                         const DynamicBitset& times) = 0;

  /// `index.IntersectionOver(times)`, possibly memoized.
  virtual const DynamicBitset& IntersectionFold(const PresenceIndex& index,
                                                const DynamicBitset& times) = 0;
};

/// Time projection (Def 2.2): nodes/edges that exist throughout T₁ (T₁ ⊆ τ),
/// defined on T₁. For a single time point this is the snapshot at that point.
GraphView Project(const TemporalGraph& graph, const IntervalSet& t1);
GraphView Project(const TemporalGraph& graph, const IntervalSet& t1,
                  PresenceFoldProvider& folds);

/// Union (Def 2.3): entities existing at ≥1 time point of T₁ or of T₂,
/// defined on T₁ ∪ T₂.
GraphView UnionOp(const TemporalGraph& graph, const IntervalSet& t1,
                  const IntervalSet& t2);
GraphView UnionOp(const TemporalGraph& graph, const IntervalSet& t1,
                  const IntervalSet& t2, PresenceFoldProvider& folds);

/// Intersection (Def 2.4): entities existing at ≥1 time point of T₁ *and* ≥1
/// time point of T₂, defined on T₁ ∪ T₂. This is the stable part of the graph.
GraphView IntersectionOp(const TemporalGraph& graph, const IntervalSet& t1,
                         const IntervalSet& t2);
GraphView IntersectionOp(const TemporalGraph& graph, const IntervalSet& t1,
                         const IntervalSet& t2, PresenceFoldProvider& folds);

/// Difference T₁ − T₂ (Def 2.5): edges existing in T₁ but at no time of T₂;
/// nodes existing in T₁ that either vanish in T₂ or are endpoints of a
/// difference edge. Defined on T₁. Not symmetric: with T₁ preceding T₂ this
/// captures deletions (shrinkage); swap the arguments for additions (growth).
GraphView DifferenceOp(const TemporalGraph& graph, const IntervalSet& t1,
                       const IntervalSet& t2);
GraphView DifferenceOp(const TemporalGraph& graph, const IntervalSet& t1,
                       const IntervalSet& t2, PresenceFoldProvider& folds);

// --- Row-scan reference path ---------------------------------------------------
//
// The four operators above run on the column-major presence index as pure
// bitset algebra (docs/KERNELS.md). The *RowScan variants below are the
// original entity-at-a-time implementations over the row-major BitMatrix:
// one masked-row predicate per node/edge. They are kept alive as the
// reference the kernels are differentially tested against
// (tests/operator_kernel_test.cc) and as the ablation baseline of the
// fig5/fig6/fig7 benchmark `kernel` JSON fields. Results are identical to
// the kernel path, bit for bit, at any thread count.

GraphView ProjectRowScan(const TemporalGraph& graph, const IntervalSet& t1);
GraphView UnionOpRowScan(const TemporalGraph& graph, const IntervalSet& t1,
                         const IntervalSet& t2);
GraphView IntersectionOpRowScan(const TemporalGraph& graph, const IntervalSet& t1,
                                const IntervalSet& t2);
GraphView DifferenceOpRowScan(const TemporalGraph& graph, const IntervalSet& t1,
                              const IntervalSet& t2);

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_OPERATORS_H_
