#ifndef GRAPHTEMPO_CORE_EXPLORATION_H_
#define GRAPHTEMPO_CORE_EXPLORATION_H_

#include <optional>
#include <vector>

#include "core/aggregation.h"
#include "core/evolution.h"

/// \file
/// Evolution exploration (Section 3): find pairs of intervals between which
/// at least k events of a given type (stability / growth / shrinkage)
/// occurred.
///
/// Candidate interval pairs are built from the semi-lattice of contiguous
/// time ranges: one end of the pair is a fixed single time point (the
/// *reference*), the other end is extended one base time point at a time.
/// The extended side combines its points with either
///
///   * **union semantics** — an entity belongs to the side if it exists at ≥1
///     of its points (the relaxed view; the goal is then *minimal* pairs,
///     Def 3.4), or
///   * **intersection semantics** — the entity must exist at *every* point
///     (the strict view; the goal is then *maximal* pairs, Def 3.5).
///
/// The engine implements U-Explore and I-Explore with the monotonicity
/// pruning of Lemmas 3.3/3.9/3.10 and covers all twelve rows of the paper's
/// Table 1, including the degenerate rows where monotonicity makes a
/// single-level scan ("t.p. / t.p." rows) or a longest-interval check
/// ("longest interval" rows) sufficient.
///
/// The monotonicity lemmas — and therefore the pruning — hold for raw entity
/// counts and for selectors over *static* attributes (the paper's evaluation
/// uses gender, a static attribute). A tuple-filtered selector over a
/// time-varying attribute can be non-monotone, because extending an interval
/// also extends the attribute-collection window of surviving entities; use
/// `ExploreNaive` for such selectors if exactness matters.

namespace graphtempo {

/// How the extended side of a pair combines its time points.
enum class ExtensionSemantics { kUnion, kIntersection };

/// Which side of the pair stays a single time point.
enum class ReferenceEnd { kOld, kNew };

/// What to count as an "event" inside the event graph's aggregation.
struct EntitySelector {
  enum class Kind { kNodes, kEdges };

  Kind kind = Kind::kEdges;

  /// Aggregation attributes. May be empty, in which case raw entities are
  /// counted and no tuple filter may be set.
  std::vector<AttrRef> attrs;

  AggregationSemantics semantics = AggregationSemantics::kDistinct;

  /// For kind == kNodes: restrict to one aggregate node (e.g. gender "f").
  std::optional<AttrTuple> node_tuple;

  /// For kind == kEdges: restrict to one aggregate edge (e.g. f → f).
  std::optional<AttrTuple> src_tuple;
  std::optional<AttrTuple> dst_tuple;
};

/// A qualifying pair of intervals: old side, new side, and the event count.
struct IntervalPair {
  TimeRange old_range;
  TimeRange new_range;
  Weight count = 0;

  bool operator==(const IntervalPair&) const = default;
};

struct ExplorationSpec {
  EventType event = EventType::kStability;

  /// kUnion searches for minimal pairs; kIntersection for maximal pairs.
  ExtensionSemantics semantics = ExtensionSemantics::kUnion;

  /// Which end is the fixed reference time point. The other side is extended.
  ReferenceEnd reference = ReferenceEnd::kNew;

  EntitySelector selector;

  /// The event-count threshold k.
  Weight k = 1;
};

struct ExplorationResult {
  /// Qualifying minimal (union semantics) or maximal (intersection semantics)
  /// interval pairs, ordered by reference time point.
  std::vector<IntervalPair> pairs;

  /// Number of candidate pairs whose event count was evaluated — the cost
  /// metric that shows the monotonicity pruning at work.
  std::size_t evaluations = 0;
};

/// Counts the events of `spec.event` between `old_range` and `new_range`,
/// interpreting multi-point sides with `semantics`. This is `result(G)` of
/// the paper for one candidate pair; exposed for tests and examples.
///
/// Selectors over static attributes with DIST semantics take a fast path: a
/// per-entity tuple-match table replaces the per-candidate hash aggregation
/// (the explorers additionally hoist that table across all candidate pairs
/// of a run). Other selectors aggregate per candidate.
Weight CountEvents(const TemporalGraph& graph, TimeRange old_range, TimeRange new_range,
                   ExtensionSemantics semantics, EventType event,
                   const EntitySelector& selector);

/// Reference implementation of CountEvents without the static-selector fast
/// path: always builds the event aggregate. Used by tests to pin the fast
/// path and by the ablation benchmark.
Weight CountEventsGeneralPath(const TemporalGraph& graph, TimeRange old_range,
                              TimeRange new_range, ExtensionSemantics semantics,
                              EventType event, const EntitySelector& selector);

/// Runs U-Explore (spec.semantics == kUnion) or I-Explore (kIntersection)
/// over every admissible reference point.
ExplorationResult Explore(const TemporalGraph& graph, const ExplorationSpec& spec);

/// Direction of `result(G)` as the extended side grows, per Lemmas 3.3, 3.9
/// and 3.10. Exposed so tests can sweep the property directly.
bool IsMonotonicallyIncreasing(EventType event, ReferenceEnd reference,
                               ExtensionSemantics semantics);

/// Threshold initialization (Section 3.5): the minimum and maximum event
/// weight over all consecutive time-point pairs (t, t+1). Start from
/// `max_weight` and decrease for monotonically decreasing configurations;
/// start from `min_weight` and increase otherwise.
struct ThresholdSuggestion {
  Weight min_weight = 0;
  Weight max_weight = 0;
};

ThresholdSuggestion SuggestThreshold(const TemporalGraph& graph, EventType event,
                                     const EntitySelector& selector);

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_EXPLORATION_H_
