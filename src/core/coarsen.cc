#include "core/coarsen.h"

#include "core/interval.h"
#include "util/check.h"

namespace graphtempo {

namespace {

/// The member time point supplying a time-varying value under `policy`:
/// last/first point of `range` at which `row` of `presence` is set and the
/// attribute cell is assigned. Returns false if no such point.
template <typename CellSetFn>
bool PickObservation(const BitMatrix& presence, std::size_t row, TimeRange range,
                     CoarsenPolicy policy, const CellSetFn& cell_set, TimeId* picked) {
  if (policy == CoarsenPolicy::kLast) {
    for (TimeId t = range.last;; --t) {
      if (presence.Test(row, t) && cell_set(t)) {
        *picked = t;
        return true;
      }
      if (t == range.first) break;
    }
  } else {
    for (TimeId t = range.first; t <= range.last; ++t) {
      if (presence.Test(row, t) && cell_set(t)) {
        *picked = t;
        return true;
      }
    }
  }
  return false;
}

}  // namespace

std::vector<TimeGroup> UniformGrouping(const TemporalGraph& graph, std::size_t width) {
  GT_CHECK_GE(width, 1u) << "group width must be positive";
  std::vector<TimeGroup> groups;
  const std::size_t n = graph.num_times();
  for (std::size_t first = 0; first < n; first += width) {
    TimeRange range{static_cast<TimeId>(first),
                    static_cast<TimeId>(std::min(n - 1, first + width - 1))};
    std::string label = graph.time_label(range.first);
    if (range.last != range.first) label += ".." + graph.time_label(range.last);
    groups.push_back(TimeGroup{std::move(label), range});
  }
  return groups;
}

TemporalGraph CoarsenTime(const TemporalGraph& graph,
                          const std::vector<TimeGroup>& groups, CoarsenPolicy policy) {
  GT_CHECK(!groups.empty()) << "coarsening needs at least one group";
  std::vector<std::string> labels;
  labels.reserve(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    GT_CHECK_LE(groups[i].range.first, groups[i].range.last) << "inverted group range";
    GT_CHECK_LT(groups[i].range.last, graph.num_times()) << "group outside time domain";
    if (i > 0) {
      GT_CHECK_LT(groups[i - 1].range.last, groups[i].range.first)
          << "groups must be ordered and non-overlapping";
    }
    labels.push_back(groups[i].label);
  }

  TemporalGraph coarse(std::move(labels));
  for (std::uint32_t a = 0; a < graph.num_static_attributes(); ++a) {
    coarse.AddStaticAttribute(graph.static_attribute(a).name());
  }
  for (std::uint32_t a = 0; a < graph.num_time_varying_attributes(); ++a) {
    coarse.AddTimeVaryingAttribute(graph.time_varying_attribute(a).name());
  }
  for (std::uint32_t a = 0; a < graph.num_static_edge_attributes(); ++a) {
    coarse.AddStaticEdgeAttribute(graph.static_edge_attribute(a).name());
  }
  for (std::uint32_t a = 0; a < graph.num_time_varying_edge_attributes(); ++a) {
    coarse.AddTimeVaryingEdgeAttribute(graph.time_varying_edge_attribute(a).name());
  }

  // Nodes kept if present in any group (others would be isolated phantoms).
  std::vector<NodeId> node_map(graph.num_nodes(), 0);
  std::vector<bool> node_kept(graph.num_nodes(), false);
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    bool any = false;
    for (const TimeGroup& group : groups) {
      IntervalSet member = IntervalSet::Of(graph.num_times(), group.range);
      if (graph.node_presence().RowAnyMasked(n, member.bits())) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    NodeId copy = coarse.AddNode(graph.node_label(n));
    node_map[n] = copy;
    node_kept[n] = true;
    for (std::uint32_t a = 0; a < graph.num_static_attributes(); ++a) {
      AttrValueId code = graph.static_attribute(a).CodeAt(n);
      if (code == kNoValue) continue;
      coarse.SetStaticValue(a, copy, graph.static_attribute(a).dictionary().ValueOf(code));
    }
  }

  for (TimeId g = 0; g < groups.size(); ++g) {
    const TimeRange range = groups[g].range;
    IntervalSet member = IntervalSet::Of(graph.num_times(), range);
    for (NodeId n = 0; n < graph.num_nodes(); ++n) {
      if (!node_kept[n]) continue;
      if (!graph.node_presence().RowAnyMasked(n, member.bits())) continue;
      NodeId copy = node_map[n];
      coarse.SetNodePresent(copy, g);
      for (std::uint32_t a = 0; a < graph.num_time_varying_attributes(); ++a) {
        const TimeVaryingColumn& column = graph.time_varying_attribute(a);
        TimeId picked = 0;
        if (PickObservation(graph.node_presence(), n, range, policy,
                            [&](TimeId t) { return column.CodeAt(n, t) != kNoValue; },
                            &picked)) {
          coarse.SetTimeVaryingValue(a, copy, g, column.ValueAt(n, picked));
        }
      }
    }
  }

  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    auto [src, dst] = graph.edge(e);
    std::optional<EdgeId> copy;
    for (TimeId g = 0; g < groups.size(); ++g) {
      const TimeRange range = groups[g].range;
      IntervalSet member = IntervalSet::Of(graph.num_times(), range);
      if (!graph.edge_presence().RowAnyMasked(e, member.bits())) continue;
      if (!copy.has_value()) {
        copy = coarse.GetOrAddEdge(node_map[src], node_map[dst]);
        for (std::uint32_t a = 0; a < graph.num_static_edge_attributes(); ++a) {
          AttrValueId code = graph.static_edge_attribute(a).CodeAt(e);
          if (code == kNoValue) continue;
          coarse.SetStaticEdgeValue(
              a, *copy, graph.static_edge_attribute(a).dictionary().ValueOf(code));
        }
      }
      coarse.SetEdgePresent(*copy, g);
      for (std::uint32_t a = 0; a < graph.num_time_varying_edge_attributes(); ++a) {
        const TimeVaryingColumn& column = graph.time_varying_edge_attribute(a);
        TimeId picked = 0;
        if (PickObservation(graph.edge_presence(), e, range, policy,
                            [&](TimeId t) { return column.CodeAt(e, t) != kNoValue; },
                            &picked)) {
          coarse.SetTimeVaryingEdgeValue(a, *copy, g, column.ValueAt(e, picked));
        }
      }
    }
  }

  return coarse;
}

}  // namespace graphtempo
