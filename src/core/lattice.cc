#include "core/lattice.h"

#include "util/check.h"

namespace graphtempo {

IntervalLattice::IntervalLattice(std::size_t domain_size) : domain_size_(domain_size) {
  GT_CHECK_GE(domain_size, 1u) << "lattice needs at least one time point";
}

void IntervalLattice::CheckRange(TimeRange range) const {
  GT_CHECK_LE(range.first, range.last) << "inverted range";
  GT_CHECK_LT(range.last, domain_size_) << "range outside the time domain";
}

std::vector<TimeRange> IntervalLattice::RangesAtLevel(std::size_t level) const {
  GT_CHECK_LT(level, num_levels()) << "level out of range";
  std::vector<TimeRange> ranges;
  const std::size_t length = level + 1;
  for (std::size_t first = 0; first + length <= domain_size_; ++first) {
    ranges.push_back(TimeRange{static_cast<TimeId>(first),
                               static_cast<TimeId>(first + length - 1)});
  }
  return ranges;
}

std::vector<TimeRange> IntervalLattice::AllRanges() const {
  std::vector<TimeRange> ranges;
  ranges.reserve(domain_size_ * (domain_size_ + 1) / 2);
  for (std::size_t level = 0; level < num_levels(); ++level) {
    for (TimeRange range : RangesAtLevel(level)) ranges.push_back(range);
  }
  return ranges;
}

std::optional<TimeRange> IntervalLattice::ExtendLeft(TimeRange range) const {
  CheckRange(range);
  if (range.first == 0) return std::nullopt;
  return TimeRange{static_cast<TimeId>(range.first - 1), range.last};
}

std::optional<TimeRange> IntervalLattice::ExtendRight(TimeRange range) const {
  CheckRange(range);
  if (range.last + 1 >= domain_size_) return std::nullopt;
  return TimeRange{range.first, static_cast<TimeId>(range.last + 1)};
}

std::optional<TimeRange> IntervalLattice::ShrinkLeft(TimeRange range) const {
  CheckRange(range);
  if (range.first == range.last) return std::nullopt;
  return TimeRange{static_cast<TimeId>(range.first + 1), range.last};
}

std::optional<TimeRange> IntervalLattice::ShrinkRight(TimeRange range) const {
  CheckRange(range);
  if (range.first == range.last) return std::nullopt;
  return TimeRange{range.first, static_cast<TimeId>(range.last - 1)};
}

std::vector<std::pair<TimeRange, TimeRange>> IntervalLattice::AdjacentPairs() const {
  std::vector<std::pair<TimeRange, TimeRange>> pairs;
  for (TimeId boundary = 1; boundary < domain_size_; ++boundary) {
    for (TimeId old_first = 0; old_first < boundary; ++old_first) {
      for (TimeId new_last = boundary;
           new_last < static_cast<TimeId>(domain_size_); ++new_last) {
        pairs.emplace_back(TimeRange{old_first, static_cast<TimeId>(boundary - 1)},
                           TimeRange{boundary, new_last});
      }
    }
  }
  return pairs;
}

bool PairContainedIn(const std::pair<TimeRange, TimeRange>& inner,
                     const std::pair<TimeRange, TimeRange>& outer) {
  auto range_contained = [](TimeRange a, TimeRange b) {
    return b.first <= a.first && a.last <= b.last;
  };
  return range_contained(inner.first, outer.first) &&
         range_contained(inner.second, outer.second);
}

ExplorationResult ExploreBothEnds(const TemporalGraph& graph,
                                  const ExplorationSpec& spec) {
  GT_CHECK_GE(spec.k, 1) << "threshold k must be positive";
  GT_CHECK_GE(graph.num_times(), 2u) << "exploration needs at least two time points";

  IntervalLattice lattice(graph.num_times());
  ExplorationResult result;

  struct Candidate {
    std::pair<TimeRange, TimeRange> pair;
    Weight count;
  };
  std::vector<Candidate> qualifying;
  for (const auto& pair : lattice.AdjacentPairs()) {
    ++result.evaluations;
    Weight count = CountEvents(graph, pair.first, pair.second, spec.semantics,
                               spec.event, spec.selector);
    if (count >= spec.k) qualifying.push_back(Candidate{pair, count});
  }

  const bool minimal_goal = spec.semantics == ExtensionSemantics::kUnion;
  for (const Candidate& candidate : qualifying) {
    bool dominated = false;
    for (const Candidate& other : qualifying) {
      if (other.pair == candidate.pair) continue;
      if (minimal_goal ? PairContainedIn(other.pair, candidate.pair)
                       : PairContainedIn(candidate.pair, other.pair)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      result.pairs.push_back(
          IntervalPair{candidate.pair.first, candidate.pair.second, candidate.count});
    }
  }
  return result;
}

}  // namespace graphtempo
