#ifndef GRAPHTEMPO_CORE_GRAPHTEMPO_H_
#define GRAPHTEMPO_CORE_GRAPHTEMPO_H_

/// \file
/// Umbrella header: the whole GraphTempo *core* API in one include.
/// Fine-grained headers remain available for compile-time-conscious users.
/// The query layer — planner, executor, and the OLAP cube built on them —
/// lives above core in `engine/` (include "engine/engine.h" /
/// "engine/cube.h"; docs/ENGINE.md).

#include "core/aggregation.h"       // DIST/ALL aggregation, AggregateGraph
#include "core/coarsen.h"           // time-granularity coarsening
#include "core/edge_list_io.h"      // `src dst time` ingestion
#include "core/evolution.h"         // evolution graph + group ranking
#include "core/exploration.h"       // U-Explore / I-Explore
#include "core/graph_io.h"          // lossless (de)serialization
#include "core/interval.h"          // IntervalSet / TimeRange
#include "core/lattice.h"           // interval semi-lattice, both-ends search
#include "core/materialization.h"   // D-/T-distributive derivation
#include "core/measures.h"          // SUM/MIN/MAX/AVG over edge attributes
#include "core/model_adapters.h"    // snapshot / duration-labeled models
#include "core/naive_exploration.h" // exhaustive exploration baseline
#include "core/operators.h"         // project / union / intersection / difference
#include "core/stats.h"             // descriptive statistics
#include "core/subgraph.h"          // operator-result materialization
#include "core/temporal_graph.h"    // G(V, E, τu, τe, A)

#endif  // GRAPHTEMPO_CORE_GRAPHTEMPO_H_
