#ifndef GRAPHTEMPO_CORE_MODEL_ADAPTERS_H_
#define GRAPHTEMPO_CORE_MODEL_ADAPTERS_H_

#include <string>
#include <vector>

#include "core/temporal_graph.h"

/// \file
/// Adapters between the paper's interval-labeled model and the two other
/// temporal-graph model families it classifies (Section 2, "Other temporal
/// graph models"):
///
///   * **snapshot-based** — "a graph in an interval is given by a sequence of
///     graph snapshots for each time point": `FromSnapshots` /
///     `ToSnapshots` convert a per-time-point edge-list sequence to and from
///     a `TemporalGraph`;
///   * **duration-labeled** — "edges are labeled with a starting point and a
///     duration": `FromDurationLabeled` expands (src, dst, start, duration)
///     records over the elementary time points they cover.
///
/// The paper claims "our approach can also be adapted for any graph model";
/// these adapters make the claim executable.

namespace graphtempo {

/// One snapshot: the edges existing at one time point, by node label.
struct Snapshot {
  std::string time_label;
  std::vector<std::pair<std::string, std::string>> edges;

  /// Nodes that exist in the snapshot without (necessarily) having edges.
  /// Endpoints of `edges` need not be repeated here.
  std::vector<std::string> isolated_nodes;
};

/// Builds the interval-labeled graph equivalent to a snapshot sequence: the
/// time domain is the snapshot labels in order, τ of every entity the set of
/// snapshots containing it. GT_CHECKs that labels are unique and non-empty.
TemporalGraph FromSnapshots(const std::vector<Snapshot>& snapshots);

/// Decomposes `graph` back into its snapshot sequence (attributes are not
/// representable in the snapshot model and are dropped). Inverse of
/// `FromSnapshots` up to isolated-node bookkeeping.
std::vector<Snapshot> ToSnapshots(const TemporalGraph& graph);

/// One duration-labeled record: the edge exists on the `duration` elementary
/// time points starting at `start` (so [start, start + duration - 1]).
struct DurationEdge {
  std::string src;
  std::string dst;
  TimeId start = 0;
  std::size_t duration = 1;
};

/// Builds the interval-labeled graph over `time_labels` from duration-labeled
/// edges, clamping records that run past the domain end. GT_CHECKs that each
/// record starts inside the domain and has non-zero duration.
TemporalGraph FromDurationLabeled(const std::vector<std::string>& time_labels,
                                  const std::vector<DurationEdge>& edges);

/// Decomposes `graph` into duration-labeled records: one record per maximal
/// run of consecutive presence of each edge. Inverse of `FromDurationLabeled`
/// for edge presence.
std::vector<DurationEdge> ToDurationLabeled(const TemporalGraph& graph);

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_MODEL_ADAPTERS_H_
