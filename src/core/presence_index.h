#ifndef GRAPHTEMPO_CORE_PRESENCE_INDEX_H_
#define GRAPHTEMPO_CORE_PRESENCE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/bitset.h"
#include "storage/compressed_bitset.h"

/// \file
/// `PresenceIndex`: the column-major twin of the row-major presence
/// `BitMatrix` — one `DynamicBitset` over entities *per time point*, plus a
/// sparse-table interval index of precomputed column folds.
///
/// The row-major matrix answers "at which times does entity e exist?" in one
/// cache line; this index answers the inverse question "which entities exist
/// over interval T?" as pure word-parallel set algebra:
///
///   * union over T       — OR of the T columns            (Defs 2.3)
///   * intersection over T— AND of the T columns           (Def 2.2 project)
///
/// and the temporal operators of Section 2 reduce to a handful of these
/// folds (see docs/KERNELS.md). The sparse tables store the fold of every
/// power-of-two-length window, so any *contiguous* interval folds in exactly
/// two column operations (the two windows overlap; OR and AND are
/// idempotent), independent of interval length. Non-contiguous interval sets
/// decompose into maximal runs, each answered from the table.
///
/// Maintenance is incremental: `TemporalGraph` mirrors every presence
/// mutation into the index (`Set`), every `AddNode`/`GetOrAddEdge` grows the
/// columns (`AddEntities`, amortized O(1)), and every `AppendTimePoint`
/// appends an empty column (`AddTimePoints`). The sparse tables are built
/// lazily on first fold query and invalidated by any mutation; concurrent
/// *queries* (e.g. exploration reference sweeps on the worker pool) may race
/// on the lazy build, which is guarded by a mutex + generation counter.
/// Queries concurrent with *mutation* are not supported — same contract as
/// every other container in the engine.
///
/// An index restored from a binary snapshot (`RestoreCompressed`) keeps its
/// columns RLE-compressed and decodes each one on first touch, so boot cost
/// is proportional to what the workload actually reads; kernels never see
/// compressed data. The decode race among concurrent readers is guarded by
/// the same mutex + per-column published flags (docs/STORAGE.md).

namespace graphtempo {

class PresenceIndex {
 public:
  explicit PresenceIndex(std::size_t num_times = 0);

  PresenceIndex(const PresenceIndex&) = delete;
  PresenceIndex& operator=(const PresenceIndex&) = delete;
  PresenceIndex(PresenceIndex&& other) noexcept;
  PresenceIndex& operator=(PresenceIndex&& other) noexcept;

  std::size_t num_times() const { return columns_.size(); }
  std::size_t num_entities() const { return entities_; }

  /// Appends `count` all-zero columns (new time points at the end).
  void AddTimePoints(std::size_t count = 1);

  /// Grows every column to hold `count` more entities (new bits zero).
  void AddEntities(std::size_t count = 1);

  /// Marks `entity` present at time `t`.
  void Set(std::size_t entity, std::size_t t);

  /// Replaces the index contents with `columns` (one compressed column per
  /// time point, each `entities` bits), kept compressed until first touch —
  /// the snapshot-load entry point. GT_CHECKs the per-column bit counts.
  void RestoreCompressed(std::size_t entities,
                         std::vector<storage::CompressedBitset> columns);

  /// Number of columns still compressed (0 once everything is decoded, or
  /// when the index was never snapshot-restored). Observability/tests.
  std::size_t compressed_columns() const {
    return compressed_remaining_.load(std::memory_order_relaxed);
  }

  /// The raw presence column of time `t` (a bitset over entities).
  const DynamicBitset& Column(std::size_t t) const;

  // --- Interval folds --------------------------------------------------------
  //
  // All folds return a bitset over entities. `times` masks are bitsets over
  // the time domain (`IntervalSet::bits()`); they must match `num_times()`.

  /// OR of columns [first, last] (inclusive): entities present at ≥1 time.
  /// Two table lookups for any length (sparse-table overlap trick).
  DynamicBitset UnionRange(std::size_t first, std::size_t last) const;

  /// AND of columns [first, last] (inclusive): entities present at every time.
  DynamicBitset IntersectRange(std::size_t first, std::size_t last) const;

  /// OR of the columns selected by `times` (maximal-run decomposition).
  /// An empty mask yields the empty entity set.
  DynamicBitset UnionOver(const DynamicBitset& times) const;

  /// AND of the columns selected by `times`. An empty mask yields the full
  /// entity set (vacuous truth — matching `BitMatrix::RowAllMasked` on an
  /// empty mask).
  DynamicBitset IntersectionOver(const DynamicBitset& times) const;

  /// Entities present at ≥1 time of `times`, popcounted without
  /// materializing the fold — used by per-column statistics.
  std::size_t CountAt(std::size_t t) const;

  // --- Cardinality accessors (cost model inputs) -----------------------------
  //
  // The planner's cost model (engine/cost.h) needs "how much data would this
  // interval touch" without paying for an actual fold. Both accessors read a
  // lazily built per-column popcount cache — O(selected columns) array loads
  // after the first call, invalidated by any mutation like the fold tables.

  /// Σ over the selected times of the per-column popcounts: the number of
  /// (entity, time) appearances in the interval. This is the exact scan size
  /// of an ALL-semantics aggregation over the interval and an upper bound on
  /// the union-fold cardinality.
  std::size_t AppearancesOver(const DynamicBitset& times) const;

  /// Largest single-column popcount over the selected times (0 for an empty
  /// mask) — a lower bound on the union-fold cardinality and a proxy for the
  /// per-snapshot live-entity count.
  std::size_t MaxCountOver(const DynamicBitset& times) const;

  /// Forces the lazy sparse tables to be built now (both fold kinds). Useful
  /// before fanning queries out to worker threads so the guarded build does
  /// not serialize them; queries call it implicitly otherwise.
  void EnsureTables() const;

 private:
  enum class Fold : std::uint8_t { kOr, kAnd };

  struct Table {
    /// levels_[k-1][i] = fold of columns [i, i + 2^k) for k ≥ 1.
    std::vector<std::vector<DynamicBitset>> levels_;
    std::atomic<std::uint64_t> built_generation{0};
  };

  void Invalidate() { generation_.fetch_add(1, std::memory_order_relaxed); }
  void EnsureTable(Fold fold) const;

  /// Decodes column `t` (or every column) if still compressed. Lock-free
  /// no-op once everything is decoded; otherwise decodes under `mutex_`.
  /// Must be called *before* acquiring `mutex_` (it locks internally).
  void EnsureDecoded(std::size_t t) const;
  void EnsureDecodedAll() const;
  void DecodeColumnLocked(std::size_t t) const;

  /// Builds the per-column popcount cache if stale (mutex + generation
  /// guarded, same protocol as the fold tables).
  void EnsureCounts() const;
  Table& table(Fold fold) const { return fold == Fold::kOr ? or_table_ : and_table_; }

  /// Fold of columns [first, last] via the (already built) sparse table.
  DynamicBitset FoldRange(Fold fold, std::size_t first, std::size_t last) const;

  std::size_t entities_ = 0;
  /// Mutable: a snapshot-restored column materializes in place on first
  /// touch from a const accessor (logically the value never changes).
  mutable std::vector<DynamicBitset> columns_;

  /// Snapshot-restored columns not yet decoded. `compressed_remaining_` is
  /// the readers' lock-free fast path: 0 (the steady state) means every
  /// column is live and `decoded_`/`compressed_` are never consulted.
  mutable std::vector<storage::CompressedBitset> compressed_;
  mutable std::unique_ptr<std::atomic<std::uint8_t>[]> decoded_;
  mutable std::atomic<std::size_t> compressed_remaining_{0};

  /// Bumped on every mutation; tables with a stale built_generation rebuild
  /// lazily under `mutex_`.
  std::atomic<std::uint64_t> generation_{1};
  mutable Table or_table_;
  mutable Table and_table_;

  /// Per-column popcounts, built lazily like the fold tables.
  mutable std::vector<std::size_t> counts_;
  mutable std::atomic<std::uint64_t> counts_generation_{0};

  std::unique_ptr<std::mutex> mutex_;
};

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_PRESENCE_INDEX_H_
