#ifndef GRAPHTEMPO_CORE_MEASURES_H_
#define GRAPHTEMPO_CORE_MEASURES_H_

#include <span>
#include <string>
#include <unordered_map>

#include "core/aggregation.h"

/// \file
/// Aggregation functions beyond COUNT — the extension the paper's
/// Definition 2.6 anticipates: "We use COUNT as our aggregation function …
/// However other aggregations may be supported, if edges are attributed as
/// well."
///
/// A *measure* aggregates a numeric attribute over the (entity, time)
/// appearances of each aggregate group: nodes grouped by their attribute
/// tuple with a numeric node attribute as the measure source, or edges
/// grouped by their endpoint tuple pair with a numeric *edge* attribute as
/// the source (e.g. total face-to-face contact `duration` between two school
/// classes — the quantity the paper's epidemic scenario reasons about).
///
/// Measures use ALL semantics: every appearance contributes once. (DIST
/// deduplication is a counting notion; for value aggregation the per-
/// appearance stream is the meaningful input.) Appearances whose measure
/// value is unset are skipped; values must parse as decimal numbers
/// (GT_CHECKed — attach numeric attributes for measures).

namespace graphtempo {

enum class MeasureFunction { kSum, kMin, kMax, kAvg, kCount };

/// Returns "sum" / "min" / "max" / "avg" / "count".
const char* MeasureFunctionName(MeasureFunction function);

/// Aggregated measure of one group.
struct MeasureValue {
  double value = 0.0;        ///< the aggregate under the requested function
  std::int64_t samples = 0;  ///< number of contributing appearances
};

using NodeMeasureMap = std::unordered_map<AttrTuple, MeasureValue, AttrTupleHash>;
using EdgeMeasureMap = std::unordered_map<AttrTuplePair, MeasureValue, AttrTuplePairHash>;

/// Groups the view's nodes by `group_attrs` and aggregates the numeric node
/// attribute `measure_attr` over every (node, time) appearance with
/// `function`.
NodeMeasureMap AggregateNodeMeasure(const TemporalGraph& graph, const GraphView& view,
                                    std::span<const AttrRef> group_attrs,
                                    AttrRef measure_attr, MeasureFunction function);

/// Groups the view's edges by the endpoint tuples under `group_attrs` and
/// aggregates the numeric edge attribute `measure_attr` over every
/// (edge, time) appearance with `function`.
EdgeMeasureMap AggregateEdgeMeasure(const TemporalGraph& graph, const GraphView& view,
                                    std::span<const AttrRef> group_attrs,
                                    EdgeAttrRef measure_attr, MeasureFunction function);

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_MEASURES_H_
