#include "core/subgraph.h"

#include <string>
#include <vector>

#include "util/check.h"

namespace graphtempo {

TemporalGraph ExtractSubgraph(const TemporalGraph& graph, const GraphView& view) {
  GT_CHECK_EQ(view.times.domain_size(), graph.num_times())
      << "view interval over a different time domain";

  std::vector<std::string> time_labels;
  time_labels.reserve(graph.num_times());
  for (TimeId t = 0; t < graph.num_times(); ++t) {
    time_labels.push_back(graph.time_label(t));
  }
  TemporalGraph result(std::move(time_labels));

  // Attribute schema first, so columns cover nodes as they are added.
  for (std::uint32_t a = 0; a < graph.num_static_attributes(); ++a) {
    result.AddStaticAttribute(graph.static_attribute(a).name());
  }
  for (std::uint32_t a = 0; a < graph.num_time_varying_attributes(); ++a) {
    result.AddTimeVaryingAttribute(graph.time_varying_attribute(a).name());
  }
  for (std::uint32_t a = 0; a < graph.num_static_edge_attributes(); ++a) {
    result.AddStaticEdgeAttribute(graph.static_edge_attribute(a).name());
  }
  for (std::uint32_t a = 0; a < graph.num_time_varying_edge_attributes(); ++a) {
    result.AddTimeVaryingEdgeAttribute(graph.time_varying_edge_attribute(a).name());
  }

  // Nodes: presence restricted to the view interval, attributes copied.
  for (NodeId n : view.nodes) {
    NodeId copy = result.AddNode(graph.node_label(n));
    graph.node_presence().ForEachSetBitMasked(n, view.times.bits(), [&](std::size_t t) {
      result.SetNodePresent(copy, static_cast<TimeId>(t));
    });
    for (std::uint32_t a = 0; a < graph.num_static_attributes(); ++a) {
      AttrValueId code = graph.static_attribute(a).CodeAt(n);
      if (code == kNoValue) continue;
      result.SetStaticValue(a, copy, graph.static_attribute(a).dictionary().ValueOf(code));
    }
    for (std::uint32_t a = 0; a < graph.num_time_varying_attributes(); ++a) {
      const TimeVaryingColumn& column = graph.time_varying_attribute(a);
      for (TimeId t = 0; t < graph.num_times(); ++t) {
        if (!view.times.Contains(t)) continue;
        AttrValueId code = column.CodeAt(n, t);
        if (code == kNoValue) continue;
        result.SetTimeVaryingValue(a, copy, t, column.dictionary().ValueOf(code));
      }
    }
  }

  // Edges. SetEdgePresent would force endpoints present, which is already
  // guaranteed: an edge exists only where both endpoints exist (Def 2.1
  // invariant, maintained by TemporalGraph) and the view keeps whole rows.
  for (EdgeId e : view.edges) {
    auto [src, dst] = graph.edge(e);
    std::optional<NodeId> copy_src = result.FindNode(graph.node_label(src));
    std::optional<NodeId> copy_dst = result.FindNode(graph.node_label(dst));
    GT_CHECK(copy_src.has_value() && copy_dst.has_value())
        << "view has an edge whose endpoint is not in the view";
    EdgeId copy = result.GetOrAddEdge(*copy_src, *copy_dst);
    graph.edge_presence().ForEachSetBitMasked(e, view.times.bits(), [&](std::size_t t) {
      result.SetEdgePresent(copy, static_cast<TimeId>(t));
    });
    for (std::uint32_t a = 0; a < graph.num_static_edge_attributes(); ++a) {
      AttrValueId code = graph.static_edge_attribute(a).CodeAt(e);
      if (code == kNoValue) continue;
      result.SetStaticEdgeValue(a, copy,
                                graph.static_edge_attribute(a).dictionary().ValueOf(code));
    }
    for (std::uint32_t a = 0; a < graph.num_time_varying_edge_attributes(); ++a) {
      const TimeVaryingColumn& column = graph.time_varying_edge_attribute(a);
      for (TimeId t = 0; t < graph.num_times(); ++t) {
        if (!view.times.Contains(t)) continue;
        AttrValueId code = column.CodeAt(e, t);
        if (code == kNoValue) continue;
        result.SetTimeVaryingEdgeValue(a, copy, t, column.dictionary().ValueOf(code));
      }
    }
  }

  return result;
}

}  // namespace graphtempo
