#include "core/operators.h"

#include <algorithm>

#include "util/check.h"
#include "util/parallel.h"

namespace graphtempo {

namespace {

void CheckDomain(const TemporalGraph& graph, const IntervalSet& interval) {
  GT_CHECK_EQ(interval.domain_size(), graph.num_times())
      << "interval defined over a different time domain than the graph";
}

/// Collects the row ids in [0, count) satisfying `pred`, ascending.
/// Parallelized over chunks; per-chunk outputs are concatenated in chunk
/// order, so the result is identical at any thread count.
template <typename Pred>
std::vector<std::uint32_t> FilterRows(std::size_t count, const Pred& pred) {
  ParallelPartition partition(count);
  if (partition.num_chunks() == 1) {
    std::vector<std::uint32_t> rows;
    for (std::size_t i = 0; i < count; ++i) {
      if (pred(i)) rows.push_back(static_cast<std::uint32_t>(i));
    }
    return rows;
  }
  std::vector<std::vector<std::uint32_t>> parts(partition.num_chunks());
  partition.Run([&](std::size_t chunk, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (pred(i)) parts[chunk].push_back(static_cast<std::uint32_t>(i));
    }
  });
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  std::vector<std::uint32_t> rows;
  rows.reserve(total);
  for (const auto& part : parts) rows.insert(rows.end(), part.begin(), part.end());
  return rows;
}

}  // namespace

GraphView Project(const TemporalGraph& graph, const IntervalSet& t1) {
  CheckDomain(graph, t1);
  GT_CHECK(!t1.Empty()) << "projection interval must be non-empty";
  GraphView view;
  view.times = t1;
  const BitMatrix& nodes = graph.node_presence();
  view.nodes = FilterRows(graph.num_nodes(),
                          [&](std::size_t n) { return nodes.RowAllMasked(n, t1.bits()); });
  const BitMatrix& edges = graph.edge_presence();
  view.edges = FilterRows(graph.num_edges(),
                          [&](std::size_t e) { return edges.RowAllMasked(e, t1.bits()); });
  return view;
}

GraphView UnionOp(const TemporalGraph& graph, const IntervalSet& t1,
                  const IntervalSet& t2) {
  CheckDomain(graph, t1);
  CheckDomain(graph, t2);
  GraphView view;
  view.times = t1 | t2;
  const DynamicBitset& mask = view.times.bits();
  const BitMatrix& nodes = graph.node_presence();
  view.nodes = FilterRows(graph.num_nodes(),
                          [&](std::size_t n) { return nodes.RowAnyMasked(n, mask); });
  const BitMatrix& edges = graph.edge_presence();
  view.edges = FilterRows(graph.num_edges(),
                          [&](std::size_t e) { return edges.RowAnyMasked(e, mask); });
  return view;
}

GraphView IntersectionOp(const TemporalGraph& graph, const IntervalSet& t1,
                         const IntervalSet& t2) {
  CheckDomain(graph, t1);
  CheckDomain(graph, t2);
  GraphView view;
  view.times = t1 | t2;
  const BitMatrix& nodes = graph.node_presence();
  view.nodes = FilterRows(graph.num_nodes(), [&](std::size_t n) {
    return nodes.RowAnyMasked(n, t1.bits()) && nodes.RowAnyMasked(n, t2.bits());
  });
  const BitMatrix& edges = graph.edge_presence();
  view.edges = FilterRows(graph.num_edges(), [&](std::size_t e) {
    return edges.RowAnyMasked(e, t1.bits()) && edges.RowAnyMasked(e, t2.bits());
  });
  return view;
}

GraphView DifferenceOp(const TemporalGraph& graph, const IntervalSet& t1,
                       const IntervalSet& t2) {
  CheckDomain(graph, t1);
  CheckDomain(graph, t2);
  GraphView view;
  view.times = t1;  // Def 2.5: the result is defined on T₁ (τu_(u) = τu(u) ∩ T₁).

  // E₋ first: nodes depend on it (a surviving node still joins V₋ when it is
  // an endpoint of a deleted edge).
  const BitMatrix& edges = graph.edge_presence();
  view.edges = FilterRows(graph.num_edges(), [&](std::size_t e) {
    return edges.RowAnyMasked(e, t1.bits()) && edges.RowNoneMasked(e, t2.bits());
  });
  std::vector<char> difference_endpoint(graph.num_nodes(), 0);
  for (EdgeId e : view.edges) {
    auto [src, dst] = graph.edge(e);
    difference_endpoint[src] = 1;
    difference_endpoint[dst] = 1;
  }

  const BitMatrix& nodes = graph.node_presence();
  view.nodes = FilterRows(graph.num_nodes(), [&](std::size_t n) {
    if (!nodes.RowAnyMasked(n, t1.bits())) return false;
    return difference_endpoint[n] != 0 || nodes.RowNoneMasked(n, t2.bits());
  });
  return view;
}

}  // namespace graphtempo
