#include "core/operators.h"

#include <algorithm>
#include <deque>

#include "accel/backend.h"
#include "core/stats.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/parallel.h"

namespace graphtempo {

namespace {

void CheckDomain(const TemporalGraph& graph, const IntervalSet& interval) {
  GT_CHECK_EQ(interval.domain_size(), graph.num_times())
      << "interval defined over a different time domain than the graph";
}

/// Words per chunk below which bitset→index extraction runs inline.
/// Extraction is one countr_zero per set bit, so chunks must be sizeable.
constexpr std::size_t kExtractMinWordsPerChunk = 2048;

/// Materializes the set bits of `bits` as ascending entity ids.
///
/// Parallelized over disjoint 64-bit *word* ranges: each chunk extracts its
/// words into a private vector and the per-chunk vectors are concatenated in
/// chunk order. Within a word bits come out in ascending order and chunks own
/// ascending, disjoint word ranges, so the result is bit-identical to a
/// serial scan at any thread count.
std::vector<std::uint32_t> ExtractIndices(const DynamicBitset& bits) {
  const std::size_t words = bits.num_words();
  GT_SPAN("operators/extract", {{"words", words}});
  internal_counters::AddKernelWords(words);
  // One backend dispatch per extraction, not per chunk/word range.
  const accel::KernelBackend& backend = accel::ActiveBackend();
  const std::uint64_t* word_data = bits.word_data();
  ParallelPartition partition(words, kExtractMinWordsPerChunk, /*alignment=*/1);
  if (partition.num_chunks() == 1) {
    std::vector<std::uint32_t> out;
    out.reserve(backend.popcount(word_data, words));
    backend.extract_indices(word_data, 0, words, out);
    return out;
  }
  std::vector<std::vector<std::uint32_t>> parts(partition.num_chunks());
  partition.Run([&](std::size_t chunk, std::size_t begin, std::size_t end) {
    parts[chunk].reserve(backend.popcount(word_data + begin, end - begin));
    backend.extract_indices(word_data, begin, end, parts[chunk]);
  });
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  std::vector<std::uint32_t> out;
  out.reserve(total);
  for (const auto& part : parts) out.insert(out.end(), part.begin(), part.end());
  return out;
}

/// Collects the row ids in [0, count) satisfying `pred`, ascending.
/// Parallelized over chunks; per-chunk outputs are concatenated in chunk
/// order, so the result is identical at any thread count.
template <typename Pred>
std::vector<std::uint32_t> FilterRows(std::size_t count, const Pred& pred) {
  ParallelPartition partition(count);
  if (partition.num_chunks() == 1) {
    std::vector<std::uint32_t> rows;
    // Temporal selections typically retain a large fraction of the entity
    // range (Table 3 workloads keep well over half); reserving half the scan
    // length avoids the first few geometric regrowths without committing the
    // full range up front.
    rows.reserve(count / 2 + 1);
    for (std::size_t i = 0; i < count; ++i) {
      if (pred(i)) rows.push_back(static_cast<std::uint32_t>(i));
    }
    return rows;
  }
  std::vector<std::vector<std::uint32_t>> parts(partition.num_chunks());
  partition.Run([&](std::size_t chunk, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (pred(i)) parts[chunk].push_back(static_cast<std::uint32_t>(i));
    }
  });
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  std::vector<std::uint32_t> rows;
  rows.reserve(total);
  for (const auto& part : parts) rows.insert(rows.end(), part.begin(), part.end());
  return rows;
}

}  // namespace

// --- Kernel path ---------------------------------------------------------------
//
// The four operators run on the column-major PresenceIndex as pure bitset
// algebra over entity sets (docs/KERNELS.md):
//
//   Project(T₁)           = AND of the T₁ columns
//   Union(T₁, T₂)         = OR of the (T₁ ∪ T₂) columns
//   Intersection(T₁, T₂)  = OR(T₁) & OR(T₂)
//   Difference(T₁, T₂)    = OR(T₁) −E OR(T₂), plus the endpoint fix-up on V
//
// Contiguous intervals fold in two column ops via the sparse-table interval
// index; the folds and the final id extraction are word-parallel and
// chunk-ordered, so results are bit-identical at any thread count and to the
// *RowScan reference path below.

namespace {

/// The provider behind the classic (provider-less) operator entry points:
/// computes every fold fresh, parking results in a deque so references stay
/// stable for the duration of one operator call. This keeps the provider
/// overloads the single implementation of the operator algebra — the classic
/// spellings are exact delegations, bit-identical to what they always did.
class TransientFoldProvider final : public PresenceFoldProvider {
 public:
  const DynamicBitset& UnionFold(const PresenceIndex& index,
                                 const DynamicBitset& times) override {
    storage_.push_back(index.UnionOver(times));
    return storage_.back();
  }
  const DynamicBitset& IntersectionFold(const PresenceIndex& index,
                                        const DynamicBitset& times) override {
    storage_.push_back(index.IntersectionOver(times));
    return storage_.back();
  }

 private:
  std::deque<DynamicBitset> storage_;
};

}  // namespace

GraphView Project(const TemporalGraph& graph, const IntervalSet& t1) {
  TransientFoldProvider folds;
  return Project(graph, t1, folds);
}

GraphView Project(const TemporalGraph& graph, const IntervalSet& t1,
                  PresenceFoldProvider& folds) {
  CheckDomain(graph, t1);
  GT_CHECK(!t1.Empty()) << "projection interval must be non-empty";
  GT_SPAN("operators/project", {{"times", t1.Count()}});
  GraphView view;
  view.times = t1;
  view.nodes = ExtractIndices(folds.IntersectionFold(graph.node_presence_index(), t1.bits()));
  view.edges = ExtractIndices(folds.IntersectionFold(graph.edge_presence_index(), t1.bits()));
  return view;
}

GraphView UnionOp(const TemporalGraph& graph, const IntervalSet& t1,
                  const IntervalSet& t2) {
  TransientFoldProvider folds;
  return UnionOp(graph, t1, t2, folds);
}

GraphView UnionOp(const TemporalGraph& graph, const IntervalSet& t1,
                  const IntervalSet& t2, PresenceFoldProvider& folds) {
  CheckDomain(graph, t1);
  CheckDomain(graph, t2);
  GT_SPAN("operators/union", {{"times", t1.Count() + t2.Count()}});
  GraphView view;
  view.times = t1 | t2;
  const DynamicBitset& mask = view.times.bits();
  view.nodes = ExtractIndices(folds.UnionFold(graph.node_presence_index(), mask));
  view.edges = ExtractIndices(folds.UnionFold(graph.edge_presence_index(), mask));
  return view;
}

GraphView IntersectionOp(const TemporalGraph& graph, const IntervalSet& t1,
                         const IntervalSet& t2) {
  TransientFoldProvider folds;
  return IntersectionOp(graph, t1, t2, folds);
}

GraphView IntersectionOp(const TemporalGraph& graph, const IntervalSet& t1,
                         const IntervalSet& t2, PresenceFoldProvider& folds) {
  CheckDomain(graph, t1);
  CheckDomain(graph, t2);
  GT_SPAN("operators/intersection", {{"times", t1.Count() + t2.Count()}});
  GraphView view;
  view.times = t1 | t2;
  const PresenceIndex& nodes = graph.node_presence_index();
  view.nodes =
      ExtractIndices(folds.UnionFold(nodes, t1.bits()) & folds.UnionFold(nodes, t2.bits()));
  const PresenceIndex& edges = graph.edge_presence_index();
  view.edges =
      ExtractIndices(folds.UnionFold(edges, t1.bits()) & folds.UnionFold(edges, t2.bits()));
  return view;
}

GraphView DifferenceOp(const TemporalGraph& graph, const IntervalSet& t1,
                       const IntervalSet& t2) {
  TransientFoldProvider folds;
  return DifferenceOp(graph, t1, t2, folds);
}

GraphView DifferenceOp(const TemporalGraph& graph, const IntervalSet& t1,
                       const IntervalSet& t2, PresenceFoldProvider& folds) {
  CheckDomain(graph, t1);
  CheckDomain(graph, t2);
  GT_SPAN("operators/difference", {{"times", t1.Count() + t2.Count()}});
  GraphView view;
  view.times = t1;  // Def 2.5: the result is defined on T₁ (τu_(u) = τu(u) ∩ T₁).

  // E₋ first: nodes depend on it (a surviving node still joins V₋ when it is
  // an endpoint of a deleted edge).
  const PresenceIndex& edges = graph.edge_presence_index();
  view.edges =
      ExtractIndices(folds.UnionFold(edges, t1.bits()) - folds.UnionFold(edges, t2.bits()));

  DynamicBitset endpoint(graph.num_nodes());
  for (EdgeId e : view.edges) {
    auto [src, dst] = graph.edge(e);
    endpoint.Set(src);
    endpoint.Set(dst);
  }

  // V₋ = (V(T₁) − V(T₂)) ∪ (V(T₁) ∩ endpoints(E₋)).
  const PresenceIndex& nodes = graph.node_presence_index();
  const DynamicBitset& n1 = folds.UnionFold(nodes, t1.bits());
  const DynamicBitset& n2 = folds.UnionFold(nodes, t2.bits());
  view.nodes = ExtractIndices((n1 - n2) | (n1 & endpoint));
  return view;
}

// --- Row-scan reference path ---------------------------------------------------

GraphView ProjectRowScan(const TemporalGraph& graph, const IntervalSet& t1) {
  CheckDomain(graph, t1);
  GT_CHECK(!t1.Empty()) << "projection interval must be non-empty";
  GraphView view;
  view.times = t1;
  const BitMatrix& nodes = graph.node_presence();
  view.nodes = FilterRows(graph.num_nodes(),
                          [&](std::size_t n) { return nodes.RowAllMasked(n, t1.bits()); });
  const BitMatrix& edges = graph.edge_presence();
  view.edges = FilterRows(graph.num_edges(),
                          [&](std::size_t e) { return edges.RowAllMasked(e, t1.bits()); });
  return view;
}

GraphView UnionOpRowScan(const TemporalGraph& graph, const IntervalSet& t1,
                         const IntervalSet& t2) {
  CheckDomain(graph, t1);
  CheckDomain(graph, t2);
  GraphView view;
  view.times = t1 | t2;
  const DynamicBitset& mask = view.times.bits();
  const BitMatrix& nodes = graph.node_presence();
  view.nodes = FilterRows(graph.num_nodes(),
                          [&](std::size_t n) { return nodes.RowAnyMasked(n, mask); });
  const BitMatrix& edges = graph.edge_presence();
  view.edges = FilterRows(graph.num_edges(),
                          [&](std::size_t e) { return edges.RowAnyMasked(e, mask); });
  return view;
}

GraphView IntersectionOpRowScan(const TemporalGraph& graph, const IntervalSet& t1,
                                const IntervalSet& t2) {
  CheckDomain(graph, t1);
  CheckDomain(graph, t2);
  GraphView view;
  view.times = t1 | t2;
  const BitMatrix& nodes = graph.node_presence();
  view.nodes = FilterRows(graph.num_nodes(), [&](std::size_t n) {
    return nodes.RowAnyMasked(n, t1.bits()) && nodes.RowAnyMasked(n, t2.bits());
  });
  const BitMatrix& edges = graph.edge_presence();
  view.edges = FilterRows(graph.num_edges(), [&](std::size_t e) {
    return edges.RowAnyMasked(e, t1.bits()) && edges.RowAnyMasked(e, t2.bits());
  });
  return view;
}

GraphView DifferenceOpRowScan(const TemporalGraph& graph, const IntervalSet& t1,
                              const IntervalSet& t2) {
  CheckDomain(graph, t1);
  CheckDomain(graph, t2);
  GraphView view;
  view.times = t1;  // Def 2.5: the result is defined on T₁ (τu_(u) = τu(u) ∩ T₁).

  // E₋ first: nodes depend on it (a surviving node still joins V₋ when it is
  // an endpoint of a deleted edge).
  const BitMatrix& edges = graph.edge_presence();
  view.edges = FilterRows(graph.num_edges(), [&](std::size_t e) {
    return edges.RowAnyMasked(e, t1.bits()) && edges.RowNoneMasked(e, t2.bits());
  });
  std::vector<char> difference_endpoint(graph.num_nodes(), 0);
  for (EdgeId e : view.edges) {
    auto [src, dst] = graph.edge(e);
    difference_endpoint[src] = 1;
    difference_endpoint[dst] = 1;
  }

  const BitMatrix& nodes = graph.node_presence();
  view.nodes = FilterRows(graph.num_nodes(), [&](std::size_t n) {
    if (!nodes.RowAnyMasked(n, t1.bits())) return false;
    return difference_endpoint[n] != 0 || nodes.RowNoneMasked(n, t2.bits());
  });
  return view;
}

}  // namespace graphtempo
