#ifndef GRAPHTEMPO_CORE_EXPLORATION_INTERNAL_H_
#define GRAPHTEMPO_CORE_EXPLORATION_INTERNAL_H_

#include <vector>

#include "core/exploration.h"

/// \file
/// Internal machinery shared by the pruned explorer and the exhaustive
/// baseline. Not part of the public API.

namespace graphtempo::internal_exploration {

/// Evaluates `result(G)` for event views against one selector.
///
/// For selectors over static attributes with DIST semantics (the paper's
/// Figs 13/14 shape: gender, f→f), the per-entity attribute tuple is
/// constant, so the selector reduces to a precomputed per-entity match table
/// and counting is a sum over the event view — no aggregation per candidate
/// pair. One counter is built per exploration run and reused for every
/// candidate. All other selectors fall back to aggregating the event view.
class SelectorCounter {
 public:
  /// `graph` and `selector` must outlive the counter.
  SelectorCounter(const TemporalGraph& graph, const EntitySelector& selector);

  /// Events in `view` under the selector.
  Weight Count(const GraphView& view) const;

  /// Whether the precomputed-match fast path is active (exposed for tests).
  bool fast_path() const { return fast_; }

  /// The per-entity match table (empty = match everything) and the selector;
  /// used by EventEngine to lift edge counting into bitset space.
  const std::vector<char>& match_table() const { return match_; }
  const EntitySelector& selector() const { return selector_; }

 private:
  const TemporalGraph& graph_;
  const EntitySelector& selector_;
  bool fast_ = false;
  std::vector<char> match_;  // per node (kind kNodes) or per edge (kind kEdges)
};

/// Builds the event graph between the two sides (see exploration.cc for the
/// composition rules).
GraphView BuildEventView(const TemporalGraph& graph, const IntervalSet& old_side,
                         const IntervalSet& new_side, ExtensionSemantics semantics,
                         EventType event);

/// The explorers' hot path: evaluates event counts for many candidate pairs
/// against one selector.
///
/// Sides are contiguous time ranges, so a side's membership is answered by
/// the graph's column-major `PresenceIndex` (docs/KERNELS.md): two
/// sparse-table lookups per side (OR folds for union semantics, AND folds
/// for intersection), independent of side length — instead of the ≤|T|
/// column operations of the previous cached-transposition engine, let alone
/// per-entity row scans. The constructor forces the lazy tables so the
/// parallel reference scans never serialize on the guarded build. For edge
/// selectors on the `SelectorCounter` fast path the count collapses further
/// to popcount(side-combination ∧ match-bitset) and no view is materialized.
class EventEngine {
 public:
  /// `graph` and `selector` must outlive the engine.
  EventEngine(const TemporalGraph& graph, const EntitySelector& selector);

  /// result(G) of the candidate pair (old_range, new_range).
  Weight Count(TimeRange old_range, TimeRange new_range, ExtensionSemantics semantics,
               EventType event) const;

 private:
  const TemporalGraph& graph_;
  SelectorCounter counter_;
  bool edge_bitset_path_ = false;
  DynamicBitset edge_match_bits_;
};

}  // namespace graphtempo::internal_exploration

#endif  // GRAPHTEMPO_CORE_EXPLORATION_INTERNAL_H_
