#ifndef GRAPHTEMPO_CORE_EXPLORATION_INTERNAL_H_
#define GRAPHTEMPO_CORE_EXPLORATION_INTERNAL_H_

#include <vector>

#include "core/exploration.h"

/// \file
/// Internal machinery shared by the pruned explorer and the exhaustive
/// baseline. Not part of the public API.

namespace graphtempo::internal_exploration {

/// Evaluates `result(G)` for event views against one selector.
///
/// For selectors over static attributes with DIST semantics (the paper's
/// Figs 13/14 shape: gender, f→f), the per-entity attribute tuple is
/// constant, so the selector reduces to a precomputed per-entity match table
/// and counting is a sum over the event view — no aggregation per candidate
/// pair. One counter is built per exploration run and reused for every
/// candidate. All other selectors fall back to aggregating the event view.
class SelectorCounter {
 public:
  /// `graph` and `selector` must outlive the counter.
  SelectorCounter(const TemporalGraph& graph, const EntitySelector& selector);

  /// Events in `view` under the selector.
  Weight Count(const GraphView& view) const;

  /// Whether the precomputed-match fast path is active (exposed for tests).
  bool fast_path() const { return fast_; }

  /// The per-entity match table (empty = match everything) and the selector;
  /// used by EventEngine to lift edge counting into bitset space.
  const std::vector<char>& match_table() const { return match_; }
  const EntitySelector& selector() const { return selector_; }

 private:
  const TemporalGraph& graph_;
  const EntitySelector& selector_;
  bool fast_ = false;
  std::vector<char> match_;  // per node (kind kNodes) or per edge (kind kEdges)
};

/// Builds the event graph between the two sides (see exploration.cc for the
/// composition rules).
GraphView BuildEventView(const TemporalGraph& graph, const IntervalSet& old_side,
                         const IntervalSet& new_side, ExtensionSemantics semantics,
                         EventType event);

/// The explorers' hot path: evaluates event counts for many candidate pairs
/// against one selector.
///
/// On construction the presence matrices are transposed into per-time-point
/// entity columns; a side's membership is then a fold (OR for union
/// semantics, AND for intersection) of ≤|T| cached columns — word operations
/// instead of per-entity row scans. For edge selectors on the
/// `SelectorCounter` fast path the count collapses further to
/// popcount(side-combination ∧ match-bitset) and no view is materialized.
class EventEngine {
 public:
  /// `graph` and `selector` must outlive the engine.
  EventEngine(const TemporalGraph& graph, const EntitySelector& selector);

  /// result(G) of the candidate pair (old_range, new_range).
  Weight Count(TimeRange old_range, TimeRange new_range, ExtensionSemantics semantics,
               EventType event) const;

 private:
  DynamicBitset FoldSide(const std::vector<DynamicBitset>& columns, TimeRange range,
                         ExtensionSemantics semantics) const;

  const TemporalGraph& graph_;
  SelectorCounter counter_;
  std::vector<DynamicBitset> node_columns_;  // per time point: nodes present
  std::vector<DynamicBitset> edge_columns_;  // per time point: edges present
  bool edge_bitset_path_ = false;
  DynamicBitset edge_match_bits_;
};

}  // namespace graphtempo::internal_exploration

#endif  // GRAPHTEMPO_CORE_EXPLORATION_INTERNAL_H_
