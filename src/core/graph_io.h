#ifndef GRAPHTEMPO_CORE_GRAPH_IO_H_
#define GRAPHTEMPO_CORE_GRAPH_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "core/temporal_graph.h"

/// \file
/// On-disk format for temporal attributed graphs: a sectioned TSV file.
///
/// ```
/// !format	graphtempo	1
/// !section	times
/// 2000
/// 2001
/// !section	nodes
/// u1	11        # label, presence over the time domain as 0/1 chars
/// !section	edges
/// u1	u2	10    # src label, dst label, presence
/// !section	static	gender
/// u1	m
/// !section	varying	publications
/// u1	2000	3  # node, time label, value
/// ```
///
/// Lines starting with '#' are comments. Sections may repeat and appear in
/// any order after `times` (which must come first so presence strings can be
/// validated). Read errors are reported through `*error` — no exceptions.

namespace graphtempo {

/// Serializes `graph` to `*out`. Always succeeds for a well-formed graph.
void WriteGraph(const TemporalGraph& graph, std::ostream* out);

/// Parses a graph from `*in`. On failure returns std::nullopt and describes
/// the problem (with a line number) in `*error`.
std::optional<TemporalGraph> ReadGraph(std::istream* in, std::string* error);

/// File-path convenience wrappers.
bool WriteGraphToFile(const TemporalGraph& graph, const std::string& path,
                      std::string* error);
std::optional<TemporalGraph> ReadGraphFromFile(const std::string& path,
                                               std::string* error);

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_GRAPH_IO_H_
