#ifndef GRAPHTEMPO_CORE_TEMPORAL_GRAPH_H_
#define GRAPHTEMPO_CORE_TEMPORAL_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/interval.h"
#include "core/presence_index.h"
#include "storage/attribute_table.h"
#include "storage/bit_matrix.h"

/// \file
/// `TemporalGraph`: the temporal attributed graph G(V, E, τu, τe, A) of
/// Definition 2.1, stored exactly as the paper's Section 4 prescribes:
///
///   * **V** — node presence as a |V| × |T| bit matrix (τu),
///   * **E** — edge presence as a |E| × |T| bit matrix (τe),
///   * **S** — one column per static attribute,
///   * **A_i** — one |V| × |T| code matrix per time-varying attribute.
///
/// Nodes and edges have dense integer ids. Node labels (external string ids)
/// are kept for I/O and examples; all algorithms work on ids. Edges are
/// directed ordered pairs, deduplicated — multi-edges within a time point do
/// not occur (matching both evaluation datasets of the paper).

namespace graphtempo {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

/// Reference to a node attribute of a graph: which table it lives in plus
/// its index within that table. Obtained from `TemporalGraph::FindAttribute`.
struct AttrRef {
  enum class Kind : std::uint8_t { kStatic, kTimeVarying };

  Kind kind = Kind::kStatic;
  std::uint32_t index = 0;

  bool operator==(const AttrRef&) const = default;
};

/// Reference to an edge attribute. Edge attributes extend the paper's model
/// the way its Section 2.2 anticipates ("other aggregations may be supported,
/// if edges are attributed as well"): they carry the measures that
/// `core/measures.h` aggregates (SUM/MIN/MAX/AVG) beyond COUNT.
struct EdgeAttrRef {
  enum class Kind : std::uint8_t { kStatic, kTimeVarying };

  Kind kind = Kind::kStatic;
  std::uint32_t index = 0;

  bool operator==(const EdgeAttrRef&) const = default;
};

class TemporalGraph {
 public:
  /// Creates a graph over the given ordered time domain. Labels are, e.g.,
  /// years ("2000" … "2020") or months ("May" … "Oct").
  explicit TemporalGraph(std::vector<std::string> time_labels);

  TemporalGraph(const TemporalGraph&) = delete;
  TemporalGraph& operator=(const TemporalGraph&) = delete;
  TemporalGraph(TemporalGraph&&) = default;
  TemporalGraph& operator=(TemporalGraph&&) = default;

  // --- Time domain -----------------------------------------------------------

  std::size_t num_times() const { return time_labels_.size(); }
  const std::string& time_label(TimeId t) const;
  std::optional<TimeId> FindTime(std::string_view label) const;

  /// Appends a new (initially empty) time point at the end of the domain and
  /// returns its id — the streaming entry point of an interactive deployment:
  /// ingest the new snapshot's edges, then analyze across the grown domain.
  /// IntervalSets created before the append refer to the old, smaller domain
  /// and must be rebuilt (operators GT_CHECK the domain size). Amortized
  /// O(|V| + |E|) per append (presence re-layout at word boundaries,
  /// time-varying column re-layout always).
  TimeId AppendTimePoint(std::string_view label);

  // --- Construction ----------------------------------------------------------

  /// Adds a node with a unique label; returns its id. GT_CHECKs uniqueness.
  NodeId AddNode(std::string_view label);

  /// Returns the node id for `label`, adding the node if absent.
  NodeId GetOrAddNode(std::string_view label);

  /// Adds the directed edge (src, dst); returns its id. If the edge already
  /// exists its existing id is returned (edges are deduplicated; presence is
  /// what varies with time).
  EdgeId GetOrAddEdge(NodeId src, NodeId dst);

  /// Marks node `n` as existing at time `t`.
  void SetNodePresent(NodeId n, TimeId t);

  /// Marks edge `e` as existing at time `t`. Also marks both endpoints
  /// present at `t`, maintaining the invariant that an edge never exists
  /// without its endpoints.
  void SetEdgePresent(EdgeId e, TimeId t);

  /// Declares a static attribute (e.g. "gender"); returns its index.
  std::uint32_t AddStaticAttribute(std::string name);

  /// Declares a time-varying attribute (e.g. "publications"); returns its index.
  std::uint32_t AddTimeVaryingAttribute(std::string name);

  /// Assigns static attribute `attr` of node `n`.
  void SetStaticValue(std::uint32_t attr, NodeId n, std::string_view value);

  /// Assigns time-varying attribute `attr` of node `n` at time `t`.
  void SetTimeVaryingValue(std::uint32_t attr, NodeId n, TimeId t, std::string_view value);

  /// Declares a static edge attribute (e.g. "channel"); returns its index.
  std::uint32_t AddStaticEdgeAttribute(std::string name);

  /// Declares a time-varying edge attribute (e.g. "duration"); returns its index.
  std::uint32_t AddTimeVaryingEdgeAttribute(std::string name);

  /// Assigns static edge attribute `attr` of edge `e`.
  void SetStaticEdgeValue(std::uint32_t attr, EdgeId e, std::string_view value);

  /// Assigns time-varying edge attribute `attr` of edge `e` at time `t`.
  void SetTimeVaryingEdgeValue(std::uint32_t attr, EdgeId e, TimeId t,
                               std::string_view value);

  // --- Lookup ----------------------------------------------------------------

  std::size_t num_nodes() const { return node_labels_.size(); }
  std::size_t num_edges() const { return edge_endpoints_.size(); }

  std::optional<NodeId> FindNode(std::string_view label) const;
  const std::string& node_label(NodeId n) const;

  std::optional<EdgeId> FindEdge(NodeId src, NodeId dst) const;
  std::pair<NodeId, NodeId> edge(EdgeId e) const;

  bool NodePresentAt(NodeId n, TimeId t) const { return node_presence_.Test(n, t); }
  bool EdgePresentAt(EdgeId e, TimeId t) const { return edge_presence_.Test(e, t); }

  /// τu(n) / τe(e) as interval sets.
  IntervalSet NodeTimes(NodeId n) const;
  IntervalSet EdgeTimes(EdgeId e) const;

  /// Presence matrices (rows = entity ids, columns = time points).
  const BitMatrix& node_presence() const { return node_presence_; }
  const BitMatrix& edge_presence() const { return edge_presence_; }

  /// Column-major presence indexes (one bitset over entities per time point,
  /// plus the sparse-table interval index) — the layout the operator and
  /// aggregation kernels run on (docs/KERNELS.md). Maintained incrementally
  /// alongside the row-major matrices by every mutation above.
  const PresenceIndex& node_presence_index() const { return node_index_cols_; }
  const PresenceIndex& edge_presence_index() const { return edge_index_cols_; }

  /// Looks up an attribute by name across both tables.
  std::optional<AttrRef> FindAttribute(std::string_view name) const;

  std::size_t num_static_attributes() const { return static_attrs_.size(); }
  std::size_t num_time_varying_attributes() const { return varying_attrs_.size(); }

  const StaticColumn& static_attribute(std::uint32_t index) const;
  const TimeVaryingColumn& time_varying_attribute(std::uint32_t index) const;

  /// The attribute's display name regardless of kind.
  const std::string& attribute_name(AttrRef ref) const;

  /// Dictionary-encoded value of attribute `ref` for node `n` at time `t`
  /// (`t` is ignored for static attributes). kNoValue if unassigned.
  AttrValueId ValueCodeAt(AttrRef ref, NodeId n, TimeId t) const;

  /// Human-readable value for a code of attribute `ref`.
  const std::string& ValueName(AttrRef ref, AttrValueId code) const;

  /// Dictionary code of `value` under attribute `ref`, if any value of that
  /// spelling has been stored.
  std::optional<AttrValueId> FindValueCode(AttrRef ref, std::string_view value) const;

  /// Looks up an edge attribute by name across both edge tables.
  std::optional<EdgeAttrRef> FindEdgeAttribute(std::string_view name) const;

  std::size_t num_static_edge_attributes() const { return static_edge_attrs_.size(); }
  std::size_t num_time_varying_edge_attributes() const {
    return varying_edge_attrs_.size();
  }

  const StaticColumn& static_edge_attribute(std::uint32_t index) const;
  const TimeVaryingColumn& time_varying_edge_attribute(std::uint32_t index) const;

  /// The edge attribute's display name regardless of kind.
  const std::string& edge_attribute_name(EdgeAttrRef ref) const;

  /// Dictionary-encoded value of edge attribute `ref` for edge `e` at time
  /// `t` (`t` ignored for static). kNoValue if unassigned.
  AttrValueId EdgeValueCodeAt(EdgeAttrRef ref, EdgeId e, TimeId t) const;

  /// Human-readable value for a code of edge attribute `ref`.
  const std::string& EdgeValueName(EdgeAttrRef ref, AttrValueId code) const;

  // --- Statistics -------------------------------------------------------------

  /// Number of nodes / edges existing at time `t` (a column popcount).
  std::size_t NodesAt(TimeId t) const;
  std::size_t EdgesAt(TimeId t) const;

  // --- Mutation tracking ------------------------------------------------------

  /// Monotonic counter bumped by every mutating call (AppendTimePoint,
  /// AddNode/GetOrAddEdge, SetNodePresent/SetEdgePresent, attribute
  /// declarations and assignments). Derived caches — most importantly the
  /// query engine's fingerprint-keyed result cache (docs/ENGINE.md) — compare
  /// the generation they were built at against the current one to decide
  /// whether their entries are still valid. Mutations follow the same
  /// single-writer contract as the rest of the class: no concurrent readers
  /// while mutating (the query engine brokers this with a readers/writer
  /// lock), so a plain counter suffices.
  std::uint64_t mutation_generation() const { return mutation_generation_; }

  /// Generation at which the *data of time point `t`* last changed. Only
  /// mutations that can alter an existing query answer mark a time point:
  ///
  ///   * `SetNodePresent` / `SetEdgePresent` and time-varying attribute
  ///     writes mark exactly the written time point;
  ///   * static attribute writes mark every time point (the value is visible
  ///     wherever the entity exists);
  ///   * `AppendTimePoint` stamps only the *new* point — existing points are
  ///     untouched, which is what makes append-only ingestion cheap for
  ///     per-entry cache validity (docs/ENGINE.md §3);
  ///   * structural additions (AddNode, GetOrAddEdge, attribute
  ///     declarations) are **time-neutral**: they bump
  ///     `mutation_generation()` but mark nothing, because a new entity is
  ///     absent from every time point and a new attribute is referenced by
  ///     no existing query.
  std::uint64_t time_mutation_generation(TimeId t) const;

  /// True iff no time point of `interval` was data-mutated after
  /// `generation` — i.e. a result computed at `generation` that depends only
  /// on the data of those time points is still valid. `interval` may come
  /// from a smaller (pre-append) domain; appended points never affect it.
  bool IntervalUnchangedSince(const IntervalSet& interval,
                              std::uint64_t generation) const;

 private:
  /// Snapshot (de)serialization (core/graph_snapshot.cc) reads and restores
  /// the private representation directly — including the mutation
  /// generations, which have no public setter by design.
  friend struct GraphSnapshotAccess;

  // Key for the (src, dst) → EdgeId map.
  static std::uint64_t EdgeKey(NodeId src, NodeId dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  /// Records that the data of time point `t` changed in the current
  /// (already bumped) mutation generation.
  void MarkTimeMutated(TimeId t);

  /// Records a mutation whose effect is not confined to one time point
  /// (static attribute writes).
  void MarkAllTimesMutated();

  std::vector<std::string> time_labels_;
  std::unordered_map<std::string, TimeId> time_index_;
  /// Per-time-point last-data-mutation generations (see
  /// `time_mutation_generation`); always sized `num_times()`.
  std::vector<std::uint64_t> time_mutation_generations_;

  std::vector<std::string> node_labels_;
  std::unordered_map<std::string, NodeId> node_index_;
  BitMatrix node_presence_;
  PresenceIndex node_index_cols_;

  std::vector<std::pair<NodeId, NodeId>> edge_endpoints_;
  std::unordered_map<std::uint64_t, EdgeId> edge_index_;
  BitMatrix edge_presence_;
  PresenceIndex edge_index_cols_;

  std::vector<StaticColumn> static_attrs_;
  std::vector<TimeVaryingColumn> varying_attrs_;
  std::vector<StaticColumn> static_edge_attrs_;
  std::vector<TimeVaryingColumn> varying_edge_attrs_;

  std::uint64_t mutation_generation_ = 0;
};

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_TEMPORAL_GRAPH_H_
