#include "core/model_adapters.h"

#include <algorithm>

#include "util/check.h"

namespace graphtempo {

TemporalGraph FromSnapshots(const std::vector<Snapshot>& snapshots) {
  GT_CHECK(!snapshots.empty()) << "need at least one snapshot";
  std::vector<std::string> labels;
  labels.reserve(snapshots.size());
  for (const Snapshot& snapshot : snapshots) labels.push_back(snapshot.time_label);

  TemporalGraph graph(std::move(labels));  // the ctor GT_CHECKs label uniqueness
  for (TimeId t = 0; t < snapshots.size(); ++t) {
    for (const auto& [src_label, dst_label] : snapshots[t].edges) {
      NodeId src = graph.GetOrAddNode(src_label);
      NodeId dst = graph.GetOrAddNode(dst_label);
      graph.SetEdgePresent(graph.GetOrAddEdge(src, dst), t);
    }
    for (const std::string& label : snapshots[t].isolated_nodes) {
      graph.SetNodePresent(graph.GetOrAddNode(label), t);
    }
  }
  return graph;
}

std::vector<Snapshot> ToSnapshots(const TemporalGraph& graph) {
  std::vector<Snapshot> snapshots(graph.num_times());
  for (TimeId t = 0; t < graph.num_times(); ++t) {
    snapshots[t].time_label = graph.time_label(t);
  }
  std::vector<bool> covered;  // nodes whose presence at t follows from an edge
  for (TimeId t = 0; t < graph.num_times(); ++t) {
    covered.assign(graph.num_nodes(), false);
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (!graph.EdgePresentAt(e, t)) continue;
      auto [src, dst] = graph.edge(e);
      snapshots[t].edges.emplace_back(graph.node_label(src), graph.node_label(dst));
      covered[src] = true;
      covered[dst] = true;
    }
    for (NodeId n = 0; n < graph.num_nodes(); ++n) {
      if (graph.NodePresentAt(n, t) && !covered[n]) {
        snapshots[t].isolated_nodes.push_back(graph.node_label(n));
      }
    }
  }
  return snapshots;
}

TemporalGraph FromDurationLabeled(const std::vector<std::string>& time_labels,
                                  const std::vector<DurationEdge>& edges) {
  TemporalGraph graph(time_labels);
  for (const DurationEdge& record : edges) {
    GT_CHECK_LT(record.start, graph.num_times()) << "duration edge starts out of domain";
    GT_CHECK_GE(record.duration, 1u) << "duration must be positive";
    NodeId src = graph.GetOrAddNode(record.src);
    NodeId dst = graph.GetOrAddNode(record.dst);
    EdgeId e = graph.GetOrAddEdge(src, dst);
    TimeId last = static_cast<TimeId>(
        std::min<std::size_t>(graph.num_times() - 1, record.start + record.duration - 1));
    for (TimeId t = record.start; t <= last; ++t) graph.SetEdgePresent(e, t);
  }
  return graph;
}

std::vector<DurationEdge> ToDurationLabeled(const TemporalGraph& graph) {
  std::vector<DurationEdge> records;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    auto [src, dst] = graph.edge(e);
    TimeId t = 0;
    while (t < graph.num_times()) {
      if (!graph.EdgePresentAt(e, t)) {
        ++t;
        continue;
      }
      TimeId run_start = t;
      while (t < graph.num_times() && graph.EdgePresentAt(e, t)) ++t;
      records.push_back(DurationEdge{graph.node_label(src), graph.node_label(dst),
                                     run_start, static_cast<std::size_t>(t - run_start)});
    }
  }
  return records;
}

}  // namespace graphtempo
