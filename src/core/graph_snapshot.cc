#include "core/graph_snapshot.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/compressed_bitset.h"
#include "storage/snapshot.h"
#include "util/check.h"

namespace graphtempo {

namespace {

using storage::ByteReader;
using storage::ByteWriter;
using storage::CompressedBitset;
using storage::SectionTag;
using storage::SnapshotSection;

constexpr std::uint32_t kTagTime = SectionTag("TIME");
constexpr std::uint32_t kTagNode = SectionTag("NODE");
constexpr std::uint32_t kTagEdge = SectionTag("EDGE");
constexpr std::uint32_t kTagNodePresence = SectionTag("NPRS");
constexpr std::uint32_t kTagEdgePresence = SectionTag("EPRS");
constexpr std::uint32_t kTagNodeStaticAttrs = SectionTag("NSAT");
constexpr std::uint32_t kTagNodeVaryingAttrs = SectionTag("NVAT");
constexpr std::uint32_t kTagEdgeStaticAttrs = SectionTag("ESAT");
constexpr std::uint32_t kTagEdgeVaryingAttrs = SectionTag("EVAT");

obs::Counter& SnapshotSaveCounter() {
  static obs::Counter& counter =
      obs::Registry::Instance().GetCounter("storage/snapshot_save");
  return counter;
}

obs::Counter& SnapshotBytesCounter() {
  static obs::Counter& counter =
      obs::Registry::Instance().GetCounter("storage/snapshot_bytes");
  return counter;
}

obs::Counter& SnapshotLoadCounter() {
  static obs::Counter& counter =
      obs::Registry::Instance().GetCounter("storage/snapshot_load");
  return counter;
}

obs::Counter& SnapshotLoadErrorCounter() {
  static obs::Counter& counter =
      obs::Registry::Instance().GetCounter("storage/snapshot_load_errors");
  return counter;
}

void EncodeDictionary(const Dictionary& dict, ByteWriter* out) {
  out->U32(static_cast<std::uint32_t>(dict.size()));
  for (const std::string& value : dict.values()) out->Str(value);
}

bool DecodeDictionaryValues(ByteReader* in, std::vector<std::string>* values) {
  std::uint32_t count = 0;
  if (!in->U32(&count)) return false;
  values->clear();
  values->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string value;
    if (!in->Str(&value)) return false;
    values->push_back(std::move(value));
  }
  return true;
}

void EncodeCodes(const std::vector<AttrValueId>& codes, ByteWriter* out) {
  out->U64(codes.size());
  for (AttrValueId code : codes) out->U32(code);
}

bool DecodeCodes(ByteReader* in, std::vector<AttrValueId>* codes) {
  std::uint64_t count = 0;
  if (!in->U64(&count)) return false;
  if (count > in->remaining() / sizeof(AttrValueId)) return false;
  codes->clear();
  codes->reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    AttrValueId code = 0;
    if (!in->U32(&code)) return false;
    codes->push_back(code);
  }
  return true;
}

/// One static-column table (node or edge): u32 column count, then per column
/// name + dictionary + raw codes.
std::string EncodeStaticColumns(const std::vector<StaticColumn>& columns) {
  ByteWriter out;
  out.U32(static_cast<std::uint32_t>(columns.size()));
  for (const StaticColumn& column : columns) {
    out.Str(column.name());
    EncodeDictionary(column.dictionary(), &out);
    EncodeCodes(column.codes(), &out);
  }
  return out.Take();
}

bool DecodeStaticColumns(std::string_view bytes, std::size_t entities,
                         std::vector<StaticColumn>* columns) {
  ByteReader in(bytes);
  std::uint32_t count = 0;
  if (!in.U32(&count)) return false;
  columns->clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name;
    std::vector<std::string> dict_values;
    std::vector<AttrValueId> codes;
    if (!in.Str(&name) || !DecodeDictionaryValues(&in, &dict_values) ||
        !DecodeCodes(&in, &codes)) {
      return false;
    }
    if (codes.size() != entities) return false;
    StaticColumn column(std::move(name));
    if (!column.Restore(std::move(dict_values), std::move(codes))) return false;
    columns->push_back(std::move(column));
  }
  return in.AtEnd();
}

std::string EncodeVaryingColumns(const std::vector<TimeVaryingColumn>& columns) {
  ByteWriter out;
  out.U32(static_cast<std::uint32_t>(columns.size()));
  for (const TimeVaryingColumn& column : columns) {
    out.Str(column.name());
    out.U32(static_cast<std::uint32_t>(column.num_times()));
    EncodeDictionary(column.dictionary(), &out);
    EncodeCodes(column.codes(), &out);
  }
  return out.Take();
}

bool DecodeVaryingColumns(std::string_view bytes, std::size_t entities,
                          std::size_t num_times,
                          std::vector<TimeVaryingColumn>* columns) {
  ByteReader in(bytes);
  std::uint32_t count = 0;
  if (!in.U32(&count)) return false;
  columns->clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name;
    std::uint32_t column_times = 0;
    std::vector<std::string> dict_values;
    std::vector<AttrValueId> codes;
    if (!in.Str(&name) || !in.U32(&column_times) ||
        !DecodeDictionaryValues(&in, &dict_values) || !DecodeCodes(&in, &codes)) {
      return false;
    }
    if (column_times != num_times || codes.size() != entities * num_times) {
      return false;
    }
    TimeVaryingColumn column(std::move(name), num_times);
    if (!column.Restore(std::move(dict_values), std::move(codes))) return false;
    columns->push_back(std::move(column));
  }
  return in.AtEnd();
}

/// One presence index: u32 num_times, u64 entities, then per time point one
/// compressed column.
std::string EncodePresence(const PresenceIndex& index) {
  ByteWriter out;
  out.U32(static_cast<std::uint32_t>(index.num_times()));
  out.U64(index.num_entities());
  for (std::size_t t = 0; t < index.num_times(); ++t) {
    CompressedBitset::Compress(index.Column(t)).EncodeTo(&out);
  }
  return out.Take();
}

bool DecodePresence(std::string_view bytes, std::size_t num_times,
                    std::size_t* entities, std::vector<CompressedBitset>* columns) {
  ByteReader in(bytes);
  std::uint32_t column_count = 0;
  std::uint64_t entity_count = 0;
  if (!in.U32(&column_count) || !in.U64(&entity_count)) return false;
  if (column_count != num_times) return false;
  columns->clear();
  columns->reserve(column_count);
  for (std::uint32_t t = 0; t < column_count; ++t) {
    CompressedBitset column;
    if (!CompressedBitset::DecodeFrom(&in, &column)) return false;
    if (column.size_bits() != entity_count) return false;
    columns->push_back(std::move(column));
  }
  if (!in.AtEnd()) return false;
  *entities = static_cast<std::size_t>(entity_count);
  return true;
}

void EncodeTuple(const AttrTuple& tuple, ByteWriter* out) {
  out->U8(static_cast<std::uint8_t>(tuple.size()));
  for (std::size_t i = 0; i < tuple.size(); ++i) out->U32(tuple[i]);
}

bool DecodeTuple(ByteReader* in, AttrTuple* tuple) {
  std::uint8_t size = 0;
  if (!in->U8(&size)) return false;
  if (size > AttrTuple::kMaxAttrs) return false;
  *tuple = AttrTuple();
  for (std::uint8_t i = 0; i < size; ++i) {
    AttrValueId code = 0;
    if (!in->U32(&code)) return false;
    tuple->Append(code);
  }
  return true;
}

}  // namespace

/// Befriended by TemporalGraph: the only code that reads/writes its private
/// representation wholesale.
struct GraphSnapshotAccess {
  static std::vector<SnapshotSection> Serialize(const TemporalGraph& g) {
    std::vector<SnapshotSection> sections;

    ByteWriter time;
    time.U64(g.mutation_generation_);
    time.U32(static_cast<std::uint32_t>(g.time_labels_.size()));
    for (std::size_t t = 0; t < g.time_labels_.size(); ++t) {
      time.Str(g.time_labels_[t]);
      time.U64(g.time_mutation_generations_[t]);
    }
    sections.push_back({kTagTime, time.Take()});

    ByteWriter nodes;
    nodes.U32(static_cast<std::uint32_t>(g.node_labels_.size()));
    for (const std::string& label : g.node_labels_) nodes.Str(label);
    sections.push_back({kTagNode, nodes.Take()});

    ByteWriter edges;
    edges.U32(static_cast<std::uint32_t>(g.edge_endpoints_.size()));
    for (const auto& [src, dst] : g.edge_endpoints_) {
      edges.U32(src);
      edges.U32(dst);
    }
    sections.push_back({kTagEdge, edges.Take()});

    sections.push_back({kTagNodePresence, EncodePresence(g.node_index_cols_)});
    sections.push_back({kTagEdgePresence, EncodePresence(g.edge_index_cols_)});
    sections.push_back({kTagNodeStaticAttrs, EncodeStaticColumns(g.static_attrs_)});
    sections.push_back({kTagNodeVaryingAttrs, EncodeVaryingColumns(g.varying_attrs_)});
    sections.push_back({kTagEdgeStaticAttrs, EncodeStaticColumns(g.static_edge_attrs_)});
    sections.push_back({kTagEdgeVaryingAttrs, EncodeVaryingColumns(g.varying_edge_attrs_)});
    return sections;
  }

  static std::optional<TemporalGraph> Deserialize(
      const std::vector<SnapshotSection>& sections, const std::string& path,
      std::string* error) {
    auto fail = [&](const std::string& what) -> std::optional<TemporalGraph> {
      *error = path + ": " + what;
      return std::nullopt;
    };
    auto find = [&](std::uint32_t tag) -> const SnapshotSection* {
      for (const SnapshotSection& section : sections) {
        if (section.tag == tag) return &section;
      }
      return nullptr;
    };
    const SnapshotSection* required[] = {
        find(kTagTime),           find(kTagNode),
        find(kTagEdge),           find(kTagNodePresence),
        find(kTagEdgePresence),   find(kTagNodeStaticAttrs),
        find(kTagNodeVaryingAttrs), find(kTagEdgeStaticAttrs),
        find(kTagEdgeVaryingAttrs)};
    for (const SnapshotSection* section : required) {
      if (section == nullptr) return fail("missing snapshot section");
    }

    // TIME — the time domain plus the cache-validity generations.
    ByteReader time(required[0]->payload);
    std::uint64_t mutation_generation = 0;
    std::uint32_t num_times = 0;
    if (!time.U64(&mutation_generation) || !time.U32(&num_times)) {
      return fail("corrupt TIME section");
    }
    if (num_times == 0) return fail("snapshot has an empty time domain");
    std::vector<std::string> time_labels;
    std::vector<std::uint64_t> time_generations;
    time_labels.reserve(num_times);
    time_generations.reserve(num_times);
    for (std::uint32_t t = 0; t < num_times; ++t) {
      std::string label;
      std::uint64_t generation = 0;
      if (!time.Str(&label) || !time.U64(&generation)) {
        return fail("corrupt TIME section");
      }
      time_labels.push_back(std::move(label));
      time_generations.push_back(generation);
    }
    if (!time.AtEnd()) return fail("corrupt TIME section");
    for (std::size_t t = 0; t < time_labels.size(); ++t) {
      for (std::size_t u = t + 1; u < time_labels.size(); ++u) {
        if (time_labels[t] == time_labels[u]) return fail("duplicate time label");
      }
    }

    // NODE / EDGE — labels, endpoints, and the derived lookup maps.
    ByteReader nodes(required[1]->payload);
    std::uint32_t num_nodes = 0;
    if (!nodes.U32(&num_nodes)) return fail("corrupt NODE section");
    std::vector<std::string> node_labels;
    std::unordered_map<std::string, NodeId> node_index;
    node_labels.reserve(num_nodes);
    node_index.reserve(num_nodes);
    for (std::uint32_t n = 0; n < num_nodes; ++n) {
      std::string label;
      if (!nodes.Str(&label)) return fail("corrupt NODE section");
      node_labels.push_back(std::move(label));
      if (!node_index.emplace(node_labels.back(), n).second) {
        return fail("duplicate node label");
      }
    }
    if (!nodes.AtEnd()) return fail("corrupt NODE section");

    ByteReader edges(required[2]->payload);
    std::uint32_t num_edges = 0;
    if (!edges.U32(&num_edges)) return fail("corrupt EDGE section");
    std::vector<std::pair<NodeId, NodeId>> edge_endpoints;
    std::unordered_map<std::uint64_t, EdgeId> edge_index;
    edge_endpoints.reserve(num_edges);
    edge_index.reserve(num_edges);
    for (std::uint32_t e = 0; e < num_edges; ++e) {
      std::uint32_t src = 0, dst = 0;
      if (!edges.U32(&src) || !edges.U32(&dst)) return fail("corrupt EDGE section");
      if (src >= num_nodes || dst >= num_nodes) {
        return fail("edge endpoint out of range");
      }
      edge_endpoints.emplace_back(src, dst);
      if (!edge_index.emplace(TemporalGraph::EdgeKey(src, dst), e).second) {
        return fail("duplicate edge");
      }
    }
    if (!edges.AtEnd()) return fail("corrupt EDGE section");

    // Presence — compressed columns, validated against the counts above.
    std::size_t node_entities = 0, edge_entities = 0;
    std::vector<CompressedBitset> node_columns, edge_columns;
    if (!DecodePresence(required[3]->payload, num_times, &node_entities,
                        &node_columns)) {
      return fail("corrupt NPRS section");
    }
    if (node_entities != num_nodes) return fail("node presence count mismatch");
    if (!DecodePresence(required[4]->payload, num_times, &edge_entities,
                        &edge_columns)) {
      return fail("corrupt EPRS section");
    }
    if (edge_entities != num_edges) return fail("edge presence count mismatch");

    // Attributes — dictionaries + raw code arrays.
    std::vector<StaticColumn> static_attrs, static_edge_attrs;
    std::vector<TimeVaryingColumn> varying_attrs, varying_edge_attrs;
    if (!DecodeStaticColumns(required[5]->payload, num_nodes, &static_attrs)) {
      return fail("corrupt NSAT section");
    }
    if (!DecodeVaryingColumns(required[6]->payload, num_nodes, num_times,
                              &varying_attrs)) {
      return fail("corrupt NVAT section");
    }
    if (!DecodeStaticColumns(required[7]->payload, num_edges, &static_edge_attrs)) {
      return fail("corrupt ESAT section");
    }
    if (!DecodeVaryingColumns(required[8]->payload, num_edges, num_times,
                              &varying_edge_attrs)) {
      return fail("corrupt EVAT section");
    }

    // Everything validated — assemble. The row-major matrices are rebuilt
    // from a transient decode of each column; the column-major indexes keep
    // the compressed form and decode on first touch.
    TemporalGraph g(std::move(time_labels));
    g.mutation_generation_ = mutation_generation;
    g.time_mutation_generations_ = std::move(time_generations);
    g.node_labels_ = std::move(node_labels);
    g.node_index_ = std::move(node_index);
    g.edge_endpoints_ = std::move(edge_endpoints);
    g.edge_index_ = std::move(edge_index);

    g.node_presence_.AddRows(num_nodes);
    for (std::size_t t = 0; t < node_columns.size(); ++t) {
      node_columns[t].Decompress().ForEachSetBit(
          [&](std::size_t entity) { g.node_presence_.Set(entity, t); });
    }
    g.edge_presence_.AddRows(num_edges);
    for (std::size_t t = 0; t < edge_columns.size(); ++t) {
      edge_columns[t].Decompress().ForEachSetBit(
          [&](std::size_t entity) { g.edge_presence_.Set(entity, t); });
    }
    g.node_index_cols_.RestoreCompressed(num_nodes, std::move(node_columns));
    g.edge_index_cols_.RestoreCompressed(num_edges, std::move(edge_columns));

    g.static_attrs_ = std::move(static_attrs);
    g.varying_attrs_ = std::move(varying_attrs);
    g.static_edge_attrs_ = std::move(static_edge_attrs);
    g.varying_edge_attrs_ = std::move(varying_edge_attrs);
    return g;
  }
};

bool SaveGraphSnapshot(const TemporalGraph& graph, const std::string& path,
                       std::string* error) {
  GT_SPAN("storage/snapshot_save", {{"times", graph.num_times()}});
  std::vector<SnapshotSection> sections = GraphSnapshotAccess::Serialize(graph);
  if (!storage::WriteSnapshotFile(path, sections, error)) return false;
  std::size_t bytes = 0;
  for (const SnapshotSection& section : sections) bytes += section.payload.size();
  SnapshotSaveCounter().Increment();
  SnapshotBytesCounter().Add(bytes);
  return true;
}

std::optional<TemporalGraph> LoadGraphSnapshot(const std::string& path,
                                               std::string* error) {
  GT_SPAN("storage/snapshot_load");
  std::optional<std::vector<SnapshotSection>> sections =
      storage::ReadSnapshotFile(path, error);
  std::optional<TemporalGraph> graph;
  if (sections.has_value()) {
    graph = GraphSnapshotAccess::Deserialize(*sections, path, error);
  }
  if (graph.has_value()) {
    SnapshotLoadCounter().Increment();
  } else {
    SnapshotLoadErrorCounter().Increment();
  }
  return graph;
}

std::string EncodeAggregateGraphs(const std::vector<AggregateGraph>& layers) {
  ByteWriter out;
  out.U64(layers.size());
  for (const AggregateGraph& layer : layers) {
    out.U64(layer.nodes().size());
    for (const auto& [tuple, weight] : layer.nodes()) {
      EncodeTuple(tuple, &out);
      out.U64(static_cast<std::uint64_t>(weight));
    }
    out.U64(layer.edges().size());
    for (const auto& [pair, weight] : layer.edges()) {
      EncodeTuple(pair.src, &out);
      EncodeTuple(pair.dst, &out);
      out.U64(static_cast<std::uint64_t>(weight));
    }
  }
  return out.Take();
}

bool DecodeAggregateGraphs(std::string_view bytes,
                           std::vector<AggregateGraph>* out, std::string* error) {
  ByteReader in(bytes);
  std::uint64_t layer_count = 0;
  if (!in.U64(&layer_count)) {
    *error = "corrupt aggregate-graph encoding";
    return false;
  }
  std::vector<AggregateGraph> layers;
  for (std::uint64_t l = 0; l < layer_count; ++l) {
    AggregateGraph layer;
    std::uint64_t node_count = 0;
    if (!in.U64(&node_count)) break;
    bool ok = true;
    for (std::uint64_t i = 0; ok && i < node_count; ++i) {
      AttrTuple tuple;
      std::uint64_t weight = 0;
      ok = DecodeTuple(&in, &tuple) && in.U64(&weight);
      if (ok) layer.AddNodeWeight(tuple, static_cast<Weight>(weight));
    }
    std::uint64_t edge_count = 0;
    ok = ok && in.U64(&edge_count);
    for (std::uint64_t i = 0; ok && i < edge_count; ++i) {
      AttrTuple src, dst;
      std::uint64_t weight = 0;
      ok = DecodeTuple(&in, &src) && DecodeTuple(&in, &dst) && in.U64(&weight);
      if (ok) layer.AddEdgeWeight(src, dst, static_cast<Weight>(weight));
    }
    if (!ok) break;
    layers.push_back(std::move(layer));
  }
  if (layers.size() != layer_count || !in.AtEnd()) {
    *error = "corrupt aggregate-graph encoding";
    return false;
  }
  *out = std::move(layers);
  return true;
}

}  // namespace graphtempo
