#include "core/presence_index.h"

#include <bit>
#include <utility>

#include "accel/backend.h"
#include "core/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/parallel.h"

namespace graphtempo {

namespace {

/// Words per chunk below which a fold runs inline. Folding is pure streaming
/// OR/AND, so chunks need to be large to earn their dispatch.
constexpr std::size_t kFoldMinWordsPerChunk = 4096;

/// dst[w] op= src[w] over disjoint word ranges — the word-parallel combine
/// every kernel bottoms out in, dispatched through the active compute
/// backend (accel/backend.h). Each chunk owns a disjoint word range and
/// bitwise ops are per-word pure functions, so the result is identical at
/// any thread count and on every backend. Counts the words it scanned.
template <typename RangeOp>
void CombineWords(DynamicBitset& dst, const DynamicBitset& src, RangeOp range_op) {
  GT_DCHECK(dst.num_words() == src.num_words());
  std::uint64_t* wd = dst.word_data();
  const std::uint64_t* ws = src.word_data();
  const std::size_t words = dst.num_words();
  ParallelPartition partition(words, kFoldMinWordsPerChunk, /*alignment=*/1);
  partition.Run([&](std::size_t, std::size_t begin, std::size_t end) {
    range_op(wd + begin, ws + begin, end - begin);
  });
  internal_counters::AddKernelWords(2 * words);
}

void OrInto(DynamicBitset& out, const DynamicBitset& src) {
  CombineWords(out, src, accel::ActiveBackend().range_or);
}

void AndInto(DynamicBitset& out, const DynamicBitset& src) {
  CombineWords(out, src, accel::ActiveBackend().range_and);
}

/// Fused interval fold: out = a op b in one streaming pass, instead of
/// copying `a` and combining `b` into the copy (which streams the words an
/// extra time through the copy constructor).
template <typename FoldOp>
DynamicBitset FoldInto(const DynamicBitset& a, const DynamicBitset& b,
                       FoldOp fold_op) {
  GT_DCHECK(a.num_words() == b.num_words());
  DynamicBitset out(a.size());
  const std::uint64_t* wa = a.word_data();
  const std::uint64_t* wb = b.word_data();
  std::uint64_t* wo = out.word_data();
  const std::size_t words = out.num_words();
  ParallelPartition partition(words, kFoldMinWordsPerChunk, /*alignment=*/1);
  partition.Run([&](std::size_t, std::size_t begin, std::size_t end) {
    fold_op(wa + begin, wb + begin, wo + begin, end - begin);
  });
  internal_counters::AddKernelWords(2 * words);
  return out;
}

}  // namespace

PresenceIndex::PresenceIndex(std::size_t num_times)
    : columns_(num_times), mutex_(std::make_unique<std::mutex>()) {}

PresenceIndex::PresenceIndex(PresenceIndex&& other) noexcept
    : entities_(other.entities_),
      columns_(std::move(other.columns_)),
      compressed_(std::move(other.compressed_)),
      decoded_(std::move(other.decoded_)),
      compressed_remaining_(
          other.compressed_remaining_.load(std::memory_order_relaxed)),
      generation_(other.generation_.load(std::memory_order_relaxed)),
      mutex_(std::move(other.mutex_)) {
  other.compressed_remaining_.store(0, std::memory_order_relaxed);
  or_table_.levels_ = std::move(other.or_table_.levels_);
  or_table_.built_generation.store(
      other.or_table_.built_generation.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  and_table_.levels_ = std::move(other.and_table_.levels_);
  and_table_.built_generation.store(
      other.and_table_.built_generation.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  counts_ = std::move(other.counts_);
  counts_generation_.store(
      other.counts_generation_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

PresenceIndex& PresenceIndex::operator=(PresenceIndex&& other) noexcept {
  if (this == &other) return *this;
  entities_ = other.entities_;
  columns_ = std::move(other.columns_);
  compressed_ = std::move(other.compressed_);
  decoded_ = std::move(other.decoded_);
  compressed_remaining_.store(
      other.compressed_remaining_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  other.compressed_remaining_.store(0, std::memory_order_relaxed);
  generation_.store(other.generation_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  or_table_.levels_ = std::move(other.or_table_.levels_);
  or_table_.built_generation.store(
      other.or_table_.built_generation.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  and_table_.levels_ = std::move(other.and_table_.levels_);
  and_table_.built_generation.store(
      other.and_table_.built_generation.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  counts_ = std::move(other.counts_);
  counts_generation_.store(
      other.counts_generation_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  mutex_ = std::move(other.mutex_);
  return *this;
}

void PresenceIndex::AddTimePoints(std::size_t count) {
  EnsureDecodedAll();
  for (std::size_t i = 0; i < count; ++i) columns_.emplace_back(entities_);
  Invalidate();
}

void PresenceIndex::AddEntities(std::size_t count) {
  EnsureDecodedAll();
  entities_ += count;
  for (DynamicBitset& column : columns_) column.Resize(entities_);
  // New entities are absent everywhere; existing folds stay correct for the
  // old entity range but the bitset sizes changed — invalidate.
  Invalidate();
}

void PresenceIndex::Set(std::size_t entity, std::size_t t) {
  GT_CHECK_LT(t, columns_.size()) << "time out of range";
  GT_CHECK_LT(entity, entities_) << "entity out of range";
  EnsureDecoded(t);
  columns_[t].Set(entity);
  Invalidate();
}

void PresenceIndex::RestoreCompressed(
    std::size_t entities, std::vector<storage::CompressedBitset> columns) {
  for (const storage::CompressedBitset& column : columns) {
    GT_CHECK_EQ(column.size_bits(), entities) << "compressed column size mismatch";
  }
  entities_ = entities;
  columns_.assign(columns.size(), DynamicBitset());  // placeholders until decode
  compressed_ = std::move(columns);
  decoded_.reset(compressed_.empty()
                     ? nullptr
                     : new std::atomic<std::uint8_t>[compressed_.size()]());
  compressed_remaining_.store(compressed_.size(), std::memory_order_release);
  Invalidate();
}

void PresenceIndex::DecodeColumnLocked(std::size_t t) const {
  if (decoded_[t].load(std::memory_order_relaxed) != 0) return;
  static obs::Counter& decodes =
      obs::Registry::Instance().GetCounter("storage/bitset_decode");
  columns_[t] = compressed_[t].Decompress();
  compressed_[t] = storage::CompressedBitset();  // free the encoded words
  decodes.Increment();
  decoded_[t].store(1, std::memory_order_release);
  compressed_remaining_.fetch_sub(1, std::memory_order_acq_rel);
}

void PresenceIndex::EnsureDecoded(std::size_t t) const {
  if (compressed_remaining_.load(std::memory_order_acquire) == 0) return;
  if (decoded_[t].load(std::memory_order_acquire) != 0) return;
  std::lock_guard<std::mutex> lock(*mutex_);
  DecodeColumnLocked(t);
}

void PresenceIndex::EnsureDecodedAll() const {
  if (compressed_remaining_.load(std::memory_order_acquire) == 0) return;
  std::lock_guard<std::mutex> lock(*mutex_);
  for (std::size_t t = 0; t < columns_.size(); ++t) DecodeColumnLocked(t);
}

const DynamicBitset& PresenceIndex::Column(std::size_t t) const {
  GT_CHECK_LT(t, columns_.size()) << "time out of range";
  EnsureDecoded(t);
  return columns_[t];
}

std::size_t PresenceIndex::CountAt(std::size_t t) const { return Column(t).Count(); }

void PresenceIndex::EnsureCounts() const {
  const std::uint64_t current = generation_.load(std::memory_order_relaxed);
  if (counts_generation_.load(std::memory_order_acquire) == current) return;
  EnsureDecodedAll();  // before taking mutex_ — it locks internally
  std::lock_guard<std::mutex> lock(*mutex_);
  if (counts_generation_.load(std::memory_order_relaxed) == current) return;
  counts_.resize(columns_.size());
  for (std::size_t t = 0; t < columns_.size(); ++t) counts_[t] = columns_[t].Count();
  counts_generation_.store(current, std::memory_order_release);
}

std::size_t PresenceIndex::AppearancesOver(const DynamicBitset& times) const {
  GT_CHECK_EQ(times.size(), columns_.size()) << "time mask/domain mismatch";
  EnsureCounts();
  std::size_t total = 0;
  times.ForEachSetBit([&](std::size_t t) { total += counts_[t]; });
  return total;
}

std::size_t PresenceIndex::MaxCountOver(const DynamicBitset& times) const {
  GT_CHECK_EQ(times.size(), columns_.size()) << "time mask/domain mismatch";
  EnsureCounts();
  std::size_t max_count = 0;
  times.ForEachSetBit([&](std::size_t t) {
    if (counts_[t] > max_count) max_count = counts_[t];
  });
  return max_count;
}

void PresenceIndex::EnsureTables() const {
  EnsureTable(Fold::kOr);
  EnsureTable(Fold::kAnd);
}

void PresenceIndex::EnsureTable(Fold fold) const {
  Table& t = table(fold);
  const std::uint64_t current = generation_.load(std::memory_order_relaxed);
  if (t.built_generation.load(std::memory_order_acquire) == current) return;
  EnsureDecodedAll();  // before taking mutex_ — it locks internally
  std::lock_guard<std::mutex> lock(*mutex_);
  if (t.built_generation.load(std::memory_order_relaxed) == current) return;

  GT_SPAN(fold == Fold::kOr ? "presence/build_or_table"
                            : "presence/build_and_table",
          {{"times", columns_.size()}});
  const std::size_t n = columns_.size();
  t.levels_.clear();
  if (n >= 2) {
    const std::size_t num_levels =
        static_cast<std::size_t>(std::bit_width(n) - 1);  // floor(log2 n)
    t.levels_.reserve(num_levels);
    for (std::size_t k = 1; k <= num_levels; ++k) {
      const std::size_t window = std::size_t{1} << k;
      const std::size_t half = window / 2;
      const std::vector<DynamicBitset>& prev =
          k == 1 ? columns_ : t.levels_[k - 2];
      std::vector<DynamicBitset> level;
      level.reserve(n - window + 1);
      const auto& backend = accel::ActiveBackend();
      for (std::size_t i = 0; i + window <= n; ++i) {
        level.push_back(fold == Fold::kOr
                            ? FoldInto(prev[i], prev[i + half], backend.fold_or)
                            : FoldInto(prev[i], prev[i + half], backend.fold_and));
      }
      t.levels_.push_back(std::move(level));
    }
  }
  t.built_generation.store(current, std::memory_order_release);
}

DynamicBitset PresenceIndex::FoldRange(Fold fold, std::size_t first,
                                       std::size_t last) const {
  GT_DCHECK(first <= last && last < columns_.size());
  const std::size_t len = last - first + 1;
  GT_SPAN(fold == Fold::kOr ? "presence/fold_or" : "presence/fold_and",
          {{"len", len}});
  if (len == 1) {
    internal_counters::AddIntervalIndex(/*hits=*/0, /*misses=*/1);
    EnsureDecoded(first);
    return columns_[first];
  }
  EnsureTable(fold);
  const Table& t = table(fold);
  // floor(log2 len) — the largest power-of-two window fitting the range.
  const std::size_t k = static_cast<std::size_t>(std::bit_width(len) - 1);
  const std::size_t window = std::size_t{1} << k;
  const std::vector<DynamicBitset>& level = t.levels_[k - 1];
  internal_counters::AddIntervalIndex(/*hits=*/1, /*misses=*/0);
  const DynamicBitset& tail = level[last + 1 - window];
  const auto& backend = accel::ActiveBackend();
  return fold == Fold::kOr ? FoldInto(level[first], tail, backend.fold_or)
                           : FoldInto(level[first], tail, backend.fold_and);
}

DynamicBitset PresenceIndex::UnionRange(std::size_t first, std::size_t last) const {
  GT_CHECK_LE(first, last);
  GT_CHECK_LT(last, columns_.size()) << "time out of range";
  return FoldRange(Fold::kOr, first, last);
}

DynamicBitset PresenceIndex::IntersectRange(std::size_t first, std::size_t last) const {
  GT_CHECK_LE(first, last);
  GT_CHECK_LT(last, columns_.size()) << "time out of range";
  return FoldRange(Fold::kAnd, first, last);
}

namespace {

/// Calls `fn(first, last)` for every maximal run of consecutive set bits in
/// `times`, ascending.
template <typename Fn>
void ForEachRun(const DynamicBitset& times, Fn&& fn) {
  bool in_run = false;
  std::size_t run_first = 0;
  std::size_t prev = 0;
  times.ForEachSetBit([&](std::size_t t) {
    if (!in_run) {
      in_run = true;
      run_first = t;
    } else if (t != prev + 1) {
      fn(run_first, prev);
      run_first = t;
    }
    prev = t;
  });
  if (in_run) fn(run_first, prev);
}

}  // namespace

DynamicBitset PresenceIndex::UnionOver(const DynamicBitset& times) const {
  GT_CHECK_EQ(times.size(), columns_.size()) << "time mask/domain mismatch";
  DynamicBitset result(entities_);
  bool first_run = true;
  ForEachRun(times, [&](std::size_t first, std::size_t last) {
    if (first_run) {
      result = FoldRange(Fold::kOr, first, last);
      first_run = false;
    } else {
      OrInto(result, FoldRange(Fold::kOr, first, last));
    }
  });
  return result;
}

DynamicBitset PresenceIndex::IntersectionOver(const DynamicBitset& times) const {
  GT_CHECK_EQ(times.size(), columns_.size()) << "time mask/domain mismatch";
  DynamicBitset result(entities_);
  if (times.None()) {
    // Vacuous truth: every entity is present "at all times" of an empty set,
    // matching RowAllMasked on an empty mask.
    result.SetAll();
    return result;
  }
  bool first_run = true;
  ForEachRun(times, [&](std::size_t first, std::size_t last) {
    if (first_run) {
      result = FoldRange(Fold::kAnd, first, last);
      first_run = false;
    } else {
      AndInto(result, FoldRange(Fold::kAnd, first, last));
    }
  });
  return result;
}

}  // namespace graphtempo
