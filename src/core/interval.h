#ifndef GRAPHTEMPO_CORE_INTERVAL_H_
#define GRAPHTEMPO_CORE_INTERVAL_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "storage/bitset.h"

/// \file
/// Time-dimension types.
///
/// The paper models time as a finite ordered domain of elementary time points
/// t_0 … t_{n-1} and defines every operator on *sets of time intervals* `T`.
/// `IntervalSet` is that set, represented as a bitset over the time domain —
/// which makes ∪/∩/− on time sets trivial and lets the presence bit-matrix
/// answer the operators' predicates with masked word scans. `TimeRange` is the
/// contiguous special case used by the exploration semi-lattices.

namespace graphtempo {

/// Index of an elementary time point within a graph's time domain.
using TimeId = std::uint32_t;

/// A contiguous, inclusive range [first, last] of time points.
struct TimeRange {
  TimeId first = 0;
  TimeId last = 0;

  /// Number of time points in the range.
  std::size_t length() const { return static_cast<std::size_t>(last) - first + 1; }

  bool Contains(TimeId t) const { return first <= t && t <= last; }

  bool operator==(const TimeRange&) const = default;
};

/// A set of time points (equivalently, a set of intervals) over a time domain
/// of fixed size. The domain size is carried so mismatched domains are caught.
class IntervalSet {
 public:
  /// Empty set over a domain of `domain_size` time points.
  explicit IntervalSet(std::size_t domain_size = 0) : bits_(domain_size) {}

  /// The singleton set {t}.
  static IntervalSet Point(std::size_t domain_size, TimeId t);

  /// The contiguous set [first, last] (inclusive).
  static IntervalSet Range(std::size_t domain_size, TimeId first, TimeId last);

  /// The contiguous set covering `range`.
  static IntervalSet Of(std::size_t domain_size, TimeRange range) {
    return Range(domain_size, range.first, range.last);
  }

  /// An arbitrary set of time points.
  static IntervalSet Of(std::size_t domain_size, std::initializer_list<TimeId> times);

  /// The full domain [t_0, t_{n-1}].
  static IntervalSet All(std::size_t domain_size);

  std::size_t domain_size() const { return bits_.size(); }

  bool Contains(TimeId t) const { return bits_.Test(t); }
  void Add(TimeId t) { bits_.Set(t); }
  void Remove(TimeId t) { bits_.Reset(t); }

  bool Empty() const { return bits_.None(); }
  std::size_t Count() const { return bits_.Count(); }

  /// Earliest / latest time point; GT_CHECKs non-empty.
  TimeId First() const { return static_cast<TimeId>(bits_.FirstSet()); }
  TimeId Last() const { return static_cast<TimeId>(bits_.LastSet()); }

  /// Set algebra. Domains must match.
  IntervalSet& operator|=(const IntervalSet& other);
  IntervalSet& operator&=(const IntervalSet& other);
  IntervalSet& operator-=(const IntervalSet& other);

  friend IntervalSet operator|(IntervalSet lhs, const IntervalSet& rhs) {
    lhs |= rhs;
    return lhs;
  }
  friend IntervalSet operator&(IntervalSet lhs, const IntervalSet& rhs) {
    lhs &= rhs;
    return lhs;
  }
  friend IntervalSet operator-(IntervalSet lhs, const IntervalSet& rhs) {
    lhs -= rhs;
    return lhs;
  }

  bool Intersects(const IntervalSet& other) const { return bits_.Intersects(other.bits_); }
  bool IsSubsetOf(const IntervalSet& other) const { return bits_.IsSubsetOf(other.bits_); }

  bool operator==(const IntervalSet&) const = default;

  /// Membership equality that ignores domain size: `{t0,t1}` over a 3-point
  /// domain equals `{t0,t1}` over a 13-point domain. Query identity must use
  /// this rather than `operator==` so that appending time points (which grows
  /// every subsequently parsed interval's domain) does not orphan cached
  /// answers keyed by interval.
  bool SameMembers(const IntervalSet& other) const;

  /// Calls `fn(TimeId)` for each member, ascending.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    bits_.ForEachSetBit([&](std::size_t t) { fn(static_cast<TimeId>(t)); });
  }

  /// Members as a sorted vector.
  std::vector<TimeId> ToVector() const;

  /// The underlying bitset, used as a column mask against presence matrices.
  const DynamicBitset& bits() const { return bits_; }

  /// Debug form, e.g. "{0,1,4}".
  std::string ToString() const;

 private:
  DynamicBitset bits_;
};

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_INTERVAL_H_
