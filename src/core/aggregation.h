#ifndef GRAPHTEMPO_CORE_AGGREGATION_H_
#define GRAPHTEMPO_CORE_AGGREGATION_H_

#include <array>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/operators.h"
#include "core/temporal_graph.h"
#include "util/check.h"

/// \file
/// Graph aggregation (Definition 2.6, Algorithm 2).
///
/// Aggregation groups the nodes of a graph (view) by the values of one or
/// more attributes; each distinct value tuple becomes an aggregate node, and
/// an aggregate edge (a', a'') exists when some original edge connects nodes
/// carrying those tuples. Weights are COUNTs, under two semantics:
///
///   * DIST — every (entity, tuple) combination counts once, regardless of how
///     many time points it appears at;
///   * ALL  — every (entity, time) appearance counts.
///
/// On a single time point the two coincide (paper, Fig 3). The implementation
/// follows Algorithm 2 plus the Section 4.2 optimization: when every
/// aggregation attribute is static, the per-time unpivot/deduplication is
/// skipped entirely (DIST) or replaced by a presence popcount (ALL).

namespace graphtempo {

/// A tuple of dictionary-encoded attribute values (one per aggregation
/// attribute, in the order the attributes were requested). Fixed capacity,
/// value type, hashable — the key of every aggregate map.
class AttrTuple {
 public:
  static constexpr std::size_t kMaxAttrs = 8;

  AttrTuple() = default;

  /// Builds a tuple from up to kMaxAttrs codes.
  static AttrTuple Of(std::initializer_list<AttrValueId> codes) {
    AttrTuple tuple;
    for (AttrValueId code : codes) tuple.Append(code);
    return tuple;
  }

  void Append(AttrValueId code) {
    GT_CHECK_LT(size_, kMaxAttrs) << "too many aggregation attributes";
    codes_[size_++] = code;
  }

  std::size_t size() const { return size_; }

  AttrValueId operator[](std::size_t i) const {
    GT_DCHECK(i < size_);
    return codes_[i];
  }

  bool operator==(const AttrTuple& other) const {
    if (size_ != other.size_) return false;
    for (std::size_t i = 0; i < size_; ++i) {
      if (codes_[i] != other.codes_[i]) return false;
    }
    return true;
  }

  /// FNV-1a over the used codes.
  std::size_t Hash() const {
    std::size_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < size_; ++i) {
      h ^= codes_[i];
      h *= 1099511628211ull;
    }
    return h;
  }

 private:
  std::array<AttrValueId, kMaxAttrs> codes_ = {};
  std::uint8_t size_ = 0;
};

struct AttrTupleHash {
  std::size_t operator()(const AttrTuple& tuple) const { return tuple.Hash(); }
};

/// An ordered pair of attribute tuples: the key of an aggregate edge.
struct AttrTuplePair {
  AttrTuple src;
  AttrTuple dst;

  bool operator==(const AttrTuplePair&) const = default;
};

struct AttrTuplePairHash {
  std::size_t operator()(const AttrTuplePair& pair) const {
    std::size_t h = pair.src.Hash();
    h ^= pair.dst.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  }
};

/// COUNT weights. Signed so weight arithmetic (e.g. roll-up sums, deltas in
/// tests) cannot underflow silently.
using Weight = std::int64_t;

/// The aggregated graph G'(V', E', W_V', W_E') of Definition 2.6: aggregate
/// nodes keyed by attribute tuple, aggregate edges keyed by tuple pair, both
/// carrying COUNT weights.
class AggregateGraph {
 public:
  using NodeMap = std::unordered_map<AttrTuple, Weight, AttrTupleHash>;
  using EdgeMap = std::unordered_map<AttrTuplePair, Weight, AttrTuplePairHash>;

  /// Adds `weight` to the aggregate node `tuple` (inserting it at weight 0).
  void AddNodeWeight(const AttrTuple& tuple, Weight weight);

  /// Adds `weight` to the aggregate edge (src, dst).
  void AddEdgeWeight(const AttrTuple& src, const AttrTuple& dst, Weight weight);

  /// Weight of aggregate node `tuple`; 0 if the node is absent.
  Weight NodeWeight(const AttrTuple& tuple) const;

  /// Weight of aggregate edge (src, dst); 0 if absent.
  Weight EdgeWeight(const AttrTuple& src, const AttrTuple& dst) const;

  std::size_t NodeCount() const { return nodes_.size(); }
  std::size_t EdgeCount() const { return edges_.size(); }

  /// Sum of all node / edge weights.
  Weight TotalNodeWeight() const;
  Weight TotalEdgeWeight() const;

  const NodeMap& nodes() const { return nodes_; }
  const EdgeMap& edges() const { return edges_; }

  /// Structural + weight equality (map comparison).
  bool operator==(const AggregateGraph&) const = default;

 private:
  NodeMap nodes_;
  EdgeMap edges_;
};

/// DIST or ALL counting (see file comment).
enum class AggregationSemantics { kDistinct, kAll };

/// How Algorithm 2 groups tuples into aggregate nodes and edges.
///
/// The *dense* path packs each tuple into a mixed-radix integer over the
/// attribute dictionary domains and accumulates weights in flat arrays (one
/// add per appearance, no hashing); it applies when the packed cell space is
/// small (see `kDenseNodeCellsMax` / `kDenseEdgePairsMax`). The *hash* path
/// is the NodeMap/EdgeMap reference. Both produce identical AggregateGraphs;
/// the differential suite in tests/operator_kernel_test.cc pins this.
enum class GroupingStrategy {
  kAuto,   ///< dense when the packed domain fits the thresholds (default)
  kDense,  ///< force dense; GT_CHECKs that the domain fits
  kHash,   ///< force the hash-map reference path
};

/// kAuto thresholds: a dense node table holds at most this many cells, and a
/// dense edge table at most this many cell *pairs* (the edge table is the
/// square of the node domain). 2 MiB / 8 MiB of Weight per chunk at most.
inline constexpr std::size_t kDenseNodeCellsMax = std::size_t{1} << 18;
inline constexpr std::size_t kDenseEdgePairsMax = std::size_t{1} << 20;

/// Optional predicate limiting which (node, time) appearances participate in
/// an aggregation; used e.g. by the paper's Fig 12 ("authors with
/// #publications > 4"). An edge appearance at time t participates only if
/// both endpoints pass the filter at t.
using NodeTimeFilter = std::function<bool(NodeId, TimeId)>;

struct AggregationOptions {
  AggregationSemantics semantics = AggregationSemantics::kDistinct;
  const NodeTimeFilter* filter = nullptr;
  GroupingStrategy grouping = GroupingStrategy::kAuto;
};

/// Which grouping paths Algorithm 2 will take for `attrs` on `graph` under
/// `requested` — the same domain-size inspection `Aggregate` performs, exposed
/// so the query planner can render its grouping decision in
/// `QueryPlan::Explain` without running the aggregation (docs/ENGINE.md).
/// Pure dictionary arithmetic; no data scan.
struct GroupingResolution {
  bool dense_nodes = false;  ///< node side uses the flat dense table
  bool dense_edges = false;  ///< edge side uses the flat dense pair table
};

GroupingResolution ResolveGrouping(const TemporalGraph& graph,
                                   std::span<const AttrRef> attrs,
                                   GroupingStrategy requested);

/// Evaluates the attribute tuple of node `n` at time `t` for the given
/// aggregation attributes.
AttrTuple TupleAt(const TemporalGraph& graph, std::span<const AttrRef> attrs, NodeId n,
                  TimeId t);

/// Aggregates `view` (the output of a temporal operator, or of Project for a
/// snapshot) over `attrs` under `options` — Algorithm 2 of the paper.
AggregateGraph Aggregate(const TemporalGraph& graph, const GraphView& view,
                         std::span<const AttrRef> attrs, const AggregationOptions& options);

/// Convenience overload: DIST, no filter.
AggregateGraph Aggregate(const TemporalGraph& graph, const GraphView& view,
                         std::span<const AttrRef> attrs,
                         AggregationSemantics semantics = AggregationSemantics::kDistinct);

/// Reference implementation without the static-only fast paths: always walks
/// (entity, time) appearances and always groups through the hash maps
/// (GroupingStrategy::kHash), whatever `options.grouping` says. Used by tests
/// to pin the fast paths and by the ablation benchmark.
AggregateGraph AggregateGeneralPath(const TemporalGraph& graph, const GraphView& view,
                                    std::span<const AttrRef> attrs,
                                    const AggregationOptions& options);

/// Merges mirrored aggregate edges: the weights of (a, b) and (b, a) are
/// summed under the canonical orientation (lower tuple first, by code
/// sequence). For conceptually undirected graphs — co-rating, face-to-face
/// contact — where ingestion stored one arbitrary direction per pair, this
/// yields orientation-independent aggregate edges. Self-pairs (a, a) are
/// unchanged. Node weights are copied verbatim.
AggregateGraph SymmetrizeAggregate(const AggregateGraph& aggregate);

/// Renders a tuple as "f,3" using the attribute dictionaries ("∅" for unset).
std::string FormatTuple(const TemporalGraph& graph, std::span<const AttrRef> attrs,
                        const AttrTuple& tuple);

/// Looks up attribute references by name; GT_CHECKs that each exists.
std::vector<AttrRef> ResolveAttributes(const TemporalGraph& graph,
                                       std::initializer_list<std::string_view> names);
std::vector<AttrRef> ResolveAttributes(const TemporalGraph& graph,
                                       const std::vector<std::string>& names);

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_AGGREGATION_H_
