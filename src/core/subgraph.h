#ifndef GRAPHTEMPO_CORE_SUBGRAPH_H_
#define GRAPHTEMPO_CORE_SUBGRAPH_H_

#include "core/operators.h"
#include "core/temporal_graph.h"

/// \file
/// Materialization of operator results as standalone graphs.
///
/// The temporal operators return lightweight `GraphView`s over the parent
/// graph. `ExtractSubgraph` turns a view into a self-contained
/// `TemporalGraph`: only the view's entities, presence restricted to the
/// view's interval, attributes copied over. This is what makes the operators
/// *composable* — the paper's semi-lattice argument (§3.1) silently relies on
/// G(T₁ ∪ T₂) being a graph one can apply further operators to, and it also
/// lets operator results be serialized with `graph_io` or handed to code that
/// expects a plain temporal graph.

namespace graphtempo {

/// Builds a standalone graph from `view`:
///   * time domain: unchanged (labels preserved, so intervals keep meaning);
///   * nodes/edges: exactly the view's, presence ANDed with `view.times`
///     (τu ∩ T of Definitions 2.2–2.5);
///   * attributes: static values copied for the kept nodes; time-varying
///     values copied at the kept (node, time) cells.
/// Node labels are preserved, so entities can be correlated across extracts.
TemporalGraph ExtractSubgraph(const TemporalGraph& graph, const GraphView& view);

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_SUBGRAPH_H_
