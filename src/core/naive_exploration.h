#ifndef GRAPHTEMPO_CORE_NAIVE_EXPLORATION_H_
#define GRAPHTEMPO_CORE_NAIVE_EXPLORATION_H_

#include "core/exploration.h"

/// \file
/// Exhaustive exploration baseline.
///
/// `ExploreNaive` enumerates *every* admissible (reference, extension-length)
/// candidate pair, evaluates each one, and then applies the minimal-pair /
/// maximal-pair definitions (Defs 3.4, 3.5) literally. It makes no use of the
/// monotonicity lemmas, so its `evaluations` count is the un-pruned cost; the
/// engine in `exploration.h` must return exactly the same pairs with at most
/// as many evaluations — a property the test suite sweeps and the benchmark
/// harness reports.

namespace graphtempo {

/// Same contract as `Explore`, computed by exhaustive enumeration.
ExplorationResult ExploreNaive(const TemporalGraph& graph, const ExplorationSpec& spec);

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_NAIVE_EXPLORATION_H_
