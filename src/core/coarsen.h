#ifndef GRAPHTEMPO_CORE_COARSEN_H_
#define GRAPHTEMPO_CORE_COARSEN_H_

#include <string>
#include <vector>

#include "core/temporal_graph.h"

/// \file
/// Time-granularity coarsening: viewing an evolving graph at a coarser
/// resolution (days → weeks, years → decades). The paper discusses changing
/// temporal resolution through its union operator ("zooming out", cf. its
/// comparison with Aghasadeghi et al.); `CoarsenTime` materializes that view
/// as a first-class graph so every operator, aggregation and exploration
/// runs unchanged on the coarser domain.
///
/// Semantics per group of elementary time points:
///   * presence — union: an entity exists in the group iff it exists at ≥1
///     member point (exactly the union operator's entity rule);
///   * time-varying attributes — the value at the *last* (default) or
///     *first* observed member point, selectable via `CoarsenPolicy`; for
///     numeric roll-ups use `core/measures.h` on the original graph instead;
///   * static attributes — copied.
///
/// Groups must be ordered and non-overlapping but need not cover the domain:
/// uncovered time points are dropped from the coarse view (time slicing).

namespace graphtempo {

/// One coarse time point: its label and the elementary range it covers.
struct TimeGroup {
  std::string label;
  TimeRange range;
};

/// Which member value a time-varying attribute keeps within a group.
enum class CoarsenPolicy { kLast, kFirst };

/// Splits the domain into consecutive groups of `width` points (the last
/// group may be shorter). Labels are "first..last" (or the single label).
std::vector<TimeGroup> UniformGrouping(const TemporalGraph& graph, std::size_t width);

/// Builds the coarse graph described in the file comment. GT_CHECKs that
/// `groups` is non-empty, ordered, non-overlapping and within the domain.
TemporalGraph CoarsenTime(const TemporalGraph& graph,
                          const std::vector<TimeGroup>& groups,
                          CoarsenPolicy policy = CoarsenPolicy::kLast);

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_COARSEN_H_
