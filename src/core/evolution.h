#ifndef GRAPHTEMPO_CORE_EVOLUTION_H_
#define GRAPHTEMPO_CORE_EVOLUTION_H_

#include <span>
#include <unordered_map>

#include "core/aggregation.h"
#include "core/operators.h"

/// \file
/// The evolution graph (Definition 2.7) and its aggregation.
///
/// The evolution graph between two interval sets T₁ (old) and T₂ (new)
/// overlays three operator results:
///
///   * **stability** — the intersection graph on (T₁, T₂): entities present in
///     both intervals;
///   * **shrinkage** — the difference graph T₁ − T₂: entities that disappear;
///   * **growth**    — the difference graph T₂ − T₁: entities that appear.
///
/// Aggregating the evolution graph aggregates each component and overlays the
/// three weights per aggregate entity (paper Fig 4b), so one can read off,
/// e.g., how many female-female collaborations were stable / new / deleted.

namespace graphtempo {

/// The three event types of Section 3.
enum class EventType { kStability, kGrowth, kShrinkage };

/// Returns "stability" / "growth" / "shrinkage".
const char* EventTypeName(EventType event);

/// The evolution graph as its three constituent views.
struct EvolutionGraph {
  GraphView stability;  ///< G∩ on (T₁, T₂)
  GraphView shrinkage;  ///< G₋ on T₁ − T₂
  GraphView growth;     ///< G₋ on T₂ − T₁

  const GraphView& ForEvent(EventType event) const;
};

/// Builds the evolution graph between `t_old` and `t_new` (Def 2.7).
EvolutionGraph MakeEvolutionGraph(const TemporalGraph& graph, const IntervalSet& t_old,
                                  const IntervalSet& t_new);

/// Per-aggregate-entity weights of the overlaid aggregation (Fig 4b).
struct EvolutionWeights {
  Weight stability = 0;
  Weight growth = 0;
  Weight shrinkage = 0;

  Weight ForEvent(EventType event) const;

  bool operator==(const EvolutionWeights&) const = default;
};

/// The aggregate evolution graph: tuples / tuple pairs → three weights.
class EvolutionAggregate {
 public:
  using NodeMap = std::unordered_map<AttrTuple, EvolutionWeights, AttrTupleHash>;
  using EdgeMap = std::unordered_map<AttrTuplePair, EvolutionWeights, AttrTuplePairHash>;

  const NodeMap& nodes() const { return nodes_; }
  const EdgeMap& edges() const { return edges_; }

  /// Weights of an aggregate node / edge; all-zero if absent.
  EvolutionWeights NodeWeights(const AttrTuple& tuple) const;
  EvolutionWeights EdgeWeights(const AttrTuple& src, const AttrTuple& dst) const;

  /// Mutable access, inserting an all-zero entry if absent.
  EvolutionWeights& MutableNodeWeights(const AttrTuple& tuple) { return nodes_[tuple]; }
  EvolutionWeights& MutableEdgeWeights(const AttrTuplePair& pair) { return edges_[pair]; }

  /// Internal: merges one component aggregate under `event`.
  void Overlay(const AggregateGraph& component, EventType event);

 private:
  NodeMap nodes_;
  EdgeMap edges_;
};

/// Aggregates the evolution graph "as a whole" (paper Fig 4b): for every
/// entity of the evolution graph, its distinct attribute tuples in the old
/// interval are compared against those in the new interval, and each tuple
/// transition is classified —
///
///   * tuple present on the entity in both intervals  → **stability**,
///   * tuple present only in the new interval         → **growth**
///     (covers both newly-appearing entities and attribute-value changes,
///     e.g. u₄ moving from (f,2) to (f,1) adds growth to (f,1)),
///   * tuple present only in the old interval         → **shrinkage**.
///
/// Counting is per (entity, tuple) — DIST semantics. The optional `filter`
/// hides (node, time) appearances, which is how the paper's Fig 12 restricts
/// the evolution graph to high-activity authors (#publications > 4): an
/// entity filtered out of one interval entirely is treated as absent there.
EvolutionAggregate AggregateEvolution(const TemporalGraph& graph, const IntervalSet& t_old,
                                      const IntervalSet& t_new,
                                      std::span<const AttrRef> attrs,
                                      const NodeTimeFilter* filter = nullptr);

/// One aggregate node group and its weight under a chosen event type.
struct RankedNodeGroup {
  AttrTuple tuple;
  Weight weight = 0;

  bool operator==(const RankedNodeGroup&) const = default;
};

/// One aggregate edge group and its weight under a chosen event type.
struct RankedEdgeGroup {
  AttrTuplePair pair;
  Weight weight = 0;

  bool operator==(const RankedEdgeGroup&) const = default;
};

/// The strongest attribute groups for one event between two intervals.
struct TopEventGroups {
  std::vector<RankedNodeGroup> nodes;  ///< weight-descending, ≤ top_k entries
  std::vector<RankedEdgeGroup> edges;  ///< weight-descending, ≤ top_k entries
};

/// Ranks the aggregate entities of the evolution graph between `t_old` and
/// `t_new` by their `event` weight — "which groups grew/shrank/persisted the
/// most?", the attribute-group half of the interactive exploration the
/// paper's conclusion sketches. Zero-weight groups are omitted; ties are
/// broken by tuple codes so the ranking is deterministic.
TopEventGroups RankEventGroups(const TemporalGraph& graph, const IntervalSet& t_old,
                               const IntervalSet& t_new, std::span<const AttrRef> attrs,
                               EventType event, std::size_t top_k,
                               const NodeTimeFilter* filter = nullptr);

/// Aggregates the evolution graph component-wise (paper: "considering each
/// such graph separately"): the intersection and the two difference graphs
/// are each aggregated with `options` and overlaid into one structure. Unlike
/// `AggregateEvolution`, component aggregates follow the operator node rules
/// verbatim (Def 2.5's endpoint rule included) and support ALL semantics.
EvolutionAggregate AggregateEvolutionComponents(const TemporalGraph& graph,
                                                const IntervalSet& t_old,
                                                const IntervalSet& t_new,
                                                std::span<const AttrRef> attrs,
                                                const AggregationOptions& options);

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_EVOLUTION_H_
