#ifndef GRAPHTEMPO_CORE_EDGE_LIST_IO_H_
#define GRAPHTEMPO_CORE_EDGE_LIST_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "core/temporal_graph.h"

/// \file
/// Ingestion of the de-facto standard temporal edge-list format — one
/// `src dst time` triple per line — which is how public temporal graph
/// datasets (SNAP, Network Repository, SocioPatterns, the raw DBLP/MovieLens
/// dumps the paper used) typically ship. Complements `graph_io.h`, which
/// handles this library's own richer format.
///
/// The time domain is inferred from the distinct time labels, ordered
/// numerically when every label parses as a non-negative integer and
/// lexicographically otherwise. Node presence follows edge presence
/// (Def 2.1's invariant); isolated node-time presences can be added via the
/// attribute readers below or the TemporalGraph API afterwards.
///
/// Attribute side files use the same TSV shape:
///   static:  `node value`
///   varying: `node time value`

namespace graphtempo {

/// Parses a `src dst time` TSV edge list (comments `#`, blank lines, and CRLF
/// tolerated). Returns std::nullopt and an explanation on malformed input or
/// an empty file (no time domain can be inferred).
std::optional<TemporalGraph> ReadEdgeList(std::istream* in, std::string* error);

/// Writes `graph`'s edges as `src dst time` triples, one per (edge, time)
/// appearance. Attributes are not representable in this format and are
/// dropped — use WriteGraph for lossless output.
void WriteEdgeList(const TemporalGraph& graph, std::ostream* out);

/// Reads `node value` rows into a (new or existing) static attribute.
/// Unknown node labels are an error: attributes describe ingested entities.
bool ReadStaticAttributeTsv(TemporalGraph* graph, std::istream* in,
                            const std::string& attribute_name, std::string* error);

/// Reads `node time value` rows into a (new or existing) time-varying
/// attribute. Marks the node present at that time (a recorded observation
/// implies existence).
bool ReadTimeVaryingAttributeTsv(TemporalGraph* graph, std::istream* in,
                                 const std::string& attribute_name, std::string* error);

/// File-path convenience wrappers.
std::optional<TemporalGraph> ReadEdgeListFromFile(const std::string& path,
                                                  std::string* error);
bool WriteEdgeListToFile(const TemporalGraph& graph, const std::string& path,
                         std::string* error);

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_EDGE_LIST_IO_H_
