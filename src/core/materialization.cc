#include "core/materialization.h"

#include "core/operators.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace graphtempo {

namespace {

AttrTuple ProjectTuple(const AttrTuple& tuple, std::span<const std::size_t> keep) {
  AttrTuple projected;
  for (std::size_t position : keep) {
    GT_CHECK_LT(position, tuple.size()) << "roll-up position out of tuple range";
    projected.Append(tuple[position]);
  }
  return projected;
}

}  // namespace

AggregateGraph RollUp(const AggregateGraph& aggregate,
                      std::span<const std::size_t> keep_positions) {
  GT_CHECK(!keep_positions.empty()) << "roll-up must keep at least one attribute";
  // Duplicate positions are rejected up front: a duplicated column does not
  // merge any groups, so the "rolled-up" weights silently double-report the
  // same attribute instead of summing anything — never what a caller wants.
  for (std::size_t i = 0; i < keep_positions.size(); ++i) {
    for (std::size_t j = i + 1; j < keep_positions.size(); ++j) {
      GT_CHECK(keep_positions[i] != keep_positions[j])
          << "duplicate roll-up position " << keep_positions[i];
    }
  }
  // Range-check against the aggregate's tuple arity once, rather than only
  // per visited tuple: an out-of-range position must abort even when the
  // aggregate is small or the first tuples happen to be wider.
  const std::size_t arity = [&]() -> std::size_t {
    if (!aggregate.nodes().empty()) return aggregate.nodes().begin()->first.size();
    if (!aggregate.edges().empty()) return aggregate.edges().begin()->first.src.size();
    return 0;  // empty aggregate: nothing to project, nothing to check against
  }();
  if (arity != 0) {
    for (std::size_t position : keep_positions) {
      GT_CHECK_LT(position, arity) << "roll-up position out of tuple range";
    }
  }
  AggregateGraph result;
  for (const auto& [tuple, weight] : aggregate.nodes()) {
    result.AddNodeWeight(ProjectTuple(tuple, keep_positions), weight);
  }
  for (const auto& [pair, weight] : aggregate.edges()) {
    result.AddEdgeWeight(ProjectTuple(pair.src, keep_positions),
                         ProjectTuple(pair.dst, keep_positions), weight);
  }
  return result;
}

MaterializationStore::MaterializationStore(const TemporalGraph* graph,
                                           std::vector<AttrRef> attrs)
    : graph_(graph), attrs_(std::move(attrs)) {
  GT_CHECK(graph_ != nullptr);
  GT_CHECK(!attrs_.empty()) << "materialization needs at least one attribute";
}

void MaterializationStore::MaterializeAllTimePoints() {
  if (materialized()) return;
  Refresh();
}

void MaterializationStore::Refresh() {
  const TimeId first_new = static_cast<TimeId>(per_time_.size());
  const TimeId num_times = static_cast<TimeId>(graph_->num_times());
  if (first_new >= num_times) return;
  GT_SPAN("materialize/all",
          {{"points", static_cast<std::uint64_t>(num_times - first_new)}});
  per_time_.resize(num_times);
  // Time points are independent snapshots; each chunk fills disjoint slots of
  // `per_time_`, so the cache is identical at any thread count. The nested
  // Project/Aggregate calls may themselves fan out — the shared pool is
  // reentrant.
  ParallelPartition partition(static_cast<std::size_t>(num_times - first_new),
                              /*min_per_chunk=*/1, /*alignment=*/1);
  partition.Run([&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      TimeId t = static_cast<TimeId>(first_new + i);
      GT_SPAN("materialize/point", {{"t", static_cast<std::uint64_t>(t)}});
      GraphView snapshot = Project(*graph_, IntervalSet::Point(graph_->num_times(), t));
      per_time_[t] = Aggregate(*graph_, snapshot, attrs_, AggregationSemantics::kAll);
    }
  });
}

const AggregateGraph& MaterializationStore::AtTimePoint(TimeId t) const {
  GT_CHECK(materialized()) << "call MaterializeAllTimePoints() first";
  GT_CHECK_LT(t, per_time_.size()) << "time out of range";
  return per_time_[t];
}

AggregateGraph MaterializationStore::UnionAllAggregate(const IntervalSet& interval) const {
  GT_CHECK(materialized()) << "call MaterializeAllTimePoints() first";
  GT_CHECK_EQ(interval.domain_size(), graph_->num_times()) << "time domain mismatch";
  GT_CHECK_EQ(per_time_.size(), graph_->num_times())
      << "cache is stale — call Refresh() after AppendTimePoint()";
  GT_CHECK(!interval.Empty()) << "interval must be non-empty";
  AggregateGraph result;
  interval.ForEach([&](TimeId t) {
    const AggregateGraph& point = per_time_[t];
    for (const auto& [tuple, weight] : point.nodes()) result.AddNodeWeight(tuple, weight);
    for (const auto& [pair, weight] : point.edges()) {
      result.AddEdgeWeight(pair.src, pair.dst, weight);
    }
  });
  return result;
}

}  // namespace graphtempo
