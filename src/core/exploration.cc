#include "core/exploration.h"

#include "core/exploration_internal.h"

#include <algorithm>

#include "core/operators.h"
#include "core/stats.h"
#include "obs/trace.h"
#include "storage/bitset.h"
#include "util/parallel.h"

namespace graphtempo {

namespace {

/// Membership of every entity in a side of a candidate pair: union semantics —
/// present at ≥1 point of the side; intersection semantics — present at all
/// points. For a single-point side the two coincide. Answered by the
/// column-major presence index: an OR/AND fold over the side's columns,
/// served from the sparse-table interval index for contiguous sides.
DynamicBitset SideMembers(const PresenceIndex& index, const IntervalSet& side,
                          ExtensionSemantics semantics) {
  return semantics == ExtensionSemantics::kUnion ? index.UnionOver(side.bits())
                                                 : index.IntersectionOver(side.bits());
}

}  // namespace

namespace internal_exploration {

/// Builds the event graph between the two sides as a GraphView, composing the
/// operator definitions of Section 2 with side-level union/intersection
/// semantics of Section 3.1:
///   stability — entity in old side AND in new side, defined on O ∪ N;
///   growth    — entity in new side and NOT in old side, defined on N;
///   shrinkage — entity in old side and NOT in new side, defined on O.
/// Difference events keep Def 2.5's node rule: a node that survives still
/// joins the event graph when it is the endpoint of a difference edge.
/// Assembles the event view once the side memberships are known.
GraphView BuildEventViewFromSides(const TemporalGraph& graph,
                                  const DynamicBitset& nodes_old,
                                  const DynamicBitset& nodes_new,
                                  const DynamicBitset& edges_old,
                                  const DynamicBitset& edges_new,
                                  const IntervalSet& old_side,
                                  const IntervalSet& new_side, EventType event) {
  const std::size_t num_nodes = graph.num_nodes();
  GraphView view;
  switch (event) {
    case EventType::kStability: {
      view.times = old_side | new_side;
      DynamicBitset nodes = nodes_old & nodes_new;
      DynamicBitset edges = edges_old & edges_new;
      nodes.ForEachSetBit([&](std::size_t n) { view.nodes.push_back(static_cast<NodeId>(n)); });
      edges.ForEachSetBit([&](std::size_t e) { view.edges.push_back(static_cast<EdgeId>(e)); });
      return view;
    }
    case EventType::kGrowth: {
      view.times = new_side;
      DynamicBitset edges = edges_new - edges_old;
      DynamicBitset endpoint(num_nodes);
      edges.ForEachSetBit([&](std::size_t e) {
        view.edges.push_back(static_cast<EdgeId>(e));
        auto [src, dst] = graph.edge(static_cast<EdgeId>(e));
        endpoint.Set(src);
        endpoint.Set(dst);
      });
      DynamicBitset nodes = nodes_new & ((nodes_new - nodes_old) | endpoint);
      nodes.ForEachSetBit([&](std::size_t n) { view.nodes.push_back(static_cast<NodeId>(n)); });
      return view;
    }
    case EventType::kShrinkage: {
      view.times = old_side;
      DynamicBitset edges = edges_old - edges_new;
      DynamicBitset endpoint(num_nodes);
      edges.ForEachSetBit([&](std::size_t e) {
        view.edges.push_back(static_cast<EdgeId>(e));
        auto [src, dst] = graph.edge(static_cast<EdgeId>(e));
        endpoint.Set(src);
        endpoint.Set(dst);
      });
      DynamicBitset nodes = nodes_old & ((nodes_old - nodes_new) | endpoint);
      nodes.ForEachSetBit([&](std::size_t n) { view.nodes.push_back(static_cast<NodeId>(n)); });
      return view;
    }
  }
  GT_CHECK(false) << "invalid event type";
  __builtin_unreachable();
}

GraphView BuildEventView(const TemporalGraph& graph, const IntervalSet& old_side,
                         const IntervalSet& new_side, ExtensionSemantics semantics,
                         EventType event) {
  DynamicBitset nodes_old =
      SideMembers(graph.node_presence_index(), old_side, semantics);
  DynamicBitset nodes_new =
      SideMembers(graph.node_presence_index(), new_side, semantics);
  DynamicBitset edges_old =
      SideMembers(graph.edge_presence_index(), old_side, semantics);
  DynamicBitset edges_new =
      SideMembers(graph.edge_presence_index(), new_side, semantics);
  return BuildEventViewFromSides(graph, nodes_old, nodes_new, edges_old, edges_new,
                                 old_side, new_side, event);
}

SelectorCounter::SelectorCounter(const TemporalGraph& graph,
                                 const EntitySelector& selector)
    : graph_(graph), selector_(selector) {
  if (selector.attrs.empty()) {
    GT_CHECK(!selector.node_tuple && !selector.src_tuple && !selector.dst_tuple)
        << "tuple filters require aggregation attributes";
    fast_ = true;  // raw entity counts: match-all with no table
    return;
  }
  bool all_static = std::all_of(
      selector.attrs.begin(), selector.attrs.end(),
      [](const AttrRef& ref) { return ref.kind == AttrRef::Kind::kStatic; });
  if (!all_static || selector.semantics != AggregationSemantics::kDistinct) return;
  fast_ = true;

  auto static_tuple = [&](NodeId n) {
    AttrTuple tuple;
    for (const AttrRef& ref : selector.attrs) {
      tuple.Append(graph.static_attribute(ref.index).CodeAt(n));
    }
    return tuple;
  };
  if (selector.kind == EntitySelector::Kind::kNodes) {
    match_.resize(graph.num_nodes(), 1);
    if (selector.node_tuple.has_value()) {
      for (NodeId n = 0; n < graph.num_nodes(); ++n) {
        match_[n] = static_tuple(n) == *selector.node_tuple;
      }
    }
  } else {
    if (selector.src_tuple.has_value() || selector.dst_tuple.has_value()) {
      GT_CHECK(selector.src_tuple.has_value() && selector.dst_tuple.has_value())
          << "edge tuple filter needs both src and dst tuples";
    }
    match_.resize(graph.num_edges(), 1);
    if (selector.src_tuple.has_value()) {
      for (EdgeId e = 0; e < graph.num_edges(); ++e) {
        auto [src, dst] = graph.edge(e);
        match_[e] = static_tuple(src) == *selector.src_tuple &&
                    static_tuple(dst) == *selector.dst_tuple;
      }
    }
  }
}

Weight SelectorCounter::Count(const GraphView& view) const {
  if (fast_) {
    if (selector_.kind == EntitySelector::Kind::kNodes) {
      if (match_.empty()) return static_cast<Weight>(view.NodeCount());
      Weight total = 0;
      for (NodeId n : view.nodes) total += match_[n];
      return total;
    }
    if (match_.empty()) return static_cast<Weight>(view.EdgeCount());
    Weight total = 0;
    for (EdgeId e : view.edges) total += match_[e];
    return total;
  }

  // General path: aggregate the event view under the selector.
  AggregateGraph aggregate =
      Aggregate(graph_, view, selector_.attrs, selector_.semantics);
  if (selector_.kind == EntitySelector::Kind::kNodes) {
    if (selector_.node_tuple.has_value()) {
      return aggregate.NodeWeight(*selector_.node_tuple);
    }
    return aggregate.TotalNodeWeight();
  }
  if (selector_.src_tuple.has_value() || selector_.dst_tuple.has_value()) {
    GT_CHECK(selector_.src_tuple.has_value() && selector_.dst_tuple.has_value())
        << "edge tuple filter needs both src and dst tuples";
    return aggregate.EdgeWeight(*selector_.src_tuple, *selector_.dst_tuple);
  }
  return aggregate.TotalEdgeWeight();
}

EventEngine::EventEngine(const TemporalGraph& graph, const EntitySelector& selector)
    : graph_(graph), counter_(graph, selector) {
  // The per-time columns live in the graph's PresenceIndex (maintained
  // incrementally — no per-run transposition). Force the lazy sparse tables
  // now so the parallel reference scans never serialize on the guarded build.
  graph.node_presence_index().EnsureTables();
  graph.edge_presence_index().EnsureTables();

  edge_bitset_path_ =
      counter_.fast_path() && selector.kind == EntitySelector::Kind::kEdges;
  if (edge_bitset_path_) {
    edge_match_bits_ = DynamicBitset(graph.num_edges());
    const std::vector<char>& table = counter_.match_table();
    if (table.empty()) {
      edge_match_bits_.SetAll();
    } else {
      for (EdgeId e = 0; e < graph.num_edges(); ++e) {
        if (table[e]) edge_match_bits_.Set(e);
      }
    }
  }
}

namespace {

/// A side fold straight off the interval index: two sparse-table lookups,
/// whatever the side length.
DynamicBitset FoldSide(const PresenceIndex& index, TimeRange range,
                       ExtensionSemantics semantics) {
  GT_SPAN("explore/side_fold", {{"len", range.length()}});
  return semantics == ExtensionSemantics::kUnion
             ? index.UnionRange(range.first, range.last)
             : index.IntersectRange(range.first, range.last);
}

}  // namespace

Weight EventEngine::Count(TimeRange old_range, TimeRange new_range,
                          ExtensionSemantics semantics, EventType event) const {
  GT_SPAN("explore/candidate",
          {{"old_len", old_range.length()}, {"new_len", new_range.length()}});
  const PresenceIndex& edge_index = graph_.edge_presence_index();
  DynamicBitset edges_old = FoldSide(edge_index, old_range, semantics);
  DynamicBitset edges_new = FoldSide(edge_index, new_range, semantics);

  if (edge_bitset_path_) {
    DynamicBitset combined = [&] {
      switch (event) {
        case EventType::kStability:
          return edges_old & edges_new;
        case EventType::kGrowth:
          return edges_new - edges_old;
        case EventType::kShrinkage:
          return edges_old - edges_new;
      }
      GT_CHECK(false) << "invalid event type";
      __builtin_unreachable();
    }();
    combined &= edge_match_bits_;
    return static_cast<Weight>(combined.Count());
  }

  const std::size_t n = graph_.num_times();
  const PresenceIndex& node_index = graph_.node_presence_index();
  DynamicBitset nodes_old = FoldSide(node_index, old_range, semantics);
  DynamicBitset nodes_new = FoldSide(node_index, new_range, semantics);
  GraphView view = BuildEventViewFromSides(
      graph_, nodes_old, nodes_new, edges_old, edges_new,
      IntervalSet::Of(n, old_range), IntervalSet::Of(n, new_range), event);
  return counter_.Count(view);
}

}  // namespace internal_exploration

namespace {

using internal_exploration::BuildEventView;
using internal_exploration::SelectorCounter;


/// One candidate pair through the aggregate path only (no match table).
Weight CountSelectedGeneral(const TemporalGraph& graph, const GraphView& view,
                            const EntitySelector& selector) {
  if (selector.attrs.empty()) {
    GT_CHECK(!selector.node_tuple && !selector.src_tuple && !selector.dst_tuple)
        << "tuple filters require aggregation attributes";
    return selector.kind == EntitySelector::Kind::kNodes
               ? static_cast<Weight>(view.NodeCount())
               : static_cast<Weight>(view.EdgeCount());
  }
  AggregateGraph aggregate = Aggregate(graph, view, selector.attrs, selector.semantics);
  if (selector.kind == EntitySelector::Kind::kNodes) {
    if (selector.node_tuple.has_value()) return aggregate.NodeWeight(*selector.node_tuple);
    return aggregate.TotalNodeWeight();
  }
  if (selector.src_tuple.has_value() || selector.dst_tuple.has_value()) {
    GT_CHECK(selector.src_tuple.has_value() && selector.dst_tuple.has_value())
        << "edge tuple filter needs both src and dst tuples";
    return aggregate.EdgeWeight(*selector.src_tuple, *selector.dst_tuple);
  }
  return aggregate.TotalEdgeWeight();
}

}  // namespace

Weight CountEvents(const TemporalGraph& graph, TimeRange old_range, TimeRange new_range,
                   ExtensionSemantics semantics, EventType event,
                   const EntitySelector& selector) {
  GT_CHECK_LT(old_range.last, new_range.first) << "old interval must precede new interval";
  const std::size_t n = graph.num_times();
  IntervalSet old_side = IntervalSet::Of(n, old_range);
  IntervalSet new_side = IntervalSet::Of(n, new_range);
  GraphView view = BuildEventView(graph, old_side, new_side, semantics, event);
  SelectorCounter counter(graph, selector);
  return counter.Count(view);
}

Weight CountEventsGeneralPath(const TemporalGraph& graph, TimeRange old_range,
                              TimeRange new_range, ExtensionSemantics semantics,
                              EventType event, const EntitySelector& selector) {
  GT_CHECK_LT(old_range.last, new_range.first) << "old interval must precede new interval";
  const std::size_t n = graph.num_times();
  IntervalSet old_side = IntervalSet::Of(n, old_range);
  IntervalSet new_side = IntervalSet::Of(n, new_range);
  GraphView view = BuildEventView(graph, old_side, new_side, semantics, event);
  return CountSelectedGeneral(graph, view, selector);
}

bool IsMonotonicallyIncreasing(EventType event, ReferenceEnd reference,
                               ExtensionSemantics semantics) {
  // The *extended* side is the one opposite the fixed reference.
  const bool extending_new = reference == ReferenceEnd::kOld;
  switch (event) {
    case EventType::kStability:
      // Lemma 3.3: union grows the graph, intersection shrinks it — on either side.
      return semantics == ExtensionSemantics::kUnion;
    case EventType::kGrowth:
      // T_new − T_old. Lemma 3.9: extending T_new with ∪ increases, extending
      // T_old with ∪ decreases. Lemma 3.10: the ∩ directions flip.
      return extending_new == (semantics == ExtensionSemantics::kUnion);
    case EventType::kShrinkage:
      // T_old − T_new: the mirror image of growth.
      return extending_new != (semantics == ExtensionSemantics::kUnion);
  }
  GT_CHECK(false) << "invalid event type";
  __builtin_unreachable();
}

ExplorationResult Explore(const TemporalGraph& graph, const ExplorationSpec& spec) {
  GT_CHECK_GE(spec.k, 1) << "threshold k must be positive";
  const std::size_t n = graph.num_times();
  GT_CHECK_GE(n, 2u) << "exploration needs at least two time points";
  GT_SPAN("explore/run",
          {{"times", n}, {"k", static_cast<std::uint64_t>(spec.k)}});

  const bool increasing =
      IsMonotonicallyIncreasing(spec.event, spec.reference, spec.semantics);
  const bool minimal_goal = spec.semantics == ExtensionSemantics::kUnion;

  // Builds the candidate pair for reference point `ref` and extension `len`.
  auto make_pair = [&](TimeId ref, std::size_t len) -> std::pair<TimeRange, TimeRange> {
    if (spec.reference == ReferenceEnd::kOld) {
      return {TimeRange{ref, ref},
              TimeRange{ref + 1, static_cast<TimeId>(ref + len)}};
    }
    return {TimeRange{static_cast<TimeId>(ref - len), static_cast<TimeId>(ref - 1)},
            TimeRange{ref, ref}};
  };

  // One engine for the whole run: the presence transposition, match table
  // and (for edge selectors) match bitset are built once, and every candidate
  // pair costs a handful of word-parallel set operations.
  internal_exploration::EventEngine engine(graph, spec.selector);

  const TimeId ref_begin = spec.reference == ReferenceEnd::kOld ? 0 : 1;
  const TimeId ref_end =
      spec.reference == ReferenceEnd::kOld ? static_cast<TimeId>(n - 1)
                                           : static_cast<TimeId>(n);

  /// What one reference point's scan produced: at most one qualifying pair,
  /// plus how many candidates it evaluated.
  struct RefOutcome {
    std::optional<IntervalPair> pair;
    std::size_t evaluations = 0;
  };

  // The scan of one reference point. The early-exit pruning of U-/I-Explore
  // is a *per-reference* chain (each length depends on the previous count at
  // the same reference), but distinct reference points never interact — so
  // exploration parallelizes across references while the pruning inside each
  // stays intact. `engine.Count` is const and allocates only locals.
  auto scan_reference = [&](TimeId ref) -> RefOutcome {
    RefOutcome outcome;
    const std::size_t max_len =
        spec.reference == ReferenceEnd::kOld ? (n - 1 - ref) : ref;
    if (max_len == 0) return outcome;

    auto evaluate = [&](std::size_t len) -> Weight {
      auto [old_range, new_range] = make_pair(ref, len);
      ++outcome.evaluations;
      return engine.Count(old_range, new_range, spec.semantics, spec.event);
    };
    auto record = [&](std::size_t len, Weight count) {
      auto [old_range, new_range] = make_pair(ref, len);
      outcome.pair = IntervalPair{old_range, new_range, count};
    };

    if (minimal_goal) {
      if (increasing) {
        // U-Explore: extend until the threshold is first met; that pair is
        // minimal for this reference, and monotonicity prunes the rest.
        for (std::size_t len = 1; len <= max_len; ++len) {
          Weight count = evaluate(len);
          if (count >= spec.k) {
            record(len, count);
            break;
          }
        }
      } else {
        // Monotonically decreasing while searching minimal pairs: only the
        // shortest extension can qualify (the "⊆ of" rows of Table 1).
        Weight count = evaluate(1);
        if (count >= spec.k) record(1, count);
      }
    } else {
      if (!increasing) {
        // I-Explore: extend while the threshold holds; the last surviving
        // extension is the maximal pair. The first failure prunes the rest.
        std::optional<std::pair<std::size_t, Weight>> best;
        for (std::size_t len = 1; len <= max_len; ++len) {
          Weight count = evaluate(len);
          if (count < spec.k) break;
          best = {len, count};
        }
        if (best.has_value()) record(best->first, best->second);
      } else {
        // Monotonically increasing while searching maximal pairs: the longest
        // extension dominates — a single check suffices (the "longest
        // interval" rows of Table 1).
        Weight count = evaluate(max_len);
        if (count >= spec.k) record(max_len, count);
      }
    }
    return outcome;
  };

  // Chunked over reference points; per-chunk outcomes are stitched together
  // in ascending reference order, so `result.pairs` and `result.evaluations`
  // are identical at any thread count.
  const std::size_t ref_count =
      ref_end > ref_begin ? static_cast<std::size_t>(ref_end - ref_begin) : 0;
  ParallelPartition partition(ref_count, /*min_per_chunk=*/1, /*alignment=*/1);
  std::vector<std::vector<RefOutcome>> chunk_outcomes(partition.num_chunks());
  partition.Run([&](std::size_t chunk, std::size_t begin, std::size_t end) {
    std::vector<RefOutcome>& outcomes = chunk_outcomes[chunk];
    outcomes.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      outcomes.push_back(scan_reference(static_cast<TimeId>(ref_begin + i)));
    }
  });

  ExplorationResult result;
  for (const std::vector<RefOutcome>& outcomes : chunk_outcomes) {
    for (const RefOutcome& outcome : outcomes) {
      result.evaluations += outcome.evaluations;
      if (outcome.pair.has_value()) result.pairs.push_back(*outcome.pair);
    }
  }
  internal_counters::AddExploreEvaluations(result.evaluations);
  return result;
}

ThresholdSuggestion SuggestThreshold(const TemporalGraph& graph, EventType event,
                                     const EntitySelector& selector) {
  const std::size_t n = graph.num_times();
  GT_CHECK_GE(n, 2u) << "threshold suggestion needs at least two time points";
  // Consecutive pairs are independent; min/max are order-insensitive, so the
  // result is identical at any thread count.
  std::vector<Weight> counts(n - 1);
  ParallelPartition partition(n - 1, /*min_per_chunk=*/1, /*alignment=*/1);
  partition.Run([&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      TimeId t = static_cast<TimeId>(i);
      counts[i] = CountEvents(graph, TimeRange{t, t}, TimeRange{t + 1, t + 1},
                              ExtensionSemantics::kUnion, event, selector);
    }
  });
  ThresholdSuggestion suggestion;
  suggestion.min_weight = suggestion.max_weight = counts[0];
  for (Weight count : counts) {
    suggestion.min_weight = std::min(suggestion.min_weight, count);
    suggestion.max_weight = std::max(suggestion.max_weight, count);
  }
  return suggestion;
}

}  // namespace graphtempo
