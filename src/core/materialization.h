#ifndef GRAPHTEMPO_CORE_MATERIALIZATION_H_
#define GRAPHTEMPO_CORE_MATERIALIZATION_H_

#include <span>
#include <vector>

#include "core/aggregation.h"

/// \file
/// Partial materialization (Section 4.3).
///
/// Materializing every (attribute set × interval) aggregate is unrealistic;
/// the paper instead identifies two distributivity properties that let cheap
/// aggregates be *derived* from precomputed ones without touching the
/// original graph:
///
///   * **D-distributive** (attribute dimension): an aggregate on A'' ⊆ A' is
///     obtained from the aggregate on A' by group-summing tuples projected to
///     the A'' positions → `RollUp`.
///   * **T-distributive** (time dimension): the ALL-semantics union aggregate
///     of an interval is the weight-sum of the per-time-point aggregates →
///     `MaterializationStore::UnionAllAggregate`. DIST union aggregates are
///     *not* T-distributive (distinct entities must be identified across time
///     points); the store GT_CHECKs against such misuse.

namespace graphtempo {

/// Derives the aggregate over the attribute subset selected by
/// `keep_positions` (indices into the original attribute list, in the desired
/// output order) by summing group weights. Works for any weights because
/// COUNT is distributive over the grouping.
AggregateGraph RollUp(const AggregateGraph& aggregate,
                      std::span<const std::size_t> keep_positions);

/// A cache of per-time-point ALL aggregates for one attribute list, plus the
/// T-distributive combiner. Per-time-point aggregates coincide for DIST and
/// ALL (paper, Fig 3), so the cache also serves single-point DIST queries.
class MaterializationStore {
 public:
  /// Does not take ownership of `graph`; `graph` must outlive the store.
  MaterializationStore(const TemporalGraph* graph, std::vector<AttrRef> attrs);

  /// Computes and caches the aggregate of every time point. Idempotent.
  void MaterializeAllTimePoints();

  /// Incremental maintenance after `TemporalGraph::AppendTimePoint`: computes
  /// aggregates only for time points added since the last (Materialize|
  /// Refresh); existing cache entries are untouched. No-op when up to date.
  void Refresh();

  bool materialized() const { return !per_time_.empty(); }

  /// The cached aggregate of the snapshot at `t`.
  const AggregateGraph& AtTimePoint(TimeId t) const;

  /// The ALL-semantics aggregate of the union graph over `interval`, derived
  /// from the cache by weight summation — no access to the original graph.
  AggregateGraph UnionAllAggregate(const IntervalSet& interval) const;

  const std::vector<AttrRef>& attrs() const { return attrs_; }

  /// How many time points are cached. Smaller than the graph's `num_times()`
  /// exactly when the cache is stale (AppendTimePoint without Refresh).
  std::size_t num_cached_points() const { return per_time_.size(); }

 private:
  const TemporalGraph* graph_;
  std::vector<AttrRef> attrs_;
  std::vector<AggregateGraph> per_time_;
};

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_MATERIALIZATION_H_
