#include "core/naive_exploration.h"

#include <optional>

#include "core/exploration_internal.h"

namespace graphtempo {

ExplorationResult ExploreNaive(const TemporalGraph& graph, const ExplorationSpec& spec) {
  GT_CHECK_GE(spec.k, 1) << "threshold k must be positive";
  const std::size_t n = graph.num_times();
  GT_CHECK_GE(n, 2u) << "exploration needs at least two time points";

  const bool minimal_goal = spec.semantics == ExtensionSemantics::kUnion;
  ExplorationResult result;
  internal_exploration::EventEngine engine(graph, spec.selector);

  auto make_pair = [&](TimeId ref, std::size_t len) -> std::pair<TimeRange, TimeRange> {
    if (spec.reference == ReferenceEnd::kOld) {
      return {TimeRange{ref, ref},
              TimeRange{ref + 1, static_cast<TimeId>(ref + len)}};
    }
    return {TimeRange{static_cast<TimeId>(ref - len), static_cast<TimeId>(ref - 1)},
            TimeRange{ref, ref}};
  };

  const TimeId ref_begin = spec.reference == ReferenceEnd::kOld ? 0 : 1;
  const TimeId ref_end = spec.reference == ReferenceEnd::kOld
                             ? static_cast<TimeId>(n - 1)
                             : static_cast<TimeId>(n);
  for (TimeId ref = ref_begin; ref < ref_end; ++ref) {
    const std::size_t max_len =
        spec.reference == ReferenceEnd::kOld ? (n - 1 - ref) : ref;
    if (max_len == 0) continue;

    // Evaluate every candidate for this reference. The candidates of one
    // reference form a chain under ⊆, so the minimal (maximal) qualifying
    // pair is the shortest (longest) qualifying extension.
    std::optional<std::pair<std::size_t, Weight>> chosen;
    for (std::size_t len = 1; len <= max_len; ++len) {
      auto [old_range, new_range] = make_pair(ref, len);
      ++result.evaluations;
      Weight count =
          engine.Count(old_range, new_range, spec.semantics, spec.event);
      if (count < spec.k) continue;
      if (minimal_goal) {
        if (!chosen.has_value()) chosen = {len, count};
      } else {
        chosen = {len, count};  // keep the longest qualifying extension
      }
    }
    if (chosen.has_value()) {
      auto [old_range, new_range] = make_pair(ref, chosen->first);
      result.pairs.push_back(IntervalPair{old_range, new_range, chosen->second});
    }
  }
  return result;
}

}  // namespace graphtempo
