#include "core/graph_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/trace.h"
#include "storage/tsv.h"
#include "util/check.h"
#include "util/string_util.h"

namespace graphtempo {

namespace {

std::string PresenceString(const BitMatrix& presence, std::size_t row) {
  std::string bits(presence.columns(), '0');
  for (std::size_t t = 0; t < presence.columns(); ++t) {
    if (presence.Test(row, t)) bits[t] = '1';
  }
  return bits;
}

/// Parser state machine over the section headers.
struct Section {
  enum class Kind { kNone, kTimes, kNodes, kEdges, kStatic, kVarying, kEdgeStatic, kEdgeVarying };
  Kind kind = Kind::kNone;
  std::uint32_t attr_index = 0;  // for kStatic / kVarying
};

bool Fail(std::string* error, std::size_t line, const std::string& message) {
  std::ostringstream out;
  out << "line " << line << ": " << message;
  *error = out.str();
  return false;
}

}  // namespace

void WriteGraph(const TemporalGraph& graph, std::ostream* out) {
  GT_SPAN("io/write_graph", {{"nodes", graph.num_nodes()}, {"edges", graph.num_edges()}});
  TsvWriter writer(out);
  writer.WriteComment("GraphTempo temporal attributed graph");
  writer.WriteRow({"!format", "graphtempo", "1"});

  writer.WriteRow({"!section", "times"});
  for (TimeId t = 0; t < graph.num_times(); ++t) {
    writer.WriteRow({graph.time_label(t)});
  }

  writer.WriteRow({"!section", "nodes"});
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    writer.WriteRow({graph.node_label(n), PresenceString(graph.node_presence(), n)});
  }

  writer.WriteRow({"!section", "edges"});
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    auto [src, dst] = graph.edge(e);
    writer.WriteRow({graph.node_label(src), graph.node_label(dst),
                     PresenceString(graph.edge_presence(), e)});
  }

  for (std::uint32_t a = 0; a < graph.num_static_attributes(); ++a) {
    const StaticColumn& column = graph.static_attribute(a);
    writer.WriteRow({"!section", "static", column.name()});
    for (NodeId n = 0; n < graph.num_nodes(); ++n) {
      if (column.CodeAt(n) == kNoValue) continue;
      writer.WriteRow({graph.node_label(n), column.ValueAt(n)});
    }
  }

  for (std::uint32_t a = 0; a < graph.num_time_varying_attributes(); ++a) {
    const TimeVaryingColumn& column = graph.time_varying_attribute(a);
    writer.WriteRow({"!section", "varying", column.name()});
    for (NodeId n = 0; n < graph.num_nodes(); ++n) {
      for (TimeId t = 0; t < graph.num_times(); ++t) {
        if (column.CodeAt(n, t) == kNoValue) continue;
        writer.WriteRow({graph.node_label(n), graph.time_label(t), column.ValueAt(n, t)});
      }
    }
  }

  for (std::uint32_t a = 0; a < graph.num_static_edge_attributes(); ++a) {
    const StaticColumn& column = graph.static_edge_attribute(a);
    writer.WriteRow({"!section", "estatic", column.name()});
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (column.CodeAt(e) == kNoValue) continue;
      auto [src, dst] = graph.edge(e);
      writer.WriteRow({graph.node_label(src), graph.node_label(dst), column.ValueAt(e)});
    }
  }

  for (std::uint32_t a = 0; a < graph.num_time_varying_edge_attributes(); ++a) {
    const TimeVaryingColumn& column = graph.time_varying_edge_attribute(a);
    writer.WriteRow({"!section", "evarying", column.name()});
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      auto [src, dst] = graph.edge(e);
      for (TimeId t = 0; t < graph.num_times(); ++t) {
        if (column.CodeAt(e, t) == kNoValue) continue;
        writer.WriteRow({graph.node_label(src), graph.node_label(dst),
                         graph.time_label(t), column.ValueAt(e, t)});
      }
    }
  }
}

std::optional<TemporalGraph> ReadGraph(std::istream* in, std::string* error) {
  GT_SPAN("io/read_graph");
  GT_CHECK(error != nullptr);
  TsvReader reader(in);

  auto header = reader.ReadRow();
  if (!header.has_value() || header->size() != 3 || (*header)[0] != "!format" ||
      (*header)[1] != "graphtempo" || (*header)[2] != "1") {
    Fail(error, reader.line_number(), "missing or unsupported !format header");
    return std::nullopt;
  }

  // First pass requirement: the times section must precede entity sections,
  // because presence strings are validated against the domain size.
  std::vector<std::string> time_labels;
  std::optional<TemporalGraph> graph;
  Section section;

  auto require_graph = [&](std::size_t line) -> bool {
    if (graph.has_value()) return true;
    if (time_labels.empty()) {
      return Fail(error, line, "entity section before a non-empty times section");
    }
    graph.emplace(time_labels);
    return true;
  };

  auto parse_presence = [&](const std::string& bits, std::size_t line,
                            std::vector<TimeId>* times) -> bool {
    if (bits.size() != time_labels.size()) {
      return Fail(error, line, "presence string length != number of time points");
    }
    for (std::size_t t = 0; t < bits.size(); ++t) {
      if (bits[t] == '1') {
        times->push_back(static_cast<TimeId>(t));
      } else if (bits[t] != '0') {
        return Fail(error, line, "presence string must contain only 0/1");
      }
    }
    return true;
  };

  while (auto row_opt = reader.ReadRow()) {
    const std::vector<std::string>& row = *row_opt;
    const std::size_t line = reader.line_number();

    if (row[0] == "!section") {
      if (row.size() < 2) {
        Fail(error, line, "!section needs a name");
        return std::nullopt;
      }
      const std::string& name = row[1];
      if (name == "times") {
        if (graph.has_value()) {
          Fail(error, line, "times section must come before entity sections");
          return std::nullopt;
        }
        section.kind = Section::Kind::kTimes;
      } else if (name == "nodes") {
        if (!require_graph(line)) return std::nullopt;
        section.kind = Section::Kind::kNodes;
      } else if (name == "edges") {
        if (!require_graph(line)) return std::nullopt;
        section.kind = Section::Kind::kEdges;
      } else if (name == "estatic" || name == "evarying") {
        if (!require_graph(line)) return std::nullopt;
        if (row.size() != 3) {
          Fail(error, line, "attribute section needs a name field");
          return std::nullopt;
        }
        std::optional<EdgeAttrRef> existing = graph->FindEdgeAttribute(row[2]);
        if (name == "estatic") {
          section.kind = Section::Kind::kEdgeStatic;
          if (existing.has_value()) {
            if (existing->kind != EdgeAttrRef::Kind::kStatic) {
              Fail(error, line, "edge attribute kind mismatch: " + row[2]);
              return std::nullopt;
            }
            section.attr_index = existing->index;
          } else {
            section.attr_index = graph->AddStaticEdgeAttribute(row[2]);
          }
        } else {
          section.kind = Section::Kind::kEdgeVarying;
          if (existing.has_value()) {
            if (existing->kind != EdgeAttrRef::Kind::kTimeVarying) {
              Fail(error, line, "edge attribute kind mismatch: " + row[2]);
              return std::nullopt;
            }
            section.attr_index = existing->index;
          } else {
            section.attr_index = graph->AddTimeVaryingEdgeAttribute(row[2]);
          }
        }
      } else if (name == "static" || name == "varying") {
        if (!require_graph(line)) return std::nullopt;
        if (row.size() != 3) {
          Fail(error, line, "attribute section needs a name field");
          return std::nullopt;
        }
        std::optional<AttrRef> existing = graph->FindAttribute(row[2]);
        if (name == "static") {
          section.kind = Section::Kind::kStatic;
          if (existing.has_value()) {
            if (existing->kind != AttrRef::Kind::kStatic) {
              Fail(error, line, "attribute kind mismatch: " + row[2]);
              return std::nullopt;
            }
            section.attr_index = existing->index;
          } else {
            section.attr_index = graph->AddStaticAttribute(row[2]);
          }
        } else {
          section.kind = Section::Kind::kVarying;
          if (existing.has_value()) {
            if (existing->kind != AttrRef::Kind::kTimeVarying) {
              Fail(error, line, "attribute kind mismatch: " + row[2]);
              return std::nullopt;
            }
            section.attr_index = existing->index;
          } else {
            section.attr_index = graph->AddTimeVaryingAttribute(row[2]);
          }
        }
      } else {
        Fail(error, line, "unknown section: " + name);
        return std::nullopt;
      }
      continue;
    }

    switch (section.kind) {
      case Section::Kind::kNone:
        Fail(error, line, "data row before any section");
        return std::nullopt;
      case Section::Kind::kTimes:
        if (row.size() != 1) {
          Fail(error, line, "times row must have one field");
          return std::nullopt;
        }
        // Validate here: the TemporalGraph constructor treats duplicates as a
        // programmer error (GT_CHECK), but on parse they are bad input.
        if (std::find(time_labels.begin(), time_labels.end(), row[0]) !=
            time_labels.end()) {
          Fail(error, line, "duplicate time label: " + row[0]);
          return std::nullopt;
        }
        time_labels.push_back(row[0]);
        break;
      case Section::Kind::kNodes: {
        if (row.size() != 2) {
          Fail(error, line, "nodes row must be: label, presence");
          return std::nullopt;
        }
        std::vector<TimeId> times;
        if (!parse_presence(row[1], line, &times)) return std::nullopt;
        NodeId n = graph->GetOrAddNode(row[0]);
        for (TimeId t : times) graph->SetNodePresent(n, t);
        break;
      }
      case Section::Kind::kEdges: {
        if (row.size() != 3) {
          Fail(error, line, "edges row must be: src, dst, presence");
          return std::nullopt;
        }
        std::vector<TimeId> times;
        if (!parse_presence(row[2], line, &times)) return std::nullopt;
        NodeId src = graph->GetOrAddNode(row[0]);
        NodeId dst = graph->GetOrAddNode(row[1]);
        EdgeId e = graph->GetOrAddEdge(src, dst);
        for (TimeId t : times) graph->SetEdgePresent(e, t);
        break;
      }
      case Section::Kind::kStatic: {
        if (row.size() != 2) {
          Fail(error, line, "static attribute row must be: node, value");
          return std::nullopt;
        }
        NodeId n = graph->GetOrAddNode(row[0]);
        graph->SetStaticValue(section.attr_index, n, row[1]);
        break;
      }
      case Section::Kind::kVarying: {
        if (row.size() != 3) {
          Fail(error, line, "varying attribute row must be: node, time, value");
          return std::nullopt;
        }
        NodeId n = graph->GetOrAddNode(row[0]);
        std::optional<TimeId> t = graph->FindTime(row[1]);
        if (!t.has_value()) {
          Fail(error, line, "unknown time label: " + row[1]);
          return std::nullopt;
        }
        graph->SetTimeVaryingValue(section.attr_index, n, *t, row[2]);
        break;
      }
      case Section::Kind::kEdgeStatic: {
        if (row.size() != 3) {
          Fail(error, line, "static edge attribute row must be: src, dst, value");
          return std::nullopt;
        }
        NodeId src = graph->GetOrAddNode(row[0]);
        NodeId dst = graph->GetOrAddNode(row[1]);
        EdgeId e = graph->GetOrAddEdge(src, dst);
        graph->SetStaticEdgeValue(section.attr_index, e, row[2]);
        break;
      }
      case Section::Kind::kEdgeVarying: {
        if (row.size() != 4) {
          Fail(error, line, "varying edge attribute row must be: src, dst, time, value");
          return std::nullopt;
        }
        NodeId src = graph->GetOrAddNode(row[0]);
        NodeId dst = graph->GetOrAddNode(row[1]);
        EdgeId e = graph->GetOrAddEdge(src, dst);
        std::optional<TimeId> t = graph->FindTime(row[2]);
        if (!t.has_value()) {
          Fail(error, line, "unknown time label: " + row[2]);
          return std::nullopt;
        }
        graph->SetTimeVaryingEdgeValue(section.attr_index, e, *t, row[3]);
        break;
      }
    }
  }

  if (!graph.has_value()) {
    if (time_labels.empty()) {
      Fail(error, reader.line_number(), "file has no times section");
      return std::nullopt;
    }
    graph.emplace(time_labels);
  }
  return graph;
}

bool WriteGraphToFile(const TemporalGraph& graph, const std::string& path,
                      std::string* error) {
  GT_CHECK(error != nullptr);
  std::ofstream out(path);
  if (!out) {
    *error = "cannot open for writing: " + path;
    return false;
  }
  WriteGraph(graph, &out);
  out.flush();
  if (!out) {
    *error = "write failed: " + path;
    return false;
  }
  return true;
}

std::optional<TemporalGraph> ReadGraphFromFile(const std::string& path,
                                               std::string* error) {
  GT_CHECK(error != nullptr);
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open for reading: " + path;
    return std::nullopt;
  }
  return ReadGraph(&in, error);
}

}  // namespace graphtempo
