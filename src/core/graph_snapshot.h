#ifndef GRAPHTEMPO_CORE_GRAPH_SNAPSHOT_H_
#define GRAPHTEMPO_CORE_GRAPH_SNAPSHOT_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/aggregation.h"
#include "core/temporal_graph.h"

/// \file
/// Binary snapshot (de)serialization of `TemporalGraph` (docs/STORAGE.md).
///
/// A snapshot is a storage/snapshot.h container whose sections carry the
/// graph's columnar representation directly: dictionary blocks, RLE-compressed
/// presence columns, raw attribute code arrays — plus the per-time-point
/// mutation generations, so a query engine restarted from a snapshot keeps
/// the cache-validity bookkeeping it had at save time (a result cache or
/// spilled layer stamped `generation g` stays valid after restart exactly
/// when it was valid before).
///
/// Loading decodes dictionaries and code arrays eagerly (they are cheap and
/// needed for any query) but hands presence columns to `PresenceIndex`
/// still compressed — each column decodes on first touch, so boot cost is
/// proportional to what the workload reads. The row-major presence matrices
/// are rebuilt at load (they back per-entity accessors and have no lazy
/// seam).
///
/// Every validation failure — bad magic, checksum, truncation, out-of-range
/// ids or codes, wrong counts — fails closed: nullopt plus one diagnostic,
/// never a partially restored graph.

namespace graphtempo {

/// Serializes `graph` to `path` (atomic temp + rename). Counts
/// `storage/snapshot_save` and `storage/snapshot_bytes`. False + one
/// diagnostic on failure.
bool SaveGraphSnapshot(const TemporalGraph& graph, const std::string& path,
                       std::string* error);

/// Restores a graph from `path`. Counts `storage/snapshot_load` on success,
/// `storage/snapshot_load_errors` on failure. nullopt + one diagnostic on
/// any validation failure.
std::optional<TemporalGraph> LoadGraphSnapshot(const std::string& path,
                                               std::string* error);

/// Serializes a materialized roll-up layer (one `AggregateGraph` per time
/// point) to bytes — the engine's spill-tier format for subset layers and
/// large cached aggregate results. Deterministic given iteration order is
/// not (hash maps): decode(encode(x)) == x, but encode is not canonical.
std::string EncodeAggregateGraphs(const std::vector<AggregateGraph>& layers);

/// Inverse of EncodeAggregateGraphs. False + one diagnostic on malformed
/// bytes (a corrupt spill file must read as a miss, not a wrong answer).
bool DecodeAggregateGraphs(std::string_view bytes,
                           std::vector<AggregateGraph>* out, std::string* error);

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_GRAPH_SNAPSHOT_H_
