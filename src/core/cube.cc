#include "core/cube.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace graphtempo {

AggregateCube::AggregateCube(const TemporalGraph* graph, std::vector<AttrRef> base_attrs)
    : graph_(graph), base_(graph, std::move(base_attrs)) {
  GT_CHECK_LE(base_.attrs().size(), AttrTuple::kMaxAttrs) << "too many base attributes";
}

void AggregateCube::Materialize() { base_.MaterializeAllTimePoints(); }

void AggregateCube::Refresh() {
  base_.Refresh();
  for (auto& [mask, layer] : subset_layers_) {
    // Recover the canonical subset positions from the mask.
    std::vector<std::size_t> keep;
    for (std::size_t position = 0; position < base_.attrs().size(); ++position) {
      if ((mask >> position) & 1u) keep.push_back(position);
    }
    for (TimeId t = static_cast<TimeId>(layer.size()); t < graph_->num_times(); ++t) {
      layer.push_back(RollUp(base_.AtTimePoint(t), keep));
      ++stats_.rollups;
    }
  }
}

AggregateCube::SubsetMask AggregateCube::MaskOf(
    std::span<const std::size_t> keep_positions, std::size_t arity) {
  SubsetMask mask = 0;
  for (std::size_t position : keep_positions) {
    GT_CHECK_LT(position, arity) << "subset position out of range";
    mask |= SubsetMask{1} << position;
  }
  // The mask identifies the *set*; a reordered subset reuses the same layer
  // only if the order matches the canonical ascending one, so the layer cache
  // is restricted to canonical order (enforced by the caller below).
  return mask;
}

const std::vector<AggregateGraph>& AggregateCube::SubsetLayer(
    std::span<const std::size_t> keep_positions) {
  SubsetMask mask = MaskOf(keep_positions, base_.attrs().size());
  auto it = subset_layers_.find(mask);
  if (it != subset_layers_.end()) {
    stats_.rollup_hits += graph_->num_times();
    return it->second;
  }
  std::vector<AggregateGraph> layer;
  layer.reserve(graph_->num_times());
  for (TimeId t = 0; t < graph_->num_times(); ++t) {
    layer.push_back(RollUp(base_.AtTimePoint(t), keep_positions));
    ++stats_.rollups;
  }
  return subset_layers_.emplace(mask, std::move(layer)).first->second;
}

AggregateGraph AggregateCube::Query(const IntervalSet& interval,
                                    std::span<const std::size_t> keep_positions) {
  GT_CHECK(materialized()) << "call Materialize() first";
  GT_CHECK(!interval.Empty()) << "interval must be non-empty";
  GT_CHECK(!keep_positions.empty()) << "query needs at least one attribute";
  ++stats_.queries;

  // Canonicalize to ascending order for the layer cache, remembering whether
  // the caller asked for a different order.
  std::vector<std::size_t> canonical(keep_positions.begin(), keep_positions.end());
  std::sort(canonical.begin(), canonical.end());
  GT_CHECK(std::adjacent_find(canonical.begin(), canonical.end()) == canonical.end())
      << "duplicate subset position";
  GT_CHECK_LT(canonical.back(), base_.attrs().size()) << "subset position out of range";

  const bool full_set = canonical.size() == base_.attrs().size();
  const std::vector<AggregateGraph>* layer = nullptr;
  if (!full_set) {
    layer = &SubsetLayer(canonical);
  }

  AggregateGraph combined;
  interval.ForEach([&](TimeId t) {
    const AggregateGraph& point = full_set ? base_.AtTimePoint(t) : (*layer)[t];
    for (const auto& [tuple, weight] : point.nodes()) {
      combined.AddNodeWeight(tuple, weight);
    }
    for (const auto& [pair, weight] : point.edges()) {
      combined.AddEdgeWeight(pair.src, pair.dst, weight);
    }
    ++stats_.combines;
  });

  // Restore the caller's attribute order if it differed from canonical.
  bool reordered = !std::equal(canonical.begin(), canonical.end(),
                               keep_positions.begin(), keep_positions.end());
  if (!reordered) return combined;
  std::vector<std::size_t> order(keep_positions.size());
  for (std::size_t i = 0; i < keep_positions.size(); ++i) {
    auto it = std::find(canonical.begin(), canonical.end(), keep_positions[i]);
    order[i] = static_cast<std::size_t>(it - canonical.begin());
  }
  return RollUp(combined, order);
}

AggregateGraph AggregateCube::Query(const IntervalSet& interval) {
  std::vector<std::size_t> all(base_.attrs().size());
  std::iota(all.begin(), all.end(), 0);
  return Query(interval, all);
}

}  // namespace graphtempo
