#ifndef GRAPHTEMPO_CORE_STATS_H_
#define GRAPHTEMPO_CORE_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/temporal_graph.h"

/// \file
/// Descriptive statistics over temporal attributed graphs: per-snapshot
/// sizes and degrees, inter-snapshot overlap (the quantity the evolution
/// events measure in aggregate), entity lifespans, and attribute-value
/// distributions. Used by the dataset benchmark to document generator
/// realism, by the CLI's `info` command, and by examples.

namespace graphtempo {

/// Size and degree summary of the snapshot at one time point.
struct SnapshotStats {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  double avg_out_degree = 0.0;      ///< edges / nodes (0 when empty)
  std::size_t max_out_degree = 0;
  double density = 0.0;             ///< edges / (nodes · (nodes − 1))
};

SnapshotStats ComputeSnapshotStats(const TemporalGraph& graph, TimeId t);

/// Which entity population an overlap/lifespan statistic refers to.
enum class EntityKind : std::uint8_t { kNodes, kEdges };

/// Jaccard similarity |A ∩ B| / |A ∪ B| of the entity sets existing at `t1`
/// and `t2`. Returns 0 when both snapshots are empty.
double SnapshotJaccard(const TemporalGraph& graph, TimeId t1, TimeId t2,
                       EntityKind kind);

/// Out-degree histogram of the snapshot at `t`: degree → number of nodes.
/// Nodes present at `t` with no outgoing edge count under degree 0.
std::map<std::size_t, std::size_t> OutDegreeHistogram(const TemporalGraph& graph,
                                                      TimeId t);

/// Lifespan histogram: number of time points an entity exists at → count of
/// entities. Entities that never exist are excluded.
std::map<std::size_t, std::size_t> LifespanHistogram(const TemporalGraph& graph,
                                                     EntityKind kind);

/// Distribution of an attribute's values over the nodes existing at `t`:
/// value string → count. Unset values are skipped.
std::map<std::string, std::size_t> AttributeDistribution(const TemporalGraph& graph,
                                                         AttrRef attr, TimeId t);

// --- execution counters -------------------------------------------------------

/// Cumulative per-stage execution counters (process-wide, thread-safe):
/// how much work the parallel hot paths did since process start or the last
/// `ResetExecCounters`. Surfaced by the CLI's `--perf yes` flag and by the
/// benchmark JSON emitters; see docs/PARALLELISM.md.
struct ExecCounters {
  std::string backend;                   ///< active compute backend (accel/backend.h)
  std::uint64_t agg_rows_scanned = 0;    ///< node+edge rows walked by Aggregate
  std::uint64_t agg_chunks = 0;          ///< partition chunks run by Aggregate
  std::uint64_t agg_merge_nanos = 0;     ///< time merging per-chunk partials
  std::uint64_t explore_evaluations = 0; ///< candidate interval pairs evaluated
  std::uint64_t pool_jobs = 0;           ///< multi-chunk jobs on the shared pool
  std::uint64_t pool_chunks = 0;         ///< chunks executed on the shared pool
  std::uint64_t kernel_words = 0;        ///< 64-bit words streamed by the kernels
  std::uint64_t interval_index_hits = 0;   ///< interval folds answered by the sparse table
  std::uint64_t interval_index_misses = 0; ///< single-column folds (no table needed)
  std::uint64_t agg_dense_groups = 0;    ///< aggregation sides grouped densely
  std::uint64_t agg_hash_groups = 0;     ///< aggregation sides grouped via hash maps
};

/// Snapshot of the counters (pool counters are pulled from util/parallel).
ExecCounters GetExecCounters();

/// Zeroes all counters, including the shared pool's.
void ResetExecCounters();

/// Internal accumulation hooks for the parallel hot paths.
namespace internal_counters {
void AddAggregation(std::uint64_t rows, std::uint64_t chunks, std::uint64_t merge_nanos);
void AddExploreEvaluations(std::uint64_t evaluations);
void AddKernelWords(std::uint64_t words);
void AddIntervalIndex(std::uint64_t hits, std::uint64_t misses);
void AddGroupingPath(std::uint64_t dense, std::uint64_t hash);
}  // namespace internal_counters

}  // namespace graphtempo

#endif  // GRAPHTEMPO_CORE_STATS_H_
