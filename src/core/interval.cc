#include "core/interval.h"

#include "util/check.h"

namespace graphtempo {

IntervalSet IntervalSet::Point(std::size_t domain_size, TimeId t) {
  IntervalSet set(domain_size);
  set.Add(t);
  return set;
}

IntervalSet IntervalSet::Range(std::size_t domain_size, TimeId first, TimeId last) {
  IntervalSet set(domain_size);
  GT_CHECK_LE(first, last) << "inverted time range";
  set.bits_.SetRange(first, last);
  return set;
}

IntervalSet IntervalSet::Of(std::size_t domain_size, std::initializer_list<TimeId> times) {
  IntervalSet set(domain_size);
  for (TimeId t : times) set.Add(t);
  return set;
}

IntervalSet IntervalSet::All(std::size_t domain_size) {
  IntervalSet set(domain_size);
  set.bits_.SetAll();
  return set;
}

IntervalSet& IntervalSet::operator|=(const IntervalSet& other) {
  bits_ |= other.bits_;
  return *this;
}

IntervalSet& IntervalSet::operator&=(const IntervalSet& other) {
  bits_ &= other.bits_;
  return *this;
}

IntervalSet& IntervalSet::operator-=(const IntervalSet& other) {
  bits_ -= other.bits_;
  return *this;
}

std::vector<TimeId> IntervalSet::ToVector() const {
  std::vector<TimeId> times;
  times.reserve(Count());
  ForEach([&](TimeId t) { times.push_back(t); });
  return times;
}

bool IntervalSet::SameMembers(const IntervalSet& other) const {
  const std::vector<std::uint64_t>& a = bits_.words();
  const std::vector<std::uint64_t>& b = other.bits_.words();
  const std::size_t common = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) return false;
  }
  const std::vector<std::uint64_t>& longer = a.size() >= b.size() ? a : b;
  for (std::size_t i = common; i < longer.size(); ++i) {
    if (longer[i] != 0) return false;
  }
  return true;
}

std::string IntervalSet::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](TimeId t) {
    if (!first) out += ",";
    out += std::to_string(t);
    first = false;
  });
  out += "}";
  return out;
}

}  // namespace graphtempo
