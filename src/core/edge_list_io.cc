#include "core/edge_list_io.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "obs/trace.h"
#include "storage/tsv.h"
#include "util/check.h"
#include "util/string_util.h"

namespace graphtempo {

namespace {

bool Fail(std::string* error, std::size_t line, const std::string& message) {
  std::ostringstream out;
  out << "line " << line << ": " << message;
  *error = out.str();
  return false;
}

/// Orders inferred time labels: numerically when all are integers,
/// lexicographically otherwise.
std::vector<std::string> OrderTimeLabels(const std::set<std::string>& labels) {
  std::vector<std::string> ordered(labels.begin(), labels.end());
  bool all_numeric = true;
  for (const std::string& label : ordered) {
    std::uint64_t value = 0;
    if (!ParseUint64(label, &value)) {
      all_numeric = false;
      break;
    }
  }
  if (all_numeric) {
    std::sort(ordered.begin(), ordered.end(),
              [](const std::string& a, const std::string& b) {
                std::uint64_t va = 0;
                std::uint64_t vb = 0;
                ParseUint64(a, &va);
                ParseUint64(b, &vb);
                return va < vb;
              });
  } else {
    std::sort(ordered.begin(), ordered.end());
  }
  return ordered;
}

}  // namespace

std::optional<TemporalGraph> ReadEdgeList(std::istream* in, std::string* error) {
  GT_SPAN("io/read_edge_list");
  GT_CHECK(error != nullptr);

  struct Triple {
    std::string src;
    std::string dst;
    std::string time;
  };
  std::vector<Triple> triples;
  std::set<std::string> time_labels;

  TsvReader reader(in);
  while (auto row = reader.ReadRow()) {
    if (row->size() != 3) {
      Fail(error, reader.line_number(), "edge list row must be: src, dst, time");
      return std::nullopt;
    }
    triples.push_back(Triple{(*row)[0], (*row)[1], (*row)[2]});
    time_labels.insert((*row)[2]);
  }
  if (triples.empty()) {
    *error = "edge list is empty: cannot infer a time domain";
    return std::nullopt;
  }

  TemporalGraph graph(OrderTimeLabels(time_labels));
  for (const Triple& triple : triples) {
    NodeId src = graph.GetOrAddNode(triple.src);
    NodeId dst = graph.GetOrAddNode(triple.dst);
    EdgeId e = graph.GetOrAddEdge(src, dst);
    graph.SetEdgePresent(e, *graph.FindTime(triple.time));
  }
  return graph;
}

void WriteEdgeList(const TemporalGraph& graph, std::ostream* out) {
  TsvWriter writer(out);
  writer.WriteComment("src\tdst\ttime");
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    auto [src, dst] = graph.edge(e);
    for (TimeId t = 0; t < graph.num_times(); ++t) {
      if (!graph.EdgePresentAt(e, t)) continue;
      writer.WriteRow({graph.node_label(src), graph.node_label(dst),
                       graph.time_label(t)});
    }
  }
}

bool ReadStaticAttributeTsv(TemporalGraph* graph, std::istream* in,
                            const std::string& attribute_name, std::string* error) {
  GT_CHECK(graph != nullptr);
  GT_CHECK(error != nullptr);
  std::optional<AttrRef> existing = graph->FindAttribute(attribute_name);
  std::uint32_t attr;
  if (existing.has_value()) {
    if (existing->kind != AttrRef::Kind::kStatic) {
      *error = "attribute '" + attribute_name + "' already exists as time-varying";
      return false;
    }
    attr = existing->index;
  } else {
    attr = graph->AddStaticAttribute(attribute_name);
  }

  TsvReader reader(in);
  while (auto row = reader.ReadRow()) {
    if (row->size() != 2) {
      return Fail(error, reader.line_number(), "static attribute row must be: node, value");
    }
    std::optional<NodeId> node = graph->FindNode((*row)[0]);
    if (!node.has_value()) {
      return Fail(error, reader.line_number(), "unknown node: " + (*row)[0]);
    }
    graph->SetStaticValue(attr, *node, (*row)[1]);
  }
  return true;
}

bool ReadTimeVaryingAttributeTsv(TemporalGraph* graph, std::istream* in,
                                 const std::string& attribute_name, std::string* error) {
  GT_CHECK(graph != nullptr);
  GT_CHECK(error != nullptr);
  std::optional<AttrRef> existing = graph->FindAttribute(attribute_name);
  std::uint32_t attr;
  if (existing.has_value()) {
    if (existing->kind != AttrRef::Kind::kTimeVarying) {
      *error = "attribute '" + attribute_name + "' already exists as static";
      return false;
    }
    attr = existing->index;
  } else {
    attr = graph->AddTimeVaryingAttribute(attribute_name);
  }

  TsvReader reader(in);
  while (auto row = reader.ReadRow()) {
    if (row->size() != 3) {
      return Fail(error, reader.line_number(),
                  "time-varying attribute row must be: node, time, value");
    }
    std::optional<NodeId> node = graph->FindNode((*row)[0]);
    if (!node.has_value()) {
      return Fail(error, reader.line_number(), "unknown node: " + (*row)[0]);
    }
    std::optional<TimeId> t = graph->FindTime((*row)[1]);
    if (!t.has_value()) {
      return Fail(error, reader.line_number(), "unknown time label: " + (*row)[1]);
    }
    graph->SetNodePresent(*node, *t);  // an observed value implies existence
    graph->SetTimeVaryingValue(attr, *node, *t, (*row)[2]);
  }
  return true;
}

std::optional<TemporalGraph> ReadEdgeListFromFile(const std::string& path,
                                                  std::string* error) {
  GT_CHECK(error != nullptr);
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open for reading: " + path;
    return std::nullopt;
  }
  return ReadEdgeList(&in, error);
}

bool WriteEdgeListToFile(const TemporalGraph& graph, const std::string& path,
                         std::string* error) {
  GT_CHECK(error != nullptr);
  std::ofstream out(path);
  if (!out) {
    *error = "cannot open for writing: " + path;
    return false;
  }
  WriteEdgeList(graph, &out);
  out.flush();
  if (!out) {
    *error = "write failed: " + path;
    return false;
  }
  return true;
}

}  // namespace graphtempo
