#include "obs/context.h"

#include <utility>

namespace graphtempo::obs {

namespace {

std::atomic<std::uint64_t> g_next_query_id{1};
thread_local RequestContext* t_context = nullptr;

}  // namespace

RequestContext::RequestContext(std::string client_request_id)
    : query_id(g_next_query_id.fetch_add(1, std::memory_order_relaxed)),
      client_request_id(std::move(client_request_id)) {}

void RequestContext::AddPhase(const char* name, std::uint64_t duration_ns) {
  for (std::size_t i = 0; i < kMaxPhases; ++i) {
    PhaseSlot& slot = phases_[i];
    const char* current = slot.name.load(std::memory_order_acquire);
    if (current == nullptr) {
      // Claim the slot; on a lost race fall through to whoever won it.
      const char* expected = nullptr;
      if (!slot.name.compare_exchange_strong(expected, name,
                                             std::memory_order_acq_rel)) {
        current = expected;
      } else {
        current = name;
      }
    }
    if (current == name) {
      slot.total_ns.fetch_add(duration_ns, std::memory_order_relaxed);
      slot.count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  phases_dropped.fetch_add(1, std::memory_order_relaxed);
}

std::vector<PhaseTiming> RequestContext::Phases() const {
  std::vector<PhaseTiming> timings;
  for (std::size_t i = 0; i < kMaxPhases; ++i) {
    const PhaseSlot& slot = phases_[i];
    const char* name = slot.name.load(std::memory_order_acquire);
    if (name == nullptr) break;
    timings.push_back(PhaseTiming{name, slot.total_ns.load(std::memory_order_relaxed),
                                  slot.count.load(std::memory_order_relaxed)});
  }
  return timings;
}

RequestContext* CurrentRequestContext() { return t_context; }

ScopedRequestContext::ScopedRequestContext(RequestContext* context)
    : previous_(t_context) {
  t_context = context;
}

ScopedRequestContext::~ScopedRequestContext() { t_context = previous_; }

namespace internal_context {

void AccumulatePhase(const char* name, std::uint64_t duration_ns) {
  RequestContext* context = t_context;
  if (context != nullptr) context->AddPhase(name, duration_ns);
}

}  // namespace internal_context

}  // namespace graphtempo::obs
