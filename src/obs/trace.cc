#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>
#include <unordered_map>

#include "obs/context.h"
#include "obs/flight.h"
#include "obs/metrics.h"

namespace graphtempo::obs {

namespace internal_trace {
// The flight-recorder bit is constant-initialized on, so every span records
// into the always-on per-thread rings (obs/flight.h) from the first
// instruction of main onward — no session, no flag, no init-order hazard.
std::atomic<std::uint32_t> g_mode{kModeFlight};
}  // namespace internal_trace

namespace {

using internal_trace::g_mode;
using internal_trace::kModeFlight;
using internal_trace::kModeHistogram;
using internal_trace::kModeTrace;

/// One finished span as stored in a thread buffer. Slots are written exactly
/// once (no wrap-around), then published by a release-store of the buffer
/// size — the exporter's acquire-load of the size orders the reads.
struct EventSlot {
  const char* name;
  std::uint64_t start_ns;  ///< relative to session start
  std::uint64_t duration_ns;
  SpanArg args[Span::kMaxArgs];
  std::uint32_t num_args;
};

/// Append-only per-thread event buffer. Written only by the owning thread;
/// read by the session thread after stopping.
struct ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t lane_id, const char* name,
                        std::size_t capacity)
      : lane(lane_id), lane_name(name) {
    slots.resize(capacity);
  }

  std::vector<EventSlot> slots;
  std::atomic<std::uint32_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
  const std::uint32_t lane;
  const char* lane_name;  ///< literal; combined with lane as "<name>-<lane>"
};

/// Global trace state. The mutex guards buffer registration and session
/// start/stop; recording itself never takes it.
struct TraceState {
  std::mutex mutex;
  std::vector<ThreadBuffer*> buffers;  // leaked with the threads they serve
  std::size_t capacity = 1 << 15;
  bool session_active = false;
  std::atomic<std::uint64_t> session_start_ns{0};
};

TraceState& State() {
  static TraceState& state = *new TraceState();
  return state;
}

thread_local const char* t_lane_name = "lane";
thread_local ThreadBuffer* t_buffer = nullptr;

ThreadBuffer& GetThreadBuffer() {
  if (t_buffer != nullptr) return *t_buffer;
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto* buffer =
      new ThreadBuffer(static_cast<std::uint32_t>(state.buffers.size()), t_lane_name,
                       state.capacity);
  state.buffers.push_back(buffer);
  t_buffer = buffer;
  return *buffer;
}

/// Per-thread cache mapping span-name literals to their `span/<name>`
/// registry histograms, so latency capture costs one hash probe instead of a
/// registry mutex after the first hit per call site per thread.
Histogram& SpanHistogram(const char* name) {
  thread_local std::unordered_map<const void*, Histogram*> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    std::string metric = std::string("span/") + name;
    it = cache.emplace(name, &Registry::Instance().GetHistogram(metric)).first;
  }
  return *it->second;
}

}  // namespace

namespace internal_trace {

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void RecordSpan(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
                const SpanArg* args, std::uint32_t num_args, std::uint32_t mode) {
  const std::uint64_t duration = end_ns >= start_ns ? end_ns - start_ns : 0;
  if ((mode & kModeHistogram) != 0) {
    SpanHistogram(name).Record(duration / 1000);  // microseconds
  }
  if ((mode & kModeFlight) != 0) {
    internal_flight::Record(name, end_ns, duration, args, num_args);
    internal_context::AccumulatePhase(name, duration);
  }
  if ((mode & kModeTrace) == 0) return;

  ThreadBuffer& buffer = GetThreadBuffer();
  const std::uint32_t index = buffer.size.load(std::memory_order_relaxed);
  if (index >= buffer.slots.size()) {
    buffer.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  EventSlot& slot = buffer.slots[index];
  slot.name = name;
  const std::uint64_t session_start =
      State().session_start_ns.load(std::memory_order_relaxed);
  slot.start_ns = start_ns >= session_start ? start_ns - session_start : 0;
  slot.duration_ns = duration;
  slot.num_args = num_args;
  for (std::uint32_t i = 0; i < num_args; ++i) slot.args[i] = args[i];
  buffer.size.store(index + 1, std::memory_order_release);
}

}  // namespace internal_trace

void SetCurrentThreadLaneName(const char* name) {
  t_lane_name = name;
  if (t_buffer != nullptr) t_buffer->lane_name = name;
  internal_flight::SetThreadLaneName(name);
}

namespace internal_trace {
const char* CurrentThreadLaneName() { return t_lane_name; }
}  // namespace internal_trace

namespace {
std::atomic<int> g_latency_capture_depth{0};
}  // namespace

ScopedLatencyCapture::ScopedLatencyCapture() {
  if (g_latency_capture_depth.fetch_add(1, std::memory_order_relaxed) == 0) {
    g_mode.fetch_or(kModeHistogram, std::memory_order_relaxed);
  }
}

ScopedLatencyCapture::~ScopedLatencyCapture() {
  if (g_latency_capture_depth.fetch_sub(1, std::memory_order_relaxed) == 1) {
    g_mode.fetch_and(~kModeHistogram, std::memory_order_relaxed);
  }
}

TraceSession::TraceSession() : TraceSession(Options()) {}

TraceSession::TraceSession(Options options) {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.session_active) {
    std::fprintf(stderr, "graphtempo: nested TraceSession is not supported\n");
    std::abort();
  }
  state.capacity = options.per_thread_capacity;
  for (ThreadBuffer* buffer : state.buffers) {
    // Safe: no session is active, so no thread is appending (stragglers from
    // a previous session must have quiesced before starting a new one — see
    // the header contract).
    buffer->slots.resize(state.capacity);
    buffer->size.store(0, std::memory_order_relaxed);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
  state.session_start_ns.store(internal_trace::NowNanos(), std::memory_order_relaxed);
  state.session_active = true;
  g_mode.fetch_or(kModeTrace, std::memory_order_relaxed);
}

TraceSession::~TraceSession() { Stop(); }

void TraceSession::Stop() {
  if (stopped_) return;
  stopped_ = true;
  g_mode.fetch_and(~kModeTrace, std::memory_order_relaxed);
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.session_active = false;
}

const std::vector<CollectedEvent>& TraceSession::Collect() {
  Stop();
  if (collected_) return events_;
  collected_ = true;
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (ThreadBuffer* buffer : state.buffers) {
    const std::uint32_t count = buffer->size.load(std::memory_order_acquire);
    dropped_ += buffer->dropped.load(std::memory_order_relaxed);
    lane_names_.emplace_back(
        buffer->lane,
        std::string(buffer->lane_name) + "-" + std::to_string(buffer->lane));
    for (std::uint32_t i = 0; i < count; ++i) {
      const EventSlot& slot = buffer->slots[i];
      CollectedEvent event;
      event.name = slot.name;
      event.lane = buffer->lane;
      event.start_ns = slot.start_ns;
      event.duration_ns = slot.duration_ns;
      event.num_args = slot.num_args;
      for (std::uint32_t a = 0; a < slot.num_args; ++a) event.args[a] = slot.args[a];
      events_.push_back(event);
    }
  }
  return events_;
}

std::size_t TraceSession::event_count() { return Collect().size(); }

std::uint64_t TraceSession::dropped() {
  Collect();
  return dropped_;
}

namespace {

void AppendEscaped(std::string* out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out->push_back('\\');
    out->push_back(*p);
  }
}

}  // namespace

namespace internal_trace {

std::string RenderChromeTraceJson(
    const std::vector<CollectedEvent>& events,
    const std::vector<std::pair<std::uint32_t, std::string>>& lane_names,
    std::uint64_t dropped) {
  std::string body = "{\"traceEvents\":[";
  bool first = true;
  char buffer[160];
  for (const auto& [lane, name] : lane_names) {
    if (!first) body.push_back(',');
    first = false;
    body += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":";
    body += std::to_string(lane);
    body += ",\"args\":{\"name\":\"";
    AppendEscaped(&body, name.c_str());
    body += "\"}}";
  }
  for (const CollectedEvent& event : events) {
    if (!first) body.push_back(',');
    first = false;
    body += "{\"ph\":\"X\",\"name\":\"";
    AppendEscaped(&body, event.name);
    std::snprintf(buffer, sizeof(buffer),
                  "\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f", event.lane,
                  static_cast<double>(event.start_ns) / 1000.0,
                  static_cast<double>(event.duration_ns) / 1000.0);
    body += buffer;
    if (event.num_args > 0) {
      body += ",\"args\":{";
      for (std::uint32_t a = 0; a < event.num_args; ++a) {
        if (a != 0) body.push_back(',');
        body.push_back('"');
        AppendEscaped(&body, event.args[a].name);
        body += "\":";
        body += std::to_string(event.args[a].value);
      }
      body.push_back('}');
    }
    body.push_back('}');
  }
  body += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":";
  body += std::to_string(dropped);
  body += "}}";
  return body;
}

}  // namespace internal_trace

void TraceSession::WriteJson(std::ostream& out) {
  const std::vector<CollectedEvent>& events = Collect();
  out << internal_trace::RenderChromeTraceJson(events, lane_names_, dropped_) << "\n";
}

bool TraceSession::WriteJsonFile(const std::string& path, std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open for writing: " + path;
    return false;
  }
  WriteJson(out);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failed: " + path;
    return false;
  }
  return true;
}

}  // namespace graphtempo::obs
