#include "obs/prometheus.h"

#include <cstdio>
#include <map>
#include <mutex>

namespace graphtempo::obs {

struct ExemplarStore::Impl {
  mutable std::mutex mutex;
  std::map<std::string, Exemplar, std::less<>> exemplars;
};

ExemplarStore& ExemplarStore::Instance() {
  static ExemplarStore& store = *new ExemplarStore();
  return store;
}

ExemplarStore::Impl& ExemplarStore::impl() const {
  static Impl& impl = *new Impl();
  return impl;
}

void ExemplarStore::Offer(const std::string& metric, std::uint64_t value,
                          const std::string& request_id) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.exemplars[metric] = Exemplar{value, request_id};
}

std::optional<Exemplar> ExemplarStore::Get(const std::string& metric) const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.exemplars.find(metric);
  if (it == state.exemplars.end()) return std::nullopt;
  return it->second;
}

std::string PrometheusName(const std::string& name) {
  std::string out = "gt_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

namespace {

void AppendUint(std::string* out, std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(value));
  out->append(buffer);
}

void AppendEscapedLabel(std::string* out, const std::string& value) {
  for (char c : value) {
    if (c == '\\' || c == '"') out->push_back('\\');
    if (c == '\n') {
      out->append("\\n");
      continue;
    }
    out->push_back(c);
  }
}

/// `# {request_id="…"} <value>` — the OpenMetrics exemplar suffix.
void AppendExemplar(std::string* out, const Exemplar& exemplar) {
  out->append(" # {request_id=\"");
  AppendEscapedLabel(out, exemplar.request_id);
  out->append("\"} ");
  AppendUint(out, exemplar.value);
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot,
                             const ExemplarStore* exemplars) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " ";
    AppendUint(&out, value);
    out.push_back('\n');
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    std::optional<Exemplar> exemplar =
        exemplars != nullptr ? exemplars->Get(name) : std::nullopt;
    // The exemplar's bucket; only meaningful if that bucket line is emitted.
    const std::size_t exemplar_bucket =
        exemplar.has_value() ? HistogramBucketOf(exemplar->value) : kHistogramBuckets;

    out += "# TYPE " + prom + " histogram\n";
    // Emit cumulative counts through the highest occupied bucket, capped at
    // 63: bucket 64's upper bound is 2^64−1, which is +Inf territory — the
    // mandatory {le="+Inf"} line (== _count) covers it.
    std::size_t highest = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (hist.buckets[b] != 0) highest = b;
    }
    if (highest > 63) highest = 63;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b <= highest; ++b) {
      cumulative += hist.buckets[b];
      out += prom + "_bucket{le=\"";
      AppendUint(&out, HistogramBucketUpperBound(b));
      out += "\"} ";
      AppendUint(&out, cumulative);
      if (exemplar.has_value() && b == exemplar_bucket) {
        AppendExemplar(&out, *exemplar);
      }
      out.push_back('\n');
    }
    out += prom + "_bucket{le=\"+Inf\"} ";
    AppendUint(&out, hist.count);
    if (exemplar.has_value() && exemplar_bucket > highest) {
      AppendExemplar(&out, *exemplar);
    }
    out.push_back('\n');
    out += prom + "_sum ";
    AppendUint(&out, hist.sum);
    out.push_back('\n');
    out += prom + "_count ";
    AppendUint(&out, hist.count);
    out.push_back('\n');
  }
  return out;
}

}  // namespace graphtempo::obs
