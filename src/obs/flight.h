#ifndef GRAPHTEMPO_OBS_FLIGHT_H_
#define GRAPHTEMPO_OBS_FLIGHT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

/// \file
/// The always-on flight recorder (docs/OBSERVABILITY.md §Serving-path
/// observability): a fixed-size per-thread ring of the most recent finished
/// spans, recorded unconditionally (the `kModeFlight` bit is set at process
/// start and never cleared). Unlike `TraceSession` buffers — which are opt-in,
/// grow-once, and *drop* on overflow so a session is a faithful recording —
/// the flight ring *wraps*: it always holds the latest ~4096 spans per thread,
/// so a trace of the moments before an incident is available after the fact
/// via `GET /debug/trace?ms=N` or a process signal, with no restart and no
/// `--trace` flag.
///
/// Concurrency: each slot is a tiny seqlock of relaxed atomics (writer bumps
/// the sequence odd, stores fields, bumps it even; the drain rereads the
/// sequence and discards torn slots). The writer is always the owning thread;
/// drains may run concurrently from any thread and never block recording.

namespace graphtempo::obs {

namespace internal_flight {

/// Slots per thread ring (power of two; ~4096 spans ≈ the last few hundred
/// queries of context per worker).
inline constexpr std::size_t kFlightRingSlots = 4096;

/// Records one finished span into the calling thread's ring. Called by the
/// trace recorder when `kModeFlight` is set; `end_ns` is absolute steady-clock
/// time so drains can window on recency.
void Record(const char* name, std::uint64_t end_ns, std::uint64_t duration_ns,
            const SpanArg* args, std::uint32_t num_args);

/// Relabels the calling thread's ring (called by SetCurrentThreadLaneName so
/// flight lanes carry the same "worker-<n>" style names as trace lanes).
void SetThreadLaneName(const char* name);

}  // namespace internal_flight

/// Result of draining the rings: events (with `start_ns` rebased so the
/// earliest collected event is 0), lane id → display-name pairs for every
/// lane that contributed, and the cumulative count of slots overwritten by
/// ring wrap-around since process start.
struct FlightCapture {
  std::vector<CollectedEvent> events;
  std::vector<std::pair<std::uint32_t, std::string>> lane_names;
  std::uint64_t wrapped = 0;
};

/// Snapshots every thread's ring, keeping spans that ended within the last
/// `window_ns` nanoseconds (0 = keep everything still in the rings). Events
/// are ordered by lane, then end time. Safe to call concurrently with
/// recording from any thread.
FlightCapture CollectFlight(std::uint64_t window_ns);

/// Renders a drain as Chrome Trace Event JSON — the same schema TraceSession
/// writes ({"traceEvents":[...]}, thread-name metadata, `otherData.dropped`
/// carrying the wrap count), loadable in chrome://tracing / Perfetto and
/// accepted by tools/validate_trace.py.
std::string FlightJson(std::uint64_t window_ns);

/// FlightJson to `path`; false + `*error` on IO failure.
bool WriteFlightJsonFile(const std::string& path, std::uint64_t window_ns,
                         std::string* error);

}  // namespace graphtempo::obs

#endif  // GRAPHTEMPO_OBS_FLIGHT_H_
