#ifndef GRAPHTEMPO_OBS_METRICS_H_
#define GRAPHTEMPO_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file
/// The unified metrics registry: named monotonic counters and log-bucketed
/// (power-of-two, HDR-style) histograms for latencies and sizes.
///
/// Design constraints (docs/OBSERVABILITY.md):
///
///   * *Recording is lock-free.* `Counter::Add` and `Histogram::Record` are a
///     handful of relaxed atomic RMWs; any thread — including pool workers —
///     may record concurrently.
///   * *Reading is consistent.* `Registry::Snapshot()` and
///     `Registry::ResetAll()` serialize on one registry mutex, so a snapshot
///     can never interleave with a reset: it observes either entirely
///     pre-reset or entirely post-reset values. `ExecCounters` (core/stats)
///     is a thin view over one such snapshot, which fixes the torn `--perf`
///     reads the old two-source sampling allowed.
///   * *Stable addresses.* `GetCounter`/`GetHistogram` return references that
///     stay valid for the life of the process, so hot paths cache them in
///     function-local statics and pay one indirection per update.
///
/// This library deliberately depends on nothing but the standard library: it
/// sits below util/parallel (which instruments its worker lanes) and core.

namespace graphtempo::obs {

/// A process-wide monotonic counter. All operations are thread-safe.
class Counter {
 public:
  void Add(std::uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Number of histogram buckets: bucket 0 holds the value 0 and bucket
/// `i >= 1` holds values in [2^(i-1), 2^i - 1] — i.e. bucket index is
/// `bit_width(value)`. 64-bit values therefore need 65 buckets.
inline constexpr std::size_t kHistogramBuckets = 65;

/// Bucket index of `value`: 0 for 0, otherwise floor(log2 v) + 1.
std::size_t HistogramBucketOf(std::uint64_t value);

/// Inclusive upper bound of bucket `bucket` (0 for bucket 0, 2^bucket − 1
/// otherwise, saturating at UINT64_MAX).
std::uint64_t HistogramBucketUpperBound(std::size_t bucket);

/// An immutable copy of a histogram's state. Snapshots form a commutative
/// monoid under `Add` (element-wise sums, max of maxes), so merging per-chunk
/// or per-run snapshots is associative — asserted by the test suite.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Merges `other` into this snapshot.
  void Add(const HistogramSnapshot& other);

  /// Upper bound of the bucket containing the nearest-rank `q`-quantile
  /// (q in [0, 1]); 0 when empty. A log-bucketed histogram can only answer
  /// within a factor of 2, so the conservative (upper) bound is reported.
  std::uint64_t Percentile(double q) const;

  std::uint64_t p50() const { return Percentile(0.50); }
  std::uint64_t p95() const { return Percentile(0.95); }
  std::uint64_t p99() const { return Percentile(0.99); }

  /// Mean value (sum / count), 0 when empty.
  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// A log-bucketed histogram of non-negative integer samples (latencies in
/// microseconds, sizes in entities/words/groups). Recording is lock-free.
class Histogram {
 public:
  void Record(std::uint64_t value);
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
};

/// Everything the registry knew at one instant, taken under one lock: no
/// interleaving reset can split it. Entries are sorted by name.
struct MetricsSnapshot {
  /// Reset generation the snapshot was taken in (bumped by `ResetAll`).
  std::uint64_t generation = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Value of counter `name`, 0 when absent.
  std::uint64_t CounterValue(std::string_view name) const;
  /// Snapshot of histogram `name`, empty when absent.
  HistogramSnapshot HistogramValue(std::string_view name) const;

  /// Merges `other` into this snapshot: counters add by name, histograms
  /// merge by name (new names are appended, keeping the sort order). Refuses
  /// — returning false and leaving this snapshot untouched — when the two
  /// snapshots were taken in different reset generations: values from
  /// different generations are not comparable and must never silently mix.
  bool MergeFrom(const MetricsSnapshot& other);

  /// Human-readable dump: one `name value` / `name count=… p50=…` per line.
  std::string ToText() const;
  /// Machine-readable dump: a single JSON object.
  std::string ToJson() const;
};

/// The process-wide registry. Metric creation and snapshot/reset are
/// mutex-guarded; updates through the returned references are lock-free.
class Registry {
 public:
  /// The singleton. Intentionally leaked: detached pool workers may still
  /// update counters at process exit.
  static Registry& Instance();

  /// Returns the counter/histogram named `name`, creating it on first use.
  /// The reference is valid forever.
  Counter& GetCounter(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Atomically (w.r.t. `ResetAll`) samples every metric.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric and bumps the reset generation, atomically w.r.t.
  /// `Snapshot`.
  void ResetAll();

  /// Current reset generation (how many `ResetAll` calls have happened).
  std::uint64_t generation() const;

 private:
  Registry() = default;

  struct Impl;
  Impl& impl() const;
};

}  // namespace graphtempo::obs

#endif  // GRAPHTEMPO_OBS_METRICS_H_
