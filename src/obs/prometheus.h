#ifndef GRAPHTEMPO_OBS_PROMETHEUS_H_
#define GRAPHTEMPO_OBS_PROMETHEUS_H_

#include <cstdint>
#include <optional>
#include <string>

#include "obs/metrics.h"

/// \file
/// Prometheus / OpenMetrics text exposition over a `MetricsSnapshot`, so the
/// server's `/metrics?format=prometheus` is scrapeable by standard tooling.
///
/// Mapping (docs/OBSERVABILITY.md §Serving-path observability):
///
///   * Metric names gain a `gt_` prefix and are sanitized to the exposition
///     charset: `engine/cache_hit` → `gt_engine_cache_hit`.
///   * Counters become `# TYPE … counter` plus one sample line.
///   * The 65-bucket log histograms become `# TYPE … histogram` with
///     *cumulative* `_bucket{le="<upper bound>"}` lines — one per occupied
///     log bucket up to the highest non-zero, then the mandatory
///     `{le="+Inf"}` equal to `_count` — plus `_sum` and `_count`.
///   * Exemplars (OpenMetrics `# {request_id="…"} value` suffix) attach the
///     most recent p99-class request ID to the bucket containing its value,
///     so a scrape's tail bucket points back at a concrete slow query.

namespace graphtempo::obs {

/// One stored exemplar: the sample value and the request ID that produced it.
struct Exemplar {
  std::uint64_t value = 0;
  std::string request_id;
};

/// Keeps the latest p99-class exemplar per metric. `Offer` is called by the
/// server when a recorded latency reaches the histogram's current p99; `Get`
/// is used by the encoder. Thread-safe.
class ExemplarStore {
 public:
  static ExemplarStore& Instance();

  void Offer(const std::string& metric, std::uint64_t value,
             const std::string& request_id);
  std::optional<Exemplar> Get(const std::string& metric) const;

 private:
  ExemplarStore() = default;
  struct Impl;
  Impl& impl() const;
};

/// Renders `snapshot` in Prometheus text exposition format. When `exemplars`
/// is non-null, histogram tail buckets carry the stored exemplar request IDs.
std::string ToPrometheusText(const MetricsSnapshot& snapshot,
                             const ExemplarStore* exemplars = nullptr);

/// Sanitized exposition name for a registry metric name (exposed for tests).
std::string PrometheusName(const std::string& name);

}  // namespace graphtempo::obs

#endif  // GRAPHTEMPO_OBS_PROMETHEUS_H_
