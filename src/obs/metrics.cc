#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

namespace graphtempo::obs {

std::size_t HistogramBucketOf(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t HistogramBucketUpperBound(std::size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

void HistogramSnapshot::Add(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) buckets[i] += other.buckets[i];
}

std::uint64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Nearest-rank: the smallest rank r (1-based) with r >= q * count.
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      // The true sample is somewhere in this bucket; the max caps the answer
      // when the quantile lands in the final occupied bucket.
      return std::min(HistogramBucketUpperBound(i), max);
    }
  }
  return max;
}

void Histogram::Record(std::uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[HistogramBucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

std::uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return 0;
}

HistogramSnapshot MetricsSnapshot::HistogramValue(std::string_view name) const {
  for (const auto& [key, value] : histograms) {
    if (key == name) return value;
  }
  return HistogramSnapshot{};
}

bool MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  if (generation != other.generation) return false;
  for (const auto& [name, value] : other.counters) {
    auto it = std::lower_bound(
        counters.begin(), counters.end(), name,
        [](const auto& entry, const std::string& key) { return entry.first < key; });
    if (it != counters.end() && it->first == name) {
      it->second += value;
    } else {
      counters.insert(it, {name, value});
    }
  }
  for (const auto& [name, snapshot] : other.histograms) {
    auto it = std::lower_bound(
        histograms.begin(), histograms.end(), name,
        [](const auto& entry, const std::string& key) { return entry.first < key; });
    if (it != histograms.end() && it->first == name) {
      it->second.Add(snapshot);
    } else {
      histograms.insert(it, {name, snapshot});
    }
  }
  return true;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "generation %llu\n",
                static_cast<unsigned long long>(generation));
  out += line;
  for (const auto& [name, value] : counters) {
    std::snprintf(line, sizeof(line), "counter %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, hist] : histograms) {
    std::snprintf(line, sizeof(line),
                  "histogram %s count=%llu sum=%llu max=%llu p50=%llu p95=%llu "
                  "p99=%llu\n",
                  name.c_str(), static_cast<unsigned long long>(hist.count),
                  static_cast<unsigned long long>(hist.sum),
                  static_cast<unsigned long long>(hist.max),
                  static_cast<unsigned long long>(hist.p50()),
                  static_cast<unsigned long long>(hist.p95()),
                  static_cast<unsigned long long>(hist.p99()));
    out += line;
  }
  return out;
}

namespace {

void AppendJsonKey(std::string* out, const std::string& name) {
  out->push_back('"');
  for (char c : name) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->append("\":");
}

void AppendUint(std::string* out, std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%llu", static_cast<unsigned long long>(value));
  out->append(buffer);
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"generation\":";
  AppendUint(&out, generation);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonKey(&out, name);
    AppendUint(&out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonKey(&out, name);
    out += "{\"count\":";
    AppendUint(&out, hist.count);
    out += ",\"sum\":";
    AppendUint(&out, hist.sum);
    out += ",\"max\":";
    AppendUint(&out, hist.max);
    out += ",\"p50\":";
    AppendUint(&out, hist.p50());
    out += ",\"p95\":";
    AppendUint(&out, hist.p95());
    out += ",\"p99\":";
    AppendUint(&out, hist.p99());
    out += "}";
  }
  out += "}}";
  return out;
}

/// Name → metric maps plus the mutex serializing creation, snapshot and
/// reset. Heap-allocated values give the returned references stable
/// addresses; the maps only ever grow.
struct Registry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

namespace {
std::atomic<std::uint64_t> g_generation{0};
}  // namespace

Registry& Registry::Instance() {
  // Leaked on purpose: detached pool workers may outlive static destruction.
  static Registry& registry = *new Registry();
  return registry;
}

Registry::Impl& Registry::impl() const {
  static Impl& impl = *new Impl();
  return impl;
}

Counter& Registry::GetCounter(std::string_view name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.counters.find(name);
  if (it == state.counters.end()) {
    it = state.counters.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto it = state.histograms.find(name);
  if (it == state.histograms.end()) {
    it = state.histograms.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::Snapshot() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  MetricsSnapshot snapshot;
  snapshot.generation = g_generation.load(std::memory_order_relaxed);
  snapshot.counters.reserve(state.counters.size());
  for (const auto& [name, counter] : state.counters) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.histograms.reserve(state.histograms.size());
  for (const auto& [name, histogram] : state.histograms) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;
}

void Registry::ResetAll() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (const auto& [name, counter] : state.counters) counter->Reset();
  for (const auto& [name, histogram] : state.histograms) histogram->Reset();
  g_generation.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Registry::generation() const {
  return g_generation.load(std::memory_order_relaxed);
}

}  // namespace graphtempo::obs
