#ifndef GRAPHTEMPO_OBS_CONTEXT_H_
#define GRAPHTEMPO_OBS_CONTEXT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Request-scoped observability context (docs/OBSERVABILITY.md §Serving-path
/// observability). A `RequestContext` travels thread-locally with one served
/// request: the server binds it for the handling thread, the pool propagates
/// it into worker lanes (util/parallel), and the engine and kernels attribute
/// into it (route, cache outcome, grouping, kernel words, per-phase span
/// timings). Everything mutable is an atomic because pool workers write
/// concurrently with the coordinating thread.
///
/// The context is *passive*: binding one costs a TLS store, and with none
/// bound the per-span accumulation hook is a TLS load and a branch.

namespace graphtempo::obs {

/// One accumulated per-phase timing (a span name aggregated over the request).
struct PhaseTiming {
  const char* name;         ///< span-name literal, e.g. "engine/execute"
  std::uint64_t total_ns;   ///< summed durations across all occurrences
  std::uint64_t count;      ///< number of spans with this name
};

/// Per-request attribution record. Created by the server for each accepted
/// connection; fields are filled in as the request flows through the layers.
class RequestContext {
 public:
  /// Phase-table capacity: distinct span names kept per request. First come,
  /// first claimed; overflow names are counted in `phases_dropped`.
  static constexpr std::size_t kMaxPhases = 24;

  /// Allocates the next monotonic query ID. `client_request_id` is the
  /// sanitized value of the X-GT-Request-Id header ("" if absent).
  explicit RequestContext(std::string client_request_id = "");

  RequestContext(const RequestContext&) = delete;
  RequestContext& operator=(const RequestContext&) = delete;

  /// Process-monotonic query ID (never reused, starts at 1).
  std::uint64_t query_id;

  /// Client-supplied correlation ID (X-GT-Request-Id), sanitized; may be "".
  std::string client_request_id;

  // --- attribution, written by engine/kernels/pool ------------------------------
  std::atomic<std::uint64_t> kernel_words{0};     ///< bitset words touched
  std::atomic<std::uint64_t> fingerprint{0};      ///< QuerySpec fingerprint
  std::atomic<const char*> route{""};             ///< "direct" | "materialized"
  std::atomic<const char*> cache{""};             ///< "hit" | "miss" | "bypass"
  std::atomic<const char*> grouping{""};          ///< "dense" | "hash"
  std::atomic<const char*> planner{""};           ///< "rule" | "cost"
  std::atomic<bool> stale_fallback{false};
  std::atomic<bool> batched{false};               ///< served inside a gather batch
  std::atomic<std::uint64_t> shared_fold_hits{0};    ///< batch fold-cache hits
  std::atomic<std::uint64_t> shared_fold_misses{0};  ///< batch fold-cache misses
  std::atomic<std::uint64_t> phases_dropped{0};   ///< names past kMaxPhases

  /// Folds one finished span into the phase table (called from the trace
  /// recorder; lock-free, safe from any thread holding this context).
  void AddPhase(const char* name, std::uint64_t duration_ns);

  /// Stable view of the phase table (for rendering the slow-query record).
  std::vector<PhaseTiming> Phases() const;

 private:
  struct PhaseSlot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> count{0};
  };
  PhaseSlot phases_[kMaxPhases];
};

/// The context bound to the calling thread, or nullptr.
RequestContext* CurrentRequestContext();

/// RAII bind/restore of the thread-local current context. The server binds
/// the handling thread; pool workers bind the issuing thread's context around
/// each chunk so attribution follows the request across lanes.
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(RequestContext* context);
  ~ScopedRequestContext();
  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  RequestContext* previous_;
};

namespace internal_context {

/// Per-span hook called by the trace recorder: accumulates `duration_ns`
/// under `name` into the calling thread's bound context, if any.
void AccumulatePhase(const char* name, std::uint64_t duration_ns);

}  // namespace internal_context

}  // namespace graphtempo::obs

#endif  // GRAPHTEMPO_OBS_CONTEXT_H_
