#ifndef GRAPHTEMPO_OBS_TRACE_H_
#define GRAPHTEMPO_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

/// \file
/// RAII trace spans recorded into per-thread append-only buffers and exported
/// as Chrome Trace Event JSON (loadable in `chrome://tracing` and Perfetto).
///
/// Usage:
///
///   GT_SPAN("operators/union");                      // whole-scope span
///   GT_SPAN("operators/extract", {{"words", n}});    // with numeric args
///
/// Cost model (the overhead-budget test pins it):
///
///   * *No session active*: one relaxed atomic load and a branch per span —
///     no clock reads, no allocation, nothing written.
///   * *Session active*: two `steady_clock` reads plus one slot write into
///     the calling thread's buffer. Buffers are lock-free for the writer
///     (single-producer, the owning thread) and published with a
///     release-store of the size, so the exporter's acquire-load sees fully
///     written slots only. Slots are never overwritten: when a thread's
///     buffer fills, further spans are counted as dropped rather than
///     wrapping, which keeps the export race-free.
///   * *Latency-histogram capture active* (`ScopedLatencyCapture`): span
///     durations also feed registry histograms named `span/<name>`, giving
///     p50/p95/p99 per phase without recording individual events.
///
/// Span names must be string literals (or otherwise outlive the session):
/// only the pointer is stored.
///
/// Contract: start/stop sessions from one thread while no instrumented work
/// is in flight (the pool blocks until jobs finish, so any code that issues
/// scans and then opens a session is fine). Only one session may be active.

namespace graphtempo::obs {

/// One numeric span argument (shown in the trace viewer's detail pane).
struct SpanArg {
  const char* name;
  std::uint64_t value;
};

namespace internal_trace {

inline constexpr std::uint32_t kModeTrace = 1;      ///< record events
inline constexpr std::uint32_t kModeHistogram = 2;  ///< feed span/<name> histograms
inline constexpr std::uint32_t kModeFlight = 4;     ///< feed the flight recorder

/// Bitmask of the active recording modes; 0 = spans are no-ops. The flight
/// bit (obs/flight.h) is set from process start and never cleared, so spans
/// always land in the per-thread flight rings.
extern std::atomic<std::uint32_t> g_mode;

/// The calling thread's lane-name literal (as set by SetCurrentThreadLaneName,
/// default "lane").
const char* CurrentThreadLaneName();

std::uint64_t NowNanos();

/// Records one finished span on the calling thread's buffer and/or the
/// registry histograms, per `mode` (captured at span construction).
void RecordSpan(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
                const SpanArg* args, std::uint32_t num_args, std::uint32_t mode);

}  // namespace internal_trace

/// True while a TraceSession is recording.
inline bool TracingActive() {
  return (internal_trace::g_mode.load(std::memory_order_relaxed) &
          internal_trace::kModeTrace) != 0;
}

/// An RAII span. Prefer the GT_SPAN macro, which names the local for you.
class Span {
 public:
  static constexpr std::uint32_t kMaxArgs = 2;

  explicit Span(const char* name) {
    mode_ = internal_trace::g_mode.load(std::memory_order_relaxed);
    if (mode_ == 0) return;
    name_ = name;
    start_ns_ = internal_trace::NowNanos();
  }

  Span(const char* name, std::initializer_list<SpanArg> args) {
    mode_ = internal_trace::g_mode.load(std::memory_order_relaxed);
    if (mode_ == 0) return;
    name_ = name;
    for (const SpanArg& arg : args) {
      if (num_args_ == kMaxArgs) break;
      args_[num_args_++] = arg;
    }
    start_ns_ = internal_trace::NowNanos();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (mode_ == 0) return;
    internal_trace::RecordSpan(name_, start_ns_, internal_trace::NowNanos(), args_,
                               num_args_, mode_);
  }

 private:
  std::uint32_t mode_ = 0;
  std::uint32_t num_args_ = 0;
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  SpanArg args_[kMaxArgs] = {};
};

#define GT_OBS_CONCAT_INNER(a, b) a##b
#define GT_OBS_CONCAT(a, b) GT_OBS_CONCAT_INNER(a, b)

/// Opens an RAII span for the rest of the enclosing scope.
/// GT_SPAN("name") or GT_SPAN("name", {{"arg", value}, ...}).
#define GT_SPAN(...) \
  ::graphtempo::obs::Span GT_OBS_CONCAT(gt_span_, __COUNTER__)(__VA_ARGS__)

/// Names the calling thread's lane in trace exports (e.g. "worker"). The
/// final lane label is "<name>-<lane id>". Safe to call any time; the name
/// must be a literal (only the pointer is stored).
void SetCurrentThreadLaneName(const char* name);

/// While alive, span durations feed registry histograms `span/<name>`
/// (count/sum/p50/p95/p99/max via obs::Registry). Nestable; independent of
/// TraceSession. Used by the benches for per-phase percentile JSON fields.
class ScopedLatencyCapture {
 public:
  ScopedLatencyCapture();
  ~ScopedLatencyCapture();
  ScopedLatencyCapture(const ScopedLatencyCapture&) = delete;
  ScopedLatencyCapture& operator=(const ScopedLatencyCapture&) = delete;
};

/// One event as collected from the per-thread buffers (for tests and custom
/// sinks; WriteJson renders the same data as Chrome Trace JSON).
struct CollectedEvent {
  const char* name;
  std::uint32_t lane;          ///< per-thread lane id (trace "tid")
  std::uint64_t start_ns;      ///< relative to session start
  std::uint64_t duration_ns;
  std::uint32_t num_args;
  SpanArg args[Span::kMaxArgs];
};

namespace internal_trace {

/// Renders events + lane names as Chrome Trace Event JSON (the schema
/// TraceSession::WriteJson emits): per-lane thread_name metadata, one
/// "ph":"X" complete event per span, `otherData.dropped`. Shared by trace
/// sessions and the flight recorder (obs/flight.h).
std::string RenderChromeTraceJson(
    const std::vector<CollectedEvent>& events,
    const std::vector<std::pair<std::uint32_t, std::string>>& lane_names,
    std::uint64_t dropped);

}  // namespace internal_trace

/// An active trace recording. Construction clears the per-thread buffers and
/// starts recording; `Stop()` (or destruction) stops it. Export with
/// WriteJson/WriteJsonFile after stopping (both stop implicitly).
class TraceSession {
 public:
  struct Options {
    /// Maximum events kept per thread; beyond it spans are dropped (counted).
    std::size_t per_thread_capacity = 1 << 15;
  };

  TraceSession();
  explicit TraceSession(Options options);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Stops recording (idempotent).
  void Stop();

  /// Events from every thread buffer, ordered by lane and, within a lane, by
  /// completion order (a child span therefore precedes the span that
  /// contains it). Stops the session first. Idempotent.
  const std::vector<CollectedEvent>& Collect();

  /// Writes Chrome Trace Event JSON ({"traceEvents":[...]}) — one complete
  /// ("ph":"X") event per span plus thread-name metadata per lane. Stops the
  /// session first.
  void WriteJson(std::ostream& out);

  /// WriteJson to `path`; returns false and sets `*error` on IO failure.
  bool WriteJsonFile(const std::string& path, std::string* error);

  /// Spans recorded across all lanes (stops and collects first).
  std::size_t event_count();

  /// Spans dropped because a thread buffer filled up (stops and collects
  /// first).
  std::uint64_t dropped();

 private:
  std::vector<CollectedEvent> events_;
  std::vector<std::pair<std::uint32_t, std::string>> lane_names_;
  std::uint64_t dropped_ = 0;
  bool stopped_ = false;
  bool collected_ = false;
};

}  // namespace graphtempo::obs

#endif  // GRAPHTEMPO_OBS_TRACE_H_
