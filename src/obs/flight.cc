#include "obs/flight.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <mutex>

namespace graphtempo::obs {

namespace {

/// One ring slot: a seqlock over relaxed atomics. Even sequence = stable,
/// odd = mid-write. All fields are atomics, so concurrent drains are
/// race-free by construction (TSan-clean); the sequence check only guards
/// against reading a half-updated slot as if it were consistent.
struct FlightSlot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> end_ns{0};
  std::atomic<std::uint64_t> duration_ns{0};
  std::atomic<const char*> arg_names[Span::kMaxArgs] = {};
  std::atomic<std::uint64_t> arg_values[Span::kMaxArgs] = {};
  std::atomic<std::uint32_t> num_args{0};
};

/// Per-thread ring. Written only by the owning thread; drained by anyone.
struct FlightRing {
  explicit FlightRing(std::uint32_t lane_id, const char* name)
      : slots(internal_flight::kFlightRingSlots), lane(lane_id), lane_name(name) {}

  std::vector<FlightSlot> slots;
  std::atomic<std::uint64_t> total{0};  ///< spans ever recorded on this ring
  const std::uint32_t lane;
  std::atomic<const char*> lane_name;
};

struct FlightState {
  std::mutex mutex;                 ///< guards ring registration only
  std::vector<FlightRing*> rings;   ///< leaked with the threads they serve
};

FlightState& State() {
  static FlightState& state = *new FlightState();
  return state;
}

thread_local FlightRing* t_ring = nullptr;

FlightRing& GetRing() {
  if (t_ring != nullptr) return *t_ring;
  FlightState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  auto* ring = new FlightRing(static_cast<std::uint32_t>(state.rings.size()),
                              internal_trace::CurrentThreadLaneName());
  state.rings.push_back(ring);
  t_ring = ring;
  return *ring;
}

}  // namespace

namespace internal_flight {

void Record(const char* name, std::uint64_t end_ns, std::uint64_t duration_ns,
            const SpanArg* args, std::uint32_t num_args) {
  FlightRing& ring = GetRing();
  const std::uint64_t position = ring.total.load(std::memory_order_relaxed);
  FlightSlot& slot = ring.slots[position & (kFlightRingSlots - 1)];

  const std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_relaxed);  // odd: mid-write
  std::atomic_thread_fence(std::memory_order_release);
  slot.name.store(name, std::memory_order_relaxed);
  slot.end_ns.store(end_ns, std::memory_order_relaxed);
  slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < num_args; ++i) {
    slot.arg_names[i].store(args[i].name, std::memory_order_relaxed);
    slot.arg_values[i].store(args[i].value, std::memory_order_relaxed);
  }
  slot.num_args.store(num_args, std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);  // even: published
  ring.total.store(position + 1, std::memory_order_release);
}

void SetThreadLaneName(const char* name) {
  if (t_ring != nullptr) t_ring->lane_name.store(name, std::memory_order_relaxed);
}

}  // namespace internal_flight

FlightCapture CollectFlight(std::uint64_t window_ns) {
  const std::uint64_t now = internal_trace::NowNanos();
  const std::uint64_t cutoff =
      window_ns == 0 || window_ns >= now ? 0 : now - window_ns;

  // Snapshot the ring registry, then drain outside the registration lock —
  // rings are never deallocated, so the pointers stay valid.
  std::vector<FlightRing*> rings;
  {
    FlightState& state = State();
    std::lock_guard<std::mutex> lock(state.mutex);
    rings = state.rings;
  }

  FlightCapture capture;
  for (FlightRing* ring : rings) {
    const std::uint64_t total = ring->total.load(std::memory_order_acquire);
    const std::uint64_t count =
        std::min<std::uint64_t>(total, internal_flight::kFlightRingSlots);
    if (total > internal_flight::kFlightRingSlots) {
      capture.wrapped += total - internal_flight::kFlightRingSlots;
    }
    bool contributed = false;
    for (std::uint64_t i = 0; i < count; ++i) {
      const FlightSlot& slot = ring->slots[i];
      const std::uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
      if ((seq1 & 1) != 0) continue;  // mid-write, skip
      CollectedEvent event;
      event.name = slot.name.load(std::memory_order_relaxed);
      event.lane = ring->lane;
      const std::uint64_t end_ns = slot.end_ns.load(std::memory_order_relaxed);
      event.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
      event.num_args = slot.num_args.load(std::memory_order_relaxed);
      for (std::uint32_t a = 0; a < event.num_args && a < Span::kMaxArgs; ++a) {
        event.args[a].name = slot.arg_names[a].load(std::memory_order_relaxed);
        event.args[a].value = slot.arg_values[a].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != seq1) continue;  // torn
      if (event.name == nullptr || end_ns < cutoff) continue;
      // Stash the absolute *start* in start_ns; rebased below once the
      // earliest collected event across all lanes is known.
      event.start_ns = end_ns >= event.duration_ns ? end_ns - event.duration_ns : 0;
      capture.events.push_back(event);
      contributed = true;
    }
    if (contributed) {
      capture.lane_names.emplace_back(
          ring->lane,
          std::string(ring->lane_name.load(std::memory_order_relaxed)) + "-" +
              std::to_string(ring->lane));
    }
  }

  std::sort(capture.events.begin(), capture.events.end(),
            [](const CollectedEvent& a, const CollectedEvent& b) {
              if (a.lane != b.lane) return a.lane < b.lane;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.duration_ns < b.duration_ns;
            });
  std::uint64_t base = ~std::uint64_t{0};
  for (const CollectedEvent& event : capture.events) {
    base = std::min(base, event.start_ns);
  }
  if (!capture.events.empty()) {
    for (CollectedEvent& event : capture.events) event.start_ns -= base;
  }
  return capture;
}

std::string FlightJson(std::uint64_t window_ns) {
  FlightCapture capture = CollectFlight(window_ns);
  return internal_trace::RenderChromeTraceJson(capture.events, capture.lane_names,
                                               capture.wrapped);
}

bool WriteFlightJsonFile(const std::string& path, std::uint64_t window_ns,
                         std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open for writing: " + path;
    return false;
  }
  out << FlightJson(window_ns) << "\n";
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failed: " + path;
    return false;
  }
  return true;
}

}  // namespace graphtempo::obs
