#ifndef GRAPHTEMPO_DATAGEN_CONTACT_GEN_H_
#define GRAPHTEMPO_DATAGEN_CONTACT_GEN_H_

#include <cstdint>

#include "core/temporal_graph.h"

/// \file
/// Synthetic school face-to-face contact network, after the scenario the
/// paper's introduction motivates (Gemmetto et al., mitigation of infectious
/// disease at school). Not part of the paper's evaluation; it drives the
/// `contact_network` example, where GraphTempo's shrinkage measures the
/// effect of a targeted class-closure intervention and stability flags the
/// residual contact that keeps transmission alive.
///
/// Nodes are students and teachers with static `class`, `grade` and `role`
/// attributes and a time-varying `status` (healthy/sick). Days are time
/// points, split into three phases:
///
///   1. days [0, outbreak_day)          — normal mixing: heavy within-class
///      contact, lighter within-grade, sparse across grades;
///   2. days [outbreak_day, reopen_day) — targeted closure: cross-class
///      contact collapses (the mitigation the example quantifies);
///   3. days [reopen_day, num_days)     — recovery: mixing resumes.

namespace graphtempo::datagen {

struct ContactOptions {
  std::uint64_t seed = 7;
  std::size_t grades = 5;
  std::size_t classes_per_grade = 2;
  std::size_t students_per_class = 24;
  std::size_t num_days = 15;
  std::size_t outbreak_day = 5;   ///< first day of the closure phase
  std::size_t reopen_day = 10;    ///< first day of the recovery phase
};

TemporalGraph GenerateContactNetwork(const ContactOptions& options = {});

}  // namespace graphtempo::datagen

#endif  // GRAPHTEMPO_DATAGEN_CONTACT_GEN_H_
