#ifndef GRAPHTEMPO_DATAGEN_DBLP_GEN_H_
#define GRAPHTEMPO_DATAGEN_DBLP_GEN_H_

#include <cstdint>

#include "core/temporal_graph.h"
#include "datagen/profiles.h"

/// \file
/// Synthetic DBLP-like collaboration graph (stand-in for the paper's DBLP
/// dataset — see DESIGN.md §2 for the substitution argument).
///
/// Nodes are authors; a directed edge (u, v) means u and v co-authored at
/// least one paper in a year, the direction encoding author order. Attributes
/// follow the paper: static `gender` (skewed ≈80/20 m/f) and time-varying
/// `publications` (Zipf-skewed yearly publication count, values 1–18).
///
/// Structure mirrors the dynamics the paper's experiments depend on:
///   * node and edge counts per year match Table 3 exactly;
///   * roughly half of each year's authors carry over from the previous year
///     (so intersection/difference results are non-trivial at every step);
///   * a small core of long-lived "anchor" collaborations makes the
///     intersection graph non-empty exactly up to the interval [2000, 2017],
///     reproducing the stopping point of the paper's Figure 7;
///   * collaboration partners are chosen with preferential attachment, giving
///     the heavy-tailed degree distribution of real co-authorship networks.

namespace graphtempo::datagen {

struct DblpOptions {
  std::uint64_t seed = 20230328;  ///< EDBT 2023 opening day; any value works.

  /// Fraction of a year's authors carried over from the previous year.
  double carry_over = 0.55;

  /// Probability that a generated edge repeats one from the previous year.
  double edge_repeat = 0.25;

  /// Fraction of female authors (the paper's DBLP slice is heavily skewed).
  double female_fraction = 0.2;
};

/// Generates the graph described above. Deterministic in `options.seed`.
TemporalGraph GenerateDblp(const DblpOptions& options = {});

/// Same generator against an arbitrary size profile (used by tests to run
/// scaled-down instances quickly).
TemporalGraph GenerateDblpWithProfile(const DatasetProfile& profile,
                                      const DblpOptions& options);

}  // namespace graphtempo::datagen

#endif  // GRAPHTEMPO_DATAGEN_DBLP_GEN_H_
