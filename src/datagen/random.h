#ifndef GRAPHTEMPO_DATAGEN_RANDOM_H_
#define GRAPHTEMPO_DATAGEN_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

/// \file
/// Deterministic random primitives for the dataset generators.
///
/// PCG32 (O'Neill) — small, fast, and fully reproducible across platforms,
/// which keeps every generated dataset (and therefore every benchmark row and
/// qualitative figure) bit-identical between runs. The Zipf sampler drives
/// the skew of publication counts, collaboration-partner choice and co-rating
/// pair popularity.

namespace graphtempo::datagen {

/// PCG-XSH-RR 64/32 generator.
class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbull);

  /// Uniform 32-bit value.
  std::uint32_t Next();

  /// Uniform integer in [0, bound) using Lemire rejection; bound > 0.
  std::uint32_t NextBelow(std::uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint32_t NextInRange(std::uint32_t lo, std::uint32_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial.
  bool NextBool(double probability);

 private:
  std::uint64_t state_;
  std::uint64_t increment_;
};

/// Samples from a Zipf(s) distribution over ranks {0, …, n-1} via the
/// precomputed inverse CDF (O(log n) per sample).
class ZipfSampler {
 public:
  /// `n` ranks with exponent `s` (s = 0 is uniform; larger s is more skewed).
  ZipfSampler(std::size_t n, double s);

  std::size_t Sample(Pcg32& rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Fisher–Yates shuffle driven by Pcg32 (std::shuffle's output is not
/// portable across standard library implementations).
template <typename T>
void Shuffle(std::vector<T>& values, Pcg32& rng) {
  for (std::size_t i = values.size(); i > 1; --i) {
    std::size_t j = rng.NextBelow(static_cast<std::uint32_t>(i));
    std::swap(values[i - 1], values[j]);
  }
}

}  // namespace graphtempo::datagen

#endif  // GRAPHTEMPO_DATAGEN_RANDOM_H_
