#ifndef GRAPHTEMPO_DATAGEN_PROFILES_H_
#define GRAPHTEMPO_DATAGEN_PROFILES_H_

#include <cstddef>
#include <string>
#include <vector>

/// \file
/// Per-time-point size profiles of the paper's two evaluation datasets.
///
/// The generators are driven by these profiles so that the synthetic graphs
/// match **Table 3** (DBLP, 21 years) and **Table 4** (MovieLens, 6 months)
/// of the paper exactly in node and edge counts per time point — the
/// quantities every performance experiment scales with.

namespace graphtempo::datagen {

struct DatasetProfile {
  std::string name;
  std::vector<std::string> time_labels;
  std::vector<std::size_t> nodes_per_time;
  std::vector<std::size_t> edges_per_time;

  std::size_t num_times() const { return time_labels.size(); }
};

/// Table 3 of the paper: the DBLP collaboration graph, 2000–2020.
DatasetProfile DblpProfile();

/// Table 4 of the paper: the MovieLens co-rating graph, May–Oct 2000.
DatasetProfile MovieLensProfile();

}  // namespace graphtempo::datagen

#endif  // GRAPHTEMPO_DATAGEN_PROFILES_H_
