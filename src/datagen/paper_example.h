#ifndef GRAPHTEMPO_DATAGEN_PAPER_EXAMPLE_H_
#define GRAPHTEMPO_DATAGEN_PAPER_EXAMPLE_H_

#include "core/temporal_graph.h"

/// \file
/// The running example of the GraphTempo paper (Figure 1 / Table 2): a
/// five-author collaboration graph over T = {t0, t1, t2} with the static
/// attribute `gender` and the time-varying attribute `publications`. All
/// aggregate weights the paper quotes (Figures 2–4) hold on this graph; the
/// integration tests pin them. Exposed here so tests, examples, the CLI's
/// `generate paper` and documentation all share one definition.
///
/// Presence (Table 2):            Attributes:
///   u1: t0 t1      gender m       publications 3,1,-
///   u2: t0 t1 t2   gender f       publications 1,1,1
///   u3: t0         gender f       publications 1,-,-
///   u4: t0 t1 t2   gender f       publications 2,1,1
///   u5:       t2   gender m       publications -,-,3
///
/// Edges (as drawn in Fig 1):
///   (u1,u2): t0 t1      (u1,u3): t0       (u2,u4): t0 t1 t2
///   (u3,u4): t0         (u1,u4): t1       (u4,u5): t2       (u2,u5): t2

namespace graphtempo::datagen {

TemporalGraph BuildPaperExampleGraph();

}  // namespace graphtempo::datagen

#endif  // GRAPHTEMPO_DATAGEN_PAPER_EXAMPLE_H_
