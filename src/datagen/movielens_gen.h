#ifndef GRAPHTEMPO_DATAGEN_MOVIELENS_GEN_H_
#define GRAPHTEMPO_DATAGEN_MOVIELENS_GEN_H_

#include <cstdint>

#include "core/temporal_graph.h"
#include "datagen/profiles.h"

/// \file
/// Synthetic MovieLens-like co-rating graph (stand-in for the paper's
/// MovieLens dataset — see DESIGN.md §2).
///
/// Nodes are users; a directed edge (u, v) means both rated the same movie in
/// a month, ordered by rating precedence. Attributes follow the paper: three
/// static attributes — `gender` (2 values), `age` (6 groups), `occupation`
/// (21 values) — and the time-varying `rating` (the user's monthly average,
/// bucketed to half-star values "1.0" … "5.0").
///
/// Structure mirrors the paper's workload:
///   * node and edge counts per month match Table 4 exactly, including the
///     August burst (1,309 users, 610,050 edges — a dense co-rating month);
///   * a global user-popularity ranking persists across months, so popular
///     user pairs recur and the month-over-month intersection is non-trivial;
///     the paper's Figure 7d (intersection empty past [May, Jul]) is matched
///     by capping the overlap horizon of the user pool;
///   * per-user degree follows a Zipf profile, as co-rating counts do.

namespace graphtempo::datagen {

struct MovieLensOptions {
  std::uint64_t seed = 17;

  /// Size of the global user pool the monthly active sets are drawn from.
  std::size_t user_pool = 2200;

  /// Fraction of female users (ML-100K is ≈71/29 m/f).
  double female_fraction = 0.29;

  /// Zipf exponent of the per-user co-rating degree distribution.
  double degree_skew = 0.6;

  /// Fraction of min(|E_prev|, |E_cur|) deliberately repeated from the
  /// previous month. Co-rating pairs rarely recur (users rate *different*
  /// movies each month), so consecutive months are near-disjoint except for
  /// this controlled overlap — which is what the paper's Fig 13a stability
  /// counts (w_th = 86 f-f edges at the Aug/Sep boundary) reflect.
  double repeat_fraction = 0.015;
};

/// Generates the graph described above. Deterministic in `options.seed`.
TemporalGraph GenerateMovieLens(const MovieLensOptions& options = {});

/// Same generator against an arbitrary size profile (scaled-down tests).
TemporalGraph GenerateMovieLensWithProfile(const DatasetProfile& profile,
                                           const MovieLensOptions& options);

}  // namespace graphtempo::datagen

#endif  // GRAPHTEMPO_DATAGEN_MOVIELENS_GEN_H_
