#include "datagen/profiles.h"

namespace graphtempo::datagen {

DatasetProfile DblpProfile() {
  DatasetProfile profile;
  profile.name = "DBLP";
  profile.time_labels = {"2000", "2001", "2002", "2003", "2004", "2005", "2006",
                         "2007", "2008", "2009", "2010", "2011", "2012", "2013",
                         "2014", "2015", "2016", "2017", "2018", "2019", "2020"};
  // Paper Table 3.
  profile.nodes_per_time = {1708, 2165, 1761, 2827,  3278,  4466,  4730,
                            5193, 5501, 5363, 6236,  6535,  6769,  7457,
                            7035, 8581, 8966, 9660,  11037, 12377, 12996};
  profile.edges_per_time = {2336,  2949,  2458,  4130,  4821,  7145,  7296,
                            7620,  8528,  8740,  10163, 10090, 11871, 12989,
                            12072, 15844, 16873, 18470, 21197, 27455, 28546};
  return profile;
}

DatasetProfile MovieLensProfile() {
  DatasetProfile profile;
  profile.name = "MovieLens";
  profile.time_labels = {"May", "Jun", "Jul", "Aug", "Sep", "Oct"};
  // Paper Table 4.
  profile.nodes_per_time = {486, 508, 778, 1309, 575, 498};
  profile.edges_per_time = {100202, 85334, 201800, 610050, 77216, 48516};
  return profile;
}

}  // namespace graphtempo::datagen
