#include "datagen/movielens_gen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "datagen/random.h"
#include "obs/trace.h"
#include "util/check.h"

namespace graphtempo::datagen {

namespace {

std::uint64_t PairKey(NodeId u, NodeId v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

const char* const kAgeGroups[6] = {"under18", "18-24", "25-34", "35-44", "45-49", "50+"};

const char* const kOccupations[21] = {
    "administrator", "artist",     "doctor",   "educator",   "engineer",
    "entertainment", "executive",  "healthcare", "homemaker", "lawyer",
    "librarian",     "marketing",  "none",     "other",      "programmer",
    "retired",       "salesman",   "scientist", "student",    "technician",
    "writer"};

/// Buckets a raw average rating to half-star strings "1.0" … "5.0".
std::string RatingBucket(double rating) {
  rating = std::clamp(rating, 1.0, 5.0);
  double bucket = std::round(rating * 2.0) / 2.0;
  char buffer[8];
  std::snprintf(buffer, sizeof(buffer), "%.1f", bucket);
  return buffer;
}

}  // namespace

TemporalGraph GenerateMovieLens(const MovieLensOptions& options) {
  return GenerateMovieLensWithProfile(MovieLensProfile(), options);
}

TemporalGraph GenerateMovieLensWithProfile(const DatasetProfile& profile,
                                           const MovieLensOptions& options) {
  GT_SPAN("datagen/movielens", {{"times", profile.num_times()}});
  const std::size_t num_times = profile.num_times();
  GT_CHECK_GE(num_times, 2u) << "profile needs at least two time points";
  GT_CHECK_EQ(profile.nodes_per_time.size(), num_times);
  GT_CHECK_EQ(profile.edges_per_time.size(), num_times);
  const std::size_t max_nodes =
      *std::max_element(profile.nodes_per_time.begin(), profile.nodes_per_time.end());
  GT_CHECK_GE(options.user_pool, max_nodes) << "user pool smaller than busiest month";

  TemporalGraph graph(profile.time_labels);
  const std::uint32_t gender_attr = graph.AddStaticAttribute("gender");
  const std::uint32_t age_attr = graph.AddStaticAttribute("age");
  const std::uint32_t occupation_attr = graph.AddStaticAttribute("occupation");
  const std::uint32_t rating_attr = graph.AddTimeVaryingAttribute("rating");

  Pcg32 rng(options.seed);

  // Global user pool. Node id order *is* the permanent popularity ranking:
  // user 0 co-rates the most. Each user gets a stable taste (base rating).
  std::vector<double> base_rating(options.user_pool);
  const ZipfSampler age_skew(6, 0.7);  // younger groups dominate ML-100K
  for (std::size_t i = 0; i < options.user_pool; ++i) {
    NodeId id = graph.AddNode("u" + std::to_string(i));
    graph.SetStaticValue(gender_attr, id,
                         rng.NextBool(options.female_fraction) ? "f" : "m");
    graph.SetStaticValue(age_attr, id, kAgeGroups[age_skew.Sample(rng)]);
    graph.SetStaticValue(occupation_attr, id, kOccupations[rng.NextBelow(21)]);
    base_rating[i] = 2.6 + rng.NextDouble() * 1.8;  // per-user taste in [2.6, 4.4]
  }

  // Anchor co-rating pairs among the permanently-active head: present in the
  // first three months and *only* there — together with the blocklist below
  // this reproduces Fig 7d, where [May, Jul] is the longest interval that
  // still shares a common edge.
  const std::size_t head = std::min<std::size_t>(
      80, *std::min_element(profile.nodes_per_time.begin(),
                            profile.nodes_per_time.end()) /
              2);
  std::vector<std::pair<NodeId, NodeId>> anchor_pairs;
  if (num_times >= 4 && head >= 2) {
    std::unordered_set<std::uint64_t> anchor_keys;
    const std::size_t want_anchors = std::min<std::size_t>(250, head * (head - 1) / 4);
    while (anchor_pairs.size() < want_anchors) {
      NodeId u = rng.NextBelow(static_cast<std::uint32_t>(head));
      NodeId v = rng.NextBelow(static_cast<std::uint32_t>(head));
      if (u == v) continue;
      if (!anchor_keys.insert(PairKey(u, v)).second) continue;
      anchor_pairs.emplace_back(u, v);
    }
  }
  const TimeId anchor_last = num_times >= 4 ? 2 : 0;

  // Edges present in *every* month so far. Repeats never draw from this set
  // once the horizon month (index 3, August) is reached, so the all-months
  // intersection goes empty there and stays empty (paper Fig 7d).
  std::unordered_set<std::uint64_t> running_common;

  // The previous month's edges: the default is that co-rating pairs do NOT
  // recur (months are near-disjoint); recurrence happens only through the
  // explicit repeat injection below.
  std::unordered_set<std::uint64_t> prev_month_keys;
  std::vector<std::pair<NodeId, NodeId>> prev_month_edges;

  for (TimeId t = 0; t < num_times; ++t) {
    const std::size_t target_nodes = profile.nodes_per_time[t];
    const std::size_t target_edges = profile.edges_per_time[t];
    GT_CHECK_LE(target_edges, target_nodes * (target_nodes - 1))
        << "edge target exceeds simple-directed-graph capacity at time " << t;

    // Active set: a deterministic popular head (shared across months, so
    // popular pairs can recur) plus a random tail from the rest of the pool.
    std::vector<NodeId> active;
    std::unordered_set<NodeId> active_set;
    const std::size_t head_size =
        std::max<std::size_t>(head, target_nodes * 6 / 10);
    for (NodeId n = 0; n < std::min(head_size, target_nodes); ++n) {
      active.push_back(n);
      active_set.insert(n);
    }
    while (active.size() < target_nodes) {
      NodeId n = rng.NextBelow(static_cast<std::uint32_t>(options.user_pool));
      if (active_set.insert(n).second) active.push_back(n);
    }
    std::sort(active.begin(), active.end());  // ascending id == popularity rank

    // Presence + the month's average rating.
    for (NodeId n : active) {
      graph.SetNodePresent(n, t);
      double noise = (rng.NextDouble() - 0.5) * 1.2;
      graph.SetTimeVaryingValue(rating_attr, n, t,
                                RatingBucket(base_rating[n] + noise));
    }

    // Edge set for the month. Fresh pairs must avoid the previous month's
    // pairs entirely; recurrence is injected explicitly below.
    std::unordered_set<std::uint64_t> month_keys;
    std::vector<std::pair<NodeId, NodeId>> month_edges;
    month_edges.reserve(target_edges);
    auto add_edge = [&](NodeId u, NodeId v, bool allow_recurrence = false) -> bool {
      if (u == v) return false;
      std::uint64_t key = PairKey(u, v);
      if (!allow_recurrence && prev_month_keys.count(key) != 0) return false;
      if (!month_keys.insert(key).second) return false;
      month_edges.emplace_back(u, v);
      return true;
    };

    if (t <= anchor_last) {
      for (const auto& [u, v] : anchor_pairs) {
        if (month_edges.size() >= target_edges) break;
        add_edge(u, v, /*allow_recurrence=*/true);
      }
    }

    // Controlled repeats from the previous month (skipping pairs that have
    // been present in every month so far once past the horizon, so no edge
    // spans the first four months).
    if (t > 0) {
      std::size_t want_repeats = static_cast<std::size_t>(
          options.repeat_fraction *
          static_cast<double>(std::min(prev_month_edges.size(), target_edges)));
      std::size_t attempts = 0;
      const std::size_t max_attempts = 40 * want_repeats + 100;
      while (want_repeats > 0 && attempts < max_attempts &&
             month_edges.size() < target_edges) {
        ++attempts;
        const auto& [u, v] = prev_month_edges[rng.NextBelow(
            static_cast<std::uint32_t>(prev_month_edges.size()))];
        if (active_set.count(u) == 0 || active_set.count(v) == 0) continue;
        if (t >= 3 && running_common.count(PairKey(u, v)) != 0) continue;
        if (add_edge(u, v, /*allow_recurrence=*/true)) --want_repeats;
      }
    }

    // Per-source degree quotas: Zipf over popularity rank, capped at the
    // simple-graph limit, deficit redistributed round-robin.
    const std::size_t n_active = active.size();
    const std::size_t cap = n_active - 1;
    std::vector<double> weight(n_active);
    double total_weight = 0.0;
    for (std::size_t i = 0; i < n_active; ++i) {
      weight[i] = 1.0 / std::pow(static_cast<double>(i + 1), options.degree_skew);
      total_weight += weight[i];
    }
    const std::size_t remaining_target = target_edges - month_edges.size();
    std::vector<std::size_t> quota(n_active);
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < n_active; ++i) {
      quota[i] = std::min(
          cap, static_cast<std::size_t>(static_cast<double>(remaining_target) *
                                        weight[i] / total_weight));
      assigned += quota[i];
    }
    std::size_t deficit = remaining_target > assigned ? remaining_target - assigned : 0;
    while (deficit > 0) {
      bool progressed = false;
      for (std::size_t i = 0; i < n_active && deficit > 0; ++i) {
        if (quota[i] < cap) {
          ++quota[i];
          --deficit;
          progressed = true;
        }
      }
      GT_CHECK(progressed) << "cannot place all edges at time " << t;
    }

    const ZipfSampler dst_zipf(n_active, options.degree_skew);
    for (std::size_t i = 0; i < n_active && month_edges.size() < target_edges; ++i) {
      NodeId src = active[i];
      std::size_t want = quota[i];
      if (want == 0) continue;
      std::size_t placed = 0;
      if (want * 4 < n_active) {
        // Sparse source: Zipf-popular destinations with rejection.
        std::size_t attempts = 0;
        const std::size_t max_attempts = 60 * want + 200;
        while (placed < want && attempts < max_attempts) {
          ++attempts;
          NodeId dst = active[dst_zipf.Sample(rng)];
          if (add_edge(src, dst)) ++placed;
        }
      }
      if (placed < want) {
        // Dense source (or rejection stalled): sample without replacement.
        std::vector<NodeId> candidates;
        candidates.reserve(n_active - 1);
        for (NodeId dst : active) {
          if (dst != src) candidates.push_back(dst);
        }
        Shuffle(candidates, rng);
        for (NodeId dst : candidates) {
          if (placed >= want) break;
          if (add_edge(src, dst)) ++placed;
        }
      }
    }
    // Any residue (sources saturated by dedupe/blocklist): fill uniformly.
    while (month_edges.size() < target_edges) {
      NodeId u = active[rng.NextBelow(static_cast<std::uint32_t>(n_active))];
      NodeId v = active[rng.NextBelow(static_cast<std::uint32_t>(n_active))];
      add_edge(u, v);
    }

    for (const auto& [u, v] : month_edges) {
      EdgeId e = graph.GetOrAddEdge(u, v);
      graph.SetEdgePresent(e, t);
    }

    // Maintain the all-months running intersection, then hand this month's
    // edges to the next iteration as the recurrence blocklist/repeat pool.
    if (t == 0) {
      running_common = month_keys;
    } else {
      std::unordered_set<std::uint64_t> next_common;
      for (std::uint64_t key : running_common) {
        if (month_keys.count(key) != 0) next_common.insert(key);
      }
      running_common = std::move(next_common);
    }
    prev_month_keys = std::move(month_keys);
    prev_month_edges = std::move(month_edges);
  }

  return graph;
}

}  // namespace graphtempo::datagen
