#include "datagen/dblp_gen.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "datagen/random.h"
#include "obs/trace.h"
#include "util/check.h"

namespace graphtempo::datagen {

namespace {

std::uint64_t PairKey(NodeId u, NodeId v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// A long-lived collaboration planted so that intersections over long
/// intervals behave like the paper's Figure 7: non-empty up to [t₀, T-4],
/// empty beyond.
struct Anchor {
  NodeId u;
  NodeId v;
  TimeId last_year;  // inclusive; the anchor is alive in [0, last_year]
};

}  // namespace

TemporalGraph GenerateDblp(const DblpOptions& options) {
  return GenerateDblpWithProfile(DblpProfile(), options);
}

TemporalGraph GenerateDblpWithProfile(const DatasetProfile& profile,
                                      const DblpOptions& options) {
  GT_SPAN("datagen/dblp", {{"times", profile.num_times()}});
  const std::size_t num_times = profile.num_times();
  GT_CHECK_GE(num_times, 2u) << "profile needs at least two time points";
  GT_CHECK_EQ(profile.nodes_per_time.size(), num_times);
  GT_CHECK_EQ(profile.edges_per_time.size(), num_times);

  TemporalGraph graph(profile.time_labels);
  const std::uint32_t gender_attr = graph.AddStaticAttribute("gender");
  const std::uint32_t pubs_attr = graph.AddTimeVaryingAttribute("publications");

  Pcg32 rng(options.seed);

  // A small persistent elite (≈2% of authors) publishes heavily (3–18 papers
  // a year) and keeps publishing year after year until an occasional
  // retirement; everyone else publishes 1–4 papers and churns. This mirrors
  // the population behind the paper's Fig 12: the #publications > 4 filter
  // selects a few hundred authors per year, and ~61% of a decade's elite is
  // still active (and still prolific) in the following year.
  std::vector<bool> is_elite;        // drawn at creation
  std::vector<bool> elite_active;    // false after retirement
  std::vector<double> elite_level;   // how prolific an elite author is
  auto new_author = [&]() -> NodeId {
    NodeId id = graph.AddNode("a" + std::to_string(graph.num_nodes()));
    graph.SetStaticValue(gender_attr, id, rng.NextBool(options.female_fraction) ? "f" : "m");
    bool elite = rng.NextBool(0.02);
    is_elite.push_back(elite);
    elite_active.push_back(elite);
    elite_level.push_back(rng.NextDouble());
    return id;
  };

  // --- Anchor collaborations --------------------------------------------------
  // Tiers of decreasing lifespan. The longest tier ends 3 time points before
  // the domain end, so the longest interval with a non-empty intersection
  // graph is [t₀, T-4] — matching the paper's DBLP observation that [2000,
  // 2017] is the last interval sharing a common edge. Tier sizes are capped
  // for small test profiles so anchors never crowd out regular authors.
  const std::size_t min_nodes =
      *std::min_element(profile.nodes_per_time.begin(), profile.nodes_per_time.end());
  const TimeId longest_end = static_cast<TimeId>(num_times >= 4 ? num_times - 4 : 0);
  std::vector<Anchor> anchors;
  std::unordered_set<std::uint64_t> anchor_keys;
  if (longest_end > 0) {
    const std::size_t tier_counts[4] = {6, 10, 16, 24};
    const std::size_t anchor_budget = min_nodes / 8;  // ≤ 2 authors per anchor
    std::size_t planted = 0;
    for (std::size_t tier = 0; tier < 4; ++tier) {
      TimeId end = static_cast<TimeId>(
          longest_end > 2 * tier ? longest_end - 2 * tier : 1);
      for (std::size_t i = 0; i < tier_counts[tier]; ++i) {
        if (2 * (planted + 1) > anchor_budget) break;
        anchors.push_back(Anchor{new_author(), new_author(), end});
        anchor_keys.insert(PairKey(anchors.back().u, anchors.back().v));
        ++planted;
      }
    }
  }

  std::vector<NodeId> prev_active;
  std::vector<std::pair<NodeId, NodeId>> prev_edges;
  std::vector<NodeId> retired;  // authors seen before but not active last year

  const ZipfSampler pub_zipf(4, 1.3);  // non-elite authors: 1–4 papers, mostly 1

  for (TimeId t = 0; t < num_times; ++t) {
    const std::size_t target_nodes = profile.nodes_per_time[t];
    const std::size_t target_edges = profile.edges_per_time[t];
    GT_CHECK_GE(target_nodes, 2u) << "profile too small at time " << t;

    std::vector<NodeId> active;
    std::unordered_set<NodeId> active_set;
    active.reserve(target_nodes);
    auto activate = [&](NodeId n) -> bool {
      if (!active_set.insert(n).second) return false;
      active.push_back(n);
      return true;
    };

    // 1. Anchor authors alive this year.
    for (const Anchor& anchor : anchors) {
      if (t <= anchor.last_year) {
        activate(anchor.u);
        activate(anchor.v);
      }
    }

    // 2. Carry-over from the previous year. Active elite authors have top
    // priority (they essentially always continue, modulo the retirement roll
    // below); the rest churn uniformly.
    for (NodeId n : prev_active) {
      if (elite_active[n] && rng.NextBool(0.04)) elite_active[n] = false;
    }
    std::vector<std::pair<double, NodeId>> carry_pool;
    carry_pool.reserve(prev_active.size());
    for (NodeId n : prev_active) {
      double score = elite_active[n] ? 1.0 + elite_level[n] : rng.NextDouble();
      carry_pool.emplace_back(score, n);
    }
    std::sort(carry_pool.begin(), carry_pool.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    // The field matures over the covered period: author retention rises year
    // over year, which is what makes the paper's Fig 12 stability ratios
    // higher for 2020-vs-2010s than for 2010-vs-2000s.
    double retention = options.carry_over *
                       (0.85 + 0.3 * static_cast<double>(t) /
                                   static_cast<double>(num_times - 1));
    std::size_t want_carry = std::min(
        target_nodes,
        static_cast<std::size_t>(retention * static_cast<double>(prev_active.size())));
    for (const auto& [score, n] : carry_pool) {
      if (active.size() >= target_nodes || want_carry == 0) break;
      if (activate(n)) --want_carry;
    }

    // 3. Returning authors (inactive last year) and brand-new authors.
    while (active.size() < target_nodes) {
      if (!retired.empty() && rng.NextBool(0.3)) {
        NodeId n = retired[rng.NextBelow(static_cast<std::uint32_t>(retired.size()))];
        activate(n);  // may fail (already active); loop continues either way
      } else {
        activate(new_author());
      }
    }

    // 4. Presence and the yearly publication count: active elite authors
    // publish 3–18 papers (usually above the paper's high-activity bar of 4),
    // everyone else a Zipf-skewed 1–4.
    for (NodeId n : active) {
      graph.SetNodePresent(n, t);
      std::size_t pubs;
      if (elite_active[n]) {
        double base = elite_level[n] * 12.0 * (0.5 + 0.7 * rng.NextDouble());
        pubs = 3 + static_cast<std::size_t>(base);
        if (pubs > 18) pubs = 18;
      } else {
        pubs = 1 + pub_zipf.Sample(rng);
      }
      graph.SetTimeVaryingValue(pubs_attr, n, t, std::to_string(pubs));
    }

    // 5. Edges: anchors, repeated collaborations, then fresh preferential ones.
    std::unordered_set<std::uint64_t> year_edge_keys;
    std::vector<std::pair<NodeId, NodeId>> year_edges;
    year_edges.reserve(target_edges);
    // Anchor pairs re-enter the graph only through the explicit loop below;
    // blocking them from repeats and random draws guarantees they disappear
    // for good after their last year, keeping the intersection horizon exact.
    auto add_edge = [&](NodeId u, NodeId v, bool allow_anchor = false) -> bool {
      if (u == v) return false;
      std::uint64_t key = PairKey(u, v);
      if (!allow_anchor && anchor_keys.count(key) != 0) return false;
      if (!year_edge_keys.insert(key).second) return false;
      year_edges.emplace_back(u, v);
      return true;
    };

    for (const Anchor& anchor : anchors) {
      if (t <= anchor.last_year && year_edges.size() < target_edges) {
        add_edge(anchor.u, anchor.v, /*allow_anchor=*/true);
      }
    }
    for (const auto& [u, v] : prev_edges) {
      if (year_edges.size() >= target_edges) break;
      if (!rng.NextBool(options.edge_repeat)) continue;
      if (active_set.count(u) == 0 || active_set.count(v) == 0) continue;
      add_edge(u, v);
    }

    // Hub identity rotates yearly (the shuffle below), so the same popular
    // pair does not spontaneously recur every year — cross-year edge overlap
    // is controlled by `edge_repeat` and the anchors alone, keeping the
    // long-interval intersection behaviour faithful to the paper.
    std::vector<NodeId> ranked = active;
    Shuffle(ranked, rng);
    const ZipfSampler partner_zipf(ranked.size(), 0.8);
    while (year_edges.size() < target_edges) {
      NodeId u = ranked[partner_zipf.Sample(rng)];
      NodeId v = ranked[partner_zipf.Sample(rng)];
      add_edge(u, v);
    }

    for (const auto& [u, v] : year_edges) {
      EdgeId e = graph.GetOrAddEdge(u, v);
      graph.SetEdgePresent(e, t);
    }

    // 6. Book-keeping for the next year.
    for (NodeId n : prev_active) {
      if (active_set.count(n) == 0) retired.push_back(n);
    }
    prev_active = std::move(active);
    prev_edges = std::move(year_edges);
  }

  return graph;
}

}  // namespace graphtempo::datagen
