#include "datagen/paper_example.h"

#include <string>
#include <vector>

#include "util/check.h"

namespace graphtempo::datagen {

TemporalGraph BuildPaperExampleGraph() {
  TemporalGraph graph(std::vector<std::string>{"t0", "t1", "t2"});
  std::uint32_t gender = graph.AddStaticAttribute("gender");
  std::uint32_t pubs = graph.AddTimeVaryingAttribute("publications");

  struct NodeSpec {
    const char* label;
    const char* gender;
    std::vector<int> presence;      // time ids
    std::vector<const char*> pubs;  // one per present time, same order
  };
  const std::vector<NodeSpec> nodes = {
      {"u1", "m", {0, 1}, {"3", "1"}},    {"u2", "f", {0, 1, 2}, {"1", "1", "1"}},
      {"u3", "f", {0}, {"1"}},            {"u4", "f", {0, 1, 2}, {"2", "1", "1"}},
      {"u5", "m", {2}, {"3"}},
  };
  for (const NodeSpec& spec : nodes) {
    NodeId n = graph.AddNode(spec.label);
    graph.SetStaticValue(gender, n, spec.gender);
    GT_CHECK_EQ(spec.presence.size(), spec.pubs.size());
    for (std::size_t i = 0; i < spec.presence.size(); ++i) {
      TimeId t = static_cast<TimeId>(spec.presence[i]);
      graph.SetNodePresent(n, t);
      graph.SetTimeVaryingValue(pubs, n, t, spec.pubs[i]);
    }
  }

  struct EdgeSpec {
    const char* src;
    const char* dst;
    std::vector<int> presence;
  };
  const std::vector<EdgeSpec> edges = {
      {"u1", "u2", {0, 1}}, {"u1", "u3", {0}}, {"u2", "u4", {0, 1, 2}},
      {"u3", "u4", {0}},    {"u1", "u4", {1}}, {"u4", "u5", {2}},
      {"u2", "u5", {2}},
  };
  for (const EdgeSpec& spec : edges) {
    EdgeId e = graph.GetOrAddEdge(*graph.FindNode(spec.src), *graph.FindNode(spec.dst));
    for (int t : spec.presence) graph.SetEdgePresent(e, static_cast<TimeId>(t));
  }
  return graph;
}

}  // namespace graphtempo::datagen
