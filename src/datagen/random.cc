#include "datagen/random.h"

#include <algorithm>
#include <cmath>

namespace graphtempo::datagen {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), increment_((stream << 1) | 1) {
  Next();
  state_ += seed;
  Next();
}

std::uint32_t Pcg32::Next() {
  std::uint64_t old_state = state_;
  state_ = old_state * 6364136223846793005ull + increment_;
  std::uint32_t xorshifted =
      static_cast<std::uint32_t>(((old_state >> 18) ^ old_state) >> 27);
  std::uint32_t rot = static_cast<std::uint32_t>(old_state >> 59);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

std::uint32_t Pcg32::NextBelow(std::uint32_t bound) {
  GT_CHECK_GT(bound, 0u) << "NextBelow bound must be positive";
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t product = static_cast<std::uint64_t>(Next()) * bound;
  std::uint32_t low = static_cast<std::uint32_t>(product);
  if (low < bound) {
    std::uint32_t threshold = (0u - bound) % bound;
    while (low < threshold) {
      product = static_cast<std::uint64_t>(Next()) * bound;
      low = static_cast<std::uint32_t>(product);
    }
  }
  return static_cast<std::uint32_t>(product >> 32);
}

std::uint32_t Pcg32::NextInRange(std::uint32_t lo, std::uint32_t hi) {
  GT_CHECK_LE(lo, hi) << "inverted range";
  return lo + NextBelow(hi - lo + 1);
}

double Pcg32::NextDouble() {
  return static_cast<double>(Next()) * (1.0 / 4294967296.0);
}

bool Pcg32::NextBool(double probability) { return NextDouble() < probability; }

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  GT_CHECK_GT(n, 0u) << "Zipf needs at least one rank";
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), s);
    cdf_[rank] = total;
  }
  for (double& value : cdf_) value /= total;
}

std::size_t ZipfSampler::Sample(Pcg32& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace graphtempo::datagen
