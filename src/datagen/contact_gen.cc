#include "datagen/contact_gen.h"

#include <string>
#include <unordered_set>
#include <vector>

#include "datagen/random.h"
#include "obs/trace.h"
#include "util/check.h"

namespace graphtempo::datagen {

namespace {

std::uint64_t PairKey(NodeId u, NodeId v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

TemporalGraph GenerateContactNetwork(const ContactOptions& options) {
  GT_SPAN("datagen/contact", {{"days", options.num_days}});
  GT_CHECK_GE(options.num_days, 2u);
  GT_CHECK_LT(options.outbreak_day, options.reopen_day);
  GT_CHECK_LE(options.reopen_day, options.num_days);
  GT_CHECK_GE(options.students_per_class, 2u);

  std::vector<std::string> day_labels;
  day_labels.reserve(options.num_days);
  for (std::size_t d = 0; d < options.num_days; ++d) {
    day_labels.push_back("day" + std::to_string(d + 1));
  }

  TemporalGraph graph(std::move(day_labels));
  const std::uint32_t class_attr = graph.AddStaticAttribute("class");
  const std::uint32_t grade_attr = graph.AddStaticAttribute("grade");
  const std::uint32_t role_attr = graph.AddStaticAttribute("role");
  const std::uint32_t status_attr = graph.AddTimeVaryingAttribute("status");
  // Contact duration in minutes per (pair, day) — the quantity the paper's
  // epidemic scenario reasons about ("the time interval of their interaction").
  const std::uint32_t duration_attr = graph.AddTimeVaryingEdgeAttribute("duration");

  Pcg32 rng(options.seed);

  // One teacher plus `students_per_class` students per class.
  struct Person {
    NodeId id;
    std::size_t grade;
    std::size_t klass;  // global class index
  };
  std::vector<Person> people;
  std::vector<std::vector<NodeId>> by_class;
  for (std::size_t grade = 0; grade < options.grades; ++grade) {
    for (std::size_t c = 0; c < options.classes_per_grade; ++c) {
      std::size_t klass = grade * options.classes_per_grade + c;
      std::string class_name =
          "g" + std::to_string(grade + 1) + "c" + std::to_string(c + 1);
      by_class.emplace_back();
      auto add_person = [&](const std::string& label, const char* role) {
        NodeId id = graph.AddNode(label);
        graph.SetStaticValue(class_attr, id, class_name);
        graph.SetStaticValue(grade_attr, id, "grade" + std::to_string(grade + 1));
        graph.SetStaticValue(role_attr, id, role);
        people.push_back(Person{id, grade, klass});
        by_class[klass].push_back(id);
        return id;
      };
      add_person("teacher_" + class_name, "teacher");
      for (std::size_t s = 0; s < options.students_per_class; ++s) {
        add_person("student_" + class_name + "_" + std::to_string(s + 1), "student");
      }
    }
  }

  // A small infected seed group whose `status` turns sick during the
  // outbreak phase and recovers afterwards.
  std::unordered_set<NodeId> seed_sick;
  while (seed_sick.size() < people.size() / 20) {
    seed_sick.insert(
        people[rng.NextBelow(static_cast<std::uint32_t>(people.size()))].id);
  }

  for (std::size_t day = 0; day < options.num_days; ++day) {
    const bool closure = day >= options.outbreak_day && day < options.reopen_day;
    const TimeId t = static_cast<TimeId>(day);

    // Everyone attends every day (absence modelling is not the point here).
    for (const Person& person : people) {
      graph.SetNodePresent(person.id, t);
      bool sick = closure && seed_sick.count(person.id) != 0;
      graph.SetTimeVaryingValue(status_attr, person.id, t, sick ? "sick" : "healthy");
    }

    std::unordered_set<std::uint64_t> day_keys;
    auto add_contact = [&](NodeId u, NodeId v, bool same_class) {
      if (u == v) return;
      if (u > v) std::swap(u, v);  // contacts are symmetric; store one direction
      if (!day_keys.insert(PairKey(u, v)).second) return;
      EdgeId e = graph.GetOrAddEdge(u, v);
      graph.SetEdgePresent(e, t);
      // Classmates spend far longer together than recess acquaintances.
      std::uint32_t minutes = same_class ? 20 + rng.NextBelow(70) : 2 + rng.NextBelow(12);
      graph.SetTimeVaryingEdgeValue(duration_attr, e, t, std::to_string(minutes));
    };

    // Within-class contacts: dense (each person meets ~1/3 of the class).
    for (const auto& members : by_class) {
      for (NodeId u : members) {
        std::size_t meetings = members.size() / 3;
        for (std::size_t m = 0; m < meetings; ++m) {
          NodeId v = members[rng.NextBelow(static_cast<std::uint32_t>(members.size()))];
          add_contact(u, v, /*same_class=*/true);
        }
      }
    }

    // Cross-class contacts: recess/lunch mixing, collapsed during closure.
    std::size_t cross_contacts = people.size() * (closure ? 1 : 12) / 10;
    for (std::size_t c = 0; c < cross_contacts; ++c) {
      const Person& a = people[rng.NextBelow(static_cast<std::uint32_t>(people.size()))];
      const Person& b = people[rng.NextBelow(static_cast<std::uint32_t>(people.size()))];
      if (a.klass == b.klass) continue;
      // Same-grade mixing is far likelier than cross-grade (the homophily the
      // Gemmetto et al. closure strategy exploits).
      if (a.grade != b.grade && !rng.NextBool(0.15)) continue;
      add_contact(a.id, b.id, /*same_class=*/false);
    }
  }

  return graph;
}

}  // namespace graphtempo::datagen
