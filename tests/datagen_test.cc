#include <gtest/gtest.h>

#include "core/operators.h"
#include "datagen/contact_gen.h"
#include "datagen/dblp_gen.h"
#include "datagen/movielens_gen.h"
#include "datagen/profiles.h"

namespace graphtempo::datagen {
namespace {

DatasetProfile SmallDblpProfile() {
  DatasetProfile profile;
  profile.name = "dblp-small";
  profile.time_labels = {"y0", "y1", "y2", "y3", "y4", "y5", "y6", "y7"};
  profile.nodes_per_time = {40, 50, 45, 60, 55, 70, 65, 80};
  profile.edges_per_time = {80, 120, 100, 140, 150, 160, 170, 200};
  return profile;
}

DatasetProfile SmallMovieLensProfile() {
  DatasetProfile profile;
  profile.name = "ml-small";
  profile.time_labels = {"m0", "m1", "m2", "m3", "m4", "m5"};
  profile.nodes_per_time = {30, 35, 50, 80, 40, 30};
  profile.edges_per_time = {200, 180, 400, 900, 150, 100};
  return profile;
}

// --- Profiles -----------------------------------------------------------------

TEST(ProfilesTest, DblpMatchesPaperTable3) {
  DatasetProfile profile = DblpProfile();
  ASSERT_EQ(profile.num_times(), 21u);
  EXPECT_EQ(profile.time_labels.front(), "2000");
  EXPECT_EQ(profile.time_labels.back(), "2020");
  EXPECT_EQ(profile.nodes_per_time.front(), 1708u);
  EXPECT_EQ(profile.edges_per_time.front(), 2336u);
  EXPECT_EQ(profile.nodes_per_time.back(), 12996u);
  EXPECT_EQ(profile.edges_per_time.back(), 28546u);
  EXPECT_EQ(profile.nodes_per_time[10], 6236u);  // 2010
  EXPECT_EQ(profile.edges_per_time[10], 10163u);
}

TEST(ProfilesTest, MovieLensMatchesPaperTable4) {
  DatasetProfile profile = MovieLensProfile();
  ASSERT_EQ(profile.num_times(), 6u);
  EXPECT_EQ(profile.time_labels, (std::vector<std::string>{"May", "Jun", "Jul", "Aug",
                                                           "Sep", "Oct"}));
  EXPECT_EQ(profile.nodes_per_time, (std::vector<std::size_t>{486, 508, 778, 1309, 575,
                                                              498}));
  EXPECT_EQ(profile.edges_per_time, (std::vector<std::size_t>{100202, 85334, 201800,
                                                              610050, 77216, 48516}));
}

// --- DBLP generator --------------------------------------------------------------

class DblpGeneratorTest : public ::testing::Test {
 protected:
  DblpGeneratorTest() : graph_(GenerateDblpWithProfile(SmallDblpProfile(), {})) {}
  TemporalGraph graph_;
};

TEST_F(DblpGeneratorTest, PerTimePointCountsMatchProfile) {
  DatasetProfile profile = SmallDblpProfile();
  for (TimeId t = 0; t < profile.num_times(); ++t) {
    EXPECT_EQ(graph_.NodesAt(t), profile.nodes_per_time[t]) << "t=" << t;
    EXPECT_EQ(graph_.EdgesAt(t), profile.edges_per_time[t]) << "t=" << t;
  }
}

TEST_F(DblpGeneratorTest, HasExpectedAttributes) {
  std::optional<AttrRef> gender = graph_.FindAttribute("gender");
  ASSERT_TRUE(gender.has_value());
  EXPECT_EQ(gender->kind, AttrRef::Kind::kStatic);
  std::optional<AttrRef> pubs = graph_.FindAttribute("publications");
  ASSERT_TRUE(pubs.has_value());
  EXPECT_EQ(pubs->kind, AttrRef::Kind::kTimeVarying);
}

TEST_F(DblpGeneratorTest, EveryPresentNodeHasPublications) {
  AttrRef pubs = *graph_.FindAttribute("publications");
  for (NodeId n = 0; n < graph_.num_nodes(); ++n) {
    for (TimeId t = 0; t < graph_.num_times(); ++t) {
      if (graph_.NodePresentAt(n, t)) {
        EXPECT_NE(graph_.ValueCodeAt(pubs, n, t), kNoValue)
            << "node " << n << " time " << t;
      }
    }
  }
}

TEST_F(DblpGeneratorTest, EveryNodeHasGender) {
  AttrRef gender = *graph_.FindAttribute("gender");
  std::size_t female = 0;
  for (NodeId n = 0; n < graph_.num_nodes(); ++n) {
    AttrValueId code = graph_.ValueCodeAt(gender, n, 0);
    ASSERT_NE(code, kNoValue);
    if (graph_.ValueName(gender, code) == "f") ++female;
  }
  double fraction = static_cast<double>(female) / graph_.num_nodes();
  EXPECT_NEAR(fraction, 0.2, 0.08);
}

TEST_F(DblpGeneratorTest, ConsecutiveYearsOverlap) {
  // The carry-over mechanism must make intersections non-trivial.
  for (TimeId t = 0; t + 1 < graph_.num_times(); ++t) {
    GraphView common = IntersectionOp(graph_, IntervalSet::Point(8, t),
                                      IntervalSet::Point(8, t + 1));
    EXPECT_GT(common.NodeCount(), 0u) << "no node survives " << t << "→" << t + 1;
  }
}

TEST_F(DblpGeneratorTest, AnchorHorizonBoundsLongIntersections) {
  // Project over [t0, T-4] (all points) must keep at least one edge, and the
  // horizon [t0, T-3] none — the generator's analogue of the paper's
  // observation that DBLP intersections die after [2000, 2017].
  const std::size_t n = graph_.num_times();
  GraphView longest = Project(graph_, IntervalSet::Range(n, 0, static_cast<TimeId>(n - 4)));
  EXPECT_GT(longest.EdgeCount(), 0u);
  GraphView beyond = Project(graph_, IntervalSet::Range(n, 0, static_cast<TimeId>(n - 3)));
  EXPECT_EQ(beyond.EdgeCount(), 0u);
}

TEST_F(DblpGeneratorTest, DeterministicForSameSeed) {
  TemporalGraph again = GenerateDblpWithProfile(SmallDblpProfile(), {});
  EXPECT_EQ(graph_.num_nodes(), again.num_nodes());
  EXPECT_EQ(graph_.num_edges(), again.num_edges());
  for (TimeId t = 0; t < graph_.num_times(); ++t) {
    EXPECT_EQ(graph_.NodesAt(t), again.NodesAt(t));
    EXPECT_EQ(graph_.EdgesAt(t), again.EdgesAt(t));
  }
}

TEST_F(DblpGeneratorTest, DifferentSeedsDiffer) {
  DblpOptions options;
  options.seed = 999;
  TemporalGraph other = GenerateDblpWithProfile(SmallDblpProfile(), options);
  // Same profile counts, different wiring.
  EXPECT_EQ(graph_.NodesAt(0), other.NodesAt(0));
  EXPECT_NE(graph_.num_edges(), other.num_edges());
}

TEST(DblpFullProfileTest, MatchesPaperTable3Exactly) {
  TemporalGraph graph = GenerateDblp();
  DatasetProfile profile = DblpProfile();
  for (TimeId t = 0; t < profile.num_times(); ++t) {
    EXPECT_EQ(graph.NodesAt(t), profile.nodes_per_time[t])
        << "year " << profile.time_labels[t];
    EXPECT_EQ(graph.EdgesAt(t), profile.edges_per_time[t])
        << "year " << profile.time_labels[t];
  }
  // Paper: longest interval with a common edge is [2000, 2017] (index 17).
  GraphView alive = Project(graph, IntervalSet::Range(21, 0, 17));
  EXPECT_GT(alive.EdgeCount(), 0u);
  GraphView dead = Project(graph, IntervalSet::Range(21, 0, 18));
  EXPECT_EQ(dead.EdgeCount(), 0u);
}

// --- MovieLens generator -----------------------------------------------------------

class MovieLensGeneratorTest : public ::testing::Test {
 protected:
  static MovieLensOptions SmallOptions() {
    MovieLensOptions options;
    options.user_pool = 120;
    return options;
  }

  MovieLensGeneratorTest()
      : graph_(GenerateMovieLensWithProfile(SmallMovieLensProfile(), SmallOptions())) {}

  TemporalGraph graph_;
};

TEST_F(MovieLensGeneratorTest, PerTimePointCountsMatchProfile) {
  DatasetProfile profile = SmallMovieLensProfile();
  for (TimeId t = 0; t < profile.num_times(); ++t) {
    EXPECT_EQ(graph_.NodesAt(t), profile.nodes_per_time[t]) << "t=" << t;
    EXPECT_EQ(graph_.EdgesAt(t), profile.edges_per_time[t]) << "t=" << t;
  }
}

TEST_F(MovieLensGeneratorTest, HasPaperAttributeSchema) {
  EXPECT_EQ(graph_.num_static_attributes(), 3u);
  EXPECT_EQ(graph_.num_time_varying_attributes(), 1u);
  EXPECT_TRUE(graph_.FindAttribute("gender").has_value());
  EXPECT_TRUE(graph_.FindAttribute("age").has_value());
  EXPECT_TRUE(graph_.FindAttribute("occupation").has_value());
  EXPECT_TRUE(graph_.FindAttribute("rating").has_value());
}

TEST_F(MovieLensGeneratorTest, AttributeDomainSizesMatchPaper) {
  AttrRef age = *graph_.FindAttribute("age");
  EXPECT_LE(graph_.static_attribute(age.index).dictionary().size(), 6u);
  AttrRef occupation = *graph_.FindAttribute("occupation");
  EXPECT_LE(graph_.static_attribute(occupation.index).dictionary().size(), 21u);
  AttrRef gender = *graph_.FindAttribute("gender");
  EXPECT_EQ(graph_.static_attribute(gender.index).dictionary().size(), 2u);
  AttrRef rating = *graph_.FindAttribute("rating");
  EXPECT_LE(graph_.time_varying_attribute(rating.index).dictionary().size(), 9u);
}

TEST_F(MovieLensGeneratorTest, PresentUsersHaveMonthlyRatings) {
  AttrRef rating = *graph_.FindAttribute("rating");
  for (NodeId n = 0; n < graph_.num_nodes(); ++n) {
    for (TimeId t = 0; t < graph_.num_times(); ++t) {
      if (graph_.NodePresentAt(n, t)) {
        EXPECT_NE(graph_.ValueCodeAt(rating, n, t), kNoValue);
      }
    }
  }
}

TEST_F(MovieLensGeneratorTest, CommonEdgeHorizonAtMonthThree) {
  // At least one edge common to the first three months; none across four —
  // the generator's analogue of Fig 7d stopping at [May, Jul].
  GraphView three = Project(graph_, IntervalSet::Range(6, 0, 2));
  EXPECT_GT(three.EdgeCount(), 0u);
  GraphView four = Project(graph_, IntervalSet::Range(6, 0, 3));
  EXPECT_EQ(four.EdgeCount(), 0u);
}

TEST_F(MovieLensGeneratorTest, ConsecutiveMonthsShareEdges) {
  for (TimeId t = 0; t + 1 < graph_.num_times(); ++t) {
    GraphView common = IntersectionOp(graph_, IntervalSet::Point(6, t),
                                      IntervalSet::Point(6, t + 1));
    EXPECT_GT(common.EdgeCount(), 0u) << "months " << t << "," << t + 1;
  }
}

TEST_F(MovieLensGeneratorTest, Deterministic) {
  TemporalGraph again =
      GenerateMovieLensWithProfile(SmallMovieLensProfile(), SmallOptions());
  EXPECT_EQ(graph_.num_edges(), again.num_edges());
}

// --- Contact network generator --------------------------------------------------------

TEST(ContactGeneratorTest, ShapeAndAttributes) {
  ContactOptions options;
  TemporalGraph graph = GenerateContactNetwork(options);
  EXPECT_EQ(graph.num_times(), options.num_days);
  // grades × classes × (students + teacher)
  EXPECT_EQ(graph.num_nodes(),
            options.grades * options.classes_per_grade * (options.students_per_class + 1));
  EXPECT_TRUE(graph.FindAttribute("class").has_value());
  EXPECT_TRUE(graph.FindAttribute("grade").has_value());
  EXPECT_TRUE(graph.FindAttribute("role").has_value());
  EXPECT_TRUE(graph.FindAttribute("status").has_value());
  for (TimeId t = 0; t < graph.num_times(); ++t) {
    EXPECT_EQ(graph.NodesAt(t), graph.num_nodes());  // everyone attends daily
    EXPECT_GT(graph.EdgesAt(t), 0u);
  }
}

TEST(ContactGeneratorTest, ClosureReducesCrossClassContacts) {
  ContactOptions options;
  TemporalGraph graph = GenerateContactNetwork(options);
  AttrRef klass = *graph.FindAttribute("class");
  auto cross_class_at = [&](TimeId t) {
    std::size_t count = 0;
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      if (!graph.EdgePresentAt(e, t)) continue;
      auto [src, dst] = graph.edge(e);
      if (graph.ValueCodeAt(klass, src, t) != graph.ValueCodeAt(klass, dst, t)) ++count;
    }
    return count;
  };
  std::size_t normal = cross_class_at(0);
  std::size_t closed = cross_class_at(static_cast<TimeId>(options.outbreak_day));
  std::size_t reopened = cross_class_at(static_cast<TimeId>(options.reopen_day));
  EXPECT_LT(closed * 3, normal);  // the closure slashes cross-class mixing
  EXPECT_GT(reopened * 3, normal);
}

}  // namespace
}  // namespace graphtempo::datagen
