#include "core/operators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_graphs.h"

namespace graphtempo {
namespace {

using testing::BuildPaperGraph;
using testing::BuildRandomGraph;

std::vector<std::string> NodeLabels(const TemporalGraph& graph, const GraphView& view) {
  std::vector<std::string> labels;
  for (NodeId n : view.nodes) labels.push_back(graph.node_label(n));
  return labels;
}

std::vector<std::pair<std::string, std::string>> EdgeLabels(const TemporalGraph& graph,
                                                            const GraphView& view) {
  std::vector<std::pair<std::string, std::string>> labels;
  for (EdgeId e : view.edges) {
    auto [src, dst] = graph.edge(e);
    labels.emplace_back(graph.node_label(src), graph.node_label(dst));
  }
  return labels;
}

// --- Project (Def 2.2) --------------------------------------------------------

TEST(ProjectTest, SnapshotAtOnePoint) {
  TemporalGraph graph = BuildPaperGraph();
  GraphView view = Project(graph, IntervalSet::Point(3, 0));
  EXPECT_EQ(NodeLabels(graph, view), (std::vector<std::string>{"u1", "u2", "u3", "u4"}));
  EXPECT_EQ(view.EdgeCount(), 4u);
  EXPECT_EQ(view.times, IntervalSet::Point(3, 0));
}

TEST(ProjectTest, RequiresPresenceThroughoutInterval) {
  TemporalGraph graph = BuildPaperGraph();
  GraphView view = Project(graph, IntervalSet::Range(3, 0, 1));
  // Nodes present at BOTH t0 and t1: u1, u2, u4.
  EXPECT_EQ(NodeLabels(graph, view), (std::vector<std::string>{"u1", "u2", "u4"}));
  // Edges present at both: (u1,u2), (u2,u4).
  EXPECT_EQ(view.EdgeCount(), 2u);
}

TEST(ProjectTest, FullDomainKeepsOnlyAlwaysPresent) {
  TemporalGraph graph = BuildPaperGraph();
  GraphView view = Project(graph, IntervalSet::All(3));
  EXPECT_EQ(NodeLabels(graph, view), (std::vector<std::string>{"u2", "u4"}));
  EXPECT_EQ(EdgeLabels(graph, view),
            (std::vector<std::pair<std::string, std::string>>{{"u2", "u4"}}));
}

// --- Union (Def 2.3, Fig 2) ---------------------------------------------------

TEST(UnionTest, PaperFigure2) {
  TemporalGraph graph = BuildPaperGraph();
  GraphView view = UnionOp(graph, IntervalSet::Point(3, 0), IntervalSet::Point(3, 1));
  // The union graph on (t0, t1) holds u1..u4 and all edges alive at t0 or t1.
  EXPECT_EQ(NodeLabels(graph, view), (std::vector<std::string>{"u1", "u2", "u3", "u4"}));
  auto edges = EdgeLabels(graph, view);
  EXPECT_EQ(edges.size(), 5u);
  EXPECT_TRUE(std::count(edges.begin(), edges.end(), std::make_pair(std::string("u1"),
                                                                    std::string("u4"))));
  EXPECT_EQ(view.times, IntervalSet::Range(3, 0, 1));
}

TEST(UnionTest, WithSelfIsIdentityOnPresentEntities) {
  TemporalGraph graph = BuildPaperGraph();
  IntervalSet t2 = IntervalSet::Point(3, 2);
  GraphView view = UnionOp(graph, t2, t2);
  EXPECT_EQ(NodeLabels(graph, view), (std::vector<std::string>{"u2", "u4", "u5"}));
  EXPECT_EQ(view.EdgeCount(), 3u);
}

TEST(UnionTest, IsSymmetric) {
  TemporalGraph graph = BuildRandomGraph(11, 30, 6);
  IntervalSet a = IntervalSet::Range(6, 0, 2);
  IntervalSet b = IntervalSet::Range(6, 3, 5);
  GraphView ab = UnionOp(graph, a, b);
  GraphView ba = UnionOp(graph, b, a);
  EXPECT_EQ(ab.nodes, ba.nodes);
  EXPECT_EQ(ab.edges, ba.edges);
  EXPECT_EQ(ab.times, ba.times);
}

// --- Intersection (Def 2.4) ---------------------------------------------------

TEST(IntersectionTest, PaperT0T1) {
  TemporalGraph graph = BuildPaperGraph();
  GraphView view =
      IntersectionOp(graph, IntervalSet::Point(3, 0), IntervalSet::Point(3, 1));
  EXPECT_EQ(NodeLabels(graph, view), (std::vector<std::string>{"u1", "u2", "u4"}));
  EXPECT_EQ(EdgeLabels(graph, view), (std::vector<std::pair<std::string, std::string>>{
                                         {"u1", "u2"}, {"u2", "u4"}}));
  // Defined on T1 ∪ T2 (Def 2.4).
  EXPECT_EQ(view.times, IntervalSet::Range(3, 0, 1));
}

TEST(IntersectionTest, DisjointLifetimesGiveEmptyGraph) {
  TemporalGraph graph = BuildPaperGraph();
  // u3 lives only at t0, u5 only at t2; their edge sets never overlap there.
  GraphView view =
      IntersectionOp(graph, IntervalSet::Point(3, 0), IntervalSet::Point(3, 2));
  // Nodes present at t0 AND t2: u2, u4.
  EXPECT_EQ(NodeLabels(graph, view), (std::vector<std::string>{"u2", "u4"}));
  EXPECT_EQ(EdgeLabels(graph, view), (std::vector<std::pair<std::string, std::string>>{
                                         {"u2", "u4"}}));
}

TEST(IntersectionTest, ExistentialWithinEachSide) {
  // Def 2.4 requires ≥1 time point in each T, not full containment.
  TemporalGraph graph = BuildPaperGraph();
  GraphView view =
      IntersectionOp(graph, IntervalSet::Range(3, 0, 1), IntervalSet::Point(3, 2));
  // u3 exists in [t0,t1] (at t0) but not at t2; u5 exists at t2 only.
  EXPECT_EQ(NodeLabels(graph, view), (std::vector<std::string>{"u2", "u4"}));
}

// --- Difference (Def 2.5) -----------------------------------------------------

TEST(DifferenceTest, PaperT0MinusT1) {
  TemporalGraph graph = BuildPaperGraph();
  GraphView view =
      DifferenceOp(graph, IntervalSet::Point(3, 0), IntervalSet::Point(3, 1));
  // Deleted edges: (u1,u3), (u3,u4). Deleted node: u3; u1 and u4 survive but
  // are endpoints of deleted edges, so Def 2.5 includes them too.
  EXPECT_EQ(NodeLabels(graph, view), (std::vector<std::string>{"u1", "u3", "u4"}));
  EXPECT_EQ(EdgeLabels(graph, view), (std::vector<std::pair<std::string, std::string>>{
                                         {"u1", "u3"}, {"u3", "u4"}}));
  // Defined on T1 (the earlier interval).
  EXPECT_EQ(view.times, IntervalSet::Point(3, 0));
}

TEST(DifferenceTest, PaperT1MinusT0) {
  TemporalGraph graph = BuildPaperGraph();
  GraphView view =
      DifferenceOp(graph, IntervalSet::Point(3, 1), IntervalSet::Point(3, 0));
  // New edge at t1: (u1,u4). No node is new at t1, but both endpoints of the
  // new edge enter the difference graph.
  EXPECT_EQ(NodeLabels(graph, view), (std::vector<std::string>{"u1", "u4"}));
  EXPECT_EQ(EdgeLabels(graph, view), (std::vector<std::pair<std::string, std::string>>{
                                         {"u1", "u4"}}));
  EXPECT_EQ(view.times, IntervalSet::Point(3, 1));
}

TEST(DifferenceTest, IsNotSymmetric) {
  TemporalGraph graph = BuildPaperGraph();
  GraphView forward =
      DifferenceOp(graph, IntervalSet::Point(3, 0), IntervalSet::Point(3, 1));
  GraphView backward =
      DifferenceOp(graph, IntervalSet::Point(3, 1), IntervalSet::Point(3, 0));
  EXPECT_NE(forward.nodes, backward.nodes);
  EXPECT_NE(forward.edges, backward.edges);
}

TEST(DifferenceTest, SelfDifferenceIsEmpty) {
  TemporalGraph graph = BuildPaperGraph();
  IntervalSet t0 = IntervalSet::Point(3, 0);
  GraphView view = DifferenceOp(graph, t0, t0);
  EXPECT_TRUE(view.nodes.empty());
  EXPECT_TRUE(view.edges.empty());
}

// --- Cross-operator algebra on random graphs ----------------------------------

class OperatorAlgebraTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OperatorAlgebraTest, IntersectionIsContainedInUnion) {
  TemporalGraph graph = BuildRandomGraph(GetParam(), 40, 8);
  IntervalSet a = IntervalSet::Range(8, 0, 3);
  IntervalSet b = IntervalSet::Range(8, 4, 7);
  GraphView union_view = UnionOp(graph, a, b);
  GraphView inter_view = IntersectionOp(graph, a, b);
  EXPECT_TRUE(std::includes(union_view.nodes.begin(), union_view.nodes.end(),
                            inter_view.nodes.begin(), inter_view.nodes.end()));
  EXPECT_TRUE(std::includes(union_view.edges.begin(), union_view.edges.end(),
                            inter_view.edges.begin(), inter_view.edges.end()));
}

TEST_P(OperatorAlgebraTest, EdgePartition) {
  // Every union edge is exactly one of: in both sides (∩), only old (old−new),
  // only new (new−old).
  TemporalGraph graph = BuildRandomGraph(GetParam(), 40, 8);
  IntervalSet a = IntervalSet::Range(8, 0, 3);
  IntervalSet b = IntervalSet::Range(8, 4, 7);
  GraphView union_view = UnionOp(graph, a, b);
  GraphView inter_view = IntersectionOp(graph, a, b);
  GraphView old_minus = DifferenceOp(graph, a, b);
  GraphView new_minus = DifferenceOp(graph, b, a);
  EXPECT_EQ(union_view.edges.size(),
            inter_view.edges.size() + old_minus.edges.size() + new_minus.edges.size());
  for (EdgeId e : inter_view.edges) {
    EXPECT_FALSE(std::binary_search(old_minus.edges.begin(), old_minus.edges.end(), e));
    EXPECT_FALSE(std::binary_search(new_minus.edges.begin(), new_minus.edges.end(), e));
  }
}

TEST_P(OperatorAlgebraTest, ProjectIsSubsetOfUnionOnSameInterval) {
  TemporalGraph graph = BuildRandomGraph(GetParam(), 40, 8);
  IntervalSet interval = IntervalSet::Range(8, 2, 5);
  GraphView projected = Project(graph, interval);
  GraphView unioned = UnionOp(graph, interval, interval);
  EXPECT_TRUE(std::includes(unioned.nodes.begin(), unioned.nodes.end(),
                            projected.nodes.begin(), projected.nodes.end()));
  EXPECT_TRUE(std::includes(unioned.edges.begin(), unioned.edges.end(),
                            projected.edges.begin(), projected.edges.end()));
}

TEST_P(OperatorAlgebraTest, EveryViewEntityExistsInItsInterval) {
  TemporalGraph graph = BuildRandomGraph(GetParam(), 40, 8);
  IntervalSet a = IntervalSet::Range(8, 1, 2);
  IntervalSet b = IntervalSet::Range(8, 5, 6);
  for (const GraphView& view : {UnionOp(graph, a, b), IntersectionOp(graph, a, b),
                                DifferenceOp(graph, a, b)}) {
    for (NodeId n : view.nodes) {
      EXPECT_TRUE(graph.node_presence().RowAnyMasked(n, view.times.bits()))
          << "node " << n << " has no presence in the view interval";
    }
    for (EdgeId e : view.edges) {
      EXPECT_TRUE(graph.edge_presence().RowAnyMasked(e, view.times.bits()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorAlgebraTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(OperatorDeath, DomainMismatchAborts) {
  TemporalGraph graph = BuildPaperGraph();
  EXPECT_DEATH(Project(graph, IntervalSet::Point(4, 0)), "different time domain");
}

}  // namespace
}  // namespace graphtempo
