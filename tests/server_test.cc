#include "server/server.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "accel/backend.h"
#include "engine/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/http.h"
#include "server/ingest.h"
#include "test_graphs.h"
#include "util/json.h"

namespace graphtempo::server {
namespace {

using namespace std::chrono_literals;

/// Fixture owning a paper-example graph, engine and running server.
class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : graph_(graphtempo::testing::BuildPaperGraph()), engine_(&graph_) {}

  void StartServer(ServerConfig config = {}) {
    server_.emplace(&graph_, &engine_, config);
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
    ASSERT_GT(server_->port(), 0);
  }

  HttpResponse Fetch(const std::string& method, const std::string& path,
                     const std::string& body = "") {
    std::string error;
    std::optional<HttpResponse> response =
        HttpFetch("127.0.0.1", server_->port(), method, path, body, &error);
    EXPECT_TRUE(response.has_value()) << error;
    return response.value_or(HttpResponse{});
  }

  json::Value FetchJson(const std::string& method, const std::string& path,
                        const std::string& body = "", int expect_status = 200) {
    HttpResponse response = Fetch(method, path, body);
    EXPECT_EQ(response.status, expect_status) << response.body;
    std::string error;
    std::optional<json::Value> parsed = json::Parse(response.body, &error);
    EXPECT_TRUE(parsed.has_value()) << error << ": " << response.body;
    return parsed.has_value() ? std::move(*parsed) : json::Value::Object();
  }

  /// Polls /stats until the ingestion writer has grown the time domain.
  void WaitForTimePoints(std::uint64_t expected) {
    for (int i = 0; i < 200; ++i) {
      json::Value stats = FetchJson("GET", "/stats");
      if (stats.Find("num_times")->AsUint64().value_or(0) >= expected) return;
      std::this_thread::sleep_for(10ms);
    }
    FAIL() << "ingestion writer never reached " << expected << " time points";
  }

  TemporalGraph graph_;
  engine::QueryEngine engine_;
  std::optional<Server> server_;
};

TEST_F(ServerTest, HealthzAnswersOk) {
  StartServer();
  HttpResponse response = Fetch("GET", "/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok\n");
}

TEST_F(ServerTest, MetricsServesRegistrySnapshot) {
  StartServer();
  json::Value metrics = FetchJson("GET", "/metrics");
  EXPECT_NE(metrics.Find("generation"), nullptr);
  EXPECT_NE(metrics.Find("counters"), nullptr);
  EXPECT_NE(metrics.Find("histograms"), nullptr);
}

TEST_F(ServerTest, UnknownPathIs404WrongMethodIs405) {
  StartServer();
  EXPECT_EQ(Fetch("GET", "/nope").status, 404);
  EXPECT_EQ(Fetch("POST", "/healthz").status, 405);
  EXPECT_EQ(Fetch("GET", "/query").status, 405);
}

TEST_F(ServerTest, BadRequestsAre400) {
  StartServer();
  EXPECT_EQ(Fetch("POST", "/query", "{not json").status, 400);
  EXPECT_EQ(Fetch("POST", "/query", R"({"attrs":["gender"]})").status, 400);
  EXPECT_EQ(Fetch("POST", "/query", R"({"t1":"t9","attrs":["gender"]})").status, 400);
  EXPECT_EQ(Fetch("POST", "/ingest", "bogus line\n").status, 400);
}

// The differential guarantee: a wire-served answer is byte-identical to
// serializing a direct engine call for the same spec. Any drift between the
// server path and the library path fails here.
TEST_F(ServerTest, WireAnswersMatchDirectEngineCallsByteForByte) {
  StartServer();
  const char* requests[] = {
      R"({"op":"union","t1":"t0","t2":"t1","attrs":["gender","publications"]})",
      R"({"op":"intersection","t1":"t0","t2":"t1","attrs":["gender"]})",
      R"({"op":"difference","t1":"t1","t2":"t0","attrs":["gender"],"semantics":"all"})",
      R"({"op":"project","t1":"t0..t2","attrs":["publications"]})",
  };
  TemporalGraph reference_graph = graphtempo::testing::BuildPaperGraph();
  engine::QueryEngine reference_engine(&reference_graph);
  for (const char* request : requests) {
    HttpResponse served = Fetch("POST", "/query", request);
    ASSERT_EQ(served.status, 200) << request << ": " << served.body;

    std::string error;
    std::optional<json::Value> parsed = json::Parse(request, &error);
    ASSERT_TRUE(parsed.has_value());
    engine::wire::RequestOptions options;
    std::optional<engine::QuerySpec> spec =
        engine::wire::BindQuerySpec(reference_graph, *parsed, &options, &error);
    ASSERT_TRUE(spec.has_value()) << error;
    std::string direct = engine::wire::ResultToJson(
        reference_graph, *spec, reference_engine.Plan(*spec),
        reference_engine.Execute(*spec), options.top);
    EXPECT_EQ(served.body, direct) << request;
  }
}

TEST_F(ServerTest, ExplainReturnsPlanNotRows) {
  StartServer();
  json::Value plan = FetchJson(
      "POST", "/query", R"({"t1":"t0","attrs":["gender"],"explain":true})");
  EXPECT_NE(plan.Find("route"), nullptr);
  EXPECT_NE(plan.Find("steps"), nullptr);
  EXPECT_EQ(plan.Find("nodes"), nullptr);  // a plan, not a result
}

TEST_F(ServerTest, IngestAppliesAsynchronouslyAndServesNewPoint) {
  StartServer();
  json::Value accepted = FetchJson(
      "POST", "/ingest", "t t3\ne Mary John t3\nn Anna t3\n", 202);
  EXPECT_EQ(accepted.Find("accepted")->AsUint64().value_or(0), 3u);
  WaitForTimePoints(4);
  HttpResponse response =
      Fetch("POST", "/query", R"({"op":"project","t1":"t3","attrs":["gender"]})");
  EXPECT_EQ(response.status, 200) << response.body;
}

TEST_F(ServerTest, AppendOnlyIngestInvalidatesNoCachedAnswer) {
  StartServer();
  const char* old_interval_query =
      R"({"op":"union","t1":"t0","t2":"t1","attrs":["gender"]})";
  HttpResponse before = Fetch("POST", "/query", old_interval_query);
  ASSERT_EQ(before.status, 200);
  FetchJson("POST", "/ingest", "t t3\ne Mary John t3\n", 202);
  WaitForTimePoints(4);
  HttpResponse after = Fetch("POST", "/query", old_interval_query);
  ASSERT_EQ(after.status, 200);
  EXPECT_EQ(before.body, after.body);  // the old interval is untouched
  engine::QueryEngine::CacheStats stats = engine_.cache_stats();
  EXPECT_EQ(stats.invalidations, 0u);  // per-entry invalidation spared it
  EXPECT_GE(stats.hits, 1u);           // and the second answer was a cache hit
}

TEST_F(ServerTest, RateLimiterAnswers429) {
  ServerConfig config;
  config.rate_limit_qps = 0.001;  // refills far slower than the test runs
  config.rate_limit_burst = 2;
  StartServer(config);
  const char* query = R"({"t1":"t0","attrs":["gender"]})";
  EXPECT_EQ(Fetch("POST", "/query", query).status, 200);
  EXPECT_EQ(Fetch("POST", "/query", query).status, 200);
  EXPECT_EQ(Fetch("POST", "/query", query).status, 429);  // bucket empty
  EXPECT_EQ(Fetch("GET", "/metrics").status, 200);  // other endpoints unaffected
}

TEST_F(ServerTest, ShutdownEndpointRequestsShutdown) {
  StartServer();
  EXPECT_FALSE(server_->shutdown_requested());
  json::Value response = FetchJson("POST", "/shutdown");
  EXPECT_TRUE(response.Find("shutting_down")->AsBool());
  EXPECT_TRUE(server_->shutdown_requested());
  server_->Shutdown();
  EXPECT_FALSE(server_->running());
}

TEST_F(ServerTest, SseStreamDeliversEvolutionEvents) {
  StartServer();
  std::string error;
  int fd = ConnectTcp("127.0.0.1", server_->port(), &error);
  ASSERT_GE(fd, 0) << error;
  std::string subscribe = "GET /events HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n";
  ASSERT_TRUE(WriteRaw(fd, subscribe));

  auto read_until = [&](const std::string& needle, std::string* buffer) {
    auto deadline = std::chrono::steady_clock::now() + 5s;
    while (buffer->find(needle) == std::string::npos) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      char chunk[2048];
      ssize_t got = ::read(fd, chunk, sizeof(chunk));
      if (got <= 0) return false;
      buffer->append(chunk, static_cast<std::size_t>(got));
    }
    return true;
  };
  std::string buffer;
  ASSERT_TRUE(read_until("event: hello", &buffer)) << buffer;

  FetchJson("POST", "/ingest", "t t3\ne Mary John t3\n", 202);
  ASSERT_TRUE(read_until("event: evolution", &buffer)) << buffer;
  // The payload carries growth/shrinkage/stability between t2 and t3.
  std::size_t data_at = buffer.find("data: ", buffer.find("event: evolution"));
  ASSERT_NE(data_at, std::string::npos);
  std::size_t line_end = buffer.find('\n', data_at);
  std::string payload = buffer.substr(data_at + 6, line_end - data_at - 6);
  std::optional<json::Value> event = json::Parse(payload, &error);
  ASSERT_TRUE(event.has_value()) << error << ": " << payload;
  EXPECT_EQ(event->Find("latest")->AsString(), "t3");
  EXPECT_NE(event->Find("nodes")->Find("stability"), nullptr);
  EXPECT_NE(event->Find("edges")->Find("growth"), nullptr);
  ::close(fd);
}

TEST_F(ServerTest, IngestLogReplayRestoresState) {
  std::string log_path = ::testing::TempDir() + "/gt_ingest_log_" +
                         std::to_string(getpid()) + ".log";
  std::remove(log_path.c_str());
  {
    ServerConfig config;
    config.ingest_log_path = log_path;
    StartServer(config);
    FetchJson("POST", "/ingest", "t t3\ne Mary John t3\n", 202);
    WaitForTimePoints(4);
    server_->Shutdown();
    server_.reset();
  }
  // A fresh graph + server over the same log resumes from the same state.
  TemporalGraph restarted_graph = graphtempo::testing::BuildPaperGraph();
  engine::QueryEngine restarted_engine(&restarted_graph);
  ServerConfig config;
  config.ingest_log_path = log_path;
  Server restarted(&restarted_graph, &restarted_engine, config);
  std::string error;
  ASSERT_TRUE(restarted.Start(&error)) << error;
  EXPECT_EQ(restarted_graph.num_times(), 4u);
  EXPECT_TRUE(restarted_graph.FindTime("t3").has_value());
  restarted.Shutdown();
  std::remove(log_path.c_str());
}

TEST_F(ServerTest, MalformedIngestBatchReportsLineNumber) {
  StartServer();
  HttpResponse response = Fetch("POST", "/ingest", "t t3\nzz what\n");
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("line 2"), std::string::npos) << response.body;
}

TEST_F(ServerTest, StatsReportsActiveComputeBackend) {
  StartServer();
  json::Value stats = FetchJson("GET", "/stats");
  const json::Value* backend = stats.Find("backend");
  ASSERT_NE(backend, nullptr) << "/stats lost the backend field";
  ASSERT_TRUE(backend->is_string());
  // Round-trip: the served name is exactly what the accel registry reports.
  EXPECT_EQ(backend->AsString(), accel::ActiveBackendName());
}

TEST_F(ServerTest, DuplicateTimePointIngestIsDroppedNotFatal) {
  StartServer();
  FetchJson("POST", "/ingest", "t t1\nt t3\n", 202);  // t1 already exists
  WaitForTimePoints(4);  // t3 still lands; the duplicate is skipped
  json::Value stats = FetchJson("GET", "/stats");
  EXPECT_EQ(stats.Find("num_times")->AsUint64().value_or(0), 4u);
}

TEST_F(ServerTest, RequestIdHeaderIsEchoedOrAssigned) {
  StartServer();
  // Without a client id the server assigns a monotonic numeric one.
  HttpResponse bare = Fetch("GET", "/healthz");
  std::string assigned = bare.Header("x-gt-request-id");
  ASSERT_FALSE(assigned.empty());
  EXPECT_EQ(assigned.find_first_not_of("0123456789"), std::string::npos)
      << assigned;

  // A client-supplied X-GT-Request-Id is echoed back verbatim.
  std::string error;
  std::optional<HttpResponse> tagged =
      HttpFetch("127.0.0.1", server_->port(), "GET", "/healthz", "", &error,
                10000, {{"X-GT-Request-Id", "smoke-abc-7"}});
  ASSERT_TRUE(tagged.has_value()) << error;
  EXPECT_EQ(tagged->Header("x-gt-request-id"), "smoke-abc-7");

  // Unsafe characters are replaced before the id enters logs or headers.
  std::optional<HttpResponse> hostile =
      HttpFetch("127.0.0.1", server_->port(), "GET", "/healthz", "", &error,
                10000, {{"X-GT-Request-Id", "a b\"c"}});
  ASSERT_TRUE(hostile.has_value()) << error;
  EXPECT_EQ(hostile->Header("x-gt-request-id"), "a_b_c");
}

TEST_F(ServerTest, DebugTraceCarriesRequestIdsWithoutTraceMode) {
  StartServer();
  // The flight recorder is always on: no TraceSession exists, yet the spans
  // for a served request must be drainable afterwards with its request id.
  ASSERT_FALSE(obs::TracingActive());
  HttpResponse query =
      Fetch("POST", "/query", R"({"t1":"t0","attrs":["gender"]})");
  ASSERT_EQ(query.status, 200) << query.body;
  const std::string id_text = query.Header("x-gt-request-id");
  ASSERT_FALSE(id_text.empty());
  const std::uint64_t id = std::stoull(id_text);

  json::Value trace = FetchJson("GET", "/debug/trace");
  const json::Value* events = trace.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool found_request = false;
  bool found_execute = false;
  for (const json::Value& event : events->AsArray()) {
    const json::Value* name = event.Find("name");
    if (name == nullptr || !name->is_string()) continue;
    if (name->AsString() == "server/execute") found_execute = true;
    if (name->AsString() != "server/request") continue;
    const json::Value* args = event.Find("args");
    const json::Value* request = args ? args->Find("request") : nullptr;
    if (request != nullptr && request->AsUint64().value_or(0) == id) {
      found_request = true;
    }
  }
  EXPECT_TRUE(found_request)
      << "request " << id << " left no server/request span in the flight ring";
  EXPECT_TRUE(found_execute) << "phase spans missing from the flight ring";

  // A bogus window parameter is rejected, a valid one honoured.
  EXPECT_EQ(Fetch("GET", "/debug/trace?ms=banana").status, 400);
  EXPECT_EQ(Fetch("GET", "/debug/trace?ms=60000").status, 200);
}

TEST_F(ServerTest, MetricsNegotiatesPrometheusExposition) {
  StartServer();
  ASSERT_EQ(Fetch("POST", "/query", R"({"t1":"t0","attrs":["gender"]})").status,
            200);

  HttpResponse prom = Fetch("GET", "/metrics?format=prometheus");
  EXPECT_EQ(prom.status, 200);
  EXPECT_NE(prom.content_type.find("text/plain; version=0.0.4"),
            std::string::npos)
      << prom.content_type;
  EXPECT_EQ(prom.body.rfind("# TYPE gt_", 0), 0u) << prom.body.substr(0, 80);
  EXPECT_NE(prom.body.find("gt_server_query_latency_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(prom.body.find("gt_server_query_latency_us_count"),
            std::string::npos);

  // Accept-header negotiation selects the exposition; the default stays JSON
  // so existing clients keep working.
  std::string error;
  std::optional<HttpResponse> accepted =
      HttpFetch("127.0.0.1", server_->port(), "GET", "/metrics", "", &error,
                10000, {{"Accept", "text/plain"}});
  ASSERT_TRUE(accepted.has_value()) << error;
  EXPECT_EQ(accepted->body.rfind("# TYPE gt_", 0), 0u);
  json::Value json_metrics = FetchJson("GET", "/metrics");
  EXPECT_NE(json_metrics.Find("counters"), nullptr);
}

// The observability differential: a slow-log record must agree with the served
// answer (fingerprint, route), the accel registry (backend), and the engine's
// own cache counters. Any attribution drift between the slow log and reality
// fails here.
TEST_F(ServerTest, SlowLogRecordMatchesTheServedAnswer) {
  ServerConfig config;
  config.slow_query_ms = 0;  // threshold 0: every query is "slow" (ring-only)
  StartServer(config);
  engine::QueryEngine::CacheStats before = engine_.cache_stats();
  HttpResponse query = Fetch(
      "POST", "/query", R"({"op":"union","t1":"t0","t2":"t1","attrs":["gender"]})");
  ASSERT_EQ(query.status, 200) << query.body;
  engine::QueryEngine::CacheStats after = engine_.cache_stats();
  const std::string request_id = query.Header("x-gt-request-id");
  std::string error;
  std::optional<json::Value> answer = json::Parse(query.body, &error);
  ASSERT_TRUE(answer.has_value()) << error;

  json::Value records = FetchJson("GET", "/debug/slow");
  ASSERT_TRUE(records.is_array()) << "slow ring must serve a JSON array";
  const json::Value* record = nullptr;
  for (const json::Value& candidate : records.AsArray()) {
    const json::Value* id = candidate.Find("request_id");
    if (id != nullptr &&
        std::to_string(id->AsUint64().value_or(0)) == request_id) {
      record = &candidate;
    }
  }
  ASSERT_NE(record, nullptr) << "slow-query ring lost request " << request_id;

  EXPECT_EQ(record->Find("fingerprint")->AsString(),
            answer->Find("fingerprint")->AsString());
  EXPECT_EQ(record->Find("route")->AsString(),
            answer->Find("route")->AsString());
  EXPECT_EQ(record->Find("backend")->AsString(), accel::ActiveBackendName());
  EXPECT_GT(record->Find("total_us")->AsUint64().value_or(0), 0u);
  EXPECT_FALSE(record->Find("spec")->AsString().empty());

  // The recorded cache outcome must match the engine's counter movement.
  const std::string cache = record->Find("cache")->AsString();
  if (cache == "miss") {
    EXPECT_EQ(after.misses, before.misses + 1);
  } else if (cache == "hit") {
    EXPECT_EQ(after.hits, before.hits + 1);
  } else {
    EXPECT_EQ(cache, "bypass");
  }

  // Per-phase timings must include the server-side phases.
  const json::Value* phases = record->Find("phases");
  ASSERT_NE(phases, nullptr);
  for (const char* phase : {"server/parse", "server/bind", "server/execute",
                            "server/serialize"}) {
    const json::Value* entry = phases->Find(phase);
    ASSERT_NE(entry, nullptr) << phase << " missing from the slow record";
    EXPECT_GE(entry->Find("count")->AsUint64().value_or(0), 1u) << phase;
  }
}

TEST_F(ServerTest, FastQueriesStayOutOfTheSlowLog) {
  ServerConfig config;
  config.slow_query_ms = 60000;  // nothing in this test takes a minute
  StartServer(config);
  ASSERT_EQ(Fetch("POST", "/query", R"({"t1":"t0","attrs":["gender"]})").status,
            200);
  json::Value records = FetchJson("GET", "/debug/slow");
  ASSERT_TRUE(records.is_array());
  EXPECT_TRUE(records.AsArray().empty()) << "threshold was not honoured";
}

TEST_F(ServerTest, SlowLogFileReceivesRecordsOnShutdown) {
  const std::string path = ::testing::TempDir() + "/gt_slow_log_" +
                           std::to_string(getpid()) + ".log";
  std::remove(path.c_str());
  {
    ServerConfig config;
    config.slow_query_ms = 0;
    config.slow_log_path = path;
    StartServer(config);
    ASSERT_EQ(
        Fetch("POST", "/query", R"({"t1":"t0","attrs":["gender"]})").status,
        200);
    server_->Shutdown();  // drains the writer; every record must be on disk
    server_.reset();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::string line;
  ASSERT_TRUE(std::getline(in, line)) << "slow log file is empty";
  std::string error;
  std::optional<json::Value> record = json::Parse(line, &error);
  ASSERT_TRUE(record.has_value()) << error << ": " << line;
  EXPECT_NE(record->Find("fingerprint"), nullptr);
  EXPECT_NE(record->Find("phases"), nullptr);
  std::remove(path.c_str());
}

TEST_F(ServerTest, KeepAliveServesManyRequestsOverOneConnection) {
  StartServer();
  HttpClient client("127.0.0.1", server_->port());
  std::string error;
  const std::string request = R"({"t1":"t0","attrs":["gender"]})";

  // The reference bytes over a one-shot (Connection: close) connection.
  const HttpResponse reference = Fetch("POST", "/query", request);
  ASSERT_EQ(reference.status, 200);

  for (int i = 0; i < 5; ++i) {
    std::optional<HttpResponse> response =
        client.Fetch("POST", "/query", request, &error);
    ASSERT_TRUE(response.has_value()) << error;
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(response->body, reference.body);  // identical bytes either way
    std::optional<HttpResponse> health = client.Fetch("GET", "/healthz", "", &error);
    ASSERT_TRUE(health.has_value()) << error;
    EXPECT_EQ(health->status, 200);
  }
  EXPECT_EQ(client.connects(), 1u);  // ten round trips, one TCP connect

  // Close() really drops the socket; the next round trip reconnects.
  client.Close();
  std::optional<HttpResponse> again = client.Fetch("GET", "/healthz", "", &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(client.connects(), 2u);
}

TEST_F(ServerTest, BatchWindowKeepsAnswersByteIdentical) {
  ServerConfig config;
  config.batch_window_us = 2000;
  config.worker_threads = 4;
  StartServer(config);

  // Ground truth from a direct engine call through the same wire layer.
  TemporalGraph reference_graph = graphtempo::testing::BuildPaperGraph();
  engine::QueryEngine reference_engine(&reference_graph);
  const std::string request =
      R"({"op":"union","t1":"t0","t2":"t1","attrs":["gender","publications"]})";
  std::string error;
  std::optional<json::Value> parsed = json::Parse(request, &error);
  ASSERT_TRUE(parsed.has_value());
  engine::wire::RequestOptions options;
  std::optional<engine::QuerySpec> spec =
      engine::wire::BindQuerySpec(reference_graph, *parsed, &options, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  const std::string direct = engine::wire::ResultToJson(
      reference_graph, *spec, reference_engine.Plan(*spec),
      reference_engine.Execute(*spec), options.top);

  // Concurrent identical queries land in shared gather windows; every served
  // body must still be byte-identical to the direct answer.
  const obs::MetricsSnapshot before = obs::Registry::Instance().Snapshot();
  constexpr int kClients = 8;
  constexpr int kRounds = 10;
  std::atomic<int> divergences{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      HttpClient client("127.0.0.1", server_->port());
      for (int i = 0; i < kRounds; ++i) {
        std::string fetch_error;
        std::optional<HttpResponse> response =
            client.Fetch("POST", "/query", request, &fetch_error);
        if (!response.has_value() || response->status != 200 ||
            response->body != direct) {
          divergences.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  const obs::MetricsSnapshot after = obs::Registry::Instance().Snapshot();

  EXPECT_EQ(divergences.load(), 0);
  EXPECT_GT(after.CounterValue("server/batch_windows") -
                before.CounterValue("server/batch_windows"),
            0u);
}

TEST_F(ServerTest, CrlfTerminatedIngestBodyCreatesCleanLabels) {
  StartServer();
  // HTTP clients routinely send CRLF-terminated bodies. The carriage returns
  // must not leak into labels: "t t3\r" means time point "t3", not "t3\r" —
  // before the fix the stray \r produced a label no query could ever name.
  json::Value accepted = FetchJson("POST", "/ingest",
                                   "t t3\r\ne Mary John t3\r\nn Anna t3\r\n", 202);
  EXPECT_EQ(accepted.Find("accepted")->AsUint64().value_or(0), 3u);
  WaitForTimePoints(4);
  EXPECT_EQ(graph_.time_label(3), "t3");

  // The new point is addressable by its clean label end to end.
  HttpResponse response =
      Fetch("POST", "/query", R"({"op":"project","t1":"t3","attrs":["gender"]})");
  EXPECT_EQ(response.status, 200) << response.body;
}

TEST(IngestParseTest, ParseIngestLineStripsCarriageReturn) {
  std::string error;
  std::optional<IngestRecord> record = ParseIngestLine("t t9\r", &error);
  ASSERT_TRUE(record.has_value()) << error;
  EXPECT_EQ(record->kind, IngestRecord::Kind::kAppendTime);
  EXPECT_EQ(record->time, "t9");

  // Only the line terminator is stripped, whichever flavour it came in.
  record = ParseIngestLine("n Anna t9\r\n", &error);
  ASSERT_TRUE(record.has_value()) << error;
  EXPECT_EQ(record->kind, IngestRecord::Kind::kNodePresent);
  EXPECT_EQ(record->time, "t9");
}

TEST_F(ServerTest, OverCapacityQueryRidesOpenGatherWindow) {
  ServerConfig config;
  config.max_inflight = 1;          // the leader alone fills the capacity
  config.batch_window_us = 200000;  // long window: followers arrive inside it
  config.worker_threads = 8;        // every rider gets a worker immediately
  StartServer(config);

  // The first query leads a 200 ms gather window; once it is open, every
  // later query is over capacity and must ride that window (one gathered
  // batch is one in-flight unit) instead of bouncing with 503. The riders
  // start after a delay well inside the window so they deterministically
  // find it open — an arrival in the sliver before the leader opens it may
  // still legitimately 503 (no window to ride yet).
  const std::string request = R"({"op":"union","t1":"t0","t2":"t1","attrs":["gender"]})";
  const obs::MetricsSnapshot before = obs::Registry::Instance().Snapshot();
  constexpr int kRiders = 4;
  std::atomic<int> ok{0};
  std::atomic<int> rejected{0};
  auto fetch = [&] {
    std::string error;
    std::optional<HttpResponse> response =
        HttpFetch("127.0.0.1", server_->port(), "POST", "/query", request, &error);
    ASSERT_TRUE(response.has_value()) << error;
    if (response->status == 200) ok.fetch_add(1);
    if (response->status == 503) rejected.fetch_add(1);
  };
  std::thread leader(fetch);
  std::this_thread::sleep_for(60ms);  // the leader is now mid-window
  std::vector<std::thread> riders;
  riders.reserve(kRiders);
  for (int c = 0; c < kRiders; ++c) riders.emplace_back(fetch);
  for (std::thread& rider : riders) rider.join();
  leader.join();
  const obs::MetricsSnapshot after = obs::Registry::Instance().Snapshot();

  EXPECT_EQ(ok.load(), kRiders + 1);
  EXPECT_EQ(rejected.load(), 0);
  EXPECT_GT(after.CounterValue("server/batch_riders") -
                before.CounterValue("server/batch_riders"),
            0u);
}

TEST_F(ServerTest, CapacityStillEnforcedWithoutAnOpenWindow) {
  ServerConfig config;
  config.max_inflight = 1;
  config.batch_window_us = 0;  // gathering disabled: no window to ride
  StartServer(config);

  // Hold the single admission slot with a slow filtered query... there is no
  // cheap way to park a query server-side, so approximate: hammer with
  // enough concurrency that at least one pair overlaps. Over-capacity
  // arrivals must get 503 (the historical contract), never hang or crash.
  const std::string request = R"({"op":"union","t1":"t0","t2":"t1","attrs":["gender"]})";
  constexpr int kClients = 8;
  constexpr int kRounds = 20;
  std::atomic<int> ok{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      HttpClient client("127.0.0.1", server_->port());
      for (int i = 0; i < kRounds; ++i) {
        std::string error;
        std::optional<HttpResponse> response =
            client.Fetch("POST", "/query", request, &error);
        if (!response.has_value()) continue;
        if (response->status == 200) ok.fetch_add(1);
        if (response->status == 503) rejected.fetch_add(1);
      }
    });
  }
  for (std::thread& client : clients) client.join();

  // Every request resolved one way or the other, and at least some won the
  // race (an all-503 run would mean the slot leaked).
  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(ok.load() + rejected.load(), kClients * kRounds);
}

}  // namespace
}  // namespace graphtempo::server
