#include "server/server.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "accel/backend.h"
#include "engine/wire.h"
#include "server/http.h"
#include "test_graphs.h"
#include "util/json.h"

namespace graphtempo::server {
namespace {

using namespace std::chrono_literals;

/// Fixture owning a paper-example graph, engine and running server.
class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : graph_(graphtempo::testing::BuildPaperGraph()), engine_(&graph_) {}

  void StartServer(ServerConfig config = {}) {
    server_.emplace(&graph_, &engine_, config);
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
    ASSERT_GT(server_->port(), 0);
  }

  HttpResponse Fetch(const std::string& method, const std::string& path,
                     const std::string& body = "") {
    std::string error;
    std::optional<HttpResponse> response =
        HttpFetch("127.0.0.1", server_->port(), method, path, body, &error);
    EXPECT_TRUE(response.has_value()) << error;
    return response.value_or(HttpResponse{});
  }

  json::Value FetchJson(const std::string& method, const std::string& path,
                        const std::string& body = "", int expect_status = 200) {
    HttpResponse response = Fetch(method, path, body);
    EXPECT_EQ(response.status, expect_status) << response.body;
    std::string error;
    std::optional<json::Value> parsed = json::Parse(response.body, &error);
    EXPECT_TRUE(parsed.has_value()) << error << ": " << response.body;
    return parsed.has_value() ? std::move(*parsed) : json::Value::Object();
  }

  /// Polls /stats until the ingestion writer has grown the time domain.
  void WaitForTimePoints(std::uint64_t expected) {
    for (int i = 0; i < 200; ++i) {
      json::Value stats = FetchJson("GET", "/stats");
      if (stats.Find("num_times")->AsUint64().value_or(0) >= expected) return;
      std::this_thread::sleep_for(10ms);
    }
    FAIL() << "ingestion writer never reached " << expected << " time points";
  }

  TemporalGraph graph_;
  engine::QueryEngine engine_;
  std::optional<Server> server_;
};

TEST_F(ServerTest, HealthzAnswersOk) {
  StartServer();
  HttpResponse response = Fetch("GET", "/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok\n");
}

TEST_F(ServerTest, MetricsServesRegistrySnapshot) {
  StartServer();
  json::Value metrics = FetchJson("GET", "/metrics");
  EXPECT_NE(metrics.Find("generation"), nullptr);
  EXPECT_NE(metrics.Find("counters"), nullptr);
  EXPECT_NE(metrics.Find("histograms"), nullptr);
}

TEST_F(ServerTest, UnknownPathIs404WrongMethodIs405) {
  StartServer();
  EXPECT_EQ(Fetch("GET", "/nope").status, 404);
  EXPECT_EQ(Fetch("POST", "/healthz").status, 405);
  EXPECT_EQ(Fetch("GET", "/query").status, 405);
}

TEST_F(ServerTest, BadRequestsAre400) {
  StartServer();
  EXPECT_EQ(Fetch("POST", "/query", "{not json").status, 400);
  EXPECT_EQ(Fetch("POST", "/query", R"({"attrs":["gender"]})").status, 400);
  EXPECT_EQ(Fetch("POST", "/query", R"({"t1":"t9","attrs":["gender"]})").status, 400);
  EXPECT_EQ(Fetch("POST", "/ingest", "bogus line\n").status, 400);
}

// The differential guarantee: a wire-served answer is byte-identical to
// serializing a direct engine call for the same spec. Any drift between the
// server path and the library path fails here.
TEST_F(ServerTest, WireAnswersMatchDirectEngineCallsByteForByte) {
  StartServer();
  const char* requests[] = {
      R"({"op":"union","t1":"t0","t2":"t1","attrs":["gender","publications"]})",
      R"({"op":"intersection","t1":"t0","t2":"t1","attrs":["gender"]})",
      R"({"op":"difference","t1":"t1","t2":"t0","attrs":["gender"],"semantics":"all"})",
      R"({"op":"project","t1":"t0..t2","attrs":["publications"]})",
  };
  TemporalGraph reference_graph = graphtempo::testing::BuildPaperGraph();
  engine::QueryEngine reference_engine(&reference_graph);
  for (const char* request : requests) {
    HttpResponse served = Fetch("POST", "/query", request);
    ASSERT_EQ(served.status, 200) << request << ": " << served.body;

    std::string error;
    std::optional<json::Value> parsed = json::Parse(request, &error);
    ASSERT_TRUE(parsed.has_value());
    engine::wire::RequestOptions options;
    std::optional<engine::QuerySpec> spec =
        engine::wire::BindQuerySpec(reference_graph, *parsed, &options, &error);
    ASSERT_TRUE(spec.has_value()) << error;
    std::string direct = engine::wire::ResultToJson(
        reference_graph, *spec, reference_engine.Plan(*spec),
        reference_engine.Execute(*spec), options.top);
    EXPECT_EQ(served.body, direct) << request;
  }
}

TEST_F(ServerTest, ExplainReturnsPlanNotRows) {
  StartServer();
  json::Value plan = FetchJson(
      "POST", "/query", R"({"t1":"t0","attrs":["gender"],"explain":true})");
  EXPECT_NE(plan.Find("route"), nullptr);
  EXPECT_NE(plan.Find("steps"), nullptr);
  EXPECT_EQ(plan.Find("nodes"), nullptr);  // a plan, not a result
}

TEST_F(ServerTest, IngestAppliesAsynchronouslyAndServesNewPoint) {
  StartServer();
  json::Value accepted = FetchJson(
      "POST", "/ingest", "t t3\ne Mary John t3\nn Anna t3\n", 202);
  EXPECT_EQ(accepted.Find("accepted")->AsUint64().value_or(0), 3u);
  WaitForTimePoints(4);
  HttpResponse response =
      Fetch("POST", "/query", R"({"op":"project","t1":"t3","attrs":["gender"]})");
  EXPECT_EQ(response.status, 200) << response.body;
}

TEST_F(ServerTest, AppendOnlyIngestInvalidatesNoCachedAnswer) {
  StartServer();
  const char* old_interval_query =
      R"({"op":"union","t1":"t0","t2":"t1","attrs":["gender"]})";
  HttpResponse before = Fetch("POST", "/query", old_interval_query);
  ASSERT_EQ(before.status, 200);
  FetchJson("POST", "/ingest", "t t3\ne Mary John t3\n", 202);
  WaitForTimePoints(4);
  HttpResponse after = Fetch("POST", "/query", old_interval_query);
  ASSERT_EQ(after.status, 200);
  EXPECT_EQ(before.body, after.body);  // the old interval is untouched
  engine::QueryEngine::CacheStats stats = engine_.cache_stats();
  EXPECT_EQ(stats.invalidations, 0u);  // per-entry invalidation spared it
  EXPECT_GE(stats.hits, 1u);           // and the second answer was a cache hit
}

TEST_F(ServerTest, RateLimiterAnswers429) {
  ServerConfig config;
  config.rate_limit_qps = 0.001;  // refills far slower than the test runs
  config.rate_limit_burst = 2;
  StartServer(config);
  const char* query = R"({"t1":"t0","attrs":["gender"]})";
  EXPECT_EQ(Fetch("POST", "/query", query).status, 200);
  EXPECT_EQ(Fetch("POST", "/query", query).status, 200);
  EXPECT_EQ(Fetch("POST", "/query", query).status, 429);  // bucket empty
  EXPECT_EQ(Fetch("GET", "/metrics").status, 200);  // other endpoints unaffected
}

TEST_F(ServerTest, ShutdownEndpointRequestsShutdown) {
  StartServer();
  EXPECT_FALSE(server_->shutdown_requested());
  json::Value response = FetchJson("POST", "/shutdown");
  EXPECT_TRUE(response.Find("shutting_down")->AsBool());
  EXPECT_TRUE(server_->shutdown_requested());
  server_->Shutdown();
  EXPECT_FALSE(server_->running());
}

TEST_F(ServerTest, SseStreamDeliversEvolutionEvents) {
  StartServer();
  std::string error;
  int fd = ConnectTcp("127.0.0.1", server_->port(), &error);
  ASSERT_GE(fd, 0) << error;
  std::string subscribe = "GET /events HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n";
  ASSERT_TRUE(WriteRaw(fd, subscribe));

  auto read_until = [&](const std::string& needle, std::string* buffer) {
    auto deadline = std::chrono::steady_clock::now() + 5s;
    while (buffer->find(needle) == std::string::npos) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      char chunk[2048];
      ssize_t got = ::read(fd, chunk, sizeof(chunk));
      if (got <= 0) return false;
      buffer->append(chunk, static_cast<std::size_t>(got));
    }
    return true;
  };
  std::string buffer;
  ASSERT_TRUE(read_until("event: hello", &buffer)) << buffer;

  FetchJson("POST", "/ingest", "t t3\ne Mary John t3\n", 202);
  ASSERT_TRUE(read_until("event: evolution", &buffer)) << buffer;
  // The payload carries growth/shrinkage/stability between t2 and t3.
  std::size_t data_at = buffer.find("data: ", buffer.find("event: evolution"));
  ASSERT_NE(data_at, std::string::npos);
  std::size_t line_end = buffer.find('\n', data_at);
  std::string payload = buffer.substr(data_at + 6, line_end - data_at - 6);
  std::optional<json::Value> event = json::Parse(payload, &error);
  ASSERT_TRUE(event.has_value()) << error << ": " << payload;
  EXPECT_EQ(event->Find("latest")->AsString(), "t3");
  EXPECT_NE(event->Find("nodes")->Find("stability"), nullptr);
  EXPECT_NE(event->Find("edges")->Find("growth"), nullptr);
  ::close(fd);
}

TEST_F(ServerTest, IngestLogReplayRestoresState) {
  std::string log_path = ::testing::TempDir() + "/gt_ingest_log_" +
                         std::to_string(getpid()) + ".log";
  std::remove(log_path.c_str());
  {
    ServerConfig config;
    config.ingest_log_path = log_path;
    StartServer(config);
    FetchJson("POST", "/ingest", "t t3\ne Mary John t3\n", 202);
    WaitForTimePoints(4);
    server_->Shutdown();
    server_.reset();
  }
  // A fresh graph + server over the same log resumes from the same state.
  TemporalGraph restarted_graph = graphtempo::testing::BuildPaperGraph();
  engine::QueryEngine restarted_engine(&restarted_graph);
  ServerConfig config;
  config.ingest_log_path = log_path;
  Server restarted(&restarted_graph, &restarted_engine, config);
  std::string error;
  ASSERT_TRUE(restarted.Start(&error)) << error;
  EXPECT_EQ(restarted_graph.num_times(), 4u);
  EXPECT_TRUE(restarted_graph.FindTime("t3").has_value());
  restarted.Shutdown();
  std::remove(log_path.c_str());
}

TEST_F(ServerTest, MalformedIngestBatchReportsLineNumber) {
  StartServer();
  HttpResponse response = Fetch("POST", "/ingest", "t t3\nzz what\n");
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("line 2"), std::string::npos) << response.body;
}

TEST_F(ServerTest, StatsReportsActiveComputeBackend) {
  StartServer();
  json::Value stats = FetchJson("GET", "/stats");
  const json::Value* backend = stats.Find("backend");
  ASSERT_NE(backend, nullptr) << "/stats lost the backend field";
  ASSERT_TRUE(backend->is_string());
  // Round-trip: the served name is exactly what the accel registry reports.
  EXPECT_EQ(backend->AsString(), accel::ActiveBackendName());
}

TEST_F(ServerTest, DuplicateTimePointIngestIsDroppedNotFatal) {
  StartServer();
  FetchJson("POST", "/ingest", "t t1\nt t3\n", 202);  // t1 already exists
  WaitForTimePoints(4);  // t3 still lands; the duplicate is skipped
  json::Value stats = FetchJson("GET", "/stats");
  EXPECT_EQ(stats.Find("num_times")->AsUint64().value_or(0), 4u);
}

}  // namespace
}  // namespace graphtempo::server
