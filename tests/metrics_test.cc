#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/stats.h"
#include "util/parallel.h"

/// \file
/// Unit tests for the metrics registry (docs/OBSERVABILITY.md): log-bucket
/// boundary arithmetic, snapshot merge algebra, registry snapshot/reset
/// atomicity, and the torn-read regression for GetExecCounters.

namespace graphtempo::obs {
namespace {

// --- bucket arithmetic ----------------------------------------------------------

TEST(HistogramBucketsTest, BucketOfBoundaries) {
  EXPECT_EQ(HistogramBucketOf(0), 0u);
  EXPECT_EQ(HistogramBucketOf(1), 1u);
  EXPECT_EQ(HistogramBucketOf(2), 2u);
  EXPECT_EQ(HistogramBucketOf(3), 2u);
  EXPECT_EQ(HistogramBucketOf(4), 3u);
  EXPECT_EQ(HistogramBucketOf(7), 3u);
  EXPECT_EQ(HistogramBucketOf(8), 4u);
  EXPECT_EQ(HistogramBucketOf(~std::uint64_t{0}), 64u);
  for (std::size_t k = 1; k < 64; ++k) {
    const std::uint64_t pow = std::uint64_t{1} << k;
    EXPECT_EQ(HistogramBucketOf(pow - 1), k) << "2^" << k << " - 1";
    EXPECT_EQ(HistogramBucketOf(pow), k + 1) << "2^" << k;
  }
}

TEST(HistogramBucketsTest, UpperBoundsMatchBucketOf) {
  EXPECT_EQ(HistogramBucketUpperBound(0), 0u);
  EXPECT_EQ(HistogramBucketUpperBound(1), 1u);
  EXPECT_EQ(HistogramBucketUpperBound(2), 3u);
  EXPECT_EQ(HistogramBucketUpperBound(3), 7u);
  EXPECT_EQ(HistogramBucketUpperBound(64), ~std::uint64_t{0});
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    // The upper bound of a bucket must itself land in that bucket, and the
    // next representable value must land in the next one.
    EXPECT_EQ(HistogramBucketOf(HistogramBucketUpperBound(b)), b) << "bucket " << b;
    if (b < 64) {
      EXPECT_EQ(HistogramBucketOf(HistogramBucketUpperBound(b) + 1), b + 1)
          << "bucket " << b;
    }
  }
}

// --- histogram recording and percentiles ----------------------------------------

TEST(HistogramTest, RecordsCountSumMax) {
  Histogram histogram;
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 1000ull}) histogram.Record(v);
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_EQ(snapshot.sum, 1006u);
  EXPECT_EQ(snapshot.max, 1000u);
  EXPECT_EQ(snapshot.buckets[0], 1u);   // 0
  EXPECT_EQ(snapshot.buckets[1], 1u);   // 1
  EXPECT_EQ(snapshot.buckets[2], 2u);   // 2, 3
  EXPECT_EQ(snapshot.buckets[10], 1u);  // 1000 in [512, 1023]
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 1006.0 / 5.0);
}

TEST(HistogramTest, PercentileReportsBucketUpperBoundCappedAtMax) {
  Histogram histogram;
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 1000ull}) histogram.Record(v);
  HistogramSnapshot snapshot = histogram.Snapshot();
  // Rank 3 of 5 lands in bucket 2 ([2,3]) whose upper bound is 3.
  EXPECT_EQ(snapshot.p50(), 3u);
  // Ranks 5 land in bucket 10 ([512,1023]); the max (1000) caps the answer.
  EXPECT_EQ(snapshot.p95(), 1000u);
  EXPECT_EQ(snapshot.p99(), 1000u);
}

TEST(HistogramTest, SingleSamplePercentileIsTheSample) {
  Histogram histogram;
  histogram.Record(5);
  EXPECT_EQ(histogram.Snapshot().p50(), 5u);  // min(upper bound 7, max 5)
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  HistogramSnapshot snapshot;
  EXPECT_EQ(snapshot.p50(), 0u);
  EXPECT_EQ(snapshot.p99(), 0u);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 0.0);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram histogram;
  histogram.Record(123);
  histogram.Reset();
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.sum, 0u);
  EXPECT_EQ(snapshot.max, 0u);
}

// --- snapshot merge algebra -----------------------------------------------------

HistogramSnapshot MakeSnapshot(std::uint64_t seed, int samples) {
  Histogram histogram;
  std::uint64_t state = seed;
  for (int i = 0; i < samples; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    histogram.Record(state >> (state % 48));
  }
  return histogram.Snapshot();
}

void ExpectEqualSnapshots(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  HistogramSnapshot a = MakeSnapshot(1, 100);
  HistogramSnapshot b = MakeSnapshot(2, 57);
  HistogramSnapshot c = MakeSnapshot(3, 33);

  HistogramSnapshot ab_c = a;  // (a + b) + c
  ab_c.Add(b);
  ab_c.Add(c);
  HistogramSnapshot bc = b;  // a + (b + c)
  bc.Add(c);
  HistogramSnapshot a_bc = a;
  a_bc.Add(bc);
  ExpectEqualSnapshots(ab_c, a_bc);

  HistogramSnapshot ba = b;  // commutativity
  ba.Add(a);
  HistogramSnapshot ab = a;
  ab.Add(b);
  ExpectEqualSnapshots(ab, ba);
}

TEST(HistogramTest, MergeMatchesRecordingEverythingInOne) {
  Histogram whole;
  Histogram left;
  Histogram right;
  for (std::uint64_t v = 0; v < 200; ++v) {
    whole.Record(v * v);
    (v % 2 == 0 ? left : right).Record(v * v);
  }
  HistogramSnapshot merged = left.Snapshot();
  merged.Add(right.Snapshot());
  ExpectEqualSnapshots(merged, whole.Snapshot());
}

// --- counters and the registry --------------------------------------------------

TEST(CounterTest, AddIncrementValueReset) {
  Counter counter;
  counter.Add(5);
  counter.Increment();
  EXPECT_EQ(counter.Value(), 6u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(RegistryTest, ReturnsStableReferences) {
  Registry& registry = Registry::Instance();
  Counter& a = registry.GetCounter("test/stable_counter");
  Counter& b = registry.GetCounter("test/stable_counter");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.GetHistogram("test/stable_histogram");
  Histogram& h2 = registry.GetHistogram("test/stable_histogram");
  EXPECT_EQ(&h1, &h2);
}

TEST(RegistryTest, SnapshotSeesUpdatesAndResetZeroes) {
  Registry& registry = Registry::Instance();
  Counter& counter = registry.GetCounter("test/snapshot_counter");
  Histogram& histogram = registry.GetHistogram("test/snapshot_histogram");
  registry.ResetAll();
  counter.Add(7);
  histogram.Record(42);

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("test/snapshot_counter"), 7u);
  EXPECT_EQ(snapshot.HistogramValue("test/snapshot_histogram").count, 1u);
  EXPECT_EQ(snapshot.CounterValue("test/never_created"), 0u);
  EXPECT_EQ(snapshot.HistogramValue("test/never_created").count, 0u);

  const std::uint64_t generation = snapshot.generation;
  registry.ResetAll();
  MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(after.CounterValue("test/snapshot_counter"), 0u);
  EXPECT_EQ(after.HistogramValue("test/snapshot_histogram").count, 0u);
  EXPECT_EQ(after.generation, generation + 1);
}

TEST(RegistryTest, TextAndJsonDumpsNameEveryMetric) {
  Registry& registry = Registry::Instance();
  registry.GetCounter("test/dump_counter").Add(3);
  registry.GetHistogram("test/dump_histogram").Record(9);
  MetricsSnapshot snapshot = registry.Snapshot();

  std::string text = snapshot.ToText();
  EXPECT_NE(text.find("counter test/dump_counter"), std::string::npos);
  EXPECT_NE(text.find("histogram test/dump_histogram"), std::string::npos);
  EXPECT_NE(text.find("generation"), std::string::npos);

  std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"test/dump_counter\":"), std::string::npos);
  EXPECT_NE(json.find("\"test/dump_histogram\":{\"count\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// --- torn-read regression -------------------------------------------------------

/// Counters only grow between resets, and `ResetAll` bumps the generation
/// under the same lock `Snapshot` takes. So two snapshots with the same
/// generation must be component-wise monotone. The old two-source sampling
/// (pool atomics read separately from the stats atomics) could interleave
/// with a reset and violate exactly this.
TEST(RegistryTest, SnapshotsNeverTearAgainstConcurrentResets) {
  SetParallelism(4);
  Registry& registry = Registry::Instance();
  registry.ResetAll();

  std::atomic<bool> stop{false};
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_relaxed)) ResetExecCounters();
  });
  std::thread worker([&] {
    std::atomic<std::uint64_t> sink{0};
    while (!stop.load(std::memory_order_relaxed)) {
      // Pool traffic updates pool/jobs and pool/chunks from several threads.
      internal_RunOnPool(4, [&](std::size_t chunk) {
        sink.fetch_add(chunk, std::memory_order_relaxed);
      });
    }
  });

  for (int i = 0; i < 2000; ++i) {
    MetricsSnapshot s1 = registry.Snapshot();
    MetricsSnapshot s2 = registry.Snapshot();
    if (s1.generation == s2.generation) {
      for (const auto& [name, value] : s1.counters) {
        EXPECT_GE(s2.CounterValue(name), value)
            << "counter " << name << " went backwards within generation "
            << s1.generation;
      }
    }
    // The ExecCounters view itself must stay usable under the race.
    ExecCounters counters = GetExecCounters();
    (void)counters;
  }

  stop.store(true, std::memory_order_relaxed);
  resetter.join();
  worker.join();
  SetParallelism(1);
}

TEST(SnapshotMergeTest, SameGenerationMergeMatchesTheWhole) {
  // Two half-snapshots merged must equal one snapshot of everything: counters
  // add by name, histograms merge by name, unknown names are appended.
  MetricsSnapshot a;
  a.generation = 7;
  a.counters = {{"alpha", 3}, {"gamma", 10}};
  a.histograms = {{"lat", MakeSnapshot(1, 40)}};

  MetricsSnapshot b;
  b.generation = 7;
  b.counters = {{"alpha", 2}, {"beta", 5}};
  b.histograms = {{"lat", MakeSnapshot(2, 25)}, {"size", MakeSnapshot(3, 8)}};

  ASSERT_TRUE(a.MergeFrom(b));
  EXPECT_EQ(a.CounterValue("alpha"), 5u);
  EXPECT_EQ(a.CounterValue("beta"), 5u);
  EXPECT_EQ(a.CounterValue("gamma"), 10u);

  HistogramSnapshot expected_lat = MakeSnapshot(1, 40);
  expected_lat.Add(MakeSnapshot(2, 25));
  ExpectEqualSnapshots(a.HistogramValue("lat"), expected_lat);
  ExpectEqualSnapshots(a.HistogramValue("size"), MakeSnapshot(3, 8));

  // Merged entries must keep the by-name sort (CounterValue binary-searches).
  for (std::size_t i = 1; i < a.counters.size(); ++i) {
    EXPECT_LT(a.counters[i - 1].first, a.counters[i].first);
  }
  for (std::size_t i = 1; i < a.histograms.size(); ++i) {
    EXPECT_LT(a.histograms[i - 1].first, a.histograms[i].first);
  }
}

TEST(SnapshotMergeTest, RefusesAcrossGenerationsAndLeavesTargetUntouched) {
  // Snapshots spanning a ResetAll must never silently mix: the merge refuses
  // and the target keeps its exact pre-call contents.
  MetricsSnapshot a;
  a.generation = 1;
  a.counters = {{"alpha", 3}};
  a.histograms = {{"lat", MakeSnapshot(1, 12)}};

  MetricsSnapshot b;
  b.generation = 2;  // as after a ResetAll between the two snapshots
  b.counters = {{"alpha", 100}, {"beta", 1}};
  b.histograms = {{"lat", MakeSnapshot(2, 30)}};

  ASSERT_FALSE(a.MergeFrom(b));
  EXPECT_EQ(a.generation, 1u);
  ASSERT_EQ(a.counters.size(), 1u);
  EXPECT_EQ(a.CounterValue("alpha"), 3u);
  ASSERT_EQ(a.histograms.size(), 1u);
  ExpectEqualSnapshots(a.HistogramValue("lat"), MakeSnapshot(1, 12));
}

TEST(SnapshotMergeTest, RefusesAcrossARealResetAllGenerationBump) {
  Registry& registry = Registry::Instance();
  registry.GetCounter("merge_test/c").Add(1);  // ensure non-empty
  MetricsSnapshot before = registry.Snapshot();
  registry.ResetAll();
  MetricsSnapshot after = registry.Snapshot();
  EXPECT_NE(before.generation, after.generation);
  EXPECT_FALSE(after.MergeFrom(before));
  EXPECT_TRUE(after.MergeFrom(registry.Snapshot()));
}

TEST(RegistryTest, ExecCountersIncludePoolActivity) {
  SetParallelism(4);
  ResetExecCounters();
  std::atomic<std::uint64_t> sink{0};
  internal_RunOnPool(8, [&](std::size_t chunk) {
    sink.fetch_add(chunk + 1, std::memory_order_relaxed);
  });
  ExecCounters counters = GetExecCounters();
  EXPECT_GE(counters.pool_jobs, 1u);
  EXPECT_GE(counters.pool_chunks, 8u);
  ResetExecCounters();
  counters = GetExecCounters();
  EXPECT_EQ(counters.pool_jobs, 0u);
  EXPECT_EQ(counters.pool_chunks, 0u);
  SetParallelism(1);
}

}  // namespace
}  // namespace graphtempo::obs
