#include "util/json.h"

#include <gtest/gtest.h>

namespace graphtempo::json {
namespace {

std::optional<Value> ParseOk(const std::string& text) {
  std::string error;
  std::optional<Value> value = Parse(text, &error);
  EXPECT_TRUE(value.has_value()) << error;
  return value;
}

std::string ParseError(const std::string& text) {
  std::string error;
  std::optional<Value> value = Parse(text, &error);
  EXPECT_FALSE(value.has_value()) << text;
  return error;
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(ParseOk("null")->is_null());
  EXPECT_TRUE(ParseOk("true")->AsBool());
  EXPECT_FALSE(ParseOk("false")->AsBool());
  EXPECT_DOUBLE_EQ(ParseOk("-2.5e2")->AsDouble(), -250.0);
  EXPECT_EQ(ParseOk("\"hi\"")->AsString(), "hi");
}

TEST(JsonTest, LargeIntegersRoundTripExactly) {
  // Doubles lose precision past 2^53; counter values must not.
  const std::string big = "18446744073709551615";
  std::optional<Value> value = ParseOk(big);
  EXPECT_EQ(value->AsUint64(), 18446744073709551615ull);
  EXPECT_EQ(value->Serialize(), big);  // original spelling preserved
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  Value object = Value::Object();
  object.Set("z", Value::Number(std::uint64_t{1}));
  object.Set("a", Value::Number(std::uint64_t{2}));
  object.Set("m", Value::Array());
  EXPECT_EQ(object.Serialize(), R"({"z":1,"a":2,"m":[]})");  // deterministic
}

TEST(JsonTest, RoundTripsNestedStructures) {
  const std::string text =
      R"({"op":"union","attrs":["gender","publications"],"top":5,"nested":{"deep":[1,2,{"x":null}]}})";
  std::optional<Value> value = ParseOk(text);
  EXPECT_EQ(value->Serialize(), text);
  EXPECT_EQ(value->Find("attrs")->AsArray().size(), 2u);
  EXPECT_EQ(value->Find("nested")->Find("deep")->AsArray().size(), 3u);
  EXPECT_EQ(value->Find("missing"), nullptr);
}

TEST(JsonTest, EscapesRoundTrip) {
  Value value = Value::String("line\nbreak \"quoted\" tab\t\\slash");
  std::optional<Value> reparsed = ParseOk(value.Serialize());
  EXPECT_EQ(reparsed->AsString(), value.AsString());
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(ParseOk("\"\\u00e9\"")->AsString(), "\xc3\xa9");      // é
  EXPECT_EQ(ParseOk("\"\\u2192\"")->AsString(), "\xe2\x86\x92");  // →
}

TEST(JsonTest, ReportsErrorsWithByteOffsets) {
  EXPECT_NE(ParseError("{\"a\":}").find("at byte"), std::string::npos);
  EXPECT_NE(ParseError("[1,2").find("at byte"), std::string::npos);
  EXPECT_NE(ParseError("").find("at byte"), std::string::npos);
  EXPECT_NE(ParseError("{\"a\":1} trailing").find("at byte"), std::string::npos);
  EXPECT_NE(ParseError("nul"), "");
}

TEST(JsonTest, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_NE(ParseError(deep).find("too deep"), std::string::npos);
}

TEST(JsonTest, NonNumericAccessorsAreSafe) {
  std::optional<Value> value = ParseOk("\"text\"");
  EXPECT_EQ(value->AsUint64(), std::nullopt);
  EXPECT_EQ(ParseOk("-5")->AsUint64(), std::nullopt);  // negative is not uint
}

}  // namespace
}  // namespace graphtempo::json
