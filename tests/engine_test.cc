/// Differential suite for the unified query engine (docs/ENGINE.md).
///
/// The contract under test: an engine-routed query is *bit-identical* to the
/// equivalent direct core computation under every plan choice — direct
/// kernels vs Section 4.3 materialized derivation, forced via
/// `PlanOptions::force_route` — and at every thread count; the fingerprint
/// result cache really serves repeats and is dropped the moment the graph's
/// mutation generation moves, so no query can ever observe a stale answer.

#include "engine/engine.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/aggregation.h"
#include "core/operators.h"
#include "datagen/dblp_gen.h"
#include "datagen/movielens_gen.h"
#include "datagen/profiles.h"
#include "test_graphs.h"
#include "util/parallel.h"

namespace graphtempo {
namespace {

using engine::PlanRoute;
using engine::QueryEngine;
using engine::QueryPlan;
using engine::QuerySpec;
using engine::TemporalOperatorKind;
using testing::BuildPaperGraph;
using testing::BuildRandomGraph;

/// Scaled-down Table 3 shape: enough years for non-trivial intervals, small
/// enough that the full route × thread matrix stays fast under sanitizers.
datagen::DatasetProfile SmallDblpProfile() {
  datagen::DatasetProfile profile;
  profile.name = "dblp-small";
  profile.time_labels = {"2000", "2001", "2002", "2003", "2004", "2005"};
  profile.nodes_per_time = {40, 48, 52, 60, 64, 70};
  profile.edges_per_time = {90, 110, 120, 140, 150, 170};
  return profile;
}

/// Scaled-down Table 4 shape (5 months, small pool).
datagen::DatasetProfile SmallMovieLensProfile() {
  datagen::DatasetProfile profile;
  profile.name = "ml-small";
  profile.time_labels = {"May", "Jun", "Jul", "Aug", "Sep"};
  profile.nodes_per_time = {30, 40, 45, 60, 35};
  profile.edges_per_time = {80, 120, 140, 200, 100};
  return profile;
}

TemporalGraph SmallDblp() {
  return datagen::GenerateDblpWithProfile(SmallDblpProfile(), {});
}

TemporalGraph SmallMovieLens() {
  datagen::MovieLensOptions options;
  options.user_pool = 150;
  return datagen::GenerateMovieLensWithProfile(SmallMovieLensProfile(), options);
}

/// The ground truth: the spec evaluated straight through the core API, no
/// engine, no cache, no materialization.
AggregateGraph DirectReference(const TemporalGraph& graph, const QuerySpec& spec) {
  GraphView view = engine::BuildOperatorView(graph, spec);
  AggregationOptions options;
  options.semantics = spec.semantics;
  options.filter = spec.filter;
  options.grouping = spec.grouping;
  AggregateGraph agg = Aggregate(graph, view, spec.attrs, options);
  if (spec.symmetrize) return SymmetrizeAggregate(agg);
  return agg;
}

QuerySpec MakeSpec(TemporalOperatorKind op, IntervalSet t1, IntervalSet t2,
                   std::vector<AttrRef> attrs, AggregationSemantics semantics) {
  QuerySpec spec;
  spec.op = op;
  spec.t1 = std::move(t1);
  spec.t2 = std::move(t2);
  spec.attrs = std::move(attrs);
  spec.semantics = semantics;
  return spec;
}

/// A corpus covering every operator, both semantics, single- and multi-point
/// intervals, attribute subsets, reordering and symmetrization. `base` is the
/// engine's materialized attribute list, so subsets of it are derivable.
std::vector<QuerySpec> SpecCorpus(const TemporalGraph& graph,
                                  const std::vector<AttrRef>& base) {
  const std::size_t n = graph.num_times();
  const TimeId mid = static_cast<TimeId>(n / 2);
  const TimeId last = static_cast<TimeId>(n - 1);
  const IntervalSet empty(n);
  std::vector<AttrRef> first_only = {base[0]};
  std::vector<AttrRef> second_only = {base[1]};
  std::vector<AttrRef> reversed(base.rbegin(), base.rend());
  using K = TemporalOperatorKind;
  using S = AggregationSemantics;

  std::vector<QuerySpec> corpus;
  // Derivable: single-point projections (DIST ≡ ALL at a point, Fig 3).
  corpus.push_back(MakeSpec(K::kProject, IntervalSet::Point(n, mid), empty,
                            first_only, S::kDistinct));
  corpus.push_back(MakeSpec(K::kProject, IntervalSet::Point(n, 0), empty, base,
                            S::kAll));
  // Derivable: union-ALL (T-distributivity) — full set, subset, reordered,
  // empty-t2 degenerate form, non-contiguous interval, symmetrized.
  corpus.push_back(MakeSpec(K::kUnion, IntervalSet::All(n), IntervalSet::All(n),
                            base, S::kAll));
  corpus.push_back(MakeSpec(K::kUnion, IntervalSet::Range(n, 0, mid), empty,
                            second_only, S::kAll));
  corpus.push_back(MakeSpec(K::kUnion, IntervalSet::Range(n, 1, last),
                            IntervalSet::Point(n, 0), reversed, S::kAll));
  corpus.push_back(MakeSpec(K::kUnion, IntervalSet::Of(n, {0, mid, last}), empty,
                            first_only, S::kAll));
  QuerySpec symmetric_union = MakeSpec(K::kUnion, IntervalSet::All(n), empty,
                                       first_only, S::kAll);
  symmetric_union.symmetrize = true;
  corpus.push_back(symmetric_union);
  // Derivable: single-point union (also DIST ≡ ALL).
  corpus.push_back(MakeSpec(K::kUnion, IntervalSet::Point(n, last), empty,
                            second_only, S::kDistinct));
  // Direct-only: DIST unions are not T-distributive; multi-point projections
  // are not points; intersection and difference never distribute.
  corpus.push_back(MakeSpec(K::kUnion, IntervalSet::Range(n, 0, last), empty,
                            base, S::kDistinct));
  corpus.push_back(MakeSpec(K::kProject, IntervalSet::Range(n, 0, 1), empty,
                            first_only, S::kAll));
  corpus.push_back(MakeSpec(K::kIntersection, IntervalSet::Range(n, 0, mid),
                            IntervalSet::Range(n, mid, last), first_only, S::kAll));
  corpus.push_back(MakeSpec(K::kDifference, IntervalSet::Point(n, last),
                            IntervalSet::Point(n, 0), base, S::kDistinct));
  QuerySpec symmetric_diff = MakeSpec(K::kDifference, IntervalSet::Point(n, mid),
                                      IntervalSet::Point(n, 0), base, S::kAll);
  symmetric_diff.symmetrize = true;
  corpus.push_back(symmetric_diff);
  return corpus;
}

/// The acceptance matrix: every corpus spec × {default, forced-direct,
/// forced-materialized when derivable} × threads {1, 2, 7, 16}, each cell
/// compared bit-for-bit against the serial direct reference.
void RunDifferential(const TemporalGraph& graph, const std::vector<std::string>& names) {
  std::vector<AttrRef> base = ResolveAttributes(graph, names);
  std::vector<QuerySpec> corpus = SpecCorpus(graph, base);

  SetParallelism(1);
  std::vector<AggregateGraph> references;
  references.reserve(corpus.size());
  for (const QuerySpec& spec : corpus) references.push_back(DirectReference(graph, spec));

  QueryEngine engine(&graph);
  engine.EnableMaterialization(base);

  std::size_t derivable = 0;
  const std::size_t thread_counts[] = {1, 2, 7, 16};
  for (std::size_t threads : thread_counts) {
    SetParallelism(threads);
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const QuerySpec& spec = corpus[i];
      const std::string label = spec.ToString(graph) + " @" + std::to_string(threads);

      engine.ClearCache();
      EXPECT_EQ(engine.Execute(spec), references[i]) << "default route: " << label;

      engine.ClearCache();
      QueryEngine::PlanOptions direct;
      direct.force_route = PlanRoute::kDirectKernel;
      EXPECT_EQ(engine.Execute(spec, direct), references[i]) << "direct: " << label;

      if (engine.Derivable(spec)) {
        ++derivable;
        engine.ClearCache();
        QueryEngine::PlanOptions materialized;
        materialized.force_route = PlanRoute::kMaterializedDerivation;
        EXPECT_EQ(engine.Execute(spec, materialized), references[i])
            << "materialized: " << label;
      }
    }
  }
  SetParallelism(1);
  // The materialized route must actually have been exercised (8 derivable
  // specs per thread count).
  EXPECT_EQ(derivable, 8u * 4u);
}

TEST(EngineDifferentialTest, DblpRoutesAndThreadsMatchDirect) {
  RunDifferential(SmallDblp(), {"gender", "publications"});
}

TEST(EngineDifferentialTest, MovieLensRoutesAndThreadsMatchDirect) {
  RunDifferential(SmallMovieLens(), {"gender", "rating"});
}

TEST(EngineDifferentialTest, MovieLensFourAttributeBase) {
  TemporalGraph graph = SmallMovieLens();
  std::vector<AttrRef> base =
      ResolveAttributes(graph, {"gender", "age", "occupation", "rating"});
  const std::size_t n = graph.num_times();
  QueryEngine engine(&graph);
  engine.EnableMaterialization(base);
  // Every pair from the 4-attribute store (the Fig 11c lattice), both routes.
  for (std::size_t a = 0; a < base.size(); ++a) {
    for (std::size_t b = a + 1; b < base.size(); ++b) {
      QuerySpec spec = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::All(n),
                                IntervalSet(n), {base[a], base[b]},
                                AggregationSemantics::kAll);
      AggregateGraph reference = DirectReference(graph, spec);
      ASSERT_TRUE(engine.Derivable(spec));
      engine.ClearCache();
      QueryEngine::PlanOptions materialized;
      materialized.force_route = PlanRoute::kMaterializedDerivation;
      EXPECT_EQ(engine.Execute(spec, materialized), reference) << a << "+" << b;
    }
  }
}

// --- Planner route + derivability rules -------------------------------------------

TEST(EnginePlannerTest, RoutesFollowSection43Derivability) {
  TemporalGraph graph = BuildPaperGraph();
  std::vector<AttrRef> base = ResolveAttributes(graph, {"gender", "publications"});
  QueryEngine engine(&graph);
  const IntervalSet empty(3);
  using K = TemporalOperatorKind;
  using S = AggregationSemantics;

  QuerySpec union_all = MakeSpec(K::kUnion, IntervalSet::All(3), empty, base, S::kAll);
  // No store yet: everything is direct.
  EXPECT_FALSE(engine.Derivable(union_all));
  EXPECT_EQ(engine.Plan(union_all).route, PlanRoute::kDirectKernel);

  engine.EnableMaterialization(base);
  EXPECT_TRUE(engine.Derivable(union_all));
  EXPECT_EQ(engine.Plan(union_all).route, PlanRoute::kMaterializedDerivation);

  // DIST does not distribute over union … except on a single point.
  QuerySpec union_dist = union_all;
  union_dist.semantics = S::kDistinct;
  EXPECT_FALSE(engine.Derivable(union_dist));
  QuerySpec point_dist = MakeSpec(K::kProject, IntervalSet::Point(3, 1), empty,
                                  base, S::kDistinct);
  EXPECT_TRUE(engine.Derivable(point_dist));

  // Intersection and difference are never derivable.
  EXPECT_FALSE(engine.Derivable(MakeSpec(K::kIntersection, IntervalSet::All(3),
                                         IntervalSet::All(3), base, S::kAll)));
  EXPECT_FALSE(engine.Derivable(MakeSpec(K::kDifference, IntervalSet::All(3),
                                         IntervalSet::Point(3, 0), base, S::kAll)));

  // Attributes must map injectively into the base list.
  std::vector<AttrRef> gender_twice = {base[0], base[0]};
  QuerySpec duplicate_attr = union_all;
  duplicate_attr.attrs = gender_twice;
  EXPECT_FALSE(engine.Derivable(duplicate_attr));

  // An opaque filter disqualifies derivation (and caching).
  NodeTimeFilter filter = [](NodeId, TimeId) { return true; };
  QuerySpec filtered = union_all;
  filtered.filter = &filter;
  EXPECT_FALSE(engine.Derivable(filtered));
  EXPECT_FALSE(engine.Plan(filtered).cacheable);
}

TEST(EnginePlannerTest, ExplainNamesRouteAndSteps) {
  TemporalGraph graph = BuildPaperGraph();
  std::vector<AttrRef> base = ResolveAttributes(graph, {"gender", "publications"});
  QueryEngine engine(&graph);
  QuerySpec spec = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::All(3),
                            IntervalSet(3), base, AggregationSemantics::kAll);

  std::string direct = engine.Plan(spec).Explain();
  EXPECT_NE(direct.find("route=direct"), std::string::npos) << direct;
  EXPECT_NE(direct.find("operator/union"), std::string::npos) << direct;
  EXPECT_NE(direct.find("aggregate"), std::string::npos) << direct;
  EXPECT_NE(direct.find("fingerprint=0x"), std::string::npos) << direct;

  engine.EnableMaterialization(base);
  QuerySpec subset = spec;
  subset.attrs = {base[0]};
  std::string materialized = engine.Plan(subset).Explain();
  EXPECT_NE(materialized.find("route=materialized"), std::string::npos) << materialized;
  EXPECT_NE(materialized.find("combine"), std::string::npos) << materialized;
  EXPECT_NE(materialized.find("roll-up"), std::string::npos) << materialized;
}

TEST(EnginePlannerDeath, ForcingUnderivableMaterializedRouteAborts) {
  TemporalGraph graph = BuildPaperGraph();
  QueryEngine engine(&graph);  // no store at all
  QuerySpec spec = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::All(3),
                            IntervalSet(3), ResolveAttributes(graph, {"gender"}),
                            AggregationSemantics::kAll);
  QueryEngine::PlanOptions options;
  options.force_route = PlanRoute::kMaterializedDerivation;
  EXPECT_DEATH(engine.Plan(spec, options), "not derivable");
}

// --- Fingerprints -----------------------------------------------------------------

TEST(EngineFingerprintTest, NormalizesT2AwayForProjections) {
  QuerySpec a = MakeSpec(TemporalOperatorKind::kProject, IntervalSet::Point(3, 1),
                         IntervalSet(3), {AttrRef{}}, AggregationSemantics::kAll);
  QuerySpec b = a;
  b.t2 = IntervalSet::All(3);  // ignored by the operator → same query
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  EXPECT_TRUE(a.EquivalentTo(b));

  QuerySpec c = a;
  c.op = TemporalOperatorKind::kUnion;
  c.t2 = IntervalSet(3);
  QuerySpec d = c;
  d.t2 = IntervalSet::All(3);  // t2 matters for union
  EXPECT_NE(c.Fingerprint(), d.Fingerprint());
  EXPECT_FALSE(c.EquivalentTo(d));
}

TEST(EngineFingerprintTest, DistinguishesEveryField) {
  QuerySpec spec = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::Range(4, 0, 2),
                            IntervalSet::Point(4, 3), {AttrRef{}},
                            AggregationSemantics::kAll);
  const std::uint64_t fp = spec.Fingerprint();
  EXPECT_EQ(fp, spec.Fingerprint());  // stable

  QuerySpec changed = spec;
  changed.semantics = AggregationSemantics::kDistinct;
  EXPECT_NE(changed.Fingerprint(), fp);
  changed = spec;
  changed.symmetrize = true;
  EXPECT_NE(changed.Fingerprint(), fp);
  changed = spec;
  changed.t1 = IntervalSet::Range(4, 0, 3);
  EXPECT_NE(changed.Fingerprint(), fp);
  changed = spec;
  changed.op = TemporalOperatorKind::kIntersection;
  EXPECT_NE(changed.Fingerprint(), fp);
}

// Regression: the fingerprint used to hash the interval's domain size, so
// the same textual query re-bound after a time point was appended produced a
// different cache key — every cached answer became unreachable (a silent miss
// rather than an invalidation). Identity must depend on membership only.
TEST(EngineFingerprintTest, SurvivesTimeDomainGrowth) {
  QuerySpec before = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::Range(3, 0, 1),
                              IntervalSet::Point(3, 1), {AttrRef{}},
                              AggregationSemantics::kDistinct);
  // The same query, bound after the domain grew from 3 to 13 time points.
  QuerySpec after = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::Range(13, 0, 1),
                             IntervalSet::Point(13, 1), {AttrRef{}},
                             AggregationSemantics::kDistinct);
  EXPECT_EQ(before.Fingerprint(), after.Fingerprint());
  EXPECT_TRUE(before.EquivalentTo(after));
  EXPECT_TRUE(after.EquivalentTo(before));

  // Different membership over the grown domain is still a different query.
  QuerySpec other = after;
  other.t1 = IntervalSet::Range(13, 0, 2);
  EXPECT_NE(before.Fingerprint(), other.Fingerprint());
  EXPECT_FALSE(before.EquivalentTo(other));
}

TEST(EngineFingerprintTest, GroupingIsAHintNotIdentity) {
  // Dense vs hash grouping produce bit-identical results (determinism
  // suite), so the hint must not split the cache key — otherwise dense and
  // hash spellings of one query would duplicate entries and miss each
  // other's hits.
  QuerySpec spec = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::Range(4, 0, 2),
                            IntervalSet::Point(4, 3), {AttrRef{}},
                            AggregationSemantics::kAll);
  spec.grouping = GroupingStrategy::kDense;
  QuerySpec hashed = spec;
  hashed.grouping = GroupingStrategy::kHash;
  EXPECT_EQ(spec.Fingerprint(), hashed.Fingerprint());
  EXPECT_TRUE(spec.EquivalentTo(hashed));
}

TEST(EngineFingerprintTest, DependencyIntervalCoversT2) {
  // A difference is *evaluated* on T1 but its answer also depends on T2's
  // data — the cache validity interval must cover both.
  QuerySpec diff = MakeSpec(TemporalOperatorKind::kDifference, IntervalSet::Point(4, 3),
                            IntervalSet::Point(4, 0), {AttrRef{}},
                            AggregationSemantics::kAll);
  EXPECT_EQ(diff.EvaluationInterval(), IntervalSet::Point(4, 3));
  EXPECT_EQ(diff.DependencyInterval(), IntervalSet::Of(4, {0, 3}));

  QuerySpec project = MakeSpec(TemporalOperatorKind::kProject, IntervalSet::Point(4, 1),
                               IntervalSet::All(4), {AttrRef{}},
                               AggregationSemantics::kAll);
  EXPECT_EQ(project.DependencyInterval(), IntervalSet::Point(4, 1));  // t2 ignored
}

// --- Result cache -----------------------------------------------------------------

TEST(EngineCacheTest, RepeatedQueriesHit) {
  TemporalGraph graph = BuildRandomGraph(91, 40, 5);
  QueryEngine engine(&graph);
  QuerySpec spec = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::All(5),
                            IntervalSet(5), ResolveAttributes(graph, {"color"}),
                            AggregationSemantics::kAll);
  AggregateGraph first = engine.Execute(spec);
  AggregateGraph second = engine.Execute(spec);
  EXPECT_EQ(first, second);
  EXPECT_EQ(engine.cache_stats().misses, 1u);
  EXPECT_GT(engine.cache_stats().hits, 0u);

  // A *different* spec misses; a re-issue of the first still hits (LRU keeps
  // both under the default capacity).
  QuerySpec other = spec;
  other.semantics = AggregationSemantics::kDistinct;
  engine.Execute(other);
  EXPECT_EQ(engine.cache_stats().misses, 2u);
  engine.Execute(spec);
  EXPECT_EQ(engine.cache_stats().hits, 2u);
}

TEST(EngineCacheTest, GroupingHintsShareOneEntry) {
  // Dense and hash spellings of the same query are bit-identical, so they
  // must share one cache entry: the hash spec hits the dense spec's result.
  TemporalGraph graph = BuildRandomGraph(95, 40, 5);
  QueryEngine engine(&graph);
  QuerySpec dense = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::All(5),
                             IntervalSet(5), ResolveAttributes(graph, {"color"}),
                             AggregationSemantics::kAll);
  dense.grouping = GroupingStrategy::kDense;
  QuerySpec hashed = dense;
  hashed.grouping = GroupingStrategy::kHash;

  AggregateGraph first = engine.Execute(dense);
  AggregateGraph second = engine.Execute(hashed);
  EXPECT_EQ(first, second);
  EXPECT_EQ(engine.cache_stats().misses, 1u);
  EXPECT_EQ(engine.cache_stats().hits, 1u);

  // The hint is still honored on a miss: a forced-hash spec plans the hash
  // aggregation path even though it shares the dense spec's fingerprint.
  EXPECT_EQ(engine.Plan(dense).Explain().find("nodes=hash"), std::string::npos);
  EXPECT_NE(engine.Plan(hashed).Explain().find("nodes=hash"), std::string::npos);
}

TEST(EngineCacheTest, LruEvictsAtCapacity) {
  TemporalGraph graph = BuildRandomGraph(92, 30, 4);
  QueryEngine::Config config;
  config.cache_capacity = 2;
  QueryEngine engine(&graph, config);
  std::vector<AttrRef> attrs = ResolveAttributes(graph, {"color"});
  auto point = [&](TimeId t) {
    return MakeSpec(TemporalOperatorKind::kProject, IntervalSet::Point(4, t),
                    IntervalSet(4), attrs, AggregationSemantics::kAll);
  };
  engine.Execute(point(0));
  engine.Execute(point(1));
  engine.Execute(point(2));  // evicts point(0)
  EXPECT_EQ(engine.cache_stats().evictions, 1u);
  engine.Execute(point(0));  // miss again
  EXPECT_EQ(engine.cache_stats().misses, 4u);
  engine.Execute(point(2));  // still resident: hit
  EXPECT_EQ(engine.cache_stats().hits, 1u);
}

TEST(EngineCacheTest, ZeroCapacityAndFiltersBypass) {
  TemporalGraph graph = BuildRandomGraph(93, 30, 4);
  std::vector<AttrRef> attrs = ResolveAttributes(graph, {"color"});
  QuerySpec spec = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::All(4),
                            IntervalSet(4), attrs, AggregationSemantics::kAll);

  QueryEngine::Config config;
  config.cache_capacity = 0;
  QueryEngine uncached(&graph, config);
  uncached.Execute(spec);
  uncached.Execute(spec);
  EXPECT_EQ(uncached.cache_stats().hits, 0u);
  EXPECT_EQ(uncached.cache_stats().bypasses, 2u);

  QueryEngine engine(&graph);
  NodeTimeFilter filter = [](NodeId, TimeId) { return true; };
  QuerySpec filtered = spec;
  filtered.filter = &filter;
  EXPECT_EQ(engine.Execute(filtered), engine.Execute(spec));  // pass-all ≡ none
  engine.Execute(filtered);
  EXPECT_EQ(engine.cache_stats().bypasses, 2u);
  EXPECT_EQ(engine.cache_stats().misses, 1u);
}

// --- Mutation invalidation --------------------------------------------------------

TEST(EngineInvalidationTest, MutationOnExistingDomainRefreshesAnswer) {
  // Same fingerprint before and after the mutation — only the generation
  // check stands between the second query and a stale cached answer.
  TemporalGraph graph = BuildPaperGraph();
  std::vector<AttrRef> gender = ResolveAttributes(graph, {"gender"});
  QueryEngine engine(&graph);
  QuerySpec spec = MakeSpec(TemporalOperatorKind::kProject, IntervalSet::Point(3, 0),
                            IntervalSet(3), gender, AggregationSemantics::kDistinct);
  AggregateGraph before = engine.Execute(spec);

  NodeId u5 = *graph.FindNode("u5");  // male, previously absent at t0
  graph.SetNodePresent(u5, 0);

  AggregateGraph after = engine.Execute(spec);
  EXPECT_NE(after, before);
  EXPECT_EQ(after, DirectReference(graph, spec));
  EXPECT_EQ(engine.cache_stats().invalidations, 1u);
  EXPECT_EQ(engine.cache_stats().hits, 0u);

  // Untouched graph from here on: the refreshed result is itself cached.
  engine.Execute(spec);
  EXPECT_EQ(engine.cache_stats().hits, 1u);
}

TEST(EngineInvalidationTest, AppendTimePointPlusRefreshServesGrownDomain) {
  TemporalGraph graph = BuildPaperGraph();
  std::vector<AttrRef> base = ResolveAttributes(graph, {"gender", "publications"});
  QueryEngine engine(&graph);
  engine.EnableMaterialization(base);

  QuerySpec old_spec = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::All(3),
                                IntervalSet(3), {base[0]}, AggregationSemantics::kAll);
  engine.Execute(old_spec);  // caches a result and memoizes the gender layer

  graph.AppendTimePoint("t3");
  NodeId u2 = *graph.FindNode("u2");
  NodeId u4 = *graph.FindNode("u4");
  graph.SetEdgePresent(*graph.FindEdge(u2, u4), 3);
  AttrRef pubs = *graph.FindAttribute("publications");
  graph.SetTimeVaryingValue(pubs.index, u2, 3, "2");
  graph.SetTimeVaryingValue(pubs.index, u4, 3, "1");
  engine.Refresh();

  QuerySpec grown = old_spec;
  grown.t1 = IntervalSet::All(4);
  grown.t2 = IntervalSet(4);
  ASSERT_TRUE(engine.Derivable(grown));
  QueryEngine::PlanOptions materialized;
  materialized.force_route = PlanRoute::kMaterializedDerivation;
  EXPECT_EQ(engine.Execute(grown, materialized), DirectReference(graph, grown));

  // Append-only growth never touched t0..t2, so the entry cached for the old
  // domain is still valid — it survives Refresh and keeps hitting.
  EXPECT_EQ(engine.cache_stats().invalidations, 0u);
  engine.Execute(old_spec);
  EXPECT_EQ(engine.cache_stats().hits, 1u);
}

TEST(EngineInvalidationTest, StaleStoreFallsBackToDirectRoute) {
  // Between a graph mutation and the matching Refresh() the store lags the
  // graph. The planner must detect this and degrade gracefully to the direct
  // kernel route instead of aborting (the old behavior was a GT_CHECK death).
  TemporalGraph graph = BuildPaperGraph();
  std::vector<AttrRef> base = ResolveAttributes(graph, {"gender"});
  QueryEngine engine(&graph);
  engine.EnableMaterialization(base);
  graph.AppendTimePoint("t3");
  NodeId u1 = *graph.FindNode("u1");
  graph.SetNodePresent(u1, 3);

  QuerySpec spec = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::All(4),
                            IntervalSet(4), base, AggregationSemantics::kAll);
  QueryEngine::PlanOptions materialized;
  materialized.force_route = PlanRoute::kMaterializedDerivation;

  QueryPlan plan = engine.Plan(spec, materialized);
  EXPECT_EQ(plan.route, PlanRoute::kDirectKernel);
  EXPECT_TRUE(plan.stale_fallback);
  EXPECT_NE(plan.Explain().find("stale-store-fallback"), std::string::npos);
  EXPECT_EQ(engine.Execute(spec, materialized), DirectReference(graph, spec));

  // Once refreshed, the forced materialized route works again.
  engine.Refresh();
  QueryPlan refreshed = engine.Plan(spec, materialized);
  EXPECT_EQ(refreshed.route, PlanRoute::kMaterializedDerivation);
  EXPECT_FALSE(refreshed.stale_fallback);
}

TEST(EngineInvalidationTest, PerEntryInvalidationKeepsDisjointIntervals) {
  // Three cached answers over disjoint intervals. A mutation at one time
  // point must evict only the entries whose dependency interval covers it.
  TemporalGraph graph = BuildRandomGraph(96, 30, 6);
  std::vector<AttrRef> attrs = ResolveAttributes(graph, {"color"});
  QueryEngine engine(&graph);

  QuerySpec early = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::Of(6, {0, 1}),
                             IntervalSet(6), attrs, AggregationSemantics::kAll);
  QuerySpec middle = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::Of(6, {2, 3}),
                              IntervalSet(6), attrs, AggregationSemantics::kAll);
  QuerySpec late = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::Of(6, {4, 5}),
                            IntervalSet(6), attrs, AggregationSemantics::kAll);
  engine.Execute(early);
  engine.Execute(middle);
  engine.Execute(late);
  ASSERT_EQ(engine.cache_stats().misses, 3u);

  // Mutate t2: only `middle` depends on it.
  graph.SetNodePresent(0, 2);

  engine.Execute(early);
  engine.Execute(late);
  EXPECT_EQ(engine.cache_stats().hits, 2u);
  AggregateGraph refreshed = engine.Execute(middle);
  EXPECT_EQ(refreshed, DirectReference(graph, middle));
  EXPECT_EQ(engine.cache_stats().misses, 4u);
  EXPECT_EQ(engine.cache_stats().invalidations, 1u);
}

TEST(EngineInvalidationTest, DifferenceEntriesDependOnT2) {
  // difference(t1, t2) is evaluated on t1 but its answer reads t2's data:
  // a mutation inside t2 must invalidate the cached entry.
  TemporalGraph graph = BuildRandomGraph(97, 30, 5);
  std::vector<AttrRef> attrs = ResolveAttributes(graph, {"color"});
  QueryEngine engine(&graph);
  QuerySpec spec = MakeSpec(TemporalOperatorKind::kDifference, IntervalSet::Point(5, 0),
                            IntervalSet::Of(5, {3, 4}), attrs, AggregationSemantics::kAll);
  AggregateGraph before = engine.Execute(spec);

  graph.SetNodePresent(0, 4);  // inside t2, outside the evaluation interval t1

  AggregateGraph after = engine.Execute(spec);
  EXPECT_EQ(after, DirectReference(graph, spec));
  EXPECT_EQ(engine.cache_stats().hits, 0u);
  EXPECT_EQ(engine.cache_stats().invalidations, 1u);
}

// --- Derivation layer stats -------------------------------------------------------

TEST(EngineDerivationTest, SubsetLayersMemoizeAcrossQueries) {
  TemporalGraph graph = BuildRandomGraph(94, 30, 5);
  std::vector<AttrRef> base = ResolveAttributes(graph, {"color", "level"});
  QueryEngine::Config config;
  config.cache_capacity = 0;  // isolate the derivation layer from the cache
  QueryEngine engine(&graph, config);
  engine.EnableMaterialization(base);
  QuerySpec spec = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::All(5),
                            IntervalSet(5), {base[0]}, AggregationSemantics::kAll);
  QueryEngine::PlanOptions materialized;
  materialized.force_route = PlanRoute::kMaterializedDerivation;

  engine.Execute(spec, materialized);
  EXPECT_EQ(engine.derivation_stats().rollups, 5u);
  EXPECT_EQ(engine.derivation_stats().rollup_hits, 0u);
  EXPECT_EQ(engine.derivation_stats().combines, 5u);

  engine.Execute(spec, materialized);
  EXPECT_EQ(engine.derivation_stats().rollups, 5u);  // layer reused
  EXPECT_EQ(engine.derivation_stats().rollup_hits, 5u);
  EXPECT_EQ(engine.derivation_stats().combines, 10u);
}

TEST(EngineDerivationTest, RollupHitsCountServedPointsOnly) {
  // Regression: a memoized subset layer used to credit rollup_hits with
  // num_times() per query regardless of how many points were actually read.
  // A single-point query served from a warm layer is exactly one hit.
  TemporalGraph graph = BuildRandomGraph(98, 30, 5);
  std::vector<AttrRef> base = ResolveAttributes(graph, {"color", "level"});
  QueryEngine::Config config;
  config.cache_capacity = 0;  // isolate the derivation layer from the cache
  QueryEngine engine(&graph, config);
  engine.EnableMaterialization(base);
  QueryEngine::PlanOptions materialized;
  materialized.force_route = PlanRoute::kMaterializedDerivation;

  QuerySpec warm = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::All(5),
                            IntervalSet(5), {base[0]}, AggregationSemantics::kAll);
  engine.Execute(warm, materialized);  // builds the {color} layer
  ASSERT_EQ(engine.derivation_stats().rollup_hits, 0u);

  QuerySpec point = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::Point(5, 2),
                             IntervalSet(5), {base[0]}, AggregationSemantics::kAll);
  engine.Execute(point, materialized);
  EXPECT_EQ(engine.derivation_stats().rollup_hits, 1u);  // not num_times()

  QuerySpec pair = MakeSpec(TemporalOperatorKind::kUnion, IntervalSet::Of(5, {1, 3}),
                            IntervalSet(5), {base[0]}, AggregationSemantics::kAll);
  engine.Execute(pair, materialized);
  EXPECT_EQ(engine.derivation_stats().rollup_hits, 3u);
}

}  // namespace
}  // namespace graphtempo
