/// Cross-feature integration scenarios: each test drives several subsystems
/// through a realistic end-to-end pipeline and checks that results are
/// preserved across the seams (generation → serialization → reload →
/// coarsening → exploration → materialization).

#include <gtest/gtest.h>

#include <sstream>

#include "core/coarsen.h"
#include "engine/cube.h"
#include "core/evolution.h"
#include "core/exploration.h"
#include "core/graph_io.h"
#include "core/measures.h"
#include "core/model_adapters.h"
#include "core/naive_exploration.h"
#include "core/operators.h"
#include "core/subgraph.h"
#include "datagen/contact_gen.h"
#include "datagen/dblp_gen.h"
#include "datagen/profiles.h"
#include "tools/cli.h"

namespace graphtempo {
namespace {

datagen::DatasetProfile SmallProfile() {
  datagen::DatasetProfile profile;
  profile.name = "small";
  profile.time_labels = {"y0", "y1", "y2", "y3", "y4", "y5"};
  profile.nodes_per_time = {40, 48, 52, 60, 64, 70};
  profile.edges_per_time = {90, 110, 120, 140, 150, 170};
  return profile;
}

TEST(IntegrationTest, SerializeReloadPreservesExploration) {
  // Generate → explore → serialize → reload → explore again: identical pairs.
  TemporalGraph graph = datagen::GenerateDblpWithProfile(SmallProfile(), {});

  ExplorationSpec spec;
  spec.event = EventType::kStability;
  spec.semantics = ExtensionSemantics::kIntersection;
  spec.reference = ReferenceEnd::kOld;
  spec.selector.kind = EntitySelector::Kind::kEdges;
  spec.selector.attrs = ResolveAttributes(graph, {"gender"});
  spec.k = 2;
  ExplorationResult before = Explore(graph, spec);

  std::ostringstream out;
  WriteGraph(graph, &out);
  std::istringstream in(out.str());
  std::string error;
  std::optional<TemporalGraph> reloaded = ReadGraph(&in, &error);
  ASSERT_TRUE(reloaded.has_value()) << error;

  ExplorationSpec reloaded_spec = spec;
  reloaded_spec.selector.attrs = ResolveAttributes(*reloaded, {"gender"});
  ExplorationResult after = Explore(*reloaded, reloaded_spec);
  EXPECT_EQ(before.pairs, after.pairs);
}

TEST(IntegrationTest, ExtractThenCoarsenThenAggregate) {
  // Operator result → standalone subgraph → coarse view → aggregation: the
  // pipeline must agree with computing directly on the original graph.
  TemporalGraph graph = datagen::GenerateDblpWithProfile(SmallProfile(), {});
  const std::size_t n = graph.num_times();

  // Keep only entities alive in the second half.
  IntervalSet late = IntervalSet::Range(n, 3, 5);
  TemporalGraph sub = ExtractSubgraph(graph, UnionOp(graph, late, late));
  TemporalGraph coarse = CoarsenTime(sub, {{"late", {3, 5}}});

  std::vector<AttrRef> attrs = ResolveAttributes(coarse, {"gender"});
  GraphView whole = UnionOp(coarse, IntervalSet::Point(1, 0), IntervalSet::Point(1, 0));
  AggregateGraph agg = Aggregate(coarse, whole, attrs, AggregationSemantics::kDistinct);

  // DIST gender counts on the coarse point == distinct nodes of the original
  // union view, split by gender.
  GraphView direct = UnionOp(graph, late, late);
  std::vector<AttrRef> orig_attrs = ResolveAttributes(graph, {"gender"});
  AggregateGraph expected =
      Aggregate(graph, direct, orig_attrs, AggregationSemantics::kDistinct);
  EXPECT_EQ(agg.TotalNodeWeight(), expected.TotalNodeWeight());
  EXPECT_EQ(agg.TotalEdgeWeight(), expected.TotalEdgeWeight());
}

TEST(IntegrationTest, SnapshotAdapterRoundTripPreservesEvolution) {
  TemporalGraph graph = datagen::GenerateDblpWithProfile(SmallProfile(), {});
  TemporalGraph adapted = FromSnapshots(ToSnapshots(graph));
  // Attributes are lost in the snapshot model; compare raw event counts.
  EntitySelector edges;
  edges.kind = EntitySelector::Kind::kEdges;
  for (TimeId t = 0; t + 1 < graph.num_times(); ++t) {
    for (EventType event :
         {EventType::kStability, EventType::kGrowth, EventType::kShrinkage}) {
      EXPECT_EQ(CountEvents(graph, {t, t}, {t + 1, t + 1}, ExtensionSemantics::kUnion,
                            event, edges),
                CountEvents(adapted, {t, t}, {t + 1, t + 1}, ExtensionSemantics::kUnion,
                            event, edges))
          << EventTypeName(event) << " @ " << t;
    }
  }
}

TEST(IntegrationTest, StreamingAppendKeepsExplorationConsistent) {
  // Appending a time point and re-running exploration over the old prefix
  // must not change the old results (new candidates may appear).
  TemporalGraph graph = datagen::GenerateDblpWithProfile(SmallProfile(), {});
  ExplorationSpec spec;
  spec.event = EventType::kGrowth;
  spec.semantics = ExtensionSemantics::kUnion;
  spec.reference = ReferenceEnd::kOld;
  spec.selector.kind = EntitySelector::Kind::kEdges;
  spec.k = 10;
  ExplorationResult before = Explore(graph, spec);

  TimeId t_new = graph.AppendTimePoint("y6");
  // Copy a few edges forward so the new point is non-trivial.
  int copied = 0;
  for (EdgeId e = 0; e < graph.num_edges() && copied < 30; ++e) {
    if (graph.EdgePresentAt(e, t_new - 1)) {
      graph.SetEdgePresent(e, t_new);
      ++copied;
    }
  }
  ExplorationResult after = Explore(graph, spec);
  // Every pre-append pair that does not touch the new point must re-appear.
  for (const IntervalPair& pair : before.pairs) {
    bool found = false;
    for (const IntervalPair& candidate : after.pairs) {
      if (candidate == pair) {
        found = true;
        break;
      }
    }
    // A pair can only change if its reference could now extend further — for
    // U-Explore with reference kOld, old pairs are still minimal (counts over
    // old candidates are unchanged).
    EXPECT_TRUE(found) << "pair lost after append";
  }
}

TEST(IntegrationTest, ContactPipelineMeasuresAndEvolution) {
  // Contact network: coarsen days into the three policy phases, then compare
  // cross-class contact minutes per phase — the full epidemic story in one
  // pipeline (generation → coarsening → measures).
  datagen::ContactOptions options;
  TemporalGraph graph = datagen::GenerateContactNetwork(options);
  std::vector<TimeGroup> phases = {
      {"before", {0, static_cast<TimeId>(options.outbreak_day - 1)}},
      {"closure",
       {static_cast<TimeId>(options.outbreak_day),
        static_cast<TimeId>(options.reopen_day - 1)}},
      {"after",
       {static_cast<TimeId>(options.reopen_day),
        static_cast<TimeId>(options.num_days - 1)}},
  };
  TemporalGraph coarse = CoarsenTime(graph, phases);
  ASSERT_EQ(coarse.num_times(), 3u);

  std::vector<AttrRef> klass = ResolveAttributes(coarse, {"class"});
  auto cross_pairs_at = [&](TimeId phase) {
    GraphView view = Project(coarse, IntervalSet::Point(3, phase));
    AggregateGraph agg =
        Aggregate(coarse, view, klass, AggregationSemantics::kDistinct);
    Weight cross = 0;
    for (const auto& [pair, weight] : agg.edges()) {
      if (!(pair.src == pair.dst)) cross += weight;
    }
    return cross;
  };
  Weight before = cross_pairs_at(0);
  Weight during = cross_pairs_at(1);
  Weight after = cross_pairs_at(2);
  EXPECT_LT(during * 2, before);  // closure slashed cross-class contact
  EXPECT_GT(after * 2, before);   // reopening restored it
}

TEST(IntegrationTest, CubeAgreesWithExplorationCounts) {
  // ALL union weights from the cube vs. the exploration engine's raw edge
  // counts: internally different code paths over the same definitions.
  TemporalGraph graph = datagen::GenerateDblpWithProfile(SmallProfile(), {});
  const std::size_t n = graph.num_times();
  std::vector<AttrRef> gender = ResolveAttributes(graph, {"gender"});
  AggregateCube cube(&graph, gender);
  cube.Materialize();
  for (TimeId t = 0; t + 1 < n; ++t) {
    // Stability edges between t and t+1, per the engine...
    EntitySelector edges;
    edges.kind = EntitySelector::Kind::kEdges;
    Weight stable = CountEvents(graph, {t, t}, {t + 1, t + 1},
                                ExtensionSemantics::kUnion, EventType::kStability, edges);
    Weight growth = CountEvents(graph, {t, t}, {t + 1, t + 1},
                                ExtensionSemantics::kUnion, EventType::kGrowth, edges);
    // ...must satisfy |E(t+1)| = stable + growth, with |E(t+1)| read from the
    // cube's per-point ALL aggregate.
    Weight at_next = cube.Query(IntervalSet::Point(n, t + 1)).TotalEdgeWeight();
    EXPECT_EQ(stable + growth, at_next) << "t=" << t;
  }
}

TEST(IntegrationTest, CliDrivesGeneratedDatasetEndToEnd) {
  // generate → info → aggregate → explore entirely through the CLI.
  std::string path = ::testing::TempDir() + "/graphtempo_integration.tsv";
  std::ostringstream out;
  std::ostringstream err;
  ASSERT_EQ(cli::RunCli({"generate", "contact", path}, out, err), 0) << err.str();
  ASSERT_EQ(cli::RunCli({"info", path}, out, err), 0) << err.str();
  ASSERT_EQ(cli::RunCli({"aggregate", path, "--attrs", "grade", "--op", "union",
                         "--t1", "day1..day5"},
                        out, err), 0)
      << err.str();
  ASSERT_EQ(cli::RunCli({"explore", path, "--event", "shrinkage", "--semantics",
                         "union", "--reference", "new", "--k", "50"},
                        out, err), 0)
      << err.str();
  EXPECT_NE(out.str().find("minimal interval pairs"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace graphtempo
