#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "server/http.h"
#include "server/server.h"
#include "test_graphs.h"
#include "util/json.h"

/// \file
/// Concurrency tests for the query server, intended to run under
/// ThreadSanitizer (ctest label `sanitize`): many client threads querying
/// while the single ingestion writer appends time points. Pins the PR 5
/// invariant end to end: append-only ingestion invalidates no cached answer
/// for a disjoint interval, and every concurrently-served answer for a fixed
/// old-interval spec is byte-identical.

namespace graphtempo::server {
namespace {

TEST(ServerConcurrencyTest, ConcurrentClientsVersusIngestionWriter) {
  TemporalGraph graph = graphtempo::testing::BuildPaperGraph();
  engine::QueryEngine engine(&graph);
  ServerConfig config;
  config.worker_threads = 4;
  Server server(&graph, &engine, config);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const int port = server.port();

  // The reference answer for a fixed old-interval spec, taken before any
  // ingestion. Every answer served during ingestion must equal it.
  const std::string query = R"({"op":"union","t1":"t0","t2":"t1","attrs":["gender"]})";
  std::optional<HttpResponse> reference =
      HttpFetch("127.0.0.1", port, "POST", "/query", query, &error);
  ASSERT_TRUE(reference.has_value()) << error;
  ASSERT_EQ(reference->status, 200) << reference->body;

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 25;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kQueriesPerClient; ++i) {
        std::string fetch_error;
        std::optional<HttpResponse> response =
            HttpFetch("127.0.0.1", port, "POST", "/query", query, &fetch_error);
        if (!response.has_value() || response->status != 200) {
          failures.fetch_add(1);
        } else if (response->body != reference->body) {
          mismatches.fetch_add(1);
        }
      }
    });
  }

  // The ingestion side: append-only batches racing the queries above.
  std::thread feeder([&] {
    for (int i = 0; i < 10; ++i) {
      std::string label = "race" + std::to_string(i);
      std::string batch = "t " + label + "\ne Mary John " + label + "\n";
      std::string fetch_error;
      std::optional<HttpResponse> response =
          HttpFetch("127.0.0.1", port, "POST", "/ingest", batch, &fetch_error);
      if (!response.has_value() || response->status != 202) failures.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (std::thread& client : clients) client.join();
  feeder.join();

  // Wait for the writer to drain, then check the invariants.
  for (int i = 0; i < 500; ++i) {
    std::optional<HttpResponse> stats =
        HttpFetch("127.0.0.1", port, "GET", "/stats", "", &error);
    ASSERT_TRUE(stats.has_value()) << error;
    std::optional<json::Value> parsed = json::Parse(stats->body, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    if (parsed->Find("ingest_queue_depth")->AsUint64().value_or(1) == 0 &&
        parsed->Find("num_times")->AsUint64().value_or(0) >= 13u) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);  // answers never wavered during ingestion
  EXPECT_EQ(graph.num_times(), 13u);
  // Zero invalidations: the cached t0..t1 answer depends on no appended
  // time point, so per-entry invalidation leaves it untouched (PR 5
  // semantics) — the acceptance criterion of this PR.
  EXPECT_EQ(engine.cache_stats().invalidations, 0u);
  EXPECT_GE(engine.cache_stats().hits, 1u);

  server.Shutdown();
  EXPECT_FALSE(server.running());
}

TEST(ServerConcurrencyTest, ShutdownWhileClientsActiveDrainsCleanly) {
  TemporalGraph graph = graphtempo::testing::BuildPaperGraph();
  engine::QueryEngine engine(&graph);
  ServerConfig config;
  config.worker_threads = 2;
  Server server(&graph, &engine, config);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  const int port = server.port();

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      const std::string query = R"({"t1":"t0","attrs":["gender"]})";
      while (!stop.load()) {
        std::string fetch_error;
        // Failures are expected once the listener closes; the point is that
        // shutdown never hangs or races the in-flight handlers (TSan).
        HttpFetch("127.0.0.1", port, "POST", "/query", query, &fetch_error, 2000);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Shutdown();
  stop.store(true);
  for (std::thread& client : clients) client.join();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace graphtempo::server
