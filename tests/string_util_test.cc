#include "util/string_util.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace graphtempo {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a\tb\tc", '\t'), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a||b", '|'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("|", '|'), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoDelimiterYieldsWholeString) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"x", "", "yz"};
  EXPECT_EQ(Split(Join(parts, ';'), ';'), parts);
}

TEST(JoinTest, SingleAndEmpty) {
  EXPECT_EQ(Join({}, ','), "");
  EXPECT_EQ(Join({"solo"}, ','), "solo");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StripWhitespaceTest, InteriorWhitespaceKept) {
  EXPECT_EQ(StripWhitespace(" a b "), "a b");
}

TEST(ParseUint64Test, ParsesDigits) {
  std::uint64_t value = 0;
  EXPECT_TRUE(ParseUint64("0", &value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(ParseUint64("12345", &value));
  EXPECT_EQ(value, 12345u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &value));
  EXPECT_EQ(value, UINT64_MAX);
}

TEST(ParseUint64Test, RejectsGarbage) {
  std::uint64_t value = 0;
  EXPECT_FALSE(ParseUint64("", &value));
  EXPECT_FALSE(ParseUint64("-1", &value));
  EXPECT_FALSE(ParseUint64("12a", &value));
  EXPECT_FALSE(ParseUint64(" 1", &value));
}

TEST(ParseUint64Test, RejectsOverflow) {
  std::uint64_t value = 0;
  EXPECT_FALSE(ParseUint64("18446744073709551616", &value));  // 2^64
  EXPECT_FALSE(ParseUint64("99999999999999999999", &value));
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("!section", "!"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(StartsWith("abc", "abc"));
  EXPECT_FALSE(StartsWith("abc", "abcd"));
  EXPECT_FALSE(StartsWith("abc", "b"));
}

}  // namespace
}  // namespace graphtempo
