#include "core/edge_list_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_graphs.h"

namespace graphtempo {
namespace {

using testing::BuildPaperGraph;

TEST(ReadEdgeListTest, BasicTriples) {
  std::istringstream in(
      "# src dst time\n"
      "a\tb\t2000\n"
      "b\tc\t2001\n"
      "a\tb\t2001\n");
  std::string error;
  std::optional<TemporalGraph> graph = ReadEdgeList(&in, &error);
  ASSERT_TRUE(graph.has_value()) << error;
  EXPECT_EQ(graph->num_times(), 2u);
  EXPECT_EQ(graph->time_label(0), "2000");
  EXPECT_EQ(graph->num_nodes(), 3u);
  EXPECT_EQ(graph->num_edges(), 2u);
  NodeId a = *graph->FindNode("a");
  NodeId b = *graph->FindNode("b");
  EdgeId ab = *graph->FindEdge(a, b);
  EXPECT_TRUE(graph->EdgePresentAt(ab, 0));
  EXPECT_TRUE(graph->EdgePresentAt(ab, 1));
  // Edge presence implies node presence (Def 2.1).
  EXPECT_TRUE(graph->NodePresentAt(a, 0));
  EXPECT_FALSE(graph->NodePresentAt(*graph->FindNode("c"), 0));
}

TEST(ReadEdgeListTest, NumericTimesSortNumerically) {
  std::istringstream in("a\tb\t10\na\tb\t2\na\tb\t1\n");
  std::string error;
  std::optional<TemporalGraph> graph = ReadEdgeList(&in, &error);
  ASSERT_TRUE(graph.has_value()) << error;
  EXPECT_EQ(graph->time_label(0), "1");
  EXPECT_EQ(graph->time_label(1), "2");
  EXPECT_EQ(graph->time_label(2), "10");  // not lexicographic ("10" < "2")
}

TEST(ReadEdgeListTest, NonNumericTimesSortLexicographically) {
  std::istringstream in("a\tb\tMay\na\tb\tAug\n");
  std::string error;
  std::optional<TemporalGraph> graph = ReadEdgeList(&in, &error);
  ASSERT_TRUE(graph.has_value()) << error;
  EXPECT_EQ(graph->time_label(0), "Aug");
  EXPECT_EQ(graph->time_label(1), "May");
}

TEST(ReadEdgeListTest, EmptyInputFails) {
  std::istringstream in("# only comments\n");
  std::string error;
  EXPECT_EQ(ReadEdgeList(&in, &error), std::nullopt);
  EXPECT_NE(error.find("empty"), std::string::npos);
}

TEST(ReadEdgeListTest, MalformedRowFails) {
  std::istringstream in("a\tb\n");
  std::string error;
  EXPECT_EQ(ReadEdgeList(&in, &error), std::nullopt);
  EXPECT_NE(error.find("src, dst, time"), std::string::npos);
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(EdgeListRoundTripTest, PaperGraphEdgesSurvive) {
  TemporalGraph graph = BuildPaperGraph();
  std::ostringstream out;
  WriteEdgeList(graph, &out);
  std::istringstream in(out.str());
  std::string error;
  std::optional<TemporalGraph> restored = ReadEdgeList(&in, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_EQ(restored->num_edges(), graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    auto [src, dst] = graph.edge(e);
    NodeId rsrc = *restored->FindNode(graph.node_label(src));
    NodeId rdst = *restored->FindNode(graph.node_label(dst));
    EdgeId re = *restored->FindEdge(rsrc, rdst);
    for (TimeId t = 0; t < 3; ++t) {
      EXPECT_EQ(graph.EdgePresentAt(e, t), restored->EdgePresentAt(re, t));
    }
  }
}

TEST(StaticAttributeTsvTest, ReadsValues) {
  std::istringstream edges("a\tb\t1\n");
  std::string error;
  std::optional<TemporalGraph> graph = ReadEdgeList(&edges, &error);
  ASSERT_TRUE(graph.has_value());
  std::istringstream attrs("a\tf\nb\tm\n");
  ASSERT_TRUE(ReadStaticAttributeTsv(&*graph, &attrs, "gender", &error)) << error;
  AttrRef gender = *graph->FindAttribute("gender");
  EXPECT_EQ(graph->ValueName(gender, graph->ValueCodeAt(gender, *graph->FindNode("a"), 0)),
            "f");
}

TEST(StaticAttributeTsvTest, UnknownNodeFails) {
  std::istringstream edges("a\tb\t1\n");
  std::string error;
  std::optional<TemporalGraph> graph = ReadEdgeList(&edges, &error);
  std::istringstream attrs("zzz\tf\n");
  EXPECT_FALSE(ReadStaticAttributeTsv(&*graph, &attrs, "gender", &error));
  EXPECT_NE(error.find("unknown node"), std::string::npos);
}

TEST(StaticAttributeTsvTest, KindConflictFails) {
  std::istringstream edges("a\tb\t1\n");
  std::string error;
  std::optional<TemporalGraph> graph = ReadEdgeList(&edges, &error);
  graph->AddTimeVaryingAttribute("gender");
  std::istringstream attrs("a\tf\n");
  EXPECT_FALSE(ReadStaticAttributeTsv(&*graph, &attrs, "gender", &error));
  EXPECT_NE(error.find("time-varying"), std::string::npos);
}

TEST(TimeVaryingAttributeTsvTest, ReadsValuesAndMarksPresence) {
  std::istringstream edges("a\tb\t1\na\tb\t2\n");
  std::string error;
  std::optional<TemporalGraph> graph = ReadEdgeList(&edges, &error);
  ASSERT_TRUE(graph.has_value());
  NodeId c = graph->GetOrAddNode("c");  // isolated node, no presence yet
  std::istringstream attrs("a\t1\t3\nc\t2\t7\n");
  ASSERT_TRUE(ReadTimeVaryingAttributeTsv(&*graph, &attrs, "score", &error)) << error;
  AttrRef score = *graph->FindAttribute("score");
  EXPECT_EQ(graph->ValueName(score, graph->ValueCodeAt(score, *graph->FindNode("a"), 0)),
            "3");
  // The observation made c present at time "2" (index 1).
  EXPECT_TRUE(graph->NodePresentAt(c, 1));
  EXPECT_EQ(graph->ValueName(score, graph->ValueCodeAt(score, c, 1)), "7");
}

TEST(TimeVaryingAttributeTsvTest, UnknownTimeFails) {
  std::istringstream edges("a\tb\t1\n");
  std::string error;
  std::optional<TemporalGraph> graph = ReadEdgeList(&edges, &error);
  std::istringstream attrs("a\t99\tv\n");
  EXPECT_FALSE(ReadTimeVaryingAttributeTsv(&*graph, &attrs, "score", &error));
  EXPECT_NE(error.find("unknown time"), std::string::npos);
}

TEST(EdgeListFileTest, MissingFileReportsError) {
  std::string error;
  EXPECT_EQ(ReadEdgeListFromFile("/nonexistent/el.tsv", &error), std::nullopt);
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace graphtempo
