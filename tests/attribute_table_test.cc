#include "storage/attribute_table.h"

#include <gtest/gtest.h>

namespace graphtempo {
namespace {

TEST(StaticColumnTest, UnsetCellsAreNoValue) {
  StaticColumn column("gender");
  column.Resize(3);
  EXPECT_EQ(column.CodeAt(0), kNoValue);
  EXPECT_EQ(column.CodeAt(2), kNoValue);
}

TEST(StaticColumnTest, SetAndGet) {
  StaticColumn column("gender");
  column.Resize(2);
  column.Set(0, "m");
  column.Set(1, "f");
  EXPECT_EQ(column.ValueAt(0), "m");
  EXPECT_EQ(column.ValueAt(1), "f");
  EXPECT_NE(column.CodeAt(0), column.CodeAt(1));
}

TEST(StaticColumnTest, SharedValuesShareCodes) {
  StaticColumn column("gender");
  column.Resize(3);
  column.Set(0, "f");
  column.Set(1, "m");
  column.Set(2, "f");
  EXPECT_EQ(column.CodeAt(0), column.CodeAt(2));
  EXPECT_EQ(column.dictionary().size(), 2u);
}

TEST(StaticColumnTest, ResizePreservesExistingValues) {
  StaticColumn column("c");
  column.Resize(1);
  column.Set(0, "x");
  column.Resize(5);
  EXPECT_EQ(column.ValueAt(0), "x");
  EXPECT_EQ(column.CodeAt(4), kNoValue);
}

TEST(StaticColumnTest, OverwriteChangesValue) {
  StaticColumn column("c");
  column.Resize(1);
  column.Set(0, "a");
  column.Set(0, "b");
  EXPECT_EQ(column.ValueAt(0), "b");
}

TEST(TimeVaryingColumnTest, UnsetCellsAreNoValue) {
  TimeVaryingColumn column("pubs", 3);
  column.Resize(2);
  for (std::size_t n = 0; n < 2; ++n) {
    for (std::size_t t = 0; t < 3; ++t) {
      EXPECT_EQ(column.CodeAt(n, t), kNoValue);
    }
  }
}

TEST(TimeVaryingColumnTest, SetAndGetPerTime) {
  TimeVaryingColumn column("pubs", 3);
  column.Resize(1);
  column.Set(0, 0, "3");
  column.Set(0, 1, "1");
  EXPECT_EQ(column.ValueAt(0, 0), "3");
  EXPECT_EQ(column.ValueAt(0, 1), "1");
  EXPECT_EQ(column.CodeAt(0, 2), kNoValue);
}

TEST(TimeVaryingColumnTest, SizeTracksEntities) {
  TimeVaryingColumn column("pubs", 4);
  EXPECT_EQ(column.size(), 0u);
  column.Resize(7);
  EXPECT_EQ(column.size(), 7u);
  EXPECT_EQ(column.num_times(), 4u);
}

TEST(TimeVaryingColumnTest, ValuesSharedAcrossCells) {
  TimeVaryingColumn column("pubs", 2);
  column.Resize(2);
  column.Set(0, 0, "1");
  column.Set(1, 1, "1");
  EXPECT_EQ(column.CodeAt(0, 0), column.CodeAt(1, 1));
}

TEST(TimeVaryingColumnDeath, TimeOutOfRangeAborts) {
  TimeVaryingColumn column("pubs", 2);
  column.Resize(1);
  EXPECT_DEATH(column.Set(0, 2, "x"), "time out of range");
}

TEST(StaticColumnDeath, EntityOutOfRangeAborts) {
  StaticColumn column("gender");
  column.Resize(1);
  EXPECT_DEATH(column.Set(3, "x"), "out of range");
}

TEST(StaticColumnDeath, ValueAtOnUnsetAborts) {
  StaticColumn column("gender");
  column.Resize(1);
  EXPECT_DEATH(column.ValueAt(0), "unset");
}

}  // namespace
}  // namespace graphtempo
