#include "storage/bitset.h"

#include <gtest/gtest.h>

#include <vector>

#include "datagen/random.h"

namespace graphtempo {
namespace {

TEST(DynamicBitsetTest, StartsEmpty) {
  DynamicBitset bits(10);
  EXPECT_EQ(bits.size(), 10u);
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_TRUE(bits.None());
  EXPECT_FALSE(bits.Any());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_FALSE(bits.Test(i));
}

TEST(DynamicBitsetTest, ZeroSizeIsValid) {
  DynamicBitset bits(0);
  EXPECT_EQ(bits.size(), 0u);
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_TRUE(bits.None());
}

TEST(DynamicBitsetTest, SetAndTest) {
  DynamicBitset bits(130);  // spans three words
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_FALSE(bits.Test(65));
  EXPECT_EQ(bits.Count(), 4u);
}

TEST(DynamicBitsetTest, SetWithValueAndReset) {
  DynamicBitset bits(8);
  bits.Set(3);
  bits.Set(3, false);
  EXPECT_FALSE(bits.Test(3));
  bits.Set(5, true);
  EXPECT_TRUE(bits.Test(5));
  bits.Reset(5);
  EXPECT_FALSE(bits.Test(5));
}

TEST(DynamicBitsetTest, ClearAndSetAll) {
  DynamicBitset bits(70);
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 70u);  // padding bits must not leak into the count
  bits.Clear();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(DynamicBitsetTest, SetAllOnExactWordBoundary) {
  DynamicBitset bits(128);
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 128u);
  EXPECT_TRUE(bits.Test(127));
}

TEST(DynamicBitsetTest, SetRange) {
  DynamicBitset bits(100);
  bits.SetRange(10, 20);
  EXPECT_EQ(bits.Count(), 11u);
  EXPECT_FALSE(bits.Test(9));
  EXPECT_TRUE(bits.Test(10));
  EXPECT_TRUE(bits.Test(20));
  EXPECT_FALSE(bits.Test(21));
}

TEST(DynamicBitsetTest, SetRangeSinglePoint) {
  DynamicBitset bits(5);
  bits.SetRange(2, 2);
  EXPECT_EQ(bits.Count(), 1u);
  EXPECT_TRUE(bits.Test(2));
}

TEST(DynamicBitsetTest, FirstAndLastSet) {
  DynamicBitset bits(200);
  bits.Set(66);
  bits.Set(130);
  bits.Set(190);
  EXPECT_EQ(bits.FirstSet(), 66u);
  EXPECT_EQ(bits.LastSet(), 190u);
}

TEST(DynamicBitsetTest, Intersects) {
  DynamicBitset a(80);
  DynamicBitset b(80);
  a.Set(70);
  b.Set(71);
  EXPECT_FALSE(a.Intersects(b));
  b.Set(70);
  EXPECT_TRUE(a.Intersects(b));
}

TEST(DynamicBitsetTest, IsSubsetOf) {
  DynamicBitset a(80);
  DynamicBitset b(80);
  a.Set(3);
  a.Set(70);
  b.Set(3);
  b.Set(70);
  b.Set(12);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  DynamicBitset empty(80);
  EXPECT_TRUE(empty.IsSubsetOf(a));  // ∅ ⊆ anything
}

TEST(DynamicBitsetTest, SetAlgebra) {
  DynamicBitset a(10);
  DynamicBitset b(10);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);

  DynamicBitset and_result = a & b;
  EXPECT_EQ(and_result.Count(), 1u);
  EXPECT_TRUE(and_result.Test(2));

  DynamicBitset or_result = a | b;
  EXPECT_EQ(or_result.Count(), 3u);

  DynamicBitset minus_result = a - b;
  EXPECT_EQ(minus_result.Count(), 1u);
  EXPECT_TRUE(minus_result.Test(1));
}

TEST(DynamicBitsetTest, EqualityAndCopies) {
  DynamicBitset a(40);
  a.Set(17);
  DynamicBitset b = a;
  EXPECT_EQ(a, b);
  b.Set(18);
  EXPECT_NE(a, b);
}

TEST(DynamicBitsetTest, ForEachSetBitAscending) {
  DynamicBitset bits(150);
  std::vector<std::size_t> expected = {0, 5, 63, 64, 100, 149};
  for (std::size_t i : expected) bits.Set(i);
  std::vector<std::size_t> seen;
  bits.ForEachSetBit([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(bits.ToIndexVector(), expected);
}

TEST(DynamicBitsetTest, RandomizedAgainstReferenceModel) {
  datagen::Pcg32 rng(42);
  for (int round = 0; round < 20; ++round) {
    std::size_t size = 1 + rng.NextBelow(300);
    DynamicBitset bits(size);
    std::vector<bool> model(size, false);
    for (int op = 0; op < 200; ++op) {
      std::size_t index = rng.NextBelow(static_cast<std::uint32_t>(size));
      bool value = rng.NextBool(0.5);
      bits.Set(index, value);
      model[index] = value;
    }
    std::size_t model_count = 0;
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_EQ(bits.Test(i), model[i]) << "index " << i;
      if (model[i]) ++model_count;
    }
    EXPECT_EQ(bits.Count(), model_count);
  }
}

TEST(DynamicBitsetDeath, OutOfRangeSetAborts) {
  DynamicBitset bits(4);
  EXPECT_DEATH(bits.Set(4), "out of range");
}

TEST(DynamicBitsetDeath, MismatchedSizesAbort) {
  DynamicBitset a(4);
  DynamicBitset b(5);
  EXPECT_DEATH(a &= b, "size mismatch");
}

TEST(DynamicBitsetDeath, FirstSetOnEmptyAborts) {
  DynamicBitset bits(4);
  EXPECT_DEATH(bits.FirstSet(), "empty");
}

}  // namespace
}  // namespace graphtempo
