#include "storage/dictionary.h"

#include <gtest/gtest.h>

namespace graphtempo {
namespace {

TEST(DictionaryTest, StartsEmpty) {
  Dictionary dict;
  EXPECT_TRUE(dict.empty());
  EXPECT_EQ(dict.size(), 0u);
}

TEST(DictionaryTest, CodesAreDenseInInsertionOrder) {
  Dictionary dict;
  EXPECT_EQ(dict.GetOrAdd("m"), 0u);
  EXPECT_EQ(dict.GetOrAdd("f"), 1u);
  EXPECT_EQ(dict.GetOrAdd("x"), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, GetOrAddIsIdempotent) {
  Dictionary dict;
  AttrValueId first = dict.GetOrAdd("value");
  AttrValueId second = dict.GetOrAdd("value");
  EXPECT_EQ(first, second);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, FindReturnsExistingCodesOnly) {
  Dictionary dict;
  dict.GetOrAdd("a");
  EXPECT_EQ(dict.Find("a"), std::optional<AttrValueId>(0u));
  EXPECT_EQ(dict.Find("b"), std::nullopt);
}

TEST(DictionaryTest, ValueOfRoundTrips) {
  Dictionary dict;
  AttrValueId code = dict.GetOrAdd("hello");
  EXPECT_EQ(dict.ValueOf(code), "hello");
}

TEST(DictionaryTest, EmptyStringIsAValidValue) {
  Dictionary dict;
  AttrValueId code = dict.GetOrAdd("");
  EXPECT_EQ(dict.ValueOf(code), "");
  EXPECT_EQ(dict.Find(""), std::optional<AttrValueId>(code));
}

TEST(DictionaryTest, ManyValues) {
  Dictionary dict;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(dict.GetOrAdd("v" + std::to_string(i)), static_cast<AttrValueId>(i));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(dict.ValueOf(static_cast<AttrValueId>(i)), "v" + std::to_string(i));
  }
}

TEST(DictionaryDeath, ValueOfOutOfRangeAborts) {
  Dictionary dict;
  dict.GetOrAdd("a");
  EXPECT_DEATH(dict.ValueOf(5), "out of range");
}

}  // namespace
}  // namespace graphtempo
