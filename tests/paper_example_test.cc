/// End-to-end walkthrough of the paper's running example: builds the Fig 1
/// graph and checks every derived artifact the paper shows — the Table 2
/// labeled arrays, the Fig 2 union graph, the Fig 3 aggregates, the Fig 4
/// evolution graph — plus a full exploration pass over it.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/evolution.h"
#include "core/exploration.h"
#include "core/graph_io.h"
#include "core/materialization.h"
#include "core/operators.h"
#include "test_graphs.h"

namespace graphtempo {
namespace {

using testing::BuildPaperGraph;

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest() : graph_(BuildPaperGraph()) {
    gender_ = *graph_.FindAttribute("gender");
    pubs_ = *graph_.FindAttribute("publications");
    both_ = {gender_, pubs_};
  }

  AttrTuple GP(const std::string& g, const std::string& p) const {
    AttrTuple tuple;
    tuple.Append(*graph_.FindValueCode(gender_, g));
    tuple.Append(*graph_.FindValueCode(pubs_, p));
    return tuple;
  }

  TemporalGraph graph_;
  AttrRef gender_;
  AttrRef pubs_;
  std::vector<AttrRef> both_;
};

// --- Table 2: the labeled arrays V, S, A -------------------------------------------

TEST_F(PaperExampleTest, Table2NodeArray) {
  // V: one row per node, one 0/1 column per time point.
  struct Row {
    const char* node;
    bool t0, t1, t2;
  };
  const Row expected[] = {
      {"u1", 1, 1, 0}, {"u2", 1, 1, 1}, {"u3", 1, 0, 0}, {"u4", 1, 1, 1},
      {"u5", 0, 0, 1},
  };
  for (const Row& row : expected) {
    NodeId n = *graph_.FindNode(row.node);
    EXPECT_EQ(graph_.NodePresentAt(n, 0), row.t0) << row.node;
    EXPECT_EQ(graph_.NodePresentAt(n, 1), row.t1) << row.node;
    EXPECT_EQ(graph_.NodePresentAt(n, 2), row.t2) << row.node;
  }
}

TEST_F(PaperExampleTest, Table2StaticArray) {
  const std::pair<const char*, const char*> expected[] = {
      {"u1", "m"}, {"u2", "f"}, {"u3", "f"}, {"u4", "f"}, {"u5", "m"},
  };
  for (const auto& [node, gender] : expected) {
    NodeId n = *graph_.FindNode(node);
    EXPECT_EQ(graph_.ValueName(gender_, graph_.ValueCodeAt(gender_, n, 0)), gender);
  }
}

TEST_F(PaperExampleTest, Table2TimeVaryingArray) {
  // '-' cells of the paper's A array are kNoValue here.
  struct Row {
    const char* node;
    const char* t0;
    const char* t1;
    const char* t2;  // nullptr = '-'
  };
  const Row expected[] = {
      {"u1", "3", "1", nullptr}, {"u2", "1", "1", "1"},       {"u3", "1", nullptr, nullptr},
      {"u4", "2", "1", "1"},     {"u5", nullptr, nullptr, "3"},
  };
  for (const Row& row : expected) {
    NodeId n = *graph_.FindNode(row.node);
    const char* cells[3] = {row.t0, row.t1, row.t2};
    for (TimeId t = 0; t < 3; ++t) {
      AttrValueId code = graph_.ValueCodeAt(pubs_, n, t);
      if (cells[t] == nullptr) {
        EXPECT_EQ(code, kNoValue) << row.node << " t" << t;
      } else {
        ASSERT_NE(code, kNoValue) << row.node << " t" << t;
        EXPECT_EQ(graph_.ValueName(pubs_, code), cells[t]) << row.node << " t" << t;
      }
    }
  }
}

// --- Figure 2: the union graph on [t0, t1] ------------------------------------------

TEST_F(PaperExampleTest, Figure2UnionGraph) {
  GraphView view = UnionOp(graph_, IntervalSet::Point(3, 0), IntervalSet::Point(3, 1));
  EXPECT_EQ(view.NodeCount(), 4u);  // u1..u4; u5 only exists at t2
  EXPECT_EQ(view.EdgeCount(), 5u);
  EXPECT_FALSE(std::binary_search(view.nodes.begin(), view.nodes.end(),
                                  *graph_.FindNode("u5")));
}

// --- Figure 3: aggregate weights quoted in the paper text ----------------------------

TEST_F(PaperExampleTest, Figure3HeadlineWeights) {
  GraphView view = UnionOp(graph_, IntervalSet::Point(3, 0), IntervalSet::Point(3, 1));
  AggregateGraph dist = Aggregate(graph_, view, both_, AggregationSemantics::kDistinct);
  AggregateGraph all = Aggregate(graph_, view, both_, AggregationSemantics::kAll);
  // "The weight for the node 'f,1' in G'_DIST is equal to 3 … while in
  //  G'_ALL it is equal to 4."
  EXPECT_EQ(dist.NodeWeight(GP("f", "1")), 3);
  EXPECT_EQ(all.NodeWeight(GP("f", "1")), 4);
}

// --- Figure 4: the evolution graph and its aggregation -------------------------------

TEST_F(PaperExampleTest, Figure4Evolution) {
  IntervalSet t0 = IntervalSet::Point(3, 0);
  IntervalSet t1 = IntervalSet::Point(3, 1);
  EvolutionGraph evolution = MakeEvolutionGraph(graph_, t0, t1);
  // V> = V∩ ∪ V− ∪ V'−  = {u1,u2,u4} ∪ {u1,u3,u4} ∪ {u1,u4}.
  EXPECT_EQ(evolution.stability.NodeCount() , 3u);
  EXPECT_EQ(evolution.shrinkage.NodeCount(), 3u);
  EXPECT_EQ(evolution.growth.NodeCount(), 2u);

  EvolutionAggregate agg = AggregateEvolution(graph_, t0, t1, both_);
  // "node (f,1) … has a) stability weight 1 … b) growth weight 1 …
  //  c) shrinkage weight 1".
  EvolutionWeights f1 = agg.NodeWeights(GP("f", "1"));
  EXPECT_EQ(f1.stability, 1);
  EXPECT_EQ(f1.growth, 1);
  EXPECT_EQ(f1.shrinkage, 1);
  EXPECT_EQ(f1.ForEvent(EventType::kStability), 1);
  EXPECT_EQ(f1.ForEvent(EventType::kGrowth), 1);
  EXPECT_EQ(f1.ForEvent(EventType::kShrinkage), 1);
}

// --- Exploration over the example -----------------------------------------------------

TEST_F(PaperExampleTest, ExplorationFindsTheStableCollaboration) {
  // The f→f collaboration (u2,u4) persists across all three time points, so
  // maximal-stability exploration with k=1 must return full-length pairs.
  EntitySelector selector;
  selector.kind = EntitySelector::Kind::kEdges;
  selector.attrs = {gender_};
  AttrTuple f;
  f.Append(*graph_.FindValueCode(gender_, "f"));
  selector.src_tuple = f;
  selector.dst_tuple = f;

  ExplorationSpec spec;
  spec.event = EventType::kStability;
  spec.semantics = ExtensionSemantics::kIntersection;
  spec.reference = ReferenceEnd::kOld;
  spec.selector = selector;
  spec.k = 1;
  ExplorationResult result = Explore(graph_, spec);
  ASSERT_EQ(result.pairs.size(), 2u);
  EXPECT_EQ(result.pairs[0].old_range, (TimeRange{0, 0}));
  EXPECT_EQ(result.pairs[0].new_range, (TimeRange{1, 2}));  // maximal extension
  EXPECT_EQ(result.pairs[0].count, 1);
}

// --- Materialization over the example ---------------------------------------------------

TEST_F(PaperExampleTest, MaterializedRollUpChain) {
  // (gender, publications) per-time-point aggregates → union-ALL over
  // [t0,t1] → roll-up to gender — all without touching the graph again.
  MaterializationStore store(&graph_, both_);
  store.MaterializeAllTimePoints();
  AggregateGraph fine = store.UnionAllAggregate(IntervalSet::Range(3, 0, 1));
  const std::size_t keep_gender[] = {0};
  AggregateGraph coarse = RollUp(fine, keep_gender);

  GraphView view = UnionOp(graph_, IntervalSet::Point(3, 0), IntervalSet::Point(3, 1));
  std::vector<AttrRef> gender_only = {gender_};
  AggregateGraph direct = Aggregate(graph_, view, gender_only,
                                    AggregationSemantics::kAll);
  EXPECT_EQ(coarse, direct);
}

// --- Round trip through the on-disk format ----------------------------------------------

TEST_F(PaperExampleTest, SurvivesSerializationWithIdenticalResults) {
  std::ostringstream out;
  WriteGraph(graph_, &out);
  std::istringstream in(out.str());
  std::string error;
  std::optional<TemporalGraph> restored = ReadGraph(&in, &error);
  ASSERT_TRUE(restored.has_value()) << error;

  std::vector<AttrRef> attrs = ResolveAttributes(*restored, {"gender", "publications"});
  GraphView view =
      UnionOp(*restored, IntervalSet::Point(3, 0), IntervalSet::Point(3, 1));
  AggregateGraph dist = Aggregate(*restored, view, attrs,
                                  AggregationSemantics::kDistinct);
  AttrRef g2 = attrs[0];
  AttrRef p2 = attrs[1];
  AttrTuple f1;
  f1.Append(*restored->FindValueCode(g2, "f"));
  f1.Append(*restored->FindValueCode(p2, "1"));
  EXPECT_EQ(dist.NodeWeight(f1), 3);
}

}  // namespace
}  // namespace graphtempo
