#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/aggregation.h"
#include "core/operators.h"
#include "test_graphs.h"

namespace graphtempo {
namespace {

using testing::BuildRandomGraph;

/// Restores the process-wide parallelism after each test so the rest of the
/// suite is unaffected.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { SetParallelism(1); }
};

TEST_F(ParallelTest, DefaultIsSerial) {
  EXPECT_EQ(GetParallelism(), 1u);
  ParallelPartition partition(100000);
  EXPECT_EQ(partition.num_chunks(), 1u);
}

TEST_F(ParallelTest, SetAndGet) {
  SetParallelism(4);
  EXPECT_EQ(GetParallelism(), 4u);
}

TEST_F(ParallelTest, ChunksCoverRangeExactlyOnce) {
  SetParallelism(4);
  for (std::size_t count : {0u, 1u, 63u, 64u, 100u, 4096u, 10000u, 65537u}) {
    ParallelPartition partition(count, /*min_per_chunk=*/16, /*alignment=*/64);
    std::size_t covered = 0;
    std::size_t previous_end = 0;
    for (std::size_t c = 0; c < partition.num_chunks(); ++c) {
      auto [begin, end] = partition.chunk(c);
      EXPECT_EQ(begin, previous_end) << "gap before chunk " << c;
      EXPECT_LE(begin, end);
      covered += end - begin;
      previous_end = end;
    }
    EXPECT_EQ(previous_end, count);
    EXPECT_EQ(covered, count);
  }
}

TEST_F(ParallelTest, ChunkBoundariesAreAligned) {
  SetParallelism(8);
  ParallelPartition partition(100000, /*min_per_chunk=*/16, /*alignment=*/64);
  ASSERT_GT(partition.num_chunks(), 1u);
  for (std::size_t c = 1; c < partition.num_chunks(); ++c) {
    EXPECT_EQ(partition.chunk(c).first % 64, 0u) << "chunk " << c;
  }
}

TEST_F(ParallelTest, SmallInputsStaySerial) {
  SetParallelism(8);
  ParallelPartition partition(100, /*min_per_chunk=*/2048);
  EXPECT_EQ(partition.num_chunks(), 1u);
}

TEST_F(ParallelTest, RunVisitsEveryIndexOnce) {
  SetParallelism(4);
  const std::size_t count = 50000;
  std::vector<std::atomic<int>> visits(count);
  ParallelPartition partition(count, /*min_per_chunk=*/16);
  EXPECT_GT(partition.num_chunks(), 1u);
  partition.Run([&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelTest, ParallelForSumsCorrectly) {
  SetParallelism(3);
  const std::size_t count = 100000;
  std::atomic<std::uint64_t> total{0};
  ParallelFor(count, [&](std::size_t, std::size_t begin, std::size_t end) {
    std::uint64_t local = 0;
    for (std::size_t i = begin; i < end; ++i) local += i;
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), static_cast<std::uint64_t>(count) * (count - 1) / 2);
}

// The operators must produce bit-identical views at any thread count.
TEST_F(ParallelTest, OperatorsAreDeterministicAcrossThreadCounts) {
  TemporalGraph graph = BuildRandomGraph(91, 3000, 10, 0.4, 3, 4, 0.02);
  IntervalSet a = IntervalSet::Range(10, 0, 4);
  IntervalSet b = IntervalSet::Range(10, 5, 9);

  SetParallelism(1);
  GraphView union_serial = UnionOp(graph, a, b);
  GraphView inter_serial = IntersectionOp(graph, a, b);
  GraphView diff_serial = DifferenceOp(graph, a, b);
  GraphView project_serial = Project(graph, a);

  for (std::size_t threads : {2u, 4u, 7u}) {
    SetParallelism(threads);
    // Force multiple chunks even for this modest graph.
    GraphView union_parallel = UnionOp(graph, a, b);
    EXPECT_EQ(union_parallel.nodes, union_serial.nodes) << threads << " threads";
    EXPECT_EQ(union_parallel.edges, union_serial.edges) << threads << " threads";
    GraphView inter_parallel = IntersectionOp(graph, a, b);
    EXPECT_EQ(inter_parallel.nodes, inter_serial.nodes);
    EXPECT_EQ(inter_parallel.edges, inter_serial.edges);
    GraphView diff_parallel = DifferenceOp(graph, a, b);
    EXPECT_EQ(diff_parallel.nodes, diff_serial.nodes);
    EXPECT_EQ(diff_parallel.edges, diff_serial.edges);
    GraphView project_parallel = Project(graph, a);
    EXPECT_EQ(project_parallel.nodes, project_serial.nodes);
    EXPECT_EQ(project_parallel.edges, project_serial.edges);
  }
}

TEST_F(ParallelTest, AggregationUnaffectedByParallelOperators) {
  TemporalGraph graph = BuildRandomGraph(92, 2000, 8, 0.4, 3, 4, 0.03);
  std::vector<AttrRef> attrs = ResolveAttributes(graph, {"color"});
  IntervalSet a = IntervalSet::Range(8, 0, 3);
  IntervalSet b = IntervalSet::Range(8, 4, 7);

  SetParallelism(1);
  AggregateGraph serial = Aggregate(graph, UnionOp(graph, a, b), attrs,
                                    AggregationSemantics::kAll);
  SetParallelism(6);
  AggregateGraph parallel = Aggregate(graph, UnionOp(graph, a, b), attrs,
                                      AggregationSemantics::kAll);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelDeath, ZeroThreadsAborts) { EXPECT_DEATH(SetParallelism(0), "at least 1"); }

}  // namespace
}  // namespace graphtempo
