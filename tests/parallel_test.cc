#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "core/aggregation.h"
#include "core/operators.h"
#include "test_graphs.h"

namespace graphtempo {
namespace {

using testing::BuildRandomGraph;

/// Restores the process-wide parallelism after each test so the rest of the
/// suite is unaffected.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { SetParallelism(1); }
};

TEST_F(ParallelTest, DefaultIsSerial) {
  EXPECT_EQ(GetParallelism(), 1u);
  ParallelPartition partition(100000);
  EXPECT_EQ(partition.num_chunks(), 1u);
}

TEST_F(ParallelTest, SetAndGet) {
  SetParallelism(4);
  EXPECT_EQ(GetParallelism(), 4u);
}

TEST_F(ParallelTest, ChunksCoverRangeExactlyOnce) {
  SetParallelism(4);
  for (std::size_t count : {0u, 1u, 63u, 64u, 100u, 4096u, 10000u, 65537u}) {
    ParallelPartition partition(count, /*min_per_chunk=*/16, /*alignment=*/64);
    std::size_t covered = 0;
    std::size_t previous_end = 0;
    for (std::size_t c = 0; c < partition.num_chunks(); ++c) {
      auto [begin, end] = partition.chunk(c);
      EXPECT_EQ(begin, previous_end) << "gap before chunk " << c;
      EXPECT_LE(begin, end);
      covered += end - begin;
      previous_end = end;
    }
    EXPECT_EQ(previous_end, count);
    EXPECT_EQ(covered, count);
  }
}

TEST_F(ParallelTest, ChunkBoundariesAreAligned) {
  SetParallelism(8);
  ParallelPartition partition(100000, /*min_per_chunk=*/16, /*alignment=*/64);
  ASSERT_GT(partition.num_chunks(), 1u);
  for (std::size_t c = 1; c < partition.num_chunks(); ++c) {
    EXPECT_EQ(partition.chunk(c).first % 64, 0u) << "chunk " << c;
  }
}

TEST_F(ParallelTest, SmallInputsStaySerial) {
  SetParallelism(8);
  ParallelPartition partition(100, /*min_per_chunk=*/2048);
  EXPECT_EQ(partition.num_chunks(), 1u);
}

TEST_F(ParallelTest, RunVisitsEveryIndexOnce) {
  SetParallelism(4);
  const std::size_t count = 50000;
  std::vector<std::atomic<int>> visits(count);
  ParallelPartition partition(count, /*min_per_chunk=*/16);
  EXPECT_GT(partition.num_chunks(), 1u);
  partition.Run([&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelTest, ParallelForSumsCorrectly) {
  SetParallelism(3);
  const std::size_t count = 100000;
  std::atomic<std::uint64_t> total{0};
  ParallelFor(count, [&](std::size_t, std::size_t begin, std::size_t end) {
    std::uint64_t local = 0;
    for (std::size_t i = begin; i < end; ++i) local += i;
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), static_cast<std::uint64_t>(count) * (count - 1) / 2);
}

// Regression: under the old single-job hand-off slot, a Run issued from
// *inside* a worker chunk overwrote the owner's job pointer — nested scans
// either deadlocked (owner waiting on a job nobody completes) or corrupted
// the outer job's chunk accounting. The queue-based pool must execute every
// chunk of every nesting level exactly once.
TEST_F(ParallelTest, NestedRunFromWorkerChunkExecutesEveryChunkOnce) {
  SetParallelism(4);
  const std::size_t outer_count = 32;
  const std::size_t inner_count = 2048;
  std::vector<std::atomic<int>> outer_visits(outer_count);
  std::atomic<std::uint64_t> inner_total{0};

  ParallelPartition outer(outer_count, /*min_per_chunk=*/1, /*alignment=*/1);
  ASSERT_GT(outer.num_chunks(), 1u);
  outer.Run([&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      outer_visits[i].fetch_add(1);
      ParallelPartition inner(inner_count, /*min_per_chunk=*/16, /*alignment=*/1);
      inner.Run([&](std::size_t, std::size_t ib, std::size_t ie) {
        inner_total.fetch_add(ie - ib, std::memory_order_relaxed);
      });
    }
  });

  for (std::size_t i = 0; i < outer_count; ++i) {
    ASSERT_EQ(outer_visits[i].load(), 1) << "outer index " << i;
  }
  EXPECT_EQ(inner_total.load(),
            static_cast<std::uint64_t>(outer_count) * inner_count);
}

// Regression: two user threads issuing Run concurrently used to race on the
// single hand-off slot — the second owner silently replaced the first job and
// the first owner could block forever or miss chunks. With per-job queues
// both owners must see all their own chunks executed exactly once.
TEST_F(ParallelTest, ConcurrentOwnersEachCompleteTheirOwnJob) {
  SetParallelism(4);
  constexpr std::size_t kOwners = 4;
  constexpr std::size_t kRounds = 25;
  constexpr std::size_t kCount = 4096;
  std::atomic<std::uint64_t> totals[kOwners] = {};

  std::vector<std::thread> owners;
  for (std::size_t o = 0; o < kOwners; ++o) {
    owners.emplace_back([&, o] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        ParallelPartition partition(kCount, /*min_per_chunk=*/16, /*alignment=*/1);
        partition.Run([&](std::size_t, std::size_t begin, std::size_t end) {
          std::uint64_t local = 0;
          for (std::size_t i = begin; i < end; ++i) local += i;
          totals[o].fetch_add(local, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& owner : owners) owner.join();

  const std::uint64_t per_round =
      static_cast<std::uint64_t>(kCount) * (kCount - 1) / 2;
  for (std::size_t o = 0; o < kOwners; ++o) {
    EXPECT_EQ(totals[o].load(), per_round * kRounds) << "owner " << o;
  }
}

// Pool counters: a multi-chunk dispatch bumps jobs by 1 and chunks by the
// chunk count; single-chunk partitions run inline and do not count.
TEST_F(ParallelTest, PoolStatsCountJobsAndChunks) {
  SetParallelism(4);
  ResetPoolStats();
  ParallelPartition multi(1000, /*min_per_chunk=*/16, /*alignment=*/1);
  ASSERT_GT(multi.num_chunks(), 1u);
  multi.Run([](std::size_t, std::size_t, std::size_t) {});
  ParallelPartition single(10, /*min_per_chunk=*/2048);
  ASSERT_EQ(single.num_chunks(), 1u);
  single.Run([](std::size_t, std::size_t, std::size_t) {});
  PoolStats stats = GetPoolStats();
  EXPECT_EQ(stats.jobs, 1u);
  EXPECT_EQ(stats.chunks, multi.num_chunks());
  ResetPoolStats();
  EXPECT_EQ(GetPoolStats().jobs, 0u);
  EXPECT_EQ(GetPoolStats().chunks, 0u);
}

// The operators must produce bit-identical views at any thread count.
TEST_F(ParallelTest, OperatorsAreDeterministicAcrossThreadCounts) {
  TemporalGraph graph = BuildRandomGraph(91, 3000, 10, 0.4, 3, 4, 0.02);
  IntervalSet a = IntervalSet::Range(10, 0, 4);
  IntervalSet b = IntervalSet::Range(10, 5, 9);

  SetParallelism(1);
  GraphView union_serial = UnionOp(graph, a, b);
  GraphView inter_serial = IntersectionOp(graph, a, b);
  GraphView diff_serial = DifferenceOp(graph, a, b);
  GraphView project_serial = Project(graph, a);

  for (std::size_t threads : {2u, 4u, 7u}) {
    SetParallelism(threads);
    // Force multiple chunks even for this modest graph.
    GraphView union_parallel = UnionOp(graph, a, b);
    EXPECT_EQ(union_parallel.nodes, union_serial.nodes) << threads << " threads";
    EXPECT_EQ(union_parallel.edges, union_serial.edges) << threads << " threads";
    GraphView inter_parallel = IntersectionOp(graph, a, b);
    EXPECT_EQ(inter_parallel.nodes, inter_serial.nodes);
    EXPECT_EQ(inter_parallel.edges, inter_serial.edges);
    GraphView diff_parallel = DifferenceOp(graph, a, b);
    EXPECT_EQ(diff_parallel.nodes, diff_serial.nodes);
    EXPECT_EQ(diff_parallel.edges, diff_serial.edges);
    GraphView project_parallel = Project(graph, a);
    EXPECT_EQ(project_parallel.nodes, project_serial.nodes);
    EXPECT_EQ(project_parallel.edges, project_serial.edges);
  }
}

TEST_F(ParallelTest, AggregationUnaffectedByParallelOperators) {
  TemporalGraph graph = BuildRandomGraph(92, 2000, 8, 0.4, 3, 4, 0.03);
  std::vector<AttrRef> attrs = ResolveAttributes(graph, {"color"});
  IntervalSet a = IntervalSet::Range(8, 0, 3);
  IntervalSet b = IntervalSet::Range(8, 4, 7);

  SetParallelism(1);
  AggregateGraph serial = Aggregate(graph, UnionOp(graph, a, b), attrs,
                                    AggregationSemantics::kAll);
  SetParallelism(6);
  AggregateGraph parallel = Aggregate(graph, UnionOp(graph, a, b), attrs,
                                      AggregationSemantics::kAll);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelDeath, ZeroThreadsAborts) { EXPECT_DEATH(SetParallelism(0), "at least 1"); }

}  // namespace
}  // namespace graphtempo
