#include "obs/flight.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/trace.h"

namespace graphtempo::obs {
namespace {

/// Spans recorded with this name that a capture currently holds.
std::size_t CountByName(const FlightCapture& capture, const char* name) {
  std::size_t count = 0;
  for (const CollectedEvent& event : capture.events) {
    if (std::string(event.name) == name) ++count;
  }
  return count;
}

TEST(FlightRecorderTest, SpansLandWithoutAnyTraceSession) {
  // The whole point: no TraceSession, no --trace — spans are still there.
  ASSERT_FALSE(TracingActive());
  { GT_SPAN("flight_test/landing", {{"request", 1234}}); }
  FlightCapture capture = CollectFlight(0);
  ASSERT_GE(CountByName(capture, "flight_test/landing"), 1u);
  bool found_arg = false;
  for (const CollectedEvent& event : capture.events) {
    if (std::string(event.name) != "flight_test/landing") continue;
    for (std::uint32_t i = 0; i < event.num_args; ++i) {
      if (std::string(event.args[i].name) == "request" &&
          event.args[i].value == 1234) {
        found_arg = true;
      }
    }
  }
  EXPECT_TRUE(found_arg) << "span args must survive the ring";
}

TEST(FlightRecorderTest, WindowFiltersOutOldSpans) {
  { GT_SPAN("flight_test/old_event"); }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  { GT_SPAN("flight_test/new_event"); }

  FlightCapture recent = CollectFlight(60ull * 1000 * 1000);  // last 60 ms
  EXPECT_EQ(CountByName(recent, "flight_test/old_event"), 0u);
  EXPECT_GE(CountByName(recent, "flight_test/new_event"), 1u);

  FlightCapture everything = CollectFlight(0);
  EXPECT_GE(CountByName(everything, "flight_test/old_event"), 1u);
}

TEST(FlightRecorderTest, RingWrapsAndReportsTheOverwriteCount) {
  const std::uint64_t wrapped_before = CollectFlight(0).wrapped;
  // Overflow this thread's ring: only the newest kFlightRingSlots survive.
  for (std::size_t i = 0; i < internal_flight::kFlightRingSlots + 500; ++i) {
    GT_SPAN("flight_test/filler");
  }
  FlightCapture capture = CollectFlight(0);
  EXPECT_GE(capture.wrapped, wrapped_before + 500);
  // A capture can never exceed the ring capacity per contributing lane.
  EXPECT_LE(CountByName(capture, "flight_test/filler"),
            internal_flight::kFlightRingSlots);
  EXPECT_GE(CountByName(capture, "flight_test/filler"),
            internal_flight::kFlightRingSlots / 2);
}

TEST(FlightRecorderTest, EventsAreRebasedAndOrdered) {
  { GT_SPAN("flight_test/order_a"); }
  { GT_SPAN("flight_test/order_b"); }
  FlightCapture capture = CollectFlight(0);
  ASSERT_FALSE(capture.events.empty());
  bool saw_zero_start = false;
  std::uint32_t lane = capture.events.front().lane;
  std::uint64_t previous_start = 0;
  for (const CollectedEvent& event : capture.events) {
    if (event.start_ns == 0) saw_zero_start = true;
    if (event.lane != lane) {
      lane = event.lane;
      previous_start = 0;
    }
    EXPECT_GE(event.start_ns, previous_start) << "per-lane start order";
    previous_start = event.start_ns;
  }
  EXPECT_TRUE(saw_zero_start) << "start times must be rebased to the earliest";
}

TEST(FlightRecorderTest, ConcurrentRecordingAndDrainingIsSafe) {
  // Writers hammer their rings while a drainer snapshots continuously. The
  // seqlock discards torn slots; under TSan this also proves race-freedom.
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        GT_SPAN("flight_test/concurrent", {{"writer", 1}});
      }
    });
  }
  // Drain until writer events are observed (a single-core scheduler may not
  // run the writers for a while) — but never past the deadline.
  std::size_t total_events = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (int i = 0; i < 200 || (total_events == 0 &&
                              std::chrono::steady_clock::now() < deadline);
       ++i) {
    FlightCapture capture = CollectFlight(0);
    total_events += capture.events.size();
    for (const CollectedEvent& event : capture.events) {
      ASSERT_NE(event.name, nullptr);
    }
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& writer : writers) writer.join();
  EXPECT_GT(total_events, 0u);
}

TEST(FlightRecorderTest, FlightJsonIsChromeTraceShaped) {
  { GT_SPAN("flight_test/json_probe"); }
  std::string json = FlightJson(0);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 60);
  EXPECT_NE(json.find("flight_test/json_probe"), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(FlightRecorderTest, WriteFlightJsonFileRoundTrips) {
  { GT_SPAN("flight_test/file_probe"); }
  const std::string path = ::testing::TempDir() + "flight_recorder_test.json";
  std::string error;
  ASSERT_TRUE(WriteFlightJsonFile(path, 0, &error)) << error;
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("flight_test/file_probe"), std::string::npos);
  std::remove(path.c_str());

  std::string bad_error;
  EXPECT_FALSE(WriteFlightJsonFile("/nonexistent-dir/x/y.json", 0, &bad_error));
  EXPECT_FALSE(bad_error.empty());
}

}  // namespace
}  // namespace graphtempo::obs
