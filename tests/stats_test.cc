#include "core/stats.h"

#include <gtest/gtest.h>

#include "test_graphs.h"

namespace graphtempo {
namespace {

using testing::BuildPaperGraph;

TEST(SnapshotStatsTest, PaperGraphT0) {
  TemporalGraph graph = BuildPaperGraph();
  SnapshotStats stats = ComputeSnapshotStats(graph, 0);
  EXPECT_EQ(stats.nodes, 4u);
  EXPECT_EQ(stats.edges, 4u);
  EXPECT_DOUBLE_EQ(stats.avg_out_degree, 1.0);
  // u1 has out-edges to u2 and u3 at t0.
  EXPECT_EQ(stats.max_out_degree, 2u);
  EXPECT_DOUBLE_EQ(stats.density, 4.0 / 12.0);
}

TEST(SnapshotStatsTest, EmptySnapshot) {
  TemporalGraph graph(std::vector<std::string>{"t0", "t1"});
  graph.AddNode("lonely");  // never present
  SnapshotStats stats = ComputeSnapshotStats(graph, 0);
  EXPECT_EQ(stats.nodes, 0u);
  EXPECT_EQ(stats.edges, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_out_degree, 0.0);
  EXPECT_DOUBLE_EQ(stats.density, 0.0);
}

TEST(SnapshotJaccardTest, PaperGraphNodes) {
  TemporalGraph graph = BuildPaperGraph();
  // t0 = {u1..u4}, t1 = {u1,u2,u4}: ∩ = 3, ∪ = 4.
  EXPECT_DOUBLE_EQ(SnapshotJaccard(graph, 0, 1, EntityKind::kNodes), 3.0 / 4.0);
  // t0 vs t2: ∩ = {u2,u4} = 2, ∪ = {u1..u5} = 5.
  EXPECT_DOUBLE_EQ(SnapshotJaccard(graph, 0, 2, EntityKind::kNodes), 2.0 / 5.0);
  // Self-similarity is 1.
  EXPECT_DOUBLE_EQ(SnapshotJaccard(graph, 1, 1, EntityKind::kNodes), 1.0);
}

TEST(SnapshotJaccardTest, PaperGraphEdges) {
  TemporalGraph graph = BuildPaperGraph();
  // t0 edges: 4; t1 edges: 3; common: (u1,u2),(u2,u4) = 2; union = 5.
  EXPECT_DOUBLE_EQ(SnapshotJaccard(graph, 0, 1, EntityKind::kEdges), 2.0 / 5.0);
}

TEST(SnapshotJaccardTest, EmptySnapshotsGiveZero) {
  TemporalGraph graph(std::vector<std::string>{"t0", "t1"});
  EXPECT_DOUBLE_EQ(SnapshotJaccard(graph, 0, 1, EntityKind::kNodes), 0.0);
}

TEST(OutDegreeHistogramTest, PaperGraphT0) {
  TemporalGraph graph = BuildPaperGraph();
  auto histogram = OutDegreeHistogram(graph, 0);
  // t0: u1 → {u2,u3} (2), u2 → {u4} (1), u3 → {u4} (1), u4 → {} (0).
  EXPECT_EQ(histogram[0], 1u);
  EXPECT_EQ(histogram[1], 2u);
  EXPECT_EQ(histogram[2], 1u);
  std::size_t total = 0;
  for (const auto& [degree, count] : histogram) total += count;
  EXPECT_EQ(total, graph.NodesAt(0));
}

TEST(LifespanHistogramTest, PaperGraphNodes) {
  TemporalGraph graph = BuildPaperGraph();
  auto histogram = LifespanHistogram(graph, EntityKind::kNodes);
  EXPECT_EQ(histogram[1], 2u);  // u3, u5
  EXPECT_EQ(histogram[2], 1u);  // u1
  EXPECT_EQ(histogram[3], 2u);  // u2, u4
}

TEST(LifespanHistogramTest, PaperGraphEdges) {
  TemporalGraph graph = BuildPaperGraph();
  auto histogram = LifespanHistogram(graph, EntityKind::kEdges);
  EXPECT_EQ(histogram[1], 5u);
  EXPECT_EQ(histogram[2], 1u);  // (u1,u2)
  EXPECT_EQ(histogram[3], 1u);  // (u2,u4)
}

TEST(AttributeDistributionTest, StaticAttribute) {
  TemporalGraph graph = BuildPaperGraph();
  AttrRef gender = *graph.FindAttribute("gender");
  auto at_t0 = AttributeDistribution(graph, gender, 0);
  EXPECT_EQ(at_t0["m"], 1u);
  EXPECT_EQ(at_t0["f"], 3u);
  auto at_t2 = AttributeDistribution(graph, gender, 2);
  EXPECT_EQ(at_t2["m"], 1u);  // u5
  EXPECT_EQ(at_t2["f"], 2u);
}

TEST(AttributeDistributionTest, TimeVaryingAttribute) {
  TemporalGraph graph = BuildPaperGraph();
  AttrRef pubs = *graph.FindAttribute("publications");
  auto at_t0 = AttributeDistribution(graph, pubs, 0);
  EXPECT_EQ(at_t0["3"], 1u);
  EXPECT_EQ(at_t0["1"], 2u);
  EXPECT_EQ(at_t0["2"], 1u);
  auto at_t1 = AttributeDistribution(graph, pubs, 1);
  EXPECT_EQ(at_t1["1"], 3u);
  EXPECT_EQ(at_t1.count("3"), 0u);
}

TEST(StatsDeath, TimeOutOfRangeAborts) {
  TemporalGraph graph = BuildPaperGraph();
  EXPECT_DEATH(ComputeSnapshotStats(graph, 3), "time out of range");
  EXPECT_DEATH(SnapshotJaccard(graph, 0, 9, EntityKind::kNodes), "time out of range");
}

}  // namespace
}  // namespace graphtempo
