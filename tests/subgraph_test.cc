#include "core/subgraph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "core/aggregation.h"
#include "core/graph_io.h"
#include "test_graphs.h"

namespace graphtempo {
namespace {

using testing::BuildPaperGraph;
using testing::BuildRandomGraph;

std::set<std::string> NodeLabelSet(const TemporalGraph& graph,
                                   const std::vector<NodeId>& nodes) {
  std::set<std::string> labels;
  for (NodeId n : nodes) labels.insert(graph.node_label(n));
  return labels;
}

TEST(ExtractSubgraphTest, KeepsOnlyViewEntities) {
  TemporalGraph graph = BuildPaperGraph();
  GraphView view = IntersectionOp(graph, IntervalSet::Point(3, 0),
                                  IntervalSet::Point(3, 1));
  TemporalGraph sub = ExtractSubgraph(graph, view);
  EXPECT_EQ(sub.num_nodes(), 3u);  // u1, u2, u4
  EXPECT_EQ(sub.num_edges(), 2u);  // (u1,u2), (u2,u4)
  EXPECT_TRUE(sub.FindNode("u1").has_value());
  EXPECT_FALSE(sub.FindNode("u3").has_value());
  EXPECT_FALSE(sub.FindNode("u5").has_value());
  EXPECT_EQ(sub.num_times(), 3u);  // time domain preserved
  EXPECT_EQ(sub.time_label(2), "t2");
}

TEST(ExtractSubgraphTest, RestrictsPresenceToViewInterval) {
  TemporalGraph graph = BuildPaperGraph();
  // u2 exists at t0,t1,t2; a view on [t0,t1] must drop its t2 presence.
  GraphView view = UnionOp(graph, IntervalSet::Point(3, 0), IntervalSet::Point(3, 1));
  TemporalGraph sub = ExtractSubgraph(graph, view);
  NodeId u2 = *sub.FindNode("u2");
  EXPECT_TRUE(sub.NodePresentAt(u2, 0));
  EXPECT_TRUE(sub.NodePresentAt(u2, 1));
  EXPECT_FALSE(sub.NodePresentAt(u2, 2));
  EdgeId e = *sub.FindEdge(u2, *sub.FindNode("u4"));
  EXPECT_TRUE(sub.EdgePresentAt(e, 0));
  EXPECT_FALSE(sub.EdgePresentAt(e, 2));
}

TEST(ExtractSubgraphTest, CopiesAttributes) {
  TemporalGraph graph = BuildPaperGraph();
  GraphView view = UnionOp(graph, IntervalSet::Point(3, 0), IntervalSet::Point(3, 1));
  TemporalGraph sub = ExtractSubgraph(graph, view);
  AttrRef gender = *sub.FindAttribute("gender");
  AttrRef pubs = *sub.FindAttribute("publications");
  NodeId u1 = *sub.FindNode("u1");
  EXPECT_EQ(sub.ValueName(gender, sub.ValueCodeAt(gender, u1, 0)), "m");
  EXPECT_EQ(sub.ValueName(pubs, sub.ValueCodeAt(pubs, u1, 0)), "3");
  EXPECT_EQ(sub.ValueName(pubs, sub.ValueCodeAt(pubs, u1, 1)), "1");
  // t2 is outside the view: the cell must be unset even for surviving nodes.
  NodeId u2 = *sub.FindNode("u2");
  EXPECT_EQ(sub.ValueCodeAt(pubs, u2, 2), kNoValue);
}

TEST(ExtractSubgraphTest, AggregationIsPreserved) {
  // Aggregating the view in place ≡ aggregating the extracted graph.
  TemporalGraph graph = BuildRandomGraph(31, 35, 6);
  IntervalSet a = IntervalSet::Range(6, 0, 2);
  IntervalSet b = IntervalSet::Range(6, 3, 5);
  for (const GraphView& view :
       {UnionOp(graph, a, b), IntersectionOp(graph, a, b), DifferenceOp(graph, a, b)}) {
    TemporalGraph sub = ExtractSubgraph(graph, view);
    std::vector<AttrRef> attrs = ResolveAttributes(graph, {"color", "level"});
    std::vector<AttrRef> sub_attrs = ResolveAttributes(sub, {"color", "level"});
    GraphView whole = UnionOp(sub, view.times, view.times);
    for (auto semantics :
         {AggregationSemantics::kDistinct, AggregationSemantics::kAll}) {
      AggregateGraph original = Aggregate(graph, view, attrs, semantics);
      AggregateGraph extracted = Aggregate(sub, whole, sub_attrs, semantics);
      // Dictionaries are rebuilt per graph, so compare dataset-independent
      // quantities: weight multisets.
      EXPECT_EQ(original.NodeCount(), extracted.NodeCount());
      EXPECT_EQ(original.EdgeCount(), extracted.EdgeCount());
      EXPECT_EQ(original.TotalNodeWeight(), extracted.TotalNodeWeight());
      EXPECT_EQ(original.TotalEdgeWeight(), extracted.TotalEdgeWeight());
    }
  }
}

TEST(ExtractSubgraphTest, OperatorsCompose) {
  // Entities stable across (t0,t1) and across (t1,t2) are exactly those of
  // the full projection [t0..t2]: intersection results chain via extraction.
  TemporalGraph graph = BuildPaperGraph();
  TemporalGraph first = ExtractSubgraph(
      graph, IntersectionOp(graph, IntervalSet::Point(3, 0), IntervalSet::Point(3, 1)));
  TemporalGraph second = ExtractSubgraph(
      graph, IntersectionOp(graph, IntervalSet::Point(3, 1), IntervalSet::Point(3, 2)));
  std::set<std::string> chained;
  for (NodeId n = 0; n < first.num_nodes(); ++n) {
    if (second.FindNode(first.node_label(n)).has_value()) {
      chained.insert(first.node_label(n));
    }
  }
  GraphView always = Project(graph, IntervalSet::All(3));
  EXPECT_EQ(chained, NodeLabelSet(graph, always.nodes));
}

TEST(ExtractSubgraphTest, UnionExtractionIsIdempotent) {
  TemporalGraph graph = BuildRandomGraph(77, 30, 5);
  IntervalSet interval = IntervalSet::Range(5, 1, 3);
  GraphView view = UnionOp(graph, interval, interval);
  TemporalGraph sub = ExtractSubgraph(graph, view);
  GraphView again = UnionOp(sub, interval, interval);
  TemporalGraph sub2 = ExtractSubgraph(sub, again);
  EXPECT_EQ(sub.num_nodes(), sub2.num_nodes());
  EXPECT_EQ(sub.num_edges(), sub2.num_edges());
  for (TimeId t = 0; t < 5; ++t) {
    EXPECT_EQ(sub.NodesAt(t), sub2.NodesAt(t));
    EXPECT_EQ(sub.EdgesAt(t), sub2.EdgesAt(t));
  }
}

TEST(ExtractSubgraphTest, ExtractedGraphSerializes) {
  TemporalGraph graph = BuildPaperGraph();
  GraphView view = DifferenceOp(graph, IntervalSet::Point(3, 0),
                                IntervalSet::Point(3, 1));
  TemporalGraph sub = ExtractSubgraph(graph, view);
  std::ostringstream out;
  WriteGraph(sub, &out);
  std::istringstream in(out.str());
  std::string error;
  std::optional<TemporalGraph> restored = ReadGraph(&in, &error);
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_EQ(restored->num_nodes(), sub.num_nodes());
  EXPECT_EQ(restored->num_edges(), sub.num_edges());
}

TEST(ExtractSubgraphTest, EmptyViewGivesEmptyGraph) {
  TemporalGraph graph = BuildPaperGraph();
  GraphView empty;
  empty.times = IntervalSet::Point(3, 0);
  TemporalGraph sub = ExtractSubgraph(graph, empty);
  EXPECT_EQ(sub.num_nodes(), 0u);
  EXPECT_EQ(sub.num_edges(), 0u);
  EXPECT_EQ(sub.num_times(), 3u);
}

TEST(ExtractSubgraphDeath, DomainMismatchAborts) {
  TemporalGraph graph = BuildPaperGraph();
  GraphView bad;
  bad.times = IntervalSet::Point(5, 0);
  EXPECT_DEATH(ExtractSubgraph(graph, bad), "different time domain");
}

}  // namespace
}  // namespace graphtempo
